// Message-rate / bandwidth micro-benchmark for the transport backends
// (docs/TRANSPORT.md): ping-pong latency and message rate between two
// ranks, and all-to-all bandwidth across P ranks, over the in-process
// cluster and the loopback TCP mesh.  Separates the algorithmic
// communication volume (counted by EngineCounters) from what the
// runtime actually moves — and prices the backends against each other.
//
//   ./bench_comm [--ranks=4] [--rounds=2000] [--bytes=16384]
//                [--backend=all|inproc|tcp] [--metrics-out=FILE]
//                [--json-out=FILE]
//
// --metrics-out writes one structured record per (backend, pattern)
// with the measured rates plus the comm.transport.* statistics the
// engines report (docs/OBSERVABILITY.md).
// --json-out writes a machine-readable summary keyed
// "<backend>.<pattern>" for baseline diffing with tools/bench_report.py
// (committed baselines live in results/).

#include <algorithm>
#include <cstdio>
#include <exception>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc.hpp"
#include "net/tags.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "obs/transport_metrics.hpp"
#include "obs/metrics.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_safety.hpp"
#include "support/timer.hpp"

namespace {

using namespace scmd;

/// Run `fn` once per rank over the chosen backend (TCP = loopback mesh
/// in this process, same transport code as a multi-process run).
void run_ranks(const std::string& backend, int P,
               const std::function<void(Transport&)>& fn,
               TransportStats* agg) {
  std::unique_ptr<Cluster> cluster;
  int rendezvous_fd = -1;
  int rendezvous_port = 0;
  if (backend == "inproc") {
    cluster = std::make_unique<Cluster>(P);
  } else {
    std::tie(rendezvous_fd, rendezvous_port) =
        bind_listener("127.0.0.1", 0);
  }
  Mutex agg_m;
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      try {
        std::unique_ptr<TcpTransport> tcp;
        Transport* t;
        if (cluster) {
          t = &cluster->transport(r);
        } else {
          TcpConfig cfg;
          cfg.rank = r;
          cfg.num_ranks = P;
          cfg.rendezvous_port = rendezvous_port;
          if (r == 0) cfg.rendezvous_fd = rendezvous_fd;
          tcp = std::make_unique<TcpTransport>(cfg);
          t = tcp.get();
        }
        fn(*t);
        if (agg) {
          MutexLock lk(agg_m);
          *agg += t->stats();
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

struct Measurement {
  double seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  TransportStats stats;
};

/// Rank 0 <-> rank 1 ping-pong: latency and message rate for `bytes`
/// Scratch channels from the registry's bench window (net/tags.hpp).
constexpr int kPing = tags::bench_tag(0);
constexpr int kPong = tags::bench_tag(1);
constexpr int kMesh = tags::bench_tag(2);

/// payloads.  Other ranks idle at the barriers.
Measurement ping_pong(const std::string& backend, int P, int rounds,
                      std::size_t bytes) {
  Measurement m;
  m.messages = 2ull * static_cast<std::uint64_t>(rounds);
  m.bytes = m.messages * bytes;
  Mutex time_m;
  run_ranks(
      backend, P,
      [&](Transport& t) {
        Bytes payload(bytes);
        t.barrier();
        Timer timer;
        for (int i = 0; i < rounds; ++i) {
          if (t.rank() == 0) {
            t.send(1, kPing, payload);
            payload = t.recv(1, kPong);
          } else if (t.rank() == 1) {
            payload = t.recv(0, kPing);
            t.send(0, kPong, payload);
          }
        }
        t.barrier();
        if (t.rank() == 0) {
          MutexLock lk(time_m);
          m.seconds = timer.seconds();
        }
      },
      &m.stats);
  return m;
}

/// Every rank sends `rounds` payloads to every other rank and drains its
/// own inbound traffic: aggregate bandwidth under full mesh load.
Measurement all_to_all(const std::string& backend, int P, int rounds,
                       std::size_t bytes) {
  Measurement m;
  m.messages = static_cast<std::uint64_t>(rounds) *
               static_cast<std::uint64_t>(P) *
               static_cast<std::uint64_t>(P - 1);
  m.bytes = m.messages * bytes;
  Mutex time_m;
  run_ranks(
      backend, P,
      [&](Transport& t) {
        const Bytes payload(bytes);
        t.barrier();
        Timer timer;
        for (int i = 0; i < rounds; ++i) {
          for (int dst = 0; dst < P; ++dst) {
            if (dst != t.rank()) t.send(dst, kMesh, payload);
          }
          for (int src = 0; src < P; ++src) {
            if (src != t.rank()) t.recv(src, kMesh);
          }
        }
        t.barrier();
        if (t.rank() == 0) {
          MutexLock lk(time_m);
          m.seconds = timer.seconds();
        }
      },
      &m.stats);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scmd;
  try {
    const Cli cli(argc, argv, {"ranks", "rounds", "bytes", "backend",
                               "metrics-out", "json-out"});
    const int ranks = static_cast<int>(cli.get_int("ranks", 4));
    const int rounds = static_cast<int>(cli.get_int("rounds", 2000));
    const std::size_t bytes =
        static_cast<std::size_t>(cli.get_int("bytes", 16384));
    const std::string which = cli.get("backend", "all");
    SCMD_REQUIRE(which == "all" || which == "inproc" || which == "tcp",
                 "--backend must be all | inproc | tcp");
    SCMD_REQUIRE(ranks >= 2, "--ranks must be >= 2");

    std::unique_ptr<obs::MetricsRegistry> metrics;
    if (!cli.get("metrics-out", "").empty()) {
      metrics = std::make_unique<obs::MetricsRegistry>();
      metrics->add_sink(
          std::make_unique<obs::JsonlSink>(cli.get("metrics-out", "")));
    }

    std::printf("# bench_comm: ranks=%d rounds=%d bytes=%zu\n", ranks,
                rounds, bytes);
    Table table({"backend", "pattern", "msgs/s", "MB/s", "us/msg",
                 "stall s", "watermark"});
    int emit_seq = 0;
    std::vector<std::string> backends;
    if (which == "all") {
      backends = {"inproc", "tcp"};
    } else {
      backends = {which};
    }
    const std::vector<std::string> patterns{"pingpong", "alltoall"};
    struct CaseSummary {
      std::string key;
      double msg_rate = 0.0;
      double bandwidth_mbps = 0.0;
      double us_per_msg = 0.0;
    };
    std::vector<CaseSummary> summary;
    for (const std::string& backend : backends) {
      for (const std::string& pattern : patterns) {
        const Measurement m = pattern == "pingpong"
                                  ? ping_pong(backend, ranks, rounds, bytes)
                                  : all_to_all(backend, ranks, rounds, bytes);
        const double rate =
            static_cast<double>(m.messages) / std::max(m.seconds, 1e-12);
        const double mbps = static_cast<double>(m.bytes) / 1.0e6 /
                            std::max(m.seconds, 1e-12);
        table.add_row({backend, pattern, rate, mbps,
                       1e6 * m.seconds / static_cast<double>(m.messages),
                       1e-9 * static_cast<double>(m.stats.recv_stall_ns),
                       static_cast<double>(m.stats.max_mailbox_depth)});
        if (metrics) {
          metrics->set_attr("backend", backend);
          metrics->set_attr("pattern", pattern);
          metrics->set("bench.msg_rate", rate);
          metrics->set("bench.bandwidth_mbps", mbps);
          obs::record_transport(*metrics, m.stats);
          metrics->emit(emit_seq++);
        }
        summary.push_back(
            {backend + "." + pattern, rate, mbps,
             1e6 * m.seconds / static_cast<double>(m.messages)});
      }
    }
    table.print(std::cout);
    if (metrics)
      std::printf("# metrics: %s\n", cli.get("metrics-out", "").c_str());
    const std::string json_out = cli.get("json-out", "");
    if (!json_out.empty()) {
      std::FILE* f = std::fopen(json_out.c_str(), "w");
      SCMD_REQUIRE(f != nullptr, "cannot open --json-out: " + json_out);
      std::fprintf(f,
                   "{\n  \"bench\": \"comm\",\n  \"ranks\": %d,\n"
                   "  \"rounds\": %d,\n  \"bytes\": %zu,\n  \"cases\": {\n",
                   ranks, rounds, bytes);
      for (std::size_t i = 0; i < summary.size(); ++i) {
        const CaseSummary& c = summary[i];
        std::fprintf(f,
                     "    \"%s\": {\"msg_rate\": %.6g, \"bandwidth_mbps\": "
                     "%.6g, \"us_per_msg\": %.6g}%s\n",
                     c.key.c_str(), c.msg_rate, c.bandwidth_mbps,
                     c.us_per_msg, i + 1 < summary.size() ? "," : "");
      }
      std::fprintf(f, "  }\n}\n");
      std::fclose(f);
      std::printf("# json: %s\n", json_out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
