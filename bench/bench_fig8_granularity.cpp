// Experiment F8a/F8b (DESIGN.md): paper Figure 8.
//
// Runtime per MD step vs granularity N/P for SC-MD, FS-MD, and Hybrid-MD
// on (a) a 48-node Intel Xeon cluster (576 ranks) and (b) 64 BlueGene/Q
// nodes (4096 ranks, 4 tasks/core).  Work is measured by running the
// real per-rank algorithms on a virtual cluster; time comes from the
// calibrated platform cost model (see src/perf).
//
// Paper observables: SC-MD fastest at fine grain (9.7x over Hybrid at
// N/P = 24 on Xeon; 5.1x on BG/Q), crossover to Hybrid-MD at N/P ≈ 2095
// (Xeon) and ≈ 425 (BG/Q).
//
//   ./bench_fig8_granularity [--platform=xeon|bgq|both] [--csv=fig8.csv]

#include <cmath>
#include <iostream>
#include <vector>

#include "md/builders.hpp"
#include "perf/cluster_sim.hpp"
#include "perf/cost_model.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace scmd;

void run_platform(const PlatformParams& platform, const ProcessGrid& pgrid,
                  const std::vector<long long>& grains,
                  const std::string& csv) {
  const VashishtaSiO2 field;
  const long long P = pgrid.num_ranks();

  Table table({"N/P", "N", "T_SC(s)", "T_FS(s)", "T_Hybrid(s)",
               "FS/SC", "Hybrid/SC"});
  table.set_title("Fig. 8 (" + platform.name + ") — runtime/step vs N/P on " +
                  std::to_string(P) + " ranks");
  table.set_precision(6);

  double prev_ratio = -1.0, crossover = -1.0;
  long long prev_grain = 0;
  for (long long grain : grains) {
    const long long atoms = grain * P;
    Rng rng(2000 + static_cast<std::uint64_t>(grain));
    const ParticleSystem sys = make_silica(atoms, 2.2, 300.0, rng);
    const ClusterSimulator sim(sys, field);

    double t[3] = {0, 0, 0};
    const char* names[3] = {"SC", "FS", "Hybrid"};
    bool feasible = true;
    for (int k = 0; k < 3; ++k) {
      try {
        const ClusterSample s = sim.measure(names[k], pgrid, 4);
        t[k] = estimate_step(s.max_rank, platform).total();
      } catch (const Error&) {
        feasible = false;  // rank region thinner than a cutoff
      }
    }
    if (!feasible) {
      std::cout << "# N/P = " << grain
                << ": grain too fine for rcut2 on this process grid\n";
      continue;
    }
    table.add_row({grain, atoms, t[0], t[1], t[2], t[1] / t[0],
                   t[2] / t[0]});

    // Detect the SC->Hybrid crossover (log-linear interpolation).
    const double ratio = t[2] / t[0];
    if (prev_ratio > 1.0 && ratio <= 1.0) {
      const double f = std::log(prev_ratio) /
                       (std::log(prev_ratio) - std::log(ratio));
      crossover = std::exp(std::log(static_cast<double>(prev_grain)) +
                           f * (std::log(static_cast<double>(grain)) -
                                std::log(static_cast<double>(prev_grain))));
    }
    prev_ratio = ratio;
    prev_grain = grain;
  }
  table.print(std::cout);
  if (crossover > 0) {
    std::cout << "# SC->Hybrid crossover at N/P ~ "
              << static_cast<long long>(crossover) << " (paper: "
              << (platform.name == "xeon" ? 2095 : 425) << ")\n";
  } else {
    std::cout << "# no SC->Hybrid crossover within the sweep\n";
  }
  std::cout << "\n";
  if (!csv.empty()) table.save_csv(platform.name + "_" + csv);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv, {"platform", "csv", "grains"});
  const std::string which = cli.get("platform", "both");
  const std::string csv = cli.get("csv", "");

  // Paper grains: 24..3000; a denser sweep near the crossovers.
  const std::vector<long long> grains{24,  48,  96,   192,  425,
                                      800, 1500, 2100, 3000, 4200};

  if (which == "xeon" || which == "both") {
    // 48 dual-6-core Xeon nodes = 576 ranks (near-cubic process grid so
    // fine grains keep rank regions >= rcut2 per axis).
    run_platform(xeon_cluster(), ProcessGrid::factor(576), grains, csv);
  }
  if (which == "bgq" || which == "both") {
    // 64 BG/Q nodes x 16 cores x 4 tasks = 4096 ranks.
    run_platform(bluegene_q(), ProcessGrid({16, 16, 16}), grains, csv);
  }
  return 0;
}
