// Measured single-host wall time per MD step for SC-MD, FS-MD, and
// Hybrid-MD on the silica workload — the model-free companion to the
// Fig. 8 cost-model sweep.  On one process there is no communication, so
// this isolates the *search-cost* side of the paper's trade-off: FS ≈ 2x
// SC search, Hybrid cheapest search (it exploits rcut3 < rcut2 through
// the pair list).
//
//   ./bench_walltime [--atoms=6000] [--steps=10] [--reach-sweep]

#include <iostream>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv, {"atoms", "steps", "reach-sweep", "seed"});
  const long long atoms = cli.get_int("atoms", 6000);
  const int steps = static_cast<int>(cli.get_int("steps", 10));
  const VashishtaSiO2 field;

  std::vector<std::string> variants{"SC", "FS", "Hybrid", "SC+p", "FS+p"};
  if (cli.get_bool("reach-sweep", false)) {
    variants.push_back("SC:2+p");
    variants.push_back("SC:3+p");
  }

  Table table({"strategy", "ms/step", "search/step", "cell visits/step",
               "accepted3/step", "pair evals/step", "triplet evals/step"});
  table.set_title("Measured wall time per step, silica, " +
                  std::to_string(atoms) + " atoms, this host");
  table.set_precision(2);

  for (const std::string& name : variants) {
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));
    ParticleSystem sys = make_silica(atoms, 2.2, 300.0, rng);
    SerialEngineConfig cfg;
    cfg.dt = 1.0 * units::kFemtosecond;
    SerialEngine engine(sys, field, make_strategy(name, field), cfg);
    engine.clear_counters();
    Timer timer;
    for (int s = 0; s < steps; ++s) engine.step();
    const double ms = timer.seconds() * 1e3 / steps;
    const EngineCounters& c = engine.counters();
    std::uint64_t visits = 0;
    for (const TupleCounters& tc : c.tuples) visits += tc.cell_visits;
    table.add_row(
        {name, ms,
         static_cast<long long>(c.total_search_steps() / steps),
         static_cast<long long>(visits / steps),
         static_cast<long long>(c.tuples[3].accepted / steps),
         static_cast<long long>(c.evals[2] / steps),
         static_cast<long long>(c.evals[3] / steps)});
  }
  table.print(std::cout);
  return 0;
}
