// Measured single-host wall time per MD step for SC-MD, FS-MD, and
// Hybrid-MD on the silica workload — the model-free companion to the
// Fig. 8 cost-model sweep.  On one process there is no communication, so
// this isolates the *search-cost* side of the paper's trade-off: FS ≈ 2x
// SC search, Hybrid cheapest search (it exploits rcut3 < rcut2 through
// the pair list).
//
//   ./bench_walltime [--atoms=6000] [--steps=10] [--warmup=2]
//                    [--reach-sweep] [--tuple-cache=off|skin=<s>]
//                    [--checkpoint-every=N] [--checkpoint-dir=DIR]
//                    [--metrics-out=FILE] [--trace-out=FILE]
//                    [--json-out=FILE]
//
// --warmup steps run before the clock starts (page faults, allocator
// growth, and the priming force pass stay out of the figure).
// --tuple-cache applies persistent tuple lists (docs/TUPLECACHE.md) to
// the pattern variants; Hybrid keeps its own pair list and is skipped.
// --metrics-out writes one structured record per step per strategy
// (JSONL, or CSV with a .csv path) so the figure is reproducible from
// the artifact instead of stdout scraping — records include the
// log-bucketed phase_hist.* latency histograms; --trace-out writes a
// Chrome trace_event JSON of the phase spans.
// --json-out writes a machine-readable summary of the whole table for
// baseline diffing with tools/bench_report.py (committed baselines live
// in results/).
// --checkpoint-every cuts a full durable snapshot (docs/DURABILITY.md)
// every N steps *inside the timed loop*, so the ms/step column prices
// the checkpoint overhead directly against an uncheckpointed run.

#include <cstdio>
#include <iostream>
#include <optional>

#include "ckpt/checkpoint.hpp"
#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_hist.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv, {"atoms", "steps", "warmup", "reach-sweep",
                             "seed", "tuple-cache", "checkpoint-every",
                             "checkpoint-dir", "metrics-out",
                             "trace-out", "json-out"});
  const long long atoms = cli.get_int("atoms", 6000);
  const int steps = static_cast<int>(cli.get_int("steps", 10));
  const int warmup = static_cast<int>(cli.get_int("warmup", 2));
  const VashishtaSiO2 field;

  const int checkpoint_every =
      static_cast<int>(cli.get_int("checkpoint-every", 0));
  std::optional<ckpt::CheckpointDir> cdir;
  if (checkpoint_every > 0) {
    const std::string dir = cli.get("checkpoint-dir", "");
    SCMD_REQUIRE(!dir.empty(),
                 "--checkpoint-every needs --checkpoint-dir=DIR");
    cdir.emplace(dir, /*retain=*/3);
  }

  TupleCacheConfig cache_cfg;
  {
    const std::string tc = cli.get("tuple-cache", "off");
    if (tc.rfind("skin=", 0) == 0) {
      cache_cfg.enabled = true;
      cache_cfg.skin = std::stod(tc.substr(5));
    } else if (tc != "off") {
      std::cerr << "bad --tuple-cache (off | skin=<s>): " << tc << "\n";
      return 2;
    }
  }

  std::vector<std::string> variants{"SC", "FS", "Hybrid", "SC+p", "FS+p"};
  if (cli.get_bool("reach-sweep", false)) {
    variants.push_back("SC:2+p");
    variants.push_back("SC:3+p");
  }

  std::unique_ptr<obs::MetricsRegistry> metrics;
  const std::string metrics_out = cli.get("metrics-out", "");
  if (!metrics_out.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    if (metrics_out.size() >= 4 &&
        metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0) {
      metrics->add_sink(std::make_unique<obs::CsvSink>(metrics_out));
    } else {
      metrics->add_sink(std::make_unique<obs::JsonlSink>(metrics_out));
    }
    metrics->set_attr("bench", "walltime");
    metrics->set_attr("field", "vashishta");
  }
  std::unique_ptr<obs::TraceSession> trace;
  const std::string trace_out = cli.get("trace-out", "");
  if (!trace_out.empty()) trace = std::make_unique<obs::TraceSession>();
  // phase_hist.* channels are fed from trace spans; when metrics are on
  // without --trace-out, an internal session supplies them.
  obs::TraceSession internal_trace;
  obs::TraceSession* span_source =
      trace ? trace.get() : (metrics ? &internal_trace : nullptr);

  // Machine-readable summary for baseline diffing (tools/bench_report.py).
  struct VariantSummary {
    std::string name;
    double ms_per_step = 0.0;
    double steps_per_sec = 0.0;
    double search_per_step = 0.0;
  };
  std::vector<VariantSummary> summary;

  Table table({"strategy", "ms/step", "steps/sec", "search/step",
               "cell visits/step", "accepted3/step", "pair evals/step",
               "triplet evals/step"});
  table.set_title("Measured wall time per step, silica, " +
                  std::to_string(atoms) + " atoms, this host");
  table.set_precision(2);

  for (const std::string& name : variants) {
    // Hybrid (and BondOrder) manage their own pair lists; the tuple
    // cache only applies to the pattern strategies.
    const bool cacheable =
        name.rfind("Hybrid", 0) != 0 && name.rfind("BondOrder", 0) != 0;
    const bool cached = cacheable && cache_cfg.enabled;
    // Cached rows are labelled "<name>+c" so a cached run's summary
    // never collides with an uncached baseline in bench_report.py.
    const std::string row = cached ? name + "+c" : name;
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));
    ParticleSystem sys = make_silica(atoms, 2.2, 300.0, rng);
    SerialEngineConfig cfg;
    cfg.dt = 1.0 * units::kFemtosecond;
    cfg.trace = span_source;
    if (cacheable) cfg.tuple_cache = cache_cfg;
    SerialEngine engine(sys, field, make_strategy(name, field), cfg);
    if (metrics) metrics->set_attr("strategy", row);
    std::size_t span_cursor = 0;
    for (int s = 0; s < warmup; ++s) engine.step();
    if (span_source != nullptr) span_cursor = span_source->num_events();
    // Per-step work from cumulative snapshot deltas — never
    // clear_counters() mid-run (it would race against totals consumers).
    EngineCounters prev = engine.counters();
    const EngineCounters start = prev;
    Timer timer;
    for (int s = 0; s < steps; ++s) {
      AccumTimer step_timer;
      step_timer.start();
      engine.step();
      if (cdir && (s + 1) % checkpoint_every == 0) {
        ckpt::CheckpointData data;
        data.system = sys;
        data.clock.step = s + 1;
        data.clock.total_steps = steps;
        data.clock.dt = cfg.dt;
        data.rng = rng.state();
        cdir->write(data);
      }
      step_timer.stop();
      if (metrics) {
        obs::StepSample sample;
        sample.potential_energy = engine.potential_energy();
        sample.total_energy = engine.total_energy();
        sample.temperature = sys.temperature();
        sample.work = engine.counters().delta_since(prev);
        prev = engine.counters();
        sample.max_n = field.max_n();
        obs::record_step(*metrics, sample);
        metrics->set("time.ms_per_step", step_timer.total() * 1e3);
        const auto spans = span_source->events_since(span_cursor);
        span_cursor += spans.size();
        obs::observe_phase_events(*metrics, spans);
        metrics->emit(s + 1);
      }
    }
    const double ms = timer.seconds() * 1e3 / steps;
    const double steps_per_sec =
        timer.seconds() > 0.0 ? steps / timer.seconds() : 0.0;
    const EngineCounters c = engine.counters().delta_since(start);
    std::uint64_t visits = 0;
    for (const TupleCounters& tc : c.tuples) visits += tc.cell_visits;
    table.add_row(
        {row, ms, steps_per_sec,
         static_cast<long long>(c.total_search_steps() / steps),
         static_cast<long long>(visits / steps),
         static_cast<long long>(c.tuples[3].accepted / steps),
         static_cast<long long>(c.evals[2] / steps),
         static_cast<long long>(c.evals[3] / steps)});
    summary.push_back(
        {row, ms, steps_per_sec,
         static_cast<double>(c.total_search_steps()) / steps});
  }
  table.print(std::cout);
  if (trace) trace->save(trace_out);

  const std::string json_out = cli.get("json-out", "");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    SCMD_REQUIRE(f != nullptr, "cannot open --json-out: " + json_out);
    std::fprintf(f,
                 "{\n  \"bench\": \"walltime\",\n  \"atoms\": %lld,\n"
                 "  \"steps\": %d,\n  \"tuple_cache_skin\": %.6g,\n"
                 "  \"variants\": {\n",
                 atoms, steps, cache_cfg.enabled ? cache_cfg.skin : 0.0);
    for (std::size_t i = 0; i < summary.size(); ++i) {
      const VariantSummary& v = summary[i];
      std::fprintf(f,
                   "    \"%s\": {\"ms_per_step\": %.6g, \"steps_per_sec\": "
                   "%.6g, \"search_per_step\": %.6g}%s\n",
                   v.name.c_str(), v.ms_per_step, v.steps_per_sec,
                   v.search_per_step, i + 1 < summary.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("# json: %s\n", json_out.c_str());
  }
  return 0;
}
