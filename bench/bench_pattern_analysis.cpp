// Experiment A1 (DESIGN.md): the paper's Section 4 analytics.
//
// Regenerates every closed-form quantity of the theoretical analysis and
// checks it against direct enumeration:
//   - |Ψ_FS(n)| = 27^{n-1}                                   (Eq. 25)
//   - |Ψ_SC(n)| = (27^{n-1} + 27^{ceil(n/2)-1}) / 2          (Eq. 29)
//   - half-shell |Ψ| = 14, eighth-shell import = 7 at l = 1  (Sec. 4.3)
//   - SC import volume (l+n-1)^3 - l^3                       (Eq. 33)

#include <algorithm>
#include <iostream>

#include "pattern/analysis.hpp"
#include "pattern/generate.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv, {"nmax", "csv"});
  const int nmax = static_cast<int>(cli.get_int("nmax", 6));

  Table sizes({"n", "|FS| enum", "|FS| Eq.25", "|SC| enum", "|SC| Eq.29",
               "self-twin", "SC/FS"});
  sizes.set_title("Pattern sizes: enumerated vs closed form");
  sizes.set_precision(4);
  for (int n = 2; n <= nmax; ++n) {
    // Enumerate up to n = 5 (27^5 paths is still fine); beyond that only
    // closed forms are reported.
    long long fs_enum = -1, sc_enum = -1, self_enum = -1;
    if (n <= 5) {
      const Pattern fs = generate_fs(n);
      const Pattern sc = make_sc(n);
      fs_enum = static_cast<long long>(fs.size());
      sc_enum = static_cast<long long>(sc.size());
      self_enum = 0;
      for (const Path& p : sc) self_enum += p.self_reflective();
    }
    sizes.add_row({static_cast<long long>(n),
                   fs_enum >= 0 ? TableCell{fs_enum} : TableCell{std::string("-")},
                   fs_pattern_size(n),
                   sc_enum >= 0 ? TableCell{sc_enum} : TableCell{std::string("-")},
                   sc_pattern_size(n), non_collapsible_count(n),
                   static_cast<double>(sc_pattern_size(n)) /
                       static_cast<double>(fs_pattern_size(n))});
  }
  sizes.print(std::cout);
  std::cout << "\n";

  Table shells({"method", "|Psi|", "footprint", "import@l=1"});
  shells.set_title("Classic pair shells (paper Fig. 6 / Sec. 4.3)");
  const Pattern fs2 = generate_fs(2);
  const Pattern hs = make_hs();
  const Pattern es = make_es();
  shells.add_row({std::string("full-shell"),
                  static_cast<long long>(fs2.size()),
                  static_cast<long long>(cell_footprint(fs2)),
                  import_volume(fs2, {1, 1, 1})});
  shells.add_row({std::string("half-shell"),
                  static_cast<long long>(hs.size()),
                  static_cast<long long>(cell_footprint(hs)),
                  import_volume(hs, {1, 1, 1})});
  shells.add_row({std::string("eighth-shell"),
                  static_cast<long long>(es.size()),
                  static_cast<long long>(cell_footprint(es)),
                  import_volume(es, {1, 1, 1})});
  shells.print(std::cout);
  std::cout << "\n";

  Table imports({"n", "l", "SC import enum", "SC Eq.33", "FS import enum",
                 "FS closed form"});
  imports.set_title("Import volumes (cells) for l^3 bricks");
  for (int n = 2; n <= std::min(nmax, 4); ++n) {
    for (int l : {1, 2, 4, 8}) {
      imports.add_row({static_cast<long long>(n), static_cast<long long>(l),
                       import_volume(make_sc(n), {l, l, l}),
                       sc_import_volume(l, n),
                       import_volume(generate_fs(n), {l, l, l}),
                       fs_import_volume(l, n)});
    }
  }
  imports.print(std::cout);

  if (cli.has("csv")) {
    sizes.save_csv(cli.get("csv", "pattern_analysis.csv"));
  }
  return 0;
}
