// Experiment F9a/F9b (DESIGN.md): paper Figure 9.
//
// Strong-scaling speedup of SC-MD, FS-MD, and Hybrid-MD:
//  (a) 0.88M-atom silica on 12..768 Xeon cores,
//  (b) 0.79M-atom silica on 16..8192 BG/Q cores,
//  plus the extreme-scale run: 50.3M atoms on up to 524,288 BG/Q cores
//  (scaled down by default; --full restores the paper's size).
//
// Speedup S = T(P_ref) / T(P) with the per-platform cost model over
// measured per-rank work (see src/perf).  Paper observables: SC ~92.6%
// efficiency on 768 Xeon cores (FS 38.3%, Hybrid 26.8%); SC 90.9% on
// 8192 BG/Q cores (FS 10.8%, Hybrid 18.6%); 91.9% at 524288 cores.
//
//   ./bench_fig9_scaling [--platform=xeon|bgq|extreme|all] [--atoms=N]
//                        [--full] [--metrics-out=FILE]
//
// --metrics-out emits one structured JSONL record per (platform, core
// count) row — speedups, efficiencies, and the max-rank work behind
// them — so the figure is reproducible from the artifact.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "md/builders.hpp"
#include "obs/metrics.hpp"
#include "perf/cluster_sim.hpp"
#include "perf/cost_model.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace scmd;

void strong_scaling(const PlatformParams& platform, long long atoms,
                    const std::vector<int>& core_counts,
                    const std::string& csv,
                    obs::MetricsRegistry* metrics,
                    int tasks_per_core = 1) {
  const VashishtaSiO2 field;
  Rng rng(3000 + static_cast<std::uint64_t>(atoms));
  const ParticleSystem sys = make_silica(atoms, 2.2, 300.0, rng);
  const ClusterSimulator sim(sys, field);

  Table table({"cores", "ranks", "N/P", "S_SC", "eff_SC(%)", "S_FS",
               "eff_FS(%)", "S_Hybrid", "eff_Hy(%)"});
  table.set_title("Fig. 9 (" + platform.name + ") — strong scaling, " +
                  std::to_string(atoms) + " atoms, " +
                  std::to_string(tasks_per_core) + " task(s)/core");
  table.set_precision(1);

  const char* names[3] = {"SC", "FS", "Hybrid"};
  double t_ref[3] = {0, 0, 0};
  int p_ref = 0;
  if (metrics != nullptr) metrics->set_attr("platform", platform.name);
  for (int cores : core_counts) {
    const int P = cores * tasks_per_core;
    const ProcessGrid pgrid = ProcessGrid::factor(P);
    double t[3];
    bool ok = true;
    for (int k = 0; k < 3 && ok; ++k) {
      try {
        const ClusterSample s = sim.measure(names[k], pgrid, 4);
        t[k] = estimate_step(s.max_rank, platform).total();
        if (metrics != nullptr) {
          const std::string prefix = std::string("maxrank.") + names[k];
          metrics->set(prefix + ".search",
                       static_cast<double>(
                           s.max_rank.total_search_steps()));
          metrics->set(prefix + ".bytes_in",
                       static_cast<double>(s.max_rank.bytes_imported));
          metrics->set(prefix + ".t_step", t[k]);
        }
      } catch (const Error&) {
        ok = false;
      }
    }
    if (!ok) {
      std::cout << "# P = " << P << ": grain too fine, stopping sweep\n";
      break;
    }
    if (p_ref == 0) {
      p_ref = P;
      for (int k = 0; k < 3; ++k) t_ref[k] = t[k];
    }
    std::vector<TableCell> row{static_cast<long long>(cores),
                               static_cast<long long>(P),
                               atoms / static_cast<long long>(P)};
    for (int k = 0; k < 3; ++k) {
      const double speedup = t_ref[k] / t[k];
      row.push_back(speedup);
      row.push_back(100.0 * speedup / (static_cast<double>(P) / p_ref));
      if (metrics != nullptr) {
        const std::string prefix = std::string("scaling.") + names[k];
        metrics->set(prefix + ".speedup", speedup);
        metrics->set(prefix + ".efficiency",
                     100.0 * speedup / (static_cast<double>(P) / p_ref));
      }
    }
    if (metrics != nullptr) {
      metrics->set("cores", static_cast<double>(cores));
      metrics->set("ranks", static_cast<double>(P));
      metrics->set("atoms", static_cast<double>(atoms));
      metrics->emit(cores);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
  if (!csv.empty()) table.save_csv(platform.name + "_" + csv);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv,
                {"platform", "atoms", "full", "quick", "csv", "metrics-out"});
  const std::string which = cli.get("platform", "all");
  const bool full = cli.get_bool("full", false);
  const std::string csv = cli.get("csv", "");

  std::unique_ptr<scmd::obs::MetricsRegistry> metrics;
  const std::string metrics_out = cli.get("metrics-out", "");
  if (!metrics_out.empty()) {
    metrics = std::make_unique<scmd::obs::MetricsRegistry>();
    metrics->add_sink(std::make_unique<scmd::obs::JsonlSink>(metrics_out));
    metrics->set_attr("bench", "fig9_scaling");
  }

  // Paper sizes by default (0.88M / 0.79M / 50.3M atoms): per-rank
  // sampling keeps the sweep affordable.  --quick shrinks ~8x.
  const bool quick = cli.get_bool("quick", false) && !full;
  const long long xeon_atoms = cli.get_int("atoms", quick ? 110000 : 880000);
  const long long bgq_atoms = cli.get_int("atoms", quick ? 98000 : 790000);
  const long long extreme_atoms =
      cli.get_int("atoms", quick ? 6300000 : 50300000);

  if (which == "xeon" || which == "all") {
    // 1..64 dual-6-core nodes.
    strong_scaling(xeon_cluster(), xeon_atoms,
                   {12, 24, 48, 96, 192, 384, 768}, csv, metrics.get());
  }
  if (which == "bgq" || which == "all") {
    // 1..512 nodes, 16 cores each, 4 MPI tasks per core as in the paper
    // (finest grain ~26 atoms per task).
    strong_scaling(bluegene_q(), bgq_atoms,
                   {16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}, csv,
                   metrics.get(), /*tasks_per_core=*/4);
  }
  if (which == "extreme" || which == "all") {
    // 8..32768 nodes; the paper reports 91.9% efficiency at 524288 cores
    // with 2,097,152 MPI tasks (4/core), reference = 128 cores.
    strong_scaling(bluegene_q(), extreme_atoms,
                   {128, 1024, 8192, 65536, 262144, 524288}, csv,
                   metrics.get(), /*tasks_per_core=*/4);
  }
  return 0;
}
