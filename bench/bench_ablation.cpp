// Ablation of the shift-collapse algorithm's two phases (DESIGN.md §6):
//
//   FS          — neither phase (the naive complete pattern)
//   OC  = OC-SHIFT(FS)        — import-volume reduction only
//   RC  = R-COLLAPSE(FS)      — search halving only (generalized half-shell)
//   SC  = R-COLLAPSE(OC-SHIFT(FS)) — both
//
// For the silica workload on a virtual cluster, reports each variant's
// per-rank search work, ghost import, and modeled step time at a fine and
// a coarse grain — quantifying what each phase buys, which is exactly the
// paper's Sec. 4 claims in table form.
//
//   ./bench_ablation [--platform=xeon|bgq] [--grain=24 --grain2=2000]

#include <iostream>

#include "md/builders.hpp"
#include "perf/cluster_sim.hpp"
#include "perf/cost_model.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace scmd;
  const Cli cli(argc, argv, {"platform", "grain", "grain2", "ranks"});
  const PlatformParams platform =
      platform_by_name(cli.get("platform", "xeon"));
  const int ranks = static_cast<int>(cli.get_int("ranks", 512));
  const VashishtaSiO2 field;

  for (long long grain : {cli.get_int("grain", 32), cli.get_int("grain2",
                                                                2000)}) {
    const ProcessGrid pgrid = ProcessGrid::factor(ranks);
    const long long atoms = grain * ranks;
    Rng rng(4000 + static_cast<std::uint64_t>(grain));
    const ParticleSystem sys = make_silica(atoms, 2.2, 300.0, rng);
    const ClusterSimulator sim(sys, field);

    Table table({"variant", "search/rank", "ghosts/rank", "msgs",
                 "T_compute(s)", "T_comm(s)", "T_step(s)", "vs FS"});
    table.set_title("SC phase ablation, N/P = " + std::to_string(grain) +
                    ", " + std::to_string(ranks) + " ranks (" +
                    platform.name + ")");
    table.set_precision(6);

    double t_fs = 0.0;
    for (const std::string variant : {"FS", "OC", "RC", "SC"}) {
      const ClusterSample s = sim.measure(variant, pgrid, 4);
      const StepCost cost = estimate_step(s.max_rank, platform);
      if (variant == "FS") t_fs = cost.total();
      table.add_row(
          {variant,
           static_cast<long long>(s.max_rank.total_search_steps()),
           static_cast<long long>(s.max_rank.ghost_atoms_imported),
           static_cast<long long>(s.max_rank.messages), cost.compute_s,
           cost.comm_s, cost.total(), t_fs / cost.total()});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
