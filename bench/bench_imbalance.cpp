// Load-imbalance study (ours): the paper benchmarks uniformly distributed
// atoms (Sec. 5.3); spatial decomposition then balances by construction.
// This bench quantifies what happens when it does not — a two-phase system
// (dense slab + dilute vapor) is decomposed over P ranks — and what the
// cost-driven balancer (src/balance) wins back: for each strategy the
// static uniform bricks are compared against the solver's non-uniform
// cuts, both measured with the real per-rank force kernels through the
// cluster simulator.
//
//   ./bench_imbalance [--atoms=24000] [--dense-fraction=0.8] [--ranks=64]
//
// With --real the two-phase system additionally runs through the real
// message-passing parallel engine (in-process ranks): once static and once
// with --balance=auto, cross-checking the cluster-sim predicted max/mean
// search ratio against measured per-rank counters.
//
//   ./bench_imbalance --real [--real-ranks=8] [--real-steps=15]
//                     [--real-dt=0.001]

#include <algorithm>
#include <array>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "balance/cost_field.hpp"
#include "balance/rebalancer.hpp"
#include "balance/solver.hpp"
#include "cell/domain.hpp"
#include "md/builders.hpp"
#include "parallel/parallel_engine.hpp"
#include "perf/cluster_sim.hpp"
#include "perf/cost_model.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace scmd;

/// One serial force pass with per-cell cost attribution on the
/// decomposition-aligned grids, apportioned onto the fine lattice and
/// solved for balanced cuts.  Returns nothing when no feasible cuts exist.
std::optional<Decomposition> plan_balanced(const ParticleSystem& sys,
                                           const ForceField& field,
                                           const std::string& strategy_name,
                                           const ProcessGrid& align, int ranks,
                                           double* predicted_ratio) {
  const Decomposition uniform_decomp(sys.box(), align);
  const auto strategy = make_strategy(strategy_name, field, false);

  DomainSet domains;
  ForceAccum accum;
  EngineCounters counters;
  std::array<CellDomain, kMaxTupleLen + 1> dom_storage;
  std::array<std::vector<Vec3>, kMaxTupleLen + 1> f_storage;
  std::array<std::vector<std::uint64_t>, kMaxTupleLen + 1> cost_storage;
  std::vector<Int3> grid_dims;
  std::vector<GridReach> reaches;
  for (int n = 2; n <= field.max_n(); ++n) {
    if (!strategy->needs_grid(n)) continue;
    const std::size_t ni = static_cast<std::size_t>(n);
    const double rcut = field.rcut(n) > 0.0 ? field.rcut(n) : field.rcut(2);
    const CellGrid grid =
        uniform_decomp.aligned_grid(strategy->min_cell_size(n, rcut));
    dom_storage[ni] = make_serial_domain(grid, strategy->halo(n),
                                         sys.positions(), sys.types());
    f_storage[ni].assign(
        static_cast<std::size_t>(dom_storage[ni].num_atoms()), Vec3{});
    cost_storage[ni].assign(static_cast<std::size_t>(grid.dims().volume()),
                            0);
    domains.dom[ni] = &dom_storage[ni];
    accum.f[ni] = &f_storage[ni];
    accum.cell_cost[ni] = &cost_storage[ni];

    const HaloSpec h = strategy->halo(n);
    const HaloSpec ext = strategy->root_reach(n);
    GridReach gr;
    gr.dims = grid.dims();
    for (int a = 0; a < 3; ++a) {
      gr.halo_lo[a] = h.lo[a] + ext.lo[a];
      gr.halo_hi[a] = h.hi[a] + ext.hi[a];
    }
    grid_dims.push_back(grid.dims());
    reaches.push_back(gr);
  }
  strategy->compute(field, domains, accum, counters);

  const Int3 res = CostField::recommend_res(grid_dims);
  CostField cost(sys.box(), res);
  for (int n = 2; n <= field.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (domains.dom[ni] == nullptr) continue;
    cost.deposit(dom_storage[ni], cost_storage[ni]);
  }

  const auto limits = width_limits_for(res, reaches);
  const BalanceSolution sol =
      solve_balanced_cuts(cost.values(), res, ranks, limits);
  if (sol.predicted_ratio < 0.0) return std::nullopt;
  *predicted_ratio = sol.predicted_ratio;
  return Decomposition(sys.box(), ProcessGrid(sol.pgrid_dims), sol.cuts, res,
                       align);
}

double search_ratio_of(const ClusterSample& s) {
  return static_cast<double>(s.max_rank.total_search_steps()) /
         std::max<double>(
             1.0, static_cast<double>(s.mean_rank.total_search_steps()));
}

/// Real message-passing cross-check: static vs auto-balanced runs.  The
/// compressed dense phase is stiff, so the caller passes a timestep small
/// enough for stable integration (the defaults explode within a few fs).
void run_real(const ParticleSystem& base, const ForceField& field, int ranks,
              int steps, double dt) {
  const ProcessGrid pgrid = ProcessGrid::factor(ranks);
  std::cout << "# real parallel-engine cross-check: " << base.num_atoms()
            << " atoms, " << ranks << " ranks, " << steps << " steps\n";

  const ClusterSimulator sim(base, field);
  Table table({"strategy", "sim predicted", "real static", "real balanced",
               "rebalances"});
  table.set_title("two-phase silica, predicted vs measured search max/mean");
  table.set_precision(4);
  for (const std::string strategy : {"SC", "FS", "Hybrid"}) {
    double predicted = 0.0;
    try {
      predicted = search_ratio_of(sim.measure(strategy, pgrid, ranks));
    } catch (const Error& e) {
      std::cout << "# " << strategy << ": " << e.what() << "\n";
      continue;
    }

    // Static run: balancing in measurement-only mode so the per-step
    // max/mean ratio is computed from the same per-cell counters the
    // balancer uses.
    ParticleSystem sys_static = base;
    ParallelRunConfig rc;
    rc.num_steps = steps;
    rc.dt = dt;
    BalanceConfig off;
    off.mode = BalanceConfig::Mode::kOff;
    rc.make_balancer = make_rebalancer_factory(off);
    const ParallelRunResult stat =
        run_parallel_md(sys_static, field, strategy, pgrid, rc);

    ParticleSystem sys_bal = base;
    ParallelRunConfig bc;
    bc.num_steps = steps;
    bc.dt = dt;
    BalanceConfig aut;
    aut.mode = BalanceConfig::Mode::kAuto;
    aut.min_interval = 2;
    bc.make_balancer = make_rebalancer_factory(aut);
    const ParallelRunResult bal =
        run_parallel_md(sys_bal, field, strategy, pgrid, bc);

    table.add_row({strategy, predicted, stat.last_balance_ratio,
                   bal.last_balance_ratio,
                   static_cast<double>(bal.rebalances)});
  }
  table.print(std::cout);
  std::cout << "# `sim predicted` samples every rank of the virtual "
               "cluster; `real *` are measured per-rank counters from the "
               "message-passing engine (last step's window).\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv,
                {"atoms", "dense-fraction", "ranks", "platform", "seed",
                 "real", "real-ranks", "real-steps", "real-dt"});
  const long long atoms = cli.get_int("atoms", 24000);
  const double dense_fraction = cli.get_double("dense-fraction", 0.8);
  const int ranks = static_cast<int>(cli.get_int("ranks", 64));
  const PlatformParams platform =
      platform_by_name(cli.get("platform", "xeon"));

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 31)));
  const VashishtaSiO2 field;

  std::optional<ParticleSystem> two_phase_sys;
  for (const bool two_phase : {false, true}) {
    Rng build_rng = rng;  // same atoms either way
    const ParticleSystem sys =
        two_phase
            ? make_two_phase_silica(atoms, dense_fraction, 2.2, 300.0,
                                    build_rng)
            : make_silica(atoms, 2.2, 300.0, build_rng);
    if (two_phase) two_phase_sys = sys;
    const ClusterSimulator sim(sys, field);
    const ProcessGrid pgrid = ProcessGrid::factor(ranks);

    Table table({"strategy", "search max/mean", "ghosts max/mean",
                 "T_step max (s)", "T_step mean (s)"});
    table.set_title(std::string(two_phase ? "two-phase" : "uniform") +
                    " silica, " + std::to_string(atoms) + " atoms, " +
                    std::to_string(ranks) + " ranks");
    table.set_precision(4);
    for (const std::string strategy : {"SC", "FS", "Hybrid"}) {
      ClusterSample s;
      try {
        s = sim.measure(strategy, pgrid, ranks);  // sample every rank
      } catch (const Error& e) {
        std::cout << "# " << strategy << ": " << e.what() << "\n";
        continue;
      }
      const double search_ratio = search_ratio_of(s);
      const double ghost_ratio =
          static_cast<double>(s.max_rank.ghost_atoms_imported) /
          std::max<double>(
              1.0, static_cast<double>(s.mean_rank.ghost_atoms_imported));
      table.add_row({strategy, search_ratio, ghost_ratio,
                     estimate_step(s.max_rank, platform).total(),
                     estimate_step(s.mean_rank, platform).total()});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Balanced decompositions for the two-phase system: measure per-cell
  // costs once (serial pass on the aligned grids), solve for non-uniform
  // cuts, and re-measure the same per-rank kernels on the balanced bricks.
  {
    const ParticleSystem& sys = *two_phase_sys;
    const ClusterSimulator sim(sys, field);
    const ProcessGrid align = ProcessGrid::factor(ranks);

    Table table({"strategy", "static", "balanced", "improvement",
                 "predicted", "pgrid"});
    table.set_title("two-phase silica, static vs balanced search max/mean");
    table.set_precision(4);
    for (const std::string strategy : {"SC", "FS", "Hybrid"}) {
      try {
        const double stat =
            search_ratio_of(sim.measure(strategy, align, ranks));
        double predicted = 0.0;
        const std::optional<Decomposition> balanced =
            plan_balanced(sys, field, strategy, align, ranks, &predicted);
        if (!balanced) {
          std::cout << "# " << strategy << ": no feasible balanced cuts\n";
          continue;
        }
        const double bal =
            search_ratio_of(sim.measure(strategy, *balanced, ranks));
        const Int3 pd = balanced->pgrid().dims();
        table.add_row({strategy, stat, bal, stat / bal, predicted,
                       std::to_string(pd.x) + "x" + std::to_string(pd.y) +
                           "x" + std::to_string(pd.z)});
      } catch (const Error& e) {
        std::cout << "# " << strategy << ": " << e.what() << "\n";
        continue;
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  if (cli.get_bool("real", false)) {
    const int real_ranks = static_cast<int>(cli.get_int("real-ranks", 8));
    const int real_steps = static_cast<int>(cli.get_int("real-steps", 15));
    const double real_dt = cli.get_double("real-dt", 0.001);
    run_real(*two_phase_sys, field, real_ranks, real_steps, real_dt);
  }

  std::cout << "# uniform workloads balance by construction; density "
               "contrast multiplies the bulk-synchronous step time by the "
               "max/mean work ratio for every strategy.  The cost-driven "
               "cuts recover most of it while keeping axis-aligned bricks "
               "(same staged halo exchange).\n";
  return 0;
}
