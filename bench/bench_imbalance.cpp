// Load-imbalance study (ours): the paper benchmarks uniformly distributed
// atoms (Sec. 5.3); spatial decomposition then balances by construction.
// This bench quantifies what happens when it does not: a two-phase system
// (dense slab + dilute vapor) is decomposed over P ranks and the
// max-to-mean ratios of the per-rank search work and import volume are
// reported per strategy.
//
//   ./bench_imbalance [--atoms=24000] [--dense-fraction=0.8] [--ranks=64]

#include <algorithm>
#include <iostream>

#include "md/builders.hpp"
#include "perf/cluster_sim.hpp"
#include "perf/cost_model.hpp"
#include "potentials/vashishta.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace scmd;

/// Silica-density box with `dense_fraction` of the atoms packed into the
/// lower half (z < L/2) and the rest spread over the upper half.
ParticleSystem make_two_phase(long long atoms, double dense_fraction,
                              Rng& rng) {
  // Box sized for the paper's density overall.
  ParticleSystem uniform = make_silica(atoms, 2.2, 300.0, rng);
  const double L = uniform.box().length(2);
  ParticleSystem sys(uniform.box(), {28.0855, 15.9994});
  const long long dense = static_cast<long long>(
      dense_fraction * static_cast<double>(atoms));
  for (int i = 0; i < uniform.num_atoms(); ++i) {
    Vec3 r = uniform.positions()[i];
    // Squash the first `dense` atoms into the lower half, stretch the
    // rest over the upper half (preserves the local lattice loosely).
    if (i < dense) {
      r.z = r.z * 0.5;
    } else {
      r.z = L * 0.5 + r.z * 0.5;
    }
    sys.add_atom(r, uniform.velocities()[i], uniform.types()[i]);
  }
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv,
                {"atoms", "dense-fraction", "ranks", "platform", "seed"});
  const long long atoms = cli.get_int("atoms", 24000);
  const double dense_fraction = cli.get_double("dense-fraction", 0.8);
  const int ranks = static_cast<int>(cli.get_int("ranks", 64));
  const PlatformParams platform =
      platform_by_name(cli.get("platform", "xeon"));

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 31)));
  const VashishtaSiO2 field;

  for (const bool two_phase : {false, true}) {
    Rng build_rng = rng;  // same atoms either way
    const ParticleSystem sys =
        two_phase ? make_two_phase(atoms, dense_fraction, build_rng)
                  : make_silica(atoms, 2.2, 300.0, build_rng);
    const ClusterSimulator sim(sys, field);
    const ProcessGrid pgrid = ProcessGrid::factor(ranks);

    Table table({"strategy", "search max/mean", "ghosts max/mean",
                 "T_step max (s)", "T_step mean (s)"});
    table.set_title(std::string(two_phase ? "two-phase" : "uniform") +
                    " silica, " + std::to_string(atoms) + " atoms, " +
                    std::to_string(ranks) + " ranks");
    table.set_precision(4);
    for (const std::string strategy : {"SC", "FS", "Hybrid"}) {
      ClusterSample s;
      try {
        s = sim.measure(strategy, pgrid, ranks);  // sample every rank
      } catch (const Error& e) {
        std::cout << "# " << strategy << ": " << e.what() << "\n";
        continue;
      }
      const double search_ratio =
          static_cast<double>(s.max_rank.total_search_steps()) /
          std::max<double>(1.0,
                           static_cast<double>(
                               s.mean_rank.total_search_steps()));
      const double ghost_ratio =
          static_cast<double>(s.max_rank.ghost_atoms_imported) /
          std::max<double>(
              1.0, static_cast<double>(s.mean_rank.ghost_atoms_imported));
      table.add_row({strategy, search_ratio, ghost_ratio,
                     estimate_step(s.max_rank, platform).total(),
                     estimate_step(s.mean_rank, platform).total()});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "# uniform workloads balance by construction; density "
               "contrast multiplies the bulk-synchronous step time by the "
               "max/mean work ratio for every strategy.\n";
  return 0;
}
