// Micro-benchmarks (google-benchmark): pattern construction, tuple
// enumeration throughput, force kernels, domain binning.

#include <benchmark/benchmark.h>

#include "cell/domain.hpp"
#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "pattern/generate.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"
#include "tuples/kernels/kernels.hpp"
#include "tuples/ucp.hpp"

namespace {

using namespace scmd;

void BM_GenerateFs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_fs(n));
  }
}
BENCHMARK(BM_GenerateFs)->Arg(2)->Arg(3)->Arg(4);

void BM_MakeSc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_sc(n));
  }
}
BENCHMARK(BM_MakeSc)->Arg(2)->Arg(3)->Arg(4);

void BM_RCollapsePairwise(benchmark::State& state) {
  const Pattern base = oc_shift(generate_fs(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(r_collapse_pairwise(base));
  }
}
BENCHMARK(BM_RCollapsePairwise);

struct SilicaFixture {
  SilicaFixture() : rng(42), sys(make_silica(3000, 2.2, 300.0, rng)) {}
  Rng rng;
  ParticleSystem sys;
  VashishtaSiO2 field;
};

void BM_SerialDomainBuild(benchmark::State& state) {
  SilicaFixture f;
  const CellGrid grid(f.sys.box(), f.field.rcut(2));
  const HaloSpec halo = halo_for(make_sc(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_serial_domain(grid, halo, f.sys.positions(), f.sys.types()));
  }
  state.SetItemsProcessed(state.iterations() * f.sys.num_atoms());
}
BENCHMARK(BM_SerialDomainBuild);

void BM_TupleEnumeration(benchmark::State& state) {
  // Triplet enumeration throughput on the silica workload: SC vs FS.
  SilicaFixture f;
  const bool use_sc = state.range(0) != 0;
  const Pattern psi = use_sc ? make_sc(3) : generate_fs(3);
  const CellGrid grid(f.sys.box(), f.field.rcut(3));
  const CellDomain dom =
      make_serial_domain(grid, halo_for(psi), f.sys.positions(),
                         f.sys.types());
  const CompiledPattern cp(psi);
  for (auto _ : state) {
    TupleCounters tc = count_tuples(dom, cp, f.field.rcut(3));
    benchmark::DoNotOptimize(tc);
    state.counters["search_steps"] =
        static_cast<double>(tc.search_steps);
  }
}
BENCHMARK(BM_TupleEnumeration)->Arg(1)->Arg(0);

void BM_ForceComputeStrategy(benchmark::State& state) {
  SilicaFixture f;
  const char* names[3] = {"SC", "FS", "Hybrid"};
  const std::string name = names[state.range(0)];
  SerialEngine engine(f.sys, f.field, make_strategy(name, f.field));
  for (auto _ : state) {
    engine.compute_forces();
  }
  state.SetLabel(name);
  state.SetItemsProcessed(state.iterations() * f.sys.num_atoms());
}
BENCHMARK(BM_ForceComputeStrategy)->Arg(0)->Arg(1)->Arg(2);

void BM_LjPairKernel(benchmark::State& state) {
  const LennardJones lj;
  Rng rng(7);
  std::vector<Vec3> rj;
  for (int i = 0; i < 1024; ++i) {
    const Vec3 d{rng.normal(), rng.normal(), rng.normal()};
    rj.push_back(d * (rng.uniform(0.9, 2.4) / d.norm()));
  }
  Vec3 fi, fj;
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lj.eval_pair(0, 0, {0, 0, 0}, rj[k++ & 1023], fi, fj));
  }
}
BENCHMARK(BM_LjPairKernel);

void BM_VashishtaTripletKernel(benchmark::State& state) {
  const VashishtaSiO2 v;
  Rng rng(8);
  std::vector<std::pair<Vec3, Vec3>> ends;
  for (int i = 0; i < 1024; ++i) {
    ends.push_back({{rng.uniform(1.4, 2.3), rng.uniform(-0.4, 0.4), 0.0},
                    {rng.uniform(-0.4, 0.4), rng.uniform(1.4, 2.3), 0.0}});
  }
  Vec3 fi, fj, fk;
  std::size_t k = 0;
  for (auto _ : state) {
    const auto& [ri, rk_] = ends[k++ & 1023];
    benchmark::DoNotOptimize(v.eval_triplet(kOxygen, kSilicon, kOxygen, ri,
                                            {0, 0, 0}, rk_, fi, fj, fk));
  }
}
BENCHMARK(BM_VashishtaTripletKernel);

// --- Batched tuple-kernel benchmarks (docs/KERNELS.md) ---------------
//
// The arity dispatch (kernels::BoundKernels) serves two contexts: the
// cache-build sweep (enumerate at rcut+skin, record, then one kernel
// pass at the exact rcut) and cached replay (the kernel pass alone over
// the recorded stream).  Both are benchmarked per arity with the
// batched kernels and with the scalar fallback (KernelMode::kScalar),
// so a kernel regression shows up as a ratio change between the
// `scalar=0` and `scalar=1` rows.  Tuple counts match the silica
// replay stream, including its exact-rcut mask failures and inert
// bond-bending triplets — the mix the kernels are shaped around.

constexpr double kBenchSkin = 0.5;

/// Recorded silica tuple stream for arity n at rcut(n) + skin, plus
/// everything a kernel eval needs.  The domain owns the slot tables the
/// recorded indices point into.
struct KernelStream {
  KernelStream(const SilicaFixture& f, int n)
      : psi(make_sc(n)),
        grid(f.sys.box(), f.field.rcut(n) + kBenchSkin),
        dom(make_serial_domain(grid, halo_for(psi), f.sys.positions(),
                               f.sys.types())),
        cp(psi),
        rcut2(f.field.rcut(n) * f.field.rcut(n)) {
    for_each_tuple(dom, cp, f.field.rcut(n) + kBenchSkin,
                   [&](std::span<const int> t) {
                     rec.insert(rec.end(), t.begin(), t.end());
                   },
                   nullptr);
    count = static_cast<long long>(rec.size()) / n;
  }

  Pattern psi;
  CellGrid grid;
  CellDomain dom;
  CompiledPattern cp;
  double rcut2;
  std::vector<int> rec;
  long long count = 0;
};

void BM_KernelReplay(benchmark::State& state) {
  // range(0) = arity, range(1) = 1 for the scalar fallback.
  const int n = static_cast<int>(state.range(0));
  const bool scalar = state.range(1) != 0;
  SilicaFixture f;
  const KernelStream s(f, n);
  const kernels::BoundKernels kern(
      f.field,
      scalar ? kernels::KernelMode::kScalar : kernels::KernelMode::kAuto);
  std::vector<Vec3> fd(s.dom.positions().size());
  for (auto _ : state) {
    std::fill(fd.begin(), fd.end(), Vec3{});
    std::uint64_t evals = 0;
    benchmark::DoNotOptimize(kern.eval(n, s.rec.data(), s.count,
                                       s.dom.positions(), s.dom.types(),
                                       s.rcut2, fd.data(), evals));
    benchmark::DoNotOptimize(evals);
  }
  state.SetLabel(std::string(scalar ? "scalar" : "batched") +
                 " n=" + std::to_string(n));
  state.SetItemsProcessed(state.iterations() * s.count);
}
BENCHMARK(BM_KernelReplay)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1});

void BM_KernelBuild(benchmark::State& state) {
  // The build-side shape: enumerate at rcut + skin, record, then one
  // kernel pass at the exact rcut over the recorded stream.
  const int n = static_cast<int>(state.range(0));
  const bool scalar = state.range(1) != 0;
  SilicaFixture f;
  const KernelStream s(f, n);
  const kernels::BoundKernels kern(
      f.field,
      scalar ? kernels::KernelMode::kScalar : kernels::KernelMode::kAuto);
  std::vector<Vec3> fd(s.dom.positions().size());
  std::vector<int> rec;
  rec.reserve(s.rec.size());
  for (auto _ : state) {
    rec.clear();
    for_each_tuple(s.dom, s.cp, f.field.rcut(n) + kBenchSkin,
                   [&](std::span<const int> t) {
                     rec.insert(rec.end(), t.begin(), t.end());
                   },
                   nullptr);
    std::fill(fd.begin(), fd.end(), Vec3{});
    std::uint64_t evals = 0;
    benchmark::DoNotOptimize(
        kern.eval(n, rec.data(), static_cast<long long>(rec.size()) / n,
                  s.dom.positions(), s.dom.types(), s.rcut2, fd.data(),
                  evals));
    benchmark::DoNotOptimize(evals);
  }
  state.SetLabel(std::string(scalar ? "scalar" : "batched") +
                 " n=" + std::to_string(n));
  state.SetItemsProcessed(state.iterations() * s.count);
}
BENCHMARK(BM_KernelBuild)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1});

}  // namespace

BENCHMARK_MAIN();
