// Micro-benchmarks (google-benchmark): pattern construction, tuple
// enumeration throughput, force kernels, domain binning.

#include <benchmark/benchmark.h>

#include "cell/domain.hpp"
#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "pattern/generate.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"
#include "tuples/ucp.hpp"

namespace {

using namespace scmd;

void BM_GenerateFs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_fs(n));
  }
}
BENCHMARK(BM_GenerateFs)->Arg(2)->Arg(3)->Arg(4);

void BM_MakeSc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_sc(n));
  }
}
BENCHMARK(BM_MakeSc)->Arg(2)->Arg(3)->Arg(4);

void BM_RCollapsePairwise(benchmark::State& state) {
  const Pattern base = oc_shift(generate_fs(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(r_collapse_pairwise(base));
  }
}
BENCHMARK(BM_RCollapsePairwise);

struct SilicaFixture {
  SilicaFixture() : rng(42), sys(make_silica(3000, 2.2, 300.0, rng)) {}
  Rng rng;
  ParticleSystem sys;
  VashishtaSiO2 field;
};

void BM_SerialDomainBuild(benchmark::State& state) {
  SilicaFixture f;
  const CellGrid grid(f.sys.box(), f.field.rcut(2));
  const HaloSpec halo = halo_for(make_sc(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_serial_domain(grid, halo, f.sys.positions(), f.sys.types()));
  }
  state.SetItemsProcessed(state.iterations() * f.sys.num_atoms());
}
BENCHMARK(BM_SerialDomainBuild);

void BM_TupleEnumeration(benchmark::State& state) {
  // Triplet enumeration throughput on the silica workload: SC vs FS.
  SilicaFixture f;
  const bool use_sc = state.range(0) != 0;
  const Pattern psi = use_sc ? make_sc(3) : generate_fs(3);
  const CellGrid grid(f.sys.box(), f.field.rcut(3));
  const CellDomain dom =
      make_serial_domain(grid, halo_for(psi), f.sys.positions(),
                         f.sys.types());
  const CompiledPattern cp(psi);
  for (auto _ : state) {
    TupleCounters tc = count_tuples(dom, cp, f.field.rcut(3));
    benchmark::DoNotOptimize(tc);
    state.counters["search_steps"] =
        static_cast<double>(tc.search_steps);
  }
}
BENCHMARK(BM_TupleEnumeration)->Arg(1)->Arg(0);

void BM_ForceComputeStrategy(benchmark::State& state) {
  SilicaFixture f;
  const char* names[3] = {"SC", "FS", "Hybrid"};
  const std::string name = names[state.range(0)];
  SerialEngine engine(f.sys, f.field, make_strategy(name, f.field));
  for (auto _ : state) {
    engine.compute_forces();
  }
  state.SetLabel(name);
  state.SetItemsProcessed(state.iterations() * f.sys.num_atoms());
}
BENCHMARK(BM_ForceComputeStrategy)->Arg(0)->Arg(1)->Arg(2);

void BM_LjPairKernel(benchmark::State& state) {
  const LennardJones lj;
  Rng rng(7);
  std::vector<Vec3> rj;
  for (int i = 0; i < 1024; ++i) {
    const Vec3 d{rng.normal(), rng.normal(), rng.normal()};
    rj.push_back(d * (rng.uniform(0.9, 2.4) / d.norm()));
  }
  Vec3 fi, fj;
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lj.eval_pair(0, 0, {0, 0, 0}, rj[k++ & 1023], fi, fj));
  }
}
BENCHMARK(BM_LjPairKernel);

void BM_VashishtaTripletKernel(benchmark::State& state) {
  const VashishtaSiO2 v;
  Rng rng(8);
  std::vector<std::pair<Vec3, Vec3>> ends;
  for (int i = 0; i < 1024; ++i) {
    ends.push_back({{rng.uniform(1.4, 2.3), rng.uniform(-0.4, 0.4), 0.0},
                    {rng.uniform(-0.4, 0.4), rng.uniform(1.4, 2.3), 0.0}});
  }
  Vec3 fi, fj, fk;
  std::size_t k = 0;
  for (auto _ : state) {
    const auto& [ri, rk_] = ends[k++ & 1023];
    benchmark::DoNotOptimize(v.eval_triplet(kOxygen, kSilicon, kOxygen, ri,
                                            {0, 0, 0}, rk_, fi, fj, fk));
  }
}
BENCHMARK(BM_VashishtaTripletKernel);

}  // namespace

BENCHMARK_MAIN();
