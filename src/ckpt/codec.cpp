#include "ckpt/codec.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "ckpt/crc32.hpp"
#include "support/error.hpp"

namespace scmd::ckpt {

std::string section_tag(std::uint32_t id) {
  std::string tag(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((id >> (8 * i)) & 0xFF);
    tag[static_cast<std::size_t>(i)] =
        (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return tag;
}

void ByteWriter::append(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  out_.insert(out_.end(), p, p + size);
}

void ByteReader::require(std::uint64_t size) const {
  SCMD_REQUIRE(size <= remaining(),
               "truncated payload: need " + std::to_string(size) +
                   " bytes, have " + std::to_string(remaining()));
}

void ByteReader::copy(void* dst, std::size_t size) {
  require(size);
  std::memcpy(dst, bytes_.data() + off_, size);
  off_ += size;
}

Bytes ByteReader::take(std::size_t size) {
  require(size);
  Bytes out(bytes_.begin() + static_cast<std::ptrdiff_t>(off_),
            bytes_.begin() + static_cast<std::ptrdiff_t>(off_ + size));
  off_ += size;
  return out;
}

void SectionFile::add(std::uint32_t id, Bytes payload) {
  sections_.push_back({id, std::move(payload)});
}

const Bytes* SectionFile::find(std::uint32_t id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return &s.payload;
  }
  return nullptr;
}

const Bytes& SectionFile::require(std::uint32_t id) const {
  const Bytes* payload = find(id);
  SCMD_REQUIRE(payload != nullptr,
               "checkpoint is missing required section " + section_tag(id));
  return *payload;
}

Bytes SectionFile::encode() const {
  ByteWriter w;
  w.pod(kContainerMagic);
  w.pod(kContainerVersion);
  w.pod(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    w.pod(s.id);
    w.pod(static_cast<std::uint64_t>(s.payload.size()));
    w.pod(crc32(s.payload.data(), s.payload.size()));
    w.append(s.payload.data(), s.payload.size());
  }
  return w.take();
}

SectionFile SectionFile::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  SCMD_REQUIRE(r.pod<std::uint64_t>() == kContainerMagic,
               "not an SC-MD v2 checkpoint container (bad magic)");
  const auto version = r.pod<std::uint32_t>();
  SCMD_REQUIRE(version == kContainerVersion,
               "unsupported checkpoint container version " +
                   std::to_string(version));
  const auto count = r.pod<std::uint32_t>();
  SectionFile file;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto id = r.pod<std::uint32_t>();
    const auto len = r.pod<std::uint64_t>();
    const auto want_crc = r.pod<std::uint32_t>();
    SCMD_REQUIRE(len <= r.remaining(),
                 "truncated section " + section_tag(id) + ": declares " +
                     std::to_string(len) + " bytes, " +
                     std::to_string(r.remaining()) + " remain");
    Bytes payload = r.take(static_cast<std::size_t>(len));
    const std::uint32_t got_crc = crc32(payload.data(), payload.size());
    SCMD_REQUIRE(got_crc == want_crc,
                 "CRC mismatch in section " + section_tag(id) +
                     " (stored " + std::to_string(want_crc) + ", computed " +
                     std::to_string(got_crc) + ")");
    file.add(id, std::move(payload));
  }
  SCMD_REQUIRE(r.done(), std::to_string(r.remaining()) +
                             " trailing bytes after the last section");
  return file;
}

namespace {

void write_all(int fd, const Bytes& bytes, const std::string& path) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      SCMD_REQUIRE(false, "write failed for " + path + ": " +
                              std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// fsync the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {  // best effort: some filesystems refuse dir fsync
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void atomic_write_file(const std::string& path, const Bytes& bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  SCMD_REQUIRE(fd >= 0,
               "cannot open " + tmp + " for writing: " + std::strerror(errno));
  try {
    write_all(fd, bytes, tmp);
    SCMD_REQUIRE(::fsync(fd) == 0,
                 "fsync failed for " + tmp + ": " + std::strerror(errno));
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    SCMD_REQUIRE(false, "rename " + tmp + " -> " + path + " failed: " +
                            std::strerror(err));
  }
  sync_parent_dir(path);
}

Bytes read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  SCMD_REQUIRE(fd >= 0,
               "cannot open " + path + " for reading: " + std::strerror(errno));
  Bytes out;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      SCMD_REQUIRE(false,
                   "read failed for " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

}  // namespace scmd::ckpt
