#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for framing
/// durable on-disk records.
///
/// Every checkpoint section and write-ahead-log frame carries a CRC so a
/// torn write, a flipped bit, or a mis-length is detected on read instead
/// of being deserialized into garbage state.  Table-driven, byte-at-a-time
/// — durability I/O is never a hot path.

#include <cstddef>
#include <cstdint>

namespace scmd::ckpt {

/// CRC of `len` bytes at `data`.  Chain incremental updates by passing
/// the previous return value as `seed` (the seed is the *finalized* CRC;
/// the pre/post inversion is handled internally).
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0);

}  // namespace scmd::ckpt
