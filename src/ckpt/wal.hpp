#pragma once

/// \file wal.hpp
/// Append-only write-ahead log for trajectory frames and per-step
/// metrics, so run output survives a crash instead of living in buffers.
///
/// File grammar (docs/DURABILITY.md):
///
///   u64  magic    0x53434d44_57414c31 ("SCMDWAL1")
///   u32  version  1
///   per record:
///     u32  type      (WalRecordType)
///     u32  payload length
///     u32  crc32 over (type, length, payload)
///     payload bytes
///
/// Durability model: records are appended to an O_APPEND fd and fsynced
/// in batches (every `fsync_interval_bytes`, plus on sync() and on
/// destruction), trading one tunable window of loss for not paying an
/// fsync per MD step.  A crash can therefore leave a *torn tail*: scan()
/// validates records front to back and stops at the first frame whose
/// length overruns the file or whose CRC fails — the valid prefix is the
/// recovered log, the tail is garbage by definition.
///
/// WalWriter::open on an existing file performs exactly that recovery:
/// it truncates the file to the valid prefix and resumes appending, so a
/// respawned rank continues the same log without replaying corruption.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "geom/vec3.hpp"
#include "obs/metrics.hpp"

namespace scmd::ckpt {

constexpr std::uint64_t kWalMagic = 0x53434d4457414c31ULL;  // SCMDWAL1
constexpr std::uint32_t kWalVersion = 1;

enum class WalRecordType : std::uint32_t {
  kTrajectory = 1,  ///< TrajFrame payload
  kMetrics = 2,     ///< one metrics JSON line (UTF-8, no newline)
  kNote = 3,        ///< free-form operational marker (recovery, restore)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kNote;
  Bytes payload;
};

/// Result of validating a log file front to back.
struct WalScan {
  std::vector<WalRecord> records;  ///< the valid prefix
  std::uint64_t valid_bytes = 0;   ///< prefix length including header
  bool torn_tail = false;          ///< trailing bytes failed validation
  std::uint64_t dropped_bytes = 0; ///< size of the discarded tail
};

/// Validate `path`.  Throws scmd::Error only when the file cannot be
/// read or its header is not a WAL at all; torn/corrupt *records* are
/// reported via torn_tail, never thrown — recovery is the normal path.
WalScan scan_wal(const std::string& path);

/// One trajectory frame: positions + velocities at a step.
struct TrajFrame {
  long long step = 0;
  std::vector<Vec3> pos;
  std::vector<Vec3> vel;
};

Bytes encode_traj_frame(const TrajFrame& frame);
TrajFrame decode_traj_frame(const Bytes& payload);

/// Appending writer with batched fsync and open-time recovery.
class WalWriter {
 public:
  /// Open (creating or recovering) `path`.  `fsync_interval_bytes` = 0
  /// fsyncs on every append.
  explicit WalWriter(const std::string& path,
                     std::uint64_t fsync_interval_bytes = 1u << 20);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void append(WalRecordType type, const Bytes& payload);
  void append(WalRecordType type, const std::string& text);

  /// Force everything appended so far onto stable storage.
  void sync();

  const std::string& path() const { return path_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t records_written() const { return records_written_; }

  /// Open-time recovery outcome.
  std::uint64_t recovered_records() const { return recovered_records_; }
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t fsync_interval_;
  std::uint64_t unsynced_ = 0;
  std::uint64_t bytes_written_ = 0;   ///< cumulative this writer
  std::uint64_t records_written_ = 0;
  std::uint64_t recovered_records_ = 0;
  bool recovered_torn_tail_ = false;
};

/// MetricsSink adapter: every emitted metrics record is appended to the
/// WAL as a kMetrics JSON line, making the metrics stream durable and
/// crash-recoverable alongside the trajectory (scmd_run `wal=` key).
class WalMetricsSink : public obs::MetricsSink {
 public:
  /// Not owned; must outlive the registry holding the sink.
  explicit WalMetricsSink(WalWriter& wal) : wal_(wal) {}

  void write_step(long long step, const obs::MetricsRegistry& reg) override;

 private:
  WalWriter& wal_;
};

}  // namespace scmd::ckpt
