#pragma once

/// \file codec.hpp
/// Versioned, CRC-framed section container — the on-disk grammar shared
/// by checkpoints (docs/DURABILITY.md).
///
/// A container is:
///
///   u64  magic    0x53434d445f434b32 ("SCMD_CK2", little-endian bytes)
///   u32  version  2
///   u32  section count
///   per section:
///     u32  id       fourcc ("ATOM", "BOXX", ...)
///     u64  payload length
///     u32  crc32 of the payload
///     payload bytes
///
/// Readers validate magic, version, every section length against the
/// remaining file size, and every CRC — a truncated or bit-flipped file
/// is an scmd::Error, never silently-partial state.  Unknown sections are
/// preserved so old readers skip what newer writers add (append-only
/// schema, like the metrics registry).
///
/// Files are written crash-safe: full contents to `<path>.tmp.<pid>`,
/// fsync, atomic rename onto `path`, fsync of the parent directory.  A
/// crash leaves either the old file or the new one — never a torn mix.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.hpp"  // Bytes, pack/unpack

namespace scmd::ckpt {

/// Section id from a 4-character tag ("ATOM" -> 0x4d4f5441 LE layout).
constexpr std::uint32_t section_id(const char (&tag)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(tag[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(tag[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(tag[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(tag[3])) << 24;
}

/// Decode a section id back into its 4-character tag (diagnostics).
std::string section_tag(std::uint32_t id);

constexpr std::uint64_t kContainerMagic = 0x53434d445f434b32ULL;  // SCMD_CK2
constexpr std::uint32_t kContainerVersion = 2;

/// Append-only byte builder for section payloads.
class ByteWriter {
 public:
  template <class T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    append(&value, sizeof(T));
  }

  template <class T>
  void array(const std::vector<T>& items) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(static_cast<std::uint64_t>(items.size()));
    if (!items.empty()) append(items.data(), items.size() * sizeof(T));
  }

  void append(const void* data, std::size_t size);

  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Bounds-checked reader over a payload: a short read throws scmd::Error
/// (truncated section), it never returns partial data.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& bytes) : bytes_(bytes) {}

  template <class T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    copy(&value, sizeof(T));
    return value;
  }

  template <class T>
  std::vector<T> array() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = pod<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> items(static_cast<std::size_t>(n));
    if (n > 0) copy(items.data(), items.size() * sizeof(T));
    return items;
  }

  /// Take the next `size` raw bytes.
  Bytes take(std::size_t size);

  std::size_t remaining() const { return bytes_.size() - off_; }
  bool done() const { return off_ == bytes_.size(); }

 private:
  void require(std::uint64_t size) const;
  void copy(void* dst, std::size_t size);

  const Bytes& bytes_;
  std::size_t off_ = 0;
};

/// One named section of a container.
struct Section {
  std::uint32_t id = 0;
  Bytes payload;
};

/// In-memory container: ordered sections with lookup by id.
class SectionFile {
 public:
  /// Append a section (ids may repeat; find() returns the first).
  void add(std::uint32_t id, Bytes payload);

  const std::vector<Section>& sections() const { return sections_; }
  bool has(std::uint32_t id) const { return find(id) != nullptr; }
  /// First section with `id`, or null.
  const Bytes* find(std::uint32_t id) const;
  /// First section with `id`; throws scmd::Error when absent.
  const Bytes& require(std::uint32_t id) const;

  /// Serialize with per-section CRCs.
  Bytes encode() const;

  /// Parse + validate (magic, version, lengths, CRCs).  Throws
  /// scmd::Error on any corruption.
  static SectionFile decode(const Bytes& bytes);

 private:
  std::vector<Section> sections_;
};

/// Write `bytes` to `path` crash-safely: temp file in the same directory,
/// fsync, rename, directory fsync.  Throws scmd::Error on I/O failure and
/// removes the temp file on any error path.
void atomic_write_file(const std::string& path, const Bytes& bytes);

/// Read a whole file; throws scmd::Error when it cannot be opened.
Bytes read_file(const std::string& path);

}  // namespace scmd::ckpt
