#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "geom/vec3.hpp"
#include "support/error.hpp"

namespace scmd::ckpt {

namespace {

constexpr std::uint32_t kSecBox = section_id("BOXX");
constexpr std::uint32_t kSecMass = section_id("MASS");
constexpr std::uint32_t kSecAtom = section_id("ATOM");
constexpr std::uint32_t kSecSim = section_id("SIMS");
constexpr std::uint32_t kSecRng = section_id("RNGS");
constexpr std::uint32_t kSecThermo = section_id("THRM");
constexpr std::uint32_t kSecDecomp = section_id("DCMP");
constexpr std::uint32_t kSecCache = section_id("TCEP");

/// One atom on the wire/disk, gid == record index.
struct AtomRecord {
  Vec3 pos, vel, force;
  std::int32_t type = 0;
  std::int32_t pad = 0;  ///< explicit, so sizeof is stable at 80 bytes
};
static_assert(std::is_trivially_copyable_v<AtomRecord>);
static_assert(sizeof(AtomRecord) == 80, "on-disk atom layout drifted");

}  // namespace

Bytes encode_checkpoint(const CheckpointData& data) {
  SectionFile file;
  const ParticleSystem& sys = data.system;
  {
    ByteWriter w;
    w.pod(sys.box().lengths());
    file.add(kSecBox, w.take());
  }
  {
    ByteWriter w;
    std::vector<double> masses;
    masses.reserve(static_cast<std::size_t>(sys.num_types()));
    for (int t = 0; t < sys.num_types(); ++t)
      masses.push_back(sys.mass_of_type(t));
    w.array(masses);
    file.add(kSecMass, w.take());
  }
  {
    ByteWriter w;
    std::vector<AtomRecord> atoms(static_cast<std::size_t>(sys.num_atoms()));
    for (int i = 0; i < sys.num_atoms(); ++i) {
      AtomRecord& a = atoms[static_cast<std::size_t>(i)];
      a.pos = sys.positions()[i];
      a.vel = sys.velocities()[i];
      a.force = sys.forces()[i];
      a.type = sys.types()[i];
    }
    w.array(atoms);
    file.add(kSecAtom, w.take());
  }
  {
    ByteWriter w;
    w.pod(data.clock);
    file.add(kSecSim, w.take());
  }
  if (data.rng) {
    ByteWriter w;
    for (const std::uint64_t s : data.rng->s) w.pod(s);
    w.pod(static_cast<std::uint32_t>(data.rng->have_cached ? 1 : 0));
    w.pod(data.rng->cached);
    file.add(kSecRng, w.take());
  }
  if (data.thermo) {
    // Field-wise, with an explicit zero pad word: POD-writing the struct
    // would persist its indeterminate padding bytes, breaking the
    // byte-stability the golden-fixture test pins down.
    ByteWriter w;
    w.pod(data.thermo->kind);
    w.pod(std::uint32_t{0});
    w.pod(data.thermo->target_k);
    w.pod(data.thermo->tau);
    file.add(kSecThermo, w.take());
  }
  if (data.decomp) {
    ByteWriter w;
    w.pod(data.decomp->pgrid_dims);
    w.pod(data.decomp->align_dims);
    w.pod(data.decomp->fine_res);
    for (const auto& axis_cuts : data.decomp->cuts) w.array(axis_cuts);
    file.add(kSecDecomp, w.take());
  }
  if (data.cache) {
    ByteWriter w;
    w.pod(data.cache->epoch);
    w.pod(data.cache->skin);
    file.add(kSecCache, w.take());
  }
  return file.encode();
}

CheckpointData decode_checkpoint(const Bytes& bytes) {
  const SectionFile file = SectionFile::decode(bytes);

  Vec3 lengths;
  {
    ByteReader r(file.require(kSecBox));
    lengths = r.pod<Vec3>();
  }
  std::vector<double> masses;
  {
    ByteReader r(file.require(kSecMass));
    masses = r.array<double>();
    SCMD_REQUIRE(!masses.empty() && masses.size() < 1024,
                 "implausible species count in checkpoint");
  }

  CheckpointData data;
  data.system = ParticleSystem(Box(lengths), std::move(masses));
  {
    ByteReader r(file.require(kSecAtom));
    const auto atoms = r.array<AtomRecord>();
    for (const AtomRecord& a : atoms) {
      SCMD_REQUIRE(a.type >= 0 && a.type < data.system.num_types(),
                   "atom type out of range in checkpoint");
      const int id = data.system.add_atom(a.pos, a.vel, a.type);
      data.system.forces()[id] = a.force;
    }
  }
  {
    ByteReader r(file.require(kSecSim));
    data.clock = r.pod<SimClock>();
    SCMD_REQUIRE(data.clock.step >= 0, "negative step counter in checkpoint");
  }
  if (const Bytes* payload = file.find(kSecRng)) {
    ByteReader r(*payload);
    Rng::State st;
    for (std::uint64_t& s : st.s) s = r.pod<std::uint64_t>();
    st.have_cached = r.pod<std::uint32_t>() != 0;
    st.cached = r.pod<double>();
    data.rng = st;
  }
  if (const Bytes* payload = file.find(kSecThermo)) {
    ByteReader r(*payload);
    ThermoState t;
    t.kind = r.pod<std::int32_t>();
    r.pod<std::uint32_t>();  // pad word
    t.target_k = r.pod<double>();
    t.tau = r.pod<double>();
    data.thermo = t;
  }
  if (const Bytes* payload = file.find(kSecDecomp)) {
    ByteReader r(*payload);
    DecompState d;
    d.pgrid_dims = r.pod<Int3>();
    d.align_dims = r.pod<Int3>();
    d.fine_res = r.pod<Int3>();
    for (auto& axis_cuts : d.cuts) axis_cuts = r.array<std::int32_t>();
    data.decomp = std::move(d);
  }
  if (const Bytes* payload = file.find(kSecCache)) {
    ByteReader r(*payload);
    CacheState c;
    c.epoch = r.pod<std::uint64_t>();
    c.skin = r.pod<double>();
    data.cache = c;
  }
  return data;
}

void write_checkpoint(const CheckpointData& data, const std::string& path) {
  atomic_write_file(path, encode_checkpoint(data));
}

CheckpointData read_checkpoint(const std::string& path) {
  try {
    return decode_checkpoint(read_file(path));
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

CheckpointDir::CheckpointDir(std::string dir, int retain)
    : dir_(std::move(dir)), retain_(retain) {
  SCMD_REQUIRE(retain_ >= 1, "checkpoint retention must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  SCMD_REQUIRE(!ec, "cannot create checkpoint dir " + dir_ + ": " +
                        ec.message());
}

std::string CheckpointDir::path_for_step(long long step) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt_%010lld.sc2", step);
  return dir_ + "/" + name;
}

void CheckpointDir::write(const CheckpointData& data) {
  write_checkpoint(data, path_for_step(data.clock.step));
  const std::vector<long long> have = steps();
  if (static_cast<int>(have.size()) <= retain_) return;
  for (std::size_t i = 0; i + static_cast<std::size_t>(retain_) < have.size();
       ++i) {
    std::error_code ec;
    std::filesystem::remove(path_for_step(have[i]), ec);
  }
}

std::vector<long long> CheckpointDir::steps() const {
  std::vector<long long> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    long long step = -1;
    if (std::sscanf(name.c_str(), "ckpt_%lld.sc2", &step) == 1 &&
        step >= 0 && name == path_for_step(step).substr(dir_.size() + 1)) {
      out.push_back(step);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<CheckpointData> CheckpointDir::load_latest(
    std::string* path_out) const {
  const std::vector<long long> have = steps();
  for (auto it = have.rbegin(); it != have.rend(); ++it) {
    const std::string path = path_for_step(*it);
    try {
      CheckpointData data = read_checkpoint(path);
      if (path_out != nullptr) *path_out = path;
      return data;
    } catch (const Error& e) {
      std::fprintf(stderr,
                   "ckpt: skipping unreadable snapshot %s (%s)\n",
                   path.c_str(), e.what());
    }
  }
  return std::nullopt;
}

}  // namespace scmd::ckpt
