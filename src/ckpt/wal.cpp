#include "ckpt/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "ckpt/crc32.hpp"
#include "support/error.hpp"

namespace scmd::ckpt {

namespace {

constexpr std::size_t kHeaderSize = sizeof(std::uint64_t) +
                                    sizeof(std::uint32_t);
constexpr std::size_t kFrameHeaderSize = 3 * sizeof(std::uint32_t);

void write_all(int fd, const void* data, std::size_t size,
               const std::string& path) {
  const auto* p = static_cast<const std::byte*>(data);
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, p + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      SCMD_REQUIRE(false,
                   "WAL write failed for " + path + ": " +
                       std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// CRC over (type, length, payload) — the whole frame minus the CRC
/// field itself, so a corrupted length is as detectable as a corrupted
/// payload.
std::uint32_t frame_crc(std::uint32_t type, std::uint32_t len,
                        const std::byte* payload) {
  std::uint32_t c = crc32(&type, sizeof(type));
  c = crc32(&len, sizeof(len), c);
  return crc32(payload, len, c);
}

}  // namespace

WalScan scan_wal(const std::string& path) {
  const Bytes bytes = read_file(path);
  SCMD_REQUIRE(bytes.size() >= kHeaderSize,
               path + " is too short to be a WAL");
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + sizeof(magic), sizeof(version));
  SCMD_REQUIRE(magic == kWalMagic, path + " is not an SC-MD WAL");
  SCMD_REQUIRE(version == kWalVersion,
               "unsupported WAL version in " + path);

  WalScan scan;
  std::size_t off = kHeaderSize;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameHeaderSize) break;  // torn header
    std::uint32_t type = 0, len = 0, want_crc = 0;
    std::memcpy(&type, bytes.data() + off, sizeof(type));
    std::memcpy(&len, bytes.data() + off + 4, sizeof(len));
    std::memcpy(&want_crc, bytes.data() + off + 8, sizeof(want_crc));
    const std::size_t payload_off = off + kFrameHeaderSize;
    if (len > bytes.size() - payload_off) break;  // torn payload
    if (frame_crc(type, len, bytes.data() + payload_off) != want_crc)
      break;  // bit flip (or a length that happened to fit)
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(type);
    rec.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(payload_off),
                       bytes.begin() +
                           static_cast<std::ptrdiff_t>(payload_off + len));
    scan.records.push_back(std::move(rec));
    off = payload_off + len;
  }
  scan.valid_bytes = off;
  scan.torn_tail = off < bytes.size();
  scan.dropped_bytes = bytes.size() - off;
  return scan;
}

Bytes encode_traj_frame(const TrajFrame& frame) {
  ByteWriter w;
  w.pod(static_cast<std::int64_t>(frame.step));
  w.array(frame.pos);
  w.array(frame.vel);
  return w.take();
}

TrajFrame decode_traj_frame(const Bytes& payload) {
  ByteReader r(payload);
  TrajFrame frame;
  frame.step = r.pod<std::int64_t>();
  frame.pos = r.array<Vec3>();
  frame.vel = r.array<Vec3>();
  return frame;
}

WalWriter::WalWriter(const std::string& path,
                     std::uint64_t fsync_interval_bytes)
    : path_(path), fsync_interval_(fsync_interval_bytes) {
  // Recover-then-append: an existing file is truncated to its valid
  // record prefix so corruption never survives a reopen.
  std::uint64_t resume_at = 0;
  if (::access(path.c_str(), F_OK) == 0) {
    const WalScan scan = scan_wal(path);
    recovered_records_ = scan.records.size();
    recovered_torn_tail_ = scan.torn_tail;
    resume_at = scan.valid_bytes;
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  SCMD_REQUIRE(fd_ >= 0, "cannot open WAL " + path + ": " +
                             std::strerror(errno));
  if (resume_at > 0) {
    SCMD_REQUIRE(::ftruncate(fd_, static_cast<off_t>(resume_at)) == 0,
                 "cannot truncate torn WAL tail in " + path + ": " +
                     std::strerror(errno));
    SCMD_REQUIRE(::lseek(fd_, 0, SEEK_END) >= 0,
                 "cannot seek WAL " + path);
    if (recovered_torn_tail_) {
      // Make the truncation durable before appending over the old tail.
      SCMD_REQUIRE(::fsync(fd_) == 0,
                   "fsync failed for " + path + ": " + std::strerror(errno));
    }
  } else {
    SCMD_REQUIRE(::ftruncate(fd_, 0) == 0,
                 "cannot reset WAL " + path + ": " + std::strerror(errno));
    std::uint64_t magic = kWalMagic;
    std::uint32_t version = kWalVersion;
    write_all(fd_, &magic, sizeof(magic), path_);
    write_all(fd_, &version, sizeof(version), path_);
    SCMD_REQUIRE(::fsync(fd_) == 0,
                 "fsync failed for " + path + ": " + std::strerror(errno));
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (unsynced_ > 0) ::fsync(fd_);
    ::close(fd_);
  }
}

void WalWriter::append(WalRecordType type, const Bytes& payload) {
  SCMD_REQUIRE(payload.size() <= 0xFFFFFFFFu, "WAL record too large");
  const auto t = static_cast<std::uint32_t>(type);
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = frame_crc(t, len, payload.data());
  ByteWriter w;
  w.pod(t);
  w.pod(len);
  w.pod(crc);
  w.append(payload.data(), payload.size());
  const Bytes& frame = w.bytes();
  write_all(fd_, frame.data(), frame.size(), path_);
  bytes_written_ += frame.size();
  records_written_ += 1;
  unsynced_ += frame.size();
  if (unsynced_ > fsync_interval_) sync();
}

void WalWriter::append(WalRecordType type, const std::string& text) {
  Bytes payload(text.size());
  std::memcpy(payload.data(), text.data(), text.size());
  append(type, payload);
}

void WalWriter::sync() {
  if (unsynced_ == 0) return;
  SCMD_REQUIRE(::fsync(fd_) == 0,
               "fsync failed for " + path_ + ": " + std::strerror(errno));
  unsynced_ = 0;
}

void WalMetricsSink::write_step(long long step,
                                const obs::MetricsRegistry& reg) {
  // Reuse the JSONL serialization so WAL metric records and the metrics
  // file carry byte-identical lines (minus the trailing newline).
  std::ostringstream os;
  obs::JsonlSink json(os);
  json.write_step(step, reg);
  std::string line = os.str();
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  wal_.append(WalRecordType::kMetrics, line);
}

}  // namespace scmd::ckpt
