#include "ckpt/fault.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "net/tcp.hpp"
#include "support/error.hpp"

namespace scmd::ckpt {

namespace {

/// Claim the fire-once token.  True when we created it (fault fires);
/// false when it already exists (fault already burned).
bool claim_token(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

}  // namespace

std::optional<FaultPlan> fault_plan_from_env() {
  const char* step_env = std::getenv("SCMD_FAULT_KILL_AT_STEP");
  if (step_env == nullptr || *step_env == '\0') return std::nullopt;
  FaultPlan plan;
  plan.kill_at_step = std::atoll(step_env);
  SCMD_REQUIRE(plan.kill_at_step >= 1,
               "SCMD_FAULT_KILL_AT_STEP must be >= 1");
  if (const char* rank_env = std::getenv("SCMD_FAULT_KILL_RANK"))
    plan.kill_rank = std::atoi(rank_env);
  if (const char* token_env = std::getenv("SCMD_FAULT_TOKEN"))
    plan.token_path = token_env;
  return plan;
}

void maybe_kill(const std::optional<FaultPlan>& plan, int rank,
                long long completed_step, Transport* transport) {
  if (!plan) return;
  if (rank != plan->kill_rank || completed_step != plan->kill_at_step) return;
  if (!plan->token_path.empty() && !claim_token(plan->token_path)) return;
  std::fprintf(stderr,
               "ckpt: fault injection killing rank %d after step %lld\n",
               rank, completed_step);
  if (auto* tcp = dynamic_cast<TcpTransport*>(transport)) {
    // Die like a crashed process: sockets dropped unflushed, no unwind,
    // no destructors (they would flush sends and look like a clean exit).
    tcp->hard_kill();
    std::_Exit(kFaultExitCode);
  }
  throw Error("fault injection: rank " + std::to_string(rank) +
              " killed after step " + std::to_string(completed_step));
}

}  // namespace scmd::ckpt
