#pragma once

/// \file fault.hpp
/// Deterministic fault injection for recovery testing.
///
/// A FaultPlan says "rank R dies after completing step N".  It is read
/// from the environment so tests and CI can arm a kill without touching
/// run configs:
///
///   SCMD_FAULT_KILL_AT_STEP=<n>   arm the fault (required)
///   SCMD_FAULT_KILL_RANK=<r>     which rank dies (default 0)
///   SCMD_FAULT_TOKEN=<path>      fire-once token file (optional)
///
/// Without a token the fault fires every time step N is crossed — fine
/// for a single-shot process kill, fatal for supervised recovery (the
/// resumed run would re-cross N and die again, forever).  With a token,
/// the first firing creates `path` with O_CREAT|O_EXCL and later
/// crossings see the file and stand down.
///
/// How the process "dies" depends on the transport: a TcpTransport gets
/// hard_kill() (sockets dropped unflushed, like a real crash) followed
/// by _Exit(42); anything else throws scmd::Error so in-process tests
/// can observe the fault without losing the test runner.

#include <optional>
#include <string>

namespace scmd {
class Transport;
}

namespace scmd::ckpt {

/// Exit code used when fault injection kills the process outright.
constexpr int kFaultExitCode = 42;

struct FaultPlan {
  long long kill_at_step = -1;  ///< fire after this step completes
  int kill_rank = 0;
  std::string token_path;  ///< empty = fire on every crossing
};

/// Parse SCMD_FAULT_* from the environment.  Empty when unarmed.
std::optional<FaultPlan> fault_plan_from_env();

/// Fire the fault if `plan` targets this rank/step (and the token, when
/// configured, has not burned).  Returns normally when the fault does
/// not apply.  `transport` may be null (serial runs).
void maybe_kill(const std::optional<FaultPlan>& plan, int rank,
                long long completed_step, Transport* transport);

}  // namespace scmd::ckpt
