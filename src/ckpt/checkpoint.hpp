#pragma once

/// \file checkpoint.hpp
/// Versioned binary checkpoints of the full resumable simulation state.
///
/// A checkpoint is a SectionFile (ckpt/codec.hpp) holding:
///
///   BOXX  box lengths                          (required)
///   MASS  per-type masses                      (required)
///   ATOM  atoms in gid order: pos/vel/force/type  (required)
///   SIMS  step counter, total steps, dt        (optional)
///   RNGS  xoshiro stream state                 (optional)
///   THRM  thermostat kind + parameters         (optional)
///   DCMP  decomposition cuts / process grid    (optional)
///   TCEP  tuple-cache epoch + skin             (optional)
///
/// Required sections restore a ParticleSystem; the optional ones make the
/// restore a *resume*: the drivers continue from SIMS.step with the same
/// RNG stream, thermostat, and (rank-count permitting) decomposition
/// cuts.  Unknown sections are ignored on read, so the format grows
/// append-only (docs/DURABILITY.md).
///
/// CheckpointDir manages a directory of periodic snapshots
/// (`ckpt_<step>.sc2`) with bounded retention; load_latest() walks from
/// the newest down, skipping files that fail CRC/size validation, so a
/// crash mid-write (impossible with atomic_write_file, but cheap to
/// tolerate) or a corrupted tail never blocks recovery.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "geom/int3.hpp"
#include "md/system.hpp"
#include "support/rng.hpp"

namespace scmd::ckpt {

/// The durability collectives run on the tags::kSnapshotAtoms /
/// tags::kRestoreBlob channels of the central registry (net/tags.hpp).

/// Simulation clock: where the run is and where it is going.
struct SimClock {
  long long step = 0;         ///< completed MD steps at snapshot time
  long long total_steps = 0;  ///< the run's step budget
  double dt = 0.0;
};

/// Thermostat state (kind 0 = none, 1 = Berendsen).
struct ThermoState {
  std::int32_t kind = 0;
  double target_k = 0.0;
  double tau = 0.0;
};

/// Decomposition cuts, for resuming a balanced run on the same grid.
struct DecompState {
  Int3 pgrid_dims{1, 1, 1};
  Int3 align_dims{1, 1, 1};
  Int3 fine_res{1, 1, 1};
  std::array<std::vector<std::int32_t>, 3> cuts;
};

/// Tuple-cache epoch: rebuild count at snapshot time plus the skin, so a
/// resumed run can report a continuous epoch counter.  Caches themselves
/// are always rebuilt after restore (they are derived state).
struct CacheState {
  std::uint64_t epoch = 0;
  double skin = 0.0;
};

/// Everything a checkpoint can carry.
struct CheckpointData {
  ParticleSystem system;
  SimClock clock;
  std::optional<Rng::State> rng;
  std::optional<ThermoState> thermo;
  std::optional<DecompState> decomp;
  std::optional<CacheState> cache;
};

/// Serialize to container bytes (what atomic_write_file persists and the
/// restore path broadcasts to peers).
Bytes encode_checkpoint(const CheckpointData& data);

/// Parse + validate container bytes.  Throws scmd::Error on corruption.
CheckpointData decode_checkpoint(const Bytes& bytes);

/// encode + crash-safe write (temp file, fsync, atomic rename).
void write_checkpoint(const CheckpointData& data, const std::string& path);

/// read + decode.  Throws scmd::Error on I/O failure or corruption.
CheckpointData read_checkpoint(const std::string& path);

/// A directory of periodic snapshots with bounded retention.
class CheckpointDir {
 public:
  /// Creates `dir` (and parents) when missing.  `retain` bounds how many
  /// snapshots write() keeps (>= 1).
  CheckpointDir(std::string dir, int retain);

  const std::string& dir() const { return dir_; }

  /// `<dir>/ckpt_<step, zero-padded>.sc2`.
  std::string path_for_step(long long step) const;

  /// Write data.clock.step's snapshot crash-safely, then prune snapshots
  /// beyond the retention bound (oldest first).
  void write(const CheckpointData& data);

  /// Steps with a snapshot file present, ascending.
  std::vector<long long> steps() const;

  /// Newest snapshot that parses and passes CRC validation; corrupt or
  /// unreadable files are skipped (with a note to stderr), older ones
  /// tried next.  Empty when none load.  `path_out`, when non-null,
  /// receives the winning file path.
  std::optional<CheckpointData> load_latest(
      std::string* path_out = nullptr) const;

 private:
  std::string dir_;
  int retain_;
};

}  // namespace scmd::ckpt
