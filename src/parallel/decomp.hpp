#pragma once

/// \file decomp.hpp
/// Spatial domain decomposition onto a 3D process grid.
///
/// Each rank owns an equal rectangular sub-volume of the periodic box
/// (paper Sec. 1: spatial decomposition).  Every n-body term gets its own
/// cell grid, built *aligned* to the process grid — the global cell count
/// per axis is a multiple of the process count, so each rank owns a whole
/// brick of cells in every grid and the UCP owned-home-cell iteration
/// partitions the global domain exactly.

#include "cell/grid.hpp"
#include "geom/box.hpp"
#include "geom/int3.hpp"

namespace scmd {

/// 3D arrangement of ranks with periodic neighbor topology.
class ProcessGrid {
 public:
  ProcessGrid() = default;
  explicit ProcessGrid(const Int3& dims);

  /// Near-cubic factorization of P into Px*Py*Pz (Px >= Py >= Pz pattern
  /// minimizing surface).
  static ProcessGrid factor(int num_ranks);

  const Int3& dims() const { return dims_; }
  int num_ranks() const { return static_cast<int>(dims_.volume()); }

  Int3 coord_of(int rank) const;
  int rank_of(const Int3& coord) const;  // wraps periodically

  /// Rank one step along `axis` in direction `dir` (+1 / -1), periodic.
  int neighbor(int rank, int axis, int dir) const;

  bool operator==(const ProcessGrid&) const = default;

 private:
  Int3 dims_{1, 1, 1};
};

/// Geometry shared by all ranks: box, process grid, and per-n aligned
/// cell grids.
class Decomposition {
 public:
  Decomposition(const Box& box, const ProcessGrid& pgrid);

  const Box& box() const { return box_; }
  const ProcessGrid& pgrid() const { return pgrid_; }

  /// Build the cell grid for cutoff rcut aligned to the process grid:
  /// cells per rank per axis l = floor(region / rcut), so cell side >=
  /// rcut.  Throws if a rank region is thinner than rcut (grain too fine
  /// for this cutoff).
  CellGrid aligned_grid(double rcut) const;

  /// Cells per rank per axis in an aligned grid.
  Int3 cells_per_rank(const CellGrid& grid) const;

  /// Lower corner (cell coords) of a rank's brick in an aligned grid.
  Int3 brick_lo(const CellGrid& grid, int rank) const;

  /// Physical lower corner of a rank's region.
  Vec3 region_lo(int rank) const;

  /// Physical extent of every rank's region (uniform).
  Vec3 region_lengths() const;

 private:
  Box box_;
  ProcessGrid pgrid_;
};

}  // namespace scmd
