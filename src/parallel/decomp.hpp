#pragma once

/// \file decomp.hpp
/// Spatial domain decomposition onto a 3D process grid.
///
/// Each rank owns an equal rectangular sub-volume of the periodic box
/// (paper Sec. 1: spatial decomposition).  Every n-body term gets its own
/// cell grid, built *aligned* to the process grid — the global cell count
/// per axis is a multiple of the process count, so each rank owns a whole
/// brick of cells in every grid and the UCP owned-home-cell iteration
/// partitions the global domain exactly.

#include <array>
#include <vector>

#include "cell/grid.hpp"
#include "geom/box.hpp"
#include "geom/int3.hpp"

namespace scmd {

/// 3D arrangement of ranks with periodic neighbor topology.
class ProcessGrid {
 public:
  ProcessGrid() = default;
  explicit ProcessGrid(const Int3& dims);

  /// Near-cubic factorization of P into Px*Py*Pz (Px >= Py >= Pz pattern
  /// minimizing surface).
  static ProcessGrid factor(int num_ranks);

  const Int3& dims() const { return dims_; }
  int num_ranks() const { return static_cast<int>(dims_.volume()); }

  Int3 coord_of(int rank) const;
  int rank_of(const Int3& coord) const;  // wraps periodically

  /// Rank one step along `axis` in direction `dir` (+1 / -1), periodic.
  int neighbor(int rank, int axis, int dir) const;

  bool operator==(const ProcessGrid&) const = default;

 private:
  Int3 dims_{1, 1, 1};
};

/// A rank's brick of cells in one grid: the cells its region intersects.
struct BrickRange {
  Int3 lo;    ///< global cell coordinate of the lower corner
  Int3 dims;  ///< brick extent in cells
};

/// Geometry shared by all ranks: box, process grid, and per-n aligned
/// cell grids.
///
/// Two flavors:
///
///  - uniform (legacy): every rank owns an equal sub-box; cut planes sit
///    at i * (L/P) per axis;
///  - non-uniform (load balancing): per-axis cut planes live on an integer
///    *fine lattice* of resolution fine_res[a] subdividing the box, so all
///    ranks agree on cut positions exactly.  Cell grids stay aligned to a
///    separate *alignment* process grid (the one the run started with), so
///    rebalancing never changes cell geometry — a rank's brick is then the
///    set of cells *intersecting* its region, and bricks of neighboring
///    ranks overlap by one cell layer wherever a cut straddles a cell.
class Decomposition {
 public:
  Decomposition(const Box& box, const ProcessGrid& pgrid);

  /// Non-uniform decomposition.  cuts[a] holds pgrid.dims()[a] + 1
  /// ascending fine-lattice indices from 0 to fine_res[a]; align_pgrid is
  /// the process grid cell grids are aligned to (usually the initial one).
  Decomposition(const Box& box, const ProcessGrid& pgrid,
                const std::array<std::vector<int>, 3>& cuts,
                const Int3& fine_res, const ProcessGrid& align_pgrid);

  const Box& box() const { return box_; }
  const ProcessGrid& pgrid() const { return pgrid_; }

  bool uniform() const { return uniform_; }

  /// The process grid cell grids are aligned to (== pgrid() when uniform).
  const ProcessGrid& align_pgrid() const { return align_pgrid_; }

  /// Per-axis cut-plane indices on the fine lattice (non-uniform flavor;
  /// synthesized as {0, 1, .., P} with fine_res == pgrid dims otherwise).
  const std::array<std::vector<int>, 3>& cuts() const { return cuts_; }
  const Int3& fine_res() const { return fine_res_; }

  /// Build the cell grid for cutoff rcut aligned to the *alignment*
  /// process grid: cells per rank per axis l = floor(region / rcut), so
  /// cell side >= rcut.  Throws if a rank region is thinner than rcut
  /// (grain too fine for this cutoff).
  CellGrid aligned_grid(double rcut) const;

  /// Cells per rank per axis in an aligned grid (uniform flavor only).
  Int3 cells_per_rank(const CellGrid& grid) const;

  /// Lower corner (cell coords) of a rank's brick in an aligned grid
  /// (uniform flavor only).
  Int3 brick_lo(const CellGrid& grid, int rank) const;

  /// The cells of `grid` a rank's region intersects.  Works for both
  /// flavors; equals {brick_lo, cells_per_rank} when uniform.
  BrickRange brick_range(const CellGrid& grid, int rank) const;

  /// Physical lower corner of a rank's region.
  Vec3 region_lo(int rank) const;

  /// Physical upper corner of a rank's region.
  Vec3 region_hi(int rank) const;

  /// Physical extent of one rank's region.
  Vec3 region_len(int rank) const;

  /// Physical extent of every rank's region (uniform flavor only).
  Vec3 region_lengths() const;

  /// Rank whose region contains the (wrapped) position.
  int owner_of(const Vec3& p) const;

 private:
  Box box_;
  ProcessGrid pgrid_;
  ProcessGrid align_pgrid_;
  bool uniform_ = true;
  Int3 fine_res_{1, 1, 1};
  std::array<std::vector<int>, 3> cuts_;
  /// Physical cut positions per axis (cuts_.size() entries); region i on
  /// axis a is [cut_pos_[a][i], cut_pos_[a][i+1]).  All ranks compute
  /// these from the same integers, so they agree bit-for-bit.
  std::array<std::vector<double>, 3> cut_pos_;
};

}  // namespace scmd
