#include "parallel/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/error.hpp"

namespace scmd {

ProcessGrid::ProcessGrid(const Int3& dims) : dims_(dims) {
  SCMD_REQUIRE(dims.x >= 1 && dims.y >= 1 && dims.z >= 1,
               "process grid dims must be positive");
}

ProcessGrid ProcessGrid::factor(int num_ranks) {
  SCMD_REQUIRE(num_ranks >= 1, "need at least one rank");
  // Choose the factorization of P into three factors with the smallest
  // surface-to-volume ratio (most cubic).
  Int3 best{num_ranks, 1, 1};
  long long best_surface = -1;
  for (int a = 1; a * a * a <= num_ranks; ++a) {
    if (num_ranks % a) continue;
    const int rest = num_ranks / a;
    for (int b = a; b * b <= rest; ++b) {
      if (rest % b) continue;
      const int c = rest / b;
      const long long surface = static_cast<long long>(a) * b +
                                static_cast<long long>(b) * c +
                                static_cast<long long>(a) * c;
      if (best_surface < 0 || surface < best_surface) {
        best_surface = surface;
        best = {c, b, a};  // largest factor on x
      }
    }
  }
  return ProcessGrid(best);
}

Int3 ProcessGrid::coord_of(int rank) const {
  SCMD_ASSERT(rank >= 0 && rank < num_ranks());
  const int x = rank % dims_.x;
  const int rest = rank / dims_.x;
  return {x, rest % dims_.y, rest / dims_.y};
}

int ProcessGrid::rank_of(const Int3& coord) const {
  const Int3 w = wrap(coord, dims_);
  return (w.z * dims_.y + w.y) * dims_.x + w.x;
}

int ProcessGrid::neighbor(int rank, int axis, int dir) const {
  Int3 c = coord_of(rank);
  c[axis] += dir;
  return rank_of(c);
}

Decomposition::Decomposition(const Box& box, const ProcessGrid& pgrid)
    : box_(box), pgrid_(pgrid), align_pgrid_(pgrid) {
  // Synthesize trivial cuts so the region/owner queries work uniformly.
  fine_res_ = pgrid.dims();
  for (int a = 0; a < 3; ++a) {
    const int P = pgrid.dims()[a];
    const double len = box_.length(a) / P;  // legacy uniform formula
    cuts_[static_cast<std::size_t>(a)].resize(static_cast<std::size_t>(P) +
                                              1);
    cut_pos_[static_cast<std::size_t>(a)].resize(static_cast<std::size_t>(P) +
                                                 1);
    for (int i = 0; i <= P; ++i) {
      cuts_[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] = i;
      cut_pos_[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] =
          i * len;
    }
  }
}

Decomposition::Decomposition(const Box& box, const ProcessGrid& pgrid,
                             const std::array<std::vector<int>, 3>& cuts,
                             const Int3& fine_res,
                             const ProcessGrid& align_pgrid)
    : box_(box),
      pgrid_(pgrid),
      align_pgrid_(align_pgrid),
      uniform_(false),
      fine_res_(fine_res),
      cuts_(cuts) {
  for (int a = 0; a < 3; ++a) {
    const std::vector<int>& c = cuts_[static_cast<std::size_t>(a)];
    const int P = pgrid.dims()[a];
    const int R = fine_res[a];
    SCMD_REQUIRE(R >= 1, "fine lattice resolution must be positive");
    SCMD_REQUIRE(static_cast<int>(c.size()) == P + 1,
                 "need one cut per rank boundary per axis");
    SCMD_REQUIRE(c.front() == 0 && c.back() == R,
                 "cuts must span the whole axis");
    for (int i = 0; i < P; ++i)
      SCMD_REQUIRE(c[static_cast<std::size_t>(i)] <
                       c[static_cast<std::size_t>(i) + 1],
                   "cuts must be strictly increasing");
    cut_pos_[static_cast<std::size_t>(a)].resize(c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
      cut_pos_[static_cast<std::size_t>(a)][i] =
          static_cast<double>(c[i]) * box_.length(a) / R;
    }
  }
}

CellGrid Decomposition::aligned_grid(double rcut) const {
  SCMD_REQUIRE(rcut > 0.0, "cutoff must be positive");
  Int3 dims;
  for (int a = 0; a < 3; ++a) {
    const double region = box_.length(a) / align_pgrid_.dims()[a];
    const int per_rank = static_cast<int>(std::floor(region / rcut));
    SCMD_REQUIRE(per_rank >= 1,
                 "rank region thinner than the cutoff; reduce the process "
                 "grid or enlarge the system");
    dims[a] = per_rank * align_pgrid_.dims()[a];
  }
  return CellGrid::with_dims(box_, dims);
}

Int3 Decomposition::cells_per_rank(const CellGrid& grid) const {
  SCMD_REQUIRE(uniform_,
               "cells_per_rank is defined for uniform decompositions only; "
               "use brick_range for non-uniform cuts");
  const Int3 gd = grid.dims();
  const Int3 pd = pgrid_.dims();
  for (int a = 0; a < 3; ++a) {
    SCMD_REQUIRE(
        gd[a] % pd[a] == 0,
        std::string("cell grid not aligned to the process grid: axis ") +
            "xyz"[a] + " has " + std::to_string(gd[a]) + " cells for " +
            std::to_string(pd[a]) + " ranks (" + std::to_string(gd[a]) +
            " % " + std::to_string(pd[a]) +
            " != 0); build grids with Decomposition::aligned_grid or pick "
            "a process grid dividing the cell counts");
  }
  return {gd.x / pd.x, gd.y / pd.y, gd.z / pd.z};
}

Int3 Decomposition::brick_lo(const CellGrid& grid, int rank) const {
  const Int3 l = cells_per_rank(grid);
  const Int3 c = pgrid_.coord_of(rank);
  return {c.x * l.x, c.y * l.y, c.z * l.z};
}

BrickRange Decomposition::brick_range(const CellGrid& grid, int rank) const {
  if (uniform_) return {brick_lo(grid, rank), cells_per_rank(grid)};
  const Int3 gd = grid.dims();
  const Int3 c = pgrid_.coord_of(rank);
  BrickRange br;
  for (int a = 0; a < 3; ++a) {
    const long long D = gd[a];
    const long long R = fine_res_[a];
    const long long lo_cut =
        cuts_[static_cast<std::size_t>(a)][static_cast<std::size_t>(c[a])];
    const long long hi_cut =
        cuts_[static_cast<std::size_t>(a)][static_cast<std::size_t>(c[a]) +
                                           1];
    // Cell k (covering [k/D, (k+1)/D) of the axis) intersects the region
    // [lo_cut/R, hi_cut/R) iff k*R < hi_cut*D and (k+1)*R > lo_cut*D —
    // exact in integers.
    const long long k_lo = lo_cut * D / R;
    const long long k_hi = (hi_cut * D + R - 1) / R;
    br.lo[a] = static_cast<int>(k_lo);
    br.dims[a] = static_cast<int>(k_hi - k_lo);
  }
  return br;
}

Vec3 Decomposition::region_lo(int rank) const {
  const Int3 c = pgrid_.coord_of(rank);
  return {cut_pos_[0][static_cast<std::size_t>(c.x)],
          cut_pos_[1][static_cast<std::size_t>(c.y)],
          cut_pos_[2][static_cast<std::size_t>(c.z)]};
}

Vec3 Decomposition::region_hi(int rank) const {
  const Int3 c = pgrid_.coord_of(rank);
  return {cut_pos_[0][static_cast<std::size_t>(c.x) + 1],
          cut_pos_[1][static_cast<std::size_t>(c.y) + 1],
          cut_pos_[2][static_cast<std::size_t>(c.z) + 1]};
}

Vec3 Decomposition::region_len(int rank) const {
  return region_hi(rank) - region_lo(rank);
}

Vec3 Decomposition::region_lengths() const {
  SCMD_REQUIRE(uniform_,
               "region_lengths is defined for uniform decompositions only; "
               "use region_len(rank) for non-uniform cuts");
  const Int3 pd = pgrid_.dims();
  return {box_.length(0) / pd.x, box_.length(1) / pd.y,
          box_.length(2) / pd.z};
}

int Decomposition::owner_of(const Vec3& p) const {
  const Vec3 w = box_.wrap(p);
  Int3 c;
  for (int a = 0; a < 3; ++a) {
    const std::vector<double>& pos = cut_pos_[static_cast<std::size_t>(a)];
    // First interval [pos[i], pos[i+1]) containing w[a]; clamp for the
    // (rounding-only) case w[a] == L.
    const auto it = std::upper_bound(pos.begin(), pos.end(), w[a]);
    int i = static_cast<int>(it - pos.begin()) - 1;
    i = std::clamp(i, 0, pgrid_.dims()[a] - 1);
    c[a] = i;
  }
  return pgrid_.rank_of(c);
}

}  // namespace scmd
