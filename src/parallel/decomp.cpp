#include "parallel/decomp.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

ProcessGrid::ProcessGrid(const Int3& dims) : dims_(dims) {
  SCMD_REQUIRE(dims.x >= 1 && dims.y >= 1 && dims.z >= 1,
               "process grid dims must be positive");
}

ProcessGrid ProcessGrid::factor(int num_ranks) {
  SCMD_REQUIRE(num_ranks >= 1, "need at least one rank");
  // Choose the factorization of P into three factors with the smallest
  // surface-to-volume ratio (most cubic).
  Int3 best{num_ranks, 1, 1};
  long long best_surface = -1;
  for (int a = 1; a * a * a <= num_ranks; ++a) {
    if (num_ranks % a) continue;
    const int rest = num_ranks / a;
    for (int b = a; b * b <= rest; ++b) {
      if (rest % b) continue;
      const int c = rest / b;
      const long long surface = static_cast<long long>(a) * b +
                                static_cast<long long>(b) * c +
                                static_cast<long long>(a) * c;
      if (best_surface < 0 || surface < best_surface) {
        best_surface = surface;
        best = {c, b, a};  // largest factor on x
      }
    }
  }
  return ProcessGrid(best);
}

Int3 ProcessGrid::coord_of(int rank) const {
  SCMD_ASSERT(rank >= 0 && rank < num_ranks());
  const int x = rank % dims_.x;
  const int rest = rank / dims_.x;
  return {x, rest % dims_.y, rest / dims_.y};
}

int ProcessGrid::rank_of(const Int3& coord) const {
  const Int3 w = wrap(coord, dims_);
  return (w.z * dims_.y + w.y) * dims_.x + w.x;
}

int ProcessGrid::neighbor(int rank, int axis, int dir) const {
  Int3 c = coord_of(rank);
  c[axis] += dir;
  return rank_of(c);
}

Decomposition::Decomposition(const Box& box, const ProcessGrid& pgrid)
    : box_(box), pgrid_(pgrid) {}

CellGrid Decomposition::aligned_grid(double rcut) const {
  SCMD_REQUIRE(rcut > 0.0, "cutoff must be positive");
  Int3 dims;
  for (int a = 0; a < 3; ++a) {
    const double region = box_.length(a) / pgrid_.dims()[a];
    const int per_rank = static_cast<int>(std::floor(region / rcut));
    SCMD_REQUIRE(per_rank >= 1,
                 "rank region thinner than the cutoff; reduce the process "
                 "grid or enlarge the system");
    dims[a] = per_rank * pgrid_.dims()[a];
  }
  return CellGrid::with_dims(box_, dims);
}

Int3 Decomposition::cells_per_rank(const CellGrid& grid) const {
  const Int3 gd = grid.dims();
  const Int3 pd = pgrid_.dims();
  SCMD_REQUIRE(gd.x % pd.x == 0 && gd.y % pd.y == 0 && gd.z % pd.z == 0,
               "grid not aligned to the process grid");
  return {gd.x / pd.x, gd.y / pd.y, gd.z / pd.z};
}

Int3 Decomposition::brick_lo(const CellGrid& grid, int rank) const {
  const Int3 l = cells_per_rank(grid);
  const Int3 c = pgrid_.coord_of(rank);
  return {c.x * l.x, c.y * l.y, c.z * l.z};
}

Vec3 Decomposition::region_lo(int rank) const {
  const Int3 c = pgrid_.coord_of(rank);
  const Vec3 len = region_lengths();
  return {c.x * len.x, c.y * len.y, c.z * len.z};
}

Vec3 Decomposition::region_lengths() const {
  const Int3 pd = pgrid_.dims();
  return {box_.length(0) / pd.x, box_.length(1) / pd.y,
          box_.length(2) / pd.z};
}

}  // namespace scmd
