#include "parallel/rank_engine.hpp"

#include <cmath>

#include "engines/tuple_strategy.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace scmd {

RankEngine::RankEngine(Comm& comm, const Decomposition& decomp,
                       const ForceField& field, const ForceStrategy& strategy,
                       const RankEngineConfig& config)
    : comm_(comm),
      decomp_(decomp),
      field_(field),
      strategy_(strategy),
      config_(config),
      migrator_(decomp_),
      cache_(config.tuple_cache) {
  SCMD_REQUIRE(config.dt > 0.0, "time step must be positive");
  if (config.tuple_cache.enabled) {
    SCMD_REQUIRE(config.tuple_cache.skin >= 0.0,
                 "tuple-cache skin must be non-negative");
    tuple_strategy_ = dynamic_cast<const TupleStrategy*>(&strategy);
    SCMD_REQUIRE(tuple_strategy_ != nullptr,
                 "tuple_cache needs a pattern strategy (SC/FS/OC/RC)");
  }

  // Cell side inflated by the skin when tuple caching: the inflated
  // enumeration stays covered by the cell walk, and the physical halo
  // slabs (derived from the grids below) grow with it, so ghosts cover
  // rcut + skin and survive skin/2 of drift on either side.
  const double skin = config.tuple_cache.enabled ? config.tuple_cache.skin : 0.0;
  for (int n = 2; n <= field.max_n(); ++n) {
    if (!strategy.needs_grid(n)) continue;
    const std::size_t ni = static_cast<std::size_t>(n);
    grid_active_[ni] = true;
    grids_[ni] =
        decomp_.aligned_grid(strategy.min_cell_size(n, field.rcut(n) + skin));
    grid_halos_.emplace_back(grids_[ni], strategy.halo(n));
  }
  rebuild_halo_exchange();
}

void RankEngine::rebuild_halo_exchange() {
  if (decomp_.uniform()) {
    // Uniform bricks coincide with regions: one slab spec, the widest
    // per-axis halo over all grids, and octant (3-stage) routing when no
    // grid needs a lower halo.
    SlabSpec slab;
    bool both = false;
    for (const auto& [grid, h] : grid_halos_) {
      const Vec3 cl = grid.cell_lengths();
      for (int a = 0; a < 3; ++a) {
        slab.t_lo[a] = std::max(slab.t_lo[a], h.lo[a] * cl[a]);
        slab.t_hi[a] = std::max(slab.t_hi[a], h.hi[a] * cl[a]);
        if (h.lo[a] > 0) both = true;
      }
    }
    halo_exchange_ =
        std::make_unique<HaloExchange>(decomp_, slab, both);
  } else {
    // Non-uniform cuts: per-rank slab reach derived from each rank's
    // halo-extended brick (cut planes straddling cells included).  The
    // home range is additionally extended by the pattern root reach (see
    // build_domains), so fold that into the effective halo the exchange
    // must cover.  Stage directions are decided inside HaloExchange from
    // the global per-rank reach, so `both` just forces full-shell
    // routing when some grid inherently needs a lower halo.
    std::vector<std::pair<CellGrid, HaloSpec>> effective = grid_halos_;
    {
      std::size_t gi = 0;
      for (int n = 2; n <= field_.max_n(); ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        if (!grid_active_[ni]) continue;
        const HaloSpec ext = strategy_.root_reach(n);
        HaloSpec& h = effective[gi++].second;
        for (int a = 0; a < 3; ++a) {
          h.lo[a] += ext.lo[a];
          h.hi[a] += ext.hi[a];
        }
      }
    }
    bool both = false;
    for (const auto& [grid, h] : effective) {
      if (h.lo.x > 0 || h.lo.y > 0 || h.lo.z > 0) both = true;
    }
    halo_exchange_ =
        std::make_unique<HaloExchange>(decomp_, effective, both);
  }
}

void RankEngine::apply_decomposition(const Decomposition& decomp) {
  SCMD_REQUIRE(decomp.pgrid().num_ranks() == decomp_.pgrid().num_ranks(),
               "rebalance cannot change the rank count");
  SCMD_REQUIRE(decomp.align_pgrid() == decomp_.align_pgrid(),
               "rebalance must keep the alignment process grid (cell "
               "grids are fixed for the run)");
  decomp_ = decomp;  // migrator_ observes the member, so it follows
  cache_.invalidate();  // slot refs are tied to the old cuts
  rebuild_halo_exchange();
}

std::uint64_t RankEngine::settle_atoms() {
  state_.clear_ghosts();
  cache_.invalidate();
  const std::uint64_t sent = migrator_.settle(comm_, state_);
  force_.assign(static_cast<std::size_t>(state_.num_owned()), Vec3{});
  return sent;
}

void RankEngine::reset_cell_costs() {
  for (auto& cc : cell_costs_) {
    cc.assign(cc.size(), 0);
  }
}

void RankEngine::set_atoms(RankState state) {
  state_ = std::move(state);
  cache_.invalidate();
  force_.assign(static_cast<std::size_t>(state_.num_owned()), Vec3{});
}

void RankEngine::build_domains() {
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (!grid_active_[ni]) continue;
    const CellGrid& grid = grids_[ni];
    BrickRange br = decomp_.brick_range(grid, comm_.rank());
    const HaloSpec halo = strategy_.halo(n);
    const bool nonuniform = !decomp_.uniform();
    if (nonuniform) {
      // Extend the home-cell iteration range by the pattern root reach:
      // chains are filtered to owned level-0 atoms, and the rank owning
      // an atom in cell c must anchor every home cell h = c - v0 that can
      // start a chain through it (see ForceStrategy::root_reach).
      const HaloSpec ext = strategy_.root_reach(n);
      for (int a = 0; a < 3; ++a) {
        br.lo[a] -= ext.lo[a];
        br.dims[a] += ext.lo[a] + ext.hi[a];
      }
    }
    const Int3 brick_lo = br.lo;
    const Int3 brick_dims = br.dims;
    CellDomain dom(grid, brick_lo, brick_dims, halo);

    const Vec3 cl = grid.cell_lengths();
    std::vector<DomainAtom> records;
    records.reserve(static_cast<std::size_t>(state_.num_total()));
    const int owned = state_.num_owned();
    for (int i = 0; i < state_.num_total(); ++i) {
      const Vec3& p = state_.combined_pos(i);
      // Unwrapped global cell coordinate from the rank-frame position.
      Int3 gcell{static_cast<int>(std::floor(p.x / cl.x)),
                 static_cast<int>(std::floor(p.y / cl.y)),
                 static_cast<int>(std::floor(p.z / cl.z))};
      if (i < owned) {
        // Owned atoms are guaranteed inside the brick; clamp away
        // floating-point edge effects so ownership stays consistent.
        for (int a = 0; a < 3; ++a) {
          if (gcell[a] < brick_lo[a]) gcell[a] = brick_lo[a];
          const int top = brick_lo[a] + brick_dims[a] - 1;
          if (gcell[a] > top) gcell[a] = top;
        }
      }
      const Int3 local = dom.local_coord(gcell);
      if (!dom.in_local(local)) continue;  // imported for a wider grid
      DomainAtom rec;
      rec.pos = p;
      rec.type = state_.combined_type(i);
      rec.gid = state_.combined_gid(i);
      rec.local_ref = i;
      // Uniform bricks partition home cells across ranks, so every atom
      // may start a chain (legacy behavior).  Non-uniform cuts make
      // bricks overlap at straddled cells; there the owned atoms — this
      // rank's region population — form the global chain-start partition
      // and ghosts never start chains.
      rec.start = nonuniform ? (i < owned) : true;
      rec.local_cell = local;
      records.push_back(rec);
    }
    dom.build(records);
    domains_[ni] = std::move(dom);
    domain_forces_[ni].assign(
        static_cast<std::size_t>(domains_[ni].num_atoms()), Vec3{});
    if (config_.collect_cell_costs) {
      const std::size_t vol =
          static_cast<std::size_t>(domains_[ni].owned_dims().volume());
      if (cell_costs_[ni].size() != vol) cell_costs_[ni].assign(vol, 0);
    }
  }
}

void RankEngine::fold_forces(const ForceAccum& accum) {
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (accum.f[ni] == nullptr) continue;
    const auto refs = domains_[ni].local_refs();
    const std::vector<Vec3>& f = *accum.f[ni];
    for (std::size_t a = 0; a < f.size(); ++a)
      force_[static_cast<std::size_t>(refs[a])] += f[a];
  }
}

void RankEngine::compute_forces() {
  SCMD_TRACE("force");
  // The collective reuse decision lives in step(); a valid cache here
  // means every rank agreed to replay (or positions are unchanged since
  // the build, for direct calls).
  if (tuple_strategy_ != nullptr && cache_.valid()) {
    compute_forces_replay();
    return;
  }
  compute_forces_full();
}

void RankEngine::compute_forces_full() {
  state_.clear_ghosts();
  std::vector<ImportStageRecord> stages;
  {
    SCMD_TRACE("exchange.import");
    stages = halo_exchange_->import(comm_, state_, counters_);
  }

  {
    SCMD_TRACE("binning");
    build_domains();
  }

  DomainSet domains;
  ForceAccum accum;
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (!grid_active_[ni]) continue;
    domains.dom[ni] = &domains_[ni];
    accum.f[ni] = &domain_forces_[ni];
    if (config_.collect_cell_costs) accum.cell_cost[ni] = &cell_costs_[ni];
  }

  force_.assign(static_cast<std::size_t>(state_.num_total()), Vec3{});
  if (tuple_strategy_ != nullptr) {
    potential_energy_ = tuple_strategy_->compute_build(
        field_, domains, cache_.skin(), cache_, accum, counters_);
  } else {
    potential_energy_ = strategy_.compute(field_, domains, accum, counters_);
  }
  {
    SCMD_TRACE("fold");
    fold_forces(accum);
  }

  SCMD_TRACE("exchange.write_back");
  halo_exchange_->write_back(comm_, stages, state_, force_, counters_);

  if (tuple_strategy_ != nullptr) {
    cache_.mark_built({state_.pos.data(), state_.pos.size()});
    cached_stages_ = std::move(stages);
  }
}

void RankEngine::compute_forces_replay() {
  {
    SCMD_TRACE("exchange.refresh");
    halo_exchange_->refresh(comm_, cached_stages_, state_, counters_);
  }

  ForceAccum accum;
  {
    // Refresh the frozen slot tables in place of re-binning: each slot
    // takes its source atom's current position (owned or just-refreshed
    // ghost), snapped to the periodic image nearest its previous value
    // so the build-time frame survives box wrap-around.
    SCMD_TRACE("refresh");
    for (int n = 2; n <= field_.max_n(); ++n) {
      const std::size_t ni = static_cast<std::size_t>(n);
      if (!grid_active_[ni]) continue;
      TupleList& list = cache_.list(n);
      list.refresh_positions(decomp_.box(), [&](int ref) -> const Vec3& {
        return state_.combined_pos(ref);
      });
      replay_f_[ni].assign(static_cast<std::size_t>(list.num_slots()),
                           Vec3{});
      accum.f[ni] = &replay_f_[ni];
    }
  }

  force_.assign(static_cast<std::size_t>(state_.num_total()), Vec3{});
  potential_energy_ =
      tuple_strategy_->compute_replay(field_, cache_, accum, counters_);

  {
    SCMD_TRACE("fold");
    for (int n = 2; n <= field_.max_n(); ++n) {
      const std::size_t ni = static_cast<std::size_t>(n);
      if (accum.f[ni] == nullptr) continue;
      const auto refs = cache_.list(n).refs();
      const std::vector<Vec3>& f = replay_f_[ni];
      for (std::size_t a = 0; a < f.size(); ++a)
        force_[static_cast<std::size_t>(refs[a])] += f[a];
    }
  }

  SCMD_TRACE("exchange.write_back");
  halo_exchange_->write_back(comm_, cached_stages_, state_, force_,
                             counters_);
}

void RankEngine::step() {
  SCMD_TRACE("step");
  // Half-kick + drift on owned atoms.
  const double dt = config_.dt;
  const Box& box = decomp_.box();
  {
    SCMD_TRACE("integrate.kick_drift");
    for (int i = 0; i < state_.num_owned(); ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      const double inv_m = 1.0 / field_.mass(state_.type[ii]);
      state_.vel[ii] += force_[ii] * (0.5 * dt * inv_m);
      state_.pos[ii] = box.wrap(state_.pos[ii] + state_.vel[ii] * dt);
    }
  }

  // Collective tuple-list retention decision (identical on every rank):
  // replay while the global max displacement since the build stays
  // within skin/2.  Decided before migration because reuse steps freeze
  // ownership and ghost routes — migration and the balancer run only on
  // rebuild steps (drift ≤ skin/2 is covered by the inflated halos, so
  // the one-hop migration assumption still holds at the next rebuild).
  bool reuse = false;
  if (tuple_strategy_ != nullptr && cache_.valid()) {
    const double d2 = cache_.max_displacement2(
        decomp_.box(), {state_.pos.data(), state_.pos.size()});
    reuse = !cache_.exceeds_skin(comm_.allreduce_max(d2));
    if (!reuse) cache_.invalidate();
  }

  if (reuse) {
    if (balancer_ != nullptr) balancer_->on_cached_step();
  } else {
    state_.clear_ghosts();
    {
      SCMD_TRACE("exchange.migrate");
      migrator_.migrate(comm_, state_);
    }

    if (balancer_ != nullptr) {
      SCMD_TRACE("balance");
      balancer_->on_step(comm_, *this);
    }
  }

  compute_forces();

  SCMD_TRACE("integrate.kick");
  for (int i = 0; i < state_.num_owned(); ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    state_.vel[ii] +=
        force_[ii] * (0.5 * dt / field_.mass(state_.type[ii]));
  }
}

}  // namespace scmd
