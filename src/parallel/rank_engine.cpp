#include "parallel/rank_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "check/engine_checks.hpp"
#include "engines/check_hooks.hpp"
#include "engines/tuple_strategy.hpp"
#include "obs/trace.hpp"
#include "parallel/check_channel.hpp"
#include "support/error.hpp"

namespace scmd {

RankEngine::RankEngine(Comm& comm, const Decomposition& decomp,
                       const ForceField& field, const ForceStrategy& strategy,
                       const RankEngineConfig& config)
    : comm_(comm),
      decomp_(decomp),
      field_(field),
      strategy_(strategy),
      config_(config),
      migrator_(decomp_),
      cache_(config.tuple_cache) {
  SCMD_REQUIRE(config.dt > 0.0, "time step must be positive");
  if (config.tuple_cache.enabled) {
    SCMD_REQUIRE(config.tuple_cache.skin >= 0.0,
                 "tuple-cache skin must be non-negative");
    tuple_strategy_ = dynamic_cast<const TupleStrategy*>(&strategy);
    SCMD_REQUIRE(tuple_strategy_ != nullptr,
                 "tuple_cache needs a pattern strategy (SC/FS/OC/RC)");
  }
  // The invariant checker's tuple census re-enumerates through the
  // pattern machinery, so it covers pattern strategies only (Hybrid runs
  // without the census; see docs/CHECKING.md).
  census_strategy_ = dynamic_cast<const TupleStrategy*>(&strategy);

  // Cell side inflated by the skin when tuple caching: the inflated
  // enumeration stays covered by the cell walk, and the physical halo
  // slabs (derived from the grids below) grow with it, so ghosts cover
  // rcut + skin and survive skin/2 of drift on either side.
  const double skin = config.tuple_cache.enabled ? config.tuple_cache.skin : 0.0;
  for (int n = 2; n <= field.max_n(); ++n) {
    if (!strategy.needs_grid(n)) continue;
    const std::size_t ni = static_cast<std::size_t>(n);
    grid_active_[ni] = true;
    grids_[ni] =
        decomp_.aligned_grid(strategy.min_cell_size(n, field.rcut(n) + skin));
    grid_halos_.emplace_back(grids_[ni], strategy.halo(n));
  }
  rebuild_halo_exchange();
}

void RankEngine::rebuild_halo_exchange() {
  if (decomp_.uniform()) {
    // Uniform bricks coincide with regions: one slab spec, the widest
    // per-axis halo over all grids, and octant (3-stage) routing when no
    // grid needs a lower halo.
    SlabSpec slab;
    bool both = false;
    for (const auto& [grid, h] : grid_halos_) {
      const Vec3 cl = grid.cell_lengths();
      for (int a = 0; a < 3; ++a) {
        slab.t_lo[a] = std::max(slab.t_lo[a], h.lo[a] * cl[a]);
        slab.t_hi[a] = std::max(slab.t_hi[a], h.hi[a] * cl[a]);
        if (h.lo[a] > 0) both = true;
      }
    }
    halo_exchange_ =
        std::make_unique<HaloExchange>(decomp_, slab, both);
  } else {
    // Non-uniform cuts: per-rank slab reach derived from each rank's
    // halo-extended brick (cut planes straddling cells included).  The
    // home range is additionally extended by the pattern root reach (see
    // build_domains), so fold that into the effective halo the exchange
    // must cover.  Stage directions are decided inside HaloExchange from
    // the global per-rank reach, so `both` just forces full-shell
    // routing when some grid inherently needs a lower halo.
    std::vector<std::pair<CellGrid, HaloSpec>> effective = grid_halos_;
    {
      std::size_t gi = 0;
      for (int n = 2; n <= field_.max_n(); ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        if (!grid_active_[ni]) continue;
        const HaloSpec ext = strategy_.root_reach(n);
        HaloSpec& h = effective[gi++].second;
        for (int a = 0; a < 3; ++a) {
          h.lo[a] += ext.lo[a];
          h.hi[a] += ext.hi[a];
        }
      }
    }
    bool both = false;
    for (const auto& [grid, h] : effective) {
      if (h.lo.x > 0 || h.lo.y > 0 || h.lo.z > 0) both = true;
    }
    halo_exchange_ =
        std::make_unique<HaloExchange>(decomp_, effective, both);
  }
}

void RankEngine::apply_decomposition(const Decomposition& decomp) {
  SCMD_REQUIRE(decomp.pgrid().num_ranks() == decomp_.pgrid().num_ranks(),
               "rebalance cannot change the rank count");
  SCMD_REQUIRE(decomp.align_pgrid() == decomp_.align_pgrid(),
               "rebalance must keep the alignment process grid (cell "
               "grids are fixed for the run)");
  decomp_ = decomp;  // migrator_ observes the member, so it follows
  cache_.invalidate();  // slot refs are tied to the old cuts
  rebuild_halo_exchange();
}

std::uint64_t RankEngine::settle_atoms() {
  state_.clear_ghosts();
  cache_.invalidate();
  const std::uint64_t sent = migrator_.settle(comm_, state_);
  force_.assign(static_cast<std::size_t>(state_.num_owned()), Vec3{});
  return sent;
}

void RankEngine::reset_cell_costs() {
  for (auto& cc : cell_costs_) {
    cc.assign(cc.size(), 0);
  }
}

void RankEngine::set_atoms(RankState state) {
  state_ = std::move(state);
  cache_.invalidate();
  force_.assign(static_cast<std::size_t>(state_.num_owned()), Vec3{});
}

void RankEngine::build_domains() {
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (!grid_active_[ni]) continue;
    const CellGrid& grid = grids_[ni];
    BrickRange br = decomp_.brick_range(grid, comm_.rank());
    const HaloSpec halo = strategy_.halo(n);
    const bool nonuniform = !decomp_.uniform();
    if (nonuniform) {
      // Extend the home-cell iteration range by the pattern root reach:
      // chains are filtered to owned level-0 atoms, and the rank owning
      // an atom in cell c must anchor every home cell h = c - v0 that can
      // start a chain through it (see ForceStrategy::root_reach).
      const HaloSpec ext = strategy_.root_reach(n);
      for (int a = 0; a < 3; ++a) {
        br.lo[a] -= ext.lo[a];
        br.dims[a] += ext.lo[a] + ext.hi[a];
      }
    }
    const Int3 brick_lo = br.lo;
    const Int3 brick_dims = br.dims;
    CellDomain dom(grid, brick_lo, brick_dims, halo);

    const Vec3 cl = grid.cell_lengths();
    std::vector<DomainAtom> records;
    records.reserve(static_cast<std::size_t>(state_.num_total()));
    const int owned = state_.num_owned();
    for (int i = 0; i < state_.num_total(); ++i) {
      const Vec3& p = state_.combined_pos(i);
      // Unwrapped global cell coordinate from the rank-frame position.
      Int3 gcell{static_cast<int>(std::floor(p.x / cl.x)),
                 static_cast<int>(std::floor(p.y / cl.y)),
                 static_cast<int>(std::floor(p.z / cl.z))};
      if (i < owned) {
        // Owned atoms are guaranteed inside the brick; clamp away
        // floating-point edge effects so ownership stays consistent.
        for (int a = 0; a < 3; ++a) {
          if (gcell[a] < brick_lo[a]) gcell[a] = brick_lo[a];
          const int top = brick_lo[a] + brick_dims[a] - 1;
          if (gcell[a] > top) gcell[a] = top;
        }
      }
      const Int3 local = dom.local_coord(gcell);
      if (!dom.in_local(local)) continue;  // imported for a wider grid
      DomainAtom rec;
      rec.pos = p;
      rec.type = state_.combined_type(i);
      rec.gid = state_.combined_gid(i);
      rec.local_ref = i;
      // Uniform bricks partition home cells across ranks, so every atom
      // may start a chain (legacy behavior).  Non-uniform cuts make
      // bricks overlap at straddled cells; there the owned atoms — this
      // rank's region population — form the global chain-start partition
      // and ghosts never start chains.
      rec.start = nonuniform ? (i < owned) : true;
      rec.local_cell = local;
      records.push_back(rec);
    }
    dom.build(records);
    domains_[ni] = std::move(dom);
    domain_forces_[ni].assign(
        static_cast<std::size_t>(domains_[ni].num_atoms()), Vec3{});
    if (config_.collect_cell_costs) {
      const std::size_t vol =
          static_cast<std::size_t>(domains_[ni].owned_dims().volume());
      if (cell_costs_[ni].size() != vol) cell_costs_[ni].assign(vol, 0);
    }
  }
}

void RankEngine::fold_forces(const ForceAccum& accum) {
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (accum.f[ni] == nullptr) continue;
    const auto refs = domains_[ni].local_refs();
    const std::vector<Vec3>& f = *accum.f[ni];
    for (std::size_t a = 0; a < f.size(); ++a)
      force_[static_cast<std::size_t>(refs[a])] += f[a];
  }
}

void RankEngine::compute_forces() {
  SCMD_TRACE("force");
  // The collective reuse decision lives in step(); a valid cache here
  // means every rank agreed to replay (or positions are unchanged since
  // the build, for direct calls).
  if (tuple_strategy_ != nullptr && cache_.valid()) {
    compute_forces_replay();
    return;
  }
  compute_forces_full();
}

void RankEngine::compute_forces_full() {
  SCMD_CHECK_SCOPE("force.full");
  state_.clear_ghosts();
  std::vector<ImportStageRecord> stages;
  {
    SCMD_TRACE("exchange.import");
    stages = halo_exchange_->import(comm_, state_, counters_);
  }
  verify_ghosts();

  {
    SCMD_TRACE("binning");
    build_domains();
  }

  DomainSet domains;
  ForceAccum accum;
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (!grid_active_[ni]) continue;
    domains.dom[ni] = &domains_[ni];
    accum.f[ni] = &domain_forces_[ni];
    if (config_.collect_cell_costs) accum.cell_cost[ni] = &cell_costs_[ni];
  }

  force_.assign(static_cast<std::size_t>(state_.num_total()), Vec3{});
  if (tuple_strategy_ != nullptr) {
    potential_energy_ = tuple_strategy_->compute_build(
        field_, domains, cache_.skin(), cache_, accum, counters_);
  } else {
    potential_energy_ = strategy_.compute(field_, domains, accum, counters_);
  }
  {
    SCMD_TRACE("fold");
    fold_forces(accum);
  }

  {
    SCMD_TRACE("exchange.write_back");
    halo_exchange_->write_back(comm_, stages, state_, force_, counters_);
  }

  if (tuple_strategy_ != nullptr) {
    cache_.mark_built({state_.pos.data(), state_.pos.size()});
    cached_stages_ = std::move(stages);
  }

#if defined(SCMD_CHECK_ENABLED)
  if (check::enabled()) {
    CommCheckChannel ch(comm_);
    {
      SCMD_CHECK_SCOPE("force_balance");
      check::check_force_balance(&ch, owned_forces());
    }
    if (check::options().tuple_ownership && census_strategy_ != nullptr &&
        static_cast<int>(++check_builds_ %
                         static_cast<std::uint64_t>(std::max(
                             1, check::options().ownership_every))) == 0) {
      SCMD_CHECK_SCOPE("tuple_census");
      for (int n = 2; n <= field_.max_n(); ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        if (!grid_active_[ni]) continue;
        const std::vector<std::int64_t> flat = census_tuples(
            *census_strategy_, domains_[ni], n, field_.rcut(n));
        check::check_tuple_ownership(&ch, n, flat, -1);
      }
    }
  }
#endif
}

/// Ghost/home consistency plus global atom conservation, collective over
/// the cluster; runs after every ghost import/refresh when checking is
/// enabled.  The conserved atom count is captured by a reduction the
/// first time the check runs.
void RankEngine::verify_ghosts() {
#if defined(SCMD_CHECK_ENABLED)
  if (!check::enabled() || !check::options().ghost_consistency) return;
  SCMD_CHECK_SCOPE("ghost_consistency");
  CommCheckChannel ch(comm_);
  if (check_atom_total_ < 0) {
    check_atom_total_ = std::llround(
        comm_.allreduce_sum(static_cast<double>(state_.num_owned())));
  }
  check::check_ghost_consistency(&ch, decomp_.box(), state_.gid, state_.pos,
                                 state_.ghost_gid, state_.ghost_pos,
                                 check_atom_total_);
#endif
}

void RankEngine::compute_forces_replay() {
  SCMD_CHECK_SCOPE("force.replay");
  {
    SCMD_TRACE("exchange.refresh");
    halo_exchange_->refresh(comm_, cached_stages_, state_, counters_);
  }
  verify_ghosts();

  ForceAccum accum;
  {
    // Refresh the frozen slot tables in place of re-binning: each slot
    // takes its source atom's current position (owned or just-refreshed
    // ghost), snapped to the periodic image nearest its previous value
    // so the build-time frame survives box wrap-around.
    SCMD_TRACE("refresh");
    for (int n = 2; n <= field_.max_n(); ++n) {
      const std::size_t ni = static_cast<std::size_t>(n);
      if (!grid_active_[ni]) continue;
      TupleList& list = cache_.list(n);
      list.refresh_positions(decomp_.box(), [&](int ref) -> const Vec3& {
        return state_.combined_pos(ref);
      });
      replay_f_[ni].assign(static_cast<std::size_t>(list.num_slots()),
                           Vec3{});
      accum.f[ni] = &replay_f_[ni];
    }
  }

  force_.assign(static_cast<std::size_t>(state_.num_total()), Vec3{});
  potential_energy_ =
      tuple_strategy_->compute_replay(field_, cache_, accum, counters_);

  {
    SCMD_TRACE("fold");
    for (int n = 2; n <= field_.max_n(); ++n) {
      const std::size_t ni = static_cast<std::size_t>(n);
      if (accum.f[ni] == nullptr) continue;
      const auto refs = cache_.list(n).refs();
      const std::vector<Vec3>& f = replay_f_[ni];
      for (std::size_t a = 0; a < f.size(); ++a)
        force_[static_cast<std::size_t>(refs[a])] += f[a];
    }
  }

#if defined(SCMD_CHECK_ENABLED)
  if (check::enabled() && check::options().replay_parity &&
      static_cast<int>(++check_replays_ %
                       static_cast<std::uint64_t>(std::max(
                           1, check::options().replay_parity_every))) == 0) {
    SCMD_CHECK_SCOPE("replay_parity");
    // No per-rank rebuild can produce the fresh reference on a reuse
    // step: migration is skipped, so owned atoms may have drifted across
    // brick boundaries, and under the upper-only octant import a
    // downward drift re-bins the atom into a peer's home cells (double
    // count) while an upward drift lands in cells whose anchoring rank
    // never imported it (lost tuples).  The full pipeline is only exact
    // because migration precedes binning.  Instead, gather the owned
    // atoms at rank 0 and recompute there over the serial-MD domain
    // ("halo exchange with oneself"), which is drift-agnostic.
    //
    // The recorded lists partition tuples by build-time binning, so the
    // per-rank replay arrays are not comparable either; route them
    // through the force write-back first (every ghost contribution
    // reaches its owner) and gather the owned forces.  The extra
    // write-back runs on every rank in the same order (the parity
    // cadence is collective), so the traffic stays matched.
    EngineCounters scratch_counters;
    std::vector<Vec3> replayed(force_);
    halo_exchange_->write_back(comm_, cached_stages_, state_, replayed,
                               scratch_counters);

    struct ParityAtom {
      std::int64_t gid;
      std::int64_t type;
      double px, py, pz;
      double fx, fy, fz;
    };
    static_assert(std::is_trivially_copyable_v<ParityAtom>);
    const std::size_t owned = static_cast<std::size_t>(state_.num_owned());
    std::vector<ParityAtom> atoms(owned);
    for (std::size_t i = 0; i < owned; ++i) {
      atoms[i] = ParityAtom{state_.gid[i],
                            static_cast<std::int64_t>(state_.type[i]),
                            state_.pos[i].x,
                            state_.pos[i].y,
                            state_.pos[i].z,
                            replayed[i].x,
                            replayed[i].y,
                            replayed[i].z};
    }

    CommCheckChannel ch(comm_);
    std::vector<Vec3> replay_all;
    std::vector<Vec3> fresh_all;
    double fresh_e = 0.0;
    if (ch.rank() != 0) {
      check::CheckBytes bytes(atoms.size() * sizeof(ParityAtom));
      if (!bytes.empty())
        std::memcpy(bytes.data(), atoms.data(), bytes.size());
      ch.send(0, std::move(bytes));
    } else {
      for (int r = 1; r < ch.num_ranks(); ++r) {
        const check::CheckBytes bytes = ch.recv(r);
        const std::size_t count = bytes.size() / sizeof(ParityAtom);
        const std::size_t base = atoms.size();
        atoms.resize(base + count);
        if (count != 0)
          std::memcpy(atoms.data() + base, bytes.data(),
                      count * sizeof(ParityAtom));
      }
      // Deterministic order (and a dense index space for the serial
      // domain, whose gids are indices into the position array).
      std::sort(atoms.begin(), atoms.end(),
                [](const ParityAtom& a, const ParityAtom& b) {
                  return a.gid < b.gid;
                });
      const std::size_t total = atoms.size();
      std::vector<Vec3> pos(total);
      std::vector<int> types(total);
      replay_all.resize(total);
      for (std::size_t i = 0; i < total; ++i) {
        pos[i] = Vec3(atoms[i].px, atoms[i].py, atoms[i].pz);
        types[i] = static_cast<int>(atoms[i].type);
        replay_all[i] = Vec3(atoms[i].fx, atoms[i].fy, atoms[i].fz);
      }
      DomainSet domains;
      ForceAccum accum;
      std::array<CellDomain, kMaxTupleLen + 1> dom_storage;
      std::array<std::vector<Vec3>, kMaxTupleLen + 1> f_storage;
      for (int n = 2; n <= field_.max_n(); ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        if (!grid_active_[ni]) continue;
        dom_storage[ni] =
            make_serial_domain(grids_[ni], strategy_.halo(n), pos, types);
        f_storage[ni].assign(
            static_cast<std::size_t>(dom_storage[ni].num_atoms()), Vec3{});
        domains.dom[ni] = &dom_storage[ni];
        accum.f[ni] = &f_storage[ni];
      }
      fresh_e = strategy_.compute(field_, domains, accum, scratch_counters);
      fresh_all.assign(total, Vec3{});
      for (int n = 2; n <= field_.max_n(); ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        if (accum.f[ni] == nullptr) continue;
        const auto gids = dom_storage[ni].gids();
        const std::vector<Vec3>& f = f_storage[ni];
        for (std::size_t a = 0; a < f.size(); ++a)
          fresh_all[static_cast<std::size_t>(gids[a])] += f[a];
      }
    }
    // Rank 0 carries the arrays and the reference energy; the others
    // contribute their replay-energy partials (summed inside the check)
    // and learn the verdict collectively.
    check::check_replay_parity(&ch, replay_all, fresh_all,
                               potential_energy_, fresh_e);
  }
#endif

  {
    SCMD_TRACE("exchange.write_back");
    halo_exchange_->write_back(comm_, cached_stages_, state_, force_,
                               counters_);
  }

#if defined(SCMD_CHECK_ENABLED)
  if (check::enabled()) {
    SCMD_CHECK_SCOPE("force_balance");
    CommCheckChannel ch(comm_);
    check::check_force_balance(&ch, owned_forces());
  }
#endif
}

void RankEngine::step() {
  SCMD_TRACE("step");
  SCMD_CHECK_SCOPE("step");
  // Half-kick + drift on owned atoms.
  const double dt = config_.dt;
  const Box& box = decomp_.box();
  {
    SCMD_TRACE("integrate.kick_drift");
    for (int i = 0; i < state_.num_owned(); ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      const double inv_m = 1.0 / field_.mass(state_.type[ii]);
      state_.vel[ii] += force_[ii] * (0.5 * dt * inv_m);
      state_.pos[ii] = box.wrap(state_.pos[ii] + state_.vel[ii] * dt);
    }
  }

  // Collective divergence gate.  A diverged system (non-finite position
  // or velocity after the drift) would wedge the exchange below: the
  // NaN atom never classifies as leaving, the one-hop invariant throws
  // on *this* rank only, and the peers block forever in their matching
  // recvs.  One allreduce makes the verdict unanimous, so every rank
  // throws at the same step boundary and the caller — scmd_run or a
  // serve worker — sees a clean failure instead of a hung cluster.
  {
    double bad = 0.0;
    for (int i = 0; i < state_.num_owned(); ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      const Vec3& p = state_.pos[ii];
      const Vec3& v = state_.vel[ii];
      if (!std::isfinite(p.x + p.y + p.z) ||
          !std::isfinite(v.x + v.y + v.z)) {
        bad = 1.0;
        break;
      }
    }
    if (comm_.allreduce_max(bad) > 0.0) {
      throw Error(
          "system diverged: non-finite position or velocity after "
          "integration (reduce the time step or the initial temperature)");
    }
  }

  // Collective tuple-list retention decision (identical on every rank):
  // replay while the global max displacement since the build stays
  // within skin/2.  Decided before migration because reuse steps freeze
  // ownership and ghost routes — migration and the balancer run only on
  // rebuild steps (drift ≤ skin/2 is covered by the inflated halos, so
  // the one-hop migration assumption still holds at the next rebuild).
  bool reuse = false;
  if (tuple_strategy_ != nullptr && cache_.valid()) {
    const double d2 = cache_.max_displacement2(
        decomp_.box(), {state_.pos.data(), state_.pos.size()});
    reuse = !cache_.exceeds_skin(comm_.allreduce_max(d2));
    if (!reuse) cache_.invalidate();
  }

  if (reuse) {
    if (balancer_ != nullptr) balancer_->on_cached_step();
  } else {
    state_.clear_ghosts();
    {
      SCMD_TRACE("exchange.migrate");
      migrator_.migrate(comm_, state_);
    }

    if (balancer_ != nullptr) {
      SCMD_TRACE("balance");
      balancer_->on_step(comm_, *this);
    }
  }

  compute_forces();

  SCMD_TRACE("integrate.kick");
  for (int i = 0; i < state_.num_owned(); ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    state_.vel[ii] +=
        force_[ii] * (0.5 * dt / field_.mass(state_.type[ii]));
  }
}

}  // namespace scmd
