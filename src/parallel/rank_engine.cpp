#include "parallel/rank_engine.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace scmd {

RankEngine::RankEngine(Comm& comm, const Decomposition& decomp,
                       const ForceField& field, const ForceStrategy& strategy,
                       const RankEngineConfig& config)
    : comm_(comm),
      decomp_(decomp),
      field_(field),
      strategy_(strategy),
      config_(config),
      migrator_(decomp) {
  SCMD_REQUIRE(config.dt > 0.0, "time step must be positive");

  // Aligned grid per active n, plus the physical slab the ghost exchange
  // must cover: the widest per-axis halo over all grids.
  SlabSpec slab;
  bool both = false;
  for (int n = 2; n <= field.max_n(); ++n) {
    if (!strategy.needs_grid(n)) continue;
    const std::size_t ni = static_cast<std::size_t>(n);
    grid_active_[ni] = true;
    grids_[ni] =
        decomp.aligned_grid(strategy.min_cell_size(n, field.rcut(n)));
    const HaloSpec h = strategy.halo(n);
    const Vec3 cl = grids_[ni].cell_lengths();
    for (int a = 0; a < 3; ++a) {
      slab.t_lo[a] = std::max(slab.t_lo[a], h.lo[a] * cl[a]);
      slab.t_hi[a] = std::max(slab.t_hi[a], h.hi[a] * cl[a]);
      if (h.lo[a] > 0) both = true;
    }
  }
  halo_exchange_ = std::make_unique<HaloExchange>(decomp, slab, both);
}

void RankEngine::set_atoms(RankState state) {
  state_ = std::move(state);
  force_.assign(static_cast<std::size_t>(state_.num_owned()), Vec3{});
}

void RankEngine::build_domains() {
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (!grid_active_[ni]) continue;
    const CellGrid& grid = grids_[ni];
    const Int3 brick_lo = decomp_.brick_lo(grid, comm_.rank());
    const Int3 brick_dims = decomp_.cells_per_rank(grid);
    const HaloSpec halo = strategy_.halo(n);
    CellDomain dom(grid, brick_lo, brick_dims, halo);

    const Vec3 cl = grid.cell_lengths();
    std::vector<DomainAtom> records;
    records.reserve(static_cast<std::size_t>(state_.num_total()));
    const int owned = state_.num_owned();
    for (int i = 0; i < state_.num_total(); ++i) {
      const Vec3& p = state_.combined_pos(i);
      // Unwrapped global cell coordinate from the rank-frame position.
      Int3 gcell{static_cast<int>(std::floor(p.x / cl.x)),
                 static_cast<int>(std::floor(p.y / cl.y)),
                 static_cast<int>(std::floor(p.z / cl.z))};
      if (i < owned) {
        // Owned atoms are guaranteed inside the brick; clamp away
        // floating-point edge effects so ownership stays consistent.
        for (int a = 0; a < 3; ++a) {
          if (gcell[a] < brick_lo[a]) gcell[a] = brick_lo[a];
          const int top = brick_lo[a] + brick_dims[a] - 1;
          if (gcell[a] > top) gcell[a] = top;
        }
      }
      const Int3 local = dom.local_coord(gcell);
      if (!dom.in_local(local)) continue;  // imported for a wider grid
      DomainAtom rec;
      rec.pos = p;
      rec.type = state_.combined_type(i);
      rec.gid = state_.combined_gid(i);
      rec.local_ref = i;
      rec.local_cell = local;
      records.push_back(rec);
    }
    dom.build(records);
    domains_[ni] = std::move(dom);
    domain_forces_[ni].assign(
        static_cast<std::size_t>(domains_[ni].num_atoms()), Vec3{});
  }
}

void RankEngine::fold_forces(const ForceAccum& accum) {
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (accum.f[ni] == nullptr) continue;
    const auto refs = domains_[ni].local_refs();
    const std::vector<Vec3>& f = *accum.f[ni];
    for (std::size_t a = 0; a < f.size(); ++a)
      force_[static_cast<std::size_t>(refs[a])] += f[a];
  }
}

void RankEngine::compute_forces() {
  SCMD_TRACE("force");
  state_.clear_ghosts();
  std::vector<ImportStageRecord> stages;
  {
    SCMD_TRACE("exchange.import");
    stages = halo_exchange_->import(comm_, state_, counters_);
  }

  {
    SCMD_TRACE("binning");
    build_domains();
  }

  DomainSet domains;
  ForceAccum accum;
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (!grid_active_[ni]) continue;
    domains.dom[ni] = &domains_[ni];
    accum.f[ni] = &domain_forces_[ni];
  }

  force_.assign(static_cast<std::size_t>(state_.num_total()), Vec3{});
  potential_energy_ = strategy_.compute(field_, domains, accum, counters_);
  {
    SCMD_TRACE("fold");
    fold_forces(accum);
  }

  SCMD_TRACE("exchange.write_back");
  halo_exchange_->write_back(comm_, stages, state_, force_, counters_);
}

void RankEngine::step() {
  SCMD_TRACE("step");
  // Half-kick + drift on owned atoms.
  const double dt = config_.dt;
  const Box& box = decomp_.box();
  {
    SCMD_TRACE("integrate.kick_drift");
    for (int i = 0; i < state_.num_owned(); ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      const double inv_m = 1.0 / field_.mass(state_.type[ii]);
      state_.vel[ii] += force_[ii] * (0.5 * dt * inv_m);
      state_.pos[ii] = box.wrap(state_.pos[ii] + state_.vel[ii] * dt);
    }
  }

  state_.clear_ghosts();
  {
    SCMD_TRACE("exchange.migrate");
    migrator_.migrate(comm_, state_);
  }

  compute_forces();

  SCMD_TRACE("integrate.kick");
  for (int i = 0; i < state_.num_owned(); ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    state_.vel[ii] +=
        force_[ii] * (0.5 * dt / field_.mass(state_.type[ii]));
  }
}

}  // namespace scmd
