#include "parallel/exchange.hpp"

#include <algorithm>
#include <cmath>

#include "net/tags.hpp"
#include "support/error.hpp"

namespace scmd {

namespace {

/// Wire format for ghost import (positions already in the receiver frame).
struct GhostWire {
  double x, y, z;
  std::int64_t gid;
  std::int32_t type;
  std::int32_t pad = 0;
};

/// Wire format for migration.
struct MigrateWire {
  double px, py, pz;
  double vx, vy, vz;
  std::int64_t gid;
  std::int32_t type;
  std::int32_t pad = 0;
};

}  // namespace

void RankState::clear_ghosts() {
  ghost_pos.clear();
  ghost_gid.clear();
  ghost_type.clear();
}

HaloExchange::HaloExchange(const Decomposition& decomp, const SlabSpec& slab,
                           bool both_directions)
    : decomp_(&decomp), both_directions_(both_directions) {
  const Vec3 region = decomp.region_lengths();
  for (int a = 0; a < 3; ++a) {
    SCMD_REQUIRE(slab.t_lo[a] >= 0.0 && slab.t_hi[a] >= 0.0,
                 "slab thickness must be non-negative");
    SCMD_REQUIRE(slab.t_lo[a] <= region[a] && slab.t_hi[a] <= region[a],
                 "halo slab thicker than the rank region: grain too fine "
                 "for this cutoff/pattern");
    if (!both_directions) {
      SCMD_REQUIRE(slab.t_lo[a] == 0.0,
                   "octant import has no lower halo; use both_directions");
    }
  }
  rank_slabs_.assign(static_cast<std::size_t>(decomp.pgrid().num_ranks()),
                     slab);
}

HaloExchange::HaloExchange(
    const Decomposition& decomp,
    const std::vector<std::pair<CellGrid, HaloSpec>>& grid_halos,
    bool both_directions)
    : decomp_(&decomp), both_directions_(both_directions) {
  const int num_ranks = decomp.pgrid().num_ranks();
  rank_slabs_.assign(static_cast<std::size_t>(num_ranks), SlabSpec{});
  for (int r = 0; r < num_ranks; ++r) {
    SlabSpec& s = rank_slabs_[static_cast<std::size_t>(r)];
    const Vec3 lo = decomp.region_lo(r);
    const Vec3 hi = decomp.region_hi(r);
    for (const auto& [grid, halo] : grid_halos) {
      const BrickRange br = decomp.brick_range(grid, r);
      const Vec3 cl = grid.cell_lengths();
      for (int a = 0; a < 3; ++a) {
        // Physical reach of the halo-extended brick beyond the region.
        const double below = lo[a] - (br.lo[a] - halo.lo[a]) * cl[a];
        const double above =
            (br.lo[a] + br.dims[a] + halo.hi[a]) * cl[a] - hi[a];
        s.t_lo[a] = std::max({s.t_lo[a], below, 0.0});
        s.t_hi[a] = std::max({s.t_hi[a], above, 0.0});
      }
    }
  }
  validate_slabs();
}

void HaloExchange::validate_slabs() const {
  // One forwarding hop per axis: each rank must be able to serve its
  // neighbors' reach from its own region.  The balance solver enforces
  // this feasibility exactly in integer fine-lattice units; re-deriving
  // the same boundary here in physical lengths can round a hair past an
  // exactly-feasible cut, hence the tolerance.
  const ProcessGrid& pg = decomp_->pgrid();
  for (int r = 0; r < pg.num_ranks(); ++r) {
    const Vec3 len = decomp_->region_len(r);
    for (int a = 0; a < 3; ++a) {
      const double tol = 1e-12 * (decomp_->box().length(a) + 1.0);
      const int down = pg.neighbor(r, a, -1);
      const int up = pg.neighbor(r, a, +1);
      const SlabSpec& sd = rank_slabs_[static_cast<std::size_t>(down)];
      const SlabSpec& su = rank_slabs_[static_cast<std::size_t>(up)];
      SCMD_REQUIRE(sd.t_hi[a] <= len[a] + tol && su.t_lo[a] <= len[a] + tol,
                   "halo slab thicker than a neighbor rank region: region "
                   "too thin for this cutoff/pattern");
    }
  }
}

std::vector<ImportStageRecord> HaloExchange::import(
    Comm& comm, RankState& state, EngineCounters& counters) const {
  const ProcessGrid& pg = decomp_->pgrid();
  const Int3 pcoord = pg.coord_of(comm.rank());
  const Vec3 lo = decomp_->region_lo(comm.rank());
  const Vec3 hi = decomp_->region_hi(comm.rank());

  std::vector<ImportStageRecord> stages;
  int stage_idx = 0;

  // One sub-stage: send my slab for (axis, dir) and receive the matching
  // slab from the opposite neighbor.  dir = -1 means "send down": my lower
  // slab becomes the -axis neighbor's upper halo, and I receive my upper
  // halo from the +axis neighbor.
  auto run_stage = [&](int axis, int dir) {
    ImportStageRecord rec;
    rec.stage = stage_idx++;
    rec.sent_to = pg.neighbor(comm.rank(), axis, dir);
    rec.received_from = pg.neighbor(comm.rank(), axis, -dir);

    // Select atoms (owned + forwarded ghosts) in the outgoing slab, sized
    // by the *receiver's* halo reach.
    const SlabSpec& peer =
        rank_slabs_[static_cast<std::size_t>(rec.sent_to)];
    double sel_lo, sel_hi;
    if (dir < 0) {
      sel_lo = lo[axis];
      sel_hi = lo[axis] + peer.t_hi[axis];
    } else {
      sel_lo = hi[axis] - peer.t_lo[axis];
      sel_hi = hi[axis];
    }
    // Shift into the receiver's frame when the hop wraps the box.
    double shift = 0.0;
    if (dir < 0 && pcoord[axis] == 0) shift = decomp_->box().length(axis);
    if (dir > 0 && pcoord[axis] == pg.dims()[axis] - 1)
      shift = -decomp_->box().length(axis);

    std::vector<GhostWire> out;
    const int total = state.num_total();
    for (int i = 0; i < total; ++i) {
      const Vec3& p = state.combined_pos(i);
      if (p[axis] < sel_lo || p[axis] >= sel_hi) continue;
      GhostWire w;
      Vec3 sp = p;
      sp[axis] += shift;
      w.x = sp.x;
      w.y = sp.y;
      w.z = sp.z;
      w.gid = state.combined_gid(i);
      w.type = state.combined_type(i);
      out.push_back(w);
      rec.sent.push_back(i);
    }
    comm.send(rec.sent_to, tags::import_tag(rec.stage), pack(out));
    ++counters.messages;
    counters.bytes_imported += out.size() * sizeof(GhostWire);

    const std::vector<GhostWire> in = unpack<GhostWire>(
        comm.recv(rec.received_from, tags::import_tag(rec.stage)));
    rec.recv_begin = state.num_total();
    for (const GhostWire& w : in) {
      SCMD_REQUIRE(w.gid >= 0, "halo import frame carries a negative gid");
      state.ghost_pos.push_back({w.x, w.y, w.z});
      state.ghost_gid.push_back(w.gid);
      state.ghost_type.push_back(w.type);
    }
    rec.recv_end = state.num_total();
    counters.ghost_atoms_imported += in.size();
    stages.push_back(std::move(rec));
  };

  // Stage directions are decided from the global maxima so the sequence
  // is collective even when only some ranks have a non-zero reach.
  for (int axis = 0; axis < 3; ++axis) {
    double max_lo = 0.0, max_hi = 0.0;
    for (const SlabSpec& s : rank_slabs_) {
      max_lo = std::max(max_lo, s.t_lo[axis]);
      max_hi = std::max(max_hi, s.t_hi[axis]);
    }
    if (max_hi > 0.0 || both_directions_) run_stage(axis, -1);
    if (max_lo > 0.0) run_stage(axis, +1);
  }
  return stages;
}

void HaloExchange::write_back(Comm& comm,
                              const std::vector<ImportStageRecord>& stages,
                              RankState& state, std::vector<Vec3>& force,
                              EngineCounters& counters) const {
  SCMD_REQUIRE(static_cast<int>(force.size()) == state.num_total(),
               "force array must cover owned + ghost atoms");
  // Reverse every import stage: return the forces accumulated on the
  // ghosts I received, and fold the returned forces for the atoms I sent
  // (which forwards multi-hop contributions automatically, because `sent`
  // may reference ghosts from earlier stages whose own write-back runs
  // later in this reversed loop).
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    const ImportStageRecord& rec = *it;
    std::vector<Vec3> out;
    out.reserve(static_cast<std::size_t>(rec.recv_end - rec.recv_begin));
    for (int i = rec.recv_begin; i < rec.recv_end; ++i)
      out.push_back(force[static_cast<std::size_t>(i)]);
    const int tag = tags::writeback_tag(rec.stage);
    comm.send(rec.received_from, tag, pack(out));
    ++counters.messages;
    counters.bytes_written_back += out.size() * sizeof(Vec3);

    const std::vector<Vec3> in = unpack<Vec3>(comm.recv(rec.sent_to, tag));
    SCMD_REQUIRE(in.size() == rec.sent.size(),
                 "write-back size mismatch with sent slab");
    for (std::size_t k = 0; k < in.size(); ++k)
      force[static_cast<std::size_t>(rec.sent[k])] += in[k];
  }
}

void HaloExchange::refresh(Comm& comm,
                           const std::vector<ImportStageRecord>& stages,
                           RankState& state,
                           EngineCounters& counters) const {
  const Box& box = decomp_->box();
  const int num_owned = state.num_owned();
  for (const ImportStageRecord& rec : stages) {
    std::vector<Vec3> out;
    out.reserve(rec.sent.size());
    // Frame does not matter on the wire: the receiver snaps to its own
    // previous value.  Forwarded ghosts were refreshed by earlier stages
    // of this loop, so multi-hop routes carry current positions.
    for (const int i : rec.sent) out.push_back(state.combined_pos(i));
    const int tag = tags::refresh_tag(rec.stage);
    comm.send(rec.sent_to, tag, pack(out));
    ++counters.messages;
    counters.bytes_imported += out.size() * sizeof(Vec3);

    const std::vector<Vec3> in =
        unpack<Vec3>(comm.recv(rec.received_from, tag));
    SCMD_REQUIRE(static_cast<int>(in.size()) == rec.recv_end - rec.recv_begin,
                 "ghost refresh size mismatch with recorded stage");
    for (std::size_t k = 0; k < in.size(); ++k) {
      Vec3& g = state.ghost_pos[static_cast<std::size_t>(
          rec.recv_begin - num_owned) + k];
      g = box.image_near(in[k], g);
    }
    counters.ghost_atoms_imported += in.size();
  }
}

std::uint64_t Migrator::sweep(Comm& comm, RankState& state) const {
  SCMD_REQUIRE(state.num_ghosts() == 0, "clear ghosts before migrating");
  const ProcessGrid& pg = decomp_->pgrid();
  const Vec3 lo = decomp_->region_lo(comm.rank());
  const Vec3 hi = decomp_->region_hi(comm.rank());
  const Vec3 region = decomp_->region_len(comm.rank());
  const Box& box = decomp_->box();

  // Axis coordinate of an owned atom in the periodic image closest to the
  // region center: robust direction test at global boundaries.
  auto centered = [&](double p, int axis) {
    const double center = lo[axis] + 0.5 * region[axis];
    const double L = box.length(axis);
    double u = p;
    if (u - center > 0.5 * L) u -= L;
    if (center - u > 0.5 * L) u += L;
    return u;
  };

  std::uint64_t sent = 0;
  for (int axis = 0; axis < 3; ++axis) {
    if (pg.dims()[axis] == 1) continue;  // whole axis is ours
    for (int dir : {-1, +1}) {
      const int peer_to = pg.neighbor(comm.rank(), axis, dir);
      const int peer_from = pg.neighbor(comm.rank(), axis, -dir);
      const int tag = tags::migrate_tag(axis, dir > 0 ? 1 : 0);

      std::vector<MigrateWire> out;
      std::size_t w = 0;
      for (std::size_t i = 0; i < state.pos.size(); ++i) {
        const double u = centered(state.pos[i][axis], axis);
        const bool leaves = dir < 0 ? (u < lo[axis]) : (u >= hi[axis]);
        if (leaves) {
          const Vec3& p = state.pos[i];
          const Vec3& v = state.vel[i];
          out.push_back({p.x, p.y, p.z, v.x, v.y, v.z, state.gid[i],
                         static_cast<std::int32_t>(state.type[i]), 0});
        } else {
          state.pos[w] = state.pos[i];
          state.vel[w] = state.vel[i];
          state.gid[w] = state.gid[i];
          state.type[w] = state.type[i];
          ++w;
        }
      }
      state.pos.resize(w);
      state.vel.resize(w);
      state.gid.resize(w);
      state.type.resize(w);
      sent += out.size();

      comm.send(peer_to, tag, pack(out));
      const std::vector<MigrateWire> in =
          unpack<MigrateWire>(comm.recv(peer_from, tag));
      for (const MigrateWire& m : in) {
        SCMD_REQUIRE(m.gid >= 0, "migration frame carries a negative gid");
        state.pos.push_back(box.wrap({m.px, m.py, m.pz}));
        state.vel.push_back({m.vx, m.vy, m.vz});
        state.gid.push_back(m.gid);
        state.type.push_back(static_cast<int>(m.type));
      }
    }
  }
  return sent;
}

void Migrator::migrate(Comm& comm, RankState& state) const {
  sweep(comm, state);

  const Vec3 lo = decomp_->region_lo(comm.rank());
  const Vec3 hi = decomp_->region_hi(comm.rank());
  const Vec3 region = decomp_->region_len(comm.rank());
  const Box& box = decomp_->box();

  // Every owned atom must now be inside the region (one-hop assumption).
  for (const Vec3& p : state.pos) {
    for (int a = 0; a < 3; ++a) {
      const double center = lo[a] + 0.5 * region[a];
      const double L = box.length(a);
      double u = p[a];
      if (u - center > 0.5 * L) u -= L;
      if (center - u > 0.5 * L) u += L;
      SCMD_REQUIRE(u >= lo[a] - 1e-9 && u < hi[a] + 1e-9,
                   "atom moved more than one rank region in a step");
    }
  }
}

std::uint64_t Migrator::settle(Comm& comm, RankState& state) const {
  const Vec3 lo = decomp_->region_lo(comm.rank());
  const Vec3 hi = decomp_->region_hi(comm.rank());
  const Box& box = decomp_->box();

  // After a rebalance the cut planes moved, so atoms may be several hops
  // from their new owner; each sweep advances every stray atom at least
  // one rank along each axis, so the hop count is bounded by the process
  // grid diameter.
  const Int3 pd = decomp_->pgrid().dims();
  const int max_sweeps = pd.x + pd.y + pd.z + 1;
  std::uint64_t total_sent = 0;
  for (int pass = 0; pass < max_sweeps; ++pass) {
    std::uint64_t strays = 0;
    for (const Vec3& p : state.pos) {
      const Vec3 w = box.wrap(p);
      for (int a = 0; a < 3; ++a) {
        if (w[a] < lo[a] || w[a] >= hi[a]) {
          ++strays;
          break;
        }
      }
    }
    if (comm.allreduce_sum(static_cast<double>(strays)) == 0.0)
      return total_sent;
    total_sent += sweep(comm, state);
  }
  SCMD_REQUIRE(false, "atom migration failed to settle; inconsistent "
                      "decomposition regions across ranks");
  return total_sent;
}

}  // namespace scmd
