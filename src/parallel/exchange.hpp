#pragma once

/// \file exchange.hpp
/// Staged atom communication: ghost import, force write-back, migration.
///
/// Ghost import follows the paper's forwarded-atom routing (Sec. 4.2):
/// one slab exchange per axis, where each stage forwards atoms received in
/// earlier stages, so edge/corner data crosses the machine without
/// diagonal messages.  The shift-collapse octant pattern needs only the
/// *upper* halo — one send per axis, 3 messages, data from the 7 upper
/// neighbor ranks.  Full-shell patterns exchange both directions per axis
/// — 6 messages, data from all 26 neighbors.
///
/// Because SC-MD relaxes the owner-compute rule, forces accumulate on
/// ghost atoms; write_back() routes those contributions backwards through
/// the exact reverse of the import stages, summing into the owners.
///
/// Positions of owned atoms are kept wrapped in the global box; ghost
/// copies are stored in the receiving rank's *unwrapped* frame (shifted by
/// a box length when the import crossed the periodic boundary), so force
/// kernels use plain Euclidean geometry.

#include <cstdint>
#include <vector>

#include "engines/counters.hpp"
#include "geom/vec3.hpp"
#include "parallel/comm.hpp"
#include "parallel/decomp.hpp"

namespace scmd {

/// One rank's atom population: owned atoms plus imported ghosts.
/// Combined indexing: [0, num_owned) owned, then ghosts in arrival order.
struct RankState {
  std::vector<Vec3> pos;              ///< owned, wrapped into the box
  std::vector<Vec3> vel;              ///< owned
  std::vector<std::int64_t> gid;      ///< owned
  std::vector<int> type;              ///< owned

  std::vector<Vec3> ghost_pos;        ///< unwrapped frame
  std::vector<std::int64_t> ghost_gid;
  std::vector<int> ghost_type;

  int num_owned() const { return static_cast<int>(pos.size()); }
  int num_ghosts() const { return static_cast<int>(ghost_pos.size()); }
  int num_total() const { return num_owned() + num_ghosts(); }

  void clear_ghosts();

  /// Position of a combined index (owned or ghost).
  const Vec3& combined_pos(int i) const {
    return i < num_owned() ? pos[static_cast<std::size_t>(i)]
                           : ghost_pos[static_cast<std::size_t>(i - num_owned())];
  }
  std::int64_t combined_gid(int i) const {
    return i < num_owned() ? gid[static_cast<std::size_t>(i)]
                           : ghost_gid[static_cast<std::size_t>(i - num_owned())];
  }
  int combined_type(int i) const {
    return i < num_owned() ? type[static_cast<std::size_t>(i)]
                           : ghost_type[static_cast<std::size_t>(i - num_owned())];
  }
};

/// Physical halo slab thicknesses around a rank's region.
struct SlabSpec {
  Vec3 t_lo;  ///< below the region per axis (zero for octant/SC import)
  Vec3 t_hi;  ///< above the region per axis
};

/// Bookkeeping of one import stage, needed to reverse it for write-back.
struct ImportStageRecord {
  int sent_to = -1;        ///< peer the stage's slab went to
  int received_from = -1;  ///< peer the stage's ghosts came from
  int tag = 0;
  std::vector<int> sent;   ///< my combined indices that were sent
  int recv_begin = 0;      ///< ghost range received, combined indices
  int recv_end = 0;
};

/// Staged slab exchange for one decomposition.
class HaloExchange {
 public:
  /// `both_directions` selects full-shell (6-stage) vs octant (3-stage)
  /// routing.  Slab thicknesses must not exceed the rank region (single
  /// forwarding hop per axis), which is checked here.
  HaloExchange(const Decomposition& decomp, const SlabSpec& slab,
               bool both_directions);

  /// Import ghosts into `state` (appends to the ghost arrays).  Counters:
  /// ghost_atoms_imported, messages, bytes_imported.
  std::vector<ImportStageRecord> import(Comm& comm, RankState& state,
                                        EngineCounters& counters) const;

  /// Reverse the import: send accumulated ghost forces back stage by
  /// stage, adding received contributions into `force` (combined array of
  /// size state.num_total()).  Counters: messages, bytes_written_back.
  void write_back(Comm& comm, const std::vector<ImportStageRecord>& stages,
                  RankState& state, std::vector<Vec3>& force,
                  EngineCounters& counters) const;

  int num_import_stages() const { return both_directions_ ? 6 : 3; }

 private:
  const Decomposition* decomp_;
  SlabSpec slab_;
  bool both_directions_;
};

/// Post-drift atom migration: moves owned atoms to the rank whose region
/// now contains them, one staged exchange per axis in both directions.
/// Atoms must not move farther than one rank region per step.
class Migrator {
 public:
  explicit Migrator(const Decomposition& decomp) : decomp_(&decomp) {}

  /// Redistribute; on return every owned atom lies in this rank's region
  /// (verified).  Ghosts must already be cleared.
  void migrate(Comm& comm, RankState& state) const;

 private:
  const Decomposition* decomp_;
};

}  // namespace scmd
