#pragma once

/// \file exchange.hpp
/// Staged atom communication: ghost import, force write-back, migration.
///
/// Ghost import follows the paper's forwarded-atom routing (Sec. 4.2):
/// one slab exchange per axis, where each stage forwards atoms received in
/// earlier stages, so edge/corner data crosses the machine without
/// diagonal messages.  The shift-collapse octant pattern needs only the
/// *upper* halo — one send per axis, 3 messages, data from the 7 upper
/// neighbor ranks.  Full-shell patterns exchange both directions per axis
/// — 6 messages, data from all 26 neighbors.
///
/// Because SC-MD relaxes the owner-compute rule, forces accumulate on
/// ghost atoms; write_back() routes those contributions backwards through
/// the exact reverse of the import stages, summing into the owners.
///
/// Positions of owned atoms are kept wrapped in the global box; ghost
/// copies are stored in the receiving rank's *unwrapped* frame (shifted by
/// a box length when the import crossed the periodic boundary), so force
/// kernels use plain Euclidean geometry.

#include <cstdint>
#include <utility>
#include <vector>

#include "cell/domain.hpp"
#include "engines/counters.hpp"
#include "geom/vec3.hpp"
#include "parallel/comm.hpp"
#include "parallel/decomp.hpp"

namespace scmd {

/// One rank's atom population: owned atoms plus imported ghosts.
/// Combined indexing: [0, num_owned) owned, then ghosts in arrival order.
struct RankState {
  std::vector<Vec3> pos;              ///< owned, wrapped into the box
  std::vector<Vec3> vel;              ///< owned
  std::vector<std::int64_t> gid;      ///< owned
  std::vector<int> type;              ///< owned

  std::vector<Vec3> ghost_pos;        ///< unwrapped frame
  std::vector<std::int64_t> ghost_gid;
  std::vector<int> ghost_type;

  int num_owned() const { return static_cast<int>(pos.size()); }
  int num_ghosts() const { return static_cast<int>(ghost_pos.size()); }
  int num_total() const { return num_owned() + num_ghosts(); }

  void clear_ghosts();

  /// Position of a combined index (owned or ghost).
  const Vec3& combined_pos(int i) const {
    return i < num_owned() ? pos[static_cast<std::size_t>(i)]
                           : ghost_pos[static_cast<std::size_t>(i - num_owned())];
  }
  std::int64_t combined_gid(int i) const {
    return i < num_owned() ? gid[static_cast<std::size_t>(i)]
                           : ghost_gid[static_cast<std::size_t>(i - num_owned())];
  }
  int combined_type(int i) const {
    return i < num_owned() ? type[static_cast<std::size_t>(i)]
                           : ghost_type[static_cast<std::size_t>(i - num_owned())];
  }
};

/// Physical halo slab thicknesses around a rank's region.
struct SlabSpec {
  Vec3 t_lo;  ///< below the region per axis (zero for octant/SC import)
  Vec3 t_hi;  ///< above the region per axis
};

/// Bookkeeping of one import stage, needed to reverse it for write-back.
struct ImportStageRecord {
  int sent_to = -1;        ///< peer the stage's slab went to
  int received_from = -1;  ///< peer the stage's ghosts came from
  int stage = 0;  ///< index into the tags:: import/writeback/refresh windows
  std::vector<int> sent;   ///< my combined indices that were sent
  int recv_begin = 0;      ///< ghost range received, combined indices
  int recv_end = 0;
};

/// Staged slab exchange for one decomposition.
class HaloExchange {
 public:
  /// `both_directions` selects full-shell (6-stage) vs octant (3-stage)
  /// routing.  Slab thicknesses must not exceed the rank region (single
  /// forwarding hop per axis), which is checked here.  Uniform
  /// decompositions only (every rank shares one slab spec).
  HaloExchange(const Decomposition& decomp, const SlabSpec& slab,
               bool both_directions);

  /// Per-rank slab thicknesses derived from the cell grids a rank's brick
  /// must cover: rank r's upper reach on an axis is the distance from its
  /// region top to the top of its halo-extended brick, maximized over
  /// grids (and likewise below).  This handles non-uniform cuts, where a
  /// cut straddling a cell gives even an octant (SC) pattern a non-zero
  /// *lower* reach — the remainder of the straddled cell.  Senders select
  /// slabs with the *receiver's* thickness (all ranks know all cuts), and
  /// a stage direction runs iff any rank needs it, keeping the stage
  /// sequence collective.
  HaloExchange(const Decomposition& decomp,
               const std::vector<std::pair<CellGrid, HaloSpec>>& grid_halos,
               bool both_directions);

  /// Import ghosts into `state` (appends to the ghost arrays).  Counters:
  /// ghost_atoms_imported, messages, bytes_imported.
  std::vector<ImportStageRecord> import(Comm& comm, RankState& state,
                                        EngineCounters& counters) const;

  /// Reverse the import: send accumulated ghost forces back stage by
  /// stage, adding received contributions into `force` (combined array of
  /// size state.num_total()).  Counters: messages, bytes_written_back.
  void write_back(Comm& comm, const std::vector<ImportStageRecord>& stages,
                  RankState& state, std::vector<Vec3>& force,
                  EngineCounters& counters) const;

  /// Positions-only re-import over a recorded stage sequence (the
  /// tuple-cache reuse path, docs/TUPLECACHE.md): resend each stage's
  /// exact atom selection and overwrite the matching ghost range in
  /// place.  Each received position is snapped to the periodic image
  /// nearest the ghost's previous value, which reproduces the original
  /// wrap shift without re-deriving it — valid while atoms move much
  /// less than half a box length between rebuilds, which the skin/2
  /// retention criterion guarantees.  Stages replay in recorded order so
  /// forwarded (multi-hop) ghosts pick up already-refreshed values.
  /// Counters: messages, bytes_imported, ghost_atoms_imported.
  void refresh(Comm& comm, const std::vector<ImportStageRecord>& stages,
               RankState& state, EngineCounters& counters) const;

  int num_import_stages() const { return both_directions_ ? 6 : 3; }

  /// The slab thicknesses rank r imports (its own halo reach).
  const SlabSpec& rank_slab(int rank) const {
    return rank_slabs_[static_cast<std::size_t>(rank)];
  }

 private:
  void validate_slabs() const;

  const Decomposition* decomp_;
  bool both_directions_;
  std::vector<SlabSpec> rank_slabs_;  ///< per-rank halo reach
};

/// Post-drift atom migration: moves owned atoms to the rank whose region
/// now contains them, one staged exchange per axis in both directions.
/// Atoms must not move farther than one rank region per step.
class Migrator {
 public:
  explicit Migrator(const Decomposition& decomp) : decomp_(&decomp) {}

  /// Redistribute; on return every owned atom lies in this rank's region
  /// (verified).  Ghosts must already be cleared.
  void migrate(Comm& comm, RankState& state) const;

  /// Multi-pass redistribution for atoms arbitrarily far from their new
  /// owner (after a rebalance moved the cut planes): repeat one-hop
  /// sweeps until a global reduction reports every atom settled.
  /// Returns the number of atoms this rank sent away in total.
  std::uint64_t settle(Comm& comm, RankState& state) const;

 private:
  /// One 3-axis, both-directions, one-hop exchange sweep; returns the
  /// number of atoms sent away.
  std::uint64_t sweep(Comm& comm, RankState& state) const;

  const Decomposition* decomp_;
};

}  // namespace scmd
