#pragma once

/// \file supervisor.hpp
/// Rank-failure recovery loop around the distributed MD driver.
///
/// One rank dying mid-run (crash, kill, fault injection) surfaces on the
/// survivors as transport errors: the TCP backend marks the peer dead,
/// wakes every blocked recv, and run_parallel_md_rank unwinds with
/// scmd::Error.  The supervisor catches that, tears the transport down,
/// and retries the whole rank run:
///
///   1. destroy the failed transport (closes this rank's sockets);
///   2. back off, then build a fresh one via `make_transport` — for TCP
///      this re-runs the rendezvous bootstrap, so it blocks until every
///      rank (including the respawned one; see tools/launch_tcp.sh
///      --respawn) has come back;
///   3. re-enter run_parallel_md_rank with restore on: rank 0 loads the
///      last complete checkpoint, broadcasts it, every rank re-shards
///      from it, and tuple caches rebuild from scratch (they are derived
///      state and die with the attempt).
///
/// Every rank of the cluster runs this same loop, so recovery is itself
/// collective: survivors and the respawned rank all meet in the new
/// rendezvous.  With no checkpoint yet on disk, the retry restarts from
/// the pristine initial system — the run loses progress but not
/// correctness.

#include <functional>
#include <memory>
#include <string>

#include "parallel/parallel_engine.hpp"

namespace scmd {

struct SupervisorConfig {
  /// Builds this rank's endpoint for one attempt.  Called once per
  /// attempt; for TCP each call re-runs the rendezvous bootstrap.
  std::function<std::unique_ptr<Transport>()> make_transport;

  /// Rank failures survived before giving up and rethrowing.
  int max_recoveries = 2;

  /// Base retry delay; attempt k waits k * backoff_s, giving a killed
  /// peer time to respawn before the survivors re-enter rendezvous.
  double backoff_s = 0.2;
};

/// Run `run_parallel_md_rank` under the recovery loop above.  `config`
/// is taken by value: the supervisor toggles durability.restore and the
/// attempt counter between tries.  Returns the successful attempt's
/// result with `recoveries` filled in; throws the last error once
/// max_recoveries is exhausted.
ParallelRunResult run_parallel_md_supervised(ParticleSystem& sys,
                                             const ForceField& field,
                                             const std::string& strategy_name,
                                             const ProcessGrid& pgrid,
                                             ParallelRunConfig config,
                                             const SupervisorConfig& sup);

}  // namespace scmd
