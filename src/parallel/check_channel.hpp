#pragma once

/// \file check_channel.hpp
/// check::Channel adapter over the threads-as-ranks Comm.
///
/// Checker traffic runs on its own registered channel (tags::kCheck in
/// net/tags.hpp) so it can never interleave with the engine exchange
/// windows.  The adapter is stateless and cheap to construct at a check
/// site.

#include "check/channel.hpp"
#include "net/tags.hpp"
#include "parallel/comm.hpp"

namespace scmd {

/// One rank's checker view of the cluster.
class CommCheckChannel final : public check::Channel {
 public:
  explicit CommCheckChannel(Comm& comm) : comm_(&comm) {}

  int rank() const override { return comm_->rank(); }
  int num_ranks() const override { return comm_->num_ranks(); }

  void send(int dst, check::CheckBytes payload) override {
    comm_->send(dst, tags::kCheck, std::move(payload));
  }
  check::CheckBytes recv(int src) override {
    return comm_->recv(src, tags::kCheck);
  }

  double allreduce_sum(double value) override {
    return comm_->allreduce_sum(value);
  }
  double allreduce_max(double value) override {
    return comm_->allreduce_max(value);
  }

 private:
  Comm* comm_;
};

}  // namespace scmd
