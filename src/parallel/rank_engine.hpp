#pragma once

/// \file rank_engine.hpp
/// Per-rank MD driver: the distributed counterpart of SerialEngine.
///
/// Step structure (velocity Verlet around distributed force computation):
///   1. half-kick + drift on owned atoms
///   2. migrate atoms that left the rank region
///   3. import ghost slabs (octant 3-stage or full-shell 6-stage,
///      depending on the strategy's halo needs)
///   4. bin owned+ghost atoms into per-n cell domains, run the force
///      strategy, fold per-domain forces into the combined rank array
///   5. write ghost-force contributions back to their owners
///   6. half-kick
///
/// The same RankEngine::compute_forces() is reused by the cluster
/// simulator (src/perf) with an oracle halo fill instead of messages.

#include <array>
#include <memory>

#include "engines/strategy.hpp"
#include "parallel/exchange.hpp"

namespace scmd {

/// Rank engine configuration.
struct RankEngineConfig {
  double dt = 1.0;
  bool measure_force_set = false;  ///< forwarded to strategy construction
};

/// One rank's engine state and step logic.
class RankEngine {
 public:
  /// `decomp`, `field`, and `strategy` must outlive the engine and are
  /// shared across ranks (all are immutable during a run).
  RankEngine(Comm& comm, const Decomposition& decomp, const ForceField& field,
             const ForceStrategy& strategy, const RankEngineConfig& config);

  /// Take ownership of this rank's atoms (gids must be globally unique,
  /// positions inside the rank region).
  void set_atoms(RankState state);

  RankState& state() { return state_; }
  const RankState& state() const { return state_; }

  /// Forces on owned atoms (valid after compute_forces()).
  std::span<const Vec3> owned_forces() const {
    return {force_.data(), static_cast<std::size_t>(state_.num_owned())};
  }

  /// Import ghosts, compute forces, write back.  Leaves ghosts populated
  /// (they are cleared at the start of the next call / migration).
  void compute_forces();

  /// One full velocity-Verlet step (forces must be current).
  void step();

  /// This rank's potential-energy contribution (sum over ranks is the
  /// global potential energy).
  double potential_energy() const { return potential_energy_; }

  const EngineCounters& counters() const { return counters_; }
  void clear_counters() { counters_.clear(); }

 private:
  void build_domains();
  void fold_forces(const ForceAccum& accum);

  Comm& comm_;
  const Decomposition& decomp_;
  const ForceField& field_;
  const ForceStrategy& strategy_;
  RankEngineConfig config_;

  std::unique_ptr<HaloExchange> halo_exchange_;
  Migrator migrator_;

  RankState state_;
  std::vector<Vec3> force_;  ///< combined owned+ghost forces

  std::array<CellGrid, kMaxTupleLen + 1> grids_{};
  std::array<bool, kMaxTupleLen + 1> grid_active_{};
  std::array<CellDomain, kMaxTupleLen + 1> domains_{};
  std::array<std::vector<Vec3>, kMaxTupleLen + 1> domain_forces_{};

  double potential_energy_ = 0.0;
  EngineCounters counters_;
};

}  // namespace scmd
