#pragma once

/// \file rank_engine.hpp
/// Per-rank MD driver: the distributed counterpart of SerialEngine.
///
/// Step structure (velocity Verlet around distributed force computation):
///   1. half-kick + drift on owned atoms
///   2. migrate atoms that left the rank region
///   3. (optional) load balancer hook: may re-cut the decomposition and
///      migrate whole regions of atoms before forces are rebuilt
///   4. import ghost slabs (octant 3-stage or full-shell 6-stage,
///      depending on the strategy's halo needs)
///   5. bin owned+ghost atoms into per-n cell domains, run the force
///      strategy, fold per-domain forces into the combined rank array
///   6. write ghost-force contributions back to their owners
///   7. half-kick
///
/// The same RankEngine::compute_forces() is reused by the cluster
/// simulator (src/perf) with an oracle halo fill instead of messages.

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "engines/strategy.hpp"
#include "parallel/exchange.hpp"
#include "tuples/tuple_list.hpp"

namespace scmd {

class RankEngine;
class TupleStrategy;

/// Per-step load-balance outcome, reported by a RankBalancer.
struct BalanceStepInfo {
  double ratio = 0.0;            ///< measured max/mean search-work ratio
  bool rebalanced = false;       ///< did this step re-cut the domain?
  double predicted_ratio = 0.0;  ///< solver's ratio for the new cuts
  std::uint64_t migrated_atoms = 0;  ///< atoms this rank sent while settling
};

/// Load-balancer hook: called between migration and force computation,
/// when forces are stale and about to be fully recomputed — so a
/// rebalance only has to move atom positions/velocities, never forces.
/// Implementations live in src/balance (dependency inversion keeps the
/// parallel layer free of balancer internals).
class RankBalancer {
 public:
  virtual ~RankBalancer() = default;

  /// Collective call (every rank, every step, same order).
  virtual void on_step(Comm& comm, RankEngine& engine) = 0;

  /// Called instead of on_step on tuple-cache reuse steps, where the
  /// frozen tuple lists pin the decomposition and no rebalance may run.
  /// Implementations must clear any per-step outcome so last_step() does
  /// not replay a stale rebalance; step/interval counters should not
  /// advance (intervals count rebuild steps).
  virtual void on_cached_step() {}

  /// Outcome of the most recent on_step.
  virtual const BalanceStepInfo& last_step() const = 0;
};

/// Rank engine configuration.
struct RankEngineConfig {
  double dt = 1.0;
  bool measure_force_set = false;  ///< forwarded to strategy construction
  bool collect_cell_costs = false;  ///< accumulate per-cell search work
  /// Persistent tuple lists (docs/TUPLECACHE.md): enumerate at
  /// rcut + skin, replay until the *global* max displacement exceeds
  /// skin/2 (collective decision).  Pattern strategies (SC/FS/OC/RC)
  /// only; reuse steps skip migration and the balancer.
  TupleCacheConfig tuple_cache;
};

/// One rank's engine state and step logic.
class RankEngine {
 public:
  /// `field` and `strategy` must outlive the engine and are shared across
  /// ranks (both are immutable during a run).  The decomposition is
  /// copied: a rebalance replaces it per rank via apply_decomposition().
  RankEngine(Comm& comm, const Decomposition& decomp, const ForceField& field,
             const ForceStrategy& strategy, const RankEngineConfig& config);

  /// Take ownership of this rank's atoms (gids must be globally unique,
  /// positions inside the rank region).
  void set_atoms(RankState state);

  RankState& state() { return state_; }
  const RankState& state() const { return state_; }

  /// Forces on owned atoms (valid after compute_forces()).
  std::span<const Vec3> owned_forces() const {
    return {force_.data(), static_cast<std::size_t>(state_.num_owned())};
  }

  /// Import ghosts, compute forces, write back.  Leaves ghosts populated
  /// (they are cleared at the start of the next call / migration).
  void compute_forces();

  /// One full velocity-Verlet step (forces must be current).
  void step();

  /// This rank's potential-energy contribution (sum over ranks is the
  /// global potential energy).
  double potential_energy() const { return potential_energy_; }

  const EngineCounters& counters() const { return counters_; }
  void clear_counters() { counters_.clear(); }

  /// --- Load-balancing interface --------------------------------------

  /// Install a balancer (not owned; may be null).  Called collectively in
  /// step() after migration, before force computation.
  void set_balancer(RankBalancer* balancer) { balancer_ = balancer; }

  const Decomposition& decomp() const { return decomp_; }
  const ForceStrategy& strategy() const { return strategy_; }

  /// Replace the decomposition (collective; same plan on every rank).
  /// Cell grids must be unchanged, i.e. the new plan keeps the alignment
  /// process grid; the halo exchange is rebuilt for the new cuts.  Call
  /// settle_atoms() afterwards to route atoms to their new owners.
  void apply_decomposition(const Decomposition& decomp);

  /// Multi-pass migration to the (possibly re-cut) region owners.
  /// Returns the number of atoms this rank sent away.
  std::uint64_t settle_atoms();

  bool grid_active(int n) const {
    return grid_active_[static_cast<std::size_t>(n)];
  }
  const CellGrid& grid(int n) const {
    return grids_[static_cast<std::size_t>(n)];
  }
  /// Valid after compute_forces() (i.e. after binning).
  const CellDomain& domain(int n) const {
    return domains_[static_cast<std::size_t>(n)];
  }

  /// Accumulated per-owned-cell search work for grid n ([z][y][x] over
  /// the rank's brick), when collect_cell_costs is on.  The balancer
  /// drains and resets these between rebalances.
  const std::vector<std::uint64_t>& cell_costs(int n) const {
    return cell_costs_[static_cast<std::size_t>(n)];
  }
  void reset_cell_costs();

 private:
  /// Bin this rank's atoms into per-n cell domains.
  void build_domains();
  void fold_forces(const ForceAccum& accum);
  void rebuild_halo_exchange();
  /// Invariant-checker hook: ghost/home consistency + atom conservation
  /// after an import or refresh (no-op unless checking is enabled).
  void verify_ghosts();
  /// Full pipeline: import ghosts, bin, enumerate (recording tuples when
  /// caching), fold, write back.
  void compute_forces_full();
  /// Cache-reuse pipeline: refresh ghost positions over the recorded
  /// import stages, refresh slot tables, replay lists, fold, write back.
  void compute_forces_replay();

  Comm& comm_;
  Decomposition decomp_;
  const ForceField& field_;
  const ForceStrategy& strategy_;
  RankEngineConfig config_;

  std::unique_ptr<HaloExchange> halo_exchange_;
  Migrator migrator_;
  RankBalancer* balancer_ = nullptr;

  RankState state_;
  std::vector<Vec3> force_;  ///< combined owned+ghost forces

  std::array<CellGrid, kMaxTupleLen + 1> grids_{};
  std::array<bool, kMaxTupleLen + 1> grid_active_{};
  std::array<CellDomain, kMaxTupleLen + 1> domains_{};
  std::array<std::vector<Vec3>, kMaxTupleLen + 1> domain_forces_{};
  std::array<std::vector<std::uint64_t>, kMaxTupleLen + 1> cell_costs_{};
  std::vector<std::pair<CellGrid, HaloSpec>> grid_halos_;

  double potential_energy_ = 0.0;
  EngineCounters counters_;

  /// Non-null iff tuple caching is on (downcast of strategy_).
  const TupleStrategy* tuple_strategy_ = nullptr;
  TupleListCache cache_;
  /// Import stages of the last rebuild, kept for ghost refresh and force
  /// write-back on reuse steps.
  std::vector<ImportStageRecord> cached_stages_;
  /// Persistent per-n replay force storage (sized to the cached slot
  /// tables; reused across steps).
  std::array<std::vector<Vec3>, kMaxTupleLen + 1> replay_f_{};

  /// --- Invariant-checker state (src/check; inert unless enabled) ------
  /// Pattern strategy for the tuple-ownership census (null for Hybrid).
  const TupleStrategy* census_strategy_ = nullptr;
  /// Conserved global atom count, captured collectively at first check.
  long long check_atom_total_ = -1;
  std::uint64_t check_builds_ = 0;   ///< rebuild steps seen (census cadence)
  std::uint64_t check_replays_ = 0;  ///< reuse steps seen (parity cadence)
};

}  // namespace scmd
