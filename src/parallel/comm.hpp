#pragma once

/// \file comm.hpp
/// In-process message-passing runtime.
///
/// Substitute for MPI on the paper's clusters (see DESIGN.md §4): ranks
/// are threads in one process, point-to-point messages are byte payloads
/// moved through per-destination mailboxes, and collectives are built on a
/// generation-counted monitor.  Every communication pattern of the paper —
/// octant 3-stage forwarded import, full-shell 6-stage import, reverse
/// force write-back, staged migration — runs for real on this layer, so
/// parallel correctness is testable without cluster hardware.
///
/// Semantics (deliberately MPI-like):
///  - send() is asynchronous and never blocks (unbounded mailboxes);
///  - recv() blocks until a message with the given (src, tag) arrives;
///  - message order is preserved per (src, dst, tag);
///  - collectives must be entered by every rank.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace scmd {

/// Payload type for messages.
using Bytes = std::vector<std::byte>;

/// Pack a trivially copyable array into a byte payload.
template <class T>
Bytes pack(const std::vector<T>& items) {
  static_assert(std::is_trivially_copyable_v<T>);
  Bytes out(items.size() * sizeof(T));
  if (!items.empty()) std::memcpy(out.data(), items.data(), out.size());
  return out;
}

/// Unpack a byte payload produced by pack<T>.
template <class T>
std::vector<T> unpack(const Bytes& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// Shared communication state for a set of ranks.
class Cluster {
 public:
  explicit Cluster(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Deposit a message; never blocks.
  void send(int src, int dst, int tag, Bytes payload);

  /// Blocking receive of the next message from (src, tag).
  Bytes recv(int dst, int src, int tag);

  /// Generation barrier; all ranks must call.
  void barrier();

  /// Sum reduction over all ranks; all ranks must call, all get the sum.
  double allreduce_sum(double value);

  /// Max reduction over all ranks.
  double allreduce_max(double value);

  /// Cumulative message statistics (for tests/diagnostics).
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

 private:
  struct Mailbox {
    std::mutex m;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Bytes>> queues;  // (src,tag)
  };

  double reduce(double value, bool is_max);

  int num_ranks_;
  std::vector<Mailbox> boxes_;

  std::mutex coll_m_;
  std::condition_variable coll_cv_;
  std::uint64_t coll_gen_ = 0;
  int coll_count_ = 0;
  double coll_acc_ = 0.0;
  double coll_result_ = 0.0;
  bool coll_started_ = false;

  mutable std::mutex stats_m_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One rank's handle onto a Cluster.
class Comm {
 public:
  Comm(Cluster& cluster, int rank) : cluster_(&cluster), rank_(rank) {}

  int rank() const { return rank_; }
  int num_ranks() const { return cluster_->num_ranks(); }

  void send(int dst, int tag, Bytes payload) {
    cluster_->send(rank_, dst, tag, std::move(payload));
  }
  Bytes recv(int src, int tag) { return cluster_->recv(rank_, src, tag); }
  void barrier() { cluster_->barrier(); }
  double allreduce_sum(double v) { return cluster_->allreduce_sum(v); }
  double allreduce_max(double v) { return cluster_->allreduce_max(v); }

 private:
  Cluster* cluster_;
  int rank_;
};

/// Run `fn` once per rank on its own thread; rethrows the first rank
/// exception after all threads join.
void run_cluster(int num_ranks, const std::function<void(Comm&)>& fn);

}  // namespace scmd
