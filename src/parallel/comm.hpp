#pragma once

/// \file comm.hpp
/// Per-rank communication handle over a pluggable Transport.
///
/// The engine layers (HaloExchange, Migrator, RankEngine, the balancer
/// protocol, check::Channel) all talk through Comm, which forwards to an
/// abstract Transport endpoint (src/net): the in-process thread cluster
/// for tests and single-node runs, or the multi-process TCP backend for
/// real cluster runs — same MPI-like semantics either way
/// (docs/TRANSPORT.md):
///  - send() is asynchronous and never blocks;
///  - recv() blocks until a message with the given (src, tag) arrives;
///  - message order is preserved per (src, dst, tag);
///  - collectives must be entered by every rank.

#include <functional>

#include "net/inproc.hpp"
#include "net/transport.hpp"

namespace scmd {

/// One rank's handle onto the cluster, bound to a Transport endpoint.
class Comm {
 public:
  explicit Comm(Transport& transport) : transport_(&transport) {}
  /// Convenience: bind to rank's endpoint of an in-process cluster.
  Comm(Cluster& cluster, int rank) : transport_(&cluster.transport(rank)) {}

  int rank() const { return transport_->rank(); }
  int num_ranks() const { return transport_->num_ranks(); }

  void send(int dst, int tag, Bytes payload) {
    transport_->send(dst, tag, std::move(payload));
  }
  Bytes recv(int src, int tag) { return transport_->recv(src, tag); }
  void barrier() { transport_->barrier(); }
  double allreduce_sum(double v) { return transport_->allreduce_sum(v); }
  double allreduce_max(double v) { return transport_->allreduce_max(v); }

  /// The underlying endpoint (statistics, backend-specific knobs).
  Transport& transport() { return *transport_; }
  const Transport& transport() const { return *transport_; }

 private:
  Transport* transport_;
};

/// Run `fn` once per rank on its own thread over an in-process cluster;
/// rethrows the first rank exception after all threads join.
void run_cluster(int num_ranks, const std::function<void(Comm&)>& fn);

}  // namespace scmd
