#include "parallel/supervisor.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace scmd {

ParallelRunResult run_parallel_md_supervised(ParticleSystem& sys,
                                             const ForceField& field,
                                             const std::string& strategy_name,
                                             const ProcessGrid& pgrid,
                                             ParallelRunConfig config,
                                             const SupervisorConfig& sup) {
  SCMD_REQUIRE(static_cast<bool>(sup.make_transport),
               "supervisor needs a transport factory");
  SCMD_REQUIRE(sup.max_recoveries >= 0, "max_recoveries must be >= 0");

  // Restore needs somewhere to restore *from*; without checkpoints a
  // retry silently restarting from step 0 would be correct but is almost
  // never what an operator armed a supervisor for.
  if (sup.max_recoveries > 0) {
    SCMD_REQUIRE(!config.durability.checkpoint_dir.empty(),
                 "supervised runs need a checkpoint_dir to recover from");
  }

  // A retry with no snapshot on disk restarts from the initial state, so
  // keep a pristine copy: `sys` is left holding the failed attempt's
  // scatter input otherwise.
  const ParticleSystem pristine = sys;

  for (int attempt = 0;; ++attempt) {
    config.durability.attempt = attempt;
    if (attempt > 0) config.durability.restore = true;
    try {
      // The transport lives exactly as long as the attempt: destroying
      // it on failure closes this rank's sockets so peers' dead-peer
      // detection fires, and the next make_transport() re-runs the full
      // rendezvous bootstrap.
      std::unique_ptr<Transport> transport = sup.make_transport();
      Comm comm(*transport);
      ParallelRunResult result = run_parallel_md_rank(
          sys, field, strategy_name, pgrid, config, comm);
      result.recoveries = attempt;
      return result;
    } catch (const Error& e) {
      // The failed attempt may have left the thread bound to its (now
      // destroyed) stack-local trace session.
      obs::bind_thread(nullptr, 0);
      if (attempt >= sup.max_recoveries) throw;
      std::fprintf(stderr,
                   "supervisor: attempt %d failed (%s); recovering "
                   "(%d/%d)\n",
                   attempt, e.what(), attempt + 1, sup.max_recoveries);
      sys = pristine;
      const double wait_s = sup.backoff_s * static_cast<double>(attempt + 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
    }
  }
}

}  // namespace scmd
