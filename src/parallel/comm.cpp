#include "parallel/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "support/error.hpp"

namespace scmd {

Cluster::Cluster(int num_ranks) : num_ranks_(num_ranks), boxes_(num_ranks) {
  SCMD_REQUIRE(num_ranks >= 1, "cluster needs at least one rank");
}

void Cluster::send(int src, int dst, int tag, Bytes payload) {
  SCMD_REQUIRE(dst >= 0 && dst < num_ranks_, "send to invalid rank");
  {
    std::lock_guard lk(stats_m_);
    ++total_messages_;
    total_bytes_ += payload.size();
  }
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lk(box.m);
    box.queues[{src, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

Bytes Cluster::recv(int dst, int src, int tag) {
  SCMD_REQUIRE(dst >= 0 && dst < num_ranks_, "recv on invalid rank");
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock lk(box.m);
  auto& q = box.queues[{src, tag}];
  box.cv.wait(lk, [&] { return !q.empty(); });
  Bytes out = std::move(q.front());
  q.pop_front();
  return out;
}

double Cluster::reduce(double value, bool is_max) {
  std::unique_lock lk(coll_m_);
  const std::uint64_t my_gen = coll_gen_;
  if (!coll_started_) {
    coll_acc_ = value;
    coll_started_ = true;
  } else {
    coll_acc_ = is_max ? std::max(coll_acc_, value) : coll_acc_ + value;
  }
  if (++coll_count_ == num_ranks_) {
    coll_result_ = coll_acc_;
    coll_count_ = 0;
    coll_started_ = false;
    ++coll_gen_;
    coll_cv_.notify_all();
    return coll_result_;
  }
  coll_cv_.wait(lk, [&] { return coll_gen_ != my_gen; });
  return coll_result_;
}

void Cluster::barrier() { reduce(0.0, false); }

double Cluster::allreduce_sum(double value) { return reduce(value, false); }

double Cluster::allreduce_max(double value) { return reduce(value, true); }

std::uint64_t Cluster::total_messages() const {
  std::lock_guard lk(stats_m_);
  return total_messages_;
}

std::uint64_t Cluster::total_bytes() const {
  std::lock_guard lk(stats_m_);
  return total_bytes_;
}

void run_cluster(int num_ranks, const std::function<void(Comm&)>& fn) {
  Cluster cluster(num_ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks));
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(cluster, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace scmd
