#include "parallel/comm.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace scmd {

void run_cluster(int num_ranks, const std::function<void(Comm&)>& fn) {
  Cluster cluster(num_ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks));
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(cluster, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace scmd
