#include "parallel/parallel_engine.hpp"

#include <cstdint>
#include <exception>
#include <thread>
#include <type_traits>

#include "check/invariant.hpp"
#include "net/transport_metrics.hpp"
#include "parallel/rank_engine.hpp"
#include "support/error.hpp"

namespace scmd {

namespace {

/// Componentwise max over ranks, for load-imbalance analysis.
void accumulate_max_rank(EngineCounters& max_rank, const EngineCounters& c) {
  auto maxu = [](std::uint64_t& a, std::uint64_t b) {
    if (b > a) a = b;
  };
  for (std::size_t n = 0; n < c.tuples.size(); ++n) {
    maxu(max_rank.tuples[n].search_steps, c.tuples[n].search_steps);
    maxu(max_rank.tuples[n].chain_candidates, c.tuples[n].chain_candidates);
    maxu(max_rank.tuples[n].cell_visits, c.tuples[n].cell_visits);
    maxu(max_rank.tuples[n].accepted, c.tuples[n].accepted);
    maxu(max_rank.evals[n], c.evals[n]);
    if (c.force_set[n] > max_rank.force_set[n])
      max_rank.force_set[n] = c.force_set[n];
  }
  maxu(max_rank.list_pairs, c.list_pairs);
  maxu(max_rank.list_scan_steps, c.list_scan_steps);
  maxu(max_rank.cache_rebuilds, c.cache_rebuilds);
  maxu(max_rank.cache_reuse_steps, c.cache_reuse_steps);
  maxu(max_rank.cache_replayed, c.cache_replayed);
  maxu(max_rank.ghost_atoms_imported, c.ghost_atoms_imported);
  maxu(max_rank.messages, c.messages);
  maxu(max_rank.bytes_imported, c.bytes_imported);
  maxu(max_rank.bytes_written_back, c.bytes_written_back);
}

/// Per-step structured records shared by both drivers: cluster totals
/// plus the rank-imbalance summary (Eq.-33 import volume per rank) and,
/// when balancing, the per-step balance outcome.
void emit_step_metrics(obs::MetricsRegistry& reg, int metrics_every,
                       int max_n, bool balancing,
                       const std::vector<std::vector<EngineCounters>>& work,
                       const std::vector<std::vector<double>>& energy,
                       const std::vector<BalanceStepInfo>& balance) {
  const int every = metrics_every > 0 ? metrics_every : 1;
  const std::size_t num_records = work.size();
  for (std::size_t s = 0; s < num_records; ++s) {
    obs::StepSample sample;
    sample.max_n = max_n;
    for (std::size_t r = 0; r < work[s].size(); ++r) {
      sample.work += work[s][r];
      sample.potential_energy += energy[s][r];
    }
    obs::record_step(reg, sample);
    obs::record_rank_imbalance(reg, work[s]);
    if (balancing) {
      const BalanceStepInfo& b = balance[s];
      obs::record_balance(reg, b.ratio, b.rebalanced, b.predicted_ratio,
                          b.migrated_atoms);
    }
    if (s % static_cast<std::size_t>(every) == 0 || s + 1 == num_records)
      reg.emit(static_cast<long long>(s));
  }
}

}  // namespace

std::vector<RankState> scatter_atoms(const ParticleSystem& sys,
                                     const Decomposition& decomp) {
  const ProcessGrid& pg = decomp.pgrid();
  std::vector<RankState> states(static_cast<std::size_t>(pg.num_ranks()));
  const auto pos = sys.positions();
  const auto vel = sys.velocities();
  const auto type = sys.types();
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const Vec3 p = sys.box().wrap(pos[i]);
    // owner_of is the same cut-position arithmetic the migrator's region
    // test uses, so the initial placement is consistent with migration
    // for uniform and non-uniform decompositions alike.
    RankState& st = states[static_cast<std::size_t>(decomp.owner_of(p))];
    st.pos.push_back(p);
    st.vel.push_back(vel[i]);
    st.gid.push_back(i);
    st.type.push_back(type[i]);
  }
  return states;
}

ParallelRunResult run_parallel_md(ParticleSystem& sys,
                                  const ForceField& field,
                                  const std::string& strategy_name,
                                  const ProcessGrid& pgrid,
                                  const ParallelRunConfig& config) {
  const Decomposition decomp(sys.box(), pgrid);
  const auto strategy =
      make_strategy(strategy_name, field, config.measure_force_set);
  std::vector<RankState> initial = scatter_atoms(sys, decomp);

  const int P = pgrid.num_ranks();
  std::vector<EngineCounters> rank_counters(static_cast<std::size_t>(P));
  std::vector<double> rank_energy(static_cast<std::size_t>(P), 0.0);

  // Per-step per-rank work deltas for the observability summary.  Slot
  // s=0 is the initial force pass; each rank writes only its own column,
  // so no synchronization is needed beyond the final join.
  const bool collect_steps = config.metrics != nullptr;
  const std::size_t num_records =
      static_cast<std::size_t>(config.num_steps) + 1;
  std::vector<std::vector<EngineCounters>> step_work;
  std::vector<std::vector<double>> step_energy;
  if (collect_steps) {
    step_work.assign(num_records,
                     std::vector<EngineCounters>(static_cast<std::size_t>(P)));
    step_energy.assign(num_records,
                       std::vector<double>(static_cast<std::size_t>(P), 0.0));
  }

  // Per-step balance outcomes, written by rank 0 only (the balancer's
  // view is collectively agreed, so one rank's copy is the cluster's).
  const bool balancing = static_cast<bool>(config.make_balancer);
  std::vector<BalanceStepInfo> step_balance;
  if (collect_steps && balancing) step_balance.assign(num_records, {});
  int rebalances = 0;
  double last_ratio = 0.0;

  // Gather buffers written by each rank for its own atoms (disjoint gids).
  const std::size_t N = static_cast<std::size_t>(sys.num_atoms());
  std::vector<Vec3> out_pos(N), out_vel(N), out_force(N);

  Cluster cluster(P);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  threads.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      try {
        // Rank-tagged spans: every SCMD_TRACE below this binding (halo
        // import, search, write-back, ...) lands on lane tid = r.
        obs::bind_thread(config.trace, r);
        // Invariant-violation reports name the failing rank.
        check::bind_rank(r);
        Comm comm(cluster, r);
        RankEngineConfig rc;
        rc.dt = config.dt;
        rc.measure_force_set = config.measure_force_set;
        rc.collect_cell_costs = balancing;
        rc.tuple_cache = config.tuple_cache;
        RankEngine engine(comm, decomp, field, *strategy, rc);
        std::unique_ptr<RankBalancer> balancer;
        if (balancing) {
          balancer = config.make_balancer(r);
          engine.set_balancer(balancer.get());
        }
        engine.set_atoms(std::move(initial[static_cast<std::size_t>(r)]));
        EngineCounters prev;
        engine.compute_forces();
        if (collect_steps) {
          step_work[0][static_cast<std::size_t>(r)] =
              engine.counters().delta_since(prev);
          step_energy[0][static_cast<std::size_t>(r)] =
              engine.potential_energy();
          prev = engine.counters();
        }
        for (int s = 0; s < config.num_steps; ++s) {
          engine.step();
          if (balancer && r == 0) {
            const BalanceStepInfo& info = balancer->last_step();
            if (info.rebalanced) ++rebalances;
            if (info.ratio > 0.0) last_ratio = info.ratio;
            if (collect_steps)
              step_balance[static_cast<std::size_t>(s) + 1] = info;
          }
          if (collect_steps) {
            const std::size_t si = static_cast<std::size_t>(s) + 1;
            step_work[si][static_cast<std::size_t>(r)] =
                engine.counters().delta_since(prev);
            step_energy[si][static_cast<std::size_t>(r)] =
                engine.potential_energy();
            prev = engine.counters();
          }
        }

        rank_energy[static_cast<std::size_t>(r)] = engine.potential_energy();
        rank_counters[static_cast<std::size_t>(r)] = engine.counters();
        const RankState& st = engine.state();
        const auto f = engine.owned_forces();
        for (int i = 0; i < st.num_owned(); ++i) {
          const std::size_t g =
              static_cast<std::size_t>(st.gid[static_cast<std::size_t>(i)]);
          out_pos[g] = st.pos[static_cast<std::size_t>(i)];
          out_vel[g] = st.vel[static_cast<std::size_t>(i)];
          out_force[g] = f[static_cast<std::size_t>(i)];
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Copy the gathered state back into the system.
  for (std::size_t i = 0; i < N; ++i) {
    sys.positions()[i] = out_pos[i];
    sys.velocities()[i] = out_vel[i];
    sys.forces()[i] = out_force[i];
  }

  ParallelRunResult result;
  for (int r = 0; r < P; ++r) {
    const EngineCounters& c = rank_counters[static_cast<std::size_t>(r)];
    result.potential_energy += rank_energy[static_cast<std::size_t>(r)];
    result.total += c;
    accumulate_max_rank(result.max_rank, c);
  }
  result.runtime_messages = cluster.total_messages();
  result.runtime_bytes = cluster.total_bytes();
  result.rebalances = rebalances;
  result.last_balance_ratio = last_ratio;

  // Per-step structured records: cluster totals plus the rank-imbalance
  // summary (max/avg work and Eq.-33 import volume per rank).  Transport
  // statistics are run-cumulative, recorded once so every record
  // carries them.
  if (collect_steps) {
    TransportStats agg;
    for (int r = 0; r < P; ++r) agg += cluster.transport(r).stats();
    obs::record_transport(*config.metrics, agg);
    emit_step_metrics(*config.metrics, config.metrics_every, field.max_n(),
                      balancing, step_work, step_energy, step_balance);
  }
  return result;
}

ParallelRunResult run_parallel_md_rank(ParticleSystem& sys,
                                       const ForceField& field,
                                       const std::string& strategy_name,
                                       const ProcessGrid& pgrid,
                                       const ParallelRunConfig& config,
                                       Comm& comm) {
  SCMD_REQUIRE(pgrid.num_ranks() == comm.num_ranks(),
               "process grid and transport disagree on the rank count");
  const int P = comm.num_ranks();
  const int rank = comm.rank();
  const bool root = rank == 0;

  const Decomposition decomp(sys.box(), pgrid);
  const auto strategy =
      make_strategy(strategy_name, field, config.measure_force_set);
  // Every rank scatters the identical global system and keeps its share.
  std::vector<RankState> initial = scatter_atoms(sys, decomp);

  obs::bind_thread(config.trace, rank);
  check::bind_rank(rank);
  const bool balancing = static_cast<bool>(config.make_balancer);
  RankEngineConfig rc;
  rc.dt = config.dt;
  rc.measure_force_set = config.measure_force_set;
  rc.collect_cell_costs = balancing;
  rc.tuple_cache = config.tuple_cache;
  RankEngine engine(comm, decomp, field, *strategy, rc);
  std::unique_ptr<RankBalancer> balancer;
  if (balancing) {
    balancer = config.make_balancer(rank);
    engine.set_balancer(balancer.get());
  }
  engine.set_atoms(std::move(initial[static_cast<std::size_t>(rank)]));

  // Whether per-step work is recorded is a collective decision: rank 0
  // gathers every rank's deltas at the end, so all ranks must agree.
  const bool collect_steps =
      comm.allreduce_max(config.metrics != nullptr && root ? 1.0 : 0.0) > 0.0;
  const std::size_t num_records =
      static_cast<std::size_t>(config.num_steps) + 1;
  std::vector<EngineCounters> my_step_work;
  std::vector<double> my_step_energy;
  std::vector<BalanceStepInfo> step_balance;
  if (collect_steps) {
    my_step_work.reserve(num_records);
    my_step_energy.reserve(num_records);
    if (balancing) step_balance.assign(num_records, {});
  }
  int rebalances = 0;
  double last_ratio = 0.0;

  EngineCounters prev;
  engine.compute_forces();
  if (collect_steps) {
    my_step_work.push_back(engine.counters().delta_since(prev));
    my_step_energy.push_back(engine.potential_energy());
    prev = engine.counters();
  }
  for (int s = 0; s < config.num_steps; ++s) {
    engine.step();
    if (balancer && root) {
      // The balancer's view is collectively agreed, so rank 0's copy is
      // the cluster's.
      const BalanceStepInfo& info = balancer->last_step();
      if (info.rebalanced) ++rebalances;
      if (info.ratio > 0.0) last_ratio = info.ratio;
      if (collect_steps) step_balance[static_cast<std::size_t>(s) + 1] = info;
    }
    if (collect_steps) {
      my_step_work.push_back(engine.counters().delta_since(prev));
      my_step_energy.push_back(engine.potential_energy());
      prev = engine.counters();
    }
  }

  ParallelRunResult result;
  result.potential_energy = comm.allreduce_sum(engine.potential_energy());
  result.rebalances = rebalances;
  result.last_balance_ratio = last_ratio;

  // Gather counters, per-step records, transport stats, and the final
  // atom state to rank 0.  Tags live above the engine's exchange tags
  // (import 100, write-back 200, migrate 300, refresh 400, check 900).
  constexpr int kTagCounters = 920;
  constexpr int kTagStepWork = 921;
  constexpr int kTagStepEnergy = 922;
  constexpr int kTagState = 923;
  constexpr int kTagStats = 924;
  struct AtomWire {
    std::int64_t gid;
    Vec3 pos, vel, force;
  };
  static_assert(std::is_trivially_copyable_v<AtomWire>);

  const RankState& st = engine.state();
  const auto forces = engine.owned_forces();
  std::vector<AtomWire> my_atoms(static_cast<std::size_t>(st.num_owned()));
  for (int i = 0; i < st.num_owned(); ++i) {
    auto& a = my_atoms[static_cast<std::size_t>(i)];
    a.gid = st.gid[static_cast<std::size_t>(i)];
    a.pos = st.pos[static_cast<std::size_t>(i)];
    a.vel = st.vel[static_cast<std::size_t>(i)];
    a.force = forces[static_cast<std::size_t>(i)];
  }

  if (root) {
    result.total = engine.counters();
    accumulate_max_rank(result.max_rank, engine.counters());
    TransportStats agg = comm.transport().stats();
    std::vector<std::vector<EngineCounters>> step_work;
    std::vector<std::vector<double>> step_energy;
    if (collect_steps) {
      step_work.assign(num_records,
                       std::vector<EngineCounters>(static_cast<std::size_t>(P)));
      step_energy.assign(num_records,
                         std::vector<double>(static_cast<std::size_t>(P), 0.0));
      for (std::size_t s = 0; s < num_records; ++s) {
        step_work[s][0] = my_step_work[s];
        step_energy[s][0] = my_step_energy[s];
      }
    }
    auto place = [&](const std::vector<AtomWire>& atoms) {
      for (const AtomWire& a : atoms) {
        const int g = static_cast<int>(a.gid);
        sys.positions()[g] = a.pos;
        sys.velocities()[g] = a.vel;
        sys.forces()[g] = a.force;
      }
    };
    place(my_atoms);
    for (int r = 1; r < P; ++r) {
      const auto counters =
          unpack<EngineCounters>(comm.recv(r, kTagCounters));
      SCMD_REQUIRE(counters.size() == 1, "malformed counters gather");
      result.total += counters[0];
      accumulate_max_rank(result.max_rank, counters[0]);
      if (collect_steps) {
        const auto work = unpack<EngineCounters>(comm.recv(r, kTagStepWork));
        const auto energy = unpack<double>(comm.recv(r, kTagStepEnergy));
        SCMD_REQUIRE(work.size() == num_records &&
                         energy.size() == num_records,
                     "malformed per-step gather");
        for (std::size_t s = 0; s < num_records; ++s) {
          step_work[s][static_cast<std::size_t>(r)] = work[s];
          step_energy[s][static_cast<std::size_t>(r)] = energy[s];
        }
      }
      place(unpack<AtomWire>(comm.recv(r, kTagState)));
      const auto stats = unpack<TransportStats>(comm.recv(r, kTagStats));
      SCMD_REQUIRE(stats.size() == 1, "malformed stats gather");
      agg += stats[0];
    }
    result.runtime_messages = agg.messages_sent;
    result.runtime_bytes = agg.bytes_sent;
    if (collect_steps && config.metrics != nullptr) {
      obs::record_transport(*config.metrics, agg);
      emit_step_metrics(*config.metrics, config.metrics_every, field.max_n(),
                        balancing, step_work, step_energy, step_balance);
    }
  } else {
    result.total = engine.counters();
    comm.send(0, kTagCounters,
              pack(std::vector<EngineCounters>{engine.counters()}));
    if (collect_steps) {
      comm.send(0, kTagStepWork, pack(my_step_work));
      comm.send(0, kTagStepEnergy, pack(my_step_energy));
    }
    comm.send(0, kTagState, pack(my_atoms));
    comm.send(0, kTagStats,
              pack(std::vector<TransportStats>{comm.transport().stats()}));
  }

  // Drain-and-sync before the caller tears the transport down, so no
  // backend is destroyed with traffic still in flight.
  comm.barrier();
  return result;
}

}  // namespace scmd
