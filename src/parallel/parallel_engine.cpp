#include "parallel/parallel_engine.hpp"

#include <cstdint>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>

#include "check/invariant.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/fault.hpp"
#include "ckpt/wal.hpp"
#include "net/clock_sync.hpp"
#include "net/tags.hpp"
#include "net/status_server.hpp"
#include "obs/collector.hpp"
#include "obs/telemetry.hpp"
#include "parallel/rank_engine.hpp"
#include "support/error.hpp"

namespace scmd {

namespace {

/// One atom on the wire for gathers (final state, snapshots).
struct AtomWire {
  std::int64_t gid;
  Vec3 pos, vel, force;
};
static_assert(std::is_trivially_copyable_v<AtomWire>);

/// Every wire gid must index the destination atom arrays — a malformed
/// gather/snapshot frame must fail loudly, not scribble out of bounds.
bool wire_gids_valid(const std::vector<AtomWire>& atoms, std::size_t n) {
  for (const AtomWire& a : atoms) {
    if (a.gid < 0 || static_cast<std::uint64_t>(a.gid) >= n) return false;
  }
  return true;
}

/// Componentwise max over ranks, for load-imbalance analysis.
void accumulate_max_rank(EngineCounters& max_rank, const EngineCounters& c) {
  auto maxu = [](std::uint64_t& a, std::uint64_t b) {
    if (b > a) a = b;
  };
  for (std::size_t n = 0; n < c.tuples.size(); ++n) {
    maxu(max_rank.tuples[n].search_steps, c.tuples[n].search_steps);
    maxu(max_rank.tuples[n].chain_candidates, c.tuples[n].chain_candidates);
    maxu(max_rank.tuples[n].cell_visits, c.tuples[n].cell_visits);
    maxu(max_rank.tuples[n].accepted, c.tuples[n].accepted);
    maxu(max_rank.evals[n], c.evals[n]);
    if (c.force_set[n] > max_rank.force_set[n])
      max_rank.force_set[n] = c.force_set[n];
  }
  maxu(max_rank.list_pairs, c.list_pairs);
  maxu(max_rank.list_scan_steps, c.list_scan_steps);
  maxu(max_rank.cache_rebuilds, c.cache_rebuilds);
  maxu(max_rank.cache_reuse_steps, c.cache_reuse_steps);
  maxu(max_rank.cache_replayed, c.cache_replayed);
  maxu(max_rank.ghost_atoms_imported, c.ghost_atoms_imported);
  maxu(max_rank.messages, c.messages);
  maxu(max_rank.bytes_imported, c.bytes_imported);
  maxu(max_rank.bytes_written_back, c.bytes_written_back);
}

obs::TelemetryCollector::Config collector_config(
    int num_ranks, int max_n, bool balancing,
    const ParallelRunConfig& config, std::size_t num_records,
    obs::TraceSession* merged_trace) {
  obs::TelemetryCollector::Config cc;
  cc.num_ranks = num_ranks;
  cc.max_n = max_n;
  cc.balancing = balancing;
  cc.metrics_every = config.metrics_every;
  cc.num_records = static_cast<long long>(num_records);
  cc.metrics = config.metrics;
  cc.merged_trace = merged_trace;
  return cc;
}

}  // namespace

std::vector<RankState> scatter_atoms(const ParticleSystem& sys,
                                     const Decomposition& decomp) {
  const ProcessGrid& pg = decomp.pgrid();
  std::vector<RankState> states(static_cast<std::size_t>(pg.num_ranks()));
  const auto pos = sys.positions();
  const auto vel = sys.velocities();
  const auto type = sys.types();
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const Vec3 p = sys.box().wrap(pos[i]);
    // owner_of is the same cut-position arithmetic the migrator's region
    // test uses, so the initial placement is consistent with migration
    // for uniform and non-uniform decompositions alike.
    RankState& st = states[static_cast<std::size_t>(decomp.owner_of(p))];
    st.pos.push_back(p);
    st.vel.push_back(vel[i]);
    st.gid.push_back(i);
    st.type.push_back(type[i]);
  }
  return states;
}

ParallelRunResult run_parallel_md(ParticleSystem& sys,
                                  const ForceField& field,
                                  const std::string& strategy_name,
                                  const ProcessGrid& pgrid,
                                  const ParallelRunConfig& config) {
  const Decomposition decomp(sys.box(), pgrid);
  const auto strategy =
      make_strategy(strategy_name, field, config.measure_force_set);
  std::vector<RankState> initial = scatter_atoms(sys, decomp);

  const int P = pgrid.num_ranks();
  std::vector<EngineCounters> rank_counters(static_cast<std::size_t>(P));
  std::vector<double> rank_energy(static_cast<std::size_t>(P), 0.0);

  // Per-step per-rank telemetry records for the collector.  Slot s=0 is
  // the initial force pass; each rank writes only its own column, so no
  // synchronization is needed beyond the final join.
  const bool collect_steps = config.metrics != nullptr;
  const std::size_t num_records =
      static_cast<std::size_t>(config.num_steps) + 1;
  std::vector<std::vector<obs::TelemetryStepRecord>> step_records;
  if (collect_steps) {
    step_records.assign(
        num_records,
        std::vector<obs::TelemetryStepRecord>(static_cast<std::size_t>(P)));
  }

  // The threads of one process share one session, so the trace is merged
  // by construction.  Phase histograms are derived from its spans: with
  // metrics on but no trace requested, an internal session feeds them.
  obs::TraceSession internal_trace;
  obs::TraceSession* trace =
      config.trace != nullptr ? config.trace
                              : (collect_steps ? &internal_trace : nullptr);

  // Per-step balance outcomes, written by rank 0 only (the balancer's
  // view is collectively agreed, so one rank's copy is the cluster's).
  const bool balancing = static_cast<bool>(config.make_balancer);
  std::vector<BalanceStepInfo> step_balance;
  if (collect_steps && balancing) step_balance.assign(num_records, {});
  int rebalances = 0;
  double last_ratio = 0.0;

  // Gather buffers written by each rank for its own atoms (disjoint gids).
  const std::size_t N = static_cast<std::size_t>(sys.num_atoms());
  std::vector<Vec3> out_pos(N), out_vel(N), out_force(N);

  Cluster cluster(P);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  threads.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      try {
        // Rank-tagged spans: every SCMD_TRACE below this binding (halo
        // import, search, write-back, ...) lands on lane tid = r.
        obs::bind_thread(trace, r);
        // Invariant-violation reports name the failing rank.
        check::bind_rank(r);
        Comm comm(cluster, r);
        RankEngineConfig rc;
        rc.dt = config.dt;
        rc.measure_force_set = config.measure_force_set;
        rc.collect_cell_costs = balancing;
        rc.tuple_cache = config.tuple_cache;
        RankEngine engine(comm, decomp, field, *strategy, rc);
        std::unique_ptr<RankBalancer> balancer;
        if (balancing) {
          balancer = config.make_balancer(r);
          engine.set_balancer(balancer.get());
        }
        engine.set_atoms(std::move(initial[static_cast<std::size_t>(r)]));
        EngineCounters prev;
        auto record = [&](std::size_t s) {
          obs::TelemetryStepRecord& rec =
              step_records[s][static_cast<std::size_t>(r)];
          rec.step = static_cast<long long>(s);
          rec.potential_energy = engine.potential_energy();
          rec.work = engine.counters().delta_since(prev);
          rec.transport = comm.transport().stats();
          prev = engine.counters();
        };
        engine.compute_forces();
        if (collect_steps) record(0);
        for (int s = 0; s < config.num_steps; ++s) {
          engine.step();
          if (balancer && r == 0) {
            const BalanceStepInfo& info = balancer->last_step();
            if (info.rebalanced) ++rebalances;
            if (info.ratio > 0.0) last_ratio = info.ratio;
            if (collect_steps)
              step_balance[static_cast<std::size_t>(s) + 1] = info;
          }
          if (collect_steps) record(static_cast<std::size_t>(s) + 1);
        }

        rank_energy[static_cast<std::size_t>(r)] = engine.potential_energy();
        rank_counters[static_cast<std::size_t>(r)] = engine.counters();
        const RankState& st = engine.state();
        const auto f = engine.owned_forces();
        for (int i = 0; i < st.num_owned(); ++i) {
          const std::size_t g =
              static_cast<std::size_t>(st.gid[static_cast<std::size_t>(i)]);
          out_pos[g] = st.pos[static_cast<std::size_t>(i)];
          out_vel[g] = st.vel[static_cast<std::size_t>(i)];
          out_force[g] = f[static_cast<std::size_t>(i)];
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Copy the gathered state back into the system.
  for (std::size_t i = 0; i < N; ++i) {
    sys.positions()[i] = out_pos[i];
    sys.velocities()[i] = out_vel[i];
    sys.forces()[i] = out_force[i];
  }

  ParallelRunResult result;
  for (int r = 0; r < P; ++r) {
    const EngineCounters& c = rank_counters[static_cast<std::size_t>(r)];
    result.potential_energy += rank_energy[static_cast<std::size_t>(r)];
    result.total += c;
    accumulate_max_rank(result.max_rank, c);
  }
  result.runtime_messages = cluster.total_messages();
  result.runtime_bytes = cluster.total_bytes();
  result.rebalances = rebalances;
  result.last_balance_ratio = last_ratio;
  result.steps_completed = config.num_steps;

  // Replay the per-rank records through the same collector the
  // distributed driver streams into live: cluster totals, the per-rank
  // imbalance summary, per-step comm.transport.* deltas, and the
  // span-derived phase_hist.* channels all come out of one code path.
  if (collect_steps) {
    obs::TelemetryCollector collector(collector_config(
        P, field.max_n(), balancing, config, num_records, nullptr));
    if (balancing) {
      for (std::size_t s = 0; s < num_records; ++s) {
        const BalanceStepInfo& b = step_balance[s];
        collector.set_balance(static_cast<long long>(s), b.ratio,
                              b.rebalanced, b.predicted_ratio,
                              b.migrated_atoms);
      }
    }
    collector.observe_events(trace->events());
    for (int r = 0; r < P; ++r) {
      obs::TelemetryFrame frame;
      frame.rank = r;
      frame.steps.reserve(num_records);
      for (std::size_t s = 0; s < num_records; ++s)
        frame.steps.push_back(step_records[s][static_cast<std::size_t>(r)]);
      collector.ingest(frame);
    }
    collector.finish();
  }
  return result;
}

ParallelRunResult run_parallel_md_rank(ParticleSystem& sys,
                                       const ForceField& field,
                                       const std::string& strategy_name,
                                       const ProcessGrid& pgrid,
                                       const ParallelRunConfig& config,
                                       Comm& comm) {
  SCMD_REQUIRE(pgrid.num_ranks() == comm.num_ranks(),
               "process grid and transport disagree on the rank count");
  const int P = comm.num_ranks();
  const int rank = comm.rank();
  const bool root = rank == 0;

  // --- Durability bootstrap (src/ckpt, docs/DURABILITY.md). ------------
  // Only rank 0 owns files; restore state reaches peers by broadcast, so
  // the cluster needs no shared filesystem.
  const DurabilityConfig& dur = config.durability;
  const bool snapshots_on = dur.checkpoint_every > 0;
  SCMD_REQUIRE(!snapshots_on || !dur.checkpoint_dir.empty(),
               "checkpoint_every needs a checkpoint_dir");
  std::optional<ckpt::CheckpointDir> ckpt_dir;
  if (root && (snapshots_on || (dur.restore && !dur.checkpoint_dir.empty())))
    ckpt_dir.emplace(dur.checkpoint_dir, dur.checkpoint_retain);
  ckpt::WalWriter* wal = root ? dur.wal : nullptr;
  const std::optional<ckpt::FaultPlan> fault = ckpt::fault_plan_from_env();

  // Restore before scatter: rank 0 picks the snapshot (newest valid, or
  // the explicit path) and broadcasts its encoded bytes; an empty blob
  // means "no snapshot, start fresh".  Every rank then re-shards the
  // identical restored system, exactly like a fresh scatter.  Whether to
  // restore is rank 0's call, made collective: a freshly respawned rank
  // (attempt 0, CLI defaults) then follows the surviving supervisor
  // ranks (attempt > 0, restore forced on) instead of deadlocking on a
  // mismatched broadcast.
  long long start_step = 0;
  const bool do_restore =
      comm.allreduce_max(root && dur.restore ? 1.0 : 0.0) > 0.0;
  if (do_restore) {
    Bytes blob;
    if (root) {
      std::optional<ckpt::CheckpointData> data;
      if (!dur.restore_path.empty()) {
        data = ckpt::read_checkpoint(dur.restore_path);
      } else if (ckpt_dir) {
        std::string from;
        data = ckpt_dir->load_latest(&from);
      }
      if (data) blob = ckpt::encode_checkpoint(*data);
      for (int r = 1; r < P; ++r) comm.send(r, tags::kRestoreBlob, blob);
    } else {
      blob = comm.recv(0, tags::kRestoreBlob);
    }
    if (!blob.empty()) {
      ckpt::CheckpointData data = ckpt::decode_checkpoint(blob);
      SCMD_REQUIRE(data.system.num_atoms() == sys.num_atoms(),
                   "restored snapshot has a different atom count than the "
                   "configured system");
      SCMD_REQUIRE(data.clock.step <= config.num_steps,
                   "restored snapshot is past this run's step budget");
      sys = std::move(data.system);
      start_step = data.clock.step;
      if (root && wal) {
        wal->append(ckpt::WalRecordType::kNote,
                    "restore step=" + std::to_string(start_step) +
                        " attempt=" + std::to_string(dur.attempt));
      }
    }
  }

  const Decomposition decomp(sys.box(), pgrid);
  const auto strategy =
      make_strategy(strategy_name, field, config.measure_force_set);
  // Every rank scatters the identical global system and keeps its share.
  std::vector<RankState> initial = scatter_atoms(sys, decomp);

  // Whether telemetry streams is a collective decision: rank 0's hooks
  // decide for the whole cluster, so all ranks agree before any of them
  // touches the reserved tags.
  const bool telemetry =
      comm.allreduce_max(root && (config.metrics != nullptr ||
                                  config.trace != nullptr)
                             ? 1.0
                             : 0.0) > 0.0;

  // When streaming, every rank records spans into its own local session
  // and ships them; rank 0's collector re-records them clock-aligned
  // into config.trace.  Rank 0 itself uses a local session too (offset
  // exactly 0), so its spans travel the same path as everyone else's.
  obs::TraceSession local_trace;
  obs::bind_thread(telemetry ? &local_trace : config.trace, rank);
  check::bind_rank(rank);

  std::optional<obs::TelemetryCollector> collector;
  if (telemetry) {
    // Bootstrap clock sync: offsets map each rank's session time into
    // rank 0's session timebase.  Sessions were created a moment ago, so
    // the offsets hold for the whole run — steady clocks on one cluster
    // don't drift apart measurably at MD-run timescales.
    const std::vector<ClockEstimate> clock = estimate_clock_offsets(
        comm.transport(), [&] { return local_trace.now_us(); });
    if (root) {
      // Records are 0-based within this attempt; a resumed run tells the
      // collector the global offset so emitted step numbers continue
      // where the pre-failure run left off.
      obs::TelemetryCollector::Config cc = collector_config(
          P, field.max_n(), static_cast<bool>(config.make_balancer), config,
          static_cast<std::size_t>(config.num_steps - start_step) + 1,
          config.trace);
      cc.step_offset = start_step;
      cc.recoveries = dur.attempt;
      collector.emplace(cc);
      for (int r = 1; r < P; ++r) {
        collector->set_clock(r, clock[static_cast<std::size_t>(r)].offset_us,
                             clock[static_cast<std::size_t>(r)].uncertainty_us);
      }
    }
  }

  const bool balancing = static_cast<bool>(config.make_balancer);
  RankEngineConfig rc;
  rc.dt = config.dt;
  rc.measure_force_set = config.measure_force_set;
  rc.collect_cell_costs = balancing;
  rc.tuple_cache = config.tuple_cache;
  RankEngine engine(comm, decomp, field, *strategy, rc);
  std::unique_ptr<RankBalancer> balancer;
  if (balancing) {
    balancer = config.make_balancer(rank);
    engine.set_balancer(balancer.get());
  }
  engine.set_atoms(std::move(initial[static_cast<std::size_t>(rank)]));

  int rebalances = 0;
  double last_ratio = 0.0;

  // One frame per rank per record: this rank's step observables plus the
  // spans recorded since the previous flush.  Rank 0 ingests its own
  // frame, then one from every peer — per-(src, tag) ordering makes the
  // step sequence implicit, and the collector finalizes a step once all
  // ranks have reported it.
  EngineCounters prev;
  std::size_t trace_cursor = 0;
  auto flush_telemetry = [&](long long record_step) {
    obs::TelemetryFrame frame;
    frame.rank = rank;
    obs::TelemetryStepRecord rec;
    rec.step = record_step;
    rec.potential_energy = engine.potential_energy();
    rec.work = engine.counters().delta_since(prev);
    rec.transport = comm.transport().stats();
    frame.steps.push_back(rec);
    frame.events = local_trace.events_since(trace_cursor);
    trace_cursor += frame.events.size();
    prev = engine.counters();
    if (root) {
      collector->ingest(frame);
      for (int r = 1; r < P; ++r)
        collector->ingest(
            obs::decode_frame(comm.recv(r, tags::kTelemetry)));
      if (config.status != nullptr)
        config.status->publish(collector->status_json());
    } else {
      comm.send(0, tags::kTelemetry, obs::encode_frame(frame));
    }
  };

  // Collective snapshot: every rank ships its owned atoms to rank 0,
  // which assembles the global state by gid onto a copy of `sys` (types
  // and masses never change) and persists it crash-safely.
  long long snapshots_written = 0;
  auto pack_owned = [&] {
    const RankState& st = engine.state();
    const auto forces = engine.owned_forces();
    std::vector<AtomWire> atoms(static_cast<std::size_t>(st.num_owned()));
    for (int i = 0; i < st.num_owned(); ++i) {
      auto& a = atoms[static_cast<std::size_t>(i)];
      a.gid = st.gid[static_cast<std::size_t>(i)];
      a.pos = st.pos[static_cast<std::size_t>(i)];
      a.vel = st.vel[static_cast<std::size_t>(i)];
      a.force = forces[static_cast<std::size_t>(i)];
    }
    return atoms;
  };
  auto snapshot = [&](long long completed_steps) {
    SCMD_TRACE("ckpt.snapshot");
    if (!root) {
      comm.send(0, tags::kSnapshotAtoms, pack(pack_owned()));
      return;
    }
    ckpt::CheckpointData data;
    data.system = sys;
    auto place = [&](const std::vector<AtomWire>& atoms) {
      for (const AtomWire& a : atoms) {
        const int g = static_cast<int>(a.gid);
        data.system.positions()[g] = a.pos;
        data.system.velocities()[g] = a.vel;
        data.system.forces()[g] = a.force;
      }
    };
    place(pack_owned());
    for (int r = 1; r < P; ++r) {
      const auto atoms = unpack<AtomWire>(comm.recv(r, tags::kSnapshotAtoms));
      SCMD_REQUIRE(wire_gids_valid(atoms, data.system.positions().size()),
                   "snapshot gather frame carries an out-of-range gid");
      place(atoms);
    }
    data.clock.step = completed_steps;
    data.clock.total_steps = config.num_steps;
    data.clock.dt = config.dt;
    ckpt::DecompState d;
    d.pgrid_dims = decomp.pgrid().dims();
    d.align_dims = decomp.align_pgrid().dims();
    d.fine_res = decomp.fine_res();
    for (int a = 0; a < 3; ++a) {
      const auto& cuts = decomp.cuts()[static_cast<std::size_t>(a)];
      d.cuts[static_cast<std::size_t>(a)].assign(cuts.begin(), cuts.end());
    }
    data.decomp = std::move(d);
    data.cache = ckpt::CacheState{engine.counters().cache_rebuilds,
                                  config.tuple_cache.skin};
    ckpt_dir->write(data);
    ++snapshots_written;
    if (wal) {
      ckpt::TrajFrame frame;
      frame.step = completed_steps;
      const auto pos = data.system.positions();
      const auto vel = data.system.velocities();
      frame.pos.assign(pos.begin(), pos.end());
      frame.vel.assign(vel.begin(), vel.end());
      wal->append(ckpt::WalRecordType::kTrajectory,
                  ckpt::encode_traj_frame(frame));
      wal->sync();
    }
    if (config.metrics != nullptr) {
      config.metrics->add("ckpt.snapshots", 1);
      config.metrics->set("ckpt.last_step",
                          static_cast<double>(completed_steps));
      if (wal) {
        config.metrics->set("ckpt.wal_bytes",
                            static_cast<double>(wal->bytes_written()));
      }
    }
  };
  if (root && config.metrics != nullptr)
    config.metrics->set("ckpt.recoveries", static_cast<double>(dur.attempt));

  engine.compute_forces();
  if (telemetry) flush_telemetry(0);
  int abort_reason = 0;
  long long steps_done = start_step;
  for (int s = static_cast<int>(start_step); s < config.num_steps; ++s) {
    engine.step();
    const long long done = s + 1;        // completed MD steps
    const long long rec = done - start_step;  // this attempt's record index
    steps_done = done;
    // Fault injection fires *before* the snapshot at this boundary, so a
    // killed rank never contributes to it and recovery has to fall back
    // to the previous checkpoint — the hard case.
    ckpt::maybe_kill(fault, rank, done, &comm.transport());
    if (snapshots_on &&
        (done % dur.checkpoint_every == 0 || done == config.num_steps)) {
      snapshot(done);
    }
    if (balancer && root) {
      // The balancer's view is collectively agreed, so rank 0's copy is
      // the cluster's.
      const BalanceStepInfo& info = balancer->last_step();
      if (info.rebalanced) ++rebalances;
      if (info.ratio > 0.0) last_ratio = info.ratio;
      if (collector) {
        collector->set_balance(rec, info.ratio, info.rebalanced,
                               info.predicted_ratio, info.migrated_atoms);
      }
    }
    if (telemetry) flush_telemetry(rec);
    if (config.poll_abort) {
      // Collective early-stop decision: the poll is local, the verdict
      // is the max over ranks, so every rank leaves the loop at the
      // same step boundary (telemetry records stay rectangular).
      const int verdict = static_cast<int>(
          comm.allreduce_max(static_cast<double>(config.poll_abort())));
      if (verdict != 0) {
        abort_reason = verdict;
        break;
      }
    }
  }
  if (collector) {
    if (abort_reason == 0) {
      collector->finish();
    } else {
      collector->finish_partial();
    }
    if (config.status != nullptr)
      config.status->publish(collector->status_json());
  }

  ParallelRunResult result;
  result.potential_energy = comm.allreduce_sum(engine.potential_energy());
  result.rebalances = rebalances;
  result.last_balance_ratio = last_ratio;
  result.restored_step = start_step;
  result.snapshots_written = snapshots_written;
  result.recoveries = dur.attempt;
  result.abort_reason = abort_reason;
  result.steps_completed = steps_done;

  // Gather counters and the final atom state to rank 0 on the
  // registered gather channels (net/tags.hpp).  (Per-step metrics used
  // to be gathered here too; they now stream live through the telemetry
  // channel above.)

  const RankState& st = engine.state();
  const auto forces = engine.owned_forces();
  std::vector<AtomWire> my_atoms(static_cast<std::size_t>(st.num_owned()));
  for (int i = 0; i < st.num_owned(); ++i) {
    auto& a = my_atoms[static_cast<std::size_t>(i)];
    a.gid = st.gid[static_cast<std::size_t>(i)];
    a.pos = st.pos[static_cast<std::size_t>(i)];
    a.vel = st.vel[static_cast<std::size_t>(i)];
    a.force = forces[static_cast<std::size_t>(i)];
  }

  if (root) {
    result.total = engine.counters();
    accumulate_max_rank(result.max_rank, engine.counters());
    TransportStats agg = comm.transport().stats();
    auto place = [&](const std::vector<AtomWire>& atoms) {
      for (const AtomWire& a : atoms) {
        const int g = static_cast<int>(a.gid);
        sys.positions()[g] = a.pos;
        sys.velocities()[g] = a.vel;
        sys.forces()[g] = a.force;
      }
    };
    place(my_atoms);
    for (int r = 1; r < P; ++r) {
      const auto counters =
          unpack<EngineCounters>(comm.recv(r, tags::kGatherCounters));
      SCMD_REQUIRE(counters.size() == 1, "malformed counters gather");
      result.total += counters[0];
      accumulate_max_rank(result.max_rank, counters[0]);
      const auto atoms = unpack<AtomWire>(comm.recv(r, tags::kGatherState));
      SCMD_REQUIRE(wire_gids_valid(atoms, sys.positions().size()),
                   "state gather frame carries an out-of-range gid");
      place(atoms);
      const auto stats = unpack<TransportStats>(comm.recv(r, tags::kGatherStats));
      SCMD_REQUIRE(stats.size() == 1, "malformed stats gather");
      agg += stats[0];
    }
    result.runtime_messages = agg.messages_sent;
    result.runtime_bytes = agg.bytes_sent;
  } else {
    result.total = engine.counters();
    comm.send(0, tags::kGatherCounters,
              pack(std::vector<EngineCounters>{engine.counters()}));
    comm.send(0, tags::kGatherState, pack(my_atoms));
    comm.send(0, tags::kGatherStats,
              pack(std::vector<TransportStats>{comm.transport().stats()}));
  }

  // Drain-and-sync before the caller tears the transport down, so no
  // backend is destroyed with traffic still in flight.
  comm.barrier();
  // The span sink bound above is (or may be) the stack-local session —
  // don't leave the thread-local binding dangling past this frame.
  obs::bind_thread(nullptr, 0);
  return result;
}

}  // namespace scmd
