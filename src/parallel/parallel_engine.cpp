#include "parallel/parallel_engine.hpp"

#include <exception>
#include <thread>

#include "check/invariant.hpp"
#include "parallel/rank_engine.hpp"
#include "support/error.hpp"

namespace scmd {

std::vector<RankState> scatter_atoms(const ParticleSystem& sys,
                                     const Decomposition& decomp) {
  const ProcessGrid& pg = decomp.pgrid();
  std::vector<RankState> states(static_cast<std::size_t>(pg.num_ranks()));
  const auto pos = sys.positions();
  const auto vel = sys.velocities();
  const auto type = sys.types();
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const Vec3 p = sys.box().wrap(pos[i]);
    // owner_of is the same cut-position arithmetic the migrator's region
    // test uses, so the initial placement is consistent with migration
    // for uniform and non-uniform decompositions alike.
    RankState& st = states[static_cast<std::size_t>(decomp.owner_of(p))];
    st.pos.push_back(p);
    st.vel.push_back(vel[i]);
    st.gid.push_back(i);
    st.type.push_back(type[i]);
  }
  return states;
}

ParallelRunResult run_parallel_md(ParticleSystem& sys,
                                  const ForceField& field,
                                  const std::string& strategy_name,
                                  const ProcessGrid& pgrid,
                                  const ParallelRunConfig& config) {
  const Decomposition decomp(sys.box(), pgrid);
  const auto strategy =
      make_strategy(strategy_name, field, config.measure_force_set);
  std::vector<RankState> initial = scatter_atoms(sys, decomp);

  const int P = pgrid.num_ranks();
  std::vector<EngineCounters> rank_counters(static_cast<std::size_t>(P));
  std::vector<double> rank_energy(static_cast<std::size_t>(P), 0.0);

  // Per-step per-rank work deltas for the observability summary.  Slot
  // s=0 is the initial force pass; each rank writes only its own column,
  // so no synchronization is needed beyond the final join.
  const bool collect_steps = config.metrics != nullptr;
  const std::size_t num_records =
      static_cast<std::size_t>(config.num_steps) + 1;
  std::vector<std::vector<EngineCounters>> step_work;
  std::vector<std::vector<double>> step_energy;
  if (collect_steps) {
    step_work.assign(num_records,
                     std::vector<EngineCounters>(static_cast<std::size_t>(P)));
    step_energy.assign(num_records,
                       std::vector<double>(static_cast<std::size_t>(P), 0.0));
  }

  // Per-step balance outcomes, written by rank 0 only (the balancer's
  // view is collectively agreed, so one rank's copy is the cluster's).
  const bool balancing = static_cast<bool>(config.make_balancer);
  std::vector<BalanceStepInfo> step_balance;
  if (collect_steps && balancing) step_balance.assign(num_records, {});
  int rebalances = 0;
  double last_ratio = 0.0;

  // Gather buffers written by each rank for its own atoms (disjoint gids).
  const std::size_t N = static_cast<std::size_t>(sys.num_atoms());
  std::vector<Vec3> out_pos(N), out_vel(N), out_force(N);

  Cluster cluster(P);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  threads.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      try {
        // Rank-tagged spans: every SCMD_TRACE below this binding (halo
        // import, search, write-back, ...) lands on lane tid = r.
        obs::bind_thread(config.trace, r);
        // Invariant-violation reports name the failing rank.
        check::bind_rank(r);
        Comm comm(cluster, r);
        RankEngineConfig rc;
        rc.dt = config.dt;
        rc.measure_force_set = config.measure_force_set;
        rc.collect_cell_costs = balancing;
        rc.tuple_cache = config.tuple_cache;
        RankEngine engine(comm, decomp, field, *strategy, rc);
        std::unique_ptr<RankBalancer> balancer;
        if (balancing) {
          balancer = config.make_balancer(r);
          engine.set_balancer(balancer.get());
        }
        engine.set_atoms(std::move(initial[static_cast<std::size_t>(r)]));
        EngineCounters prev;
        engine.compute_forces();
        if (collect_steps) {
          step_work[0][static_cast<std::size_t>(r)] =
              engine.counters().delta_since(prev);
          step_energy[0][static_cast<std::size_t>(r)] =
              engine.potential_energy();
          prev = engine.counters();
        }
        for (int s = 0; s < config.num_steps; ++s) {
          engine.step();
          if (balancer && r == 0) {
            const BalanceStepInfo& info = balancer->last_step();
            if (info.rebalanced) ++rebalances;
            if (info.ratio > 0.0) last_ratio = info.ratio;
            if (collect_steps)
              step_balance[static_cast<std::size_t>(s) + 1] = info;
          }
          if (collect_steps) {
            const std::size_t si = static_cast<std::size_t>(s) + 1;
            step_work[si][static_cast<std::size_t>(r)] =
                engine.counters().delta_since(prev);
            step_energy[si][static_cast<std::size_t>(r)] =
                engine.potential_energy();
            prev = engine.counters();
          }
        }

        rank_energy[static_cast<std::size_t>(r)] = engine.potential_energy();
        rank_counters[static_cast<std::size_t>(r)] = engine.counters();
        const RankState& st = engine.state();
        const auto f = engine.owned_forces();
        for (int i = 0; i < st.num_owned(); ++i) {
          const std::size_t g =
              static_cast<std::size_t>(st.gid[static_cast<std::size_t>(i)]);
          out_pos[g] = st.pos[static_cast<std::size_t>(i)];
          out_vel[g] = st.vel[static_cast<std::size_t>(i)];
          out_force[g] = f[static_cast<std::size_t>(i)];
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Copy the gathered state back into the system.
  for (std::size_t i = 0; i < N; ++i) {
    sys.positions()[i] = out_pos[i];
    sys.velocities()[i] = out_vel[i];
    sys.forces()[i] = out_force[i];
  }

  ParallelRunResult result;
  for (int r = 0; r < P; ++r) {
    const EngineCounters& c = rank_counters[static_cast<std::size_t>(r)];
    result.potential_energy += rank_energy[static_cast<std::size_t>(r)];
    result.total += c;
    // Componentwise max for load-imbalance analysis.
    auto maxu = [](std::uint64_t& a, std::uint64_t b) {
      if (b > a) a = b;
    };
    for (std::size_t n = 0; n < c.tuples.size(); ++n) {
      maxu(result.max_rank.tuples[n].search_steps, c.tuples[n].search_steps);
      maxu(result.max_rank.tuples[n].chain_candidates,
           c.tuples[n].chain_candidates);
      maxu(result.max_rank.tuples[n].cell_visits, c.tuples[n].cell_visits);
      maxu(result.max_rank.tuples[n].accepted, c.tuples[n].accepted);
      maxu(result.max_rank.evals[n], c.evals[n]);
      if (c.force_set[n] > result.max_rank.force_set[n])
        result.max_rank.force_set[n] = c.force_set[n];
    }
    maxu(result.max_rank.list_pairs, c.list_pairs);
    maxu(result.max_rank.list_scan_steps, c.list_scan_steps);
    maxu(result.max_rank.cache_rebuilds, c.cache_rebuilds);
    maxu(result.max_rank.cache_reuse_steps, c.cache_reuse_steps);
    maxu(result.max_rank.cache_replayed, c.cache_replayed);
    maxu(result.max_rank.ghost_atoms_imported, c.ghost_atoms_imported);
    maxu(result.max_rank.messages, c.messages);
    maxu(result.max_rank.bytes_imported, c.bytes_imported);
    maxu(result.max_rank.bytes_written_back, c.bytes_written_back);
  }
  result.runtime_messages = cluster.total_messages();
  result.runtime_bytes = cluster.total_bytes();
  result.rebalances = rebalances;
  result.last_balance_ratio = last_ratio;

  // Per-step structured records: cluster totals plus the rank-imbalance
  // summary (max/avg work and Eq.-33 import volume per rank).
  if (collect_steps) {
    obs::MetricsRegistry& reg = *config.metrics;
    const int every = config.metrics_every > 0 ? config.metrics_every : 1;
    for (std::size_t s = 0; s < num_records; ++s) {
      obs::StepSample sample;
      sample.max_n = field.max_n();
      for (int r = 0; r < P; ++r) {
        sample.work += step_work[s][static_cast<std::size_t>(r)];
        sample.potential_energy += step_energy[s][static_cast<std::size_t>(r)];
      }
      obs::record_step(reg, sample);
      obs::record_rank_imbalance(reg, step_work[s]);
      if (balancing) {
        const BalanceStepInfo& b = step_balance[s];
        obs::record_balance(reg, b.ratio, b.rebalanced, b.predicted_ratio,
                            b.migrated_atoms);
      }
      if (s % static_cast<std::size_t>(every) == 0 || s + 1 == num_records)
        reg.emit(static_cast<long long>(s));
    }
  }
  return result;
}

}  // namespace scmd
