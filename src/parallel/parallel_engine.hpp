#pragma once

/// \file parallel_engine.hpp
/// Whole-cluster MD driver: scatter a global system onto ranks, run
/// lock-step MD with real message passing, gather the state back.
///
/// This is the correctness vehicle for the parallel algorithms: tests
/// compare its trajectories, energies, and forces against SerialEngine.
/// Performance *figures* come from the cluster simulator in src/perf,
/// which reuses the same per-rank logic without threads.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engines/strategy.hpp"
#include "md/system.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/decomp.hpp"
#include "parallel/exchange.hpp"
#include "parallel/rank_engine.hpp"

namespace scmd {

class StatusServer;

namespace ckpt {
class WalWriter;
}

/// Durability options for the distributed driver (docs/DURABILITY.md).
/// Collective: every rank must pass identical values.  Only rank 0
/// touches the checkpoint directory and WAL — peers contribute their
/// atoms to rank 0's snapshot over reserved tags (src/ckpt) and receive
/// restored state by broadcast, so no shared filesystem is required.
struct DurabilityConfig {
  /// Snapshot after every this-many completed steps (and after the final
  /// step).  0 = no periodic snapshots.
  int checkpoint_every = 0;
  std::string checkpoint_dir;  ///< required when checkpoint_every > 0
  int checkpoint_retain = 3;   ///< snapshots kept on disk (oldest pruned)

  /// Resume: before stepping, rank 0 loads the newest valid snapshot
  /// (or `restore_path` when set) and broadcasts it; all ranks re-shard
  /// from it and continue at its step counter.  With no loadable
  /// snapshot the run starts fresh from `sys`.
  bool restore = false;
  std::string restore_path;

  /// Rank-0 write-ahead log (not owned; honored on rank 0 only, like
  /// the observability hooks): snapshot-cadence trajectory frames plus
  /// operational notes (restores, recoveries).  The caller owns it so
  /// one log spans every supervisor attempt.  Null = off.
  ckpt::WalWriter* wal = nullptr;

  int attempt = 0;  ///< supervisor attempt ordinal (0 = first try)
};

/// Options for a parallel run.
struct ParallelRunConfig {
  double dt = 1.0;
  int num_steps = 0;               ///< steps after the initial force pass
  bool measure_force_set = false;

  /// Optional observability hooks.  `trace` receives rank-tagged phase
  /// spans (tid = rank); in the distributed driver it is rank 0's
  /// *merged* session — every rank streams its spans there, clock-aligned
  /// into rank 0's timebase (one lane per rank).  `metrics` receives one
  /// record per MD step (emitted every `metrics_every` steps) with
  /// cluster totals, the per-rank max/avg imbalance summary (Eq. 33
  /// import volume), per-step comm.transport.* deltas, and log-bucketed
  /// phase_hist.* latency histograms.  Both null by default — the run
  /// then pays no instrumentation cost.
  obs::TraceSession* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  int metrics_every = 1;

  /// Live run monitor (distributed driver, honored on rank 0): when set,
  /// a status snapshot is published after every finalized step for the
  /// status socket to serve (net/status_server.hpp, tools/scmd_top.py).
  StatusServer* status = nullptr;

  /// Dynamic load balancing: when set, each rank constructs its balancer
  /// through this factory (called once per rank, collectively consistent
  /// configuration expected) and per-cell cost collection is switched on.
  /// Null = balancing off.  See src/balance for implementations.
  std::function<std::unique_ptr<RankBalancer>(int rank)> make_balancer;

  /// Persistent tuple lists (docs/TUPLECACHE.md), forwarded to every
  /// rank engine.  Pattern strategies only; the reuse decision is
  /// collective across ranks.
  TupleCacheConfig tuple_cache;

  /// Checkpoint/restore + WAL (distributed driver only; the in-process
  /// thread driver ignores it — durability there is the serial driver's
  /// job).
  DurabilityConfig durability;

  /// Cooperative early stop (distributed driver only).  When set, every
  /// rank polls it once per completed step and the cluster takes the
  /// max over ranks — a non-zero return on *any* rank stops the whole
  /// run at that step boundary, with the gathered state and telemetry
  /// reflecting the steps actually completed.  The returned value is
  /// reported as ParallelRunResult::abort_reason (serve uses 1 =
  /// cancelled, 2 = walltime cap).  Either every rank sets this or none
  /// does — the per-step reduction is collective.
  std::function<int()> poll_abort;
};

/// Aggregated results of a parallel run.
struct ParallelRunResult {
  double potential_energy = 0.0;   ///< global, after the last force pass
  EngineCounters total;            ///< summed over ranks
  EngineCounters max_rank;         ///< componentwise max over ranks
  std::uint64_t runtime_messages = 0;  ///< cluster-wide messages sent
  std::uint64_t runtime_bytes = 0;

  int rebalances = 0;              ///< rebalance events during the run
  double last_balance_ratio = 0.0; ///< most recent measured max/mean work
                                   ///< ratio (0 when balancing is off or
                                   ///< never measured)

  long long restored_step = 0;     ///< step the run resumed from (0 = fresh)
  long long snapshots_written = 0; ///< checkpoints rank 0 persisted
  int recoveries = 0;              ///< rank failures survived (supervisor)

  /// 0 = ran to the step budget; otherwise the max non-zero value any
  /// rank's `poll_abort` returned (the run stopped early).
  int abort_reason = 0;
  long long steps_completed = 0;   ///< MD steps completed by this run
};

/// Run `num_steps` of MD on `pgrid.num_ranks()` threads.  On return `sys`
/// holds the final positions/velocities/forces (gathered by global id).
/// `strategy_name` is "SC", "FS", or "Hybrid".
ParallelRunResult run_parallel_md(ParticleSystem& sys, const ForceField& field,
                                  const std::string& strategy_name,
                                  const ProcessGrid& pgrid,
                                  const ParallelRunConfig& config);

/// One rank of a distributed MD run over an already-connected Comm (any
/// Transport backend: the caller owns the endpoint — a TcpTransport in
/// multi-process runs, or one rank's InProcTransport under run_cluster).
///
/// Every rank must call this collectively with an *identical* `sys`
/// (same build seed/config) and identical run configuration; each rank
/// keeps only the atoms its region owns.  On return, rank 0's `sys`
/// holds the gathered final positions/velocities/forces and rank 0's
/// result carries the cluster totals; other ranks' `sys` is left at the
/// input state and their result holds the global potential energy,
/// cluster-wide message totals, and their own counters.
///
/// Observability hooks in `config` are honored on rank 0; the decision
/// to instrument is itself collective.  When rank 0 passes metrics or a
/// trace, every rank records spans into a rank-local session, estimates
/// its clock offset against rank 0 at bootstrap (net/clock_sync.hpp),
/// and streams one telemetry frame per step to rank 0's collector
/// (obs/collector.hpp) — metrics are reduced and emitted live, and all
/// rank traces merge into `config.trace` as one clock-aligned timeline.
ParallelRunResult run_parallel_md_rank(ParticleSystem& sys,
                                       const ForceField& field,
                                       const std::string& strategy_name,
                                       const ProcessGrid& pgrid,
                                       const ParallelRunConfig& config,
                                       Comm& comm);

/// Split a global system into per-rank atom states by region ownership.
std::vector<RankState> scatter_atoms(const ParticleSystem& sys,
                                     const Decomposition& decomp);

}  // namespace scmd
