#pragma once

/// \file cost_field.hpp
/// Measured work density on a fine lattice — the input of the balancer.
///
/// The load balancer does not model cost: it redistributes the *measured*
/// per-home-cell search work the engines already count (EngineCounters
/// deltas attributed per cell through ForceAccum::cell_cost).  Per-cell
/// enumeration work is decomposition-independent, so per-cell costs sum
/// exactly to rank costs for any candidate decomposition.
///
/// Cut planes live on a fine lattice finer than every cell grid.  To
/// evaluate sub-cell cuts, each cell's cost is apportioned over the
/// chain-start atoms binned in it (the work scales with the number of
/// chains rooted there) and deposited at each atom's fine-lattice bin;
/// cells without start atoms deposit at the cell center so no cost mass
/// is ever dropped.

#include <cstdint>
#include <utility>
#include <vector>

#include "cell/domain.hpp"
#include "geom/int3.hpp"

namespace scmd {

/// Dense cost density over a fine lattice spanning the (wrapped) box.
class CostField {
 public:
  /// `res` must be componentwise positive.
  CostField(const Box& box, const Int3& res);

  const Int3& res() const { return res_; }
  const Box& box() const { return box_; }

  /// Fine-lattice values in [z][y][x] order.
  const std::vector<double>& values() const { return values_; }
  double total() const;

  /// Linear index of the fine bin containing wrapped position `p`.
  std::int32_t bin_of(const Vec3& p) const;

  void add(std::int32_t index, double value) {
    values_[static_cast<std::size_t>(index)] += value;
  }

  /// Apportion one domain's accumulated per-owned-cell costs (one entry
  /// per owned cell, [z][y][x], as collected by RankEngine/ForceAccum)
  /// over the chain-start atoms of each cell.
  void deposit(const CellDomain& dom,
               const std::vector<std::uint64_t>& cell_cost);

  /// Nonzero entries as (index, value) pairs — the wire format ranks send
  /// to the solver rank.
  std::vector<std::pair<std::int32_t, double>> sparse() const;

  /// Recommended fine resolution for a set of cell grids: per axis, twice
  /// the least common multiple of the grid dimensions, so every cell
  /// boundary is a fine boundary and every cell splits at least in half.
  static Int3 recommend_res(const std::vector<Int3>& grid_dims);

 private:
  Box box_;
  Int3 res_;
  std::vector<double> values_;
};

}  // namespace scmd
