#include "balance/cost_field.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace scmd {

CostField::CostField(const Box& box, const Int3& res)
    : box_(box), res_(res) {
  SCMD_REQUIRE(res.x >= 1 && res.y >= 1 && res.z >= 1,
               "fine lattice resolution must be positive");
  values_.assign(static_cast<std::size_t>(res_.volume()), 0.0);
}

double CostField::total() const {
  double t = 0.0;
  for (double v : values_) t += v;
  return t;
}

std::int32_t CostField::bin_of(const Vec3& p) const {
  Int3 b;
  for (int a = 0; a < 3; ++a) {
    const int i = static_cast<int>(p[a] / box_.length(a) *
                                   static_cast<double>(res_[a]));
    b[a] = std::clamp(i, 0, res_[a] - 1);
  }
  return static_cast<std::int32_t>((static_cast<long long>(b.z) * res_.y +
                                    b.y) *
                                       res_.x +
                                   b.x);
}

void CostField::deposit(const CellDomain& dom,
                        const std::vector<std::uint64_t>& cell_cost) {
  const Int3 od = dom.owned_dims();
  SCMD_REQUIRE(static_cast<long long>(cell_cost.size()) == od.volume(),
               "cell cost array does not match the domain's owned brick");
  const Vec3 cl = dom.grid().cell_lengths();
  const auto pos = dom.positions();
  for (int z = 0; z < od.z; ++z) {
    for (int y = 0; y < od.y; ++y) {
      for (int x = 0; x < od.x; ++x) {
        const double w = static_cast<double>(
            cell_cost[(static_cast<std::size_t>(z) * od.y + y) * od.x + x]);
        if (w == 0.0) continue;
        const Int3 local = dom.owned_base() + Int3{x, y, z};
        const auto [first, mid] = dom.cell_start_range(dom.cell_index(local));
        if (mid > first) {
          const double share = w / static_cast<double>(mid - first);
          for (int i = first; i < mid; ++i)
            add(bin_of(box_.wrap(pos[static_cast<std::size_t>(i)])), share);
        } else {
          // No chain-start atoms in the cell (its work came from scans
          // that rejected every candidate, or from extended home cells):
          // keep the mass, deposited at the cell center.
          const Int3 g = dom.global_coord(local);
          const Vec3 center{(g.x + 0.5) * cl.x, (g.y + 0.5) * cl.y,
                            (g.z + 0.5) * cl.z};
          add(bin_of(box_.wrap(center)), w);
        }
      }
    }
  }
}

std::vector<std::pair<std::int32_t, double>> CostField::sparse() const {
  std::vector<std::pair<std::int32_t, double>> out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != 0.0)
      out.emplace_back(static_cast<std::int32_t>(i), values_[i]);
  }
  return out;
}

Int3 CostField::recommend_res(const std::vector<Int3>& grid_dims) {
  SCMD_REQUIRE(!grid_dims.empty(), "need at least one grid");
  Int3 res{1, 1, 1};
  for (const Int3& d : grid_dims) {
    for (int a = 0; a < 3; ++a) res[a] = std::lcm(res[a], d[a]);
  }
  for (int a = 0; a < 3; ++a) res[a] *= 2;
  return res;
}

}  // namespace scmd
