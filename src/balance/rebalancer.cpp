#include "balance/rebalancer.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "balance/cost_field.hpp"
#include "balance/solver.hpp"
#include "net/tags.hpp"
#include "support/error.hpp"

namespace scmd {

namespace {

/// Sparse cost entry on the wire (rank -> solver rank).
struct CostEntry {
  std::int32_t index;
  double value;
};

}  // namespace

Rebalancer::Rebalancer(const BalanceConfig& config) : config_(config) {
  SCMD_REQUIRE(config.mode != BalanceConfig::Mode::kEvery || config.every > 0,
               "every-K balancing needs a positive period");
  SCMD_REQUIRE(config.threshold > 1.0,
               "balance threshold must exceed 1 (perfect balance)");
  SCMD_REQUIRE(config.hysteresis >= 0.0, "hysteresis must be non-negative");
  SCMD_REQUIRE(config.min_interval >= 1, "min interval must be positive");
  trigger_level_ = config.threshold;
}

double Rebalancer::measure_ratio(Comm& comm, RankEngine& engine) const {
  double local = 0.0;
  for (int n = 2; n <= kMaxTupleLen; ++n) {
    if (!engine.grid_active(n)) continue;
    for (const std::uint64_t w : engine.cell_costs(n))
      local += static_cast<double>(w);
  }
  const double sum = comm.allreduce_sum(local);
  const double mx = comm.allreduce_max(local);
  if (sum <= 0.0) return 0.0;
  return mx * static_cast<double>(comm.num_ranks()) / sum;
}

void Rebalancer::on_step(Comm& comm, RankEngine& engine) {
  ++step_;
  info_ = BalanceStepInfo{};
  info_.ratio = measure_ratio(comm, engine);

  bool trigger = false;
  switch (config_.mode) {
    case BalanceConfig::Mode::kOff:
      break;
    case BalanceConfig::Mode::kEvery:
      trigger = step_ % config_.every == 0;
      break;
    case BalanceConfig::Mode::kAuto:
      trigger = step_ - last_rebalance_step_ >= config_.min_interval &&
                info_.ratio > trigger_level_;
      break;
  }
  if (trigger) rebalance(comm, engine);
}

void Rebalancer::rebalance(Comm& comm, RankEngine& engine) {
  const Decomposition& decomp = engine.decomp();
  const ForceStrategy& strategy = engine.strategy();

  // Fine cut lattice and per-grid reach parameters (identical on every
  // rank: derived from shared configuration only).
  std::vector<Int3> dims;
  std::vector<GridReach> reaches;
  for (int n = 2; n <= kMaxTupleLen; ++n) {
    if (!engine.grid_active(n)) continue;
    const Int3 d = engine.grid(n).dims();
    dims.push_back(d);
    const HaloSpec h = strategy.halo(n);
    const HaloSpec ext = strategy.root_reach(n);
    GridReach gr;
    gr.dims = d;
    for (int a = 0; a < 3; ++a) {
      gr.halo_lo[a] = h.lo[a] + ext.lo[a];
      gr.halo_hi[a] = h.hi[a] + ext.hi[a];
    }
    reaches.push_back(gr);
  }
  Int3 res = config_.fine_res;
  if (res.x < 1 || res.y < 1 || res.z < 1)
    res = CostField::recommend_res(dims);

  // Local measured cost, apportioned onto the fine lattice.
  CostField local(decomp.box(), res);
  for (int n = 2; n <= kMaxTupleLen; ++n) {
    if (!engine.grid_active(n)) continue;
    local.deposit(engine.domain(n), engine.cell_costs(n));
  }

  // Gather the sparse fields on rank 0, solve, broadcast the plan as
  //   [accepted, px, py, pz, predicted, cuts_x..., cuts_y..., cuts_z...].
  const int P = comm.num_ranks();
  std::vector<double> plan;
  if (comm.rank() != 0) {
    std::vector<CostEntry> entries;
    for (const auto& [idx, val] : local.sparse())
      entries.push_back({idx, val});
    comm.send(0, tags::kBalanceCostGather, pack(entries));
    plan = unpack<double>(comm.recv(0, tags::kBalancePlanBcast));
    SCMD_REQUIRE(plan.size() >= 5, "malformed balance plan broadcast");
  } else {
    std::vector<double> field = local.values();
    for (int r = 1; r < P; ++r) {
      const auto entries = unpack<CostEntry>(comm.recv(r, tags::kBalanceCostGather));
      for (const CostEntry& e : entries) {
        SCMD_REQUIRE(e.index >= 0 &&
                         static_cast<std::size_t>(e.index) < field.size(),
                     "cost-gather entry indexes outside the fine lattice");
        field[static_cast<std::size_t>(e.index)] += e.value;
      }
    }
    const auto limits = width_limits_for(res, reaches);
    const BalanceSolution sol = solve_balanced_cuts(field, res, P, limits);
    // Re-cut only when feasible and predicted to improve on what is
    // currently measured (every-K mode re-cuts whenever feasible).
    const bool accept =
        sol.predicted_ratio > 0.0 &&
        (config_.mode == BalanceConfig::Mode::kEvery ||
         sol.predicted_ratio < info_.ratio);
    plan.push_back(accept ? 1.0 : 0.0);
    for (int a = 0; a < 3; ++a)
      plan.push_back(static_cast<double>(sol.pgrid_dims[a]));
    plan.push_back(sol.predicted_ratio);
    if (accept) {
      for (const auto& axis : sol.cuts)
        for (const int c : axis) plan.push_back(static_cast<double>(c));
    }
    for (int r = 1; r < P; ++r) {
      Bytes payload = pack(plan);
      comm.send(r, tags::kBalancePlanBcast, std::move(payload));
    }
  }

  last_rebalance_step_ = step_;
  engine.reset_cell_costs();
  if (plan[0] == 0.0) return;  // solver declined; keep the current cuts

  const Int3 pd{static_cast<int>(plan[1]), static_cast<int>(plan[2]),
                static_cast<int>(plan[3])};
  const double predicted = plan[4];
  std::array<std::vector<int>, 3> cuts;
  std::size_t at = 5;
  for (int a = 0; a < 3; ++a) {
    cuts[static_cast<std::size_t>(a)].resize(static_cast<std::size_t>(pd[a]) +
                                             1);
    for (int i = 0; i <= pd[a]; ++i)
      cuts[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] =
          static_cast<int>(plan[at++]);
  }

  const Decomposition next(decomp.box(), ProcessGrid(pd), cuts, res,
                           decomp.align_pgrid());
  engine.apply_decomposition(next);
  const std::uint64_t sent = engine.settle_atoms();
  info_.migrated_atoms = static_cast<std::uint64_t>(
      comm.allreduce_sum(static_cast<double>(sent)));
  info_.rebalanced = true;
  info_.predicted_ratio = predicted;
  trigger_level_ =
      std::max(config_.threshold, predicted * (1.0 + config_.hysteresis));
}

std::function<std::unique_ptr<RankBalancer>(int rank)> make_rebalancer_factory(
    const BalanceConfig& config) {
  return [config](int /*rank*/) {
    return std::make_unique<Rebalancer>(config);
  };
}

}  // namespace scmd
