#pragma once

/// \file solver.hpp
/// Cost-driven non-uniform decomposition solver.
///
/// Input: a measured cost density on a fine lattice (see CostField) and a
/// rank count.  Output: a process-grid factorization plus per-axis cut
/// planes (tensor-product bricks, so the forwarded halo exchange keeps
/// working) minimizing the predicted max/mean per-rank cost ratio.
///
/// Per axis, the optimal cuts for fixed other-axis cuts solve a
/// 1-D partition problem: minimize over cut positions the maximum, over
/// this axis' parts and the other axes' rank columns, of the summed cost
/// — an exact dynamic program over fine-lattice slabs.  Axes are relaxed
/// round-robin (coordinate descent) until no axis improves, and every
/// 3-factorization of the rank count is tried, because the best cut
/// topology depends on the density's shape (a half-dense box wants more
/// ranks along the split axis than a cubic factorization provides).

#include <array>
#include <vector>

#include "geom/int3.hpp"

namespace scmd {

/// A candidate decomposition for `pgrid_dims` ranks: cuts[a] holds
/// pgrid_dims[a] + 1 fine-lattice cut indices (first 0, last res[a],
/// strictly increasing).
struct BalanceSolution {
  Int3 pgrid_dims{1, 1, 1};
  std::array<std::vector<int>, 3> cuts;
  /// Predicted max/mean cost ratio of the cuts; < 0 when no feasible
  /// solution exists (min widths cannot be met).
  double predicted_ratio = -1.0;
};

/// Max/mean per-rank cost of a tensor-product decomposition of `cost`
/// (values in [z][y][x] order over `res`).
double evaluate_cuts(const std::vector<double>& cost, const Int3& res,
                     const std::array<std::vector<int>, 3>& cuts);

/// Minimum part widths as a function of the part's own cut positions —
/// the exact halo-feasibility condition of the staged exchange
/// (HaloExchange::validate_slabs), which is local to each part: a part
/// [a, c) must be wide enough that (1) its lower neighbor's upward ghost
/// reach past cut a fits inside it and (2) its upper neighbor's downward
/// reach past cut c fits inside it.  Both reaches depend only on the cut
/// position (how far it sits from a cell boundary) and the grids' halo
/// margins, so they precompute to per-position arrays.
struct AxisWidthLimits {
  std::vector<int> at_lo;  ///< size res+1: part starting at cut u needs
                           ///< width >= at_lo[u]
  std::vector<int> at_hi;  ///< size res+1: part ending at cut u needs
                           ///< width >= at_hi[u]
};

/// One cell grid's per-axis reach parameters: `dims` cell counts and the
/// *effective* halo margins (pattern halo plus home-range root extension,
/// in cells) the exchange must cover below/above each brick.
struct GridReach {
  Int3 dims;
  Int3 halo_lo;
  Int3 halo_hi;
};

/// Exact width limits for cut positions on the fine lattice.  Each grid's
/// dims must divide the fine resolution per axis.
std::array<AxisWidthLimits, 3> width_limits_for(
    const Int3& res, const std::vector<GridReach>& grids);

/// Optimal cuts for one axis with the other two fixed (exact DP).
/// `M[s][q]` is the cost of fine slab s restricted to cross-axis rank
/// column q; a part [a, c) is admissible when
///   c - a >= max(1, limits.at_lo[a], limits.at_hi[c]).
/// Returns an empty vector when no admissible split exists.
std::vector<int> solve_axis(const std::vector<std::vector<double>>& M,
                            int num_parts, const AxisWidthLimits& limits);

/// Best decomposition of `num_ranks` ranks over the cost field:
/// enumerate factorizations, per-axis DP + coordinate descent for each,
/// return the lowest predicted ratio.
BalanceSolution solve_balanced_cuts(
    const std::vector<double>& cost, const Int3& res, int num_ranks,
    const std::array<AxisWidthLimits, 3>& limits);

}  // namespace scmd
