#include "balance/solver.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace scmd {

namespace {

std::size_t idx3(const Int3& res, int x, int y, int z) {
  return (static_cast<std::size_t>(z) * res.y + y) * res.x + x;
}

int axis_of(int a, int x, int y, int z) {
  return a == 0 ? x : a == 1 ? y : z;
}

}  // namespace

double evaluate_cuts(const std::vector<double>& cost, const Int3& res,
                     const std::array<std::vector<int>, 3>& cuts) {
  double mx = 0.0, sum = 0.0;
  long long parts = 0;
  for (std::size_t k = 0; k + 1 < cuts[2].size(); ++k) {
    for (std::size_t j = 0; j + 1 < cuts[1].size(); ++j) {
      for (std::size_t i = 0; i + 1 < cuts[0].size(); ++i) {
        double w = 0.0;
        for (int z = cuts[2][k]; z < cuts[2][k + 1]; ++z)
          for (int y = cuts[1][j]; y < cuts[1][j + 1]; ++y)
            for (int x = cuts[0][i]; x < cuts[0][i + 1]; ++x)
              w += cost[idx3(res, x, y, z)];
        mx = std::max(mx, w);
        sum += w;
        ++parts;
      }
    }
  }
  if (sum <= 0.0) return 1.0;
  return mx / (sum / static_cast<double>(parts));
}

std::array<AxisWidthLimits, 3> width_limits_for(
    const Int3& res, const std::vector<GridReach>& grids) {
  std::array<AxisWidthLimits, 3> out;
  for (int a = 0; a < 3; ++a) {
    AxisWidthLimits& lim = out[static_cast<std::size_t>(a)];
    lim.at_lo.assign(static_cast<std::size_t>(res[a]) + 1, 1);
    lim.at_hi.assign(static_cast<std::size_t>(res[a]) + 1, 1);
    for (const GridReach& g : grids) {
      SCMD_REQUIRE(g.dims[a] >= 1 && res[a] % g.dims[a] == 0,
                   "fine resolution must be a multiple of every grid "
                   "dimension");
      const int s = res[a] / g.dims[a];
      for (int u = 0; u <= res[a]; ++u) {
        // The part below cut u owns cells up to ceil(u/s); its upward
        // ghost reach past u is the straddle remainder plus the halo.
        const int up = (s - u % s) % s + g.halo_hi[a] * s;
        // The part above cut u owns cells down to floor(u/s); downward
        // reach past u is u's offset inside its cell plus the halo.
        const int down = u % s + g.halo_lo[a] * s;
        auto& lo = lim.at_lo[static_cast<std::size_t>(u)];
        auto& hi = lim.at_hi[static_cast<std::size_t>(u)];
        lo = std::max(lo, up);
        hi = std::max(hi, down);
      }
    }
  }
  return out;
}

std::vector<int> solve_axis(const std::vector<std::vector<double>>& M,
                            int num_parts, const AxisWidthLimits& limits) {
  const int C = static_cast<int>(M.size());
  const int Q = static_cast<int>(M.empty() ? 0 : M[0].size());
  SCMD_REQUIRE(num_parts >= 1, "need at least one part");
  if (C < num_parts) return {};  // axis shorter than parts: infeasible
  SCMD_REQUIRE(static_cast<int>(limits.at_lo.size()) == C + 1 &&
                   static_cast<int>(limits.at_hi.size()) == C + 1,
               "width limits must cover every cut position");
  // Prefix sums per column make part costs O(Q).
  std::vector<std::vector<double>> pre(
      static_cast<std::size_t>(C) + 1,
      std::vector<double>(static_cast<std::size_t>(Q), 0.0));
  for (int c = 0; c < C; ++c)
    for (int q = 0; q < Q; ++q)
      pre[static_cast<std::size_t>(c) + 1][static_cast<std::size_t>(q)] =
          pre[static_cast<std::size_t>(c)][static_cast<std::size_t>(q)] +
          M[static_cast<std::size_t>(c)][static_cast<std::size_t>(q)];
  auto part_cost = [&](int a, int b) {
    double best = 0.0;
    for (int q = 0; q < Q; ++q)
      best = std::max(
          best, pre[static_cast<std::size_t>(b)][static_cast<std::size_t>(q)] -
                    pre[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(q)]);
    return best;
  };
  auto min_width = [&](int a, int c) {
    return std::max({1, limits.at_lo[static_cast<std::size_t>(a)],
                     limits.at_hi[static_cast<std::size_t>(c)]});
  };

  // dp[p][c]: best achievable max part cost splitting slabs [0, c) into p
  // admissible parts.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(
      static_cast<std::size_t>(num_parts) + 1,
      std::vector<double>(static_cast<std::size_t>(C) + 1, kInf));
  std::vector<std::vector<int>> arg(
      static_cast<std::size_t>(num_parts) + 1,
      std::vector<int>(static_cast<std::size_t>(C) + 1, -1));
  dp[0][0] = 0.0;
  for (int p = 1; p <= num_parts; ++p) {
    for (int c = p; c <= C; ++c) {
      for (int a = p - 1; a < c; ++a) {
        const double prev =
            dp[static_cast<std::size_t>(p) - 1][static_cast<std::size_t>(a)];
        if (prev == kInf) continue;
        if (c - a < min_width(a, c)) continue;
        const double v = std::max(prev, part_cost(a, c));
        if (v < dp[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)]) {
          dp[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)] = v;
          arg[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)] = a;
        }
      }
    }
  }
  if (dp[static_cast<std::size_t>(num_parts)][static_cast<std::size_t>(C)] ==
      kInf)
    return {};  // no admissible split
  std::vector<int> cuts(static_cast<std::size_t>(num_parts) + 1);
  cuts[static_cast<std::size_t>(num_parts)] = C;
  for (int p = num_parts; p >= 1; --p) {
    const int c = cuts[static_cast<std::size_t>(p)];
    cuts[static_cast<std::size_t>(p) - 1] =
        arg[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)];
  }
  return cuts;
}

namespace {

/// Per-axis DP seed + coordinate-descent refinement for one factorization;
/// predicted_ratio stays < 0 when the factorization is infeasible.
BalanceSolution solve_for_pgrid(const std::vector<double>& cost,
                                const Int3& res, const Int3& pd,
                                const std::array<AxisWidthLimits, 3>& limits) {
  BalanceSolution sol;
  sol.pgrid_dims = pd;

  // Seed each axis from its 1-D marginal (one cross column).
  for (int a = 0; a < 3; ++a) {
    std::vector<std::vector<double>> M(static_cast<std::size_t>(res[a]),
                                       std::vector<double>(1, 0.0));
    for (int z = 0; z < res.z; ++z)
      for (int y = 0; y < res.y; ++y)
        for (int x = 0; x < res.x; ++x)
          M[static_cast<std::size_t>(axis_of(a, x, y, z))][0] +=
              cost[idx3(res, x, y, z)];
    auto cuts = solve_axis(M, pd[a], limits[static_cast<std::size_t>(a)]);
    if (cuts.empty()) return sol;  // infeasible
    sol.cuts[static_cast<std::size_t>(a)] = std::move(cuts);
  }

  double best = evaluate_cuts(cost, res, sol.cuts);
  for (int iter = 0; iter < 30; ++iter) {
    bool improved = false;
    for (int a = 0; a < 3; ++a) {
      // Rebuild this axis' slab-by-column matrix against the other two
      // axes' current cuts, then re-solve the axis exactly.
      const int b1 = (a + 1) % 3, b2 = (a + 2) % 3;
      const std::vector<int>& c1 = sol.cuts[static_cast<std::size_t>(b1)];
      const std::vector<int>& c2 = sol.cuts[static_cast<std::size_t>(b2)];
      const int P2 = pd[b2];
      auto part_of = [](const std::vector<int>& cuts, int v) {
        int q = 0;
        while (v >= cuts[static_cast<std::size_t>(q) + 1]) ++q;
        return q;
      };
      std::vector<int> q1(static_cast<std::size_t>(res[b1]));
      for (int v = 0; v < res[b1]; ++v)
        q1[static_cast<std::size_t>(v)] = part_of(c1, v);
      std::vector<int> q2(static_cast<std::size_t>(res[b2]));
      for (int v = 0; v < res[b2]; ++v)
        q2[static_cast<std::size_t>(v)] = part_of(c2, v);
      std::vector<std::vector<double>> M(
          static_cast<std::size_t>(res[a]),
          std::vector<double>(static_cast<std::size_t>(pd[b1]) * P2, 0.0));
      for (int z = 0; z < res.z; ++z)
        for (int y = 0; y < res.y; ++y)
          for (int x = 0; x < res.x; ++x) {
            const int sl = axis_of(a, x, y, z);
            const int o1 = axis_of(b1, x, y, z);
            const int o2 = axis_of(b2, x, y, z);
            M[static_cast<std::size_t>(sl)]
             [static_cast<std::size_t>(q1[static_cast<std::size_t>(o1)]) *
                  P2 +
              q2[static_cast<std::size_t>(o2)]] += cost[idx3(res, x, y, z)];
          }
      auto axis_cuts =
          solve_axis(M, pd[a], limits[static_cast<std::size_t>(a)]);
      if (axis_cuts.empty()) continue;
      auto trial = sol.cuts;
      trial[static_cast<std::size_t>(a)] = std::move(axis_cuts);
      const double r = evaluate_cuts(cost, res, trial);
      if (r < best - 1e-12) {
        best = r;
        sol.cuts = trial;
        improved = true;
      }
    }
    if (!improved) break;
  }
  sol.predicted_ratio = best;
  return sol;
}

}  // namespace

BalanceSolution solve_balanced_cuts(
    const std::vector<double>& cost, const Int3& res, int num_ranks,
    const std::array<AxisWidthLimits, 3>& limits) {
  SCMD_REQUIRE(static_cast<long long>(cost.size()) == res.volume(),
               "cost field does not match the fine resolution");
  SCMD_REQUIRE(num_ranks >= 1, "need at least one rank");
  BalanceSolution best;
  for (int px = 1; px <= num_ranks; ++px) {
    if (num_ranks % px) continue;
    const int rest = num_ranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py) continue;
      const int pz = rest / py;
      const BalanceSolution s =
          solve_for_pgrid(cost, res, Int3{px, py, pz}, limits);
      if (s.predicted_ratio < 0.0) continue;
      if (best.predicted_ratio < 0.0 ||
          s.predicted_ratio < best.predicted_ratio)
        best = s;
    }
  }
  return best;
}

}  // namespace scmd
