#pragma once

/// \file rebalancer.hpp
/// In-flight load balancing for the parallel rank engine.
///
/// Collective protocol, executed by every rank inside RankEngine::step()
/// between atom migration and force computation (forces are stale there
/// and fully recomputed, so only positions/velocities ever move):
///
///  1. measure: allreduce the per-rank search work accumulated since the
///     last rebalance (per-cell counters summed locally) into the
///     max/mean imbalance ratio;
///  2. trigger: every-K steps, or in auto mode when the ratio exceeds the
///     threshold, at least `min_interval` steps since the last re-cut,
///     with hysteresis against re-cutting for marginal gains;
///  3. plan: each rank apportions its per-cell costs onto the global fine
///     lattice (CostField) and sends the sparse field to rank 0, which
///     solves for cuts + process-grid factorization (solver.hpp) and
///     broadcasts the plan — every rank then holds the identical
///     decomposition;
///  4. apply: RankEngine::apply_decomposition swaps the cuts and rebuilds
///     the halo exchange, Migrator::settle routes every atom to its new
///     owner (multi-hop), and the per-cell cost counters reset.
///
/// The plan keeps the alignment process grid, so cell grids — and with
/// them the measured per-cell costs — stay comparable across re-cuts.

#include <functional>
#include <memory>

#include "geom/int3.hpp"
#include "parallel/rank_engine.hpp"

namespace scmd {

/// Rebalancer policy knobs (must be identical on every rank).
struct BalanceConfig {
  enum class Mode {
    kOff,    ///< never rebalance (measurement only)
    kEvery,  ///< unconditionally re-cut every `every` steps
    kAuto,   ///< threshold + hysteresis + minimum interval
  };
  Mode mode = Mode::kAuto;
  int every = 0;            ///< kEvery period in steps
  double threshold = 1.2;   ///< kAuto: re-cut when max/mean exceeds this
  double hysteresis = 0.05; ///< kAuto: after a re-cut, require the ratio
                            ///< to beat predicted * (1 + hysteresis)
  int min_interval = 10;    ///< kAuto: min steps between re-cuts
  Int3 fine_res{0, 0, 0};   ///< cut lattice; 0 = derive from the grids
};

/// RankBalancer implementation (see rank_engine.hpp).  One instance per
/// rank; configuration must agree across ranks.
class Rebalancer final : public RankBalancer {
 public:
  explicit Rebalancer(const BalanceConfig& config);

  void on_step(Comm& comm, RankEngine& engine) override;
  /// Tuple-cache reuse step: nothing measured, nothing re-cut.  Clears
  /// the per-step outcome so callers polling last_step() do not see a
  /// stale rebalance twice; step counters do not advance, so `every` and
  /// `min_interval` count rebuild steps (see docs/TUPLECACHE.md).
  void on_cached_step() override { info_ = BalanceStepInfo{}; }
  const BalanceStepInfo& last_step() const override { return info_; }

 private:
  double measure_ratio(Comm& comm, RankEngine& engine) const;
  void rebalance(Comm& comm, RankEngine& engine);

  BalanceConfig config_;
  BalanceStepInfo info_;
  int step_ = 0;
  int last_rebalance_step_ = 0;
  double trigger_level_ = 0.0;
};

/// Factory for ParallelRunConfig::make_balancer.
std::function<std::unique_ptr<RankBalancer>(int rank)> make_rebalancer_factory(
    const BalanceConfig& config);

}  // namespace scmd
