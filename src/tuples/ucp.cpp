#include "tuples/ucp.hpp"

#include <map>

#include "support/error.hpp"

namespace scmd {

CompiledPattern::CompiledPattern(const Pattern& psi) : n_(psi.n()) {
  SCMD_REQUIRE(!psi.empty(), "cannot compile an empty pattern");
  paths_.reserve(psi.size());
  for (const Path& p : psi) {
    CompiledPath cp;
    cp.n = p.size();
    for (int k = 0; k < p.size(); ++k) cp.v[static_cast<std::size_t>(k)] = p[k];
    cp.guard = psi.collapsed() ? p.self_reflective() : true;
    paths_.push_back(cp);
    for (const Int3& v : p.offsets()) {
      halo_.lo = Int3::max(halo_.lo, -v);
      halo_.hi = Int3::max(halo_.hi, v);
    }
  }

  // Merge the paths into a prefix trie, level by level, so children of
  // each node are contiguous in the pool.  `groups` carries, for each
  // node of the current level, the indices of the paths passing through
  // it.  Paths in a pattern are distinct sequences, so each leaf hosts
  // exactly one path (whose guard it inherits).
  struct Group {
    int node = -1;  // -1 for the virtual root
    std::vector<int> paths;
  };
  std::vector<Group> level;
  {
    Group root;
    root.paths.resize(paths_.size());
    for (std::size_t i = 0; i < paths_.size(); ++i)
      root.paths[i] = static_cast<int>(i);
    level.push_back(std::move(root));
  }
  for (int depth = 0; depth < n_; ++depth) {
    std::vector<Group> next;
    for (Group& g : level) {
      const int begin = static_cast<int>(nodes_.size());
      // Group this node's paths by their offset at `depth`, preserving
      // first-seen order for determinism.
      std::map<Int3, std::vector<int>> by_offset;
      std::vector<Int3> order;
      for (int pi : g.paths) {
        const Int3 v = paths_[static_cast<std::size_t>(pi)]
                           .v[static_cast<std::size_t>(depth)];
        auto [it, inserted] = by_offset.try_emplace(v);
        if (inserted) order.push_back(v);
        it->second.push_back(pi);
      }
      for (const Int3& v : order) {
        TrieNode node;
        node.v = v;
        std::vector<int>& members = by_offset[v];
        if (depth == n_ - 1) {
          SCMD_REQUIRE(members.size() == 1,
                       "duplicate path in pattern; patterns must be "
                       "duplicate-free");
          node.guard = paths_[static_cast<std::size_t>(members[0])].guard;
        }
        Group child;
        child.node = static_cast<int>(nodes_.size());
        child.paths = std::move(members);
        nodes_.push_back(node);
        next.push_back(std::move(child));
      }
      const int end = static_cast<int>(nodes_.size());
      if (g.node >= 0) {
        nodes_[static_cast<std::size_t>(g.node)].child_begin = begin;
        nodes_[static_cast<std::size_t>(g.node)].child_end = end;
      } else {
        root_end_ = end;
      }
    }
    level = std::move(next);
  }
}

long long force_set_size(const CellDomain& dom, const CompiledPattern& cp) {
  long long total = 0;
  const Int3 base = dom.owned_base();
  const Int3 od = dom.owned_dims();
  for (int z = 0; z < od.z; ++z) {
    for (int y = 0; y < od.y; ++y) {
      for (int x = 0; x < od.x; ++x) {
        const Int3 home = base + Int3{x, y, z};
        for (const CompiledPath& path : cp.paths()) {
          long long product = 1;
          for (int k = 0; k < path.n && product > 0; ++k) {
            // Level 0 draws from chain starts only, matching enumeration.
            const long long ci =
                dom.cell_index(home + path.v[static_cast<std::size_t>(k)]);
            const auto [first, last] =
                k == 0 ? dom.cell_start_range(ci) : dom.cell_range(ci);
            product *= (last - first);
          }
          total += product;
        }
      }
    }
  }
  return total;
}

TupleCounters count_tuples(const CellDomain& dom, const CompiledPattern& cp,
                           double rcut) {
  TupleCounters tc;
  for_each_tuple(dom, cp, rcut, [](std::span<const int>) {}, &tc);
  return tc;
}

}  // namespace scmd
