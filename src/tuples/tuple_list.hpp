#pragma once

/// \file tuple_list.hpp
/// Persistent n-tuple lists: Verlet-skin tuple caching across MD steps.
///
/// Hybrid-MD wins serial walltime comparisons by amortizing pair-list
/// construction across steps.  This subsystem extends the same skin-based
/// retention from pairs to arbitrary n-tuple patterns: one UCP enumeration
/// at the inflated cutoff rcut + skin records every accepted tuple of each
/// active n as a compact flat index array; subsequent steps *replay* the
/// recorded lists with exact-rcut filtering inside the eval kernel — no
/// cell walk, no chain search, no re-binning.
///
/// Correctness (the generalized Verlet criterion): while no atom has moved
/// farther than skin/2 since the build, two atoms within rcut now were
/// within rcut + 2*(skin/2) = rcut + skin at build time, so every chain
/// whose consecutive pairs currently pass the exact cutoff was accepted by
/// the inflated enumeration — the cached list is a superset of the exact
/// tuple set, and the replay filter recovers it exactly.
///
/// A list freezes the binned atom table of its build domain ("slots"):
/// tuple entries are slot indices, and each slot remembers the source atom
/// (local_ref) it mirrors.  On reuse steps the slot positions are
/// refreshed in place, each new value snapped to the periodic image
/// nearest the slot's previous position, so the build-time unwrapped frame
/// survives atoms wrapping around the box.  See docs/TUPLECACHE.md.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "cell/domain.hpp"
#include "geom/box.hpp"
#include "pattern/path.hpp"

namespace scmd {

/// Tuple-cache mode shared by the engines (off by default).
struct TupleCacheConfig {
  bool enabled = false;
  /// Cutoff inflation in distance units.  Lists rebuild when any atom has
  /// moved farther than skin/2 since the last build; skin = 0 degenerates
  /// to rebuild-every-step.
  double skin = 0.0;
};

/// One n's persistent tuple list plus its frozen slot table.
class TupleList {
 public:
  /// Freeze `dom`'s atom table as the slot table and clear the tuples.
  void reset(const CellDomain& dom, int n);

  /// Append recorded tuples (flat, length a multiple of n) in build
  /// order; called once per enumeration thread, in thread order.
  void append_flat(const std::vector<int>& flat);

  int n() const { return n_; }
  long long num_tuples() const {
    return n_ > 0 ? static_cast<long long>(tuples_.size()) / n_ : 0;
  }
  int num_slots() const { return static_cast<int>(pos_.size()); }

  std::span<const int> tuples() const { return tuples_; }
  std::span<const Vec3> positions() const { return pos_; }
  std::span<const int> types() const { return type_; }
  std::span<const int> refs() const { return ref_; }

  /// Refresh every slot position from its source atom.  `src(ref)` must
  /// return the source atom's current position in any periodic image; the
  /// stored value is snapped to the image nearest the slot's previous
  /// position, preserving the build-time frame.
  template <class SrcFn>
  void refresh_positions(const Box& box, SrcFn&& src) {
    for (std::size_t s = 0; s < pos_.size(); ++s) {
      pos_[s] = box.image_near(src(ref_[s]), pos_[s]);
    }
  }

 private:
  int n_ = 0;
  std::vector<int> tuples_;  ///< flat slot indices, n per tuple
  std::vector<Vec3> pos_;    ///< slot positions (build frame, refreshed)
  std::vector<int> type_;
  std::vector<int> ref_;     ///< slot -> source atom (domain local_ref)
};

/// Per-engine tuple cache: one list per active n, the retention state,
/// and the owned-position snapshot behind the displacement trigger.
class TupleListCache {
 public:
  TupleListCache() = default;
  explicit TupleListCache(const TupleCacheConfig& config)
      : config_(config) {}

  bool enabled() const { return config_.enabled; }
  double skin() const { return config_.skin; }

  /// Lists are valid (built and not invalidated).  The replay path may
  /// only run while this holds.
  bool valid() const { return valid_; }
  void invalidate() { valid_ = false; }

  /// Snapshot the owned positions as the displacement reference and mark
  /// the lists valid.  Call right after a build.
  void mark_built(std::span<const Vec3> owned_pos);

  /// Largest squared min-image displacement of any owned atom since the
  /// last build.  The caller must pass the same atom set (size-checked).
  double max_displacement2(const Box& box,
                           std::span<const Vec3> owned_pos) const;

  /// Retention test: true when the lists must be rebuilt.  In parallel
  /// runs feed max_displacement2 through an all-ranks max-reduce first so
  /// the decision is collective.
  bool exceeds_skin(double max_disp2) const {
    const double half = 0.5 * config_.skin;
    return max_disp2 > half * half;
  }

  TupleList& list(int n) { return lists_[static_cast<std::size_t>(n)]; }
  const TupleList& list(int n) const {
    return lists_[static_cast<std::size_t>(n)];
  }

 private:
  TupleCacheConfig config_;
  bool valid_ = false;
  std::array<TupleList, kMaxTupleLen + 1> lists_{};
  std::vector<Vec3> ref_pos_;  ///< owned positions at build time
};

}  // namespace scmd
