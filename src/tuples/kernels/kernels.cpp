#include "tuples/kernels/kernels.hpp"

#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace scmd::kernels {

namespace {

/// Scalar fallback, unrolled on arity: the chain filter and the eval_*
/// dispatch are fixed at compile time, so the per-tuple loop carries no
/// arity branching.  This is the exact loop the replay path ran before
/// the batched kernels existed, kept as the reference semantics.
template <int N>
double scalar_eval_fixed(const ForceField& field, const int* tuples,
                         long long count, std::span<const Vec3> pos,
                         std::span<const int> type, double rcut2, Vec3* fd,
                         std::uint64_t& evals) {
  static_assert(N >= 2 && N <= 4);
  double energy = 0.0;
  std::uint64_t ev = 0;
  for (long long i = 0; i < count; ++i) {
    const int* t = tuples + i * N;
    bool within = true;
    for (int k = 0; k + 1 < N; ++k) {
      const Vec3 d = pos[static_cast<std::size_t>(t[k + 1])] -
                     pos[static_cast<std::size_t>(t[k])];
      if (d.norm2() >= rcut2) {
        within = false;
        break;
      }
    }
    if (!within) continue;
    ++ev;
    if constexpr (N == 2) {
      energy += field.eval_pair(type[static_cast<std::size_t>(t[0])],
                                type[static_cast<std::size_t>(t[1])],
                                pos[static_cast<std::size_t>(t[0])],
                                pos[static_cast<std::size_t>(t[1])],
                                fd[t[0]], fd[t[1]]);
    } else if constexpr (N == 3) {
      energy += field.eval_triplet(type[static_cast<std::size_t>(t[0])],
                                   type[static_cast<std::size_t>(t[1])],
                                   type[static_cast<std::size_t>(t[2])],
                                   pos[static_cast<std::size_t>(t[0])],
                                   pos[static_cast<std::size_t>(t[1])],
                                   pos[static_cast<std::size_t>(t[2])],
                                   fd[t[0]], fd[t[1]], fd[t[2]]);
    } else {
      energy += field.eval_quad(type[static_cast<std::size_t>(t[0])],
                                type[static_cast<std::size_t>(t[1])],
                                type[static_cast<std::size_t>(t[2])],
                                type[static_cast<std::size_t>(t[3])],
                                pos[static_cast<std::size_t>(t[0])],
                                pos[static_cast<std::size_t>(t[1])],
                                pos[static_cast<std::size_t>(t[2])],
                                pos[static_cast<std::size_t>(t[3])],
                                fd[t[0]], fd[t[1]], fd[t[2]], fd[t[3]]);
    }
  }
  evals += ev;
  return energy;
}

/// Scalar fallback for n >= 5: generic chain kernel over eval_chain,
/// gathering positions/types into chain-ordered scratch.
double scalar_eval_chain(const ForceField& field, int n, const int* tuples,
                         long long count, std::span<const Vec3> pos,
                         std::span<const int> type, double rcut2, Vec3* fd,
                         std::uint64_t& evals) {
  double energy = 0.0;
  std::uint64_t ev = 0;
  for (long long i = 0; i < count; ++i) {
    const int* t = tuples + i * n;
    bool within = true;
    for (int k = 0; k + 1 < n; ++k) {
      const Vec3 d = pos[static_cast<std::size_t>(t[k + 1])] -
                     pos[static_cast<std::size_t>(t[k])];
      if (d.norm2() >= rcut2) {
        within = false;
        break;
      }
    }
    if (!within) continue;
    ++ev;
    std::array<int, kMaxTupleLen> ct{};
    std::array<Vec3, kMaxTupleLen> cr{};
    std::array<Vec3, kMaxTupleLen> cf{};
    for (int k = 0; k < n; ++k) {
      ct[static_cast<std::size_t>(k)] = type[static_cast<std::size_t>(t[k])];
      cr[static_cast<std::size_t>(k)] = pos[static_cast<std::size_t>(t[k])];
    }
    energy += field.eval_chain(n, ct.data(), cr.data(), cf.data());
    for (int k = 0; k < n; ++k) fd[t[k]] += cf[static_cast<std::size_t>(k)];
  }
  evals += ev;
  return energy;
}

}  // namespace

KernelMode mode_from_env() {
  const char* v = std::getenv("SCMD_KERNELS");
  if (v != nullptr && std::string(v) == "scalar") return KernelMode::kScalar;
  return KernelMode::kAuto;
}

BoundKernels::BoundKernels(const ForceField& field, KernelMode mode)
    : field_(&field) {
  if (mode == KernelMode::kScalar) return;
  fn_[2] = detail::bind_pair_kernel(field);
  fn_[3] = detail::bind_triplet_kernel(field);
}

double BoundKernels::eval(int n, const int* tuples, long long count,
                          std::span<const Vec3> pos,
                          std::span<const int> type, double rcut2, Vec3* fd,
                          std::uint64_t& evals) const {
  SCMD_REQUIRE(field_ != nullptr, "BoundKernels used before binding");
  SCMD_REQUIRE(n >= 2 && n <= kMaxTupleLen, "tuple arity out of range");
  const KernelFn& fn = fn_[static_cast<std::size_t>(n)];
  if (fn) return fn(tuples, count, pos, type, rcut2, fd, evals);
  switch (n) {
    case 2:
      return scalar_eval_fixed<2>(*field_, tuples, count, pos, type, rcut2,
                                  fd, evals);
    case 3:
      return scalar_eval_fixed<3>(*field_, tuples, count, pos, type, rcut2,
                                  fd, evals);
    case 4:
      return scalar_eval_fixed<4>(*field_, tuples, count, pos, type, rcut2,
                                  fd, evals);
    default:
      return scalar_eval_chain(*field_, n, tuples, count, pos, type, rcut2,
                               fd, evals);
  }
}

}  // namespace scmd::kernels
