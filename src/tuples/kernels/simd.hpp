#pragma once

/// \file simd.hpp
/// Portable vector-friendly primitives for the batched tuple kernels.
///
/// The kernels in this layer are written as fixed-width lane loops over
/// small stack-resident SoA blocks (`double a[kLanes]`).  Every lane is
/// independent, every loop bound is the compile-time constant kLanes, and
/// no lane branches — so the compiler auto-vectorizes them to whatever
/// the target ISA offers (SSE2 on the portable x86-64 baseline, AVX-512
/// under SCMD_NATIVE) without intrinsics or a per-ISA code path.  The
/// kernel translation units are built with -fno-math-errno so
/// std::sqrt lowers to the hardware instruction.
///
/// vexp() is the one transcendental the hot kernels need (screened
/// Coulomb, Morse, Buckingham, bond-bending screening all call exp).
/// libm's exp() is an opaque scalar call the vectorizer must serialize
/// around, so the kernels use this branch-free Cephes-style polynomial
/// instead: round-to-nearest power-of-two reduction, a (2,3) rational
/// approximant on the reduced argument, and exponent-field scaling.
/// Accuracy is ~1-2 ulp against libm over the kernels' argument range
/// (pinned by tests/tuples/kernels_test.cpp); inputs are clamped to
/// [-708.39, 709.78] so the result is always finite — out-of-range lanes
/// are masked lanes whose outputs the callers zero anyway.

#include <bit>
#include <cstdint>

namespace scmd::kernels {

/// SoA block width of the batched kernels, in doubles.  One AVX-512
/// register, two AVX registers, four SSE2 registers.
inline constexpr int kLanes = 8;

/// Tuples evaluated per dispatch block on the streaming (non-cached)
/// enumeration path.  A multiple of kLanes so block boundaries never
/// split a lane group (energy summation order stays independent of how
/// a tuple stream is chunked).
inline constexpr int kEvalBlock = 1024;

/// Branch-free exp(x) on one lane; see the file comment.  Marked
/// always_inline so a `for (l < kLanes) out[l] = vexp1(in[l])` loop is a
/// single straight-line vectorizable body.
[[gnu::always_inline]] inline double vexp1(double x) {
  // Clamp: the low end saturates to exp(-708.39) ~ 2e-308 (never NaN);
  // the high end saturates to inf when 2^n overflows the exponent
  // field.  Kernel arguments never approach the high clamp.
  x = x < -708.39 ? -708.39 : x;
  x = x > 709.78 ? 709.78 : x;

  // n = round(x / ln2) via the shift trick (round-to-nearest-even, pure
  // FP, vectorizable — unlike floor/lround which call out of line on the
  // SSE2 baseline).  |x| <= 710 keeps |z| < 2^11, far inside the trick's
  // valid range.
  constexpr double kLog2E = 1.4426950408889634074;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  const double zs = x * kLog2E + kShift;
  const double n = zs - kShift;

  // r = x - n*ln2 in two pieces, |r| <= ln2/2 + 1 ulp.
  constexpr double kLn2Hi = 6.93145751953125e-1;
  constexpr double kLn2Lo = 1.42860682030941723212e-6;
  double r = x - n * kLn2Hi;
  r -= n * kLn2Lo;

  // Cephes expml-style (2,3) rational: exp(r) = 1 + 2 pr / (q - pr).
  constexpr double kP0 = 1.26177193074810590878e-4;
  constexpr double kP1 = 3.02994407707441961300e-2;
  constexpr double kP2 = 9.99999999999999999910e-1;
  constexpr double kQ0 = 3.00198505138664455042e-6;
  constexpr double kQ1 = 2.52448340349684104192e-3;
  constexpr double kQ2 = 2.27265548208155028766e-1;
  constexpr double kQ3 = 2.00000000000000000005e0;
  const double rr = r * r;
  const double pr = r * (kP2 + rr * (kP1 + rr * kP0));
  const double q = kQ3 + rr * (kQ2 + rr * (kQ1 + rr * kQ0));
  const double e = 1.0 + 2.0 * pr / (q - pr);

  // Scale by 2^n through the exponent field.  The shift trick leaves zs
  // integer-valued in [2^52, 2^53), so its mantissa bits hold 2^51 + n
  // directly; adding the bias and shifting into the exponent field needs
  // only int64 add + shift (which SSE2 has packed forms of — a
  // double->int64 conversion here would block vectorization on the
  // portable baseline).  Bits above the low 12 of the sum fall off the
  // shift; 2^51 mod 2^12 = 0, so the exponent lands at (n + 1023).
  const double scale =
      std::bit_cast<double>((std::bit_cast<std::uint64_t>(zs) + 1023u) << 52);
  return e * scale;
}

/// x^e for a small non-negative integer exponent, by squaring.  Uniform
/// e across lanes keeps the loop body identical lane to lane.  Matches
/// std::pow(x, double(e)) to a few ulp.
[[gnu::always_inline]] inline double powi(double x, int e) {
  // Fully unrolled squaring chain for e <= 31: five selects on the
  // exponent bits instead of a data-dependent loop, so a lane loop
  // around this stays branch-free (a while-loop here would make the
  // caller's loop unvectorizable even with a lane-uniform e).  The
  // multiply sequence matches the loop form exactly — the extra
  // multiplies by 1.0 are bit-exact no-ops.
  const auto u = static_cast<unsigned>(e);
  double acc = (u & 1u) != 0u ? x : 1.0;
  double base = x * x;
  acc *= (u & 2u) != 0u ? base : 1.0;
  base *= base;
  acc *= (u & 4u) != 0u ? base : 1.0;
  base *= base;
  acc *= (u & 8u) != 0u ? base : 1.0;
  base *= base;
  acc *= (u & 16u) != 0u ? base : 1.0;
  return acc;
}

/// True when `v` is a small non-negative integer (usable with powi).
inline bool small_integer(double v, int max = 31) {
  const auto i = static_cast<int>(v);
  return v >= 0.0 && v <= static_cast<double>(max) &&
         static_cast<double>(i) == v;
}

}  // namespace scmd::kernels
