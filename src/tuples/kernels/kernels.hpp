#pragma once

/// \file kernels.hpp
/// Batched, arity-specialized tuple evaluation kernels (docs/KERNELS.md).
///
/// The UCP enumeration, tuple-cache build, and cached replay paths all
/// reduce to the same inner operation: given a flat array of n-tuples
/// (slot indices into a position/type table), apply the exact-rcut chain
/// filter and evaluate the field's n-body term on every passing tuple,
/// accumulating forces and summing energy.  BoundKernels is the single
/// dispatch point for that operation.
///
/// At bind time the field is matched against the potentials this layer
/// specializes (pairs: LJ / Morse / BKS / Vashishta / SW; triplets: the
/// shared screened bond-bending term of Vashishta and SW).  A match
/// installs a batched SoA kernel that processes tuples in kLanes-wide
/// blocks with branch-free masking (see simd.hpp); anything else — and
/// every arity without a specialized kernel — falls back to a scalar
/// loop over the field's virtual eval_* methods, itself unrolled on
/// arity via template<int N>.  KernelMode::kScalar forces the fallback
/// everywhere (parity tests, benchmarks, SCMD_KERNELS=scalar).
///
/// Numerical contract: a kernel reproduces the scalar term formulas
/// expression for expression; the only deviations are the vectorizable
/// exp replacing libm's (~1 ulp) and integer powers by squaring
/// replacing std::pow (~few ulp).  Energy is summed in tuple order
/// within each lane block and block order across the stream, and forces
/// are scattered in tuple order, so results are deterministic for a
/// fixed tuple stream.  The mask criterion is bitwise the enumerator's
/// acceptance test (consecutive deltas, norm2 < rcut²), so eval counts
/// match the scalar path exactly.

#include <array>
#include <cstdint>
#include <functional>
#include <span>

#include "geom/vec3.hpp"
#include "pattern/path.hpp"
#include "potentials/force_field.hpp"

namespace scmd::kernels {

/// Kernel selection policy.
enum class KernelMode {
  kAuto,    ///< batched kernels where bound, scalar elsewhere
  kScalar,  ///< scalar fallback everywhere
};

/// Mode from the SCMD_KERNELS environment variable ("scalar" forces the
/// fallback; anything else, or unset, is kAuto).
KernelMode mode_from_env();

/// One bound n-term evaluator: filter + evaluate `count` tuples.
/// Contract shared by every kernel and the scalar fallback:
///  - `tuples` is `count * n` slot indices in chain order;
///  - a tuple passes iff every consecutive pair is closer than rcut
///    (`rcut2` is the *exact* squared cutoff, never the inflated one);
///  - each passing tuple bumps `evals`, adds its forces into `fd`
///    (indexed like `pos`), and contributes to the returned energy.
using KernelFn =
    std::function<double(const int* tuples, long long count,
                         std::span<const Vec3> pos, std::span<const int> type,
                         double rcut2, Vec3* fd, std::uint64_t& evals)>;

/// Per-field kernel table resolved once at strategy construction.
/// Immutable after binding, so one instance is safely shared across
/// rank threads.
class BoundKernels {
 public:
  BoundKernels() = default;

  /// Resolve kernels for `field`.  The field must outlive this object.
  explicit BoundKernels(const ForceField& field,
                        KernelMode mode = mode_from_env());

  const ForceField* field() const { return field_; }

  /// True when arity n dispatches to a batched kernel (not the scalar
  /// fallback).
  bool specialized(int n) const {
    return n >= 2 && n <= kMaxTupleLen &&
           static_cast<bool>(fn_[static_cast<std::size_t>(n)]);
  }

  /// Filter + evaluate (see KernelFn); requires a bound field.
  double eval(int n, const int* tuples, long long count,
              std::span<const Vec3> pos, std::span<const int> type,
              double rcut2, Vec3* fd, std::uint64_t& evals) const;

 private:
  const ForceField* field_ = nullptr;
  std::array<KernelFn, kMaxTupleLen + 1> fn_{};
};

namespace detail {

/// Batched pair kernel for `field`, or an empty function when the field
/// is not a specialized pair potential.  Implemented in pair_kernels.cpp.
KernelFn bind_pair_kernel(const ForceField& field);

/// Batched triplet kernel (screened bond bending), or empty.
/// Implemented in triplet_kernels.cpp.
KernelFn bind_triplet_kernel(const ForceField& field);

}  // namespace detail

}  // namespace scmd::kernels
