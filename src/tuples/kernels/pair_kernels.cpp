// Batched SoA pair kernels (docs/KERNELS.md).  Each Op reproduces one
// potential's scalar eval_pair expression for expression — same
// association, same shift handling — with libm exp replaced by vexp1
// and std::pow by powi (see simd.hpp for the accuracy contract).  This
// translation unit is compiled with -fno-math-errno so std::sqrt lowers
// to the hardware instruction inside the lane loops.
//
// Loop structure per kLanes block: scalar gather of indices, deltas and
// per-type-pair parameters into stack SoA arrays; one branch-free
// arithmetic loop (the auto-vectorized part) producing per-lane energy
// and f_over_r; a scalar masked scatter that counts evals, sums energy
// in lane order, and accumulates ±f into the force array.  Masked lanes
// (cutoff-failing or block padding) may compute non-finite
// intermediates — their outputs are discarded by the mask, never
// scattered.

#include <algorithm>
#include <cmath>
#include <vector>

#include "potentials/bks.hpp"
#include "potentials/lj.hpp"
#include "potentials/morse.hpp"
#include "potentials/stillinger_weber.hpp"
#include "potentials/vashishta.hpp"
#include "tuples/kernels/kernels.hpp"
#include "tuples/kernels/simd.hpp"

namespace scmd::kernels::detail {

namespace {

/// Shared pair skeleton.  `op(ia, ja, r2, type, e, fr)` fills per-lane
/// energy and f_over_r (force = delta * f_over_r, added to i, subtracted
/// from j — the eval_pair convention) for ALL lanes, branch-free.
template <class Op>
double pair_loop(const Op& op, const int* tuples, long long count,
                 std::span<const Vec3> pos, std::span<const int> type,
                 double rcut2, Vec3* fd, std::uint64_t& evals) {
  double energy = 0.0;
  std::uint64_t ev = 0;
  for (long long base = 0; base < count; base += kLanes) {
    const int m = static_cast<int>(std::min<long long>(kLanes, count - base));
    alignas(64) int ia[kLanes];
    alignas(64) int ja[kLanes];
    alignas(64) double dx[kLanes];
    alignas(64) double dy[kLanes];
    alignas(64) double dz[kLanes];
    alignas(64) double r2[kLanes];
    alignas(64) double e[kLanes];
    alignas(64) double fr[kLanes];
    bool pass[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      // Padding lanes replicate the last tuple and are masked below.
      const long long i = base + (l < m ? l : m - 1);
      ia[l] = tuples[2 * i];
      ja[l] = tuples[2 * i + 1];
    }
    for (int l = 0; l < kLanes; ++l) {
      const Vec3 d = pos[static_cast<std::size_t>(ia[l])] -
                     pos[static_cast<std::size_t>(ja[l])];
      dx[l] = d.x;
      dy[l] = d.y;
      dz[l] = d.z;
    }
    for (int l = 0; l < kLanes; ++l) {
      r2[l] = dx[l] * dx[l] + dy[l] * dy[l] + dz[l] * dz[l];
    }
    for (int l = 0; l < kLanes; ++l) pass[l] = l < m && r2[l] < rcut2;
    op(ia, ja, r2, type, e, fr);
    for (int l = 0; l < kLanes; ++l) {
      if (!pass[l]) continue;
      ++ev;
      energy += e[l];
      const Vec3 f{dx[l] * fr[l], dy[l] * fr[l], dz[l] * fr[l]};
      fd[ia[l]] += f;
      fd[ja[l]] -= f;
    }
  }
  evals += ev;
  return energy;
}

struct LjOp {
  double sigma2, eps4, eps24, shift;

  explicit LjOp(const LennardJones& f) {
    const LjParams& p = f.params();
    sigma2 = p.sigma * p.sigma;
    eps4 = 4.0 * p.epsilon;
    eps24 = 24.0 * p.epsilon;
    // Same expression as the LennardJones ctor, so the shift is
    // bit-identical to the scalar path's.
    const double sr6 = std::pow(p.sigma / p.rcut, 6);
    shift = 4.0 * p.epsilon * (sr6 * sr6 - sr6);
  }

  void operator()(const int*, const int*, const double* r2,
                  std::span<const int>, double* e, double* fr) const {
    for (int l = 0; l < kLanes; ++l) {
      const double inv_r2 = 1.0 / r2[l];
      const double s2 = sigma2 * inv_r2;
      const double s6 = s2 * s2 * s2;
      const double s12 = s6 * s6;
      e[l] = eps4 * (s12 - s6) - shift;
      fr[l] = eps24 * (2.0 * s12 - s6) * inv_r2;
    }
  }
};

struct MorseOp {
  double De, na, r0, c2, shift;

  explicit MorseOp(const Morse& f) {
    const MorseParams& p = f.params();
    De = p.De;
    na = -p.a;
    r0 = p.r0;
    c2 = 2.0 * p.De * p.a;
    const double x = 1.0 - std::exp(-p.a * (p.rcut - p.r0));
    shift = p.De * (x * x - 1.0);
  }

  void operator()(const int*, const int*, const double* r2,
                  std::span<const int>, double* e, double* fr) const {
    for (int l = 0; l < kLanes; ++l) {
      const double r = std::sqrt(r2[l]);
      const double ex = vexp1(na * (r - r0));
      const double x = 1.0 - ex;
      e[l] = De * (x * x - 1.0) - shift;
      const double dvdr = c2 * ex * x;
      fr[l] = -dvdr / r;
    }
  }
};

struct BksOp {
  int num_types;
  double rcut;
  std::vector<BksSiO2::PairParams> tbl;  // dense [ti * num_types + tj]

  explicit BksOp(const BksSiO2& f) : num_types(f.num_types()),
                                     rcut(f.rcut(2)) {
    tbl.resize(static_cast<std::size_t>(num_types) * num_types);
    for (int a = 0; a < num_types; ++a) {
      for (int b = 0; b < num_types; ++b) {
        tbl[static_cast<std::size_t>(a) * num_types + b] = f.pair_params(a, b);
      }
    }
  }

  void operator()(const int* ia, const int* ja, const double* r2,
                  std::span<const int> type, double* e, double* fr) const {
    alignas(64) double qq[kLanes];
    alignas(64) double A[kLanes];
    alignas(64) double b[kLanes];
    alignas(64) double C[kLanes];
    alignas(64) double vs[kLanes];
    alignas(64) double fs[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      const int ti = type[static_cast<std::size_t>(ia[l])];
      const int tj = type[static_cast<std::size_t>(ja[l])];
      const BksSiO2::PairParams& p =
          tbl[static_cast<std::size_t>(ti) * num_types + tj];
      qq[l] = p.qq_e2;
      A[l] = p.A;
      b[l] = p.b;
      C[l] = p.C;
      vs[l] = p.v_shift;
      fs[l] = p.f_shift;
    }
    for (int l = 0; l < kLanes; ++l) {
      const double r = std::sqrt(r2[l]);
      const double inv_r = 1.0 / r;
      const double coul = qq[l] * inv_r;
      const double rep = A[l] * vexp1(-b[l] * r);
      const double inv_r3 = inv_r * inv_r * inv_r;
      const double disp = -C[l] * inv_r3 * inv_r3;
      const double v = coul + rep + disp;
      const double dv = -coul * inv_r - b[l] * rep - 6.0 * disp * inv_r;
      e[l] = v - vs[l] - (r - rcut) * fs[l];
      const double dvdr = dv - fs[l];
      fr[l] = -dvdr * inv_r;
    }
  }
};

struct VashishtaOp {
  int num_types;
  double rcut;
  int eta_min;  // table etas are {eta_min, eta_min+2, eta_min+4}
  std::vector<VashishtaSiO2::PairParams> tbl;

  VashishtaOp(const VashishtaSiO2& f, int emin)
      : num_types(f.num_types()), rcut(f.rcut(2)), eta_min(emin) {
    tbl.resize(static_cast<std::size_t>(num_types) * num_types);
    for (int a = 0; a < num_types; ++a) {
      for (int b = 0; b < num_types; ++b) {
        tbl[static_cast<std::size_t>(a) * num_types + b] = f.pair_params(a, b);
      }
    }
  }

  void operator()(const int* ia, const int* ja, const double* r2,
                  std::span<const int> type, double* e, double* fr) const {
    alignas(64) double eta[kLanes];
    alignas(64) double H[kLanes];
    alignas(64) double zz[kLanes];
    alignas(64) double D[kLanes];
    alignas(64) double vs[kLanes];
    alignas(64) double fs[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      const int ti = type[static_cast<std::size_t>(ia[l])];
      const int tj = type[static_cast<std::size_t>(ja[l])];
      const VashishtaSiO2::PairParams& p =
          tbl[static_cast<std::size_t>(ti) * num_types + tj];
      eta[l] = p.eta;
      H[l] = p.H;
      zz[l] = p.zz_e2;
      D[l] = p.D;
      vs[l] = p.v_shift;
      fs[l] = p.f_shift;
    }
    const double e_lo = static_cast<double>(eta_min);
    const double e_mid = static_cast<double>(eta_min + 2);
    // Screening lengths as negated reciprocals so the loop multiplies
    // instead of dividing (GCC won't fold x / c into x * (1/c) itself —
    // ~1 ulp reassociation, inside the parity budget).
    constexpr double kNegInvL1 = -1.0 / VashishtaSiO2::kLambda1;
    constexpr double kNegInvL4 = -1.0 / VashishtaSiO2::kLambda4;
    for (int l = 0; l < kLanes; ++l) {
      const double r = std::sqrt(r2[l]);
      const double inv_r = 1.0 / r;
      // inv_r^eta with a per-lane exponent from {lo, lo+2, lo+4}: one
      // uniform powi plus an even-step correction selected per lane.
      const double x_lo = powi(inv_r, eta_min);
      const double x2 = inv_r * inv_r;
      const double x4 = x2 * x2;
      const double pw =
          x_lo * (eta[l] == e_lo ? 1.0 : (eta[l] == e_mid ? x2 : x4));
      const double steric = H[l] * pw;
      const double coul = zz[l] * inv_r * vexp1(r * kNegInvL1);
      const double inv_r4 = inv_r * inv_r * inv_r * inv_r;
      const double dip = -D[l] * inv_r4 * vexp1(r * kNegInvL4);
      const double v = steric + coul + dip;
      const double dv = -eta[l] * steric * inv_r +
                        coul * (-inv_r + kNegInvL1) +
                        dip * (-4.0 * inv_r + kNegInvL4);
      e[l] = v - vs[l] - (r - rcut) * fs[l];
      const double dvdr = dv - fs[l];
      fr[l] = -dvdr * inv_r;
    }
  }
};

/// SW repulsive pair with compile-time exponents.  Runtime exponents
/// would make the powi bit-selects scalar-conditioned, which the
/// vectorizer rejects; the bind below instantiates the standard (p=4,
/// q=0) form and leaves exotic parameterizations to the scalar path.
template <int P, int Q>
struct SwPairOp {
  double sigma, rc, B, Aeps, npB, qv;

  explicit SwPairOp(const StillingerWeber& f) {
    const SwParams& p = f.params();
    sigma = p.sigma;
    rc = f.rc();
    B = p.B;
    Aeps = p.A * p.epsilon;
    npB = -p.p * p.B;
    qv = p.q;
  }

  void operator()(const int*, const int*, const double* r2,
                  std::span<const int>, double* e, double* fr) const {
    for (int l = 0; l < kLanes; ++l) {
      const double r = std::sqrt(r2[l]);
      const double inv_r = 1.0 / r;
      const double inv_rrc = 1.0 / (r - rc);
      const double sr = sigma * inv_r;
      const double srp = powi(sr, P);
      const double srq = Q == 0 ? 1.0 : powi(sr, Q);
      const double screen = vexp1(sigma * inv_rrc);
      const double core = B * srp - srq;
      e[l] = Aeps * core * screen;
      const double dvdr =
          Aeps * screen *
          ((npB * srp + qv * srq) * inv_r - core * sigma * inv_rrc * inv_rrc);
      fr[l] = -dvdr * inv_r;
    }
  }
};

}  // namespace

KernelFn bind_pair_kernel(const ForceField& field) {
  if (const auto* lj = dynamic_cast<const LennardJones*>(&field)) {
    return [op = LjOp(*lj)](const int* tuples, long long count,
                            std::span<const Vec3> pos,
                            std::span<const int> type, double rcut2, Vec3* fd,
                            std::uint64_t& evals) {
      return pair_loop(op, tuples, count, pos, type, rcut2, fd, evals);
    };
  }
  if (const auto* morse = dynamic_cast<const Morse*>(&field)) {
    return [op = MorseOp(*morse)](const int* tuples, long long count,
                                  std::span<const Vec3> pos,
                                  std::span<const int> type, double rcut2,
                                  Vec3* fd, std::uint64_t& evals) {
      return pair_loop(op, tuples, count, pos, type, rcut2, fd, evals);
    };
  }
  if (const auto* bks = dynamic_cast<const BksSiO2*>(&field)) {
    return [op = BksOp(*bks)](const int* tuples, long long count,
                              std::span<const Vec3> pos,
                              std::span<const int> type, double rcut2,
                              Vec3* fd, std::uint64_t& evals) {
      return pair_loop(op, tuples, count, pos, type, rcut2, fd, evals);
    };
  }
  if (const auto* vp = dynamic_cast<const VashishtaSiO2*>(&field)) {
    // The per-lane exponent select needs the steric exponents to be the
    // small integers {emin, emin+2, emin+4} (the 1990 SiO2 set is
    // {7, 9, 11}); anything else keeps the scalar path.
    int emin = 0, emax = 0;
    bool ok = true;
    for (int a = 0; a < vp->num_types() && ok; ++a) {
      for (int b = 0; b < vp->num_types() && ok; ++b) {
        const double eta = vp->pair_params(a, b).eta;
        if (!small_integer(eta)) {
          ok = false;
          break;
        }
        const int ei = static_cast<int>(eta);
        if (a == 0 && b == 0) {
          emin = emax = ei;
        } else {
          emin = std::min(emin, ei);
          emax = std::max(emax, ei);
        }
      }
    }
    if (ok) {
      for (int a = 0; a < vp->num_types() && ok; ++a) {
        for (int b = 0; b < vp->num_types() && ok; ++b) {
          const int ei = static_cast<int>(vp->pair_params(a, b).eta);
          ok = ei == emin || ei == emin + 2 || ei == emin + 4;
        }
      }
      ok = ok && emax <= emin + 4;
    }
    if (!ok) return {};
    return [op = VashishtaOp(*vp, emin)](const int* tuples, long long count,
                                         std::span<const Vec3> pos,
                                         std::span<const int> type,
                                         double rcut2, Vec3* fd,
                                         std::uint64_t& evals) {
      return pair_loop(op, tuples, count, pos, type, rcut2, fd, evals);
    };
  }
  if (const auto* sw = dynamic_cast<const StillingerWeber*>(&field)) {
    // Only the standard exponents get a batched instantiation (see
    // SwPairOp); anything else keeps the scalar path.
    if (sw->params().p != 4.0 || sw->params().q != 0.0) return {};
    return [op = SwPairOp<4, 0>(*sw)](const int* tuples, long long count,
                                      std::span<const Vec3> pos,
                                      std::span<const int> type, double rcut2,
                                      Vec3* fd, std::uint64_t& evals) {
      return pair_loop(op, tuples, count, pos, type, rcut2, fd, evals);
    };
  }
  return {};
}

}  // namespace scmd::kernels::detail
