// Batched SoA triplet kernel (docs/KERNELS.md): the screened
// bond-bending term shared by VashishtaSiO2 and StillingerWeber,
// reproducing eval_bond_bending (potentials/bond_bending.hpp)
// expression for expression with vexp1 in place of libm exp.
//
// Channel selection — eval_triplet's type-based dispatch (including the
// zero-strength combinations) — becomes a dense per-type-triple LUT
// gathered per lane.  Lanes whose geometry passes the chain filter but
// whose channel is inert (B == 0, or a leg at/beyond the screening
// cutoff r0) still count as evals, same as the scalar path, and
// contribute exactly zero.
//
// The screening cutoff r0 is well inside the three-body rcut, so on a
// skin-inflated replay stream only ~10-15% of tuples reach the
// transcendental math (silica: ~10% of the stream).  Running the full
// sqrt/div/exp block on every lane therefore loses to the scalar
// early-out path.  Instead the cheap geometry/LUT pass classifies each
// lane, and active lanes are compacted into a pending SoA block that
// runs the expensive loop only when full (plus one masked flush at the
// end of the stream).  Compaction preserves stream order among active
// tuples, and inert lanes contribute exactly +0.0, so energy totals and
// per-atom force sums are bit-identical to the uncompacted kernel.
// Padding lanes in the final flush replicate a real active lane and are
// dropped before any scatter.  Compiled with -fno-math-errno for
// vectorizable sqrt.

#include <algorithm>
#include <cmath>
#include <vector>

#include "potentials/bond_bending.hpp"
#include "potentials/stillinger_weber.hpp"
#include "potentials/vashishta.hpp"
#include "tuples/kernels/kernels.hpp"
#include "tuples/kernels/simd.hpp"

namespace scmd::kernels::detail {

namespace {

struct BendOp {
  int num_types = 0;
  /// Channel params by chain types: [(t0 * T + t1) * T + t2], center t1.
  /// Combinations without a channel hold the default (B = 0).
  std::vector<BondBendingParams> lut;

  /// Pending block of compacted active tuples awaiting the expensive
  /// loop.  Stack-resident; lives one eval() call.
  struct Pending {
    alignas(64) int aa[kLanes];
    alignas(64) int cc[kLanes];
    alignas(64) int bb[kLanes];
    alignas(64) double ux[kLanes];
    alignas(64) double uy[kLanes];
    alignas(64) double uz[kLanes];
    alignas(64) double vx[kLanes];
    alignas(64) double vy[kLanes];
    alignas(64) double vz[kLanes];
    alignas(64) double ru2[kLanes];
    alignas(64) double rv2[kLanes];
    alignas(64) double B[kLanes];
    alignas(64) double cos0[kLanes];
    alignas(64) double C[kLanes];
    alignas(64) double gam[kLanes];
    alignas(64) double r0[kLanes];
  };

  /// Expensive loop over `m` packed active lanes: full bond-bending
  /// energy/gradient, scattered in packed (= stream) order.  Lanes
  /// [m, kLanes) are padding (copies of lane m-1) whose outputs are
  /// dropped.  Every packed lane has a live channel (B != 0) and both
  /// legs inside the screening cutoff, so no inert select is needed.
  void flush(const Pending& p, int m, double& energy, Vec3* fd) const {
    alignas(64) double el[kLanes];
    alignas(64) double gax[kLanes];
    alignas(64) double gay[kLanes];
    alignas(64) double gaz[kLanes];
    alignas(64) double gbx[kLanes];
    alignas(64) double gby[kLanes];
    alignas(64) double gbz[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      // One reciprocal per distinct denominator, multiplied through —
      // the straight / forms cost ~12 divisions per lane and dominate
      // the vectorized loop.  Each substitution is a ~1 ulp
      // reassociation of the scalar expression, inside the parity
      // budget (docs/KERNELS.md).
      const double ru = std::sqrt(p.ru2[l]);
      const double rv = std::sqrt(p.rv2[l]);
      const double inv_ru = 1.0 / ru;
      const double inv_rv = 1.0 / rv;
      const double du = ru - p.r0[l];
      const double dw = rv - p.r0[l];
      const double inv_du = 1.0 / du;
      const double inv_dw = 1.0 / dw;
      const double fu = vexp1(p.gam[l] * inv_du);
      const double fv = vexp1(p.gam[l] * inv_dw);
      const double dfu = -p.gam[l] * inv_du * inv_du * fu;
      const double dfv = -p.gam[l] * inv_dw * inv_dw * fv;
      const double inv_rurv = inv_ru * inv_rv;
      const double cos_t =
          (p.ux[l] * p.vx[l] + p.uy[l] * p.vy[l] + p.uz[l] * p.vz[l]) *
          inv_rurv;
      const double delta = cos_t - p.cos0[l];
      const double denom = 1.0 + p.C[l] * delta * delta;
      const double inv_denom = 1.0 / denom;
      const double g = delta * delta * inv_denom;
      const double dg = 2.0 * delta * inv_denom * inv_denom;
      const double e = p.B[l] * fu * fv * g;
      const double cu = cos_t * inv_ru * inv_ru;
      const double cv = cos_t * inv_rv * inv_rv;
      const double ca = p.B[l] * dfu * fv * g * inv_ru;
      const double cb = p.B[l] * fu * dfv * g * inv_rv;
      const double cg = p.B[l] * fu * fv * dg;
      // grad_a = ca*u + cg*dcos_da, dcos_da = v*inv_rurv − u*cu
      el[l] = e;
      gax[l] = ca * p.ux[l] + cg * (p.vx[l] * inv_rurv - p.ux[l] * cu);
      gay[l] = ca * p.uy[l] + cg * (p.vy[l] * inv_rurv - p.uy[l] * cu);
      gaz[l] = ca * p.uz[l] + cg * (p.vz[l] * inv_rurv - p.uz[l] * cu);
      gbx[l] = cb * p.vx[l] + cg * (p.ux[l] * inv_rurv - p.vx[l] * cv);
      gby[l] = cb * p.vy[l] + cg * (p.uy[l] * inv_rurv - p.vy[l] * cv);
      gbz[l] = cb * p.vz[l] + cg * (p.uz[l] * inv_rurv - p.vz[l] * cv);
    }
    for (int l = 0; l < m; ++l) {
      energy += el[l];
      Vec3& fa = fd[p.aa[l]];
      Vec3& fb = fd[p.bb[l]];
      Vec3& fc = fd[p.cc[l]];
      fa.x -= gax[l];
      fa.y -= gay[l];
      fa.z -= gaz[l];
      fb.x -= gbx[l];
      fb.y -= gby[l];
      fb.z -= gbz[l];
      fc.x += gax[l] + gbx[l];
      fc.y += gay[l] + gby[l];
      fc.z += gaz[l] + gbz[l];
    }
  }

  double eval(const int* tuples, long long count, std::span<const Vec3> pos,
              std::span<const int> type, double rcut2, Vec3* fd,
              std::uint64_t& evals) const {
    double energy = 0.0;
    std::uint64_t ev = 0;
    const int T = num_types;
    Pending pend;
    int np = 0;
    // Classification is one scalar pass: the position loads are
    // index-gathers the portable baseline cannot vectorize anyway, and
    // keeping u/v in registers avoids staging SoA blocks that ~90% of
    // tuples never use.
    for (long long i = 0; i < count; ++i) {
      // Chain (t0, t1, t2): t1 is the angle center (apex).
      const int a = tuples[3 * i];
      const int c = tuples[3 * i + 1];
      const int b = tuples[3 * i + 2];
      const Vec3& rc_ = pos[static_cast<std::size_t>(c)];
      const Vec3 u = pos[static_cast<std::size_t>(a)] - rc_;
      const Vec3 v = pos[static_cast<std::size_t>(b)] - rc_;
      // u = -(leg c-a), v = leg b-c up to the chain direction; squares
      // match the enumerator's leg norms bitwise either way.
      const double ru2 = u.norm2();
      const double rv2 = v.norm2();
      if (!(ru2 < rcut2 && rv2 < rcut2)) continue;
      ++ev;
      const BondBendingParams& p =
          lut[static_cast<std::size_t>((type[static_cast<std::size_t>(a)] * T +
                                        type[static_cast<std::size_t>(c)]) *
                                           T +
                                       type[static_cast<std::size_t>(b)])];
      // Inert tuples (no channel, or a leg at/past the screening
      // cutoff r0) contribute exactly zero — the scalar early-outs.
      // r < r0 is compared as squares to avoid a sqrt on the ~90%
      // inert majority; rounding can flip the verdict only within an
      // ulp of the boundary, where the screening factor exp(γ/(r−r0))
      // underflows to zero and the contribution vanishes either way.
      if (p.B == 0.0 || !(ru2 < p.r0 * p.r0) || !(rv2 < p.r0 * p.r0)) {
        continue;
      }
      pend.aa[np] = a;
      pend.cc[np] = c;
      pend.bb[np] = b;
      pend.ux[np] = u.x;
      pend.uy[np] = u.y;
      pend.uz[np] = u.z;
      pend.vx[np] = v.x;
      pend.vy[np] = v.y;
      pend.vz[np] = v.z;
      pend.ru2[np] = ru2;
      pend.rv2[np] = rv2;
      pend.B[np] = p.B;
      pend.cos0[np] = p.cos_theta0;
      pend.C[np] = p.C;
      pend.gam[np] = p.gamma;
      pend.r0[np] = p.r0;
      if (++np == kLanes) {
        flush(pend, kLanes, energy, fd);
        np = 0;
      }
    }
    if (np > 0) {
      // Pad with copies of the last active lane; flush drops them.
      for (int l = np; l < kLanes; ++l) {
        pend.aa[l] = pend.aa[np - 1];
        pend.cc[l] = pend.cc[np - 1];
        pend.bb[l] = pend.bb[np - 1];
        pend.ux[l] = pend.ux[np - 1];
        pend.uy[l] = pend.uy[np - 1];
        pend.uz[l] = pend.uz[np - 1];
        pend.vx[l] = pend.vx[np - 1];
        pend.vy[l] = pend.vy[np - 1];
        pend.vz[l] = pend.vz[np - 1];
        pend.ru2[l] = pend.ru2[np - 1];
        pend.rv2[l] = pend.rv2[np - 1];
        pend.B[l] = pend.B[np - 1];
        pend.cos0[l] = pend.cos0[np - 1];
        pend.C[l] = pend.C[np - 1];
        pend.gam[l] = pend.gam[np - 1];
        pend.r0[l] = pend.r0[np - 1];
      }
      flush(pend, np, energy, fd);
    }
    evals += ev;
    return energy;
  }
};

}  // namespace

KernelFn bind_triplet_kernel(const ForceField& field) {
  BendOp op;
  if (const auto* vp = dynamic_cast<const VashishtaSiO2*>(&field)) {
    op.num_types = vp->num_types();
    const int T = op.num_types;
    op.lut.assign(static_cast<std::size_t>(T) * T * T, BondBendingParams{});
    for (int i = 0; i < T; ++i) {
      for (int j = 0; j < T; ++j) {
        for (int k = 0; k < T; ++k) {
          const BondBendingParams* p = vp->bend_channel(i, j, k);
          if (p != nullptr) {
            op.lut[static_cast<std::size_t>((i * T + j) * T + k)] = *p;
          }
        }
      }
    }
  } else if (const auto* sw = dynamic_cast<const StillingerWeber*>(&field)) {
    op.num_types = 1;
    op.lut.assign(1, sw->bend());
  } else {
    return {};
  }
  return [op = std::move(op)](const int* tuples, long long count,
                              std::span<const Vec3> pos,
                              std::span<const int> type, double rcut2,
                              Vec3* fd, std::uint64_t& evals) {
    return op.eval(tuples, count, pos, type, rcut2, fd, evals);
  };
}

}  // namespace scmd::kernels::detail
