#include "tuples/tuple_list.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace scmd {

void TupleList::reset(const CellDomain& dom, int n) {
  SCMD_REQUIRE(n >= 2 && n <= kMaxTupleLen, "tuple length out of range");
  n_ = n;
  tuples_.clear();
  const auto pos = dom.positions();
  const auto type = dom.types();
  const auto ref = dom.local_refs();
  pos_.assign(pos.begin(), pos.end());
  type_.assign(type.begin(), type.end());
  ref_.assign(ref.begin(), ref.end());
}

void TupleList::append_flat(const std::vector<int>& flat) {
  SCMD_REQUIRE(n_ > 0 && flat.size() % static_cast<std::size_t>(n_) == 0,
               "flat tuple block length must be a multiple of n");
  tuples_.insert(tuples_.end(), flat.begin(), flat.end());
}

void TupleListCache::mark_built(std::span<const Vec3> owned_pos) {
  ref_pos_.assign(owned_pos.begin(), owned_pos.end());
  valid_ = true;
}

double TupleListCache::max_displacement2(
    const Box& box, std::span<const Vec3> owned_pos) const {
  SCMD_REQUIRE(owned_pos.size() == ref_pos_.size(),
               "displacement check needs the same atom set as the build");
  double max_d2 = 0.0;
  for (std::size_t i = 0; i < owned_pos.size(); ++i) {
    // Owned positions stay wrapped, so they can jump by a box length at
    // the periodic boundary; min-image recovers the true displacement.
    max_d2 = std::max(max_d2, box.dist2(owned_pos[i], ref_pos_[i]));
  }
  return max_d2;
}

}  // namespace scmd
