#pragma once

/// \file path.hpp
/// Computation paths — the atoms of the computation-pattern algebra.
///
/// A computation path for n-tuple computation (paper Sec. 3.1.2) is a list
/// of n cell offsets p = (v0, ..., v_{n-1}).  Applied at home cell c(q), the
/// path generates all n-tuples whose k-th atom lies in cell c(q + vk).
///
/// Key operations:
///  - inverse:  p^{-1} = (v_{n-1}, ..., v0)
///  - shift:    p + Δ = (v0 + Δ, ..., v_{n-1} + Δ)  (force-set invariant,
///              Theorem 1)
///  - sigma:    differential representation σ(p) = (v1-v0, ..., v_{n-1}-v_{n-2});
///              σ is shift-invariant, and two paths generate the same force
///              set iff σ(p') = σ(p) or σ(p') = σ(p^{-1}) (Lemma 3).

#include <array>
#include <compare>
#include <initializer_list>
#include <iosfwd>
#include <span>

#include "geom/int3.hpp"

namespace scmd {

/// Maximum supported tuple length.  ReaxFF-style force fields reach n = 6
/// through chain-rule differentiation; 8 leaves headroom.
inline constexpr int kMaxTupleLen = 8;

/// A fixed-capacity list of cell offsets of length n (2 <= n <= kMaxTupleLen).
/// Also used with length n-1 for differential representations.
class Path {
 public:
  Path() = default;

  /// Construct from explicit offsets, e.g. Path{{0,0,0}, {1,0,1}}.
  Path(std::initializer_list<Int3> offsets);

  /// Construct from a span of offsets.
  static Path from_span(std::span<const Int3> offsets);

  int size() const { return n_; }

  const Int3& operator[](int k) const { return v_[static_cast<size_t>(k)]; }
  Int3& operator[](int k) { return v_[static_cast<size_t>(k)]; }

  std::span<const Int3> offsets() const {
    return {v_.data(), static_cast<std::size_t>(n_)};
  }

  void push_back(const Int3& v);

  /// Remove the last offset.  Requires size() > 0.
  void pop_back();

  /// Reversed path p^{-1} = (v_{n-1}, ..., v0).
  Path inverse() const;

  /// Translated path p + delta (Theorem 1: generates the same force set).
  Path shifted(const Int3& delta) const;

  /// Differential representation σ(p), a Path of length n-1.
  Path sigma() const;

  /// True if σ(p) == σ(p^{-1}): the path is its own reflective twin
  /// (Corollary 1), so it generates both orientations of each tuple and an
  /// intra-path ordering guard is needed during enumeration.
  bool self_reflective() const;

  /// Componentwise minimum over all offsets (lower corner of the path's
  /// bounding brick).  Requires size() > 0.
  Int3 min_corner() const;

  /// Componentwise maximum over all offsets.
  Int3 max_corner() const;

  /// Canonical reflection key: lexicographic min of σ(p) and σ(p^{-1}).
  /// Two paths generate the same force set iff their keys are equal (for
  /// patterns whose paths are pairwise non-equal up to shift, which holds
  /// for full-shell generation where all paths start at v0 = 0).
  Path reflection_key() const;

  /// True if all offsets lie in the first octant (all components >= 0).
  bool in_first_octant() const;

  /// True if consecutive offsets are nearest-neighbor steps
  /// (Chebyshev distance <= 1), the defining property of full-shell paths.
  bool has_unit_steps() const;

  /// Lexicographic comparison over (size, offsets); deterministic ordering
  /// for canonical pattern representations.
  std::strong_ordering operator<=>(const Path& o) const;
  bool operator==(const Path& o) const;

 private:
  std::array<Int3, kMaxTupleLen> v_{};
  int n_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Path& p);

}  // namespace scmd
