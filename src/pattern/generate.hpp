#pragma once

/// \file generate.hpp
/// The shift-collapse algorithm and the classic shell patterns.
///
/// Pipeline (paper Table 2):
///
///     Ψ_SC(n) = R-COLLAPSE( OC-SHIFT( GENERATE-FS(n) ) )
///
///  - GENERATE-FS(n): all 27^{n-1} nearest-neighbor paths starting at the
///    home cell (Table 3).  n-complete by Lemma 1.
///  - OC-SHIFT: translate each path into the first octant (Table 4);
///    force-set-preserving by Theorem 1, shrinks cell coverage to
///    c[0, n-1] and thus the parallel import volume (Sec. 4.2).
///  - R-COLLAPSE: drop one path of every reflective-twin pair
///    σ(p') = σ(p^{-1}) (Table 5); force-set-preserving by Lemmas 3-4,
///    halves the search cost (Sec. 4.1).
///
/// For n = 2 these reduce to the classic shell methods (Sec. 4.3):
/// half-shell = R-COLLAPSE(FS), eighth-shell = OC-SHIFT(half-shell) = SC(2).

#include "pattern/pattern.hpp"

namespace scmd {

/// GENERATE-FS(n): the full-shell pattern, |Ψ| = 27^{n-1}.
///
/// `reach` generalizes to sub-cutoff cells (paper Sec. 6, midpoint-method
/// style): with cell side >= rcut/reach, a chain step spans at most
/// `reach` cells per axis, so paths take steps in {-reach..reach}^3 and
/// |Ψ| = (2·reach+1)^{3(n-1)}.  reach = 1 is the classic cell method.
Pattern generate_fs(int n, int reach = 1);

/// OC-SHIFT: translate every path so all offsets are non-negative
/// (first-octant compression).  Preserves the force set (Theorem 1).
Pattern oc_shift(const Pattern& psi);

/// R-COLLAPSE: remove reflective twins.  Canonical-key implementation:
/// paths are bucketed by reflection_key() and one representative per key is
/// kept (first in input order).  O(|Ψ| log |Ψ|).
Pattern r_collapse(const Pattern& psi);

/// Literal transcription of the paper's doubly nested R-COLLAPSE
/// (Table 5), O(|Ψ|²).  Kept for validation: must produce a pattern
/// equivalent to r_collapse() with equal size.  Use only for small n.
Pattern r_collapse_pairwise(const Pattern& psi);

/// The shift-collapse pattern Ψ_SC(n) (paper Table 2).  `reach` selects
/// the sub-cutoff cell generalization (see generate_fs); OC-SHIFT and
/// R-COLLAPSE apply unchanged because Theorem 1 and Lemma 3 are
/// independent of the step set.
Pattern make_sc(int n, int reach = 1);

/// Full-shell pair/n-tuple pattern — alias of generate_fs with name set.
Pattern make_fs(int n, int reach = 1);

/// Half-shell pattern for pair computation: R-COLLAPSE(FS(2)), |Ψ| = 14.
Pattern make_hs();

/// Eighth-shell pattern: OC-SHIFT(HS) == SC(2).
Pattern make_es();

}  // namespace scmd
