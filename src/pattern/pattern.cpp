#include "pattern/pattern.hpp"

#include <algorithm>
#include <ostream>

#include "support/error.hpp"

namespace scmd {

Pattern::Pattern(int n, std::string name) : n_(n), name_(std::move(name)) {
  SCMD_REQUIRE(n >= 2 && n <= kMaxTupleLen, "tuple length out of range");
}

void Pattern::add(const Path& p) {
  SCMD_REQUIRE(p.size() == n_, "path length does not match pattern n");
  paths_.push_back(p);
}

bool Pattern::contains(const Path& p) const {
  return std::find(paths_.begin(), paths_.end(), p) != paths_.end();
}

void Pattern::sort() { std::sort(paths_.begin(), paths_.end()); }

bool Pattern::equivalent_to(const Pattern& other) const {
  if (n_ != other.n_) return false;
  auto keys = [](const Pattern& psi) {
    std::vector<Path> out;
    out.reserve(psi.size());
    for (const Path& p : psi) out.push_back(p.reflection_key());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  return keys(*this) == keys(other);
}

std::ostream& operator<<(std::ostream& os, const Pattern& psi) {
  os << "Pattern(n=" << psi.n() << ", |Psi|=" << psi.size();
  if (!psi.name().empty()) os << ", " << psi.name();
  os << ")";
  return os;
}

}  // namespace scmd
