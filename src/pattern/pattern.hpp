#pragma once

/// \file pattern.hpp
/// Computation patterns Ψ(n): sets of computation paths.
///
/// A pattern plus a cell domain defines a force set via the UCP engine
/// (paper Eq. 9-10).  A pattern is *n-complete* if its force set bounds the
/// range-limited tuple set Γ*(n) (Eq. 11); completeness of the patterns
/// built in generate.hpp is established by the paper's Lemmas 1-4 and
/// checked empirically by the property tests in tests/.

#include <iosfwd>
#include <string>
#include <vector>

#include "pattern/path.hpp"

namespace scmd {

/// A set of computation paths of common tuple length n.
///
/// `collapsed` records whether reflective twins have been removed
/// (R-COLLAPSE): the tuple enumerator needs it to decide which paths
/// require an intra-path orientation guard (see tuples/ucp.hpp).
class Pattern {
 public:
  Pattern() = default;

  /// Construct with tuple length n and optional descriptive name.
  explicit Pattern(int n, std::string name = {});

  int n() const { return n_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  bool collapsed() const { return collapsed_; }
  void set_collapsed(bool c) { collapsed_ = c; }

  std::size_t size() const { return paths_.size(); }
  bool empty() const { return paths_.empty(); }

  const Path& operator[](std::size_t i) const { return paths_[i]; }
  const std::vector<Path>& paths() const { return paths_; }

  std::vector<Path>::const_iterator begin() const { return paths_.begin(); }
  std::vector<Path>::const_iterator end() const { return paths_.end(); }

  /// Append a path; its length must equal n().
  void add(const Path& p);

  /// True if the pattern contains an exactly equal path.
  bool contains(const Path& p) const;

  /// Sort paths lexicographically — canonical order for comparisons.
  void sort();

  /// Two patterns are *equivalent* if they generate the same force set for
  /// every domain: same *set* of σ-reflection keys.  Duplicate keys (e.g.
  /// reflective twins in a full-shell pattern) add redundant search work but
  /// not new tuples, so they do not affect equivalence.
  bool equivalent_to(const Pattern& other) const;

  bool operator==(const Pattern& other) const {
    return n_ == other.n_ && paths_ == other.paths_;
  }

 private:
  int n_ = 0;
  bool collapsed_ = false;
  std::string name_;
  std::vector<Path> paths_;
};

std::ostream& operator<<(std::ostream& os, const Pattern& psi);

}  // namespace scmd
