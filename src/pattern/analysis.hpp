#pragma once

/// \file analysis.hpp
/// Quantitative analysis of computation patterns (paper Sec. 3.1.3, 4).
///
/// These functions compute the two cost drivers of the optimal UCP-MD
/// problem: the search cost, proportional to |Ψ| (Lemma 5 / Eq. 24), and
/// the parallel import volume (Eq. 14), i.e. the number of ghost cells a
/// rank owning an l×l×l cell brick must fetch from neighbors.

#include <cstdint>
#include <vector>

#include "geom/int3.hpp"
#include "pattern/pattern.hpp"

namespace scmd {

/// Cell coverage Π(Ψ): the distinct cell offsets touched by any path, i.e.
/// the cells needed to evaluate one home cell's search space.  Sorted.
std::vector<Int3> cell_coverage(const Pattern& psi);

/// Cell footprint |Π(Ψ)|.
std::size_t cell_footprint(const Pattern& psi);

/// Import volume for a rank owning the cell brick [0, dims): the number of
/// covered cells lying outside the brick (Eq. 14), enumerated exactly.
/// Offsets are NOT wrapped — this is the per-rank ghost count, which is
/// what communication pays for even under global periodic boundaries.
long long import_volume(const Pattern& psi, const Int3& dims);

/// The distinct out-of-brick cell coordinates themselves (sorted); the
/// halo-exchange planner consumes this.
std::vector<Int3> import_cells(const Pattern& psi, const Int3& dims);

/// Number of distinct neighbor ranks the imports come from, assuming
/// neighbor ranks own same-shape bricks tiling space: counts distinct
/// nonzero brick offsets floor(c / dims) over import cells.
int import_neighbor_count(const Pattern& psi, const Int3& dims);

/// --- Closed forms from the paper -------------------------------------
/// All take the sub-cutoff generalization parameter `reach` (cells of
/// side >= rcut/reach; reach = 1 is the paper's setting), with the step
/// count s = (2·reach+1)^3 replacing 27.

/// |Ψ_FS(n)| = s^{n-1}  (Eq. 25).
long long fs_pattern_size(int n, int reach = 1);

/// Number of self-reflective (non-collapsible) paths = s^{ceil(n/2)-1}
/// (paper Eq. 27; see DESIGN.md for the corrected exponent).
long long non_collapsible_count(int n, int reach = 1);

/// |Ψ_SC(n)| = (s^{n-1} + s^{ceil(n/2)-1}) / 2  (Eq. 29).
long long sc_pattern_size(int n, int reach = 1);

/// SC import volume for a cubic l^3 brick: (l + reach(n-1))^3 - l^3
/// (Eq. 33 for reach = 1).
long long sc_import_volume(int l, int n, int reach = 1);

/// FS import volume for a cubic l^3 brick: (l + 2·reach(n-1))^3 - l^3
/// (the full shell extends in both directions on every axis).
long long fs_import_volume(int l, int n, int reach = 1);

}  // namespace scmd
