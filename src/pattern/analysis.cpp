#include "pattern/analysis.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace scmd {

std::vector<Int3> cell_coverage(const Pattern& psi) {
  std::set<Int3> cover;
  for (const Path& p : psi)
    for (const Int3& v : p.offsets()) cover.insert(v);
  return {cover.begin(), cover.end()};
}

std::size_t cell_footprint(const Pattern& psi) {
  return cell_coverage(psi).size();
}

namespace {

bool inside_brick(const Int3& c, const Int3& dims) {
  return c.x >= 0 && c.x < dims.x && c.y >= 0 && c.y < dims.y && c.z >= 0 &&
         c.z < dims.z;
}

std::set<Int3> import_cell_set(const Pattern& psi, const Int3& dims) {
  SCMD_REQUIRE(dims.x > 0 && dims.y > 0 && dims.z > 0,
               "brick dims must be positive");
  // Union over all home cells q in the brick of q + coverage offsets,
  // keeping only cells outside the brick (Eq. 13-14).  Only home cells
  // within (coverage radius) of the brick surface can contribute, but the
  // straightforward full loop is plenty fast for analysis purposes.
  const std::vector<Int3> cover = cell_coverage(psi);
  std::set<Int3> out;
  for (int qx = 0; qx < dims.x; ++qx)
    for (int qy = 0; qy < dims.y; ++qy)
      for (int qz = 0; qz < dims.z; ++qz)
        for (const Int3& v : cover) {
          const Int3 c = Int3{qx, qy, qz} + v;
          if (!inside_brick(c, dims)) out.insert(c);
        }
  return out;
}

}  // namespace

long long import_volume(const Pattern& psi, const Int3& dims) {
  return static_cast<long long>(import_cell_set(psi, dims).size());
}

std::vector<Int3> import_cells(const Pattern& psi, const Int3& dims) {
  const auto s = import_cell_set(psi, dims);
  return {s.begin(), s.end()};
}

int import_neighbor_count(const Pattern& psi, const Int3& dims) {
  std::set<Int3> neighbors;
  for (const Int3& c : import_cell_set(psi, dims)) {
    const Int3 rank_off{floor_div(c.x, dims.x), floor_div(c.y, dims.y),
                        floor_div(c.z, dims.z)};
    if (rank_off != Int3{0, 0, 0}) neighbors.insert(rank_off);
  }
  return static_cast<int>(neighbors.size());
}

namespace {

long long ipow(long long base, int exp) {
  long long r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

}  // namespace

namespace {

long long step_count(int reach) {
  SCMD_REQUIRE(reach >= 1 && reach <= 4, "reach out of range");
  const long long w = 2LL * reach + 1;
  return w * w * w;
}

}  // namespace

long long fs_pattern_size(int n, int reach) {
  SCMD_REQUIRE(n >= 2 && n <= kMaxTupleLen, "tuple length out of range");
  return ipow(step_count(reach), n - 1);
}

long long non_collapsible_count(int n, int reach) {
  SCMD_REQUIRE(n >= 2 && n <= kMaxTupleLen, "tuple length out of range");
  // A self-reflective path mirrors around its midpoint with v0 = 0 fixed:
  // ceil(n/2) - 1 free neighbor steps.
  return ipow(step_count(reach), (n + 1) / 2 - 1);
}

long long sc_pattern_size(int n, int reach) {
  return (fs_pattern_size(n, reach) + non_collapsible_count(n, reach)) / 2;
}

long long sc_import_volume(int l, int n, int reach) {
  SCMD_REQUIRE(l >= 1, "brick side must be positive");
  const long long L = l, m = l + static_cast<long long>(reach) * (n - 1);
  return m * m * m - L * L * L;
}

long long fs_import_volume(int l, int n, int reach) {
  SCMD_REQUIRE(l >= 1, "brick side must be positive");
  const long long L = l, m = l + 2LL * reach * (n - 1);
  return m * m * m - L * L * L;
}

}  // namespace scmd
