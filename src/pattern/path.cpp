#include "pattern/path.hpp"

#include <ostream>

#include "support/error.hpp"

namespace scmd {

Path::Path(std::initializer_list<Int3> offsets) {
  SCMD_REQUIRE(offsets.size() <= kMaxTupleLen, "path longer than kMaxTupleLen");
  for (const auto& v : offsets) v_[static_cast<size_t>(n_++)] = v;
}

Path Path::from_span(std::span<const Int3> offsets) {
  SCMD_REQUIRE(offsets.size() <= kMaxTupleLen, "path longer than kMaxTupleLen");
  Path p;
  for (const auto& v : offsets) p.v_[static_cast<size_t>(p.n_++)] = v;
  return p;
}

void Path::push_back(const Int3& v) {
  SCMD_REQUIRE(n_ < kMaxTupleLen, "path capacity exceeded");
  v_[static_cast<size_t>(n_++)] = v;
}

void Path::pop_back() {
  SCMD_REQUIRE(n_ > 0, "pop_back on empty path");
  --n_;
}

Path Path::inverse() const {
  Path out;
  out.n_ = n_;
  for (int k = 0; k < n_; ++k)
    out.v_[static_cast<size_t>(k)] = v_[static_cast<size_t>(n_ - 1 - k)];
  return out;
}

Path Path::shifted(const Int3& delta) const {
  Path out = *this;
  for (int k = 0; k < n_; ++k) out.v_[static_cast<size_t>(k)] += delta;
  return out;
}

Path Path::sigma() const {
  SCMD_REQUIRE(n_ >= 1, "sigma of empty path");
  Path out;
  out.n_ = n_ - 1;
  for (int k = 0; k + 1 < n_; ++k)
    out.v_[static_cast<size_t>(k)] =
        v_[static_cast<size_t>(k + 1)] - v_[static_cast<size_t>(k)];
  return out;
}

bool Path::self_reflective() const { return sigma() == inverse().sigma(); }

Int3 Path::min_corner() const {
  SCMD_REQUIRE(n_ > 0, "min_corner of empty path");
  Int3 m = v_[0];
  for (int k = 1; k < n_; ++k) m = Int3::min(m, v_[static_cast<size_t>(k)]);
  return m;
}

Int3 Path::max_corner() const {
  SCMD_REQUIRE(n_ > 0, "max_corner of empty path");
  Int3 m = v_[0];
  for (int k = 1; k < n_; ++k) m = Int3::max(m, v_[static_cast<size_t>(k)]);
  return m;
}

Path Path::reflection_key() const {
  const Path a = sigma();
  const Path b = inverse().sigma();
  return a <= b ? a : b;
}

bool Path::in_first_octant() const {
  for (int k = 0; k < n_; ++k) {
    const Int3& v = v_[static_cast<size_t>(k)];
    if (v.x < 0 || v.y < 0 || v.z < 0) return false;
  }
  return true;
}

bool Path::has_unit_steps() const {
  for (int k = 0; k + 1 < n_; ++k) {
    if ((v_[static_cast<size_t>(k + 1)] - v_[static_cast<size_t>(k)])
            .chebyshev() > 1)
      return false;
  }
  return true;
}

std::strong_ordering Path::operator<=>(const Path& o) const {
  if (auto c = n_ <=> o.n_; c != 0) return c;
  for (int k = 0; k < n_; ++k) {
    if (auto c = v_[static_cast<size_t>(k)] <=> o.v_[static_cast<size_t>(k)];
        c != 0)
      return c;
  }
  return std::strong_ordering::equal;
}

bool Path::operator==(const Path& o) const {
  return (*this <=> o) == std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Path& p) {
  os << '[';
  for (int k = 0; k < p.size(); ++k) os << (k ? " " : "") << p[k];
  return os << ']';
}

}  // namespace scmd
