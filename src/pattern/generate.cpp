#include "pattern/generate.hpp"

#include <map>

#include "support/error.hpp"

namespace scmd {

Pattern generate_fs(int n, int reach) {
  SCMD_REQUIRE(n >= 2 && n <= kMaxTupleLen, "tuple length out of range");
  SCMD_REQUIRE(reach >= 1 && reach <= 4, "reach out of range");
  Pattern psi(n, reach == 1
                     ? "FS(" + std::to_string(n) + ")"
                     : "FS(" + std::to_string(n) + ",k=" +
                           std::to_string(reach) + ")");

  // (n-1)-fold nested loop over neighbor steps (paper Table 3), expressed
  // as depth-first extension so n is a runtime value: each level appends
  // one of the (2·reach+1)^3 offsets v_{k+1} = v_k + d.
  const int w = 2 * reach + 1;
  const int steps = w * w * w;
  long long total = 1;
  // Guard inside the loop: n = 8, reach = 4 passes both range checks yet
  // 729^7 overflows long long, so a post-loop check would be reached
  // only after the UB it is meant to prevent.
  for (int k = 1; k < n; ++k) {
    total *= steps;
    SCMD_REQUIRE(total <= (1LL << 24),
                 "pattern too large to materialize; lower n or reach");
  }
  Path p;
  p.push_back({0, 0, 0});
  auto extend = [&](auto&& self) -> void {
    if (p.size() == n) {
      psi.add(p);
      return;
    }
    const Int3 tail = p[p.size() - 1];
    for (int d = 0; d < steps; ++d) {
      p.push_back(tail + Int3{d / (w * w) - reach, (d / w) % w - reach,
                              d % w - reach});
      self(self);
      p.pop_back();
    }
  };
  extend(extend);

  psi.set_collapsed(false);
  return psi;
}

Pattern oc_shift(const Pattern& psi) {
  Pattern out(psi.n(), psi.name() + "+OC");
  out.set_collapsed(psi.collapsed());
  for (const Path& p : psi) {
    // Shift so the lower corner of the path's bounding brick sits at the
    // origin: all offsets become non-negative (first octant).
    out.add(p.shifted(-p.min_corner()));
  }
  return out;
}

Pattern r_collapse(const Pattern& psi) {
  Pattern out(psi.n(), psi.name() + "+RC");
  out.set_collapsed(true);
  std::map<Path, bool> seen;  // reflection_key -> kept
  for (const Path& p : psi) {
    auto [it, inserted] = seen.emplace(p.reflection_key(), true);
    if (inserted) out.add(p);
  }
  return out;
}

Pattern r_collapse_pairwise(const Pattern& psi) {
  // Table 5 verbatim: start from Ψ, and for every ordered pair (p, p') with
  // σ(p') == σ(p^{-1}), remove p' (unless p' is p itself, i.e. the path is
  // self-reflective, or p was already removed).
  std::vector<Path> paths(psi.begin(), psi.end());
  std::vector<bool> removed(paths.size(), false);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (removed[i]) continue;
    const Path inv_sigma = paths[i].inverse().sigma();
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      if (removed[j]) continue;
      if (paths[j].sigma() == inv_sigma ||
          paths[j].sigma() == paths[i].sigma()) {
        removed[j] = true;
      }
    }
  }
  Pattern out(psi.n(), psi.name() + "+RCpw");
  out.set_collapsed(true);
  for (std::size_t i = 0; i < paths.size(); ++i)
    if (!removed[i]) out.add(paths[i]);
  return out;
}

Pattern make_sc(int n, int reach) {
  Pattern psi = r_collapse(oc_shift(generate_fs(n, reach)));
  psi.set_name(reach == 1 ? "SC(" + std::to_string(n) + ")"
                          : "SC(" + std::to_string(n) + ",k=" +
                                std::to_string(reach) + ")");
  return psi;
}

Pattern make_fs(int n, int reach) { return generate_fs(n, reach); }

Pattern make_hs() {
  Pattern psi = r_collapse(generate_fs(2));
  psi.set_name("HS");
  return psi;
}

Pattern make_es() {
  Pattern psi = oc_shift(make_hs());
  psi.set_name("ES");
  return psi;
}

}  // namespace scmd
