#include "check/invariant.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/thread_safety.hpp"

namespace scmd::check {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

Mutex g_options_m;
Options g_options SCMD_GUARDED_BY(g_options_m);
std::atomic<std::uint64_t> g_checks_passed{0};

thread_local int t_rank = -1;
thread_local std::vector<const char*> t_scopes;

}  // namespace

void set_options(const Options& options) {
  {
    const MutexLock lock(g_options_m);
    g_options = options;
  }
  detail::g_enabled.store(options.enabled, std::memory_order_relaxed);
}

Options options() {
  const MutexLock lock(g_options_m);
  return g_options;
}

bool init_from_env() {
  if (const char* v = std::getenv("SCMD_CHECK")) {
    const std::string s(v);
    if (s == "1" || s == "on" || s == "true") {
      Options o = options();
      o.enabled = true;
      set_options(o);
    }
  }
  return enabled();
}

std::uint64_t checks_passed() {
  return g_checks_passed.load(std::memory_order_relaxed);
}

void reset_checks_passed() {
  g_checks_passed.store(0, std::memory_order_relaxed);
}

void count_check() {
  g_checks_passed.fetch_add(1, std::memory_order_relaxed);
}

void bind_rank(int rank) { t_rank = rank; }

int bound_rank() { return t_rank; }

Scope::Scope(const char* name) {
  if (enabled()) {
    t_scopes.push_back(name);
    pushed_ = true;
  }
}

Scope::~Scope() {
  if (pushed_) t_scopes.pop_back();
}

std::string Scope::current_path() {
  std::string path;
  for (const char* s : t_scopes) {
    if (!path.empty()) path += '/';
    path += s;
  }
  return path;
}

void fail_invariant(const char* expr, const std::string& msg,
                    const char* file, int line) {
  std::string report = "invariant violated: ";
  report += expr;
  report += "\n  ";
  report += msg;
  const std::string phase = Scope::current_path();
  if (!phase.empty() || t_rank >= 0) {
    report += "\n  phase: ";
    report += phase.empty() ? "(none)" : phase;
    if (t_rank >= 0) {
      report += " (rank ";
      report += std::to_string(t_rank);
      report += ")";
    }
  }
  report += "\n  at ";
  report += file;
  report += ":";
  report += std::to_string(line);
  if (options().action == FailureAction::kThrow)
    throw InvariantViolation(report);
  std::fprintf(stderr, "SCMD_INVARIANT failure:\n%s\n", report.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace scmd::check
