#include "check/engine_checks.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <unordered_map>

namespace scmd::check {

namespace {

/// Owned-atom record exchanged during the ghost-consistency gather.
struct WireAtom {
  std::int64_t gid;
  double x, y, z;
};
static_assert(std::is_trivially_copyable_v<WireAtom>);

template <class T>
CheckBytes pack_vec(const std::vector<T>& items) {
  static_assert(std::is_trivially_copyable_v<T>);
  CheckBytes out(items.size() * sizeof(T));
  if (!items.empty()) std::memcpy(out.data(), items.data(), out.size());
  return out;
}

template <class T>
std::vector<T> unpack_vec(const CheckBytes& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// Gather every rank's vector at rank 0 (concatenated in rank order),
/// then redistribute the concatenation to all ranks.  Single-rank: the
/// local vector comes straight back.
template <class T>
std::vector<T> gather_all(Channel* channel, std::vector<T> local) {
  if (channel == nullptr || channel->num_ranks() <= 1) return local;
  const int rank = channel->rank();
  const int num_ranks = channel->num_ranks();
  if (rank == 0) {
    std::vector<T> all = std::move(local);
    for (int r = 1; r < num_ranks; ++r) {
      const std::vector<T> part = unpack_vec<T>(channel->recv(r));
      all.insert(all.end(), part.begin(), part.end());
    }
    const CheckBytes payload = pack_vec(all);
    for (int r = 1; r < num_ranks; ++r) channel->send(r, payload);
    return all;
  }
  channel->send(0, pack_vec(local));
  return unpack_vec<T>(channel->recv(0));
}

}  // namespace

void collective_invariant(Channel* channel, bool local_ok,
                          const std::string& local_msg, const char* what) {
  bool global_ok = local_ok;
  if (channel != nullptr && channel->num_ranks() > 1) {
    global_ok = channel->allreduce_max(local_ok ? 0.0 : 1.0) == 0.0;
  }
  SCMD_INVARIANT(global_ok,
                 local_ok ? std::string(what) + " violated on another rank"
                          : local_msg);
  count_check();
}

void check_force_balance(Channel* channel,
                         std::span<const Vec3> owned_forces) {
  if (!enabled() || !options().force_balance) return;
  double sx = 0.0, sy = 0.0, sz = 0.0, scale = 0.0;
  for (const Vec3& f : owned_forces) {
    sx += f.x;
    sy += f.y;
    sz += f.z;
    scale += std::fabs(f.x) + std::fabs(f.y) + std::fabs(f.z);
  }
  if (channel != nullptr && channel->num_ranks() > 1) {
    sx = channel->allreduce_sum(sx);
    sy = channel->allreduce_sum(sy);
    sz = channel->allreduce_sum(sz);
    scale = channel->allreduce_sum(scale);
  }
  const double tol = options().force_rel_tol * std::max(1.0, scale);
  const bool ok = std::fabs(sx) <= tol && std::fabs(sy) <= tol &&
                  std::fabs(sz) <= tol;
  // The reduced sums are identical on every rank, so the verdict already
  // is collective.
  SCMD_INVARIANT(ok, "total force not zero (Newton's third law): sum = (" +
                         std::to_string(sx) + ", " + std::to_string(sy) +
                         ", " + std::to_string(sz) + "), tol = " +
                         std::to_string(tol));
  count_check();
}

void check_ghost_consistency(Channel* channel, const Box& box,
                             std::span<const std::int64_t> owned_gid,
                             std::span<const Vec3> owned_pos,
                             std::span<const std::int64_t> ghost_gid,
                             std::span<const Vec3> ghost_pos,
                             long long expected_total) {
  if (!enabled() || !options().ghost_consistency) return;
  std::vector<WireAtom> local(owned_gid.size());
  for (std::size_t i = 0; i < owned_gid.size(); ++i) {
    local[i] = WireAtom{owned_gid[i], owned_pos[i].x, owned_pos[i].y,
                        owned_pos[i].z};
  }
  const std::vector<WireAtom> table = gather_all(channel, std::move(local));

  bool ok = true;
  std::string msg;
  auto flag = [&](std::string m) {
    if (ok) {
      ok = false;
      msg = std::move(m);
    }
  };

  std::unordered_map<std::int64_t, Vec3> owners;
  owners.reserve(table.size());
  for (const WireAtom& a : table) {
    if (!owners.emplace(a.gid, Vec3(a.x, a.y, a.z)).second)
      flag("atom gid " + std::to_string(a.gid) +
           " owned by more than one rank");
  }
  if (expected_total >= 0 &&
      static_cast<long long>(table.size()) != expected_total)
    flag("global atom count " + std::to_string(table.size()) +
         " != expected " + std::to_string(expected_total) +
         " (atoms lost or duplicated)");

  const double tol2 = options().ghost_tol * options().ghost_tol;
  for (std::size_t i = 0; i < ghost_gid.size(); ++i) {
    const auto it = owners.find(ghost_gid[i]);
    if (it == owners.end()) {
      flag("ghost gid " + std::to_string(ghost_gid[i]) +
           " has no owning rank");
      continue;
    }
    const Vec3 d = box.min_image(ghost_pos[i], it->second);
    if (d.norm2() > tol2)
      flag("ghost gid " + std::to_string(ghost_gid[i]) +
           " position diverged from its owner by |d| = " +
           std::to_string(std::sqrt(d.norm2())) +
           " (mod periodic image), tol = " +
           std::to_string(options().ghost_tol));
  }
  collective_invariant(channel, ok, msg, "ghost/home consistency");
}

void check_tuple_ownership(Channel* channel, int n,
                           std::span<const std::int64_t> tuples_flat,
                           long long reference_total) {
  if (!enabled() || !options().tuple_ownership) return;
  SCMD_INVARIANT(n >= 2 && tuples_flat.size() % static_cast<std::size_t>(n) ==
                               0,
                 "tuple census: flat array length must be a multiple of n");
  const std::size_t un = static_cast<std::size_t>(n);

  // Canonical orientation: a chain and its reversal name the same
  // undirected tuple; keep the lexicographically smaller of the two.
  // (Chains over the same atom *set* in different visit order are
  // distinct tuples and must not be merged.)
  std::vector<std::int64_t> canon(tuples_flat.begin(), tuples_flat.end());
  for (std::size_t t = 0; t + un <= canon.size(); t += un) {
    std::int64_t* b = canon.data() + t;
    bool reverse = false;
    for (std::size_t k = 0; k < un; ++k) {
      if (b[k] != b[un - 1 - k]) {
        reverse = b[k] > b[un - 1 - k];
        break;
      }
    }
    if (reverse) std::reverse(b, b + un);
  }

  // Rank 0 inspects the global census; the verdict is reduced so every
  // rank fails together.
  const std::vector<std::int64_t> all = gather_all(channel, std::move(canon));
  bool ok = true;
  std::string msg;
  const bool inspector = channel == nullptr || channel->rank() == 0;
  if (inspector) {
    const std::size_t count = all.size() / un;
    if (reference_total >= 0 &&
        static_cast<long long>(count) != reference_total) {
      ok = false;
      msg = "n=" + std::to_string(n) + " tuple count " +
            std::to_string(count) + " != reference " +
            std::to_string(reference_total) + " (missing or extra tuples)";
    } else {
      std::vector<std::size_t> idx(count);
      std::iota(idx.begin(), idx.end(), 0);
      auto tuple_less = [&](std::size_t a, std::size_t b) {
        return std::lexicographical_compare(
            all.begin() + static_cast<std::ptrdiff_t>(a * un),
            all.begin() + static_cast<std::ptrdiff_t>((a + 1) * un),
            all.begin() + static_cast<std::ptrdiff_t>(b * un),
            all.begin() + static_cast<std::ptrdiff_t>((b + 1) * un));
      };
      std::sort(idx.begin(), idx.end(), tuple_less);
      for (std::size_t i = 0; i + 1 < idx.size(); ++i) {
        if (!tuple_less(idx[i], idx[i + 1]) &&
            !tuple_less(idx[i + 1], idx[i])) {
          std::string gids;
          for (std::size_t k = 0; k < un; ++k) {
            if (k) gids += ",";
            gids += std::to_string(all[idx[i] * un + k]);
          }
          ok = false;
          msg = "n=" + std::to_string(n) + " tuple (" + gids +
                ") enumerated more than once (duplicate ownership)";
          break;
        }
      }
    }
  }
  collective_invariant(channel, ok, msg, "exactly-once tuple ownership");
}

void check_replay_parity(Channel* channel, std::span<const Vec3> replay_f,
                         std::span<const Vec3> fresh_f, double replay_energy,
                         double fresh_energy) {
  if (!enabled() || !options().replay_parity) return;
  // Multi-rank callers pass each rank's *owned* forces (comparable — the
  // ownership partition is shared) but per-rank *partial* energies, which
  // legitimately differ when the replayed and fresh tuple sets partition
  // across ranks differently.  Sum the energies globally before
  // comparing; collective, so it runs before any local verdict.
  if (channel != nullptr && channel->num_ranks() > 1) {
    replay_energy = channel->allreduce_sum(replay_energy);
    fresh_energy = channel->allreduce_sum(fresh_energy);
  }
  bool ok = replay_f.size() == fresh_f.size();
  std::string msg;
  if (!ok) {
    msg = "replay force array size " + std::to_string(replay_f.size()) +
          " != fresh " + std::to_string(fresh_f.size());
  } else {
    double max_diff = 0.0, max_mag = 0.0;
    std::size_t worst = 0;
    for (std::size_t i = 0; i < fresh_f.size(); ++i) {
      const Vec3 d = replay_f[i] - fresh_f[i];
      const double diff2 = d.norm2();
      if (diff2 > max_diff) {
        max_diff = diff2;
        worst = i;
      }
      max_mag = std::max(max_mag, fresh_f[i].norm2());
    }
    max_diff = std::sqrt(max_diff);
    max_mag = std::sqrt(max_mag);
    const double ftol = options().parity_rel_tol * std::max(1.0, max_mag);
    const double etol =
        options().parity_rel_tol * std::max(1.0, std::fabs(fresh_energy));
    if (max_diff > ftol) {
      ok = false;
      msg = "replay force diverged from fresh enumeration at slot " +
            std::to_string(worst) + ": |df| = " + std::to_string(max_diff) +
            ", tol = " + std::to_string(ftol);
    } else if (std::fabs(replay_energy - fresh_energy) > etol) {
      ok = false;
      msg = "replay energy " + std::to_string(replay_energy) +
            " != fresh " + std::to_string(fresh_energy) + ", tol = " +
            std::to_string(etol);
    }
  }
  collective_invariant(channel, ok, msg, "tuple-cache replay parity");
}

}  // namespace scmd::check
