#pragma once

/// \file engine_checks.hpp
/// Engine-level structural invariants (docs/CHECKING.md).
///
/// Each function asserts one of the paper's correctness properties over a
/// rank's per-step state and fails through SCMD_INVARIANT when it does
/// not hold.  All of them are gated on check::enabled() plus their
/// per-family option and return immediately when off.
///
/// Cross-rank checks are collective: pass the rank's Channel (null for
/// serial/single-rank callers) and call them in the same order on every
/// rank.  Failures are made collective — every rank learns the verdict
/// before anyone throws — so a throwing FailureAction cannot strand peer
/// ranks inside a blocking receive.

#include <cstdint>
#include <span>
#include <string>

#include "check/channel.hpp"
#include "check/invariant.hpp"
#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace scmd::check {

/// Assert a condition whose failure may be local to one rank: reduces
/// the verdict over the cluster first, then fails on every rank (with
/// `local_msg` where the violation was seen, a generic message
/// elsewhere).  `what` names the invariant family for remote-rank
/// reports.  Counts one passed check when ok.
void collective_invariant(Channel* channel, bool local_ok,
                          const std::string& local_msg, const char* what);

/// Newton's third law over all evaluated kernels: the global sum of
/// owned-atom forces vanishes (relative to the global sum of component
/// magnitudes, tolerance options().force_rel_tol).  Collective sum when
/// `channel` spans more than one rank.
void check_force_balance(Channel* channel, std::span<const Vec3> owned_forces);

/// Ghost/home consistency and exactly-once atom ownership: every owned
/// gid is owned by exactly one rank, the global atom count matches
/// `expected_total` (pass < 0 to skip), and every ghost position equals
/// its owner's current position up to a periodic image shift within
/// options().ghost_tol.  Gathers the owned-atom table at rank 0 and
/// redistributes it, so every rank can verify its own ghosts.
void check_ghost_consistency(Channel* channel, const Box& box,
                             std::span<const std::int64_t> owned_gid,
                             std::span<const Vec3> owned_pos,
                             std::span<const std::int64_t> ghost_gid,
                             std::span<const Vec3> ghost_pos,
                             long long expected_total);

/// Exactly-once n-tuple ownership (the paper's n-completeness claim
/// applied across ranks): `tuples_flat` holds this rank's enumerated
/// tuples as n consecutive gids each, in chain order.  Tuples are
/// canonicalized (a chain and its reversal are the same undirected
/// tuple), gathered at rank 0, and any tuple enumerated twice — by one
/// rank or by two — is a violation.  When `reference_total` >= 0 the
/// global tuple count must equal it (catches missing tuples against a
/// serial reference).
void check_tuple_ownership(Channel* channel, int n,
                           std::span<const std::int64_t> tuples_flat,
                           long long reference_total);

/// Tuple-cache replay parity: forces and energy from replaying the
/// cached lists must match a fresh enumeration over the same positions
/// within options().parity_rel_tol (the two compute the same term set in
/// different order).  Arrays are compared elementwise; both must have
/// equal size.  Multi-rank callers gather both sides at one inspector
/// rank (identically ordered, e.g. by gid), which passes the full
/// arrays while the other ranks pass empty spans; the verdict is made
/// collective.  Energies may be per-rank partials (zero on ranks that
/// hold no share of a side); they are summed over the channel before
/// comparison.
void check_replay_parity(Channel* channel, std::span<const Vec3> replay_f,
                         std::span<const Vec3> fresh_f, double replay_energy,
                         double fresh_energy);

}  // namespace scmd::check
