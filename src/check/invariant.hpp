#pragma once

/// \file invariant.hpp
/// Runtime invariant-checker core (docs/CHECKING.md).
///
/// The check subsystem asserts the paper's structural invariants —
/// exactly-once tuple ownership, Newton's-third-law force balance,
/// ghost/home position consistency, tuple-cache replay parity — at engine
/// phase boundaries.  It is double-gated:
///
///  - compile time: the SCMD_CHECK CMake option defines
///    SCMD_CHECK_ENABLED; with it OFF every SCMD_INVARIANT /
///    SCMD_CHECK_SCOPE compiles to nothing and the engines contain no
///    checker code at all (Release builds pay zero cost);
///  - run time: with it compiled in, checks run only after
///    set_options({.enabled = true, ...}) (or SCMD_CHECK=1 in the
///    environment via init_from_env()); disabled cost is one relaxed
///    atomic load per check site.
///
/// A violation is reported with the failed expression, a message, the
/// thread's phase-scope path (see Scope), the bound rank, and the source
/// location; the configured FailureAction then aborts (default — the
/// report is the last thing on stderr, which is what sanitizer CI jobs
/// want) or throws InvariantViolation (what tests want).

#include <atomic>
#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace scmd::check {

/// Thrown by failed invariants under FailureAction::kThrow.
class InvariantViolation : public Error {
 public:
  using Error::Error;
};

/// What a failed invariant does after printing its report.
enum class FailureAction {
  kAbort,  ///< report to stderr, then std::abort()
  kThrow,  ///< throw InvariantViolation with the report text
};

/// Checker configuration.  Set once before a run; set_options() and
/// options() synchronize on an internal lock, so a mid-run mutation is
/// safe (check sites see either the old or the new snapshot).
struct Options {
  bool enabled = false;
  FailureAction action = FailureAction::kAbort;

  /// Per-family switches (all on by default when enabled).
  bool force_balance = true;     ///< per-step total force ~ 0
  bool tuple_ownership = true;   ///< exactly-once n-tuple ownership
  bool ghost_consistency = true; ///< ghost == owner position (mod image)
  bool replay_parity = true;     ///< cached replay vs fresh enumeration

  /// Relative tolerance for the force-balance check, scaled by the
  /// global sum of |F| component magnitudes.
  double force_rel_tol = 1e-9;
  /// Relative tolerance for replay-parity force/energy comparison.
  double parity_rel_tol = 1e-8;
  /// Absolute tolerance (distance units) for ghost/home consistency.
  double ghost_tol = 1e-9;

  /// Run the ownership census every K-th rebuild step (it re-enumerates
  /// tuples and gathers them at rank 0 — the most expensive check).
  int ownership_every = 1;
  /// Check replay parity on every K-th cache-reuse step (a parity check
  /// re-runs the full enumeration, erasing the replay speedup for that
  /// step).
  int replay_parity_every = 4;
};

/// Install checker options.  `options.enabled` drives the fast gate read
/// by every check site.
void set_options(const Options& options);

/// A snapshot of the active options, copied under the options lock
/// (mutate via set_options).
Options options();

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Fast runtime gate: true when checking is enabled.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Enable with SCMD_CHECK=1 (or "on"/"true") in the environment; any
/// other value (or unset) leaves the current options untouched.  Returns
/// the resulting enabled() state.
bool init_from_env();

/// Number of invariant checks that have passed since the last
/// reset_checks_passed() — lets a driver report "N invariants verified,
/// zero violations" at the end of a run.
std::uint64_t checks_passed();
void reset_checks_passed();
/// Count one passed check (called by the engine_checks implementations).
void count_check();

/// Bind the calling thread's rank id for failure reports (parallel
/// engines bind their rank; serial/test threads default to -1 = unbound).
void bind_rank(int rank);
int bound_rank();

/// RAII phase scope: pushes `name` (a string literal — the pointer is
/// kept, not copied) onto a thread-local stack that failure reports print
/// as "step/force/replay".  Use through SCMD_CHECK_SCOPE so scopes
/// compile out with the subsystem.
class Scope {
 public:
  explicit Scope(const char* name);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// The calling thread's scope path, joined with '/'; empty when no
  /// scope is open.
  static std::string current_path();

 private:
  bool pushed_ = false;  ///< scopes are recorded only while enabled()
};

/// Report a violated invariant and abort or throw per the configured
/// FailureAction.  Called by SCMD_INVARIANT; callable directly by checks
/// that detect a violation on another rank ("collective" failures).
[[noreturn]] void fail_invariant(const char* expr, const std::string& msg,
                                 const char* file, int line);

}  // namespace scmd::check

// SCMD_INVARIANT(cond, msg): assert a structural invariant.  `cond` and
// `msg` are evaluated only when runtime checking is enabled; with the
// SCMD_CHECK CMake option OFF the whole statement compiles away.
#if defined(SCMD_CHECK_ENABLED)
#define SCMD_CHECK_CONCAT_(a, b) a##b
#define SCMD_CHECK_CONCAT(a, b) SCMD_CHECK_CONCAT_(a, b)
#define SCMD_INVARIANT(cond, msg)                                   \
  do {                                                              \
    if (::scmd::check::enabled() && !(cond))                        \
      ::scmd::check::fail_invariant(#cond, (msg), __FILE__, __LINE__); \
  } while (false)
#define SCMD_CHECK_SCOPE(name) \
  ::scmd::check::Scope SCMD_CHECK_CONCAT(scmd_check_scope_, __LINE__)(name)
#else
#define SCMD_INVARIANT(cond, msg) ((void)0)
#define SCMD_CHECK_SCOPE(name) ((void)0)
#endif
