#pragma once

/// \file channel.hpp
/// Communication abstraction for cross-rank invariant checks.
///
/// The engine-level checks (force balance, tuple-ownership census,
/// ghost/home consistency) are collective: every rank must contribute
/// and every rank must learn the verdict, or a throwing failure on one
/// rank would leave its peers blocked in a receive.  The checks talk to
/// the cluster through this minimal byte-oriented interface so the check
/// library stays free of the parallel layer (the same dependency
/// inversion RankBalancer uses); src/parallel adapts its Comm to it, and
/// a null Channel* means "single rank" everywhere.

#include <cstddef>
#include <vector>

namespace scmd::check {

/// Byte payload moved between ranks during a check.
using CheckBytes = std::vector<std::byte>;

/// One rank's handle onto the cluster, restricted to what checks need.
/// All operations are collective-phase safe: checks call them in the
/// same order on every rank.
class Channel {
 public:
  virtual ~Channel() = default;

  virtual int rank() const = 0;
  virtual int num_ranks() const = 0;

  /// Asynchronous point-to-point send on the checker's own tag space.
  virtual void send(int dst, CheckBytes payload) = 0;
  /// Blocking receive of the next checker message from `src`.
  virtual CheckBytes recv(int src) = 0;

  virtual double allreduce_sum(double value) = 0;
  virtual double allreduce_max(double value) = 0;
};

}  // namespace scmd::check
