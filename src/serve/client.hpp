#pragma once

/// \file client.hpp
/// Client side of the MD-as-a-service session protocol
/// (docs/SERVICE.md).  One ClientConnection is one TCP connection to
/// the daemon's client port; requests are synchronous and a connection
/// can issue any number of them.  Used by apps/scmd_client.cpp and the
/// service tests — the tests also use disconnect() to model a client
/// vanishing mid-stream.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.hpp"

namespace scmd::serve {

class ClientConnection {
 public:
  /// Connect to the daemon; throws scmd::Error when nobody answers.
  ClientConnection(const std::string& host, int port);
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// All requests throw scmd::Error on a kError reply or a broken
  /// connection.
  std::int64_t submit(const SubmitRequest& req);
  JobStatus poll(std::int64_t job_id);
  JobStatus cancel(std::int64_t job_id);
  std::string jobs();  ///< job-table JSON (scheduler schema)
  void shutdown();     ///< ask the daemon to drain and exit

  /// Follow a job's chunk stream from `from_seq`, invoking `on_chunk`
  /// per chunk, until the daemon sends the terminal marker (returned).
  /// Blocks while the job runs.
  StreamEnd stream(std::int64_t job_id, std::int64_t from_seq,
                   const std::function<void(const ChunkMsg&)>& on_chunk);

  /// Sever the connection without releasing the descriptor: a
  /// ::shutdown(SHUT_RDWR) that wakes any thread blocked in stream()
  /// (its recv returns 0 and it throws).  Safe to call concurrently
  /// with an in-flight stream() — this is the disconnect-mid-stream
  /// scenario, where the daemon cancels that job only.  close() the
  /// connection after the streaming thread has been joined.
  void disconnect();

  /// Release the socket (also called by the destructor).  Unlike
  /// disconnect() this invalidates the descriptor, so no other thread
  /// may be using the connection when it runs.
  void close();

 private:
  /// Send one frame, read one reply; throws on transport failure and
  /// turns a kError reply into an scmd::Error.
  Frame request(MsgType type, const Bytes& body);

  std::atomic<int> fd_{-1};
};

}  // namespace scmd::serve
