#pragma once

/// \file daemon.hpp
/// The MD-as-a-service controller (docs/SERVICE.md).
///
/// A ServeDaemon is pool rank 0 of an already-connected Transport whose
/// ranks 1..N-1 run serve::run_worker().  It owns:
///
///  - the **client socket**: an acceptor + one session thread per
///    connection speaking the length-prefixed client protocol
///    (serve/protocol.hpp) — submit/poll/stream/cancel/jobs/shutdown.
///    A malformed frame gets a kError reply and the connection is
///    dropped; a client that disconnects mid-stream cancels *its* job
///    and nothing else.
///  - the **scheduler**: FIFO+priority queue with space-sharing rank
///    allocation and per-job resource caps (serve/scheduler.hpp).
///  - one **monitor thread per worker** draining tags::kSvcUp —
///    chunks are appended to the job's stream buffer, results decide
///    the terminal state, done-messages release ranks, and a transport
///    error (dead peer) retires the rank without killing the daemon.
///  - the **observability surface**: serve.* metrics (queue depth,
///    jobs active, latency) through an optional registry, and the
///    "jobs"/"status" channels of an optional net/StatusServer for
///    tools/scmd_top.py --jobs.
///
/// Job isolation: every job failure mode — config rejected at submit,
/// MD run throwing, cancel, walltime cap, client disconnect, worker
/// rank death — ends with that job terminal and its surviving ranks
/// reported free; the pool keeps serving.

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "support/thread_safety.hpp"

namespace scmd {
class StatusServer;
}

namespace scmd::serve {

struct DaemonConfig {
  int client_port = 0;   ///< client-protocol listener (0 = ephemeral)
  int status_port = -1;  ///< status/jobs channels (-1 = no status server)
  std::string dir;       ///< job artifact root; "" disables per-job
                         ///< checkpoints, traces, and resume-by-id
  JobLimits limits;      ///< per-job caps, enforced at submit
  /// Stream chunks retained per job; older chunks are evicted and a
  /// late stream starts at the oldest retained sequence number.
  std::size_t max_chunks_retained = 4096;
  double tick_s = 0.02;  ///< scheduler wakeup cadence
  obs::MetricsRegistry* metrics = nullptr;  ///< serve.* metrics (optional)
};

class ServeDaemon {
 public:
  /// `pool.rank()` must be 0 and the pool needs >= 1 worker.  Binds the
  /// client listener and starts the acceptor + worker monitors; run()
  /// does the scheduling.
  ServeDaemon(Transport& pool, DaemonConfig cfg);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  int client_port() const { return client_port_; }
  /// Bound status port, or -1 when the status server is off.
  int status_port() const;

  /// Serve until a shutdown request drains: cancels queued and running
  /// jobs, waits for every rank to come home, dissolves the workers
  /// (kBye), and joins every thread.
  void run();

  /// Thread-safe; run() returns after draining.  Also triggered by a
  /// client kShutdown frame.
  void request_shutdown();

 private:
  /// Per-job append-only chunk log + terminal marker.  Sessions wait on
  /// `cv`; the worker monitor appends and closes.  Lock order: a thread
  /// holding `mu` may not take the daemon mutex.
  struct JobStream {
    Mutex mu;
    CondVar cv;
    std::vector<ChunkMsg> chunks SCMD_GUARDED_BY(mu);
    std::int64_t base_seq SCMD_GUARDED_BY(mu) = 0;  ///< seq of chunks[0]
    std::int64_t next_seq SCMD_GUARDED_BY(mu) = 0;
    bool closed SCMD_GUARDED_BY(mu) = false;
    JobState final_state SCMD_GUARDED_BY(mu) = JobState::kDone;
    std::string final_error SCMD_GUARDED_BY(mu);
  };

  /// In-flight bookkeeping beyond the scheduler's record.
  struct RunningJob {
    std::vector<int> pool_ranks;
    std::set<int> pending_ranks;  ///< not yet kDone
    bool ctrl_sent = false;       ///< cancel or finish already issued
    bool result_seen = false;
    JobState final_state = JobState::kDone;
    std::string final_error;
    std::string cancel_reason;    ///< why the cancel was issued, if any
    double potential_energy = 0.0;
    long long steps_completed = -1;
  };

  double now_s() const;

  void accept_loop();
  void session(int fd);
  bool handle_frame(int fd, const Frame& frame);  ///< false closes
  bool handle_stream(int fd, const StreamRequest& req);
  void monitor_loop(int worker_rank);

  JobStatus status_of_locked(std::int64_t id) SCMD_REQUIRES(mu_);
  void dispatch_locked() SCMD_REQUIRES(mu_);
  void cancel_job_locked(std::int64_t id, const std::string& why)
      SCMD_REQUIRES(mu_);
  void finalize_if_drained_locked(std::int64_t id) SCMD_REQUIRES(mu_);
  void close_stream_locked(std::int64_t id, JobState state,
                           const std::string& error) SCMD_REQUIRES(mu_);
  void publish_locked() SCMD_REQUIRES(mu_);
  void update_metrics_locked() SCMD_REQUIRES(mu_);
  std::string job_dir(std::int64_t id) const;

  Transport& pool_;
  DaemonConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;

  int listen_fd_ = -1;
  int client_port_ = 0;
  std::unique_ptr<StatusServer> status_;

  std::atomic<bool> running_{true};
  std::atomic<bool> shutdown_requested_{false};

  Mutex mu_;
  CondVar tick_cv_;
  JobScheduler sched_ SCMD_GUARDED_BY(mu_);
  std::map<std::int64_t, std::shared_ptr<JobStream>> streams_
      SCMD_GUARDED_BY(mu_);
  std::map<std::int64_t, RunningJob> running_jobs_ SCMD_GUARDED_BY(mu_);
  /// Assignment with all plan-derived fields filled at submit; dispatch
  /// only adds the allocated ranks.
  std::map<std::int64_t, JobAssignment> assignment_proto_ SCMD_GUARDED_BY(mu_);
  std::vector<bool> worker_alive_ SCMD_GUARDED_BY(mu_);  ///< idx rank-1
  long long obs_seq_ SCMD_GUARDED_BY(mu_) = 0;

  Mutex conn_mu_;
  std::vector<int> conn_fds_ SCMD_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ SCMD_GUARDED_BY(conn_mu_);
  std::thread accept_thread_;
  std::vector<std::thread> monitors_;
  bool torn_down_ = false;  ///< run() completed its teardown
};

}  // namespace scmd::serve
