#include "serve/runplan.hpp"

#include "balance/rebalancer.hpp"
#include "io/checkpoint.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/bks.hpp"
#include "potentials/dihedral.hpp"
#include "potentials/gaussian_chain.hpp"
#include "potentials/lj.hpp"
#include "potentials/morse.hpp"
#include "potentials/stillinger_weber.hpp"
#include "potentials/tersoff.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"

namespace scmd::serve {

std::unique_ptr<ForceField> make_field(const std::string& name) {
  if (name == "lj") return std::make_unique<LennardJones>();
  if (name == "morse") return std::make_unique<Morse>();
  if (name == "vashishta") return std::make_unique<VashishtaSiO2>();
  if (name == "bks") return std::make_unique<BksSiO2>();
  if (name == "sw") return std::make_unique<StillingerWeber>();
  if (name == "tersoff") return std::make_unique<TersoffSilicon>();
  if (name == "chain4") return std::make_unique<ChainDihedral>();
  if (name == "chain5") return std::make_unique<GaussianChain>();
  SCMD_REQUIRE(false, "unknown field: " + name);
  return nullptr;
}

std::vector<std::string> species_symbols(const std::string& field) {
  if (field == "vashishta" || field == "bks") return {"Si", "O"};
  if (field == "sw" || field == "tersoff") return {"Si"};
  return {"X"};
}

ParticleSystem build_system(const Config& cfg, const std::string& field_name,
                            const ForceField& field, Rng& rng) {
  if (cfg.has("checkpoint_in"))
    return load_checkpoint(cfg.get("checkpoint_in", ""));
  const long long atoms = cfg.get_int("atoms", 1536);
  const double temperature = cfg.get_double("temperature", 300.0);
  const double dense_fraction = cfg.get_double("dense_fraction", 0.0);
  if (field_name == "vashishta" || field_name == "bks") {
    if (dense_fraction > 0.0)
      return make_two_phase_silica(atoms, dense_fraction,
                                   cfg.get_double("density", 2.2),
                                   temperature, rng);
    return make_silica(atoms, cfg.get_double("density", 2.2), temperature,
                       rng);
  }
  SCMD_REQUIRE(dense_fraction == 0.0,
               "dense_fraction needs a silica field (vashishta | bks)");
  ParticleSystem sys =
      make_gas(field, atoms, cfg.get_double("atoms_per_cell", 4.0),
               temperature, rng);
  return sys;
}

TupleCacheConfig parse_tuple_cache(const Config& cfg) {
  TupleCacheConfig cache_cfg;
  const std::string tc = cfg.get("tuple_cache", "off");
  if (tc.rfind("skin=", 0) == 0) {
    cache_cfg.enabled = true;
    cache_cfg.skin = std::stod(tc.substr(5));
    SCMD_REQUIRE(cache_cfg.skin >= 0.0,
                 "tuple_cache skin must be non-negative");
  } else {
    SCMD_REQUIRE(tc == "off", "tuple_cache must be off | skin=<s>, got: " + tc);
  }
  return cache_cfg;
}

std::function<std::unique_ptr<RankBalancer>(int rank)> parse_balancer(
    const Config& cfg) {
  const std::string balance = cfg.get("balance", "off");
  if (balance == "off") return nullptr;
  BalanceConfig bc;
  if (balance == "auto") {
    bc.mode = BalanceConfig::Mode::kAuto;
  } else if (balance.rfind("every=", 0) == 0) {
    bc.mode = BalanceConfig::Mode::kEvery;
    bc.every = std::stoi(balance.substr(6));
  } else {
    SCMD_REQUIRE(false, "balance must be off | auto | every=K, got: " + balance);
  }
  bc.threshold = cfg.get_double("balance_threshold", 1.2);
  bc.min_interval = static_cast<int>(cfg.get_int("balance_min_interval", 10));
  return make_rebalancer_factory(bc);
}

const std::vector<std::string>& job_config_keys() {
  static const std::vector<std::string> keys = {
      "field",        "strategy",        "atoms",
      "density",      "atoms_per_cell",  "temperature",
      "dt_fs",        "steps",           "seed",
      "dense_fraction", "ranks",         "balance",
      "balance_threshold", "balance_min_interval",
      "tuple_cache",  "metrics_every",   "checkpoint_every",
      "walltime_s"};
  return keys;
}

JobPlan build_job_plan(const Config& cfg) {
  cfg.require_known(job_config_keys());
  SCMD_REQUIRE(cfg.has("field"), "job config must set `field`");

  JobPlan plan;
  plan.field_name = cfg.get("field", "");
  plan.strategy = cfg.get("strategy", "SC");
  plan.field = make_field(plan.field_name);
  plan.dt = cfg.get_double("dt_fs", 1.0) * units::kFemtosecond;
  plan.steps = static_cast<int>(cfg.get_int("steps", 100));
  SCMD_REQUIRE(plan.steps >= 1, "job needs steps >= 1");
  plan.ranks = static_cast<int>(cfg.get_int("ranks", 2));
  SCMD_REQUIRE(plan.ranks >= 2,
               "a service job needs ranks >= 2 (the pool runs the "
               "distributed driver)");
  plan.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  plan.tuple_cache = parse_tuple_cache(cfg);
  plan.make_balancer = parse_balancer(cfg);
  plan.metrics_every = static_cast<int>(cfg.get_int("metrics_every", 1));
  SCMD_REQUIRE(plan.metrics_every >= 1, "metrics_every must be >= 1");
  plan.checkpoint_every = static_cast<int>(cfg.get_int("checkpoint_every", 0));
  SCMD_REQUIRE(plan.checkpoint_every >= 0,
               "checkpoint_every must be >= 0");
  plan.walltime_s = cfg.get_double("walltime_s", 0.0);
  SCMD_REQUIRE(plan.walltime_s >= 0.0, "walltime_s must be >= 0");

  Rng rng(plan.seed);
  plan.system = build_system(cfg, plan.field_name, *plan.field, rng);
  return plan;
}

}  // namespace scmd::serve
