#include "serve/worker.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "net/tags.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/comm.hpp"
#include "parallel/parallel_engine.hpp"
#include "serve/protocol.hpp"
#include "serve/runplan.hpp"
#include "serve/subset.hpp"
#include "support/config.hpp"
#include "support/error.hpp"

namespace scmd::serve {

namespace {

/// MetricsSink that ships every emitted record upstream as a metrics
/// chunk (the PR 7 append-only log shape, over the wire instead of a
/// file).  Lives on the job root only; the daemon appends the chunks to
/// the job's stream buffer in arrival order (= emit order, by the
/// per-channel FIFO contract).
class ChunkSink final : public obs::MetricsSink {
 public:
  ChunkSink(Transport& pool, std::int64_t job_id)
      : pool_(pool), job_id_(job_id) {}

  void write_step(long long step, const obs::MetricsRegistry& reg) override {
    buffer_.str(std::string());
    line_.write_step(step, reg);
    const std::string line = buffer_.str();
    UpMsg msg;
    msg.kind = UpKind::kChunk;
    msg.job_id = job_id_;
    msg.chunk_kind = ChunkKind::kMetrics;
    msg.step = step;
    msg.payload.resize(line.size());
    std::memcpy(msg.payload.data(), line.data(), line.size());
    pool_.send(0, tags::kSvcUp, encode_up(msg));
  }

 private:
  Transport& pool_;
  std::int64_t job_id_;
  std::ostringstream buffer_;
  obs::JsonlSink line_{buffer_};
};

/// One job on this worker.  Every subset rank executes this; job-local
/// rank 0 additionally streams metrics/checkpoint chunks and the
/// result.
void run_one_job(Transport& pool, const JobAssignment& a) {
  const bool job_root = !a.pool_ranks.empty() &&
                        a.pool_ranks[0] == pool.rank();

  // Control listener: consumes this job's single kSvcCtrl frame.  A
  // kCancel flips the abort flag the driver polls; a kFinish (sent by
  // the daemon once the result arrived) just releases the listener.
  std::atomic<int> abort_flag{0};
  std::thread ctrl([&pool, &abort_flag] {
    const CtrlMsg msg = decode_ctrl(pool.recv(0, tags::kSvcCtrl));
    if (msg.action == CtrlAction::kCancel) abort_flag.store(1);
  });

  const auto started = std::chrono::steady_clock::now();
  UpMsg result;
  result.kind = UpKind::kResult;
  result.job_id = a.job_id;

  try {
    JobPlan plan = build_job_plan(Config::parse(a.config_text));
    SCMD_REQUIRE(plan.ranks == static_cast<int>(a.pool_ranks.size()),
                 "assignment rank count disagrees with the job config");
    result.steps_total = plan.steps;

    SubsetTransport subset(pool, std::vector<int>(a.pool_ranks.begin(),
                                                  a.pool_ranks.end()));
    Comm comm(subset);

    ParallelRunConfig pcfg;
    pcfg.dt = plan.dt;
    pcfg.num_steps = plan.steps;
    pcfg.tuple_cache = plan.tuple_cache;
    pcfg.make_balancer = plan.make_balancer;
    pcfg.metrics_every = plan.metrics_every;
    const double walltime_s = a.walltime_s;
    pcfg.poll_abort = [&abort_flag, started, walltime_s] {
      const int flagged = abort_flag.load();
      if (flagged != 0) return flagged;
      if (walltime_s > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - started;
        if (elapsed.count() > walltime_s) return 2;
      }
      return 0;
    };

    // Per-job observability on the job root: a registry whose only sink
    // streams chunks upstream, and (optionally) a trace session saved
    // into the job directory.  The driver's telemetry decision is
    // collective, driven by root's hooks — exactly scmd_run's shape.
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<obs::TraceSession> trace;
    if (job_root && a.want_telemetry) {
      metrics = std::make_unique<obs::MetricsRegistry>();
      metrics->set_attr("field", plan.field_name);
      metrics->set_attr("strategy", plan.strategy);
      metrics->set_attr("job_id", std::to_string(a.job_id));
      metrics->add_sink(std::make_unique<ChunkSink>(pool, a.job_id));
    }
    if (job_root && !a.trace_path.empty())
      trace = std::make_unique<obs::TraceSession>();
    pcfg.metrics = metrics.get();
    pcfg.trace = trace.get();

    if (a.checkpoint_every > 0 && !a.ckpt_dir.empty()) {
      pcfg.durability.checkpoint_every = a.checkpoint_every;
      pcfg.durability.checkpoint_dir = a.ckpt_dir;
    }
    if (a.restore && !a.ckpt_dir.empty()) {
      pcfg.durability.restore = true;
      pcfg.durability.checkpoint_dir = a.ckpt_dir;
    }

    ParticleSystem sys = std::move(*plan.system);
    const ProcessGrid grid = ProcessGrid::factor(plan.ranks);
    const ParallelRunResult res = run_parallel_md_rank(
        sys, *plan.field, plan.strategy, grid, pcfg, comm);

    result.potential_energy = res.potential_energy;
    result.steps_completed = res.steps_completed;
    result.cancelled = res.abort_reason == 1;
    if (res.abort_reason == 2) {
      result.failed = true;
      result.error = "walltime cap exceeded after " +
                     std::to_string(res.steps_completed) + " step(s)";
    }

    if (job_root && trace) trace->save(a.trace_path);
    if (job_root && a.want_checkpoint && !result.failed) {
      // Final gathered state as one checkpoint chunk, so a client can
      // reconstruct (or diff) the exact end state without filesystem
      // access to the daemon host.
      ckpt::CheckpointData data;
      data.system = sys;
      data.clock.step = res.steps_completed;
      data.clock.total_steps = plan.steps;
      data.clock.dt = plan.dt;
      UpMsg chunk;
      chunk.kind = UpKind::kChunk;
      chunk.job_id = a.job_id;
      chunk.chunk_kind = ChunkKind::kCheckpoint;
      chunk.step = res.steps_completed;
      chunk.payload = ckpt::encode_checkpoint(data);
      pool.send(0, tags::kSvcUp, encode_up(chunk));
    }
  } catch (const std::exception& e) {
    result.failed = true;
    result.error = e.what();
  }

  // Order matters: the root's result triggers the daemon's kFinish,
  // which releases every subset rank's control listener — so report
  // before joining, and report the rank free (kDone) only after the
  // listener drained the control channel.
  if (job_root) pool.send(0, tags::kSvcUp, encode_up(result));
  ctrl.join();
  UpMsg done;
  done.kind = UpKind::kDone;
  done.job_id = a.job_id;
  pool.send(0, tags::kSvcUp, encode_up(done));
}

}  // namespace

void run_worker(Transport& pool) {
  SCMD_REQUIRE(pool.rank() >= 1, "pool rank 0 is the daemon, not a worker");
  for (;;) {
    const JobAssignment a =
        decode_assignment(pool.recv(0, tags::kSvcAssign));
    if (a.shutdown) {
      UpMsg bye;
      bye.kind = UpKind::kBye;
      pool.send(0, tags::kSvcUp, encode_up(bye));
      return;
    }
    run_one_job(pool, a);
  }
}

}  // namespace scmd::serve
