#pragma once

/// \file subset.hpp
/// A Transport view over a subset of a pool's ranks — the space-sharing
/// primitive behind multi-tenant serving (docs/SERVICE.md).
///
/// A job assigned pool ranks {3, 5, 6} sees an ordinary 3-rank cluster:
/// job-local rank i is pool rank `pool_ranks[i]`, point-to-point sends
/// remap the destination and pass the tag through unchanged, and the
/// collectives are re-implemented job-locally (rooted at job rank 0 on
/// the registered service tags), because the parent transport's
/// collectives span the *whole* pool.
///
/// Why tag pass-through is safe: the scheduler allocates disjoint rank
/// subsets, so two concurrent jobs never share a (src, dst) pair — the
/// per-(src, dst, tag) FIFO contract of docs/TRANSPORT.md carries over
/// untouched.  Sequential jobs on the same ranks are separated by the
/// assignment/done handshake (serve/worker.hpp): a worker only reports
/// its rank free after the job's final barrier drained every channel.

#include <vector>

#include "net/transport.hpp"

namespace scmd::serve {

class SubsetTransport final : public Transport {
 public:
  /// `pool_ranks[i]` is job-local rank i's pool rank; `self` is this
  /// endpoint's pool rank and must appear in the list.
  SubsetTransport(Transport& parent, std::vector<int> pool_ranks);

  int rank() const override { return local_rank_; }
  int num_ranks() const override {
    return static_cast<int>(pool_ranks_.size());
  }

  void send(int dst, int tag, Bytes payload) override;
  Bytes recv(int src, int tag) override;

  void barrier() override;
  double allreduce_sum(double value) override;
  double allreduce_max(double value) override;

  /// Parent stats delta since this subset view was created, so per-job
  /// accounting is not polluted by earlier jobs on the same endpoint.
  TransportStats stats() const override;

 private:
  int global(int local) const;

  Transport& parent_;
  std::vector<int> pool_ranks_;
  int local_rank_ = -1;
  TransportStats baseline_;
};

}  // namespace scmd::serve
