#pragma once

/// \file runplan.hpp
/// Config -> runnable-simulation translation, shared by `scmd_run` and
/// the serve daemon's workers.
///
/// Bit-for-bit parity between a daemon-served job and the same config
/// under `scmd_run` is an acceptance criterion (docs/SERVICE.md), so
/// there is exactly one implementation of "config to field/system/
/// strategy/knobs": both drivers call the helpers below, consume the
/// RNG in the same order, and hand the identical initial state to the
/// same per-rank MD driver.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engines/strategy.hpp"
#include "md/system.hpp"
#include "parallel/rank_engine.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"

namespace scmd {
class RankBalancer;
}

namespace scmd::serve {

/// Force-field factory: lj | morse | vashishta | bks | sw | tersoff |
/// chain4 | chain5.  Throws scmd::Error for anything else.
std::unique_ptr<ForceField> make_field(const std::string& name);

/// Trajectory-output species labels for a field.
std::vector<std::string> species_symbols(const std::string& field);

/// Build the initial system a config describes: `checkpoint_in` when
/// set, else the silica/two-phase/gas builders, consuming `rng`
/// deterministically (atoms / density / atoms_per_cell / temperature /
/// dense_fraction keys).
ParticleSystem build_system(const Config& cfg, const std::string& field_name,
                            const ForceField& field, Rng& rng);

/// Parse `tuple_cache` (off | skin=<s>).
TupleCacheConfig parse_tuple_cache(const Config& cfg);

/// Parse `balance`/`balance_threshold`/`balance_min_interval` into a
/// per-rank balancer factory; null when `balance=off`.
std::function<std::unique_ptr<RankBalancer>(int rank)> parse_balancer(
    const Config& cfg);

/// The config keys a *service job* may set — a deliberate subset of the
/// scmd_run surface: no transport/rank plumbing (the pool owns that),
/// no thermostat (parallel runs are NVE), no output paths (results
/// stream back as chunks).
const std::vector<std::string>& job_config_keys();

/// Everything a worker needs to run one job.  Built identically on
/// every subset rank from the assignment's config text (same seed, same
/// builder order), like scmd_run's tcp ranks.
struct JobPlan {
  std::string field_name;
  std::string strategy = "SC";
  std::unique_ptr<ForceField> field;
  std::optional<ParticleSystem> system;
  int ranks = 2;           ///< pool ranks the job wants
  double dt = 0.0;         ///< internal units
  int steps = 0;
  std::uint64_t seed = 1;
  TupleCacheConfig tuple_cache;
  std::function<std::unique_ptr<RankBalancer>(int rank)> make_balancer;
  int metrics_every = 1;
  int checkpoint_every = 0;
  double walltime_s = 0.0;  ///< job-requested cap; 0 = daemon default
};

/// Parse + validate a job config (throws scmd::Error with a message fit
/// for the submit reject path: unknown key, bad field, bad ranks, ...).
JobPlan build_job_plan(const Config& cfg);

}  // namespace scmd::serve
