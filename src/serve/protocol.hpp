#pragma once

/// \file protocol.hpp
/// Wire grammar for MD-as-a-service (docs/SERVICE.md).
///
/// Two protocols share this file:
///
///  1. The **client session protocol** between `scmd_client` and the
///     daemon's client socket: u32-LE length-prefixed frames (the same
///     outer framing as net/status_server and net/tcp), each frame
///     `u32 magic | u16 type | body`.  Bodies are encoded with the
///     bounds-checked ckpt::ByteWriter/ByteReader pair, so a truncated
///     or garbage frame is an scmd::Error at decode time — the daemon
///     answers kError and drops the connection, it never crashes.
///
///  2. The **pool control protocol** between the daemon (pool rank 0)
///     and its workers, carried over the Transport on the registered
///     `service` tag window (net/tags.hpp): job assignments down on
///     kSvcAssign, exactly one control verdict (cancel or finish) per
///     worker per job on kSvcCtrl, and chunk/result/done/bye traffic up
///     on kSvcUp.  A running job's MD traffic never touches this
///     window — serve::SubsetTransport remaps it onto the ordinary MD
///     tags between pool workers.

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "net/transport.hpp"

namespace scmd::serve {

/// First four body bytes of every client-protocol frame ("SCv1" LE).
inline constexpr std::uint32_t kFrameMagic = 0x31764353;

/// A frame larger than this is a confused client, not a request (the
/// largest legitimate frame is a checkpoint chunk).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Client-protocol frame types.  Append-only: renumbering breaks old
/// clients.
enum class MsgType : std::uint16_t {
  kSubmit = 1,      ///< client -> daemon: SubmitRequest
  kSubmitOk = 2,    ///< daemon -> client: job id
  kPoll = 3,        ///< client -> daemon: job id
  kStatus = 4,      ///< daemon -> client: JobStatus
  kStream = 5,      ///< client -> daemon: StreamRequest
  kChunk = 6,       ///< daemon -> client: ChunkMsg (streaming)
  kStreamEnd = 7,   ///< daemon -> client: StreamEnd (terminal)
  kCancel = 8,      ///< client -> daemon: job id
  kCancelOk = 9,    ///< daemon -> client: JobStatus after the cancel
  kJobs = 10,       ///< client -> daemon: empty body
  kJobsInfo = 11,   ///< daemon -> client: job-table JSON string
  kShutdown = 12,   ///< client -> daemon: empty body
  kShutdownOk = 13, ///< daemon -> client: empty body
  kError = 14,      ///< daemon -> client: message string
};

/// Job lifecycle (docs/SERVICE.md).  Wire-visible: values are stable.
enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};

const char* job_state_name(JobState s);
bool job_state_terminal(JobState s);

/// Stream chunk payloads (the PR 7 append-only log shape).
enum class ChunkKind : std::uint8_t {
  kMetrics = 0,     ///< JSONL metric record(s) from the job's registry
  kCheckpoint = 1,  ///< ckpt::encode_checkpoint of the final state
};

// ---------------------------------------------------------------------
// Client session protocol bodies.

struct SubmitRequest {
  std::string config_text;      ///< INI-lite job config (serve/runplan.hpp)
  std::int32_t priority = 0;    ///< higher runs first within the queue
  bool want_checkpoint = false; ///< stream the final state as a chunk
  std::int64_t resume_job = 0;  ///< resume from this job's checkpoints (0 = fresh)
};

struct JobStatus {
  std::int64_t job_id = 0;
  JobState state = JobState::kQueued;
  std::string error;            ///< non-empty for kFailed
  std::int64_t steps_done = 0;
  std::int64_t steps_total = 0;
  std::int64_t chunks = 0;      ///< stream chunks recorded so far
  double potential_energy = 0.0;  ///< valid once kDone
  double steps_per_sec = 0.0;
  std::vector<std::int32_t> pool_ranks;  ///< ranks held while running
};

struct StreamRequest {
  std::int64_t job_id = 0;
  std::int64_t from_seq = 0;  ///< first chunk sequence number wanted
};

struct ChunkMsg {
  std::int64_t job_id = 0;
  std::int64_t seq = 0;       ///< dense per-job sequence, from 0
  ChunkKind kind = ChunkKind::kMetrics;
  std::int64_t step = 0;      ///< MD step the chunk describes
  Bytes payload;
};

struct StreamEnd {
  std::int64_t job_id = 0;
  JobState state = JobState::kDone;
  std::string error;
};

/// One decoded client-protocol frame.
struct Frame {
  MsgType type = MsgType::kError;
  Bytes body;
};

/// body -> `magic | type | body` bytes ready for length-prefixed write.
Bytes encode_frame(MsgType type, const Bytes& body);

/// Validate magic + known type; throws scmd::Error on garbage.
Frame decode_frame(const Bytes& payload);

Bytes encode_submit(const SubmitRequest& req);
SubmitRequest decode_submit(const Bytes& body);

Bytes encode_job_id(std::int64_t job_id);
std::int64_t decode_job_id(const Bytes& body);

Bytes encode_status(const JobStatus& st);
JobStatus decode_status(const Bytes& body);

Bytes encode_stream_req(const StreamRequest& req);
StreamRequest decode_stream_req(const Bytes& body);

Bytes encode_chunk(const ChunkMsg& chunk);
ChunkMsg decode_chunk(const Bytes& body);

Bytes encode_stream_end(const StreamEnd& end);
StreamEnd decode_stream_end(const Bytes& body);

Bytes encode_error(const std::string& message);
std::string decode_error(const Bytes& body);

Bytes encode_text(const std::string& text);
std::string decode_text(const Bytes& body);

// ---------------------------------------------------------------------
// Pool control protocol (daemon <-> workers, service tag window).

/// Daemon -> worker on tags::kSvcAssign.  `shutdown` dissolves the
/// worker loop; otherwise the worker joins job `job_id` as pool rank
/// `pool_ranks[i]` (job-local rank i; pool_ranks[0] is the job root).
struct JobAssignment {
  bool shutdown = false;
  std::int64_t job_id = 0;
  std::string config_text;
  std::vector<std::int32_t> pool_ranks;
  bool want_telemetry = true;
  bool want_checkpoint = false;  ///< job root streams a final-state chunk
  std::string ckpt_dir;          ///< per-job snapshot dir ("" = off)
  std::int32_t checkpoint_every = 0;
  bool restore = false;          ///< resume from ckpt_dir's newest snapshot
  std::string trace_path;        ///< job root saves its merged trace here
  double walltime_s = 0.0;       ///< 0 = uncapped
  std::int32_t metrics_every = 1;
};

Bytes encode_assignment(const JobAssignment& a);
JobAssignment decode_assignment(const Bytes& payload);

/// Daemon -> worker on tags::kSvcCtrl: exactly one per worker per job.
/// kCancel arrives mid-run (the worker's poll_abort picks it up);
/// kFinish arrives after the job root reported its result, releasing
/// the worker's control listener so the next assignment finds a clean
/// channel.
enum class CtrlAction : std::uint8_t { kCancel = 1, kFinish = 2 };

struct CtrlMsg {
  std::int64_t job_id = 0;
  CtrlAction action = CtrlAction::kFinish;
};

Bytes encode_ctrl(const CtrlMsg& msg);
CtrlMsg decode_ctrl(const Bytes& payload);

/// Worker -> daemon on tags::kSvcUp.
enum class UpKind : std::uint8_t {
  kChunk = 1,   ///< job root: stream chunk (metrics/checkpoint)
  kResult = 2,  ///< job root: the job's outcome
  kDone = 3,    ///< every subset rank: job fully torn down, rank free
  kBye = 4,     ///< worker loop exited after a shutdown assignment
};

struct UpMsg {
  UpKind kind = UpKind::kDone;
  std::int64_t job_id = 0;
  // kChunk:
  ChunkKind chunk_kind = ChunkKind::kMetrics;
  std::int64_t step = 0;
  Bytes payload;
  // kResult:
  bool failed = false;
  bool cancelled = false;
  std::string error;
  double potential_energy = 0.0;
  std::int64_t steps_completed = 0;
  std::int64_t steps_total = 0;
};

Bytes encode_up(const UpMsg& msg);
UpMsg decode_up(const Bytes& payload);

// ---------------------------------------------------------------------
// Socket helpers for the client protocol (u32-LE length prefix).

/// Write one frame; false on a broken peer (never throws).
bool write_frame(int fd, MsgType type, const Bytes& body);

/// Read one length-prefixed frame payload.  Returns false on clean
/// EOF/reset; throws scmd::Error when the peer announces an oversized
/// frame (protocol violation — the stream cannot be resynchronized).
bool read_frame_payload(int fd, Bytes* payload);

}  // namespace scmd::serve
