#pragma once

/// \file worker.hpp
/// The pool worker loop: one warm rank serving many jobs
/// (docs/SERVICE.md).
///
/// A worker blocks on tags::kSvcAssign, joins each assigned job as one
/// rank of a serve::SubsetTransport cluster, re-enters the ordinary
/// distributed MD driver (parallel/parallel_engine.hpp) with the job's
/// fresh config, and reports chunks/result/done upward on tags::kSvcUp.
/// Cancellation rides a dedicated control listener: per job, exactly
/// one tags::kSvcCtrl frame arrives — kCancel mid-run (picked up by the
/// driver's poll_abort at the next step boundary) or kFinish once the
/// job root's result reached the daemon — so the listener thread always
/// terminates and the channel is clean before the worker reports its
/// rank free.

#include "net/transport.hpp"

namespace scmd::serve {

/// Serve jobs until a shutdown assignment arrives.  `pool` is this
/// worker's endpoint of the pool transport (pool rank >= 1); rank 0 is
/// the daemon.  Returns after acknowledging shutdown with a kBye.
void run_worker(Transport& pool);

}  // namespace scmd::serve
