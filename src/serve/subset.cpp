#include "serve/subset.hpp"

#include <utility>

#include "net/tags.hpp"
#include "support/error.hpp"

namespace scmd::serve {

SubsetTransport::SubsetTransport(Transport& parent,
                                 std::vector<int> pool_ranks)
    : parent_(parent), pool_ranks_(std::move(pool_ranks)) {
  SCMD_REQUIRE(!pool_ranks_.empty(), "subset transport needs >= 1 rank");
  const int self = parent_.rank();
  for (std::size_t i = 0; i < pool_ranks_.size(); ++i) {
    const int r = pool_ranks_[i];
    SCMD_REQUIRE(r >= 0 && r < parent_.num_ranks(),
                 "subset rank " + std::to_string(r) +
                     " is outside the pool");
    if (r == self) local_rank_ = static_cast<int>(i);
  }
  SCMD_REQUIRE(local_rank_ >= 0,
               "this endpoint (pool rank " + std::to_string(self) +
                   ") is not in the job's rank subset");
  baseline_ = parent_.stats();
}

int SubsetTransport::global(int local) const {
  SCMD_REQUIRE(local >= 0 && local < num_ranks(),
               "subset rank " + std::to_string(local) + " out of range");
  return pool_ranks_[static_cast<std::size_t>(local)];
}

void SubsetTransport::send(int dst, int tag, Bytes payload) {
  parent_.send(global(dst), tag, std::move(payload));
}

Bytes SubsetTransport::recv(int src, int tag) {
  return parent_.recv(global(src), tag);
}

// Collectives: job-rank-0-rooted over point-to-point on the service
// window.  The gather leg and the release leg use distinct tags so a
// rank racing ahead into the next collective cannot consume a peer's
// contribution to this one; within one (src, dst, tag) channel the
// transport's FIFO order sequences back-to-back collectives.

void SubsetTransport::barrier() { (void)allreduce_sum(0.0); }

double SubsetTransport::allreduce_sum(double value) {
  const int n = num_ranks();
  if (n == 1) return value;
  if (local_rank_ == 0) {
    double acc = value;
    for (int r = 1; r < n; ++r) {
      const auto v = unpack<double>(recv(r, tags::kSvcReduce));
      SCMD_REQUIRE(v.size() == 1, "malformed subset allreduce contribution");
      acc += v[0];
    }
    for (int r = 1; r < n; ++r)
      send(r, tags::kSvcBcast, pack(std::vector<double>{acc}));
    return acc;
  }
  send(0, tags::kSvcReduce, pack(std::vector<double>{value}));
  const auto v = unpack<double>(recv(0, tags::kSvcBcast));
  SCMD_REQUIRE(v.size() == 1, "malformed subset allreduce result");
  return v[0];
}

double SubsetTransport::allreduce_max(double value) {
  const int n = num_ranks();
  if (n == 1) return value;
  if (local_rank_ == 0) {
    double acc = value;
    for (int r = 1; r < n; ++r) {
      const auto v = unpack<double>(recv(r, tags::kSvcReduce));
      SCMD_REQUIRE(v.size() == 1, "malformed subset allreduce contribution");
      if (v[0] > acc) acc = v[0];
    }
    for (int r = 1; r < n; ++r)
      send(r, tags::kSvcBcast, pack(std::vector<double>{acc}));
    return acc;
  }
  send(0, tags::kSvcReduce, pack(std::vector<double>{value}));
  const auto v = unpack<double>(recv(0, tags::kSvcBcast));
  SCMD_REQUIRE(v.size() == 1, "malformed subset allreduce result");
  return v[0];
}

TransportStats SubsetTransport::stats() const {
  const TransportStats now = parent_.stats();
  TransportStats delta;
  delta.messages_sent = now.messages_sent - baseline_.messages_sent;
  delta.bytes_sent = now.bytes_sent - baseline_.bytes_sent;
  delta.messages_received = now.messages_received - baseline_.messages_received;
  delta.bytes_received = now.bytes_received - baseline_.bytes_received;
  delta.recv_stall_ns = now.recv_stall_ns - baseline_.recv_stall_ns;
  // High watermarks do not subtract; report the parent's.
  delta.max_mailbox_depth = now.max_mailbox_depth;
  return delta;
}

}  // namespace scmd::serve
