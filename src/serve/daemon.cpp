#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <sstream>
#include <utility>

#include "net/status_server.hpp"
#include "net/tags.hpp"
#include "net/tcp.hpp"
#include "serve/runplan.hpp"
#include "support/config.hpp"
#include "support/error.hpp"

namespace scmd::serve {

namespace {

/// mkdir for the (at most two-level) job artifact directories; an
/// existing directory is success.
void ensure_dir(const std::string& path) {
  if (path.empty()) return;
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw Error("serve: cannot create directory '" + path +
              "': " + std::strerror(errno));
}

bool dir_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// True when the streaming client hung up (half-close or reset).  A
/// readable byte means a pipelined request, which is a live client.
bool peer_gone(int fd) {
  char probe = 0;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;
  if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
  return false;
}

}  // namespace

ServeDaemon::ServeDaemon(Transport& pool, DaemonConfig cfg)
    : pool_(pool),
      cfg_(std::move(cfg)),
      epoch_(std::chrono::steady_clock::now()),
      sched_(pool.num_ranks() - 1) {
  SCMD_REQUIRE(pool_.rank() == 0, "the daemon is pool rank 0");
  SCMD_REQUIRE(pool_.num_ranks() >= 2, "the pool needs >= 1 worker rank");
  const int workers = pool_.num_ranks() - 1;
  ensure_dir(cfg_.dir);
  if (cfg_.metrics != nullptr) {
    // Register the whole serve.* gauge set up front so the JSONL schema
    // is complete from the first record (tools/validate_obs.py relies
    // on a rectangular stream).
    obs::MetricsRegistry& m = *cfg_.metrics;
    m.set_attr("role", "serve_daemon");
    for (const char* name :
         {"serve.queue_depth", "serve.jobs_active", "serve.jobs_submitted",
          "serve.jobs_done", "serve.jobs_failed", "serve.jobs_cancelled",
          "serve.ranks_total", "serve.ranks_busy", "serve.ranks_free",
          "serve.ranks_dead", "serve.job_latency_s"}) {
      m.set(name, 0.0);
    }
    m.set("serve.ranks_total", workers);
    m.set("serve.ranks_free", workers);
  }
  {
    const MutexLock lock(mu_);
    worker_alive_.assign(static_cast<std::size_t>(workers), true);
  }
  if (cfg_.status_port >= 0)
    status_ = std::make_unique<StatusServer>(cfg_.status_port);
  const auto [fd, bound] = bind_listener("0.0.0.0", cfg_.client_port);
  listen_fd_ = fd;
  client_port_ = bound;
  monitors_.reserve(static_cast<std::size_t>(workers));
  for (int w = 1; w <= workers; ++w)
    monitors_.emplace_back([this, w] { monitor_loop(w); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ServeDaemon::~ServeDaemon() {
  // run() is the real teardown; this covers the error path where the
  // caller constructed a daemon but never served.
  if (!torn_down_) {
    request_shutdown();
    run();
  }
}

int ServeDaemon::status_port() const {
  return status_ ? status_->port() : -1;
}

double ServeDaemon::now_s() const {
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - epoch_;
  return d.count();
}

std::string ServeDaemon::job_dir(std::int64_t id) const {
  return cfg_.dir + "/job-" + std::to_string(id);
}

void ServeDaemon::request_shutdown() {
  shutdown_requested_.store(true);
  const MutexLock lock(mu_);
  tick_cv_.notify_all();
}

// ---------------------------------------------------------------------
// Scheduling core (all under mu_).

void ServeDaemon::dispatch_locked() {
  if (shutdown_requested_.load()) return;
  for (;;) {
    const std::int64_t id = sched_.start_next(now_s());
    if (id == 0) break;
    const JobRecord* rec = sched_.find(id);
    SCMD_REQUIRE(rec != nullptr, "started job has a record");
    JobAssignment& a = assignment_proto_.at(id);
    a.pool_ranks.clear();
    RunningJob rj;
    for (const int r : rec->pool_ranks) {
      a.pool_ranks.push_back(static_cast<std::int32_t>(r));
      rj.pool_ranks.push_back(r);
      rj.pending_ranks.insert(r);
    }
    const Bytes payload = encode_assignment(a);
    running_jobs_.emplace(id, std::move(rj));
    for (const int r : rec->pool_ranks)
      pool_.send(r, tags::kSvcAssign, payload);
    if (cfg_.metrics != nullptr)
      cfg_.metrics->set("serve.job_latency_s",
                        rec->started_s - rec->submitted_s);
  }
}

void ServeDaemon::cancel_job_locked(std::int64_t id, const std::string& why) {
  const JobRecord* rec = sched_.find(id);
  if (rec == nullptr) return;
  if (rec->state == JobState::kQueued) {
    sched_.cancel_queued(id, now_s());
    if (!why.empty()) sched_.find_mutable(id)->error = why;
    close_stream_locked(id, JobState::kCancelled, why);
    update_metrics_locked();
    tick_cv_.notify_all();
    return;
  }
  if (rec->state != JobState::kRunning) return;  // already terminal
  const auto it = running_jobs_.find(id);
  if (it == running_jobs_.end()) return;
  RunningJob& rj = it->second;
  if (rj.ctrl_sent || rj.result_seen) return;  // interrupt already in flight
  rj.cancel_reason = why;
  CtrlMsg ctrl;
  ctrl.job_id = id;
  ctrl.action = CtrlAction::kCancel;
  const Bytes payload = encode_ctrl(ctrl);
  for (const int r : rj.pool_ranks) {
    if (worker_alive_[static_cast<std::size_t>(r - 1)])
      pool_.send(r, tags::kSvcCtrl, payload);
  }
  rj.ctrl_sent = true;
}

void ServeDaemon::finalize_if_drained_locked(std::int64_t id) {
  const auto it = running_jobs_.find(id);
  if (it == running_jobs_.end()) return;
  RunningJob& rj = it->second;
  if (!rj.result_seen || !rj.pending_ranks.empty()) return;
  std::string error = rj.final_error;
  if (rj.final_state == JobState::kCancelled && error.empty())
    error = rj.cancel_reason;
  sched_.finish(id, rj.final_state, error, rj.potential_energy,
                rj.steps_completed, now_s());
  close_stream_locked(id, rj.final_state, error);
  running_jobs_.erase(it);
  dispatch_locked();  // freed ranks can seed queued work immediately
  update_metrics_locked();
  publish_locked();
  tick_cv_.notify_all();
}

void ServeDaemon::close_stream_locked(std::int64_t id, JobState state,
                                      const std::string& error) {
  const auto it = streams_.find(id);
  if (it == streams_.end()) return;
  const std::shared_ptr<JobStream> stream = it->second;
  const MutexLock slock(stream->mu);
  if (stream->closed) return;
  stream->closed = true;
  stream->final_state = state;
  stream->final_error = error;
  stream->cv.notify_all();
}

JobStatus ServeDaemon::status_of_locked(std::int64_t id) {
  const JobRecord* rec = sched_.find(id);
  SCMD_REQUIRE(rec != nullptr, "unknown job " + std::to_string(id));
  JobStatus st;
  st.job_id = id;
  st.state = rec->state;
  st.error = rec->error;
  st.steps_done = rec->steps_done;
  st.steps_total = rec->steps_total;
  st.chunks = rec->chunks;
  st.potential_energy = rec->potential_energy;
  st.steps_per_sec = rec->steps_per_sec;
  for (const int r : rec->pool_ranks)
    st.pool_ranks.push_back(static_cast<std::int32_t>(r));
  return st;
}

void ServeDaemon::publish_locked() {
  if (!status_) return;
  const double now = now_s();
  status_->publish("jobs", sched_.table_json(now));
  std::ostringstream os;
  os << "{\"daemon\":\"scmd_serve\",\"client_port\":" << client_port_
     << ",\"workers\":" << sched_.num_workers()
     << ",\"free\":" << sched_.free_ranks()
     << ",\"dead\":" << sched_.dead_ranks()
     << ",\"queue_depth\":" << sched_.queue_depth()
     << ",\"jobs_active\":" << sched_.active_jobs()
     << ",\"jobs_submitted\":" << sched_.jobs_submitted()
     << ",\"uptime_s\":" << now << ",\"shutting_down\":"
     << (shutdown_requested_.load() ? "true" : "false") << "}";
  status_->publish("status", os.str());
}

void ServeDaemon::update_metrics_locked() {
  if (cfg_.metrics == nullptr) return;
  long long done = 0;
  long long failed = 0;
  long long cancelled = 0;
  for (const JobRecord* rec : sched_.jobs()) {
    if (rec->state == JobState::kDone) ++done;
    if (rec->state == JobState::kFailed) ++failed;
    if (rec->state == JobState::kCancelled) ++cancelled;
  }
  obs::MetricsRegistry& m = *cfg_.metrics;
  const int workers = sched_.num_workers();
  const int free = sched_.free_ranks();
  const int dead = sched_.dead_ranks();
  m.set("serve.queue_depth", sched_.queue_depth());
  m.set("serve.jobs_active", sched_.active_jobs());
  m.set("serve.jobs_submitted",
        static_cast<double>(sched_.jobs_submitted()));
  m.set("serve.jobs_done", static_cast<double>(done));
  m.set("serve.jobs_failed", static_cast<double>(failed));
  m.set("serve.jobs_cancelled", static_cast<double>(cancelled));
  m.set("serve.ranks_total", workers);
  m.set("serve.ranks_busy", workers - free - dead);
  m.set("serve.ranks_free", free);
  m.set("serve.ranks_dead", dead);
  m.emit(obs_seq_++);
}

// ---------------------------------------------------------------------
// Worker monitors (one per pool worker rank).

void ServeDaemon::monitor_loop(int worker_rank) {
  for (;;) {
    UpMsg msg;
    try {
      msg = decode_up(pool_.recv(worker_rank, tags::kSvcUp));
    } catch (const std::exception&) {
      // Dead peer (or an unparseable frame, which we treat the same):
      // retire the rank, fail whatever it was running, keep serving on
      // the survivors.
      MutexLock lock(mu_);
      worker_alive_[static_cast<std::size_t>(worker_rank - 1)] = false;
      sched_.mark_rank_dead(worker_rank);
      std::vector<std::int64_t> affected;
      for (const auto& [id, rj] : running_jobs_) {
        if (std::find(rj.pool_ranks.begin(), rj.pool_ranks.end(),
                      worker_rank) != rj.pool_ranks.end())
          affected.push_back(id);
      }
      for (const std::int64_t id : affected) {
        RunningJob& rj = running_jobs_.at(id);
        rj.pending_ranks.erase(worker_rank);
        if (!rj.result_seen) {
          // The root may itself be dead; don't wait for a result that
          // can never come.
          rj.result_seen = true;
          rj.final_state = JobState::kFailed;
          rj.final_error = "pool rank " + std::to_string(worker_rank) +
                           " died mid-job";
        }
        if (!rj.ctrl_sent) {
          CtrlMsg ctrl;
          ctrl.job_id = id;
          ctrl.action = CtrlAction::kCancel;
          const Bytes payload = encode_ctrl(ctrl);
          for (const int r : rj.pool_ranks) {
            if (r != worker_rank &&
                worker_alive_[static_cast<std::size_t>(r - 1)])
              pool_.send(r, tags::kSvcCtrl, payload);
          }
          rj.ctrl_sent = true;
        }
        finalize_if_drained_locked(id);
      }
      update_metrics_locked();
      publish_locked();
      tick_cv_.notify_all();
      return;
    }

    if (msg.kind == UpKind::kBye) return;

    MutexLock lock(mu_);
    switch (msg.kind) {
      case UpKind::kChunk: {
        const auto it = streams_.find(msg.job_id);
        long long nchunks = 0;
        if (it != streams_.end()) {
          const std::shared_ptr<JobStream> stream = it->second;
          ChunkMsg chunk;
          chunk.job_id = msg.job_id;
          chunk.kind = msg.chunk_kind;
          chunk.step = msg.step;
          chunk.payload = std::move(msg.payload);
          const MutexLock slock(stream->mu);  // order: mu_ then stream mu
          chunk.seq = stream->next_seq++;
          stream->chunks.push_back(std::move(chunk));
          if (stream->chunks.size() > cfg_.max_chunks_retained) {
            const auto drop = static_cast<std::ptrdiff_t>(
                stream->chunks.size() - cfg_.max_chunks_retained);
            stream->chunks.erase(stream->chunks.begin(),
                                 stream->chunks.begin() + drop);
            stream->base_seq += drop;
          }
          nchunks = stream->next_seq;
          stream->cv.notify_all();
        }
        sched_.record_progress(msg.job_id, msg.step, nchunks, now_s());
        break;
      }
      case UpKind::kResult: {
        const auto it = running_jobs_.find(msg.job_id);
        if (it == running_jobs_.end()) break;  // raced with rank death
        RunningJob& rj = it->second;
        if (!rj.result_seen) {
          rj.result_seen = true;
          rj.potential_energy = msg.potential_energy;
          rj.steps_completed = msg.steps_completed;
          if (msg.failed) {
            rj.final_state = JobState::kFailed;
            rj.final_error = msg.error;
          } else if (msg.cancelled) {
            rj.final_state = JobState::kCancelled;
          } else {
            rj.final_state = JobState::kDone;
          }
        }
        if (!rj.ctrl_sent) {
          // Release every subset rank's control listener.
          CtrlMsg ctrl;
          ctrl.job_id = msg.job_id;
          ctrl.action = CtrlAction::kFinish;
          const Bytes payload = encode_ctrl(ctrl);
          for (const int r : rj.pool_ranks) {
            if (worker_alive_[static_cast<std::size_t>(r - 1)])
              pool_.send(r, tags::kSvcCtrl, payload);
          }
          rj.ctrl_sent = true;
        }
        finalize_if_drained_locked(msg.job_id);
        break;
      }
      case UpKind::kDone: {
        const auto it = running_jobs_.find(msg.job_id);
        if (it == running_jobs_.end()) break;
        it->second.pending_ranks.erase(worker_rank);
        finalize_if_drained_locked(msg.job_id);
        break;
      }
      case UpKind::kBye:
        break;  // handled above
    }
  }
}

// ---------------------------------------------------------------------
// Client sessions.

void ServeDaemon::accept_loop() {
  while (running_.load()) {
    // Short poll so teardown is observed promptly even with no clients.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const MutexLock lock(conn_mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { session(fd); });
  }
}

void ServeDaemon::session(int fd) {
  for (;;) {
    Bytes payload;
    bool keep = false;
    try {
      if (!read_frame_payload(fd, &payload)) break;  // clean EOF
      const Frame frame = decode_frame(payload);
      keep = handle_frame(fd, frame);
    } catch (const std::exception& e) {
      // Malformed frame: answer kError and drop the connection — the
      // stream may be unsynchronized, but the daemon is unharmed.
      (void)write_frame(fd, MsgType::kError, encode_error(e.what()));
      break;
    }
    if (!keep || !running_.load()) break;
  }
  ::close(fd);
}

bool ServeDaemon::handle_frame(int fd, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kSubmit: {
      const SubmitRequest req = decode_submit(frame.body);
      std::int64_t id = 0;
      try {
        if (shutdown_requested_.load())
          throw Error("daemon is shutting down; not accepting jobs");
        // Full plan build validates the config the same way the worker
        // will see it, and prices the job for the resource caps.
        const JobPlan plan = build_job_plan(Config::parse(req.config_text));
        const JobLimits& lim = cfg_.limits;
        const long long atoms = plan.system->num_atoms();
        if (lim.max_atoms > 0 && atoms > lim.max_atoms)
          throw Error("job wants " + std::to_string(atoms) +
                      " atoms; this daemon caps jobs at " +
                      std::to_string(lim.max_atoms));
        if (lim.max_steps > 0 && plan.steps > lim.max_steps)
          throw Error("job wants " + std::to_string(plan.steps) +
                      " steps; this daemon caps jobs at " +
                      std::to_string(lim.max_steps));
        double walltime_s = plan.walltime_s;
        if (lim.max_walltime_s > 0.0) {
          walltime_s = walltime_s <= 0.0
                           ? lim.max_walltime_s
                           : std::min(walltime_s, lim.max_walltime_s);
        }
        if (req.resume_job > 0) {
          SCMD_REQUIRE(!cfg_.dir.empty(),
                       "resume needs a daemon started with --dir");
          SCMD_REQUIRE(dir_exists(job_dir(req.resume_job) + "/ckpt"),
                       "job " + std::to_string(req.resume_job) +
                           " left no checkpoints to resume from");
        }

        MutexLock lock(mu_);
        id = sched_.submit(req.config_text, req.priority, plan.ranks,
                           plan.steps, req.want_checkpoint, req.resume_job,
                           now_s());
        streams_.emplace(id, std::make_shared<JobStream>());
        JobAssignment proto;
        proto.job_id = id;
        proto.config_text = req.config_text;
        proto.want_checkpoint = req.want_checkpoint;
        proto.metrics_every =
            static_cast<std::int32_t>(plan.metrics_every);
        proto.walltime_s = walltime_s;
        if (!cfg_.dir.empty()) {
          ensure_dir(job_dir(id));
          proto.trace_path = job_dir(id) + "/trace.json";
          proto.checkpoint_every =
              static_cast<std::int32_t>(plan.checkpoint_every);
          if (req.resume_job > 0) {
            // Resumed jobs extend the original job's snapshot lineage.
            proto.restore = true;
            proto.ckpt_dir = job_dir(req.resume_job) + "/ckpt";
          } else if (plan.checkpoint_every > 0) {
            proto.ckpt_dir = job_dir(id) + "/ckpt";
            ensure_dir(proto.ckpt_dir);
          }
        }
        assignment_proto_.emplace(id, std::move(proto));
        dispatch_locked();
        update_metrics_locked();
        publish_locked();
        tick_cv_.notify_all();
      } catch (const std::exception& e) {
        return write_frame(fd, MsgType::kError, encode_error(e.what()));
      }
      return write_frame(fd, MsgType::kSubmitOk, encode_job_id(id));
    }
    case MsgType::kPoll: {
      const std::int64_t id = decode_job_id(frame.body);
      JobStatus st;
      {
        const MutexLock lock(mu_);
        if (sched_.find(id) == nullptr)
          return write_frame(fd, MsgType::kError,
                             encode_error("unknown job " + std::to_string(id)));
        st = status_of_locked(id);
      }
      return write_frame(fd, MsgType::kStatus, encode_status(st));
    }
    case MsgType::kCancel: {
      const std::int64_t id = decode_job_id(frame.body);
      JobStatus st;
      {
        const MutexLock lock(mu_);
        if (sched_.find(id) == nullptr)
          return write_frame(fd, MsgType::kError,
                             encode_error("unknown job " + std::to_string(id)));
        cancel_job_locked(id, "cancelled by client");
        st = status_of_locked(id);
      }
      return write_frame(fd, MsgType::kCancelOk, encode_status(st));
    }
    case MsgType::kStream:
      return handle_stream(fd, decode_stream_req(frame.body));
    case MsgType::kJobs: {
      std::string json;
      {
        const MutexLock lock(mu_);
        json = sched_.table_json(now_s());
      }
      return write_frame(fd, MsgType::kJobsInfo, encode_text(json));
    }
    case MsgType::kShutdown: {
      const bool ok = write_frame(fd, MsgType::kShutdownOk, Bytes{});
      request_shutdown();
      return ok;
    }
    default:
      return write_frame(fd, MsgType::kError,
                         encode_error("unexpected frame type"));
  }
}

bool ServeDaemon::handle_stream(int fd, const StreamRequest& req) {
  std::shared_ptr<JobStream> stream;
  {
    const MutexLock lock(mu_);
    const auto it = streams_.find(req.job_id);
    if (it == streams_.end())
      return write_frame(
          fd, MsgType::kError,
          encode_error("unknown job " + std::to_string(req.job_id)));
    stream = it->second;
  }

  bool disconnected = false;
  std::int64_t next = std::max<std::int64_t>(req.from_seq, 0);
  for (;;) {
    enum class Action { kSend, kEnd, kGone };
    Action action = Action::kEnd;
    ChunkMsg chunk;
    StreamEnd end;
    end.job_id = req.job_id;
    {
      MutexLock slock(stream->mu);
      for (;;) {
        // Evicted history restarts at the oldest retained chunk.
        if (next < stream->base_seq) next = stream->base_seq;
        if (next < stream->next_seq) {
          chunk =
              stream->chunks[static_cast<std::size_t>(next - stream->base_seq)];
          action = Action::kSend;
          break;
        }
        if (stream->closed) {
          end.state = stream->final_state;
          end.error = stream->final_error;
          action = Action::kEnd;
          break;
        }
        if (!running_.load()) {
          end.state = JobState::kFailed;
          end.error = "daemon stopped";
          action = Action::kEnd;
          break;
        }
        (void)stream->cv.wait_for(stream->mu, std::chrono::milliseconds(100));
        if (peer_gone(fd)) {
          action = Action::kGone;
          break;
        }
      }
    }
    switch (action) {
      case Action::kSend:
        if (!write_frame(fd, MsgType::kChunk, encode_chunk(chunk))) {
          disconnected = true;
        } else {
          ++next;
        }
        break;
      case Action::kEnd:
        return write_frame(fd, MsgType::kStreamEnd, encode_stream_end(end));
      case Action::kGone:
        disconnected = true;
        break;
    }
    if (disconnected) {
      // A client that vanishes mid-stream takes its job down with it —
      // and nothing else.  The pool and every other job keep going.
      const MutexLock lock(mu_);
      cancel_job_locked(req.job_id, "client disconnected mid-stream");
      return false;
    }
  }
}

// ---------------------------------------------------------------------
// Main loop + teardown.

void ServeDaemon::run() {
  if (torn_down_) return;
  const auto tick = std::chrono::duration<double>(
      cfg_.tick_s > 0.0 ? cfg_.tick_s : 0.02);
  for (;;) {
    MutexLock lock(mu_);
    if (shutdown_requested_.load()) {
      // Sweep: queued jobs go terminal now, running jobs get a cancel;
      // both are idempotent, so re-sweeping each wakeup is harmless.
      for (const JobRecord* rec : sched_.jobs()) {
        if (!job_state_terminal(rec->state))
          cancel_job_locked(rec->id, "daemon shutdown");
      }
      if (sched_.active_jobs() == 0 && sched_.queue_depth() == 0) break;
    } else {
      dispatch_locked();
    }
    publish_locked();
    (void)tick_cv_.wait_for(mu_, tick);
  }

  // Every job is terminal and every surviving rank is back on its
  // assignment wait: dissolve the pool.
  {
    const MutexLock lock(mu_);
    JobAssignment bye;
    bye.shutdown = true;
    const Bytes payload = encode_assignment(bye);
    for (int w = 1; w < pool_.num_ranks(); ++w) {
      if (worker_alive_[static_cast<std::size_t>(w - 1)])
        pool_.send(w, tags::kSvcAssign, payload);
    }
  }
  for (std::thread& t : monitors_) {
    if (t.joinable()) t.join();
  }

  // Client side: stop accepting, unblock sessions, join them.
  running_.store(false);
  {
    const MutexLock lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // The accept loop (the only other writer of conn_threads_) is
    // joined; sessions never touch the vector, so this cannot deadlock.
    const MutexLock lock(conn_mu_);
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  {
    // One last snapshot so late scrapes see the final job table.
    const MutexLock lock(mu_);
    publish_locked();
    update_metrics_locked();
  }
  torn_down_ = true;
}

}  // namespace scmd::serve
