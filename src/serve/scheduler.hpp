#pragma once

/// \file scheduler.hpp
/// FIFO+priority job queue with space-sharing rank allocation
/// (docs/SERVICE.md).
///
/// Pure bookkeeping, no threads and no I/O: the daemon drives it under
/// its own lock, and tests drive it directly.  Ordering: runnable jobs
/// are considered by descending priority, then ascending id (FIFO
/// within a priority class).  Allocation backfills — the first
/// considered job whose rank demand fits the free pool starts, so two
/// small jobs run side by side while a large one waits (and a large
/// job can be overtaken by small ones until enough ranks drain; the
/// priority knob exists to stop that when it matters).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace scmd::serve {

/// Per-job resource caps, applied at submit (docs/SERVICE.md).  0 = no
/// cap on that axis.
struct JobLimits {
  long long max_atoms = 0;
  long long max_steps = 0;
  double max_walltime_s = 0.0;
};

struct JobRecord {
  std::int64_t id = 0;
  int priority = 0;
  JobState state = JobState::kQueued;
  std::string config_text;
  std::string error;

  int ranks_wanted = 0;
  std::vector<int> pool_ranks;  ///< held while running (empty otherwise)

  long long steps_total = 0;
  long long steps_done = 0;
  long long chunks = 0;
  double potential_energy = 0.0;

  bool want_checkpoint = false;
  std::int64_t resume_job = 0;

  /// Caller-supplied clocks (seconds, any monotonic base).
  double submitted_s = 0.0;
  double started_s = 0.0;
  double finished_s = 0.0;

  /// Steps/sec over the running window, from chunk progress.
  double steps_per_sec = 0.0;
};

/// Tracks worker pool ranks 1..num_workers (pool rank 0 is the daemon
/// and is never allocatable).
class JobScheduler {
 public:
  explicit JobScheduler(int num_workers);

  /// Register a validated job; returns its id.  The caller has already
  /// parsed the config and checked the caps — the scheduler only
  /// rejects rank demands the pool can never satisfy.
  std::int64_t submit(std::string config_text, int priority, int ranks_wanted,
                      long long steps_total, bool want_checkpoint,
                      std::int64_t resume_job, double now_s);

  /// Pick the next runnable job, allocate its ranks (lowest free pool
  /// ranks first), mark it running, and return its id; 0 when nothing
  /// fits (empty queue or not enough free live ranks).
  std::int64_t start_next(double now_s);

  /// Transition a running job to its terminal state and free its ranks.
  void finish(std::int64_t id, JobState state, std::string error,
              double potential_energy, long long steps_done, double now_s);

  /// Cancel: a queued job goes terminal immediately (returns true); a
  /// running job is left for the daemon to interrupt (returns false).
  /// Cancelling a terminal or unknown job is a no-op returning true.
  bool cancel_queued(std::int64_t id, double now_s);

  /// A pool rank died (dead-peer detection): it leaves the allocatable
  /// set forever.  Any job currently holding it is the daemon's problem
  /// (the job fails through the normal result path or is torn down).
  void mark_rank_dead(int pool_rank);

  /// Progress update from stream chunks (steps/sec for the job table).
  void record_progress(std::int64_t id, long long steps_done,
                       long long chunks, double now_s);

  const JobRecord* find(std::int64_t id) const;
  JobRecord* find_mutable(std::int64_t id);

  int num_workers() const { return num_workers_; }
  int free_ranks() const;
  int dead_ranks() const;
  int queue_depth() const;   ///< jobs in kQueued
  int active_jobs() const;   ///< jobs in kRunning
  long long jobs_submitted() const { return next_id_ - 1; }

  /// Jobs in submit order (the job table).
  std::vector<const JobRecord*> jobs() const;

  /// Job-table JSON for the status channel (docs/SERVICE.md schema).
  std::string table_json(double now_s) const;

 private:
  int num_workers_ = 0;
  std::int64_t next_id_ = 1;
  std::map<std::int64_t, JobRecord> jobs_;
  std::vector<bool> busy_;  ///< index = pool rank - 1
  std::vector<bool> dead_;
};

}  // namespace scmd::serve
