#include "serve/client.hpp"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "support/error.hpp"

namespace scmd::serve {

namespace {

int connect_to(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  SCMD_REQUIRE(rc == 0 && res != nullptr,
               "cannot resolve " + host + ": " + gai_strerror(rc));
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  SCMD_REQUIRE(fd >= 0, "cannot connect to " + host + ":" +
                            std::to_string(port) +
                            " — is the daemon running?");
  return fd;
}

}  // namespace

ClientConnection::ClientConnection(const std::string& host, int port)
    : fd_(connect_to(host, port)) {}

ClientConnection::~ClientConnection() { close(); }

void ClientConnection::disconnect() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void ClientConnection::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Frame ClientConnection::request(MsgType type, const Bytes& body) {
  const int fd = fd_.load();
  SCMD_REQUIRE(fd >= 0, "connection is closed");
  SCMD_REQUIRE(write_frame(fd, type, body),
               "connection to the daemon broke mid-request");
  Bytes payload;
  SCMD_REQUIRE(read_frame_payload(fd, &payload),
               "daemon closed the connection without replying");
  Frame reply = decode_frame(payload);
  if (reply.type == MsgType::kError)
    throw Error("daemon: " + decode_error(reply.body));
  return reply;
}

std::int64_t ClientConnection::submit(const SubmitRequest& req) {
  const Frame reply = request(MsgType::kSubmit, encode_submit(req));
  SCMD_REQUIRE(reply.type == MsgType::kSubmitOk,
               "unexpected reply to submit");
  return decode_job_id(reply.body);
}

JobStatus ClientConnection::poll(std::int64_t job_id) {
  const Frame reply = request(MsgType::kPoll, encode_job_id(job_id));
  SCMD_REQUIRE(reply.type == MsgType::kStatus, "unexpected reply to poll");
  return decode_status(reply.body);
}

JobStatus ClientConnection::cancel(std::int64_t job_id) {
  const Frame reply = request(MsgType::kCancel, encode_job_id(job_id));
  SCMD_REQUIRE(reply.type == MsgType::kCancelOk,
               "unexpected reply to cancel");
  return decode_status(reply.body);
}

std::string ClientConnection::jobs() {
  const Frame reply = request(MsgType::kJobs, Bytes{});
  SCMD_REQUIRE(reply.type == MsgType::kJobsInfo, "unexpected reply to jobs");
  return decode_text(reply.body);
}

void ClientConnection::shutdown() {
  const Frame reply = request(MsgType::kShutdown, Bytes{});
  SCMD_REQUIRE(reply.type == MsgType::kShutdownOk,
               "unexpected reply to shutdown");
}

StreamEnd ClientConnection::stream(
    std::int64_t job_id, std::int64_t from_seq,
    const std::function<void(const ChunkMsg&)>& on_chunk) {
  const int fd = fd_.load();
  SCMD_REQUIRE(fd >= 0, "connection is closed");
  StreamRequest req;
  req.job_id = job_id;
  req.from_seq = from_seq;
  SCMD_REQUIRE(write_frame(fd, MsgType::kStream, encode_stream_req(req)),
               "connection to the daemon broke mid-request");
  for (;;) {
    Bytes payload;
    SCMD_REQUIRE(read_frame_payload(fd, &payload),
                 "daemon closed the connection mid-stream");
    const Frame frame = decode_frame(payload);
    if (frame.type == MsgType::kChunk) {
      if (on_chunk) on_chunk(decode_chunk(frame.body));
      continue;
    }
    if (frame.type == MsgType::kStreamEnd)
      return decode_stream_end(frame.body);
    if (frame.type == MsgType::kError)
      throw Error("daemon: " + decode_error(frame.body));
    throw Error("unexpected frame type mid-stream");
  }
}

}  // namespace scmd::serve
