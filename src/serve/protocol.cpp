#include "serve/protocol.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace scmd::serve {

namespace {

void put_string(ckpt::ByteWriter& w, const std::string& s) {
  w.pod(static_cast<std::uint32_t>(s.size()));
  if (!s.empty()) w.append(s.data(), s.size());
}

std::string get_string(ckpt::ByteReader& r) {
  const auto n = r.pod<std::uint32_t>();
  const Bytes raw = r.take(n);
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

void put_bytes(ckpt::ByteWriter& w, const Bytes& b) {
  w.pod(static_cast<std::uint64_t>(b.size()));
  if (!b.empty()) w.append(b.data(), b.size());
}

Bytes get_bytes(ckpt::ByteReader& r) {
  const auto n = r.pod<std::uint64_t>();
  return r.take(static_cast<std::size_t>(n));
}

/// Decode must consume the whole body: trailing bytes mean a mis-framed
/// or tampered message, not a longer schema.
void require_done(const ckpt::ByteReader& r, const char* what) {
  SCMD_REQUIRE(r.done(), std::string("service frame has trailing bytes: ") + what);
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool job_state_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

Bytes encode_frame(MsgType type, const Bytes& body) {
  ckpt::ByteWriter w;
  w.pod(kFrameMagic);
  w.pod(static_cast<std::uint16_t>(type));
  if (!body.empty()) w.append(body.data(), body.size());
  return w.take();
}

Frame decode_frame(const Bytes& payload) {
  ckpt::ByteReader r(payload);
  const auto magic = r.pod<std::uint32_t>();
  SCMD_REQUIRE(magic == kFrameMagic,
               "service frame carries the wrong magic (not a service "
               "client?)");
  const auto type = r.pod<std::uint16_t>();
  SCMD_REQUIRE(type >= static_cast<std::uint16_t>(MsgType::kSubmit) &&
                   type <= static_cast<std::uint16_t>(MsgType::kError),
               "service frame carries an unknown message type " +
                   std::to_string(type));
  Frame f;
  f.type = static_cast<MsgType>(type);
  f.body = r.take(r.remaining());
  return f;
}

Bytes encode_submit(const SubmitRequest& req) {
  ckpt::ByteWriter w;
  put_string(w, req.config_text);
  w.pod(req.priority);
  w.pod(static_cast<std::uint8_t>(req.want_checkpoint ? 1 : 0));
  w.pod(req.resume_job);
  return w.take();
}

SubmitRequest decode_submit(const Bytes& body) {
  ckpt::ByteReader r(body);
  SubmitRequest req;
  req.config_text = get_string(r);
  req.priority = r.pod<std::int32_t>();
  req.want_checkpoint = r.pod<std::uint8_t>() != 0;
  req.resume_job = r.pod<std::int64_t>();
  require_done(r, "submit");
  return req;
}

Bytes encode_job_id(std::int64_t job_id) {
  ckpt::ByteWriter w;
  w.pod(job_id);
  return w.take();
}

std::int64_t decode_job_id(const Bytes& body) {
  ckpt::ByteReader r(body);
  const auto id = r.pod<std::int64_t>();
  require_done(r, "job id");
  return id;
}

Bytes encode_status(const JobStatus& st) {
  ckpt::ByteWriter w;
  w.pod(st.job_id);
  w.pod(static_cast<std::uint8_t>(st.state));
  put_string(w, st.error);
  w.pod(st.steps_done);
  w.pod(st.steps_total);
  w.pod(st.chunks);
  w.pod(st.potential_energy);
  w.pod(st.steps_per_sec);
  w.array(st.pool_ranks);
  return w.take();
}

JobStatus decode_status(const Bytes& body) {
  ckpt::ByteReader r(body);
  JobStatus st;
  st.job_id = r.pod<std::int64_t>();
  st.state = static_cast<JobState>(r.pod<std::uint8_t>());
  st.error = get_string(r);
  st.steps_done = r.pod<std::int64_t>();
  st.steps_total = r.pod<std::int64_t>();
  st.chunks = r.pod<std::int64_t>();
  st.potential_energy = r.pod<double>();
  st.steps_per_sec = r.pod<double>();
  st.pool_ranks = r.array<std::int32_t>();
  require_done(r, "status");
  return st;
}

Bytes encode_stream_req(const StreamRequest& req) {
  ckpt::ByteWriter w;
  w.pod(req.job_id);
  w.pod(req.from_seq);
  return w.take();
}

StreamRequest decode_stream_req(const Bytes& body) {
  ckpt::ByteReader r(body);
  StreamRequest req;
  req.job_id = r.pod<std::int64_t>();
  req.from_seq = r.pod<std::int64_t>();
  require_done(r, "stream request");
  return req;
}

Bytes encode_chunk(const ChunkMsg& chunk) {
  ckpt::ByteWriter w;
  w.pod(chunk.job_id);
  w.pod(chunk.seq);
  w.pod(static_cast<std::uint8_t>(chunk.kind));
  w.pod(chunk.step);
  put_bytes(w, chunk.payload);
  return w.take();
}

ChunkMsg decode_chunk(const Bytes& body) {
  ckpt::ByteReader r(body);
  ChunkMsg chunk;
  chunk.job_id = r.pod<std::int64_t>();
  chunk.seq = r.pod<std::int64_t>();
  chunk.kind = static_cast<ChunkKind>(r.pod<std::uint8_t>());
  chunk.step = r.pod<std::int64_t>();
  chunk.payload = get_bytes(r);
  require_done(r, "chunk");
  return chunk;
}

Bytes encode_stream_end(const StreamEnd& end) {
  ckpt::ByteWriter w;
  w.pod(end.job_id);
  w.pod(static_cast<std::uint8_t>(end.state));
  put_string(w, end.error);
  return w.take();
}

StreamEnd decode_stream_end(const Bytes& body) {
  ckpt::ByteReader r(body);
  StreamEnd end;
  end.job_id = r.pod<std::int64_t>();
  end.state = static_cast<JobState>(r.pod<std::uint8_t>());
  end.error = get_string(r);
  require_done(r, "stream end");
  return end;
}

Bytes encode_error(const std::string& message) { return encode_text(message); }

std::string decode_error(const Bytes& body) { return decode_text(body); }

Bytes encode_text(const std::string& text) {
  ckpt::ByteWriter w;
  put_string(w, text);
  return w.take();
}

std::string decode_text(const Bytes& body) {
  ckpt::ByteReader r(body);
  std::string s = get_string(r);
  require_done(r, "text");
  return s;
}

Bytes encode_assignment(const JobAssignment& a) {
  ckpt::ByteWriter w;
  w.pod(static_cast<std::uint8_t>(a.shutdown ? 1 : 0));
  w.pod(a.job_id);
  put_string(w, a.config_text);
  w.array(a.pool_ranks);
  w.pod(static_cast<std::uint8_t>(a.want_telemetry ? 1 : 0));
  w.pod(static_cast<std::uint8_t>(a.want_checkpoint ? 1 : 0));
  put_string(w, a.ckpt_dir);
  w.pod(a.checkpoint_every);
  w.pod(static_cast<std::uint8_t>(a.restore ? 1 : 0));
  put_string(w, a.trace_path);
  w.pod(a.walltime_s);
  w.pod(a.metrics_every);
  return w.take();
}

JobAssignment decode_assignment(const Bytes& payload) {
  ckpt::ByteReader r(payload);
  JobAssignment a;
  a.shutdown = r.pod<std::uint8_t>() != 0;
  a.job_id = r.pod<std::int64_t>();
  a.config_text = get_string(r);
  a.pool_ranks = r.array<std::int32_t>();
  a.want_telemetry = r.pod<std::uint8_t>() != 0;
  a.want_checkpoint = r.pod<std::uint8_t>() != 0;
  a.ckpt_dir = get_string(r);
  a.checkpoint_every = r.pod<std::int32_t>();
  a.restore = r.pod<std::uint8_t>() != 0;
  a.trace_path = get_string(r);
  a.walltime_s = r.pod<double>();
  a.metrics_every = r.pod<std::int32_t>();
  require_done(r, "assignment");
  return a;
}

Bytes encode_ctrl(const CtrlMsg& msg) {
  ckpt::ByteWriter w;
  w.pod(msg.job_id);
  w.pod(static_cast<std::uint8_t>(msg.action));
  return w.take();
}

CtrlMsg decode_ctrl(const Bytes& payload) {
  ckpt::ByteReader r(payload);
  CtrlMsg msg;
  msg.job_id = r.pod<std::int64_t>();
  const auto action = r.pod<std::uint8_t>();
  SCMD_REQUIRE(action == static_cast<std::uint8_t>(CtrlAction::kCancel) ||
                   action == static_cast<std::uint8_t>(CtrlAction::kFinish),
               "unknown service control action " + std::to_string(action));
  msg.action = static_cast<CtrlAction>(action);
  require_done(r, "ctrl");
  return msg;
}

Bytes encode_up(const UpMsg& msg) {
  ckpt::ByteWriter w;
  w.pod(static_cast<std::uint8_t>(msg.kind));
  w.pod(msg.job_id);
  w.pod(static_cast<std::uint8_t>(msg.chunk_kind));
  w.pod(msg.step);
  put_bytes(w, msg.payload);
  w.pod(static_cast<std::uint8_t>(msg.failed ? 1 : 0));
  w.pod(static_cast<std::uint8_t>(msg.cancelled ? 1 : 0));
  put_string(w, msg.error);
  w.pod(msg.potential_energy);
  w.pod(msg.steps_completed);
  w.pod(msg.steps_total);
  return w.take();
}

UpMsg decode_up(const Bytes& payload) {
  ckpt::ByteReader r(payload);
  UpMsg msg;
  const auto kind = r.pod<std::uint8_t>();
  SCMD_REQUIRE(kind >= static_cast<std::uint8_t>(UpKind::kChunk) &&
                   kind <= static_cast<std::uint8_t>(UpKind::kBye),
               "unknown service up-message kind " + std::to_string(kind));
  msg.kind = static_cast<UpKind>(kind);
  msg.job_id = r.pod<std::int64_t>();
  msg.chunk_kind = static_cast<ChunkKind>(r.pod<std::uint8_t>());
  msg.step = r.pod<std::int64_t>();
  msg.payload = get_bytes(r);
  msg.failed = r.pod<std::uint8_t>() != 0;
  msg.cancelled = r.pod<std::uint8_t>() != 0;
  msg.error = get_string(r);
  msg.potential_energy = r.pod<double>();
  msg.steps_completed = r.pod<std::int64_t>();
  msg.steps_total = r.pod<std::int64_t>();
  require_done(r, "up message");
  return msg;
}

bool write_frame(int fd, MsgType type, const Bytes& body) {
  const Bytes payload = encode_frame(type, body);
  const auto len = static_cast<std::uint32_t>(payload.size());
  const char* hp = reinterpret_cast<const char*>(&len);
  std::size_t left = sizeof(len);
  while (left > 0) {
    const ssize_t n = ::send(fd, hp, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    hp += n;
    left -= static_cast<std::size_t>(n);
  }
  const char* p = reinterpret_cast<const char*>(payload.data());
  left = payload.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

bool read_full_fd(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool read_frame_payload(int fd, Bytes* payload) {
  std::uint32_t len = 0;
  if (!read_full_fd(fd, &len, sizeof(len))) return false;
  SCMD_REQUIRE(len <= kMaxFrameBytes,
               "service frame announces " + std::to_string(len) +
                   " bytes (limit " + std::to_string(kMaxFrameBytes) +
                   ") — protocol violation");
  payload->resize(len);
  if (len > 0 && !read_full_fd(fd, payload->data(), len)) return false;
  return true;
}

}  // namespace scmd::serve
