#include "serve/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace scmd::serve {

namespace {

/// Minimal JSON string escape (job configs/errors may carry quotes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JobScheduler::JobScheduler(int num_workers)
    : num_workers_(num_workers),
      busy_(static_cast<std::size_t>(num_workers), false),
      dead_(static_cast<std::size_t>(num_workers), false) {
  SCMD_REQUIRE(num_workers >= 1, "scheduler needs >= 1 worker rank");
}

std::int64_t JobScheduler::submit(std::string config_text, int priority,
                                  int ranks_wanted, long long steps_total,
                                  bool want_checkpoint,
                                  std::int64_t resume_job, double now_s) {
  SCMD_REQUIRE(ranks_wanted >= 1 && ranks_wanted <= num_workers_,
               "job wants " + std::to_string(ranks_wanted) +
                   " rank(s); the pool has " + std::to_string(num_workers_) +
                   " worker(s)");
  const std::int64_t id = next_id_++;
  JobRecord rec;
  rec.id = id;
  rec.priority = priority;
  rec.state = JobState::kQueued;
  rec.config_text = std::move(config_text);
  rec.ranks_wanted = ranks_wanted;
  rec.steps_total = steps_total;
  rec.want_checkpoint = want_checkpoint;
  rec.resume_job = resume_job;
  rec.submitted_s = now_s;
  jobs_.emplace(id, std::move(rec));
  return id;
}

std::int64_t JobScheduler::start_next(double now_s) {
  // Candidates: queued jobs, priority-desc then id-asc.
  std::vector<JobRecord*> queued;
  for (auto& [id, rec] : jobs_) {
    if (rec.state == JobState::kQueued) queued.push_back(&rec);
  }
  std::stable_sort(queued.begin(), queued.end(),
                   [](const JobRecord* a, const JobRecord* b) {
                     if (a->priority != b->priority)
                       return a->priority > b->priority;
                     return a->id < b->id;
                   });
  int free_count = 0;
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    if (!busy_[i] && !dead_[i]) ++free_count;
  }
  for (JobRecord* rec : queued) {
    if (rec->ranks_wanted > free_count) continue;  // backfill past it
    rec->pool_ranks.clear();
    for (std::size_t i = 0;
         i < busy_.size() &&
         rec->pool_ranks.size() < static_cast<std::size_t>(rec->ranks_wanted);
         ++i) {
      if (busy_[i] || dead_[i]) continue;
      busy_[i] = true;
      rec->pool_ranks.push_back(static_cast<int>(i) + 1);
    }
    rec->state = JobState::kRunning;
    rec->started_s = now_s;
    return rec->id;
  }
  return 0;
}

void JobScheduler::finish(std::int64_t id, JobState state, std::string error,
                          double potential_energy, long long steps_done,
                          double now_s) {
  JobRecord* rec = find_mutable(id);
  SCMD_REQUIRE(rec != nullptr, "finish() for unknown job " + std::to_string(id));
  SCMD_REQUIRE(job_state_terminal(state), "finish() needs a terminal state");
  for (const int r : rec->pool_ranks) {
    busy_[static_cast<std::size_t>(r - 1)] = false;
  }
  rec->pool_ranks.clear();
  rec->state = state;
  rec->error = std::move(error);
  rec->potential_energy = potential_energy;
  if (steps_done >= 0) rec->steps_done = steps_done;
  rec->finished_s = now_s;
}

bool JobScheduler::cancel_queued(std::int64_t id, double now_s) {
  JobRecord* rec = find_mutable(id);
  if (rec == nullptr) return true;
  if (rec->state == JobState::kQueued) {
    rec->state = JobState::kCancelled;
    rec->finished_s = now_s;
    return true;
  }
  return job_state_terminal(rec->state);
}

void JobScheduler::mark_rank_dead(int pool_rank) {
  SCMD_REQUIRE(pool_rank >= 1 && pool_rank <= num_workers_,
               "mark_rank_dead: not a worker rank");
  dead_[static_cast<std::size_t>(pool_rank - 1)] = true;
}

void JobScheduler::record_progress(std::int64_t id, long long steps_done,
                                   long long chunks, double now_s) {
  JobRecord* rec = find_mutable(id);
  if (rec == nullptr) return;
  rec->steps_done = steps_done;
  rec->chunks = chunks;
  const double elapsed = now_s - rec->started_s;
  if (elapsed > 1e-9 && steps_done > 0)
    rec->steps_per_sec = static_cast<double>(steps_done) / elapsed;
}

const JobRecord* JobScheduler::find(std::int64_t id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

JobRecord* JobScheduler::find_mutable(std::int64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

int JobScheduler::free_ranks() const {
  int n = 0;
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    if (!busy_[i] && !dead_[i]) ++n;
  }
  return n;
}

int JobScheduler::dead_ranks() const {
  int n = 0;
  for (const bool d : dead_) {
    if (d) ++n;
  }
  return n;
}

int JobScheduler::queue_depth() const {
  int n = 0;
  for (const auto& [id, rec] : jobs_) {
    if (rec.state == JobState::kQueued) ++n;
  }
  return n;
}

int JobScheduler::active_jobs() const {
  int n = 0;
  for (const auto& [id, rec] : jobs_) {
    if (rec.state == JobState::kRunning) ++n;
  }
  return n;
}

std::vector<const JobRecord*> JobScheduler::jobs() const {
  std::vector<const JobRecord*> out;
  out.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) out.push_back(&rec);
  return out;
}

std::string JobScheduler::table_json(double now_s) const {
  std::ostringstream os;
  os << "{\"pool\":{\"workers\":" << num_workers_
     << ",\"free\":" << free_ranks() << ",\"dead\":" << dead_ranks()
     << "},\"queue_depth\":" << queue_depth()
     << ",\"jobs_active\":" << active_jobs() << ",\"jobs\":[";
  bool first = true;
  for (const auto& [id, rec] : jobs_) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << rec.id << ",\"state\":\""
       << job_state_name(rec.state) << "\",\"priority\":" << rec.priority
       << ",\"ranks_wanted\":" << rec.ranks_wanted << ",\"ranks\":[";
    for (std::size_t i = 0; i < rec.pool_ranks.size(); ++i) {
      if (i > 0) os << ",";
      os << rec.pool_ranks[i];
    }
    os << "],\"steps_done\":" << rec.steps_done
       << ",\"steps_total\":" << rec.steps_total
       << ",\"chunks\":" << rec.chunks << ",\"steps_per_sec\":"
       << rec.steps_per_sec;
    const double latency =
        rec.state == JobState::kQueued
            ? now_s - rec.submitted_s
            : (rec.started_s > 0.0 ? rec.started_s - rec.submitted_s : 0.0);
    os << ",\"queue_latency_s\":" << latency;
    if (job_state_terminal(rec.state))
      os << ",\"runtime_s\":"
         << (rec.started_s > 0.0 ? rec.finished_s - rec.started_s : 0.0);
    if (!rec.error.empty()) os << ",\"error\":\"" << json_escape(rec.error)
                               << "\"";
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace scmd::serve
