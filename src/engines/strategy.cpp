#include "engines/strategy.hpp"

#include "engines/bond_order.hpp"
#include "engines/hybrid_strategy.hpp"
#include "engines/tuple_strategy.hpp"
#include "support/error.hpp"

namespace scmd {

double ForceStrategy::min_cell_size(int n, double rcut) const {
  (void)n;
  return rcut;
}

void ForceStrategy::set_num_threads(int) {}

std::unique_ptr<ForceStrategy> make_tuple_strategy(const ForceField& field,
                                                   PatternKind kind,
                                                   bool measure_force_set,
                                                   int reach) {
  return std::make_unique<TupleStrategy>(field, kind, measure_force_set,
                                         reach);
}

std::unique_ptr<ForceStrategy> make_hybrid_strategy(const ForceField& field,
                                                    bool measure_force_set) {
  return std::make_unique<HybridStrategy>(field, measure_force_set);
}

std::unique_ptr<ForceStrategy> make_strategy(const std::string& name,
                                             const ForceField& field,
                                             bool measure_force_set) {
  // Pattern strategies accept a ":k" suffix selecting sub-cutoff cells
  // (e.g. "SC:2" = shift-collapse on cells of side rcut/2) and a "+p"
  // suffix selecting prefix-sharing enumeration (e.g. "FS+p", "SC:2+p").
  std::string base = name;
  bool shared_prefix = false;
  if (base.size() >= 2 && base.substr(base.size() - 2) == "+p") {
    shared_prefix = true;
    base = base.substr(0, base.size() - 2);
  }
  int reach = 1;
  if (const auto colon = base.find(':'); colon != std::string::npos) {
    const std::string suffix = base.substr(colon + 1);
    base = base.substr(0, colon);
    SCMD_REQUIRE(suffix.size() == 1 && suffix[0] >= '1' && suffix[0] <= '4',
                 "bad reach suffix in strategy name: " + name);
    reach = suffix[0] - '0';
  }
  const auto tuple_kind = [&]() -> std::unique_ptr<ForceStrategy> {
    PatternKind kind;
    if (base == "SC") {
      kind = PatternKind::kShiftCollapse;
    } else if (base == "FS") {
      kind = PatternKind::kFullShell;
    } else if (base == "OC") {
      kind = PatternKind::kOcOnly;
    } else if (base == "RC") {
      kind = PatternKind::kRcOnly;
    } else {
      return nullptr;
    }
    return std::make_unique<TupleStrategy>(field, kind, measure_force_set,
                                           reach, shared_prefix);
  };
  if (auto strategy = tuple_kind()) return strategy;
  if (base == "Hybrid" && reach == 1 && !shared_prefix)
    return make_hybrid_strategy(field, measure_force_set);
  if (base == "BondOrder" && reach == 1 && !shared_prefix) {
    const auto* tersoff = dynamic_cast<const TersoffSilicon*>(&field);
    SCMD_REQUIRE(tersoff != nullptr,
                 "BondOrder strategy requires a Tersoff field");
    return make_bond_order_strategy(*tersoff);
  }
  SCMD_REQUIRE(false, "unknown strategy: " + name);
  return nullptr;
}

}  // namespace scmd
