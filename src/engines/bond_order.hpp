#pragma once

/// \file bond_order.hpp
/// Two-pass bond-order force computation (Tersoff-style reactive MD).
///
/// Bond-order fields couple every pair term to its dynamic neighborhood
/// through ζ_ij = Σ_k fc(r_ik) g(θ_ijk): they cannot be evaluated one
/// independent tuple at a time.  This strategy performs the standard
/// two-pass computation per owned atom — accumulate ζ over the
/// neighborhood, then chain-rule the forces back onto i, j, and every k
/// — exactly the mechanism by which reactive force fields turn pair
/// energies into dynamic triplet (and, for ReaxFF, up-to-6-tuple) force
/// computation (paper Sec. 1).
///
/// Parallel placement follows the owner-compute rule on the *first* atom
/// of each ordered pair: rank owning i evaluates every (i, j) with its
/// full-shell halo, accumulating forces on ghosts j/k for write-back.

#include "engines/strategy.hpp"
#include "potentials/tersoff.hpp"

namespace scmd {

/// Tersoff evaluation strategy (see file docs).
class BondOrderStrategy final : public ForceStrategy {
 public:
  explicit BondOrderStrategy(const TersoffSilicon& field);

  std::string name() const override { return "BondOrder"; }
  bool needs_grid(int n) const override { return n == 2; }
  HaloSpec halo(int n) const override;

  double compute(const ForceField& field, const DomainSet& domains,
                 ForceAccum& forces, EngineCounters& counters) const override;

 private:
  const TersoffSilicon& tersoff_;
};

/// Factory (used directly and by make_strategy("BondOrder", field), which
/// requires `field` to be a TersoffSilicon).
std::unique_ptr<ForceStrategy> make_bond_order_strategy(
    const TersoffSilicon& field);

}  // namespace scmd
