#pragma once

/// \file strategy.hpp
/// Force-computation strategies — the three codes benchmarked in the
/// paper (Sec. 5): SC-MD, FS-MD, and Hybrid-MD.
///
/// A strategy consumes per-n cell domains (each n-body term uses its own
/// cell grid with cell side >= rcut(n), rebuilt every step) and produces
/// forces in arrays parallel to each domain's binned atoms.  The caller
/// (serial engine, parallel rank driver, or cluster simulator) folds those
/// per-domain forces back to atom owners.

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cell/domain.hpp"
#include "engines/counters.hpp"
#include "potentials/force_field.hpp"

namespace scmd {

/// The per-n domains a strategy computes from.  dom[n] is null when the
/// strategy does not request grid n (see ForceStrategy::needs_grid).
struct DomainSet {
  std::array<const CellDomain*, kMaxTupleLen + 1> dom{};
};

/// Per-n force outputs, parallel to the corresponding domain's atoms.
/// f[n] is null when dom[n] is.
struct ForceAccum {
  std::array<std::vector<Vec3>*, kMaxTupleLen + 1> f{};
  /// Optional per-home-cell search-work attribution, one entry per owned
  /// cell of dom[n] in [z][y][x] order (sized owned_dims().volume()).
  /// Entries are *added to*, so a caller can accumulate across steps —
  /// this feeds the load balancer's cost field.  Null to skip.
  std::array<std::vector<std::uint64_t>*, kMaxTupleLen + 1> cell_cost{};
};

/// Strategy interface.  Implementations are stateless w.r.t. the
/// trajectory (compute() may be called with any domains), so one instance
/// serves many ranks.
class ForceStrategy {
 public:
  virtual ~ForceStrategy() = default;

  virtual std::string name() const = 0;

  /// True if the strategy needs a cell grid/domain for tuple length n.
  virtual bool needs_grid(int n) const = 0;

  /// Ghost-halo margins required on grid n.  Only meaningful when
  /// needs_grid(n).
  virtual HaloSpec halo(int n) const = 0;

  /// Cell offsets the strategy's *level-0* (chain-start) candidates can
  /// have relative to the home cell: lo[a] is the largest positive root
  /// offset on axis a, hi[a] the largest negative one.  Zero for
  /// strategies that always start chains in the home cell (FS patterns,
  /// cell-list pair sweeps).  Non-uniform decompositions extend each
  /// rank's home-cell iteration range by these margins so that the rank
  /// owning a chain-start atom always iterates the anchoring home cell
  /// (exactly-once generation under atom-granular ownership).
  virtual HaloSpec root_reach(int n) const {
    (void)n;
    return HaloSpec{};
  }

  /// Minimum cell side the strategy wants for grid n, given the n-body
  /// cutoff.  Default: the cutoff itself (classic cell method); the
  /// sub-cutoff generalization returns rcut/reach.
  virtual double min_cell_size(int n, double rcut) const;

  /// Intra-rank thread count for the force computation (paper Sec. 6:
  /// tuple computations are independent and expose maximal concurrency).
  /// Default: ignored.  Configure before sharing the strategy across
  /// ranks; compute() itself stays const and thread-compatible.
  virtual void set_num_threads(int num_threads);

  /// Compute forces and return the potential energy contribution of this
  /// rank (each tuple's energy is counted on exactly one rank globally).
  virtual double compute(const ForceField& field, const DomainSet& domains,
                         ForceAccum& forces, EngineCounters& counters) const = 0;
};

/// Which computation pattern a tuple-based strategy uses.  The two middle
/// variants isolate the SC algorithm's phases for ablation studies: OC
/// shrinks the import volume only, RC halves the search only.
enum class PatternKind {
  kShiftCollapse,  ///< SC-MD: OC-shifted, reflect-collapsed patterns
  kFullShell,      ///< FS-MD: raw GENERATE-FS patterns
  kOcOnly,         ///< OC-SHIFT(FS): compact coverage, redundant search
  kRcOnly,         ///< R-COLLAPSE(FS): halved search, full-shell coverage
                   ///< (the half-shell method generalized to any n)
};

/// Pattern-based strategy (SC-MD / FS-MD): per-n UCP enumeration.
/// `reach` > 1 selects sub-cutoff cells of side rcut/reach (paper Sec. 6,
/// midpoint-method style).
std::unique_ptr<ForceStrategy> make_tuple_strategy(const ForceField& field,
                                                   PatternKind kind,
                                                   bool measure_force_set =
                                                       false,
                                                   int reach = 1);

/// Hybrid-MD: full-shell pair grid, dynamic Verlet pair list, triplets
/// pruned from the list with rcut(3) (paper Sec. 5).  Supports fields
/// with max_n() <= 3.
std::unique_ptr<ForceStrategy> make_hybrid_strategy(const ForceField& field,
                                                    bool measure_force_set =
                                                        false);

/// Convenience: "SC" / "FS" / "Hybrid" by name.
std::unique_ptr<ForceStrategy> make_strategy(const std::string& name,
                                             const ForceField& field,
                                             bool measure_force_set = false);

}  // namespace scmd
