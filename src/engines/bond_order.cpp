#include "engines/bond_order.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

BondOrderStrategy::BondOrderStrategy(const TersoffSilicon& field)
    : tersoff_(field) {}

HaloSpec BondOrderStrategy::halo(int n) const {
  SCMD_REQUIRE(n == 2, "bond-order strategy uses the pair grid only");
  return {{1, 1, 1}, {1, 1, 1}};
}

double BondOrderStrategy::compute(const ForceField& field,
                                  const DomainSet& domains,
                                  ForceAccum& forces,
                                  EngineCounters& counters) const {
  SCMD_REQUIRE(&field == static_cast<const ForceField*>(&tersoff_),
               "bond-order strategy is bound to its Tersoff field");
  const CellDomain* domp = domains.dom[2];
  std::vector<Vec3>* fp = forces.f[2];
  SCMD_REQUIRE(domp != nullptr && fp != nullptr, "missing pair domain");
  const CellDomain& dom = *domp;
  SCMD_REQUIRE(static_cast<int>(fp->size()) == dom.num_atoms(),
               "force array size mismatch");
  Vec3* fd = fp->data();
  const auto pos = dom.positions();
  const auto gid = dom.gids();

  const double rc = tersoff_.rcut(2);
  const double rc_sq = rc * rc;

  // ---- Full neighbor lists for owned atoms (as in Hybrid-MD) ---------
  std::vector<int> owned_atoms;
  std::vector<int> nbr;
  std::vector<int> nbr_start{0};
  const Int3 base = dom.owned_base();
  const Int3 od = dom.owned_dims();
  for (int z = 0; z < od.z; ++z) {
    for (int y = 0; y < od.y; ++y) {
      for (int x = 0; x < od.x; ++x) {
        const Int3 home = base + Int3{x, y, z};
        const auto [h0, h1] = dom.cell_range(dom.cell_index(home));
        for (int i = h0; i < h1; ++i) {
          owned_atoms.push_back(i);
          for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                const Int3 cell = home + Int3{dx, dy, dz};
                const auto [c0, c1] = dom.cell_range(dom.cell_index(cell));
                for (int j = c0; j < c1; ++j) {
                  ++counters.list_scan_steps;
                  if (gid[j] == gid[i]) continue;
                  if ((pos[i] - pos[j]).norm2() >= rc_sq) continue;
                  nbr.push_back(j);
                }
              }
            }
          }
          nbr_start.push_back(static_cast<int>(nbr.size()));
        }
      }
    }
  }
  counters.list_pairs += nbr.size();

  // Scratch per neighbor k of the current pair's center i.
  struct KTerm {
    int k;
    Vec3 v;      // r_k - r_i
    double r;    // |v|
    double fc;
    double dfc;
  };
  std::vector<KTerm> kt;

  double energy = 0.0;
  for (std::size_t oi = 0; oi < owned_atoms.size(); ++oi) {
    const int i = owned_atoms[oi];
    const int s0 = nbr_start[oi];
    const int s1 = nbr_start[oi + 1];

    // Precompute cutoff data for i's neighborhood once.
    kt.clear();
    for (int s = s0; s < s1; ++s) {
      const int k = nbr[static_cast<std::size_t>(s)];
      KTerm t;
      t.k = k;
      t.v = pos[k] - pos[i];
      t.r = t.v.norm();
      tersoff_.cutoff_fn(t.r, t.fc, t.dfc);
      kt.push_back(t);
    }

    for (std::size_t ji = 0; ji < kt.size(); ++ji) {
      const KTerm& J = kt[ji];
      const int j = J.k;
      const Vec3& u = J.v;
      const double r1 = J.r;
      const double inv_r1 = 1.0 / r1;
      double fr, dfr, fa, dfa;
      tersoff_.repulsive(r1, fr, dfr);
      tersoff_.attractive(r1, fa, dfa);

      // ζ over the other neighbors, caching the angular pieces.
      struct ZTerm {
        double cos_t, g, dg;
      };
      static thread_local std::vector<ZTerm> zt;
      zt.assign(kt.size(), {});
      double zeta = 0.0;
      for (std::size_t ki = 0; ki < kt.size(); ++ki) {
        if (ki == ji) continue;
        const KTerm& K = kt[ki];
        ++counters.tuples[3].chain_candidates;  // dynamic (j, i, k) triple
        ZTerm& z = zt[ki];
        z.cos_t = u.dot(K.v) * inv_r1 / K.r;
        tersoff_.angular(z.cos_t, z.g, z.dg);
        zeta += K.fc * z.g;
        ++counters.evals[3];
      }

      double b, db;
      tersoff_.bond_order(zeta, b, db);
      energy += 0.5 * J.fc * (fr + b * fa);
      ++counters.evals[2];

      // Pair part: dV/dr1 along û acts on i and j.
      const double s_pair =
          0.5 * (J.dfc * (fr + b * fa) + J.fc * (dfr + b * dfa));
      const Vec3 uhat = u * inv_r1;
      fd[i] += uhat * s_pair;   // F_i = −∇_i V; ∇_i r1 = −û
      fd[j] -= uhat * s_pair;

      // Bond-order part: dV/dζ spread over every k.
      const double w = 0.5 * J.fc * fa * db;
      if (w != 0.0) {
        for (std::size_t ki = 0; ki < kt.size(); ++ki) {
          if (ki == ji) continue;
          const KTerm& K = kt[ki];
          const ZTerm& z = zt[ki];
          const double inv_r2 = 1.0 / K.r;
          const Vec3 vhat = K.v * inv_r2;
          // ∇cosθ w.r.t. the bond vectors u = r_j−r_i, v = r_k−r_i.
          const Vec3 dcos_du =
              K.v * (inv_r1 * inv_r2) - u * (z.cos_t * inv_r1 * inv_r1);
          const Vec3 dcos_dv =
              u * (inv_r1 * inv_r2) - K.v * (z.cos_t * inv_r2 * inv_r2);
          const Vec3 grad_j = (K.fc * z.dg) * dcos_du;          // ∇_{r_j} ζ_k
          const Vec3 grad_k =
              K.dfc * z.g * vhat + (K.fc * z.dg) * dcos_dv;     // ∇_{r_k} ζ_k
          const Vec3 grad_i = -(grad_j + grad_k);
          fd[i] -= w * grad_i;
          fd[j] -= w * grad_j;
          fd[K.k] -= w * grad_k;
        }
      }
    }
  }
  return energy;
}

std::unique_ptr<ForceStrategy> make_bond_order_strategy(
    const TersoffSilicon& field) {
  return std::make_unique<BondOrderStrategy>(field);
}

}  // namespace scmd
