#pragma once

/// \file minimize.hpp
/// FIRE energy minimization (Bitzek et al., PRL 97, 170201 (2006)).
///
/// Relaxes a configuration to a local potential-energy minimum using the
/// engine's force machinery — any field, any strategy.  Used to prepare
/// defect-free starting structures and in tests as an independent check
/// that forces point downhill.

#include <string>

#include "md/system.hpp"
#include "potentials/force_field.hpp"

namespace scmd {

/// FIRE parameters; defaults follow the original paper.
struct MinimizeOptions {
  int max_steps = 2000;
  double force_tolerance = 1e-4;  ///< stop when max |F| drops below this
  double dt_initial = 0.002;
  double dt_max = 0.02;
  double alpha0 = 0.1;
  double f_inc = 1.1;
  double f_dec = 0.5;
  double f_alpha = 0.99;
  int n_min = 5;
  std::string strategy = "SC";
};

/// Minimization outcome.
struct MinimizeResult {
  bool converged = false;
  int steps = 0;
  double final_energy = 0.0;
  double max_force = 0.0;
};

/// Minimize in place (velocities are consumed as FIRE's internal state
/// and left near zero).
MinimizeResult minimize(ParticleSystem& sys, const ForceField& field,
                        const MinimizeOptions& options = {});

}  // namespace scmd
