#pragma once

/// \file counters.hpp
/// Deterministic per-step work counters.
///
/// These are the measured quantities behind every benchmark figure: the
/// performance model (src/perf) converts them to time with per-platform
/// constants, so benchmark output is exactly reproducible from a seed
/// regardless of host machine noise.

#include <array>
#include <cstdint>

#include "pattern/path.hpp"
#include "tuples/ucp.hpp"

namespace scmd {

/// Work performed by one rank (or the serial engine) during one force
/// computation.
struct EngineCounters {
  /// Tuple-search counters per tuple length n (index by n; 0/1 unused).
  std::array<TupleCounters, kMaxTupleLen + 1> tuples{};

  /// Force-term evaluations per n.
  std::array<std::uint64_t, kMaxTupleLen + 1> evals{};

  /// Force-set sizes |S(n)| (paper Eq. 23 / Fig. 7), when measured.
  std::array<long long, kMaxTupleLen + 1> force_set{};

  /// Hybrid-MD: Verlet-list entries built and scan steps spent building
  /// and pruning from the list.
  std::uint64_t list_pairs = 0;
  std::uint64_t list_scan_steps = 0;

  /// Communication (filled by parallel drivers / the cluster simulator).
  std::uint64_t ghost_atoms_imported = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes_imported = 0;
  std::uint64_t bytes_written_back = 0;

  /// Tuple cache (docs/TUPLECACHE.md): full UCP builds, steps served by
  /// replay, and cached tuples scanned while replaying (the replay-side
  /// analogue of search_steps).
  std::uint64_t cache_rebuilds = 0;
  std::uint64_t cache_reuse_steps = 0;
  std::uint64_t cache_replayed = 0;

  EngineCounters& operator-=(const EngineCounters& o) {
    for (std::size_t n = 0; n < tuples.size(); ++n) {
      tuples[n] -= o.tuples[n];
      evals[n] -= o.evals[n];
      force_set[n] -= o.force_set[n];
    }
    list_pairs -= o.list_pairs;
    list_scan_steps -= o.list_scan_steps;
    ghost_atoms_imported -= o.ghost_atoms_imported;
    messages -= o.messages;
    bytes_imported -= o.bytes_imported;
    bytes_written_back -= o.bytes_written_back;
    cache_rebuilds -= o.cache_rebuilds;
    cache_reuse_steps -= o.cache_reuse_steps;
    cache_replayed -= o.cache_replayed;
    return *this;
  }

  /// Per-step work from cumulative snapshots: `now.delta_since(prev)`.
  /// Avoids clear_counters() races in long runs — callers keep the
  /// cumulative totals and difference consecutive snapshots instead.
  EngineCounters delta_since(const EngineCounters& prev) const {
    EngineCounters d = *this;
    d -= prev;
    return d;
  }

  EngineCounters& operator+=(const EngineCounters& o) {
    for (std::size_t n = 0; n < tuples.size(); ++n) {
      tuples[n] += o.tuples[n];
      evals[n] += o.evals[n];
      force_set[n] += o.force_set[n];
    }
    list_pairs += o.list_pairs;
    list_scan_steps += o.list_scan_steps;
    ghost_atoms_imported += o.ghost_atoms_imported;
    messages += o.messages;
    bytes_imported += o.bytes_imported;
    bytes_written_back += o.bytes_written_back;
    cache_rebuilds += o.cache_rebuilds;
    cache_reuse_steps += o.cache_reuse_steps;
    cache_replayed += o.cache_replayed;
    return *this;
  }

  /// Total search steps over all tuple lengths (plus Hybrid list work).
  std::uint64_t total_search_steps() const {
    std::uint64_t s = list_scan_steps;
    for (const TupleCounters& tc : tuples) s += tc.search_steps;
    return s;
  }

  void clear() { *this = EngineCounters{}; }
};

}  // namespace scmd
