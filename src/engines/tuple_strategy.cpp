#include "engines/tuple_strategy.hpp"

#include <algorithm>
#include <thread>

#include "obs/trace.hpp"
#include "pattern/generate.hpp"
#include "support/error.hpp"

namespace scmd {

namespace {

/// Evaluate one accepted tuple against the field, accumulating forces
/// into `fd` (indexed like `pos`/`type`).  Shared by the enumeration,
/// build, and replay paths so the three agree on the eval kernel exactly.
inline double eval_tuple(const ForceField& field, int n,
                         std::span<const Vec3> pos, std::span<const int> type,
                         const int* t, Vec3* fd) {
  switch (n) {
    case 2:
      return field.eval_pair(type[t[0]], type[t[1]], pos[t[0]], pos[t[1]],
                             fd[t[0]], fd[t[1]]);
    case 3:
      return field.eval_triplet(type[t[0]], type[t[1]], type[t[2]],
                                pos[t[0]], pos[t[1]], pos[t[2]], fd[t[0]],
                                fd[t[1]], fd[t[2]]);
    case 4:
      return field.eval_quad(type[t[0]], type[t[1]], type[t[2]], type[t[3]],
                             pos[t[0]], pos[t[1]], pos[t[2]], pos[t[3]],
                             fd[t[0]], fd[t[1]], fd[t[2]], fd[t[3]]);
    default: {
      // n >= 5: generic chain kernel.  Gather positions/types into
      // chain-ordered scratch, scatter forces back.
      std::array<int, kMaxTupleLen> ct{};
      std::array<Vec3, kMaxTupleLen> cr{};
      std::array<Vec3, kMaxTupleLen> cf{};
      for (int k = 0; k < n; ++k) {
        ct[static_cast<std::size_t>(k)] = type[t[k]];
        cr[static_cast<std::size_t>(k)] = pos[t[k]];
      }
      const double e = field.eval_chain(n, ct.data(), cr.data(), cf.data());
      for (int k = 0; k < n; ++k) fd[t[k]] += cf[static_cast<std::size_t>(k)];
      return e;
    }
  }
}

/// Do all n-1 consecutive chain distances pass the exact cutoff?
inline bool chain_within(std::span<const Vec3> pos, const int* t, int n,
                         double rcut2) {
  for (int k = 0; k + 1 < n; ++k) {
    const Vec3 d = pos[t[k + 1]] - pos[t[k]];
    if (d.norm2() >= rcut2) return false;
  }
  return true;
}

}  // namespace

TupleStrategy::TupleStrategy(const ForceField& field, PatternKind kind,
                             bool measure_force_set, int reach,
                             bool shared_prefix)
    : kind_(kind),
      measure_force_set_(measure_force_set),
      reach_(reach),
      shared_prefix_(shared_prefix),
      max_n_(field.max_n()) {
  SCMD_REQUIRE(max_n_ >= 2 && max_n_ <= kMaxTupleLen,
               "field max_n out of range");
  SCMD_REQUIRE(reach >= 1 && reach <= 4, "reach out of range");
  for (int n = 2; n <= max_n_; ++n) {
    if (field.rcut(n) <= 0.0) continue;
    active_[static_cast<std::size_t>(n)] = true;
    Pattern psi;
    switch (kind) {
      case PatternKind::kShiftCollapse:
        psi = make_sc(n, reach);
        break;
      case PatternKind::kFullShell:
        psi = generate_fs(n, reach);
        break;
      case PatternKind::kOcOnly:
        psi = oc_shift(generate_fs(n, reach));
        break;
      case PatternKind::kRcOnly:
        psi = r_collapse(generate_fs(n, reach));
        break;
    }
    compiled_[static_cast<std::size_t>(n)] = CompiledPattern(psi);
    halo_[static_cast<std::size_t>(n)] =
        compiled_[static_cast<std::size_t>(n)].required_halo();
  }
}

std::string TupleStrategy::name() const {
  std::string base;
  switch (kind_) {
    case PatternKind::kShiftCollapse:
      base = "SC";
      break;
    case PatternKind::kFullShell:
      base = "FS";
      break;
    case PatternKind::kOcOnly:
      base = "OC";
      break;
    case PatternKind::kRcOnly:
      base = "RC";
      break;
  }
  if (reach_ > 1) base += "/k=" + std::to_string(reach_);
  if (shared_prefix_) base += "+p";
  return base;
}

double TupleStrategy::min_cell_size(int n, double rcut) const {
  (void)n;
  return rcut / reach_;
}

bool TupleStrategy::needs_grid(int n) const {
  return n >= 2 && n <= max_n_ && active_[static_cast<std::size_t>(n)];
}

HaloSpec TupleStrategy::halo(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  return halo_[static_cast<std::size_t>(n)];
}

HaloSpec TupleStrategy::root_reach(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  HaloSpec r;
  for (const CompiledPath& p : compiled_[static_cast<std::size_t>(n)].paths()) {
    const Int3& v0 = p.v[0];
    for (int a = 0; a < 3; ++a) {
      r.lo[a] = std::max(r.lo[a], v0[a]);
      r.hi[a] = std::max(r.hi[a], -v0[a]);
    }
  }
  return r;
}

const CompiledPattern& TupleStrategy::compiled(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  return compiled_[static_cast<std::size_t>(n)];
}

void TupleStrategy::set_num_threads(int num_threads) {
  SCMD_REQUIRE(num_threads >= 1, "need at least one thread");
  num_threads_ = num_threads;
}

std::vector<Vec3> TupleStrategy::ScratchPool::checkout(std::size_t size) {
  std::vector<Vec3> buf;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  buf.assign(size, Vec3{});
  return buf;
}

void TupleStrategy::ScratchPool::checkin(std::vector<Vec3>&& buf) {
  const std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(buf));
}

template <class EvalFn>
double TupleStrategy::run_term(const CellDomain& dom,
                               const CompiledPattern& cp, double rcut,
                               std::vector<Vec3>& f,
                               EngineCounters& counters, int n,
                               std::uint64_t* cell_cost,
                               EvalFn&& eval) const {
  const std::size_t ni = static_cast<std::size_t>(n);
  const int z_dim = dom.owned_dims().z;
  const int threads = std::min(num_threads_, z_dim);

  if (threads <= 1) {
    double energy = 0.0;
    EvalCtx ctx;
    TupleCounters tc;
    Vec3* fd = f.data();
    enumerate_tuples(
        shared_prefix_, dom, cp, rcut, 0, z_dim,
        [&](std::span<const int> t) { energy += eval(t, fd, ctx); },
        &tc, cell_cost);
    counters.tuples[ni] += tc;
    counters.evals[ni] += ctx.evals;
    return energy;
  }

  // Home-cell z-slabs partition the tuple stream; each thread works into
  // its own force buffer and counters, reduced in thread order below so
  // results are deterministic for a fixed thread count.
  struct Part {
    std::vector<Vec3> f;
    TupleCounters tc;
    double energy = 0.0;
    EvalCtx ctx;
  };
  std::vector<Part> parts(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Part& part = parts[static_cast<std::size_t>(t)];
      part.ctx.part = t;
      part.f = scratch_.checkout(static_cast<std::size_t>(dom.num_atoms()));
      const int z0 = t * z_dim / threads;
      const int z1 = (t + 1) * z_dim / threads;
      Vec3* fd = part.f.data();
      // cell_cost entries are indexed by absolute owned-cell coordinate,
      // so disjoint z-slabs write disjoint entries — no race.
      enumerate_tuples(
          shared_prefix_, dom, cp, rcut, z0, z1,
          [&](std::span<const int> tup) {
            part.energy += eval(tup, fd, part.ctx);
          },
          &part.tc, cell_cost);
    });
  }
  for (std::thread& w : workers) w.join();

  double energy = 0.0;
  for (Part& part : parts) {
    // A part that evaluated nothing never touched its force buffer.
    if (part.ctx.evals != 0) {
      for (std::size_t i = 0; i < f.size(); ++i) f[i] += part.f[i];
    }
    counters.tuples[ni] += part.tc;
    counters.evals[ni] += part.ctx.evals;
    energy += part.energy;
    scratch_.checkin(std::move(part.f));
  }
  return energy;
}

double TupleStrategy::compute(const ForceField& field,
                              const DomainSet& domains, ForceAccum& forces,
                              EngineCounters& counters) const {
  double energy = 0.0;
  for (int n = 2; n <= max_n_; ++n) {
    if (!needs_grid(n)) continue;
    SCMD_TRACE(obs::search_phase_name(n));
    const std::size_t ni = static_cast<std::size_t>(n);
    const CellDomain* dom = domains.dom[ni];
    std::vector<Vec3>* f = forces.f[ni];
    SCMD_REQUIRE(dom != nullptr && f != nullptr,
                 "missing domain or force array for active n");
    SCMD_REQUIRE(static_cast<int>(f->size()) == dom->num_atoms(),
                 "force array size mismatch");
    const CompiledPattern& cp = compiled_[ni];
    const auto pos = dom->positions();
    const auto type = dom->types();

    if (measure_force_set_)
      counters.force_set[ni] += force_set_size(*dom, cp);

    std::uint64_t* cell_cost = nullptr;
    if (forces.cell_cost[ni] != nullptr) {
      SCMD_REQUIRE(static_cast<long long>(forces.cell_cost[ni]->size()) ==
                       dom->owned_dims().volume(),
                   "cell_cost array size mismatch");
      cell_cost = forces.cell_cost[ni]->data();
    }

    energy += run_term(
        *dom, cp, field.rcut(n), *f, counters, n, cell_cost,
        [&, n](std::span<const int> t, Vec3* fd, EvalCtx& ctx) {
          ++ctx.evals;
          return eval_tuple(field, n, pos, type, t.data(), fd);
        });
  }
  return energy;
}

double TupleStrategy::compute_build(const ForceField& field,
                                    const DomainSet& domains, double skin,
                                    TupleListCache& cache, ForceAccum& forces,
                                    EngineCounters& counters) const {
  SCMD_REQUIRE(skin >= 0.0, "tuple-cache skin must be non-negative");
  double energy = 0.0;
  ++counters.cache_rebuilds;
  for (int n = 2; n <= max_n_; ++n) {
    if (!needs_grid(n)) continue;
    SCMD_TRACE(obs::search_phase_name(n));
    const std::size_t ni = static_cast<std::size_t>(n);
    const CellDomain* dom = domains.dom[ni];
    std::vector<Vec3>* f = forces.f[ni];
    SCMD_REQUIRE(dom != nullptr && f != nullptr,
                 "missing domain or force array for active n");
    SCMD_REQUIRE(static_cast<int>(f->size()) == dom->num_atoms(),
                 "force array size mismatch");
    const CompiledPattern& cp = compiled_[ni];
    const auto pos = dom->positions();
    const auto type = dom->types();

    if (measure_force_set_)
      counters.force_set[ni] += force_set_size(*dom, cp);

    std::uint64_t* cell_cost = nullptr;
    if (forces.cell_cost[ni] != nullptr) {
      SCMD_REQUIRE(static_cast<long long>(forces.cell_cost[ni]->size()) ==
                       dom->owned_dims().volume(),
                   "cell_cost array size mismatch");
      cell_cost = forces.cell_cost[ni]->data();
    }

    const double rcut = field.rcut(n);
    const double rcut2 = rcut * rcut;
    TupleList& list = cache.list(n);
    list.reset(*dom, n);
    // Per-part tuple recording, concatenated in part order below so the
    // list layout is deterministic for a fixed thread count.
    std::vector<std::vector<int>> rec(
        static_cast<std::size_t>(num_threads_));

    energy += run_term(
        *dom, cp, rcut + skin, *f, counters, n, cell_cost,
        [&, n](std::span<const int> t, Vec3* fd, EvalCtx& ctx) {
          std::vector<int>& r = rec[static_cast<std::size_t>(ctx.part)];
          r.insert(r.end(), t.begin(), t.end());
          // The enumeration accepted at rcut + skin; only the exact-rcut
          // subset contributes to this step's forces.
          if (!chain_within(pos, t.data(), n, rcut2)) return 0.0;
          ++ctx.evals;
          return eval_tuple(field, n, pos, type, t.data(), fd);
        });

    for (const std::vector<int>& r : rec) list.append_flat(r);
  }
  return energy;
}

double TupleStrategy::compute_replay(const ForceField& field,
                                     const TupleListCache& cache,
                                     ForceAccum& forces,
                                     EngineCounters& counters) const {
  double energy = 0.0;
  ++counters.cache_reuse_steps;
  for (int n = 2; n <= max_n_; ++n) {
    if (!needs_grid(n)) continue;
    SCMD_TRACE(obs::replay_phase_name(n));
    const std::size_t ni = static_cast<std::size_t>(n);
    const TupleList& list = cache.list(n);
    SCMD_REQUIRE(list.n() == n, "tuple cache has no list for this n");
    std::vector<Vec3>* f = forces.f[ni];
    SCMD_REQUIRE(f != nullptr &&
                     static_cast<int>(f->size()) == list.num_slots(),
                 "replay force array must match the cached slot table");
    energy += replay_term(field, list, field.rcut(n), *f, counters, n);
  }
  return energy;
}

double TupleStrategy::replay_term(const ForceField& field,
                                  const TupleList& list, double rcut,
                                  std::vector<Vec3>& f,
                                  EngineCounters& counters, int n) const {
  const std::size_t ni = static_cast<std::size_t>(n);
  const double rcut2 = rcut * rcut;
  const long long count = list.num_tuples();
  counters.cache_replayed += static_cast<std::uint64_t>(count);
  const int* tuples = list.tuples().data();
  const auto pos = list.positions();
  const auto type = list.types();

  auto scan = [&](long long begin, long long end, Vec3* fd,
                  std::uint64_t& evals) {
    double e = 0.0;
    for (long long i = begin; i < end; ++i) {
      const int* t = tuples + i * n;
      if (!chain_within(pos, t, n, rcut2)) continue;
      ++evals;
      e += eval_tuple(field, n, pos, type, t, fd);
    }
    return e;
  };

  // Threaded replay over contiguous tuple blocks (same deterministic
  // part-order reduce as the search path); short lists are not worth the
  // thread spawns.
  const int threads =
      count >= 2048 ? std::min<int>(num_threads_,
                                    static_cast<int>(count / 1024))
                    : 1;
  if (threads <= 1) {
    std::uint64_t evals = 0;
    const double energy = scan(0, count, f.data(), evals);
    counters.evals[ni] += evals;
    return energy;
  }

  struct Part {
    std::vector<Vec3> f;
    double energy = 0.0;
    std::uint64_t evals = 0;
  };
  std::vector<Part> parts(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Part& part = parts[static_cast<std::size_t>(t)];
      part.f = scratch_.checkout(f.size());
      const long long b = count * t / threads;
      const long long e = count * (t + 1) / threads;
      part.energy = scan(b, e, part.f.data(), part.evals);
    });
  }
  for (std::thread& w : workers) w.join();

  double energy = 0.0;
  for (Part& part : parts) {
    if (part.evals != 0) {
      for (std::size_t i = 0; i < f.size(); ++i) f[i] += part.f[i];
    }
    counters.evals[ni] += part.evals;
    energy += part.energy;
    scratch_.checkin(std::move(part.f));
  }
  return energy;
}

}  // namespace scmd
