#include "engines/tuple_strategy.hpp"

#include <algorithm>
#include <thread>

#include "obs/trace.hpp"
#include "pattern/generate.hpp"
#include "support/error.hpp"
#include "tuples/kernels/simd.hpp"

namespace scmd {

TupleStrategy::TupleStrategy(const ForceField& field, PatternKind kind,
                             bool measure_force_set, int reach,
                             bool shared_prefix)
    : kind_(kind),
      measure_force_set_(measure_force_set),
      reach_(reach),
      shared_prefix_(shared_prefix),
      max_n_(field.max_n()),
      kernel_mode_(kernels::mode_from_env()),
      kernels_(field, kernel_mode_) {
  SCMD_REQUIRE(max_n_ >= 2 && max_n_ <= kMaxTupleLen,
               "field max_n out of range");
  SCMD_REQUIRE(reach >= 1 && reach <= 4, "reach out of range");
  for (int n = 2; n <= max_n_; ++n) {
    if (field.rcut(n) <= 0.0) continue;
    active_[static_cast<std::size_t>(n)] = true;
    Pattern psi;
    switch (kind) {
      case PatternKind::kShiftCollapse:
        psi = make_sc(n, reach);
        break;
      case PatternKind::kFullShell:
        psi = generate_fs(n, reach);
        break;
      case PatternKind::kOcOnly:
        psi = oc_shift(generate_fs(n, reach));
        break;
      case PatternKind::kRcOnly:
        psi = r_collapse(generate_fs(n, reach));
        break;
    }
    compiled_[static_cast<std::size_t>(n)] = CompiledPattern(psi);
    halo_[static_cast<std::size_t>(n)] =
        compiled_[static_cast<std::size_t>(n)].required_halo();
  }
}

std::string TupleStrategy::name() const {
  std::string base;
  switch (kind_) {
    case PatternKind::kShiftCollapse:
      base = "SC";
      break;
    case PatternKind::kFullShell:
      base = "FS";
      break;
    case PatternKind::kOcOnly:
      base = "OC";
      break;
    case PatternKind::kRcOnly:
      base = "RC";
      break;
  }
  if (reach_ > 1) base += "/k=" + std::to_string(reach_);
  if (shared_prefix_) base += "+p";
  return base;
}

double TupleStrategy::min_cell_size(int n, double rcut) const {
  (void)n;
  return rcut / reach_;
}

bool TupleStrategy::needs_grid(int n) const {
  return n >= 2 && n <= max_n_ && active_[static_cast<std::size_t>(n)];
}

HaloSpec TupleStrategy::halo(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  return halo_[static_cast<std::size_t>(n)];
}

HaloSpec TupleStrategy::root_reach(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  HaloSpec r;
  for (const CompiledPath& p : compiled_[static_cast<std::size_t>(n)].paths()) {
    const Int3& v0 = p.v[0];
    for (int a = 0; a < 3; ++a) {
      r.lo[a] = std::max(r.lo[a], v0[a]);
      r.hi[a] = std::max(r.hi[a], -v0[a]);
    }
  }
  return r;
}

const CompiledPattern& TupleStrategy::compiled(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  return compiled_[static_cast<std::size_t>(n)];
}

void TupleStrategy::set_num_threads(int num_threads) {
  SCMD_REQUIRE(num_threads >= 1, "need at least one thread");
  num_threads_ = num_threads;
}

void TupleStrategy::set_kernel_mode(kernels::KernelMode mode) {
  kernel_mode_ = mode;
  kernels_ = kernels::BoundKernels(*kernels_.field(), mode);
}

const kernels::BoundKernels& TupleStrategy::bound_for(
    const ForceField& field, kernels::BoundKernels& storage) const {
  if (kernels_.field() == &field) return kernels_;
  storage = kernels::BoundKernels(field, kernel_mode_);
  return storage;
}

TupleStrategy::ScratchPool::Buf TupleStrategy::ScratchPool::checkout(
    std::size_t size) {
  Buf buf;
  {
    const MutexLock lock(mu_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  buf.assign(size, Vec3{});
  return buf;
}

void TupleStrategy::ScratchPool::checkin(Buf&& buf) {
  const MutexLock lock(mu_);
  free_.push_back(std::move(buf));
}

template <class PartFn>
double TupleStrategy::run_parts(const CellDomain& dom, std::vector<Vec3>& f,
                                EngineCounters& counters, int n,
                                PartFn&& part_fn) const {
  const std::size_t ni = static_cast<std::size_t>(n);
  const int z_dim = dom.owned_dims().z;
  const int threads = std::min(num_threads_, z_dim);

  if (threads <= 1) {
    TupleCounters tc;
    std::uint64_t evals = 0;
    const double energy = part_fn(0, 0, z_dim, f.data(), tc, evals);
    counters.tuples[ni] += tc;
    counters.evals[ni] += evals;
    return energy;
  }

  // Home-cell z-slabs partition the tuple stream; each thread works into
  // its own force buffer and counters, reduced in thread order below so
  // results are deterministic for a fixed thread count.
  struct Part {
    ScratchPool::Buf f;
    TupleCounters tc;
    double energy = 0.0;
    std::uint64_t evals = 0;
  };
  std::vector<Part> parts(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Part& part = parts[static_cast<std::size_t>(t)];
      part.f = scratch_.checkout(static_cast<std::size_t>(dom.num_atoms()));
      const int z0 = t * z_dim / threads;
      const int z1 = (t + 1) * z_dim / threads;
      part.energy = part_fn(t, z0, z1, part.f.data(), part.tc, part.evals);
    });
  }
  for (std::thread& w : workers) w.join();

  double energy = 0.0;
  for (Part& part : parts) {
    // A part that evaluated nothing never touched its force buffer.
    if (part.evals != 0) {
      for (std::size_t i = 0; i < f.size(); ++i) f[i] += part.f[i];
    }
    counters.tuples[ni] += part.tc;
    counters.evals[ni] += part.evals;
    energy += part.energy;
    scratch_.checkin(std::move(part.f));
  }
  return energy;
}

double TupleStrategy::compute(const ForceField& field,
                              const DomainSet& domains, ForceAccum& forces,
                              EngineCounters& counters) const {
  kernels::BoundKernels rebound;
  const kernels::BoundKernels& kern = bound_for(field, rebound);
  double energy = 0.0;
  for (int n = 2; n <= max_n_; ++n) {
    if (!needs_grid(n)) continue;
    SCMD_TRACE(obs::search_phase_name(n));
    const std::size_t ni = static_cast<std::size_t>(n);
    const CellDomain* dom = domains.dom[ni];
    std::vector<Vec3>* f = forces.f[ni];
    SCMD_REQUIRE(dom != nullptr && f != nullptr,
                 "missing domain or force array for active n");
    SCMD_REQUIRE(static_cast<int>(f->size()) == dom->num_atoms(),
                 "force array size mismatch");
    const CompiledPattern& cp = compiled_[ni];
    const auto pos = dom->positions();
    const auto type = dom->types();

    if (measure_force_set_)
      counters.force_set[ni] += force_set_size(*dom, cp);

    std::uint64_t* cell_cost = nullptr;
    if (forces.cell_cost[ni] != nullptr) {
      SCMD_REQUIRE(static_cast<long long>(forces.cell_cost[ni]->size()) ==
                       dom->owned_dims().volume(),
                   "cell_cost array size mismatch");
      cell_cost = forces.cell_cost[ni]->data();
    }

    const double rcut = field.rcut(n);
    const double rcut2 = rcut * rcut;
    // Enumerated tuples are buffered into fixed-size blocks and flushed
    // through the kernel dispatch.  The enumeration already filtered at
    // the exact cutoff, so the kernel's mask (the same criterion,
    // bitwise) passes every tuple — the block pass exists to batch the
    // force evaluation, not to re-filter.
    energy += run_parts(
        *dom, *f, counters, n,
        [&](int /*part*/, int z0, int z1, Vec3* fd, TupleCounters& tc,
            std::uint64_t& evals) {
          double e = 0.0;
          std::vector<int> block;
          block.reserve(static_cast<std::size_t>(kernels::kEvalBlock) *
                        static_cast<std::size_t>(n));
          long long cnt = 0;
          enumerate_tuples(
              shared_prefix_, *dom, cp, rcut, z0, z1,
              [&](std::span<const int> t) {
                block.insert(block.end(), t.begin(), t.end());
                if (++cnt == kernels::kEvalBlock) {
                  e += kern.eval(n, block.data(), cnt, pos, type, rcut2, fd,
                                 evals);
                  block.clear();
                  cnt = 0;
                }
              },
              &tc, cell_cost);
          if (cnt > 0) {
            e += kern.eval(n, block.data(), cnt, pos, type, rcut2, fd, evals);
          }
          return e;
        });
  }
  return energy;
}

double TupleStrategy::compute_build(const ForceField& field,
                                    const DomainSet& domains, double skin,
                                    TupleListCache& cache, ForceAccum& forces,
                                    EngineCounters& counters) const {
  SCMD_REQUIRE(skin >= 0.0, "tuple-cache skin must be non-negative");
  kernels::BoundKernels rebound;
  const kernels::BoundKernels& kern = bound_for(field, rebound);
  double energy = 0.0;
  ++counters.cache_rebuilds;
  for (int n = 2; n <= max_n_; ++n) {
    if (!needs_grid(n)) continue;
    SCMD_TRACE(obs::search_phase_name(n));
    const std::size_t ni = static_cast<std::size_t>(n);
    const CellDomain* dom = domains.dom[ni];
    std::vector<Vec3>* f = forces.f[ni];
    SCMD_REQUIRE(dom != nullptr && f != nullptr,
                 "missing domain or force array for active n");
    SCMD_REQUIRE(static_cast<int>(f->size()) == dom->num_atoms(),
                 "force array size mismatch");
    const CompiledPattern& cp = compiled_[ni];
    const auto pos = dom->positions();
    const auto type = dom->types();

    if (measure_force_set_)
      counters.force_set[ni] += force_set_size(*dom, cp);

    std::uint64_t* cell_cost = nullptr;
    if (forces.cell_cost[ni] != nullptr) {
      SCMD_REQUIRE(static_cast<long long>(forces.cell_cost[ni]->size()) ==
                       dom->owned_dims().volume(),
                   "cell_cost array size mismatch");
      cell_cost = forces.cell_cost[ni]->data();
    }

    const double rcut = field.rcut(n);
    const double rcut2 = rcut * rcut;
    TupleList& list = cache.list(n);
    list.reset(*dom, n);
    // Per-part tuple recording, concatenated in part order below so the
    // list layout is deterministic for a fixed thread count.
    std::vector<std::vector<int>> rec(
        static_cast<std::size_t>(num_threads_));

    // The enumeration (at rcut + skin) only records; the part's recorded
    // stream is then evaluated in one kernel sweep with the exact-rcut
    // mask — the very sweep replay will run over the same list, so a
    // build step and an immediate replay at the same positions produce
    // identical forces and energy.
    energy += run_parts(
        *dom, *f, counters, n,
        [&](int part, int z0, int z1, Vec3* fd, TupleCounters& tc,
            std::uint64_t& evals) {
          std::vector<int>& r = rec[static_cast<std::size_t>(part)];
          enumerate_tuples(
              shared_prefix_, *dom, cp, rcut + skin, z0, z1,
              [&](std::span<const int> t) {
                r.insert(r.end(), t.begin(), t.end());
              },
              &tc, cell_cost);
          return kern.eval(n, r.data(),
                           static_cast<long long>(r.size()) / n, pos, type,
                           rcut2, fd, evals);
        });

    for (const std::vector<int>& r : rec) list.append_flat(r);
  }
  return energy;
}

double TupleStrategy::compute_replay(const ForceField& field,
                                     const TupleListCache& cache,
                                     ForceAccum& forces,
                                     EngineCounters& counters) const {
  kernels::BoundKernels rebound;
  const kernels::BoundKernels& kern = bound_for(field, rebound);
  double energy = 0.0;
  ++counters.cache_reuse_steps;
  for (int n = 2; n <= max_n_; ++n) {
    if (!needs_grid(n)) continue;
    SCMD_TRACE(obs::replay_phase_name(n));
    const std::size_t ni = static_cast<std::size_t>(n);
    const TupleList& list = cache.list(n);
    SCMD_REQUIRE(list.n() == n, "tuple cache has no list for this n");
    std::vector<Vec3>* f = forces.f[ni];
    SCMD_REQUIRE(f != nullptr &&
                     static_cast<int>(f->size()) == list.num_slots(),
                 "replay force array must match the cached slot table");
    energy += replay_term(kern, list, field.rcut(n), *f, counters, n);
  }
  return energy;
}

double TupleStrategy::replay_term(const kernels::BoundKernels& kern,
                                  const TupleList& list, double rcut,
                                  std::vector<Vec3>& f,
                                  EngineCounters& counters, int n) const {
  const std::size_t ni = static_cast<std::size_t>(n);
  const double rcut2 = rcut * rcut;
  const long long count = list.num_tuples();
  counters.cache_replayed += static_cast<std::uint64_t>(count);
  const int* tuples = list.tuples().data();
  const auto pos = list.positions();
  const auto type = list.types();

  // Threaded replay over contiguous tuple blocks (same deterministic
  // part-order reduce as the search path); short lists are not worth the
  // thread spawns.
  const int threads =
      count >= 2048 ? std::min<int>(num_threads_,
                                    static_cast<int>(count / 1024))
                    : 1;
  if (threads <= 1) {
    std::uint64_t evals = 0;
    const double energy =
        kern.eval(n, tuples, count, pos, type, rcut2, f.data(), evals);
    counters.evals[ni] += evals;
    return energy;
  }

  struct Part {
    ScratchPool::Buf f;
    double energy = 0.0;
    std::uint64_t evals = 0;
  };
  std::vector<Part> parts(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Part& part = parts[static_cast<std::size_t>(t)];
      part.f = scratch_.checkout(f.size());
      const long long b = count * t / threads;
      const long long e = count * (t + 1) / threads;
      part.energy = kern.eval(n, tuples + b * n, e - b, pos, type, rcut2,
                              part.f.data(), part.evals);
    });
  }
  for (std::thread& w : workers) w.join();

  double energy = 0.0;
  for (Part& part : parts) {
    if (part.evals != 0) {
      for (std::size_t i = 0; i < f.size(); ++i) f[i] += part.f[i];
    }
    counters.evals[ni] += part.evals;
    energy += part.energy;
    scratch_.checkin(std::move(part.f));
  }
  return energy;
}

}  // namespace scmd
