#include "engines/tuple_strategy.hpp"

#include <algorithm>
#include <thread>

#include "obs/trace.hpp"
#include "pattern/generate.hpp"
#include "support/error.hpp"

namespace scmd {

TupleStrategy::TupleStrategy(const ForceField& field, PatternKind kind,
                             bool measure_force_set, int reach,
                             bool shared_prefix)
    : kind_(kind),
      measure_force_set_(measure_force_set),
      reach_(reach),
      shared_prefix_(shared_prefix),
      max_n_(field.max_n()) {
  SCMD_REQUIRE(max_n_ >= 2 && max_n_ <= kMaxTupleLen,
               "field max_n out of range");
  SCMD_REQUIRE(reach >= 1 && reach <= 4, "reach out of range");
  for (int n = 2; n <= max_n_; ++n) {
    if (field.rcut(n) <= 0.0) continue;
    active_[static_cast<std::size_t>(n)] = true;
    Pattern psi;
    switch (kind) {
      case PatternKind::kShiftCollapse:
        psi = make_sc(n, reach);
        break;
      case PatternKind::kFullShell:
        psi = generate_fs(n, reach);
        break;
      case PatternKind::kOcOnly:
        psi = oc_shift(generate_fs(n, reach));
        break;
      case PatternKind::kRcOnly:
        psi = r_collapse(generate_fs(n, reach));
        break;
    }
    compiled_[static_cast<std::size_t>(n)] = CompiledPattern(psi);
    halo_[static_cast<std::size_t>(n)] =
        compiled_[static_cast<std::size_t>(n)].required_halo();
  }
}

std::string TupleStrategy::name() const {
  std::string base;
  switch (kind_) {
    case PatternKind::kShiftCollapse:
      base = "SC";
      break;
    case PatternKind::kFullShell:
      base = "FS";
      break;
    case PatternKind::kOcOnly:
      base = "OC";
      break;
    case PatternKind::kRcOnly:
      base = "RC";
      break;
  }
  if (reach_ > 1) base += "/k=" + std::to_string(reach_);
  if (shared_prefix_) base += "+p";
  return base;
}

double TupleStrategy::min_cell_size(int n, double rcut) const {
  (void)n;
  return rcut / reach_;
}

bool TupleStrategy::needs_grid(int n) const {
  return n >= 2 && n <= max_n_ && active_[static_cast<std::size_t>(n)];
}

HaloSpec TupleStrategy::halo(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  return halo_[static_cast<std::size_t>(n)];
}

HaloSpec TupleStrategy::root_reach(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  HaloSpec r;
  for (const CompiledPath& p : compiled_[static_cast<std::size_t>(n)].paths()) {
    const Int3& v0 = p.v[0];
    for (int a = 0; a < 3; ++a) {
      r.lo[a] = std::max(r.lo[a], v0[a]);
      r.hi[a] = std::max(r.hi[a], -v0[a]);
    }
  }
  return r;
}

const CompiledPattern& TupleStrategy::compiled(int n) const {
  SCMD_REQUIRE(needs_grid(n), "no pattern for this n");
  return compiled_[static_cast<std::size_t>(n)];
}

void TupleStrategy::set_num_threads(int num_threads) {
  SCMD_REQUIRE(num_threads >= 1, "need at least one thread");
  num_threads_ = num_threads;
}

template <class EvalFn>
double TupleStrategy::run_term(const CellDomain& dom,
                               const CompiledPattern& cp, double rcut,
                               std::vector<Vec3>& f,
                               EngineCounters& counters, int n,
                               std::uint64_t* cell_cost,
                               EvalFn&& eval) const {
  const std::size_t ni = static_cast<std::size_t>(n);
  const int z_dim = dom.owned_dims().z;
  const int threads = std::min(num_threads_, z_dim);

  if (threads <= 1) {
    double energy = 0.0;
    std::uint64_t evals = 0;
    TupleCounters tc;
    Vec3* fd = f.data();
    enumerate_tuples(
        shared_prefix_, dom, cp, rcut, 0, z_dim,
        [&](std::span<const int> t) {
          energy += eval(t, fd);
          ++evals;
        },
        &tc, cell_cost);
    counters.tuples[ni] += tc;
    counters.evals[ni] += evals;
    return energy;
  }

  // Home-cell z-slabs partition the tuple stream; each thread works into
  // its own force buffer and counters, reduced in thread order below so
  // results are deterministic for a fixed thread count.
  struct Part {
    std::vector<Vec3> f;
    TupleCounters tc;
    double energy = 0.0;
    std::uint64_t evals = 0;
  };
  std::vector<Part> parts(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Part& part = parts[static_cast<std::size_t>(t)];
      part.f.assign(static_cast<std::size_t>(dom.num_atoms()), Vec3{});
      const int z0 = t * z_dim / threads;
      const int z1 = (t + 1) * z_dim / threads;
      Vec3* fd = part.f.data();
      // cell_cost entries are indexed by absolute owned-cell coordinate,
      // so disjoint z-slabs write disjoint entries — no race.
      enumerate_tuples(
          shared_prefix_, dom, cp, rcut, z0, z1,
          [&](std::span<const int> tup) {
            part.energy += eval(tup, fd);
            ++part.evals;
          },
          &part.tc, cell_cost);
    });
  }
  for (std::thread& w : workers) w.join();

  double energy = 0.0;
  for (const Part& part : parts) {
    for (std::size_t i = 0; i < f.size(); ++i) f[i] += part.f[i];
    counters.tuples[ni] += part.tc;
    counters.evals[ni] += part.evals;
    energy += part.energy;
  }
  return energy;
}

double TupleStrategy::compute(const ForceField& field,
                              const DomainSet& domains, ForceAccum& forces,
                              EngineCounters& counters) const {
  double energy = 0.0;
  for (int n = 2; n <= max_n_; ++n) {
    if (!needs_grid(n)) continue;
    SCMD_TRACE(obs::search_phase_name(n));
    const std::size_t ni = static_cast<std::size_t>(n);
    const CellDomain* dom = domains.dom[ni];
    std::vector<Vec3>* f = forces.f[ni];
    SCMD_REQUIRE(dom != nullptr && f != nullptr,
                 "missing domain or force array for active n");
    SCMD_REQUIRE(static_cast<int>(f->size()) == dom->num_atoms(),
                 "force array size mismatch");
    const CompiledPattern& cp = compiled_[ni];
    const auto pos = dom->positions();
    const auto type = dom->types();

    if (measure_force_set_)
      counters.force_set[ni] += force_set_size(*dom, cp);

    std::uint64_t* cell_cost = nullptr;
    if (forces.cell_cost[ni] != nullptr) {
      SCMD_REQUIRE(static_cast<long long>(forces.cell_cost[ni]->size()) ==
                       dom->owned_dims().volume(),
                   "cell_cost array size mismatch");
      cell_cost = forces.cell_cost[ni]->data();
    }

    switch (n) {
      case 2:
        energy += run_term(
            *dom, cp, field.rcut(2), *f, counters, 2, cell_cost,
            [&](std::span<const int> t, Vec3* fd) {
              return field.eval_pair(type[t[0]], type[t[1]], pos[t[0]],
                                     pos[t[1]], fd[t[0]], fd[t[1]]);
            });
        break;
      case 3:
        energy += run_term(
            *dom, cp, field.rcut(3), *f, counters, 3, cell_cost,
            [&](std::span<const int> t, Vec3* fd) {
              return field.eval_triplet(type[t[0]], type[t[1]], type[t[2]],
                                        pos[t[0]], pos[t[1]], pos[t[2]],
                                        fd[t[0]], fd[t[1]], fd[t[2]]);
            });
        break;
      case 4:
        energy += run_term(
            *dom, cp, field.rcut(4), *f, counters, 4, cell_cost,
            [&](std::span<const int> t, Vec3* fd) {
              return field.eval_quad(type[t[0]], type[t[1]], type[t[2]],
                                     type[t[3]], pos[t[0]], pos[t[1]],
                                     pos[t[2]], pos[t[3]], fd[t[0]],
                                     fd[t[1]], fd[t[2]], fd[t[3]]);
            });
        break;
      default:
        // n >= 5: generic chain kernel.  Gather positions/types into
        // chain-ordered scratch, scatter forces back.
        energy += run_term(
            *dom, cp, field.rcut(n), *f, counters, n, cell_cost,
            [&, n](std::span<const int> t, Vec3* fd) {
              std::array<int, kMaxTupleLen> ct{};
              std::array<Vec3, kMaxTupleLen> cr{};
              std::array<Vec3, kMaxTupleLen> cf{};
              for (int k = 0; k < n; ++k) {
                ct[static_cast<std::size_t>(k)] = type[t[k]];
                cr[static_cast<std::size_t>(k)] = pos[t[k]];
              }
              const double e =
                  field.eval_chain(n, ct.data(), cr.data(), cf.data());
              for (int k = 0; k < n; ++k)
                fd[t[k]] += cf[static_cast<std::size_t>(k)];
              return e;
            });
        break;
    }
  }
  return energy;
}

}  // namespace scmd
