#pragma once

/// \file serial_engine.hpp
/// Single-process MD engine.
///
/// Equivalent to a 1-rank parallel run: per-n cell grids are rebuilt every
/// step, ghost halos are filled with periodic images, the chosen force
/// strategy enumerates tuples, and per-domain forces fold back to atoms by
/// global id.  This is the reference implementation that the parallel
/// engines are validated against.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "engines/strategy.hpp"
#include "md/integrator.hpp"
#include "md/system.hpp"
#include "md/thermostat.hpp"
#include "obs/trace.hpp"
#include "tuples/tuple_list.hpp"

namespace scmd {

class TupleStrategy;

/// Serial engine configuration.
struct SerialEngineConfig {
  double dt = 1.0;  ///< time step, internal units
  /// Record |S(n)| force-set sizes each step (paper Fig. 7 quantity).
  bool measure_force_set = false;
  /// Intra-process threads for tuple enumeration (pattern strategies
  /// split home-cell slabs; Hybrid ignores this).
  int num_threads = 1;
  /// Persistent tuple lists (docs/TUPLECACHE.md): enumerate at
  /// rcut + skin, replay until any atom drifts past skin/2.  Pattern
  /// strategies (SC/FS/OC/RC) only.
  TupleCacheConfig tuple_cache;
  /// Optional phase-span sink (binning / search per n / fold /
  /// integrate).  Null: tracing off, near-zero overhead.
  obs::TraceSession* trace = nullptr;
};

/// Serial cell-based MD driver.
class SerialEngine {
 public:
  /// The system and field must outlive the engine.  The strategy defines
  /// which of SC-MD / FS-MD / Hybrid-MD this engine runs.
  SerialEngine(ParticleSystem& sys, const ForceField& field,
               std::unique_ptr<ForceStrategy> strategy,
               const SerialEngineConfig& config = {});

  /// Recompute forces for the current positions; updates potential_energy
  /// and accumulates counters.
  void compute_forces();

  /// One velocity-Verlet step (forces must be current; the constructor
  /// primes them).
  void step();

  /// Step with a thermostat applied after integration.
  void step(const BerendsenThermostat& thermostat);

  double potential_energy() const { return potential_energy_; }
  double total_energy() const;

  /// Counters accumulated since the last clear_counters().
  const EngineCounters& counters() const { return counters_; }
  void clear_counters() { counters_.clear(); }

  const ForceStrategy& strategy() const { return *strategy_; }

 private:
  /// Full pipeline: bin, enumerate (recording tuples when caching), fold.
  void compute_forces_full();
  /// Cache-reuse pipeline: refresh slot positions, replay lists, fold.
  void compute_forces_replay();

  ParticleSystem& sys_;
  const ForceField& field_;
  std::unique_ptr<ForceStrategy> strategy_;
  SerialEngineConfig config_;
  VelocityVerlet integrator_;
  double potential_energy_ = 0.0;
  EngineCounters counters_;

  /// Non-null iff tuple caching is on (downcast of strategy_).
  const TupleStrategy* tuple_strategy_ = nullptr;
  TupleListCache cache_;
  /// Persistent per-n replay force storage (sized to the cached slot
  /// tables; reused across steps).
  std::array<std::vector<Vec3>, kMaxTupleLen + 1> replay_f_{};

  /// --- Invariant-checker state (src/check; inert unless enabled) ------
  /// Pattern strategy for the tuple-ownership census (null for Hybrid).
  const TupleStrategy* census_strategy_ = nullptr;
  std::uint64_t check_builds_ = 0;   ///< rebuild steps seen (census cadence)
  std::uint64_t check_replays_ = 0;  ///< reuse steps seen (parity cadence)
};

}  // namespace scmd
