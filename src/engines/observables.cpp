#include "engines/observables.hpp"

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/units.hpp"
#include "support/error.hpp"

namespace scmd {

namespace {

/// Copy of `sys` with box and positions scaled uniformly by `s`.
ParticleSystem scaled_copy(const ParticleSystem& sys, double s) {
  std::vector<double> masses;
  for (int t = 0; t < sys.num_types(); ++t)
    masses.push_back(sys.mass_of_type(t));
  ParticleSystem out(Box(sys.box().lengths() * s), std::move(masses));
  for (int i = 0; i < sys.num_atoms(); ++i) {
    out.add_atom(sys.positions()[i] * s, sys.velocities()[i],
                 sys.types()[i]);
  }
  return out;
}

double potential_energy_of(ParticleSystem sys, const ForceField& field,
                           const std::string& strategy_name) {
  SerialEngine engine(sys, field, make_strategy(strategy_name, field));
  return engine.potential_energy();
}

}  // namespace

Pressure measure_pressure(const ParticleSystem& sys, const ForceField& field,
                          const std::string& strategy_name, double dlnV) {
  SCMD_REQUIRE(dlnV > 0.0 && dlnV < 0.01, "dlnV out of range");
  const double volume = sys.box().volume();

  // Scale lengths by (1 ± dlnV/3) so the volume changes by ~±dlnV.
  const double sp = std::cbrt(1.0 + dlnV);
  const double sm = std::cbrt(1.0 - dlnV);
  const double up = potential_energy_of(scaled_copy(sys, sp), field,
                                        strategy_name);
  const double um = potential_energy_of(scaled_copy(sys, sm), field,
                                        strategy_name);
  const double dUdV = (up - um) / (2.0 * dlnV * volume);

  Pressure p;
  p.kinetic = sys.num_atoms() * units::kBoltzmann * sys.temperature() /
              volume;
  p.virial = -dUdV;
  return p;
}

double velocity_autocorrelation(const ParticleSystem& reference,
                                const ParticleSystem& later) {
  SCMD_REQUIRE(reference.num_atoms() == later.num_atoms(),
               "snapshots must hold the same atoms");
  double num = 0.0, den = 0.0;
  for (int i = 0; i < reference.num_atoms(); ++i) {
    num += reference.velocities()[i].dot(later.velocities()[i]);
    den += reference.velocities()[i].norm2();
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace scmd
