#pragma once

/// \file tuple_strategy.hpp
/// Pattern-based force strategy: UCP enumeration with either the
/// shift-collapse (SC-MD) or full-shell (FS-MD) computation pattern for
/// every n-body term of the field.

#include "engines/strategy.hpp"
#include "tuples/ucp.hpp"

namespace scmd {

/// SC-MD / FS-MD force computation (see strategy.hpp).
class TupleStrategy final : public ForceStrategy {
 public:
  TupleStrategy(const ForceField& field, PatternKind kind,
                bool measure_force_set, int reach = 1,
                bool shared_prefix = false);

  std::string name() const override;
  bool needs_grid(int n) const override;
  HaloSpec halo(int n) const override;
  HaloSpec root_reach(int n) const override;
  double min_cell_size(int n, double rcut) const override;

  int reach() const { return reach_; }
  bool shared_prefix() const { return shared_prefix_; }

  /// Split enumeration over home-cell z-slabs across this many threads,
  /// with per-thread force buffers reduced deterministically.
  void set_num_threads(int num_threads) override;
  int num_threads() const { return num_threads_; }

  double compute(const ForceField& field, const DomainSet& domains,
                 ForceAccum& forces, EngineCounters& counters) const override;

  /// The compiled pattern used for tuple length n (for tests/benches).
  const CompiledPattern& compiled(int n) const;

 private:
  template <class EvalFn>
  double run_term(const CellDomain& dom, const CompiledPattern& cp,
                  double rcut, std::vector<Vec3>& f,
                  EngineCounters& counters, int n,
                  std::uint64_t* cell_cost, EvalFn&& eval) const;

  PatternKind kind_;
  bool measure_force_set_;
  int reach_;
  bool shared_prefix_;
  int num_threads_ = 1;
  int max_n_;
  std::array<bool, kMaxTupleLen + 1> active_{};
  std::array<CompiledPattern, kMaxTupleLen + 1> compiled_{};
  std::array<HaloSpec, kMaxTupleLen + 1> halo_{};
};

}  // namespace scmd
