#pragma once

/// \file tuple_strategy.hpp
/// Pattern-based force strategy: UCP enumeration with either the
/// shift-collapse (SC-MD) or full-shell (FS-MD) computation pattern for
/// every n-body term of the field.
///
/// Besides the per-step enumeration (compute), the strategy implements
/// the two halves of the persistent tuple-list cache
/// (docs/TUPLECACHE.md): compute_build enumerates once at the inflated
/// cutoff rcut + skin and records every accepted tuple into a
/// TupleListCache while evaluating the exact-rcut subset; compute_replay
/// re-evaluates the recorded lists with exact-rcut filtering and no
/// search at all.

#include <mutex>
#include <vector>

#include "engines/strategy.hpp"
#include "tuples/tuple_list.hpp"
#include "tuples/ucp.hpp"

namespace scmd {

/// SC-MD / FS-MD force computation (see strategy.hpp).
class TupleStrategy final : public ForceStrategy {
 public:
  TupleStrategy(const ForceField& field, PatternKind kind,
                bool measure_force_set, int reach = 1,
                bool shared_prefix = false);

  std::string name() const override;
  bool needs_grid(int n) const override;
  HaloSpec halo(int n) const override;
  HaloSpec root_reach(int n) const override;
  double min_cell_size(int n, double rcut) const override;

  int reach() const { return reach_; }
  bool shared_prefix() const { return shared_prefix_; }

  /// Split enumeration over home-cell z-slabs across this many threads,
  /// with per-thread force buffers reduced deterministically.
  void set_num_threads(int num_threads) override;
  int num_threads() const { return num_threads_; }

  double compute(const ForceField& field, const DomainSet& domains,
                 ForceAccum& forces, EngineCounters& counters) const override;

  /// Tuple-cache build pass: enumerate every term at rcut(n) + skin,
  /// record the accepted tuples into `cache` (lists are reset here), and
  /// evaluate the subset whose consecutive pairs pass the exact rcut(n).
  /// Domains must be binned on grids sized by min_cell_size(n,
  /// rcut(n) + skin).  The caller marks the cache built (it owns the
  /// displacement reference).
  double compute_build(const ForceField& field, const DomainSet& domains,
                       double skin, TupleListCache& cache, ForceAccum& forces,
                       EngineCounters& counters) const;

  /// Tuple-cache replay pass: re-evaluate the cached lists (slot
  /// positions must be refreshed first) with exact-rcut filtering.
  /// `forces.f[n]` must be sized to the list's slot count; threads split
  /// contiguous tuple blocks.
  double compute_replay(const ForceField& field, const TupleListCache& cache,
                        ForceAccum& forces, EngineCounters& counters) const;

  /// The compiled pattern used for tuple length n (for tests/benches).
  const CompiledPattern& compiled(int n) const;

 private:
  /// Per-thread context handed to eval callbacks: which enumeration part
  /// this is (for per-thread recording) and how many force terms the
  /// callback actually evaluated (run_term folds it into
  /// counters.evals[n]; a part with zero evals has an untouched force
  /// buffer, so its O(N) reduce is skipped).
  struct EvalCtx {
    int part = 0;
    std::uint64_t evals = 0;
  };

  /// Mutex-guarded free list of force scratch buffers, reused across
  /// calls so the threaded paths don't allocate num_atoms-sized arrays
  /// every step.  The pool is shared across rank threads (the strategy
  /// instance is); it is touched once per term per thread, never inside
  /// tuple loops.
  ///
  /// Ownership contract: a checked-out buffer is exclusively the
  /// caller's until checked back in — the lock covers only the free
  /// list, never the buffers, so a buffer must not be touched after
  /// checkin (the oversubscribed-replay test in
  /// tests/check/checked_md_test.cpp pins this under contention).
  class ScratchPool {
   public:
    /// A zeroed buffer of `size` (recycled allocation when available).
    std::vector<Vec3> checkout(std::size_t size);
    void checkin(std::vector<Vec3>&& buf);

   private:
    std::mutex mu_;
    std::vector<std::vector<Vec3>> free_;
  };

  template <class EvalFn>
  double run_term(const CellDomain& dom, const CompiledPattern& cp,
                  double rcut, std::vector<Vec3>& f,
                  EngineCounters& counters, int n,
                  std::uint64_t* cell_cost, EvalFn&& eval) const;

  double replay_term(const ForceField& field, const TupleList& list,
                     double rcut, std::vector<Vec3>& f,
                     EngineCounters& counters, int n) const;

  PatternKind kind_;
  bool measure_force_set_;
  int reach_;
  bool shared_prefix_;
  int num_threads_ = 1;
  int max_n_;
  std::array<bool, kMaxTupleLen + 1> active_{};
  std::array<CompiledPattern, kMaxTupleLen + 1> compiled_{};
  std::array<HaloSpec, kMaxTupleLen + 1> halo_{};
  mutable ScratchPool scratch_;
};

}  // namespace scmd
