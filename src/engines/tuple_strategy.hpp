#pragma once

/// \file tuple_strategy.hpp
/// Pattern-based force strategy: UCP enumeration with either the
/// shift-collapse (SC-MD) or full-shell (FS-MD) computation pattern for
/// every n-body term of the field.
///
/// Besides the per-step enumeration (compute), the strategy implements
/// the two halves of the persistent tuple-list cache
/// (docs/TUPLECACHE.md): compute_build enumerates once at the inflated
/// cutoff rcut + skin and records every accepted tuple into a
/// TupleListCache while evaluating the exact-rcut subset; compute_replay
/// re-evaluates the recorded lists with exact-rcut filtering and no
/// search at all.
///
/// All three paths evaluate tuples through one dispatch point — the
/// BoundKernels table resolved at construction (docs/KERNELS.md), which
/// routes each arity to a batched SIMD-friendly kernel when the field is
/// specialized and to the scalar reference loop otherwise.  Serial and
/// rank engines both funnel through here, so they share the kernels
/// automatically.

#include <vector>

#include "engines/strategy.hpp"
#include "support/aligned.hpp"
#include "support/thread_safety.hpp"
#include "tuples/kernels/kernels.hpp"
#include "tuples/tuple_list.hpp"
#include "tuples/ucp.hpp"

namespace scmd {

/// SC-MD / FS-MD force computation (see strategy.hpp).
class TupleStrategy final : public ForceStrategy {
 public:
  TupleStrategy(const ForceField& field, PatternKind kind,
                bool measure_force_set, int reach = 1,
                bool shared_prefix = false);

  std::string name() const override;
  bool needs_grid(int n) const override;
  HaloSpec halo(int n) const override;
  HaloSpec root_reach(int n) const override;
  double min_cell_size(int n, double rcut) const override;

  int reach() const { return reach_; }
  bool shared_prefix() const { return shared_prefix_; }

  /// Split enumeration over home-cell z-slabs across this many threads,
  /// with per-thread force buffers reduced deterministically.
  void set_num_threads(int num_threads) override;
  int num_threads() const { return num_threads_; }

  /// Re-resolve the kernel table under a different selection policy
  /// (kScalar forces the reference loops everywhere).  The default at
  /// construction honors the SCMD_KERNELS environment variable.  Not
  /// thread-safe against concurrent compute calls.
  void set_kernel_mode(kernels::KernelMode mode);

  /// The kernel table bound to the construction-time field (for
  /// tests/benches asserting which arities are specialized).
  const kernels::BoundKernels& bound_kernels() const { return kernels_; }

  double compute(const ForceField& field, const DomainSet& domains,
                 ForceAccum& forces, EngineCounters& counters) const override;

  /// Tuple-cache build pass: enumerate every term at rcut(n) + skin,
  /// record the accepted tuples into `cache` (lists are reset here), and
  /// evaluate the subset whose consecutive pairs pass the exact rcut(n).
  /// Domains must be binned on grids sized by min_cell_size(n,
  /// rcut(n) + skin).  The caller marks the cache built (it owns the
  /// displacement reference).
  double compute_build(const ForceField& field, const DomainSet& domains,
                       double skin, TupleListCache& cache, ForceAccum& forces,
                       EngineCounters& counters) const;

  /// Tuple-cache replay pass: re-evaluate the cached lists (slot
  /// positions must be refreshed first) with exact-rcut filtering.
  /// `forces.f[n]` must be sized to the list's slot count; threads split
  /// contiguous tuple blocks.
  double compute_replay(const ForceField& field, const TupleListCache& cache,
                        ForceAccum& forces, EngineCounters& counters) const;

  /// The compiled pattern used for tuple length n (for tests/benches).
  const CompiledPattern& compiled(int n) const;

 private:
  /// Mutex-guarded free list of force scratch buffers, reused across
  /// calls so the threaded paths don't allocate num_atoms-sized arrays
  /// every step.  Buffers are 64-byte aligned for the batched kernels'
  /// vector-width accesses.  The pool is shared across rank threads (the
  /// strategy instance is); it is touched once per term per thread,
  /// never inside tuple loops.
  ///
  /// Ownership contract: a checked-out buffer is exclusively the
  /// caller's until checked back in — the lock covers only the free
  /// list, never the buffers, so a buffer must not be touched after
  /// checkin (the oversubscribed-replay test in
  /// tests/check/checked_md_test.cpp pins this under contention).
  class ScratchPool {
   public:
    using Buf = std::vector<Vec3, AlignedAllocator<Vec3, 64>>;

    /// A zeroed buffer of `size` (recycled allocation when available).
    Buf checkout(std::size_t size);
    void checkin(Buf&& buf);

   private:
    Mutex mu_;
    std::vector<Buf> free_ SCMD_GUARDED_BY(mu_);
  };

  /// The kernel table for `field`: the construction-bound table when the
  /// fields match, else a table freshly bound into `storage` (an engine
  /// passing a different field instance than the one the strategy was
  /// built for still evaluates correctly, just without the cached bind).
  const kernels::BoundKernels& bound_for(const ForceField& field,
                                         kernels::BoundKernels& storage) const;

  /// Threading harness shared by the enumeration paths: split the
  /// home-cell z-slab range over threads, hand each part a force buffer
  /// and its own counters, and reduce in part order (deterministic for a
  /// fixed thread count).  `part_fn(part, z0, z1, fd, tc, evals)`
  /// returns the part's energy; a part reporting zero evals must leave
  /// its buffer untouched (its O(N) reduce is skipped).
  template <class PartFn>
  double run_parts(const CellDomain& dom, std::vector<Vec3>& f,
                   EngineCounters& counters, int n, PartFn&& part_fn) const;

  double replay_term(const kernels::BoundKernels& kern, const TupleList& list,
                     double rcut, std::vector<Vec3>& f,
                     EngineCounters& counters, int n) const;

  PatternKind kind_;
  bool measure_force_set_;
  int reach_;
  bool shared_prefix_;
  int num_threads_ = 1;
  int max_n_;
  std::array<bool, kMaxTupleLen + 1> active_{};
  std::array<CompiledPattern, kMaxTupleLen + 1> compiled_{};
  std::array<HaloSpec, kMaxTupleLen + 1> halo_{};
  kernels::KernelMode kernel_mode_ = kernels::KernelMode::kAuto;
  kernels::BoundKernels kernels_;
  mutable ScratchPool scratch_;
};

}  // namespace scmd
