#include "engines/serial_engine.hpp"

#include "cell/domain.hpp"
#include "support/error.hpp"

namespace scmd {

SerialEngine::SerialEngine(ParticleSystem& sys, const ForceField& field,
                           std::unique_ptr<ForceStrategy> strategy,
                           const SerialEngineConfig& config)
    : sys_(sys),
      field_(field),
      strategy_(std::move(strategy)),
      config_(config),
      integrator_(config.dt) {
  SCMD_REQUIRE(strategy_ != nullptr, "engine needs a strategy");
  SCMD_REQUIRE(config.num_threads >= 1, "need at least one thread");
  strategy_->set_num_threads(config.num_threads);
  compute_forces();
}

void SerialEngine::compute_forces() {
  const obs::ThreadTraceGuard trace_guard(config_.trace, /*tid=*/0);
  SCMD_TRACE("force");
  sys_.zero_forces();

  // Per-n domains requested by the strategy, each on its own grid with
  // cell side >= rcut(n).
  DomainSet domains;
  ForceAccum accum;
  std::array<CellDomain, kMaxTupleLen + 1> dom_storage;
  std::array<std::vector<Vec3>, kMaxTupleLen + 1> f_storage;

  {
    SCMD_TRACE("binning");
    for (int n = 2; n <= field_.max_n(); ++n) {
      if (!strategy_->needs_grid(n)) continue;
      const std::size_t ni = static_cast<std::size_t>(n);
      const double rcut =
          field_.rcut(n) > 0.0 ? field_.rcut(n) : field_.rcut(2);
      const CellGrid grid(sys_.box(), strategy_->min_cell_size(n, rcut));
      // Periodic image uniqueness (an atom interacts with at most one
      // image of any other) requires at least 3 cells per axis.
      SCMD_REQUIRE(grid.dims().x >= 3 && grid.dims().y >= 3 &&
                       grid.dims().z >= 3,
                   "box too small: need >= 3 cells per axis for grid n=" +
                       std::to_string(n));
      dom_storage[ni] = make_serial_domain(grid, strategy_->halo(n),
                                           sys_.positions(), sys_.types());
      f_storage[ni].assign(
          static_cast<std::size_t>(dom_storage[ni].num_atoms()), Vec3{});
      domains.dom[ni] = &dom_storage[ni];
      accum.f[ni] = &f_storage[ni];
    }
  }

  potential_energy_ =
      strategy_->compute(field_, domains, accum, counters_);

  // Fold per-domain forces back to the owning atoms by global id; ghost
  // copies contribute to their primaries (serial write-back).
  SCMD_TRACE("fold");
  const auto sys_f = sys_.forces();
  for (int n = 2; n <= field_.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    if (domains.dom[ni] == nullptr) continue;
    const auto gids = domains.dom[ni]->gids();
    const std::vector<Vec3>& f = f_storage[ni];
    for (std::size_t a = 0; a < f.size(); ++a) {
      sys_f[static_cast<std::size_t>(gids[a])] += f[a];
    }
  }
}

void SerialEngine::step() {
  const obs::ThreadTraceGuard trace_guard(config_.trace, /*tid=*/0);
  SCMD_TRACE("step");
  {
    SCMD_TRACE("integrate.kick_drift");
    integrator_.kick_drift(sys_);
  }
  compute_forces();
  SCMD_TRACE("integrate.kick");
  integrator_.kick(sys_);
}

void SerialEngine::step(const BerendsenThermostat& thermostat) {
  step();
  thermostat.apply(sys_, integrator_.dt());
}

double SerialEngine::total_energy() const {
  return potential_energy_ + sys_.kinetic_energy();
}

}  // namespace scmd
