#include "engines/serial_engine.hpp"

#include <algorithm>

#include "cell/domain.hpp"
#include "check/engine_checks.hpp"
#include "engines/check_hooks.hpp"
#include "engines/tuple_strategy.hpp"
#include "support/error.hpp"

namespace scmd {

SerialEngine::SerialEngine(ParticleSystem& sys, const ForceField& field,
                           std::unique_ptr<ForceStrategy> strategy,
                           const SerialEngineConfig& config)
    : sys_(sys),
      field_(field),
      strategy_(std::move(strategy)),
      config_(config),
      integrator_(config.dt),
      cache_(config.tuple_cache) {
  SCMD_REQUIRE(strategy_ != nullptr, "engine needs a strategy");
  SCMD_REQUIRE(config.num_threads >= 1, "need at least one thread");
  if (config.tuple_cache.enabled) {
    SCMD_REQUIRE(config.tuple_cache.skin >= 0.0,
                 "tuple-cache skin must be non-negative");
    tuple_strategy_ = dynamic_cast<const TupleStrategy*>(strategy_.get());
    SCMD_REQUIRE(tuple_strategy_ != nullptr,
                 "tuple_cache needs a pattern strategy (SC/FS/OC/RC)");
  }
  // The invariant checker's tuple census covers pattern strategies only
  // (Hybrid runs without the census; see docs/CHECKING.md).
  census_strategy_ = dynamic_cast<const TupleStrategy*>(strategy_.get());
  strategy_->set_num_threads(config.num_threads);
  compute_forces();
}

void SerialEngine::compute_forces() {
  const obs::ThreadTraceGuard trace_guard(config_.trace, /*tid=*/0);
  SCMD_TRACE("force");
  if (tuple_strategy_ != nullptr && cache_.valid() &&
      !cache_.exceeds_skin(
          cache_.max_displacement2(sys_.box(), sys_.positions()))) {
    compute_forces_replay();
    return;
  }
  cache_.invalidate();
  compute_forces_full();
}

void SerialEngine::compute_forces_full() {
  SCMD_CHECK_SCOPE("force.full");
  sys_.zero_forces();

  // Per-n domains requested by the strategy, each on its own grid with
  // cell side >= rcut(n) — inflated by the skin when tuple caching, so
  // the inflated enumeration stays covered by the cell walk.
  const double skin = tuple_strategy_ != nullptr ? cache_.skin() : 0.0;
  DomainSet domains;
  ForceAccum accum;
  std::array<CellDomain, kMaxTupleLen + 1> dom_storage;
  std::array<std::vector<Vec3>, kMaxTupleLen + 1> f_storage;

  {
    SCMD_TRACE("binning");
    for (int n = 2; n <= field_.max_n(); ++n) {
      if (!strategy_->needs_grid(n)) continue;
      const std::size_t ni = static_cast<std::size_t>(n);
      const double rcut =
          field_.rcut(n) > 0.0 ? field_.rcut(n) : field_.rcut(2);
      const CellGrid grid(sys_.box(),
                          strategy_->min_cell_size(n, rcut + skin));
      // Periodic image uniqueness (an atom interacts with at most one
      // image of any other) requires at least 3 cells per axis.
      SCMD_REQUIRE(grid.dims().x >= 3 && grid.dims().y >= 3 &&
                       grid.dims().z >= 3,
                   "box too small: need >= 3 cells per axis for grid n=" +
                       std::to_string(n));
      dom_storage[ni] = make_serial_domain(grid, strategy_->halo(n),
                                           sys_.positions(), sys_.types());
      f_storage[ni].assign(
          static_cast<std::size_t>(dom_storage[ni].num_atoms()), Vec3{});
      domains.dom[ni] = &dom_storage[ni];
      accum.f[ni] = &f_storage[ni];
    }
  }

  if (tuple_strategy_ != nullptr) {
    potential_energy_ = tuple_strategy_->compute_build(
        field_, domains, cache_.skin(), cache_, accum, counters_);
    cache_.mark_built(sys_.positions());
  } else {
    potential_energy_ =
        strategy_->compute(field_, domains, accum, counters_);
  }

  // Fold per-domain forces back to the owning atoms by global id; ghost
  // copies contribute to their primaries (serial write-back).
  {
    SCMD_TRACE("fold");
    const auto sys_f = sys_.forces();
    for (int n = 2; n <= field_.max_n(); ++n) {
      const std::size_t ni = static_cast<std::size_t>(n);
      if (domains.dom[ni] == nullptr) continue;
      const auto gids = domains.dom[ni]->gids();
      const std::vector<Vec3>& f = f_storage[ni];
      for (std::size_t a = 0; a < f.size(); ++a) {
        sys_f[static_cast<std::size_t>(gids[a])] += f[a];
      }
    }
  }

#if defined(SCMD_CHECK_ENABLED)
  if (check::enabled()) {
    {
      SCMD_CHECK_SCOPE("force_balance");
      check::check_force_balance(nullptr, sys_.forces());
    }
    // The census must run here, while the binned domains are still alive.
    if (check::options().tuple_ownership && census_strategy_ != nullptr &&
        static_cast<int>(++check_builds_ %
                         static_cast<std::uint64_t>(std::max(
                             1, check::options().ownership_every))) == 0) {
      SCMD_CHECK_SCOPE("tuple_census");
      for (int n = 2; n <= field_.max_n(); ++n) {
        const std::size_t ni = static_cast<std::size_t>(n);
        if (domains.dom[ni] == nullptr) continue;
        const double rcut =
            field_.rcut(n) > 0.0 ? field_.rcut(n) : field_.rcut(2);
        const std::vector<std::int64_t> flat =
            census_tuples(*census_strategy_, dom_storage[ni], n, rcut);
        check::check_tuple_ownership(nullptr, n, flat, -1);
      }
    }
  }
#endif
}

void SerialEngine::compute_forces_replay() {
  SCMD_CHECK_SCOPE("force.replay");
  sys_.zero_forces();
  const auto pos = sys_.positions();
  ForceAccum accum;
  {
    // Refresh the frozen slot tables in place of re-binning: each slot
    // takes its source atom's current position, snapped to the periodic
    // image nearest its previous value (ghost slots keep their shifted
    // frame).
    SCMD_TRACE("refresh");
    for (int n = 2; n <= field_.max_n(); ++n) {
      if (!strategy_->needs_grid(n)) continue;
      const std::size_t ni = static_cast<std::size_t>(n);
      TupleList& list = cache_.list(n);
      list.refresh_positions(sys_.box(), [&](int ref) -> const Vec3& {
        return pos[static_cast<std::size_t>(ref)];
      });
      replay_f_[ni].assign(static_cast<std::size_t>(list.num_slots()),
                           Vec3{});
      accum.f[ni] = &replay_f_[ni];
    }
  }

  potential_energy_ =
      tuple_strategy_->compute_replay(field_, cache_, accum, counters_);

  {
    SCMD_TRACE("fold");
    const auto sys_f = sys_.forces();
    for (int n = 2; n <= field_.max_n(); ++n) {
      const std::size_t ni = static_cast<std::size_t>(n);
      if (accum.f[ni] == nullptr) continue;
      const auto refs = cache_.list(n).refs();
      const std::vector<Vec3>& f = replay_f_[ni];
      for (std::size_t a = 0; a < f.size(); ++a) {
        sys_f[static_cast<std::size_t>(refs[a])] += f[a];
      }
    }
  }

#if defined(SCMD_CHECK_ENABLED)
  if (check::enabled()) {
    {
      SCMD_CHECK_SCOPE("force_balance");
      check::check_force_balance(nullptr, sys_.forces());
    }
    if (check::options().replay_parity &&
        static_cast<int>(++check_replays_ %
                         static_cast<std::uint64_t>(std::max(
                             1, check::options().replay_parity_every))) ==
            0) {
      SCMD_CHECK_SCOPE("replay_parity");
      // Re-derive the forces by a fresh full build over the same
      // positions and compare (the two evaluate the same term set in
      // different order).  The rebuild re-primes the cache, so this step
      // loses the replay speedup but stays correct.
      const std::span<const Vec3> cur = sys_.forces();
      const std::vector<Vec3> replayed(cur.begin(), cur.end());
      const double replay_e = potential_energy_;
      compute_forces_full();
      check::check_replay_parity(nullptr, replayed, sys_.forces(), replay_e,
                                 potential_energy_);
    }
  }
#endif
}

void SerialEngine::step() {
  const obs::ThreadTraceGuard trace_guard(config_.trace, /*tid=*/0);
  SCMD_TRACE("step");
  SCMD_CHECK_SCOPE("step");
  {
    SCMD_TRACE("integrate.kick_drift");
    integrator_.kick_drift(sys_);
  }
  compute_forces();
  SCMD_TRACE("integrate.kick");
  integrator_.kick(sys_);
}

void SerialEngine::step(const BerendsenThermostat& thermostat) {
  step();
  thermostat.apply(sys_, integrator_.dt());
}

double SerialEngine::total_energy() const {
  return potential_energy_ + sys_.kinetic_energy();
}

}  // namespace scmd
