#include "engines/check_hooks.hpp"

#include "tuples/ucp.hpp"

namespace scmd {

std::vector<std::int64_t> census_tuples(const TupleStrategy& strategy,
                                        const CellDomain& dom, int n,
                                        double rcut) {
  std::vector<std::int64_t> flat;
  const std::span<const std::int64_t> gids = dom.gids();
  enumerate_tuples(strategy.shared_prefix(), dom, strategy.compiled(n), rcut,
                   [&](std::span<const int> chain) {
                     for (const int idx : chain)
                       flat.push_back(gids[static_cast<std::size_t>(idx)]);
                   });
  return flat;
}

}  // namespace scmd
