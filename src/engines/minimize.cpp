#include "engines/minimize.hpp"

#include <algorithm>
#include <cmath>

#include "engines/serial_engine.hpp"
#include "support/error.hpp"

namespace scmd {

MinimizeResult minimize(ParticleSystem& sys, const ForceField& field,
                        const MinimizeOptions& opt) {
  SCMD_REQUIRE(opt.max_steps > 0 && opt.force_tolerance > 0.0 &&
                   opt.dt_initial > 0.0 && opt.dt_max >= opt.dt_initial,
               "bad minimizer options");

  // Engines integrate with velocity Verlet; FIRE modulates the velocities
  // between steps.  Start from rest.
  for (Vec3& v : sys.velocities()) v = {};

  SerialEngineConfig cfg;
  cfg.dt = opt.dt_initial;
  SerialEngine engine(sys, field, make_strategy(opt.strategy, field), cfg);

  double dt = opt.dt_initial;
  double alpha = opt.alpha0;
  int steps_since_negative = 0;

  MinimizeResult result;
  auto max_force = [&] {
    double fmax = 0.0;
    for (const Vec3& f : sys.forces()) fmax = std::max(fmax, f.norm());
    return fmax;
  };

  for (int step = 0; step < opt.max_steps; ++step) {
    result.max_force = max_force();
    if (result.max_force < opt.force_tolerance) {
      result.converged = true;
      break;
    }

    // FIRE velocity mixing: v <- (1−α)v + α |v| F̂.
    double power = 0.0, vnorm2 = 0.0, fnorm2 = 0.0;
    for (int i = 0; i < sys.num_atoms(); ++i) {
      power += sys.velocities()[i].dot(sys.forces()[i]);
      vnorm2 += sys.velocities()[i].norm2();
      fnorm2 += sys.forces()[i].norm2();
    }
    if (power > 0.0) {
      const double mix =
          fnorm2 > 0.0 ? alpha * std::sqrt(vnorm2 / fnorm2) : 0.0;
      for (int i = 0; i < sys.num_atoms(); ++i) {
        sys.velocities()[i] =
            sys.velocities()[i] * (1.0 - alpha) + sys.forces()[i] * mix;
      }
      if (++steps_since_negative > opt.n_min) {
        dt = std::min(dt * opt.f_inc, opt.dt_max);
        alpha *= opt.f_alpha;
      }
    } else {
      // Uphill: freeze and restart the adaptive state.
      for (Vec3& v : sys.velocities()) v = {};
      dt *= opt.f_dec;
      alpha = opt.alpha0;
      steps_since_negative = 0;
    }

    // One velocity-Verlet step at the current dt (engine dt is fixed at
    // construction, so drive the integrator manually through a fresh
    // stepper).
    VelocityVerlet vv(dt);
    vv.kick_drift(sys);
    engine.compute_forces();
    vv.kick(sys);
    ++result.steps;
  }

  result.final_energy = engine.potential_energy();
  result.max_force = max_force();
  if (result.max_force < opt.force_tolerance) result.converged = true;
  for (Vec3& v : sys.velocities()) v = {};
  return result;
}

}  // namespace scmd
