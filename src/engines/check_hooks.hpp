#pragma once

/// \file check_hooks.hpp
/// Engine-side data collection for the runtime invariant checker.
///
/// The checker (src/check) asserts properties over plain gid arrays so it
/// stays independent of the enumeration machinery; this helper produces
/// those arrays from an engine's binned state.

#include <cstdint>
#include <vector>

#include "cell/domain.hpp"
#include "engines/tuple_strategy.hpp"

namespace scmd {

/// This rank's accepted n-tuples at exact `rcut`, re-enumerated over the
/// already-binned domain and flattened to n gids per tuple in chain
/// order — the input to check::check_tuple_ownership.  An independent
/// second enumeration, so it validates the evaluated tuple stream rather
/// than replaying the engine's bookkeeping.
std::vector<std::int64_t> census_tuples(const TupleStrategy& strategy,
                                        const CellDomain& dom, int n,
                                        double rcut);

}  // namespace scmd
