#pragma once

/// \file observables.hpp
/// Thermodynamic observables beyond per-step energies.
///
/// Pressure uses the volume-derivative route, P = N k_B T / V − ∂U/∂V,
/// with ∂U/∂V by central differences over uniformly scaled copies of the
/// system.  Two extra force computations per call, but exact for any
/// many-body field (no per-tuple virial plumbing), which suits this
/// library's arbitrary-n force fields.

#include <span>
#include <string>

#include "md/system.hpp"
#include "potentials/force_field.hpp"

namespace scmd {

/// Instantaneous pressure components.
struct Pressure {
  double kinetic = 0.0;   ///< N k_B T / V (ideal-gas part)
  double virial = 0.0;    ///< −dU/dV (interaction part)
  double total() const { return kinetic + virial; }
};

/// Measure the pressure of the current configuration using strategy
/// `strategy_name` ("SC" unless you need otherwise).  `dlnV` is the
/// relative volume perturbation for the central difference.
Pressure measure_pressure(const ParticleSystem& sys, const ForceField& field,
                          const std::string& strategy_name = "SC",
                          double dlnV = 1e-5);

/// Velocity autocorrelation between two snapshots of the same system:
/// <v(0)·v(t)> / <v(0)·v(0)> — feed a time series to build the VACF.
double velocity_autocorrelation(const ParticleSystem& reference,
                                const ParticleSystem& later);

}  // namespace scmd
