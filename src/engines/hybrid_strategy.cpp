#include "engines/hybrid_strategy.hpp"

#include "obs/trace.hpp"
#include "pattern/generate.hpp"
#include "support/error.hpp"
#include "tuples/ucp.hpp"

namespace scmd {

HybridStrategy::HybridStrategy(const ForceField& field, bool measure_force_set)
    : measure_force_set_(measure_force_set),
      has_triplets_(field.max_n() >= 3 && field.rcut(3) > 0.0) {
  SCMD_REQUIRE(field.rcut(2) > 0.0, "Hybrid-MD needs a pair term");
  SCMD_REQUIRE(field.max_n() <= 3,
               "Hybrid-MD supports pair+triplet fields only");
  if (has_triplets_) {
    SCMD_REQUIRE(field.rcut(3) <= field.rcut(2),
                 "Hybrid-MD requires rcut3 <= rcut2");
  }
}

HaloSpec HybridStrategy::halo(int n) const {
  SCMD_REQUIRE(n == 2, "Hybrid-MD uses the pair grid only");
  // Full shell: one cell layer in every direction.
  return {{1, 1, 1}, {1, 1, 1}};
}

double HybridStrategy::compute(const ForceField& field,
                               const DomainSet& domains, ForceAccum& forces,
                               EngineCounters& counters) const {
  const CellDomain* domp = domains.dom[2];
  std::vector<Vec3>* fp = forces.f[2];
  SCMD_REQUIRE(domp != nullptr && fp != nullptr, "missing pair domain");
  const CellDomain& dom = *domp;
  SCMD_REQUIRE(static_cast<int>(fp->size()) == dom.num_atoms(),
               "force array size mismatch");
  Vec3* fd = fp->data();
  const auto pos = dom.positions();
  const auto type = dom.types();
  const auto gid = dom.gids();

  const double rc2 = field.rcut(2);
  const double rc2_sq = rc2 * rc2;

  if (measure_force_set_) {
    // The pair search space Hybrid actually scans is the full-shell pair
    // force set |S(2)| (paper Eq. 23 with Ψ(2)_FS).
    static const CompiledPattern fs2{generate_fs(2)};
    counters.force_set[2] += force_set_size(dom, fs2);
  }

  std::uint64_t* cell_cost = nullptr;
  if (forces.cell_cost[2] != nullptr) {
    SCMD_REQUIRE(static_cast<long long>(forces.cell_cost[2]->size()) ==
                     dom.owned_dims().volume(),
                 "cell_cost array size mismatch");
    cell_cost = forces.cell_cost[2]->data();
  }

  // ---- Verlet pair-list construction (Ψ(2)_FS over start atoms) -------
  // owned_atoms[i] is the binned index of a chain-start atom (== every
  // owned atom in the serial case); list entries live in
  // nbr[nbr_start[i] .. nbr_start[i+1]).
  std::vector<int> owned_atoms;
  owned_atoms.reserve(static_cast<std::size_t>(dom.num_start_atoms()));
  std::vector<int> nbr;
  std::vector<int> nbr_start;
  nbr_start.push_back(0);
  // Per start atom: the owned-cell linear index, for cost attribution.
  std::vector<int> home_cell_of;

  const Int3 base = dom.owned_base();
  const Int3 od = dom.owned_dims();
  {
    SCMD_TRACE("list.build");
    for (int z = 0; z < od.z; ++z) {
      for (int y = 0; y < od.y; ++y) {
        for (int x = 0; x < od.x; ++x) {
          const Int3 home = base + Int3{x, y, z};
          const auto [h0, h1] = dom.cell_start_range(dom.cell_index(home));
          const std::uint64_t before = counters.list_scan_steps;
          for (int i = h0; i < h1; ++i) {
            owned_atoms.push_back(i);
            if (cell_cost != nullptr)
              home_cell_of.push_back((z * od.y + y) * od.x + x);
            for (int dz = -1; dz <= 1; ++dz) {
              for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                  const Int3 cell = home + Int3{dx, dy, dz};
                  const auto [c0, c1] = dom.cell_range(dom.cell_index(cell));
                  for (int j = c0; j < c1; ++j) {
                    ++counters.list_scan_steps;
                    if (gid[j] == gid[i]) continue;
                    const Vec3 d = pos[i] - pos[j];
                    if (d.norm2() >= rc2_sq) continue;
                    nbr.push_back(j);
                  }
                }
              }
            }
            nbr_start.push_back(static_cast<int>(nbr.size()));
          }
          if (cell_cost != nullptr) {
            cell_cost[static_cast<std::size_t>((z * od.y + y) * od.x + x)] +=
                counters.list_scan_steps - before;
          }
        }
      }
    }
  }
  counters.list_pairs += nbr.size();

  double energy = 0.0;

  // ---- Pair forces from the list --------------------------------------
  // The full list holds both orientations of interior pairs and exactly
  // one orientation of rank-boundary pairs (the other lives on the
  // neighbor rank); the gid guard keeps each pair once globally.
  {
    SCMD_TRACE("eval.pairs");
    for (std::size_t oi = 0; oi < owned_atoms.size(); ++oi) {
      const int i = owned_atoms[oi];
      for (int s = nbr_start[oi]; s < nbr_start[oi + 1]; ++s) {
        const int j = nbr[static_cast<std::size_t>(s)];
        if (gid[i] > gid[j]) continue;
        energy += field.eval_pair(type[i], type[j], pos[i], pos[j], fd[i],
                                  fd[j]);
        ++counters.evals[2];
      }
    }
  }

  // ---- Triplets pruned from the pair list ------------------------------
  if (has_triplets_) {
    SCMD_TRACE("eval.triplets");
    const double rc3 = field.rcut(3);
    const double rc3_sq = rc3 * rc3;
    std::vector<int> close;  // neighbors within rcut3 of the center
    for (std::size_t oc = 0; oc < owned_atoms.size(); ++oc) {
      const int c = owned_atoms[oc];
      close.clear();
      const std::uint64_t before = counters.list_scan_steps;
      for (int s = nbr_start[oc]; s < nbr_start[oc + 1]; ++s) {
        const int j = nbr[static_cast<std::size_t>(s)];
        ++counters.list_scan_steps;
        const Vec3 d = pos[c] - pos[j];
        if (d.norm2() < rc3_sq) close.push_back(j);
      }
      if (cell_cost != nullptr) {
        cell_cost[static_cast<std::size_t>(home_cell_of[oc])] +=
            counters.list_scan_steps - before;
      }
      // Every unordered pair of close neighbors forms one angle at c.
      for (std::size_t a = 0; a < close.size(); ++a) {
        for (std::size_t b = a + 1; b < close.size(); ++b) {
          ++counters.tuples[3].chain_candidates;
          ++counters.tuples[3].accepted;
          energy += field.eval_triplet(type[close[a]], type[c], type[close[b]],
                                       pos[close[a]], pos[c], pos[close[b]],
                                       fd[close[a]], fd[c], fd[close[b]]);
          ++counters.evals[3];
        }
      }
    }
  }

  return energy;
}

}  // namespace scmd
