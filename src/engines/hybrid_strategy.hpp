#pragma once

/// \file hybrid_strategy.hpp
/// Hybrid-MD baseline: the production cell/Verlet-neighbor-list scheme
/// (paper Sec. 5, Ref. [12]).
///
/// Pair computation builds a dynamic Verlet pair list from the full-shell
/// pair pattern Ψ(2)_FS every step; the triplet search is then pruned
/// directly from the pair list using the shorter cutoff rcut(3) < rcut(2),
/// without a triplet cell grid.  The import volume is therefore the full
/// 26-neighbor shell of the pair grid — not reduced relative to FS-MD —
/// which is exactly the fine-grain weakness the paper measures.

#include "engines/strategy.hpp"

namespace scmd {

/// Hybrid cell/Verlet-list strategy for pair(+triplet) fields.
class HybridStrategy final : public ForceStrategy {
 public:
  HybridStrategy(const ForceField& field, bool measure_force_set);

  std::string name() const override { return "Hybrid"; }
  bool needs_grid(int n) const override { return n == 2; }
  HaloSpec halo(int n) const override;

  double compute(const ForceField& field, const DomainSet& domains,
                 ForceAccum& forces, EngineCounters& counters) const override;

 private:
  bool measure_force_set_;
  bool has_triplets_;
};

}  // namespace scmd
