#include "geom/box.hpp"

#include <cmath>
#include <ostream>

#include "geom/int3.hpp"
#include "support/error.hpp"

namespace scmd {

Box::Box(const Vec3& lengths) : lengths_(lengths) {
  SCMD_REQUIRE(lengths.x > 0.0 && lengths.y > 0.0 && lengths.z > 0.0,
               "box edge lengths must be positive");
}

Vec3 Box::wrap(const Vec3& r) const {
  Vec3 out = r;
  for (int a = 0; a < 3; ++a) {
    const double L = lengths_[a];
    double v = std::fmod(out[a], L);
    if (v < 0.0) v += L;
    // fmod can return exactly L for tiny negative inputs after the add;
    // clamp so wrapped positions always satisfy 0 <= v < L.
    if (v >= L) v = 0.0;
    out[a] = v;
  }
  return out;
}

Vec3 Box::min_image(const Vec3& a, const Vec3& b) const {
  Vec3 d = a - b;
  for (int ax = 0; ax < 3; ++ax) {
    const double L = lengths_[ax];
    d[ax] -= L * std::round(d[ax] / L);
  }
  return d;
}

Vec3 Box::image_near(const Vec3& src, const Vec3& ref) const {
  Vec3 out = src;
  for (int ax = 0; ax < 3; ++ax) {
    const double L = lengths_[ax];
    out[ax] += L * std::round((ref[ax] - src[ax]) / L);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

std::ostream& operator<<(std::ostream& os, const Int3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace scmd
