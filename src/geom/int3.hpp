#pragma once

/// \file int3.hpp
/// 3-component integer vector used for cell indices and cell offsets.
///
/// This is the scalar type of the computation-pattern algebra (paper
/// Sec. 3.1): a computation path is a list of Int3 cell offsets, and the
/// cell domain is indexed by Int3 coordinates.

#include <compare>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>

namespace scmd {

/// Integer 3-vector with componentwise arithmetic and lexicographic order.
struct Int3 {
  int x = 0;
  int y = 0;
  int z = 0;

  constexpr Int3() = default;
  constexpr Int3(int x_, int y_, int z_) : x(x_), y(y_), z(z_) {}

  /// Component access by axis index 0..2.
  constexpr int operator[](int axis) const {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }
  constexpr int& operator[](int axis) {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }

  constexpr Int3 operator+(const Int3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Int3 operator-(const Int3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Int3 operator-() const { return {-x, -y, -z}; }
  constexpr Int3 operator*(int s) const { return {x * s, y * s, z * s}; }

  Int3& operator+=(const Int3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Int3& operator-=(const Int3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  /// Lexicographic ordering (x, then y, then z); used for canonical forms
  /// in the reflective-collapse step and for deterministic container order.
  constexpr auto operator<=>(const Int3&) const = default;

  /// Componentwise minimum/maximum.
  static constexpr Int3 min(const Int3& a, const Int3& b) {
    return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
            a.z < b.z ? a.z : b.z};
  }
  static constexpr Int3 max(const Int3& a, const Int3& b) {
    return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
            a.z > b.z ? a.z : b.z};
  }

  /// Product of components; cells in a brick of this extent.
  constexpr long long volume() const {
    return static_cast<long long>(x) * y * z;
  }

  /// Chebyshev (max-component) norm — "is this a nearest-neighbor offset".
  constexpr int chebyshev() const {
    const int ax = x < 0 ? -x : x;
    const int ay = y < 0 ? -y : y;
    const int az = z < 0 ? -z : z;
    return ax > ay ? (ax > az ? ax : az) : (ay > az ? ay : az);
  }
};

/// Mathematical floor modulo: result in [0, m) for m > 0.  Needed for
/// periodic cell-index wrapping where C++ % is implementation-inconvenient
/// for negative operands.  Requires m != 0.  The intermediate arithmetic
/// is widened: INT_MIN % -1 overflows int (UB) even though the
/// mathematical result (0) is representable.
constexpr int floor_mod(int a, int m) {
  const long long r = static_cast<long long>(a) % m;
  return static_cast<int>(r < 0 ? r + m : r);
}

/// Mathematical floor division paired with floor_mod.  Requires m != 0;
/// widened for the same INT_MIN / -1 overflow case (the quotient then
/// wraps modularly on the way back to int, like every other
/// unrepresentable-result conversion).
constexpr int floor_div(int a, int m) {
  const long long q = static_cast<long long>(a) / m;
  return static_cast<int>(
      (static_cast<long long>(a) % m != 0 && ((a < 0) != (m < 0))) ? q - 1
                                                                   : q);
}

/// Componentwise periodic wrap into [0, dims).
constexpr Int3 wrap(const Int3& q, const Int3& dims) {
  return {floor_mod(q.x, dims.x), floor_mod(q.y, dims.y),
          floor_mod(q.z, dims.z)};
}

std::ostream& operator<<(std::ostream& os, const Int3& v);

}  // namespace scmd

template <>
struct std::hash<scmd::Int3> {
  std::size_t operator()(const scmd::Int3& v) const noexcept {
    // Pack into 64 bits (21 bits per component is ample for cell grids),
    // then mix with SplitMix64's finalizer.
    auto u = [](int a) {
      return static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) &
             0x1fffffULL;
    };
    std::uint64_t h = (u(v.x) << 42) | (u(v.y) << 21) | u(v.z);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};
