#pragma once

/// \file box.hpp
/// Orthorhombic periodic simulation box.
///
/// The paper assumes periodic boundary conditions in all Cartesian
/// directions (Sec. 3.1.1).  Box wraps positions into [0, L) per axis and
/// provides minimum-image displacement vectors for distance evaluation.

#include "geom/vec3.hpp"

namespace scmd {

/// Periodic orthorhombic box with edge lengths (lx, ly, lz), origin at 0.
class Box {
 public:
  Box() : lengths_(1.0, 1.0, 1.0) {}

  /// Construct with positive edge lengths.
  explicit Box(const Vec3& lengths);

  /// Cubic box of side `l`.
  static Box cubic(double l) { return Box(Vec3(l, l, l)); }

  const Vec3& lengths() const { return lengths_; }
  double length(int axis) const { return lengths_[axis]; }
  double volume() const { return lengths_.x * lengths_.y * lengths_.z; }

  /// Wrap a position into the primary image [0, L) per axis.
  Vec3 wrap(const Vec3& r) const;

  /// Minimum-image displacement a - b (the shortest periodic image of the
  /// separation vector).
  Vec3 min_image(const Vec3& a, const Vec3& b) const;

  /// Minimum-image distance squared.
  double dist2(const Vec3& a, const Vec3& b) const {
    return min_image(a, b).norm2();
  }

  /// The periodic image of `src` nearest to `ref`: src + k*L per axis
  /// with integer k.  Lets a consumer holding unwrapped (frame-shifted)
  /// coordinates absorb a wrapped source position without a frame jump.
  Vec3 image_near(const Vec3& src, const Vec3& ref) const;

  bool operator==(const Box&) const = default;

 private:
  Vec3 lengths_;
};

}  // namespace scmd
