#pragma once

/// \file vec3.hpp
/// Double-precision 3-vector for positions, velocities, and forces.

#include <cmath>
#include <iosfwd>

namespace scmd {

/// Cartesian 3-vector of doubles with the usual componentwise algebra.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double operator[](int axis) const {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }
  constexpr double& operator[](int axis) {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const = default;

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace scmd
