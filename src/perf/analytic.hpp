#pragma once

/// \file analytic.hpp
/// Closed-form predictions of the paper's cost analysis (Sec. 4.1),
/// usable without running any simulation — and tested against the
/// measured counters of real runs.

#include "pattern/pattern.hpp"

namespace scmd {

/// Inputs of the analytic search-cost model.
struct SearchCostInputs {
  long long num_cells = 0;       ///< cells in the domain (|L| of Eq. 24)
  double atoms_per_cell = 0.0;   ///< <rho_cell>
  int n = 2;                     ///< tuple length
  long long pattern_size = 0;    ///< |Ψ(n)|
  /// Fraction of scanned candidates that pass one chain-cutoff test
  /// (geometry: ~(4π/3)rcut³ / cell volume for cells of side rcut, i.e.
  /// ~0.16 of the 27-cell neighborhood, but passed in explicitly).
  double pass_fraction = 1.0;
};

/// |S(n)| by Lemma 5 / Eq. 23-24, with the occupancy product taken over
/// all n cells of each path: |S| = |L|·|Ψ|·rho^n.
double predicted_force_set_size(const SearchCostInputs& in);

/// Expected chain-candidate count (complete chains passing all n-1
/// cutoff tests): |L|·|Ψ|·rho^n·f^{n-1}.
double predicted_chain_candidates(const SearchCostInputs& in);

/// Expected search steps of the per-path enumerator with pruning:
/// per path, level k scans rho atoms for each surviving partial chain:
///   steps = |L|·|Ψ|·(rho + rho²·Σ_{k≥0} (rho·f)^k truncated at n-2).
double predicted_search_steps(const SearchCostInputs& in);

/// The geometric one-step pass fraction for cells of side `cell_len` and
/// chain cutoff `rcut`: the probability that a uniformly placed atom of
/// the next path cell lies within rcut of the current chain end,
/// averaged over the 27 neighbor offsets = (4π/3)rcut³ / (27·cell³).
double geometric_pass_fraction(double rcut, double cell_len);

}  // namespace scmd
