#pragma once

/// \file cluster_sim.hpp
/// Virtual-cluster measurement: run the real per-rank force algorithms
/// for an arbitrary process grid without threads or messages.
///
/// For each sampled rank, the rank's per-n cell domains are filled
/// directly from the global system (an "oracle" halo exchange: the same
/// atoms, positions, and ghost images the real staged exchange delivers —
/// verified against it in tests), the force strategy runs for real, and
/// its deterministic work counters are recorded.  Communication counters
/// are derived from the measured ghost population and the strategy's
/// message convention (SC: 3 staged sends + 3 write-backs; FS/Hybrid:
/// per-neighbor messages).
///
/// Because benchmark systems are uniform (paper Sec. 5.3), sampling a few
/// ranks bounds the max-rank counters well, which lets one process sweep
/// process grids up to the paper's 2,097,152 MPI tasks.

#include <optional>
#include <string>
#include <vector>

#include "engines/strategy.hpp"
#include "md/system.hpp"
#include "parallel/decomp.hpp"

namespace scmd {

/// Result of one virtual measurement.
struct ClusterSample {
  int ranks_total = 0;
  int ranks_sampled = 0;
  EngineCounters max_rank;   ///< componentwise max over sampled ranks
  EngineCounters mean_rank;  ///< componentwise mean (integer division)
};

/// Measures force-computation work per rank on a virtual process grid.
class ClusterSimulator {
 public:
  /// The system and field must outlive the simulator.
  ClusterSimulator(const ParticleSystem& sys, const ForceField& field);

  /// Measure `strategy_name` ("SC" / "FS" / "Hybrid") on `pgrid`.
  /// Samples `max_sample_ranks` ranks spread across the grid (all ranks
  /// when P <= max_sample_ranks).
  ClusterSample measure(const std::string& strategy_name,
                        const ProcessGrid& pgrid, int max_sample_ranks = 4,
                        bool measure_force_set = false) const;

  /// Measure an arbitrary (possibly non-uniform, load-balanced)
  /// decomposition.  Mirrors RankEngine::build_domains exactly: uniform
  /// bricks partition home cells (every atom starts chains); non-uniform
  /// bricks are extended by the strategy's root reach and chain starts are
  /// the atoms inside the rank's ownership region.  Sampling a subset of
  /// ranks only bounds the max for uniform systems — pass P to sweep all
  /// ranks when measuring imbalance.
  ClusterSample measure(const std::string& strategy_name,
                        const Decomposition& decomp, int max_sample_ranks = 4,
                        bool measure_force_set = false) const;

 private:
  const ParticleSystem& sys_;
  const ForceField& field_;
};

/// Number of distinct neighbor ranks in the import region (octant {0,1}^3
/// for SC, full shell {-1,0,1}^3 otherwise), excluding self — the
/// n_comm_nodes of paper Eq. 31 on a finite process grid.
int import_neighbor_ranks(const ProcessGrid& pgrid, bool octant);

/// Messages per step under the modeling convention: SC uses staged
/// forwarded routing (one send per axis with a remote peer, for import
/// and again for write-back); FS/Hybrid send directly to every neighbor
/// rank (import + write-back).
int modeled_messages(const ProcessGrid& pgrid, bool octant);

}  // namespace scmd
