#include "perf/cost_model.hpp"

namespace scmd {

double compute_time(const EngineCounters& c, const PlatformParams& p) {
  double t = 0.0;
  for (std::size_t n = 0; n < c.tuples.size(); ++n)
    t += p.t_search * static_cast<double>(c.tuples[n].search_steps);
  t += p.t_list_scan * static_cast<double>(c.list_scan_steps);
  t += p.t_pair_eval * static_cast<double>(c.evals[2]);
  t += p.t_triplet_eval * static_cast<double>(c.evals[3]);
  t += p.t_quad_eval * static_cast<double>(c.evals[4]);
  return t;
}

double comm_time(const EngineCounters& c, const PlatformParams& p) {
  const double bytes = static_cast<double>(c.bytes_imported) +
                       static_cast<double>(c.bytes_written_back);
  return p.msg_latency * static_cast<double>(c.messages) +
         bytes / p.bytes_per_s;
}

StepCost estimate_step(const EngineCounters& max_rank,
                       const PlatformParams& p) {
  return {compute_time(max_rank, p), comm_time(max_rank, p)};
}

}  // namespace scmd
