#pragma once

/// \file cost_model.hpp
/// Converts per-rank work counters into modeled step time (paper
/// Eqs. 12, 30-31): T_step = max_rank(T_compute) + max_rank(T_comm),
/// T_comm = c_bandwidth * V_import + c_latency * n_messages.

#include "engines/counters.hpp"
#include "perf/platform.hpp"

namespace scmd {

/// Modeled cost of one MD step for one rank (or a max-over-ranks bound).
struct StepCost {
  double compute_s = 0.0;
  double comm_s = 0.0;
  double total() const { return compute_s + comm_s; }
};

/// Compute-side cost of one rank's counters.
double compute_time(const EngineCounters& c, const PlatformParams& p);

/// Communication-side cost of one rank's counters (messages must already
/// be set according to the strategy's message convention).
double comm_time(const EngineCounters& c, const PlatformParams& p);

/// Bulk-synchronous step bound from max-over-ranks counters.
StepCost estimate_step(const EngineCounters& max_rank,
                       const PlatformParams& p);

}  // namespace scmd
