#include "perf/analytic.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

namespace {

void check(const SearchCostInputs& in) {
  SCMD_REQUIRE(in.num_cells > 0 && in.atoms_per_cell > 0.0 &&
                   in.pattern_size > 0 && in.n >= 2 &&
                   in.n <= kMaxTupleLen && in.pass_fraction > 0.0,
               "bad analytic model inputs");
}

}  // namespace

double predicted_force_set_size(const SearchCostInputs& in) {
  check(in);
  return static_cast<double>(in.num_cells) *
         static_cast<double>(in.pattern_size) *
         std::pow(in.atoms_per_cell, in.n);
}

double predicted_chain_candidates(const SearchCostInputs& in) {
  check(in);
  return predicted_force_set_size(in) *
         std::pow(in.pass_fraction, in.n - 1);
}

double predicted_search_steps(const SearchCostInputs& in) {
  check(in);
  // Level 0 scans rho atoms per path; level k >= 1 scans rho atoms per
  // surviving partial chain, of which a fraction f survive each cutoff
  // test: steps = |L||Ψ| Σ_k rho^{k+1} f^{max(0,k-1)}.
  double total = 0.0;
  for (int k = 0; k < in.n; ++k) {
    total += std::pow(in.atoms_per_cell, k + 1) *
             std::pow(in.pass_fraction, k > 0 ? k - 1 : 0);
  }
  return static_cast<double>(in.num_cells) *
         static_cast<double>(in.pattern_size) * total;
}

double geometric_pass_fraction(double rcut, double cell_len) {
  SCMD_REQUIRE(rcut > 0.0 && cell_len >= rcut,
               "cells must be at least the cutoff");
  const double sphere = 4.0 / 3.0 * M_PI * rcut * rcut * rcut;
  return sphere / (27.0 * cell_len * cell_len * cell_len);
}

}  // namespace scmd
