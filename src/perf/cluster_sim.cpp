#include "perf/cluster_sim.hpp"

#include <algorithm>
#include <set>

#include "cell/domain.hpp"
#include "support/error.hpp"

namespace scmd {

ClusterSimulator::ClusterSimulator(const ParticleSystem& sys,
                                   const ForceField& field)
    : sys_(sys), field_(field) {}

int import_neighbor_ranks(const ProcessGrid& pgrid, bool octant) {
  std::set<int> peers;
  const int self = 0;
  const Int3 c0 = pgrid.coord_of(self);
  const int lo = octant ? 0 : -1;
  for (int dz = lo; dz <= 1; ++dz) {
    for (int dy = lo; dy <= 1; ++dy) {
      for (int dx = lo; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int r = pgrid.rank_of(c0 + Int3{dx, dy, dz});
        if (r != self) peers.insert(r);
      }
    }
  }
  return static_cast<int>(peers.size());
}

int modeled_messages(const ProcessGrid& pgrid, bool octant) {
  if (octant) {
    // One send per axis whose hop leaves the rank (staged forwarding),
    // doubled for force write-back.
    int stages = 0;
    for (int a = 0; a < 3; ++a)
      if (pgrid.dims()[a] > 1) ++stages;
    return 2 * stages;
  }
  // Direct per-neighbor messages, import + write-back.
  return 2 * import_neighbor_ranks(pgrid, /*octant=*/false);
}

ClusterSample ClusterSimulator::measure(const std::string& strategy_name,
                                        const ProcessGrid& pgrid,
                                        int max_sample_ranks,
                                        bool measure_force_set) const {
  return measure(strategy_name, Decomposition(sys_.box(), pgrid),
                 max_sample_ranks, measure_force_set);
}

ClusterSample ClusterSimulator::measure(const std::string& strategy_name,
                                        const Decomposition& decomp,
                                        int max_sample_ranks,
                                        bool measure_force_set) const {
  SCMD_REQUIRE(max_sample_ranks >= 1, "need at least one sampled rank");
  const ProcessGrid& pgrid = decomp.pgrid();
  const auto strategy =
      make_strategy(strategy_name, field_, measure_force_set);
  // Octant-compressed patterns (SC, OC-only) import from the 7 upper
  // neighbors via staged routing; everything else uses the full shell.
  const bool octant = strategy_name.rfind("SC", 0) == 0 ||
                      strategy_name.rfind("OC", 0) == 0;

  // Per-n aligned grids and global bins (shared across sampled ranks).
  struct GridData {
    CellGrid grid;
    GlobalBins bins;
    HaloSpec halo;
    HaloSpec ext;  ///< root reach, extends non-uniform bricks
  };
  std::vector<std::pair<int, GridData>> grids;  // (n, data)
  for (int n = 2; n <= field_.max_n(); ++n) {
    if (!strategy->needs_grid(n)) continue;
    GridData gd;
    gd.grid =
        decomp.aligned_grid(strategy->min_cell_size(n, field_.rcut(n)));
    gd.bins = bin_globally(gd.grid, sys_.positions());
    gd.bins.grid = gd.grid;
    gd.halo = strategy->halo(n);
    if (!decomp.uniform()) gd.ext = strategy->root_reach(n);
    grids.emplace_back(n, std::move(gd));
  }

  // Sample ranks spread across the grid deterministically.
  const int P = pgrid.num_ranks();
  std::vector<int> sample;
  if (P <= max_sample_ranks) {
    for (int r = 0; r < P; ++r) sample.push_back(r);
  } else {
    for (int k = 0; k < max_sample_ranks; ++k) {
      sample.push_back(static_cast<int>(
          (static_cast<long long>(k) * P) / max_sample_ranks));
    }
  }

  ClusterSample out;
  out.ranks_total = P;
  out.ranks_sampled = static_cast<int>(sample.size());

  EngineCounters sum;
  const int messages = modeled_messages(pgrid, octant);

  for (int rank : sample) {
    EngineCounters c;
    DomainSet domains;
    ForceAccum accum;
    std::vector<CellDomain> dom_storage;
    std::vector<std::vector<Vec3>> f_storage;
    dom_storage.reserve(grids.size());
    f_storage.reserve(grids.size());

    std::uint64_t max_ghosts = 0;
    for (const auto& [n, gd] : grids) {
      BrickRange br = decomp.brick_range(gd.grid, rank);
      if (decomp.uniform()) {
        dom_storage.push_back(make_brick_domain(gd.bins, sys_.positions(),
                                                sys_.types(), br.lo, br.dims,
                                                gd.halo));
      } else {
        // Mirror RankEngine::build_domains: extend the brick by the
        // pattern root reach and restrict chain starts to the rank's
        // ownership region.
        for (int a = 0; a < 3; ++a) {
          br.lo[a] -= gd.ext.lo[a];
          br.dims[a] += gd.ext.lo[a] + gd.ext.hi[a];
        }
        dom_storage.push_back(make_brick_domain(
            gd.bins, sys_.positions(), sys_.types(), br.lo, br.dims, gd.halo,
            OwnedRegion{decomp.region_lo(rank), decomp.region_hi(rank)}));
      }
      const CellDomain& dom = dom_storage.back();
      f_storage.emplace_back(static_cast<std::size_t>(dom.num_atoms()));
      domains.dom[static_cast<std::size_t>(n)] = &dom;
      accum.f[static_cast<std::size_t>(n)] = &f_storage.back();
      const std::uint64_t ghosts = static_cast<std::uint64_t>(
          dom.num_atoms() - dom.num_owned_atoms());
      max_ghosts = std::max(max_ghosts, ghosts);
    }

    strategy->compute(field_, domains, accum, c);

    // Communication model: the physical import covers the largest per-n
    // ghost population (paper: V_import = max_n V_omega); ghost wire
    // record is 40 bytes, a returned force 24 bytes.
    c.ghost_atoms_imported = max_ghosts;
    c.bytes_imported = max_ghosts * 40;
    c.bytes_written_back = max_ghosts * 24;
    c.messages = static_cast<std::uint64_t>(messages);

    // Componentwise max into out.max_rank.
    auto maxu = [](std::uint64_t& a, std::uint64_t b) {
      if (b > a) a = b;
    };
    for (std::size_t n = 0; n < c.tuples.size(); ++n) {
      maxu(out.max_rank.tuples[n].search_steps, c.tuples[n].search_steps);
      maxu(out.max_rank.tuples[n].chain_candidates,
           c.tuples[n].chain_candidates);
      maxu(out.max_rank.tuples[n].cell_visits, c.tuples[n].cell_visits);
      maxu(out.max_rank.tuples[n].accepted, c.tuples[n].accepted);
      maxu(out.max_rank.evals[n], c.evals[n]);
      if (c.force_set[n] > out.max_rank.force_set[n])
        out.max_rank.force_set[n] = c.force_set[n];
    }
    maxu(out.max_rank.list_pairs, c.list_pairs);
    maxu(out.max_rank.list_scan_steps, c.list_scan_steps);
    maxu(out.max_rank.ghost_atoms_imported, c.ghost_atoms_imported);
    maxu(out.max_rank.messages, c.messages);
    maxu(out.max_rank.bytes_imported, c.bytes_imported);
    maxu(out.max_rank.bytes_written_back, c.bytes_written_back);

    sum += c;
  }

  // Mean over sampled ranks.
  const std::uint64_t S = static_cast<std::uint64_t>(sample.size());
  out.mean_rank = sum;
  for (std::size_t n = 0; n < sum.tuples.size(); ++n) {
    out.mean_rank.tuples[n].search_steps /= S;
    out.mean_rank.tuples[n].chain_candidates /= S;
    out.mean_rank.tuples[n].accepted /= S;
    out.mean_rank.tuples[n].cell_visits /= S;
    out.mean_rank.evals[n] /= S;
    out.mean_rank.force_set[n] /= static_cast<long long>(S);
  }
  out.mean_rank.list_pairs /= S;
  out.mean_rank.list_scan_steps /= S;
  out.mean_rank.ghost_atoms_imported /= S;
  out.mean_rank.messages /= S;
  out.mean_rank.bytes_imported /= S;
  out.mean_rank.bytes_written_back /= S;
  return out;
}

}  // namespace scmd
