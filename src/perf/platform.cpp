#include "perf/platform.hpp"

#include "support/error.hpp"

namespace scmd {

PlatformParams xeon_cluster() {
  PlatformParams p;
  p.name = "xeon";
  // Per-core compute: a distance check in a tight loop is ~2 cycles of
  // useful work but the surrounding chain bookkeeping lands near 0.6 ns;
  // many-body evaluations with pow/exp cost tens of ns.
  p.t_search = 1.2e-9;
  p.t_list_scan = 1.2e-9;
  p.t_pair_eval = 45e-9;
  p.t_triplet_eval = 90e-9;
  p.t_quad_eval = 140e-9;
  // Commodity interconnect of the 2013 cluster: a few Gbit effective per
  // task, tens-of-microseconds effective MPI latency per message.
  p.bytes_per_s = 250e6;
  p.msg_latency = 30e-6;
  p.cores_per_node = 12;
  return p;
}

PlatformParams bluegene_q() {
  PlatformParams p;
  p.name = "bgq";
  // A2 cores at 1.6 GHz running 4 MPI tasks/core: per-task scalar work is
  // roughly 5x slower than the Xeon, evaluations relatively worse.
  p.t_search = 3.0e-9;
  p.t_list_scan = 3.0e-9;
  p.t_pair_eval = 220e-9;
  p.t_triplet_eval = 450e-9;
  p.t_quad_eval = 700e-9;
  // 5D torus: low latency, but 64 tasks per node share the links, so the
  // effective per-task bandwidth is modest.
  p.bytes_per_s = 150e6;
  p.msg_latency = 10e-6;
  p.cores_per_node = 16;
  return p;
}

PlatformParams platform_by_name(const std::string& name) {
  if (name == "xeon") return xeon_cluster();
  if (name == "bgq") return bluegene_q();
  SCMD_REQUIRE(false, "unknown platform: " + name);
  return {};
}

}  // namespace scmd
