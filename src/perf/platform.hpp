#pragma once

/// \file platform.hpp
/// Per-platform cost constants for the performance model.
///
/// The paper's Figs. 8-9 were measured on an Intel-Xeon cluster (USC
/// HPCC) and on BlueGene/Q (ANL Mira).  We reproduce the *shape* of those
/// figures by running the real algorithms, counting their work
/// deterministically (src/engines counters), and converting counts to
/// time with these constants (paper Eq. 31 for the communication side).
///
/// The constants are calibrated so that the headline observables land in
/// the paper's bands: SC-MD winning at fine grain, a crossover to
/// Hybrid-MD near N/P ≈ 2000 on Xeon and ≈ 400 on BG/Q (the BG/Q core is
/// several times slower, so the search-cost trade-off shifts down), and
/// near-ideal SC strong scaling while FS/Hybrid degrade.
///
/// Message-count convention (see DESIGN.md §4): SC-MD uses the paper's
/// 3-stage forwarded routing (3 import + 3 write-back messages); the
/// production FS/Hybrid codes send per-neighbor messages (up to 26 import
/// + 26 write-back).

#include <string>

namespace scmd {

/// Cost constants of one platform (seconds per unit of counted work).
struct PlatformParams {
  std::string name;

  double t_search = 1e-9;        ///< per tuple-search step
  double t_list_scan = 1e-9;     ///< per Verlet-list scan step
  double t_pair_eval = 40e-9;    ///< per pair force evaluation
  double t_triplet_eval = 80e-9; ///< per triplet force evaluation
  double t_quad_eval = 120e-9;   ///< per quadruplet force evaluation

  double bytes_per_s = 1e9;      ///< effective link bandwidth
  double msg_latency = 5e-6;     ///< per point-to-point message

  int cores_per_node = 1;        ///< reporting granularity in figures
};

/// 2.33 GHz Intel Xeon X5650 cluster (USC-HPCC-like).
PlatformParams xeon_cluster();

/// BlueGene/Q, 4 MPI tasks per 1.6 GHz A2 core (ANL-like).
PlatformParams bluegene_q();

PlatformParams platform_by_name(const std::string& name);

}  // namespace scmd
