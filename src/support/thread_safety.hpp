#pragma once

/// \file thread_safety.hpp
/// Compile-time lock-discipline checking (docs/CHECKING.md, "The static
/// layer").
///
/// Two pieces:
///
///  1. The SCMD_* annotation macros below map onto Clang's thread-safety
///     attributes (-Wthread-safety), and expand to nothing on compilers
///     without them (GCC builds are unaffected).  The default and CI
///     Clang builds compile with -Werror=thread-safety, so a read of a
///     SCMD_GUARDED_BY field without its mutex held, a forgotten unlock
///     on an error path, or a lock-order inversion against a declared
///     SCMD_ACQUIRED_AFTER edge is a build break, not a TSan roll of the
///     dice.
///
///  2. Annotated synchronization types.  The analysis only tracks
///     capabilities through annotated APIs, and libstdc++'s std::mutex /
///     std::lock_guard carry no annotations — so concurrent code uses
///     scmd::Mutex / scmd::RecursiveMutex (annotated wrappers over the
///     std types), the scoped scmd::MutexLock / scmd::RecursiveMutexLock
///     guards, and scmd::CondVar (a std::condition_variable_any that
///     waits on a Mutex directly).  tools/lint/scmd_lint.py rejects new
///     bare std::mutex members so the discipline can't erode.
///
/// Condition-variable idiom: the analysis does not see through predicate
/// lambdas (a lambda body is analyzed as an unrelated function, so
/// `cv.wait(lk, [&] { return guarded_field; })` reads a guarded field
/// while provably holding nothing).  Write the loop explicitly instead —
/// the capability stays in scope and the wait is annotated to require it:
///
///     MutexLock lk(mu_);
///     while (queue_.empty()) cv_.wait(mu_);   // queue_ GUARDED_BY(mu_)

#if defined(__clang__) && (!defined(SWIG))
#define SCMD_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SCMD_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

/// A type that is a lockable capability ("mutex").
#define SCMD_CAPABILITY(x) SCMD_THREAD_ANNOTATION_(capability(x))

/// An RAII type that acquires a capability on construction and releases
/// it on destruction.
#define SCMD_SCOPED_CAPABILITY SCMD_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SCMD_GUARDED_BY(x) SCMD_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SCMD_PT_GUARDED_BY(x) SCMD_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the capability (must not already hold it).
#define SCMD_ACQUIRE(...) \
  SCMD_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must hold it on entry).
#define SCMD_RELEASE(...) \
  SCMD_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `ret`.
#define SCMD_TRY_ACQUIRE(ret, ...) \
  SCMD_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must hold the capability across the call (held on entry AND
/// exit — a CondVar wait releases and reacquires internally).
#define SCMD_REQUIRES(...) \
  SCMD_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock-by-self-lock guard).
#define SCMD_EXCLUDES(...) SCMD_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declared lock-order edges; violations are lock-order-inversion errors.
#define SCMD_ACQUIRED_BEFORE(...) \
  SCMD_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SCMD_ACQUIRED_AFTER(...) \
  SCMD_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define SCMD_RETURN_CAPABILITY(x) SCMD_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch — the function body is not analyzed.  Every use needs a
/// justification comment and shows up in scmd_lint.py's audit rule; the
/// acceptance bar is zero uses in src/net, src/obs, and src/parallel.
#define SCMD_NO_THREAD_SAFETY_ANALYSIS \
  SCMD_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Assert (at analysis time) that the capability is held — for callbacks
/// that are only ever invoked under a lock the analysis cannot see.
#define SCMD_ASSERT_CAPABILITY(x) \
  SCMD_THREAD_ANNOTATION_(assert_capability(x))

#include <condition_variable>
#include <mutex>

namespace scmd {

/// Annotated std::mutex.  BasicLockable + Lockable, so it still works
/// with std::unique_lock / std::scoped_lock where the analysis is not
/// needed (but prefer MutexLock, which the analysis understands).
class SCMD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCMD_ACQUIRE() { m_.lock(); }
  void unlock() SCMD_RELEASE() { m_.unlock(); }
  bool try_lock() SCMD_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Annotated std::recursive_mutex.  Reentrant acquisition across call
/// boundaries (MetricsRegistry::emit -> sink -> const reader) is
/// invisible to the intra-procedural analysis, which is exactly right:
/// each function independently proves it takes the lock.
class SCMD_CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() SCMD_ACQUIRE() { m_.lock(); }
  void unlock() SCMD_RELEASE() { m_.unlock(); }
  bool try_lock() SCMD_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::recursive_mutex m_;
};

/// Scoped lock over an annotated mutex.  Supports early unlock()/relock
/// — Clang models relockable scoped capabilities, so
/// `lk.unlock(); ...; lk.lock();` keeps the guarded-access checking
/// exact across the unlocked window.
template <class M>
class SCMD_SCOPED_CAPABILITY BasicMutexLock {
 public:
  explicit BasicMutexLock(M& mu) SCMD_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~BasicMutexLock() SCMD_RELEASE() {
    if (held_) mu_.unlock();
  }

  BasicMutexLock(const BasicMutexLock&) = delete;
  BasicMutexLock& operator=(const BasicMutexLock&) = delete;

  void unlock() SCMD_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() SCMD_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  M& mu_;
  bool held_;
};

using MutexLock = BasicMutexLock<Mutex>;
using RecursiveMutexLock = BasicMutexLock<RecursiveMutex>;

/// Condition variable waiting on an scmd::Mutex.  Waits take the mutex
/// itself (not a lock object) and are annotated SCMD_REQUIRES(mu): held
/// on entry, released while blocked, reacquired before return — which is
/// precisely the capability state the analysis assumes across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `mu`, block, reacquire.  Spurious wakeups happen:
  /// always wait in a `while (!condition)` loop (see the file comment —
  /// do NOT use predicate lambdas, the analysis cannot see into them).
  void wait(Mutex& mu) SCMD_REQUIRES(mu) { cv_.wait(mu); }

  /// wait() with a deadline; std::cv_status::timeout when it passed.
  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      SCMD_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel)
      SCMD_REQUIRES(mu) {
    return cv_.wait_for(mu, rel);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace scmd
