#pragma once

/// \file aligned.hpp
/// Minimal over-aligned allocator for std::vector.
///
/// The batched tuple kernels (src/tuples/kernels) read force buffers in
/// vector-width chunks; allocating them on cache-line/SIMD-register
/// boundaries keeps those accesses split-free.  std::vector's default
/// allocator only guarantees alignof(std::max_align_t) (16 on x86-64),
/// so buffers that want 64-byte alignment use
/// `std::vector<T, AlignedAllocator<T, 64>>`.

#include <cstddef>
#include <new>

namespace scmd {

template <class T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two no weaker than alignof(T)");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace scmd
