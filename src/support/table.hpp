#pragma once

/// \file table.hpp
/// Aligned-text and CSV table emission for benchmark harnesses.
///
/// Every benchmark binary prints the rows/series the paper reports through
/// this class, so output formatting is uniform: a human-readable aligned
/// table on stdout plus optional CSV for plotting.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace scmd {

/// A table cell: string, integer, or floating-point value.
using TableCell = std::variant<std::string, long long, double>;

/// Accumulates rows and renders them either aligned or as CSV.
class Table {
 public:
  /// Construct with column headers.
  explicit Table(std::vector<std::string> headers);

  /// Set a caption printed above the aligned rendering.
  void set_title(std::string title);

  /// Number of fractional digits used for double cells (default 4).
  void set_precision(int digits);

  /// Append one row; must match the header count.
  void add_row(std::vector<TableCell> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Render as CSV (no title).
  void print_csv(std::ostream& os) const;

  /// Write CSV to a file; throws scmd::Error on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::string format_cell(const TableCell& cell) const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<TableCell>> rows_;
  int precision_ = 4;
};

}  // namespace scmd
