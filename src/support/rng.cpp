#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.have_cached = have_cached_;
  st.cached = cached_;
  return st;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_ = state.have_cached;
  cached_ = state.cached;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SCMD_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (~0ULL / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_ = v * factor;
  have_cached_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

}  // namespace scmd
