#include "support/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/error.hpp"

namespace scmd {

Cli::Cli(int argc, const char* const* argv, std::vector<std::string> known) {
  auto accepted = [&](const std::string& name) {
    return known.empty() ||
           std::find(known.begin(), known.end(), name) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // --name value form: consume next token if it is not itself a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "1";
      }
    }
    SCMD_REQUIRE(accepted(name), "unknown flag --" + name);
    flags_[name] = value;
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  SCMD_REQUIRE(end && *end == '\0', "flag --" + name + " is not an integer");
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  SCMD_REQUIRE(end && *end == '\0', "flag --" + name + " is not a number");
  return v;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  return !(v == "0" || v == "false" || v == "no" || v == "off");
}

}  // namespace scmd
