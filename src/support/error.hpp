#pragma once

/// \file error.hpp
/// Error handling primitives used throughout the library.
///
/// The library reports precondition violations and unrecoverable states by
/// throwing scmd::Error.  SCMD_REQUIRE is always active (API contract
/// checks); SCMD_ASSERT compiles away in release builds (internal
/// invariants on hot paths).

#include <stdexcept>
#include <string>

namespace scmd {

/// Exception type thrown on contract violations and unrecoverable errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws scmd::Error with source location info.  Used by the macros below.
[[noreturn]] void fail(const char* expr, const std::string& msg,
                       const char* file, int line);

}  // namespace scmd

/// Contract check, always enabled.  Use for public API preconditions.
#define SCMD_REQUIRE(cond, msg)                           \
  do {                                                    \
    if (!(cond)) ::scmd::fail(#cond, (msg), __FILE__, __LINE__); \
  } while (false)

/// Internal invariant check, disabled when NDEBUG is defined.
#ifdef NDEBUG
#define SCMD_ASSERT(cond) ((void)0)
#else
#define SCMD_ASSERT(cond)                                  \
  do {                                                     \
    if (!(cond)) ::scmd::fail(#cond, "assertion failed", __FILE__, __LINE__); \
  } while (false)
#endif
