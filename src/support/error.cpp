#include "support/error.hpp"

#include <sstream>

namespace scmd {

void fail(const char* expr, const std::string& msg, const char* file,
          int line) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}

}  // namespace scmd
