#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers for benchmarks and engines.

#include <chrono>

namespace scmd {

/// Monotonic stopwatch.  Construction starts the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals.
///
/// stop() without a matching start() is a no-op (it used to silently
/// accumulate time since construction); start() while already running
/// restarts the current interval instead of double-counting it.
class AccumTimer {
 public:
  void start() {
    running_ = true;
    t_.reset();
  }
  void stop() {
    if (!running_) return;
    total_ += t_.seconds();
    running_ = false;
  }
  bool running() const { return running_; }
  double total() const { return total_; }
  void clear() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace scmd
