#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers for benchmarks and engines.

#include <chrono>

namespace scmd {

/// Monotonic stopwatch.  Construction starts the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals.
class AccumTimer {
 public:
  void start() { t_.reset(); }
  void stop() { total_ += t_.seconds(); }
  double total() const { return total_; }
  void clear() { total_ = 0.0; }

 private:
  Timer t_;
  double total_ = 0.0;
};

}  // namespace scmd
