#include "support/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace scmd {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Config Config::load(const std::string& path) {
  std::ifstream f(path);
  SCMD_REQUIRE(f.good(), "cannot open config file " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    SCMD_REQUIRE(eq != std::string::npos,
                 "config line " + std::to_string(line_no) +
                     " is not `key = value`: " + line);
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    SCMD_REQUIRE(!key.empty(), "empty key on config line " +
                                   std::to_string(line_no));
    const auto [it, inserted] = cfg.values_.emplace(key, value);
    SCMD_REQUIRE(inserted, "duplicate config key: " + key);
    cfg.order_.push_back(key);
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  SCMD_REQUIRE(!key.empty(), "config key must not be empty");
  const auto [it, inserted] = values_.insert_or_assign(key, value);
  (void)it;
  if (inserted) order_.push_back(key);
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get(const std::string& key,
                        const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Config::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  SCMD_REQUIRE(end && *end == '\0',
               "config key " + key + " is not an integer: " + it->second);
  return v;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  SCMD_REQUIRE(end && *end == '\0',
               "config key " + key + " is not a number: " + it->second);
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  SCMD_REQUIRE(false, "config key " + key + " is not a boolean: " + v);
  return fallback;
}

void Config::require_known(const std::vector<std::string>& known) const {
  for (const std::string& key : order_) {
    SCMD_REQUIRE(std::find(known.begin(), known.end(), key) != known.end(),
                 "unknown config key: " + key);
  }
}

}  // namespace scmd
