#include "support/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace scmd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SCMD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::set_title(std::string title) { title_ = std::move(title); }

void Table::set_precision(int digits) {
  SCMD_REQUIRE(digits >= 0 && digits <= 17, "precision out of range");
  precision_ = digits;
}

void Table::add_row(std::vector<TableCell> cells) {
  SCMD_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const TableCell& cell) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&cell)) {
    os << *s;
  } else if (const auto* i = std::get_if<long long>(&cell)) {
    os << *i;
  } else {
    os << std::setprecision(precision_) << std::fixed
       << std::get<double>(cell);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& r : rendered) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << escape(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << escape(format_cell(row[c]));
    os << '\n';
  }
}

void Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  SCMD_REQUIRE(f.good(), "cannot open " + path + " for writing");
  print_csv(f);
  SCMD_REQUIRE(f.good(), "write to " + path + " failed");
}

}  // namespace scmd
