#pragma once

/// \file config.hpp
/// INI-lite run-configuration files for the scmd_run driver.
///
/// Format: one `key = value` per line; `#` starts a comment; blank lines
/// ignored.  Keys are case-sensitive.  Typed getters mirror Cli's.

#include <map>
#include <string>
#include <vector>

namespace scmd {

/// Parsed key-value configuration.
class Config {
 public:
  Config() = default;

  /// Parse from a file; throws scmd::Error on I/O or syntax errors.
  static Config load(const std::string& path);

  /// Parse from a string (testing / inline configs).
  static Config parse(const std::string& text);

  /// Set or override a key (command-line overrides on top of a file).
  void set(const std::string& key, const std::string& value);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys, in file order.
  const std::vector<std::string>& keys() const { return order_; }

  /// Throws if any key is not in `known` — typo protection for drivers.
  void require_known(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace scmd
