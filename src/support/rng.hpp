#pragma once

/// \file rng.hpp
/// Deterministic random number generation.
///
/// All stochastic pieces of the library (initial velocities, jittered
/// lattices, random configurations in tests) draw from Xoshiro256**, seeded
/// via SplitMix64.  Determinism across platforms matters more here than
/// cryptographic quality: benchmark workloads and property tests must be
/// reproducible from a single integer seed.

#include <cstdint>

namespace scmd {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  /// Full generator state, exposed so checkpoints can resume a stream
  /// exactly where it left off (src/ckpt).  Trivially copyable.
  struct State {
    std::uint64_t s[4] = {};
    bool have_cached = false;  ///< Marsaglia-polar spare normal present
    double cached = 0.0;
  };

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Snapshot the stream; set_state() resumes it bit-exactly.
  State state() const;
  void set_state(const State& state);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (Marsaglia polar method, cached pair).
  double normal();

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev);

 private:
  std::uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace scmd
