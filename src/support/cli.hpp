#pragma once

/// \file cli.hpp
/// Minimal command-line flag parsing for examples and benchmark binaries.
///
/// Flags take the form --name=value or --name value; bare --name sets a
/// boolean.  Unknown flags raise an error so typos in benchmark sweeps fail
/// loudly instead of silently running the default configuration.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace scmd {

/// Parsed command-line arguments with typed, defaulted accessors.
class Cli {
 public:
  /// Parse argv.  `known` lists accepted flag names (without "--"); an
  /// empty list accepts anything.
  Cli(int argc, const char* const* argv, std::vector<std::string> known = {});

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace scmd
