#pragma once

/// \file integrator.hpp
/// Velocity-Verlet time integration (paper Eq. 1's numerical solution).
///
/// The integrator is split into the two half-steps around the force
/// computation so engines (serial or parallel) own the force phase:
///
///   kick_drift():  v += f/m · dt/2;  r += v · dt   (then recompute f)
///   kick():        v += f/m · dt/2

#include "md/system.hpp"

namespace scmd {

/// Velocity-Verlet stepper; dt in internal time units (see units.hpp).
class VelocityVerlet {
 public:
  explicit VelocityVerlet(double dt);

  double dt() const { return dt_; }

  /// First half-kick plus drift; wraps positions back into the box.
  void kick_drift(ParticleSystem& sys) const;

  /// Second half-kick (call after forces are refreshed).
  void kick(ParticleSystem& sys) const;

 private:
  double dt_;
};

}  // namespace scmd
