#pragma once

/// \file builders.hpp
/// Workload construction: lattices, thermal velocities, benchmark systems.
///
/// Benchmark configurations mirror the paper's setup: uniformly
/// distributed atoms (Sec. 5.3) at production densities, with system size
/// chosen per granularity target N/P.

#include <cstdint>

#include "md/system.hpp"
#include "potentials/force_field.hpp"
#include "support/rng.hpp"

namespace scmd {

/// Assign Maxwell-Boltzmann velocities at temperature T (kelvin, using the
/// eV/Å/amu unit system) and remove the center-of-mass drift.
void thermalize(ParticleSystem& sys, double temperature_k, Rng& rng);

/// Simple-cubic lattice of a single species filling the box with
/// approximately `target_atoms` atoms, each displaced by a uniform jitter
/// of +-(jitter * spacing / 2) per axis.  Returns the exact atom count.
ParticleSystem make_cubic_lattice(const Box& box, double mass,
                                  long long target_atoms, double jitter,
                                  Rng& rng);

/// Silica (SiO2) benchmark system at the requested mass density (g/cm³;
/// silica is ~2.2): an idealized beta-cristobalite network — Si on a
/// diamond lattice, bridging O on every Si-Si bond — so silicon starts
/// 4-coordinated with tetrahedral O-Si-O angles.  The box is cubic and
/// sized from the atom count.  Counts of the form 24·m³ (648, 1536, 3000,
/// 5184, 12288, 24000, ...) fill the lattice exactly; other counts
/// decimate sites uniformly.
ParticleSystem make_silica(long long num_atoms, double density_gcc,
                           double temperature_k, Rng& rng);

/// Single-species benchmark gas for a given force field: cubic box sized
/// from a reduced number density (atoms per rcut(2)³ ~ cell occupancy).
ParticleSystem make_gas(const ForceField& field, long long num_atoms,
                        double atoms_per_cell, double temperature_k, Rng& rng);

/// Deliberately imbalanced silica: the box of make_silica at the requested
/// overall density, but with `dense_fraction` of the atoms squashed into
/// the lower half (z < L/2) and the rest stretched over the upper half —
/// a dense slab under dilute vapor.  Spatial decompositions balanced by
/// construction for uniform systems are ~2x imbalanced here; this is the
/// load-balancing benchmark and test workload.
ParticleSystem make_two_phase_silica(long long num_atoms,
                                     double dense_fraction,
                                     double density_gcc, double temperature_k,
                                     Rng& rng);

}  // namespace scmd
