#pragma once

/// \file units.hpp
/// Simulation unit system: energy in eV, length in Å, mass in amu.
/// The derived time unit is t* = sqrt(amu·Å²/eV) ≈ 10.1805 fs.

namespace scmd::units {

/// Boltzmann constant, eV/K.
inline constexpr double kBoltzmann = 8.617333262e-5;

/// One femtosecond in internal time units (t* = sqrt(amu·Å²/eV)).
inline constexpr double kFemtosecond = 1.0 / 10.180505;

/// Convert amu·Å³ density to g/cm³.
inline constexpr double kAmuPerA3ToGcc = 1.66053907;

}  // namespace scmd::units
