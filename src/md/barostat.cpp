#include "md/barostat.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace scmd {

BerendsenBarostat::BerendsenBarostat(double target, double tau,
                                     double compressibility)
    : target_(target), tau_(tau), kappa_(compressibility) {
  SCMD_REQUIRE(tau > 0.0, "coupling time must be positive");
  SCMD_REQUIRE(compressibility > 0.0, "compressibility must be positive");
}

double BerendsenBarostat::apply(ParticleSystem& sys,
                                double measured_pressure, double dt) const {
  double mu3 = 1.0 - kappa_ * dt / tau_ * (target_ - measured_pressure);
  // Clamp: never change the volume by more than ~5% in one coupling step.
  mu3 = std::clamp(mu3, 0.95, 1.05);
  const double mu = std::cbrt(mu3);
  rescale_system(sys, mu);
  return mu;
}

void rescale_system(ParticleSystem& sys, double mu) {
  SCMD_REQUIRE(mu > 0.0, "scale factor must be positive");
  const Vec3 new_lengths = sys.box().lengths() * mu;
  const auto pos = sys.positions();
  std::vector<Vec3> scaled(pos.begin(), pos.end());
  for (Vec3& r : scaled) r *= mu;
  sys.reset_box(Box(new_lengths), scaled);
}

}  // namespace scmd
