#include "md/system.hpp"

#include "md/units.hpp"
#include "support/error.hpp"

namespace scmd {

ParticleSystem::ParticleSystem(const Box& box, std::vector<double> type_masses)
    : box_(box), mass_by_type_(std::move(type_masses)) {
  SCMD_REQUIRE(!mass_by_type_.empty(), "need at least one species");
  for (double m : mass_by_type_)
    SCMD_REQUIRE(m > 0.0, "masses must be positive");
}

int ParticleSystem::add_atom(const Vec3& r, const Vec3& v, int type) {
  SCMD_REQUIRE(type >= 0 && type < num_types(), "unknown species");
  pos_.push_back(box_.wrap(r));
  vel_.push_back(v);
  force_.push_back({});
  type_.push_back(type);
  return num_atoms() - 1;
}

void ParticleSystem::zero_forces() {
  for (Vec3& f : force_) f = {};
}

void ParticleSystem::wrap_positions() {
  for (Vec3& r : pos_) r = box_.wrap(r);
}

void ParticleSystem::reset_box(const Box& box,
                               std::span<const Vec3> new_positions) {
  SCMD_REQUIRE(new_positions.size() == pos_.size(),
               "reset_box needs one position per atom");
  box_ = box;
  for (std::size_t i = 0; i < pos_.size(); ++i)
    pos_[i] = box_.wrap(new_positions[i]);
}

double ParticleSystem::kinetic_energy() const {
  double ke = 0.0;
  for (int i = 0; i < num_atoms(); ++i)
    ke += 0.5 * mass_of_atom(i) * vel_[static_cast<std::size_t>(i)].norm2();
  return ke;
}

double ParticleSystem::temperature() const {
  if (num_atoms() == 0) return 0.0;
  return 2.0 * kinetic_energy() / (3.0 * num_atoms() * units::kBoltzmann);
}

Vec3 ParticleSystem::total_momentum() const {
  Vec3 p;
  for (int i = 0; i < num_atoms(); ++i)
    p += vel_[static_cast<std::size_t>(i)] * mass_of_atom(i);
  return p;
}

void ParticleSystem::zero_momentum() {
  if (num_atoms() == 0) return;
  double total_mass = 0.0;
  for (int i = 0; i < num_atoms(); ++i) total_mass += mass_of_atom(i);
  const Vec3 v_cm = total_momentum() / total_mass;
  for (Vec3& v : vel_) v -= v_cm;
}

}  // namespace scmd
