#pragma once

/// \file system.hpp
/// Global particle state for MD: positions, velocities, forces, species.
///
/// Structure-of-arrays layout; the cell/tuple machinery views positions by
/// span and accumulates forces back by global atom id.

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace scmd {

/// N-atom state in a periodic box.
class ParticleSystem {
 public:
  ParticleSystem() = default;

  /// Construct with a box and per-type masses (indexed by species id).
  ParticleSystem(const Box& box, std::vector<double> type_masses);

  const Box& box() const { return box_; }
  int num_atoms() const { return static_cast<int>(pos_.size()); }
  int num_types() const { return static_cast<int>(mass_by_type_.size()); }

  /// Append one atom; returns its global id.
  int add_atom(const Vec3& r, const Vec3& v, int type);

  std::span<const Vec3> positions() const { return pos_; }
  std::span<Vec3> positions() { return pos_; }
  std::span<const Vec3> velocities() const { return vel_; }
  std::span<Vec3> velocities() { return vel_; }
  std::span<const Vec3> forces() const { return force_; }
  std::span<Vec3> forces() { return force_; }
  std::span<const int> types() const { return type_; }

  double mass_of_type(int type) const { return mass_by_type_[type]; }
  double mass_of_atom(int i) const { return mass_by_type_[type_[i]]; }

  void zero_forces();

  /// Wrap all positions into the primary box image.
  void wrap_positions();

  /// Replace the box and every position at once (barostat rescaling).
  /// `new_positions` must cover all atoms; they are wrapped into the new
  /// box.
  void reset_box(const Box& box, std::span<const Vec3> new_positions);

  /// Kinetic energy ½Σmv².
  double kinetic_energy() const;

  /// Instantaneous temperature from equipartition (3N degrees of freedom).
  double temperature() const;

  /// Net momentum Σmv (drift diagnostic).
  Vec3 total_momentum() const;

  /// Remove center-of-mass velocity.
  void zero_momentum();

 private:
  Box box_;
  std::vector<Vec3> pos_, vel_, force_;
  std::vector<int> type_;
  std::vector<double> mass_by_type_;
};

}  // namespace scmd
