#pragma once

/// \file barostat.hpp
/// Berendsen weak-coupling barostat.
///
/// Rescales the box and all positions isotropically toward a target
/// pressure: μ³ = 1 − κ·(dt/τ)·(P0 − P).  Pair it with
/// measure_pressure() (engines/observables.hpp); Berendsen coupling is
/// tolerant of the measurement cadence, so measuring every ~10 steps is
/// customary.

#include "md/system.hpp"

namespace scmd {

/// Isotropic Berendsen barostat.
class BerendsenBarostat {
 public:
  /// `target` in the pressure units of measure_pressure (eV/Å^3 in the
  /// library's unit system); `tau` in time units; `compressibility` is
  /// the κ prefactor (dimensionless knob scaling the response).
  BerendsenBarostat(double target, double tau, double compressibility = 1.0);

  /// Rescale `sys` one coupling step of length dt given the currently
  /// measured total pressure.  Returns the applied linear scale factor μ.
  double apply(ParticleSystem& sys, double measured_pressure,
               double dt) const;

  double target() const { return target_; }

 private:
  double target_;
  double tau_;
  double kappa_;
};

/// Rescale the box and positions of `sys` by the linear factor `mu`.
void rescale_system(ParticleSystem& sys, double mu);

}  // namespace scmd
