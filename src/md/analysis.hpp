#pragma once

/// \file analysis.hpp
/// Structural analysis of particle configurations.
///
/// Used to validate that the MD substrate produces physically sensible
/// silica/silicon structure (bond lengths, angles, coordination) and by
/// the example programs.  The pair machinery deliberately reuses the
/// library's own cell/tuple engine, exercising it on a consumer other
/// than force computation.

#include <vector>

#include "md/system.hpp"

namespace scmd {

/// Radial distribution function g(r) between two species.
struct Rdf {
  double r_max = 0.0;
  double dr = 0.0;
  std::vector<double> g;  ///< g[b] for shell [b·dr, (b+1)·dr)

  /// Bin center radius.
  double r_of(std::size_t bin) const { return (bin + 0.5) * dr; }

  /// Radius of the highest-g bin past r_min (first-peak locator).
  double peak_position(double r_min = 0.0) const;
};

/// Compute g(r) for pairs (type_a, type_b); pass the same type twice for
/// a like-pair RDF.  r_max must satisfy r_max <= min box length / 3 so
/// the cell-based pair sweep sees each image once.
Rdf compute_rdf(const ParticleSystem& sys, int type_a, int type_b,
                double r_max, int bins);

/// Bond-angle distribution around centers of type `center`: the angle
/// j-c-k for all neighbor pairs within r_bond of c.  Histogram over
/// [0°, 180°].
struct AngleDistribution {
  std::vector<double> density;  ///< normalized histogram, sum*d_theta = 1
  double bin_width_deg = 0.0;

  double angle_of(std::size_t bin) const {
    return (bin + 0.5) * bin_width_deg;
  }
  double peak_angle_deg() const;
};

AngleDistribution compute_adf(const ParticleSystem& sys, int center,
                              int end_type, double r_bond, int bins);

/// Mean coordination number: average count of `neighbor_type` atoms within
/// r_bond of each `center_type` atom.
double mean_coordination(const ParticleSystem& sys, int center_type,
                         int neighbor_type, double r_bond);

/// Mean-square displacement between two snapshots of the same system,
/// with minimum-image unwrapping (valid while per-step displacements stay
/// below half a box length).
double mean_square_displacement(const ParticleSystem& before,
                                const ParticleSystem& after);

}  // namespace scmd
