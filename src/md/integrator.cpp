#include "md/integrator.hpp"

#include "support/error.hpp"

namespace scmd {

VelocityVerlet::VelocityVerlet(double dt) : dt_(dt) {
  SCMD_REQUIRE(dt > 0.0, "time step must be positive");
}

void VelocityVerlet::kick_drift(ParticleSystem& sys) const {
  const auto f = sys.forces();
  const auto v = sys.velocities();
  const auto r = sys.positions();
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const double inv_m = 1.0 / sys.mass_of_atom(i);
    v[i] += f[i] * (0.5 * dt_ * inv_m);
    r[i] += v[i] * dt_;
  }
  sys.wrap_positions();
}

void VelocityVerlet::kick(ParticleSystem& sys) const {
  const auto f = sys.forces();
  const auto v = sys.velocities();
  for (int i = 0; i < sys.num_atoms(); ++i) {
    v[i] += f[i] * (0.5 * dt_ / sys.mass_of_atom(i));
  }
}

}  // namespace scmd
