#include "md/builders.hpp"

#include <cmath>

#include "md/units.hpp"
#include "support/error.hpp"

namespace scmd {

void thermalize(ParticleSystem& sys, double temperature_k, Rng& rng) {
  SCMD_REQUIRE(temperature_k >= 0.0, "temperature must be non-negative");
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const double stddev =
        std::sqrt(units::kBoltzmann * temperature_k / sys.mass_of_atom(i));
    sys.velocities()[i] = {rng.normal(0.0, stddev), rng.normal(0.0, stddev),
                           rng.normal(0.0, stddev)};
  }
  sys.zero_momentum();
}

namespace {

/// Cells per axis for an approximately cubic lattice holding >= target
/// sites (1 atom per site for single species, 3 per site for silica).
int sites_per_axis(long long target_sites) {
  int n = 1;
  while (static_cast<long long>(n) * n * n < target_sites) ++n;
  return n;
}

}  // namespace

ParticleSystem make_cubic_lattice(const Box& box, double mass,
                                  long long target_atoms, double jitter,
                                  Rng& rng) {
  SCMD_REQUIRE(target_atoms > 0, "need at least one atom");
  SCMD_REQUIRE(jitter >= 0.0 && jitter < 1.0, "jitter in [0, 1)");
  ParticleSystem sys(box, {mass});
  const int n = sites_per_axis(target_atoms);
  long long placed = 0;
  for (int ix = 0; ix < n && placed < target_atoms; ++ix) {
    for (int iy = 0; iy < n && placed < target_atoms; ++iy) {
      for (int iz = 0; iz < n && placed < target_atoms; ++iz) {
        Vec3 r{(ix + 0.5) * box.length(0) / n, (iy + 0.5) * box.length(1) / n,
               (iz + 0.5) * box.length(2) / n};
        for (int a = 0; a < 3; ++a) {
          const double spacing = box.length(a) / n;
          r[a] += rng.uniform(-0.5, 0.5) * jitter * spacing;
        }
        sys.add_atom(r, {}, 0);
        ++placed;
      }
    }
  }
  return sys;
}

ParticleSystem make_silica(long long num_atoms, double density_gcc,
                           double temperature_k, Rng& rng) {
  SCMD_REQUIRE(num_atoms >= 3, "need at least one SiO2 unit");
  SCMD_REQUIRE(density_gcc > 0.0, "density must be positive");
  // Mass density -> box volume.  Average mass per atom of SiO2:
  // (28.0855 + 2*15.9994)/3 amu.
  const double avg_mass = (28.0855 + 2.0 * 15.9994) / 3.0;
  const double volume_a3 =
      static_cast<double>(num_atoms) * avg_mass * units::kAmuPerA3ToGcc /
      density_gcc;
  const double side = std::cbrt(volume_a3);
  const Box box = Box::cubic(side);

  ParticleSystem sys(box, {28.0855, 15.9994});

  // Idealized beta-cristobalite: Si on a diamond lattice, O at the
  // midpoint of every Si-Si bond — 8 Si + 16 O per cubic cell, a proper
  // corner-shared tetrahedral network (Si 4-coordinated, O bridging).
  // At 2.2 g/cc the cell constant comes out ~7.1 Å, close to the real
  // phase.  When num_atoms is not 24·m³, sites are decimated uniformly,
  // which compresses bond lengths slightly; exact-fill counts (648, 1536,
  // 3000, 12288, ...) give the undistorted network.
  long long m = 1;
  while (24 * m * m * m < num_atoms) ++m;
  const double a = side / static_cast<double>(m);
  const double jitter = 0.03;  // Å, breaks lattice symmetry

  // Fractional positions within one cell.
  const Vec3 fcc[4] = {{0, 0, 0}, {0, 0.5, 0.5}, {0.5, 0, 0.5},
                       {0.5, 0.5, 0}};
  std::vector<std::pair<Vec3, int>> cell_sites;  // (fractional, type)
  for (const Vec3& f : fcc) {
    cell_sites.push_back({f, 0});                            // Si (fcc)
    const Vec3 b = f + Vec3{0.25, 0.25, 0.25};
    cell_sites.push_back({b, 0});                            // Si (basis)
    for (const Vec3& g : fcc) {
      // Nearest periodic image of g to b, then the bond midpoint.
      Vec3 gi = g;
      for (int ax = 0; ax < 3; ++ax) {
        if (b[ax] - gi[ax] > 0.5) gi[ax] += 1.0;
        if (gi[ax] - b[ax] > 0.5) gi[ax] -= 1.0;
      }
      cell_sites.push_back({(b + gi) * 0.5, 1});             // O
    }
  }
  SCMD_REQUIRE(cell_sites.size() == 24, "cristobalite cell must have 24 sites");

  const long long total_sites = 24 * m * m * m;
  long long emitted = 0;  // site counter for uniform decimation
  for (long long cz = 0; cz < m; ++cz) {
    for (long long cy = 0; cy < m; ++cy) {
      for (long long cx = 0; cx < m; ++cx) {
        for (const auto& [frac, type] : cell_sites) {
          // Keep site k iff floor(k·N/total) advances: exactly num_atoms
          // sites survive, spread uniformly through the lattice.
          const long long lo = emitted * num_atoms / total_sites;
          const long long hi = (emitted + 1) * num_atoms / total_sites;
          ++emitted;
          if (hi == lo) continue;
          const Vec3 r{(cx + frac.x) * a + rng.uniform(-jitter, jitter),
                       (cy + frac.y) * a + rng.uniform(-jitter, jitter),
                       (cz + frac.z) * a + rng.uniform(-jitter, jitter)};
          sys.add_atom(r, {}, type);
        }
      }
    }
  }
  SCMD_REQUIRE(sys.num_atoms() == num_atoms, "silica builder count mismatch");
  thermalize(sys, temperature_k, rng);
  return sys;
}

ParticleSystem make_two_phase_silica(long long num_atoms,
                                     double dense_fraction,
                                     double density_gcc, double temperature_k,
                                     Rng& rng) {
  SCMD_REQUIRE(dense_fraction >= 0.0 && dense_fraction <= 1.0,
               "dense fraction must lie in [0, 1]");
  ParticleSystem uniform =
      make_silica(num_atoms, density_gcc, temperature_k, rng);
  const double L = uniform.box().length(2);
  ParticleSystem sys(uniform.box(), {28.0855, 15.9994});
  const long long dense = static_cast<long long>(
      dense_fraction * static_cast<double>(num_atoms));
  for (int i = 0; i < uniform.num_atoms(); ++i) {
    Vec3 r = uniform.positions()[i];
    // Squash the first `dense` atoms into the lower half, stretch the
    // rest over the upper half (preserves the local lattice loosely).
    if (i < dense) {
      r.z = r.z * 0.5;
    } else {
      r.z = L * 0.5 + r.z * 0.5;
    }
    sys.add_atom(r, uniform.velocities()[i], uniform.types()[i]);
  }
  return sys;
}

ParticleSystem make_gas(const ForceField& field, long long num_atoms,
                        double atoms_per_cell, double temperature_k,
                        Rng& rng) {
  SCMD_REQUIRE(atoms_per_cell > 0.0, "cell occupancy must be positive");
  const double rc = field.rcut(2);
  SCMD_REQUIRE(rc > 0.0, "field needs a pair cutoff");
  const double volume = static_cast<double>(num_atoms) / atoms_per_cell *
                        rc * rc * rc;
  const Box box = Box::cubic(std::cbrt(volume));
  ParticleSystem sys =
      make_cubic_lattice(box, field.mass(0), num_atoms, 0.3, rng);
  thermalize(sys, temperature_k, rng);
  return sys;
}

}  // namespace scmd
