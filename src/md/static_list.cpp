#include "md/static_list.hpp"

#include "cell/domain.hpp"
#include "pattern/generate.hpp"
#include "support/error.hpp"
#include "tuples/ucp.hpp"

namespace scmd {

namespace {

/// Reconstruct the chain's positions in one periodic frame: atom 0 at its
/// wrapped position, each later atom via the minimum image relative to
/// its predecessor (valid while chain steps stay below half a box).
void chain_positions(const ParticleSystem& sys,
                     std::span<const std::int32_t> ids, int n, Vec3* out) {
  const auto pos = sys.positions();
  out[0] = pos[ids[0]];
  for (int k = 1; k < n; ++k) {
    out[k] =
        out[k - 1] + sys.box().min_image(pos[ids[k]], pos[ids[k - 1]]);
  }
}

}  // namespace

StaticTupleList StaticTupleList::build(const ParticleSystem& sys, int n,
                                       double rcut) {
  SCMD_REQUIRE(n >= 2 && n <= 4, "static lists support n = 2..4");
  SCMD_REQUIRE(rcut > 0.0, "cutoff must be positive");
  StaticTupleList list;
  list.n_ = n;

  const CellGrid grid(sys.box(), rcut);
  const Pattern sc = make_sc(n);
  const CellDomain dom =
      make_serial_domain(grid, halo_for(sc), sys.positions(), sys.types());
  const CompiledPattern cp(sc);
  const auto gids = dom.gids();
  for_each_tuple(dom, cp, rcut, [&](std::span<const int> t) {
    std::array<std::int32_t, kMaxTupleLen> ids{};
    for (int k = 0; k < n; ++k)
      ids[static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(gids[t[k]]);
    list.tuples_.push_back(ids);
  });
  return list;
}

double StaticTupleList::compute(const ParticleSystem& sys,
                                const ForceField& field,
                                std::span<Vec3> forces) const {
  SCMD_REQUIRE(static_cast<int>(forces.size()) == sys.num_atoms(),
               "force array must cover all atoms");
  const auto type = sys.types();
  double energy = 0.0;
  Vec3 r[kMaxTupleLen];
  for (const auto& ids : tuples_) {
    chain_positions(sys, {ids.data(), static_cast<std::size_t>(n_)}, n_, r);
    Vec3 f[kMaxTupleLen] = {};
    switch (n_) {
      case 2:
        energy += field.eval_pair(type[ids[0]], type[ids[1]], r[0], r[1],
                                  f[0], f[1]);
        break;
      case 3:
        energy += field.eval_triplet(type[ids[0]], type[ids[1]],
                                     type[ids[2]], r[0], r[1], r[2], f[0],
                                     f[1], f[2]);
        break;
      case 4:
        energy += field.eval_quad(type[ids[0]], type[ids[1]], type[ids[2]],
                                  type[ids[3]], r[0], r[1], r[2], r[3],
                                  f[0], f[1], f[2], f[3]);
        break;
      default:
        SCMD_REQUIRE(false, "unsupported tuple length");
    }
    for (int k = 0; k < n_; ++k)
      forces[ids[static_cast<std::size_t>(k)]] += f[k];
  }
  return energy;
}

double StaticTupleList::valid_fraction(const ParticleSystem& sys,
                                       double rcut) const {
  if (tuples_.empty()) return 1.0;
  const double rc2 = rcut * rcut;
  std::size_t valid = 0;
  Vec3 r[kMaxTupleLen];
  for (const auto& ids : tuples_) {
    chain_positions(sys, {ids.data(), static_cast<std::size_t>(n_)}, n_, r);
    bool ok = true;
    for (int k = 0; k + 1 < n_; ++k) {
      if ((r[k + 1] - r[k]).norm2() >= rc2) {
        ok = false;
        break;
      }
    }
    valid += ok;
  }
  return static_cast<double>(valid) / static_cast<double>(tuples_.size());
}

}  // namespace scmd
