#pragma once

/// \file thermostat.hpp
/// Berendsen weak-coupling thermostat.
///
/// Rescales velocities toward a target temperature with coupling time tau:
/// λ² = 1 + dt/τ (T0/T − 1).  Used to keep benchmark systems near their
/// production state point while enumeration counters are sampled.

#include "md/system.hpp"

namespace scmd {

/// Berendsen velocity-rescaling thermostat.
class BerendsenThermostat {
 public:
  /// target_k in kelvin; tau in the same time units as dt.
  BerendsenThermostat(double target_k, double tau);

  /// Apply one rescale step of length dt.
  void apply(ParticleSystem& sys, double dt) const;

  double target() const { return target_k_; }

 private:
  double target_k_;
  double tau_;
};

}  // namespace scmd
