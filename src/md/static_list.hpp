#pragma once

/// \file static_list.hpp
/// Static n-tuple computation (paper Sec. 1).
///
/// Biomolecular force fields fix the list of bonded n-tuples for the
/// whole simulation; reactive many-body MD must instead rebuild the
/// range-limited tuple set every step (the paper's dynamic computation).
/// StaticTupleList implements the former as a contrast baseline: a tuple
/// snapshot taken once (using the same SC enumeration machinery) and
/// evaluated unconditionally thereafter, whether or not the atoms still
/// sit within range — exactly the approximation dynamic computation
/// removes.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "md/system.hpp"
#include "pattern/path.hpp"
#include "potentials/force_field.hpp"

namespace scmd {

/// A frozen list of n-tuples (stored by global atom id).
class StaticTupleList {
 public:
  /// Snapshot every accepted n-tuple of the current configuration within
  /// `rcut` (chain cutoff), using the SC pattern.
  static StaticTupleList build(const ParticleSystem& sys, int n,
                               double rcut);

  int n() const { return n_; }
  std::size_t size() const { return tuples_.size(); }

  /// Evaluate the field's n-body term over the frozen list with
  /// minimum-image geometry, accumulating into `forces` (indexed by
  /// global id).  Returns the total energy.
  double compute(const ParticleSystem& sys, const ForceField& field,
                 std::span<Vec3> forces) const;

  /// Fraction of stored tuples whose chain still satisfies `rcut` in the
  /// current configuration — a staleness diagnostic: 1.0 right after
  /// build(), decaying as the system diffuses.
  double valid_fraction(const ParticleSystem& sys, double rcut) const;

 private:
  int n_ = 0;
  std::vector<std::array<std::int32_t, kMaxTupleLen>> tuples_;
};

}  // namespace scmd
