#include "md/thermostat.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace scmd {

BerendsenThermostat::BerendsenThermostat(double target_k, double tau)
    : target_k_(target_k), tau_(tau) {
  SCMD_REQUIRE(target_k >= 0.0, "target temperature must be non-negative");
  SCMD_REQUIRE(tau > 0.0, "coupling time must be positive");
}

void BerendsenThermostat::apply(ParticleSystem& sys, double dt) const {
  const double t = sys.temperature();
  if (t <= 0.0) return;
  double lambda2 = 1.0 + dt / tau_ * (target_k_ / t - 1.0);
  // Clamp to avoid violent rescaling far from equilibrium.
  lambda2 = std::clamp(lambda2, 0.64, 1.5625);
  const double lambda = std::sqrt(lambda2);
  for (Vec3& v : sys.velocities()) v *= lambda;
}

}  // namespace scmd
