#include "md/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "cell/domain.hpp"
#include "pattern/generate.hpp"
#include "support/error.hpp"
#include "tuples/ucp.hpp"

namespace scmd {

namespace {

/// Run the library's own SC pair sweep at cutoff r_max and hand every
/// accepted (i, j) pair with its distance to the callback.
template <class Fn>
void for_each_pair(const ParticleSystem& sys, double r_max, Fn&& fn) {
  const Box& box = sys.box();
  const double min_len =
      std::min({box.length(0), box.length(1), box.length(2)});
  SCMD_REQUIRE(r_max > 0.0 && r_max <= min_len / 3.0,
               "analysis cutoff must be <= box/3");
  const CellGrid grid(box, r_max);
  const Pattern sc = make_sc(2);
  const CellDomain dom =
      make_serial_domain(grid, halo_for(sc), sys.positions(), sys.types());
  const CompiledPattern cp(sc);
  const auto pos = dom.positions();
  const auto gid = dom.gids();
  const auto type = dom.types();
  for_each_tuple(dom, cp, r_max, [&](std::span<const int> t) {
    const double r = (pos[t[0]] - pos[t[1]]).norm();
    fn(static_cast<int>(gid[t[0]]), static_cast<int>(gid[t[1]]), type[t[0]],
       type[t[1]], r);
  });
}

}  // namespace

double Rdf::peak_position(double r_min) const {
  std::size_t best = 0;
  double best_g = -1.0;
  for (std::size_t b = 0; b < g.size(); ++b) {
    if (r_of(b) < r_min) continue;
    if (g[b] > best_g) {
      best_g = g[b];
      best = b;
    }
  }
  return r_of(best);
}

Rdf compute_rdf(const ParticleSystem& sys, int type_a, int type_b,
                double r_max, int bins) {
  SCMD_REQUIRE(bins > 0, "need at least one bin");
  Rdf rdf;
  rdf.r_max = r_max;
  rdf.dr = r_max / bins;
  rdf.g.assign(static_cast<std::size_t>(bins), 0.0);

  long long n_a = 0, n_b = 0;
  for (int t : sys.types()) {
    if (t == type_a) ++n_a;
    if (t == type_b) ++n_b;
  }
  if (n_a == 0 || n_b == 0) return rdf;

  std::vector<long long> counts(static_cast<std::size_t>(bins), 0);
  for_each_pair(sys, r_max, [&](int, int, int ta, int tb, double r) {
    const bool match =
        (ta == type_a && tb == type_b) || (ta == type_b && tb == type_a);
    if (!match) return;
    const auto bin = static_cast<std::size_t>(r / rdf.dr);
    if (bin < counts.size()) {
      // Each undirected pair arrives once; it contributes to both the
      // (a-around-b) and (b-around-a) views, which the normalization
      // below absorbs by counting ordered pairs.
      counts[bin] += (type_a == type_b) ? 2 : 1;
    }
  });

  // g(r) = ordered-pair count in shell / ideal-gas expectation
  // n_a·n_b/V · V_shell (the 2x increment above makes like-pair counts
  // ordered as well, so one formula covers both cases).
  const double pair_density = static_cast<double>(n_a) *
                              static_cast<double>(n_b) /
                              sys.box().volume();
  for (int b = 0; b < bins; ++b) {
    const double r0 = b * rdf.dr, r1 = r0 + rdf.dr;
    const double shell = 4.0 / 3.0 * M_PI * (r1 * r1 * r1 - r0 * r0 * r0);
    const double expected = pair_density * shell;
    rdf.g[static_cast<std::size_t>(b)] =
        expected > 0.0
            ? static_cast<double>(counts[static_cast<std::size_t>(b)]) /
                  expected
            : 0.0;
  }
  return rdf;
}

double AngleDistribution::peak_angle_deg() const {
  std::size_t best = 0;
  for (std::size_t b = 1; b < density.size(); ++b) {
    if (density[b] > density[best]) best = b;
  }
  return angle_of(best);
}

AngleDistribution compute_adf(const ParticleSystem& sys, int center,
                              int end_type, double r_bond, int bins) {
  SCMD_REQUIRE(bins > 0, "need at least one bin");
  AngleDistribution adf;
  adf.bin_width_deg = 180.0 / bins;
  adf.density.assign(static_cast<std::size_t>(bins), 0.0);

  // Gather each center's bonded neighbors from the pair sweep.
  std::vector<std::vector<int>> bonded(
      static_cast<std::size_t>(sys.num_atoms()));
  for_each_pair(sys, r_bond, [&](int i, int j, int ti, int tj, double) {
    if (ti == center && tj == end_type)
      bonded[static_cast<std::size_t>(i)].push_back(j);
    if (tj == center && ti == end_type)
      bonded[static_cast<std::size_t>(j)].push_back(i);
  });

  const Box& box = sys.box();
  const auto pos = sys.positions();
  long long total = 0;
  for (int c = 0; c < sys.num_atoms(); ++c) {
    if (sys.types()[c] != center) continue;
    const auto& nbrs = bonded[static_cast<std::size_t>(c)];
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        const Vec3 u = box.min_image(pos[nbrs[a]], pos[c]);
        const Vec3 v = box.min_image(pos[nbrs[b]], pos[c]);
        double cos_t = u.dot(v) / (u.norm() * v.norm());
        cos_t = std::clamp(cos_t, -1.0, 1.0);
        const double deg = std::acos(cos_t) * 180.0 / M_PI;
        auto bin = static_cast<std::size_t>(deg / adf.bin_width_deg);
        if (bin >= adf.density.size()) bin = adf.density.size() - 1;
        adf.density[bin] += 1.0;
        ++total;
      }
    }
  }
  if (total > 0) {
    for (double& d : adf.density)
      d /= static_cast<double>(total) * adf.bin_width_deg;
  }
  return adf;
}

double mean_coordination(const ParticleSystem& sys, int center_type,
                         int neighbor_type, double r_bond) {
  long long centers = 0;
  for (int t : sys.types())
    if (t == center_type) ++centers;
  if (centers == 0) return 0.0;

  long long bonds = 0;
  for_each_pair(sys, r_bond, [&](int, int, int ti, int tj, double) {
    if (ti == center_type && tj == neighbor_type) ++bonds;
    if (tj == center_type && ti == neighbor_type) ++bonds;
  });
  return static_cast<double>(bonds) / static_cast<double>(centers);
}

double mean_square_displacement(const ParticleSystem& before,
                                const ParticleSystem& after) {
  SCMD_REQUIRE(before.num_atoms() == after.num_atoms(),
               "snapshots must hold the same atoms");
  SCMD_REQUIRE(before.box() == after.box(), "box changed between snapshots");
  double sum = 0.0;
  for (int i = 0; i < before.num_atoms(); ++i) {
    sum += before.box()
               .min_image(after.positions()[i], before.positions()[i])
               .norm2();
  }
  return before.num_atoms() > 0 ? sum / before.num_atoms() : 0.0;
}

}  // namespace scmd
