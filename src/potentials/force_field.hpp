#pragma once

/// \file force_field.hpp
/// Many-body force-field interface.
///
/// A force field is a sum of n-body terms Φ = Φ2 + Φ3 + ... + Φ_nmax
/// (paper Eq. 2), each range-limited by its own cutoff rcut(n) (Eq. 6).
/// The tuple enumerator hands the field one accepted chain tuple at a
/// time; the field evaluates the term's energy and accumulates forces on
/// every tuple member (Eq. 4).
///
/// Chain conventions:
///  - pair (i, j): both orders equivalent, evaluated once.
///  - triplet (i, j, k): j is the CENTER (apex of the bond angle); the
///    enumerator guarantees |ri-rj| < rcut(3) and |rj-rk| < rcut(3).
///  - quadruplet (i, j, k, l): a bonded chain (dihedral-style), with all
///    consecutive distances < rcut(4).

#include <string>
#include <vector>

#include "geom/vec3.hpp"

namespace scmd {

/// Abstract many-body interatomic potential.
///
/// Implementations must be thread-compatible: eval_* methods are const and
/// touch no mutable state, so concurrent ranks can share one instance.
class ForceField {
 public:
  virtual ~ForceField() = default;

  /// Human-readable identifier ("lennard-jones", "vashishta-sio2", ...).
  virtual std::string name() const = 0;

  /// Largest n with a non-trivial Φn term (2, 3, or 4).
  virtual int max_n() const = 0;

  /// Number of atom species the field parameterizes; type indices passed
  /// to eval_* must be in [0, num_types()).
  virtual int num_types() const = 0;

  /// Cutoff for the n-body term, 0 if the term is absent.
  virtual double rcut(int n) const = 0;

  /// Mass of a species in simulation units.
  virtual double mass(int type) const = 0;

  /// Φ2 contribution of pair (i, j): returns the energy and accumulates
  /// forces into fi/fj.  Default: no pair term.
  virtual double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj,
                           Vec3& fi, Vec3& fj) const;

  /// Φ3 contribution of chain (i, j, k) with center j.
  virtual double eval_triplet(int ti, int tj, int tk, const Vec3& ri,
                              const Vec3& rj, const Vec3& rk, Vec3& fi,
                              Vec3& fj, Vec3& fk) const;

  /// Φ4 contribution of chain (i, j, k, l).
  virtual double eval_quad(int ti, int tj, int tk, int tl, const Vec3& ri,
                           const Vec3& rj, const Vec3& rk, const Vec3& rl,
                           Vec3& fi, Vec3& fj, Vec3& fk, Vec3& fl) const;

  /// Φn contribution of an n-atom chain for n >= 5 (ReaxFF-style
  /// chain-rule terms reach n = 6).  `type`/`pos`/`force` are arrays of
  /// length n in chain order; implementations accumulate into `force`
  /// and return the energy.  Default: no term.
  virtual double eval_chain(int n, const int* type, const Vec3* pos,
                            Vec3* force) const;
};

/// Dense symmetric per-type-pair parameter table.
template <class T>
class TypePairTable {
 public:
  TypePairTable() = default;
  explicit TypePairTable(int num_types, const T& fill = T{})
      : n_(num_types),
        data_(static_cast<std::size_t>(num_types) * num_types, fill) {}

  const T& operator()(int a, int b) const {
    return data_[static_cast<std::size_t>(a) * n_ + b];
  }

  /// Set the (a, b) and (b, a) entries.
  void set(int a, int b, const T& v) {
    data_[static_cast<std::size_t>(a) * n_ + b] = v;
    data_[static_cast<std::size_t>(b) * n_ + a] = v;
  }

  int num_types() const { return n_; }

 private:
  int n_ = 0;
  std::vector<T> data_;
};

}  // namespace scmd
