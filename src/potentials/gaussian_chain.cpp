#include "potentials/gaussian_chain.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

GaussianChain::GaussianChain(const GaussianChainParams& p) : p_(p) {
  SCMD_REQUIRE(p.epsilon >= 0 && p.rcut2 > 0 && p.rcut5 > 0 && p.w > 0 &&
                   p.mass > 0,
               "bad Gaussian-chain parameters");
}

double GaussianChain::rcut(int n) const {
  if (n == 2) return p_.rcut2;
  if (n == 5) return p_.rcut5;
  return 0.0;
}

double GaussianChain::mass(int type) const {
  SCMD_REQUIRE(type == 0, "Gaussian chain is single-species");
  return p_.mass;
}

double GaussianChain::eval_pair(int, int, const Vec3& ri, const Vec3& rj,
                                Vec3& fi, Vec3& fj) const {
  const Vec3 d = ri - rj;
  const double r2 = d.norm2();
  if (r2 >= p_.rcut2 * p_.rcut2) return 0.0;
  const double r = std::sqrt(r2);
  const double x = 1.0 - r / p_.rcut2;
  const double energy = p_.epsilon * x * x;
  const double dvdr = -2.0 * p_.epsilon * x / p_.rcut2;
  const Vec3 f = d * (-dvdr / r);
  fi += f;
  fj -= f;
  return energy;
}

double GaussianChain::eval_chain(int n, const int*, const Vec3* pos,
                                 Vec3* force) const {
  if (n != 5) return 0.0;
  const double rc2 = p_.rcut5 * p_.rcut5;

  // Switching factors per bond and their d/d(r²) (see ChainDihedral).
  double f[4], df[4];
  Vec3 b[4];
  double fff = 1.0;
  for (int i = 0; i < 4; ++i) {
    b[i] = pos[i + 1] - pos[i];
    const double r2 = b[i].norm2();
    if (r2 >= rc2) return 0.0;
    const double u = 1.0 - r2 / rc2;
    f[i] = u * u;
    df[i] = -2.0 * u / rc2;
    fff *= f[i];
  }

  const Vec3 d = pos[4] - pos[0];
  const double g = std::exp(-d.norm2() / (p_.w * p_.w));
  const double energy = p_.K * g * fff;

  // End-to-end part: dV/d(r4) = K fff g' · 2d/w² with g' = −g.
  const Vec3 grad_end = d * (-2.0 * p_.K * fff * g / (p_.w * p_.w));
  force[0] -= -1.0 * grad_end;  // dV/d(r0) = −grad_end
  force[4] -= grad_end;

  // Switching part: dV/d(b_i) = K g (Π_{j≠i} f_j) df_i · 2 b_i.
  for (int i = 0; i < 4; ++i) {
    double others = 1.0;
    for (int j = 0; j < 4; ++j) {
      if (j != i) others *= f[j];
    }
    const Vec3 grad_b = b[i] * (2.0 * p_.K * g * others * df[i]);
    // b_i = r_{i+1} − r_i.
    force[i] += grad_b;
    force[i + 1] -= grad_b;
  }
  return energy;
}

}  // namespace scmd
