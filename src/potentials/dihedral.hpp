#pragma once

/// \file dihedral.hpp
/// Synthetic quadruplet (n = 4) force field.
///
/// Reactive force fields (ReaxFF) motivate dynamic 4-tuple computation
/// (paper Sec. 1); we are not reproducing ReaxFF chemistry, only the
/// n = 4 enumeration workload it creates.  This field combines:
///
///   - a soft repulsive pair term V2 = ε(1 − r/rcut2)² keeping the gas
///     from collapsing, and
///   - a smooth cosine dihedral on every dynamic chain (i, j, k, l) with
///     consecutive distances < rcut4:
///
///       V4 = K (1 + cosφ_reg) · f(r01) f(r12) f(r23)
///       f(r) = (1 − (r/rcut4)²)²                (switches off at rcut4)
///       cosφ_reg = m·n / sqrt((|m|²+ε)(|n|²+ε)) (m = b1×b2, n = b2×b3)
///
/// Unlike bonded torsions, dynamic 4-tuples routinely pass through
/// near-collinear geometries and through the cutoff surface; the
/// regularization ε and the switching functions keep the energy C¹
/// everywhere, so NVE integration conserves energy.

#include "potentials/force_field.hpp"

namespace scmd {

/// Parameters for the synthetic chain field.
struct ChainParams {
  double epsilon = 1.0;  ///< pair repulsion strength
  double rcut2 = 1.0;    ///< pair cutoff
  double K = 0.05;       ///< dihedral strength
  double rcut4 = 0.8;    ///< chain-step cutoff for 4-tuples
  double reg = 1e-2;     ///< collinearity regularization (length^4 units)
  double mass = 1.0;
};

/// Pair + dihedral chain field exercising n = 4 tuple computation.
class ChainDihedral final : public ForceField {
 public:
  explicit ChainDihedral(const ChainParams& p = {});

  std::string name() const override { return "chain-dihedral"; }
  int max_n() const override { return 4; }
  int num_types() const override { return 1; }
  double rcut(int n) const override;
  double mass(int type) const override;

  double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj, Vec3& fi,
                   Vec3& fj) const override;

  double eval_quad(int ti, int tj, int tk, int tl, const Vec3& ri,
                   const Vec3& rj, const Vec3& rk, const Vec3& rl, Vec3& fi,
                   Vec3& fj, Vec3& fk, Vec3& fl) const override;

 private:
  ChainParams p_;
};

}  // namespace scmd
