#include "potentials/dihedral.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

ChainDihedral::ChainDihedral(const ChainParams& p) : p_(p) {
  SCMD_REQUIRE(p.epsilon >= 0 && p.rcut2 > 0 && p.rcut4 > 0 && p.mass > 0,
               "bad chain parameters");
}

double ChainDihedral::rcut(int n) const {
  if (n == 2) return p_.rcut2;
  if (n == 4) return p_.rcut4;
  return 0.0;
}

double ChainDihedral::mass(int type) const {
  SCMD_REQUIRE(type == 0, "chain field is single-species");
  return p_.mass;
}

double ChainDihedral::eval_pair(int, int, const Vec3& ri, const Vec3& rj,
                                Vec3& fi, Vec3& fj) const {
  const Vec3 d = ri - rj;
  const double r2 = d.norm2();
  if (r2 >= p_.rcut2 * p_.rcut2) return 0.0;
  const double r = std::sqrt(r2);
  const double x = 1.0 - r / p_.rcut2;
  const double energy = p_.epsilon * x * x;
  // dV/dr = −2ε x / rcut2
  const double dvdr = -2.0 * p_.epsilon * x / p_.rcut2;
  const Vec3 f = d * (-dvdr / r);
  fi += f;
  fj -= f;
  return energy;
}

double ChainDihedral::eval_quad(int, int, int, int, const Vec3& ri,
                                const Vec3& rj, const Vec3& rk, const Vec3& rl,
                                Vec3& fi, Vec3& fj, Vec3& fk,
                                Vec3& fl) const {
  // V = K (1 + cosφ_reg) f(r01) f(r12) f(r23); see the header for why
  // the regularization and switching functions are needed for dynamic
  // (non-bonded-topology) 4-tuples.
  const Vec3 b1 = rj - ri;
  const Vec3 b2 = rk - rj;
  const Vec3 b3 = rl - rk;
  const double rc2 = p_.rcut4 * p_.rcut4;
  const double r1sq = b1.norm2(), r2sq = b2.norm2(), r3sq = b3.norm2();
  if (r1sq >= rc2 || r2sq >= rc2 || r3sq >= rc2) return 0.0;

  // Switching factors and their derivatives w.r.t. the squared lengths:
  // f = (1 - r²/rc²)², df/d(r²) = -2 (1 - r²/rc²) / rc².
  const double u1 = 1.0 - r1sq / rc2;
  const double u2 = 1.0 - r2sq / rc2;
  const double u3 = 1.0 - r3sq / rc2;
  const double f1 = u1 * u1, f2 = u2 * u2, f3 = u3 * u3;
  const double df1 = -2.0 * u1 / rc2;
  const double df2 = -2.0 * u2 / rc2;
  const double df3 = -2.0 * u3 / rc2;

  const Vec3 m = b1.cross(b2);
  const Vec3 n = b2.cross(b3);
  const double m2e = m.norm2() + p_.reg;
  const double n2e = n.norm2() + p_.reg;
  const double inv_mn = 1.0 / std::sqrt(m2e * n2e);
  const double cos_reg = m.dot(n) * inv_mn;

  const double angular = 1.0 + cos_reg;
  const double fff = f1 * f2 * f3;
  const double K = p_.K;
  const double energy = K * angular * fff;

  // --- angular part: d(cos_reg) through m, n --------------------------
  const Vec3 dcos_dm = n * inv_mn - m * (cos_reg / m2e);
  const Vec3 dcos_dn = m * inv_mn - n * (cos_reg / n2e);
  // a·(db×c) = db·(c×a), a·(b×dc) = dc·(a×b):
  const Vec3 g_b1 = b2.cross(dcos_dm);
  const Vec3 g_b2 = dcos_dm.cross(b1) + b3.cross(dcos_dn);
  const Vec3 g_b3 = dcos_dn.cross(b2);

  // --- total gradient w.r.t. the bond vectors -------------------------
  // dV/d(b_i) = K [ fff * g_bi + angular * d(fff)/d(b_i) ],
  // d(f_i)/d(b_i) = df_i * 2 b_i * (f over the other two factors).
  const Vec3 G1 = (K * fff) * g_b1 + (2.0 * K * angular * df1 * f2 * f3) * b1;
  const Vec3 G2 = (K * fff) * g_b2 + (2.0 * K * angular * f1 * df2 * f3) * b2;
  const Vec3 G3 = (K * fff) * g_b3 + (2.0 * K * angular * f1 * f2 * df3) * b3;

  // b1 = rj−ri, b2 = rk−rj, b3 = rl−rk: map to per-atom gradients.
  fi += G1;                 // -(dV/dri) = +G1
  fj -= G1 - G2;
  fk -= G2 - G3;
  fl -= G3;
  return energy;
}

}  // namespace scmd
