#include "potentials/tersoff.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

TersoffSilicon::TersoffSilicon(const TersoffParams& p) : p_(p) {
  SCMD_REQUIRE(p.A > 0 && p.B > 0 && p.lambda1 > 0 && p.lambda2 > 0 &&
                   p.beta > 0 && p.eta > 0 && p.D > 0 && p.R > p.D &&
                   p.mass > 0,
               "bad Tersoff parameters");
}

double TersoffSilicon::mass(int type) const {
  SCMD_REQUIRE(type == 0, "Tersoff-Si is single-species");
  return p_.mass;
}

double TersoffSilicon::eval_pair(int, int, const Vec3&, const Vec3&, Vec3&,
                                 Vec3&) const {
  SCMD_REQUIRE(false,
               "Tersoff bond order is neighborhood-dependent; evaluate "
               "through BondOrderStrategy");
  return 0.0;
}

void TersoffSilicon::cutoff_fn(double r, double& fc, double& dfc) const {
  const double lo = p_.R - p_.D;
  const double hi = p_.R + p_.D;
  if (r < lo) {
    fc = 1.0;
    dfc = 0.0;
  } else if (r >= hi) {
    fc = 0.0;
    dfc = 0.0;
  } else {
    const double arg = M_PI_2 * (r - p_.R) / p_.D;
    fc = 0.5 - 0.5 * std::sin(arg);
    dfc = -0.5 * M_PI_2 / p_.D * std::cos(arg);
  }
}

void TersoffSilicon::repulsive(double r, double& fr, double& dfr) const {
  fr = p_.A * std::exp(-p_.lambda1 * r);
  dfr = -p_.lambda1 * fr;
}

void TersoffSilicon::attractive(double r, double& fa, double& dfa) const {
  fa = -p_.B * std::exp(-p_.lambda2 * r);
  dfa = -p_.lambda2 * fa;
}

void TersoffSilicon::angular(double cos_theta, double& g, double& dg) const {
  const double c2 = p_.c * p_.c;
  const double d2 = p_.d * p_.d;
  const double hc = p_.h - cos_theta;
  const double denom = d2 + hc * hc;
  g = 1.0 + c2 / d2 - c2 / denom;
  // dg/d(cosθ): d/dcos [−c²/(d² + (h−cos)²)] = −c² · 2(h−cos) / denom².
  dg = -2.0 * c2 * hc / (denom * denom);
}

void TersoffSilicon::bond_order(double zeta, double& b, double& db) const {
  if (zeta <= 0.0) {
    b = 1.0;
    db = 0.0;
    return;
  }
  const double bz = std::pow(p_.beta * zeta, p_.eta);
  const double base = 1.0 + bz;
  b = std::pow(base, -1.0 / (2.0 * p_.eta));
  // db/dζ = −(1/(2η)) base^{−1/(2η)−1} · η (βζ)^{η−1} β
  //       = −½ base^{−1/(2η)−1} · bz / ζ.
  db = -0.5 * std::pow(base, -1.0 / (2.0 * p_.eta) - 1.0) * bz / zeta;
}

}  // namespace scmd
