#pragma once

/// \file lj.hpp
/// Truncated-and-shifted Lennard-Jones pair potential.
///
/// V(r) = 4ε[(σ/r)^12 − (σ/r)^6] − V_cut, for r < rcut.
/// The energy shift keeps V continuous at the cutoff; forces are the
/// unshifted derivative (standard practice for LJ MD).

#include "potentials/force_field.hpp"

namespace scmd {

/// Lennard-Jones parameters (single species).
struct LjParams {
  double epsilon = 1.0;  ///< well depth
  double sigma = 1.0;    ///< zero-crossing distance
  double rcut = 2.5;     ///< cutoff radius (in the same length units)
  double mass = 1.0;     ///< particle mass
};

/// Single-species Lennard-Jones fluid (e.g. argon in reduced units).
class LennardJones final : public ForceField {
 public:
  explicit LennardJones(const LjParams& p = {});

  std::string name() const override { return "lennard-jones"; }
  int max_n() const override { return 2; }
  int num_types() const override { return 1; }
  double rcut(int n) const override { return n == 2 ? p_.rcut : 0.0; }
  double mass(int type) const override;

  double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj, Vec3& fi,
                   Vec3& fj) const override;

  const LjParams& params() const { return p_; }

 private:
  LjParams p_;
  double rcut2_ = 0.0;
  double shift_ = 0.0;  // V(rcut), subtracted from every pair energy
};

}  // namespace scmd
