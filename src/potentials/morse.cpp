#include "potentials/morse.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

Morse::Morse(const MorseParams& p) : p_(p) {
  SCMD_REQUIRE(p.De > 0 && p.a > 0 && p.r0 > 0 && p.rcut > p.r0 &&
                   p.mass > 0,
               "bad Morse parameters");
  const double x = 1.0 - std::exp(-p.a * (p.rcut - p.r0));
  shift_ = p.De * (x * x - 1.0);
}

double Morse::mass(int type) const {
  SCMD_REQUIRE(type == 0, "Morse is single-species");
  return p_.mass;
}

double Morse::eval_pair(int, int, const Vec3& ri, const Vec3& rj, Vec3& fi,
                        Vec3& fj) const {
  const Vec3 d = ri - rj;
  const double r2 = d.norm2();
  if (r2 >= p_.rcut * p_.rcut) return 0.0;
  const double r = std::sqrt(r2);
  const double e = std::exp(-p_.a * (r - p_.r0));
  const double x = 1.0 - e;
  const double energy = p_.De * (x * x - 1.0) - shift_;
  // dV/dr = 2 De a e (1 - e)
  const double dvdr = 2.0 * p_.De * p_.a * e * x;
  const Vec3 f = d * (-dvdr / r);
  fi += f;
  fj -= f;
  return energy;
}

}  // namespace scmd
