#include "potentials/force_field.hpp"

namespace scmd {

double ForceField::eval_pair(int, int, const Vec3&, const Vec3&, Vec3&,
                             Vec3&) const {
  return 0.0;
}

double ForceField::eval_triplet(int, int, int, const Vec3&, const Vec3&,
                                const Vec3&, Vec3&, Vec3&, Vec3&) const {
  return 0.0;
}

double ForceField::eval_quad(int, int, int, int, const Vec3&, const Vec3&,
                             const Vec3&, const Vec3&, Vec3&, Vec3&, Vec3&,
                             Vec3&) const {
  return 0.0;
}

double ForceField::eval_chain(int, const int*, const Vec3*, Vec3*) const {
  return 0.0;
}

}  // namespace scmd
