#include "potentials/vashishta.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

namespace {

// Coulomb constant e²/(4πε0) in eV·Å.
constexpr double kE2 = 14.399645;

// Effective charges (units of e) and screening lengths (Å) of the 1990
// SiO2 parameterization.
constexpr double kZSi = 1.2;
constexpr double kZO = -0.6;
// Screening lengths live on the class (VashishtaSiO2::kLambda1/kLambda4)
// so the batched kernels share them.

constexpr double kMassSi = 28.0855;  // amu
constexpr double kMassO = 15.9994;   // amu

}  // namespace

VashishtaSiO2::VashishtaSiO2(double rcut2, double rcut3)
    : rcut2_(rcut2), rcut3_(rcut3), pair_(2) {
  SCMD_REQUIRE(rcut2 > 0 && rcut3 > 0 && rcut3 <= rcut2,
               "need 0 < rcut3 <= rcut2");

  // Steric strengths H_ij (eV·Å^η) and exponents η_ij; charge-dipole
  // strengths D_ij (eV·Å⁴) — 1990 SiO2 table.
  PairParams si_si, si_o, o_o;
  si_si.eta = 11.0;
  si_si.H = 0.057;
  si_si.zz_e2 = kZSi * kZSi * kE2;
  si_si.D = 0.0;
  si_o.eta = 9.0;
  si_o.H = 11.387;
  si_o.zz_e2 = kZSi * kZO * kE2;
  si_o.D = 3.456;
  o_o.eta = 7.0;
  o_o.H = 51.692;
  o_o.zz_e2 = kZO * kZO * kE2;
  o_o.D = 1.728;

  for (PairParams* p : {&si_si, &si_o, &o_o}) {
    raw_pair(*p, rcut2_, p->v_shift, p->f_shift);
  }
  pair_.set(kSilicon, kSilicon, si_si);
  pair_.set(kSilicon, kOxygen, si_o);
  pair_.set(kOxygen, kOxygen, o_o);

  // Bond-bending channels: O-Si-O at the tetrahedral angle, Si-O-Si at
  // the bridging angle.  C = 0 in the 1990 set.
  bend_si_ = {4.993, std::cos(109.47 * M_PI / 180.0), 0.0, 1.0, rcut3_};
  bend_o_ = {19.972, std::cos(141.0 * M_PI / 180.0), 0.0, 1.0, rcut3_};
}

double VashishtaSiO2::rcut(int n) const {
  if (n == 2) return rcut2_;
  if (n == 3) return rcut3_;
  return 0.0;
}

double VashishtaSiO2::mass(int type) const {
  SCMD_REQUIRE(type == kSilicon || type == kOxygen, "unknown silica type");
  return type == kSilicon ? kMassSi : kMassO;
}

void VashishtaSiO2::raw_pair(const PairParams& p, double r, double& v,
                             double& dv) {
  const double inv_r = 1.0 / r;
  const double steric = p.H * std::pow(inv_r, p.eta);
  const double coul = p.zz_e2 * inv_r * std::exp(-r / kLambda1);
  const double inv_r4 = inv_r * inv_r * inv_r * inv_r;
  const double dip = -p.D * inv_r4 * std::exp(-r / kLambda4);
  v = steric + coul + dip;
  dv = -p.eta * steric * inv_r + coul * (-inv_r - 1.0 / kLambda1) +
       dip * (-4.0 * inv_r - 1.0 / kLambda4);
}

double VashishtaSiO2::eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj,
                                Vec3& fi, Vec3& fj) const {
  const Vec3 d = ri - rj;
  const double r2 = d.norm2();
  if (r2 >= rcut2_ * rcut2_) return 0.0;
  const double r = std::sqrt(r2);
  const PairParams& p = pair_(ti, tj);
  double v, dv;
  raw_pair(p, r, v, dv);
  // Shifted-force truncation: continuous energy and force at rcut2.
  const double energy = v - p.v_shift - (r - rcut2_) * p.f_shift;
  const double dvdr = dv - p.f_shift;
  const Vec3 f = d * (-dvdr / r);  // F_i = −dV/dr · r̂
  fi += f;
  fj -= f;
  return energy;
}

double VashishtaSiO2::eval_triplet(int ti, int tj, int tk, const Vec3& ri,
                                   const Vec3& rj, const Vec3& rk, Vec3& fi,
                                   Vec3& fj, Vec3& fk) const {
  // Chain (i, j, k): j is the center.  Only O-Si-O and Si-O-Si channels
  // carry strength.
  const BondBendingParams* bend = bend_channel(ti, tj, tk);
  if (bend == nullptr) return 0.0;
  return eval_bond_bending(*bend, rj, ri, rk, fj, fi, fk);
}

}  // namespace scmd
