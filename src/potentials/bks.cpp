#include "potentials/bks.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

namespace {
constexpr double kE2 = 14.399645;  // e²/(4πε0), eV·Å
constexpr double kQSi = 2.4;
constexpr double kQO = -1.2;
}  // namespace

BksSiO2::BksSiO2(double rcut) : rcut_(rcut), pair_(2) {
  SCMD_REQUIRE(rcut > 0.0, "cutoff must be positive");
  PairParams si_si, si_o, o_o;
  si_si.qq_e2 = kQSi * kQSi * kE2;   // Buckingham terms vanish for Si-Si
  si_o.qq_e2 = kQSi * kQO * kE2;
  si_o.A = 18003.7572;
  si_o.b = 4.87318;
  si_o.C = 133.5381;
  o_o.qq_e2 = kQO * kQO * kE2;
  o_o.A = 1388.7730;
  o_o.b = 2.76000;
  o_o.C = 175.0000;

  for (PairParams* p : {&si_si, &si_o, &o_o})
    raw(*p, rcut_, p->v_shift, p->f_shift);
  pair_.set(0, 0, si_si);
  pair_.set(0, 1, si_o);
  pair_.set(1, 1, o_o);
}

double BksSiO2::mass(int type) const {
  SCMD_REQUIRE(type == 0 || type == 1, "unknown silica type");
  return type == 0 ? 28.0855 : 15.9994;
}

void BksSiO2::raw(const PairParams& p, double r, double& v, double& dv) {
  const double inv_r = 1.0 / r;
  const double coul = p.qq_e2 * inv_r;
  const double rep = p.A * std::exp(-p.b * r);
  const double inv_r3 = inv_r * inv_r * inv_r;
  const double disp = -p.C * inv_r3 * inv_r3;
  v = coul + rep + disp;
  dv = -coul * inv_r - p.b * rep - 6.0 * disp * inv_r;
}

double BksSiO2::eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj,
                          Vec3& fi, Vec3& fj) const {
  const Vec3 d = ri - rj;
  const double r2 = d.norm2();
  if (r2 >= rcut_ * rcut_) return 0.0;
  const double r = std::sqrt(r2);
  const PairParams& p = pair_(ti, tj);
  double v, dv;
  raw(p, r, v, dv);
  const double energy = v - p.v_shift - (r - rcut_) * p.f_shift;
  const double dvdr = dv - p.f_shift;
  const Vec3 f = d * (-dvdr / r);
  fi += f;
  fj -= f;
  return energy;
}

}  // namespace scmd
