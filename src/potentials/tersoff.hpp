#pragma once

/// \file tersoff.hpp
/// Tersoff bond-order potential for silicon (Tersoff, PRB 38, 9902
/// (1988); the λ3 = 0 "T2" form).
///
/// This is the library's reactive workload: the bond order b_ij depends
/// on the instantaneous neighborhood (ζ_ij sums over every atom k within
/// range of i), so bonds strengthen and weaken as atoms move — the
/// regime that motivates *dynamic* n-tuple computation (paper Sec. 1).
/// Chain-rule differentiation spreads each pair term's forces over
/// dynamic (i, j, k) triplets, the same mechanism by which ReaxFF reaches
/// n = 6.
///
///   E = Σ_i Σ_{j≠i} ½ fc(r_ij) [ f_R(r_ij) + b_ij f_A(r_ij) ]
///   f_R = A e^{−λ1 r},  f_A = −B e^{−λ2 r}
///   b_ij = (1 + (β ζ_ij)^η)^{−1/(2η)}
///   ζ_ij = Σ_{k≠i,j} fc(r_ik) g(θ_ijk)
///   g(θ) = 1 + c²/d² − c² / (d² + (h − cos θ)²)
///   fc    = smooth taper from 1 to 0 over [R−D, R+D]
///
/// Because b_ij couples a pair term to the whole neighborhood, this
/// field does not fit the independent-tuple ForceField kernels; it is
/// evaluated by the dedicated BondOrderStrategy (engines/bond_order.hpp),
/// which performs the two-pass neighborhood computation.

#include "potentials/force_field.hpp"

namespace scmd {

/// Tersoff parameters; defaults are the Si(B)/"T2" silicon fit.
struct TersoffParams {
  double A = 1830.8;       ///< eV
  double B = 471.18;       ///< eV
  double lambda1 = 2.4799; ///< 1/Å
  double lambda2 = 1.7322; ///< 1/Å
  double beta = 1.1e-6;
  double eta = 0.78734;    ///< the paper's n
  double c = 1.0039e5;
  double d = 16.217;
  double h = -0.59825;
  double R = 2.85;         ///< taper center, Å
  double D = 0.15;         ///< taper half-width, Å
  double mass = 28.0855;   ///< amu
};

/// Tersoff silicon.  ForceField plumbing (mass, cutoff) is provided so
/// engines can host it, but the per-tuple kernels are deliberately
/// disabled: evaluation requires BondOrderStrategy.
class TersoffSilicon final : public ForceField {
 public:
  explicit TersoffSilicon(const TersoffParams& p = {});

  std::string name() const override { return "tersoff-si"; }
  int max_n() const override { return 2; }
  int num_types() const override { return 1; }
  double rcut(int n) const override {
    return n == 2 ? p_.R + p_.D : 0.0;
  }
  double mass(int type) const override;

  /// Throws: Tersoff cannot be decomposed into independent pair terms.
  double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj, Vec3& fi,
                   Vec3& fj) const override;

  const TersoffParams& params() const { return p_; }

  /// --- scalar ingredients (public for the strategy and for tests) ----

  /// Taper fc(r) and its derivative.
  void cutoff_fn(double r, double& fc, double& dfc) const;

  /// Repulsive f_R and derivative.
  void repulsive(double r, double& fr, double& dfr) const;

  /// Attractive f_A (negative) and derivative.
  void attractive(double r, double& fa, double& dfa) const;

  /// Angular g(cosθ) and dg/d(cosθ).
  void angular(double cos_theta, double& g, double& dg) const;

  /// Bond order b(ζ) and db/dζ.
  void bond_order(double zeta, double& b, double& db) const;

 private:
  TersoffParams p_;
};

}  // namespace scmd
