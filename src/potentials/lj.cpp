#include "potentials/lj.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

LennardJones::LennardJones(const LjParams& p) : p_(p) {
  SCMD_REQUIRE(p.epsilon > 0 && p.sigma > 0 && p.rcut > 0 && p.mass > 0,
               "LJ parameters must be positive");
  rcut2_ = p.rcut * p.rcut;
  const double sr6 = std::pow(p.sigma / p.rcut, 6);
  shift_ = 4.0 * p.epsilon * (sr6 * sr6 - sr6);
}

double LennardJones::mass(int type) const {
  SCMD_REQUIRE(type == 0, "LJ is single-species");
  return p_.mass;
}

double LennardJones::eval_pair(int, int, const Vec3& ri, const Vec3& rj,
                               Vec3& fi, Vec3& fj) const {
  const Vec3 d = ri - rj;
  const double r2 = d.norm2();
  if (r2 >= rcut2_) return 0.0;
  const double inv_r2 = 1.0 / r2;
  const double s2 = p_.sigma * p_.sigma * inv_r2;
  const double s6 = s2 * s2 * s2;
  const double s12 = s6 * s6;
  const double energy = 4.0 * p_.epsilon * (s12 - s6) - shift_;
  // F_i = -dV/dr_i = 24 ε (2 s12 - s6) / r^2 * d
  const double f_over_r = 24.0 * p_.epsilon * (2.0 * s12 - s6) * inv_r2;
  const Vec3 f = d * f_over_r;
  fi += f;
  fj -= f;
  return energy;
}

}  // namespace scmd
