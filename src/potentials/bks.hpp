#pragma once

/// \file bks.hpp
/// BKS silica (van Beest, Kramer, van Santen, PRL 64, 1955 (1990)).
///
/// A pair-only (n = 2) silica model:
///   V(r) = q_i q_j e²/r + A_ij e^{-b_ij r} − C_ij / r⁶
/// with shifted-force truncation standing in for Ewald electrostatics
/// (adequate for enumeration workloads and short thermal runs).
///
/// Included as a contrast workload: the same material as VashishtaSiO2
/// but without a triplet term, isolating how much of SC-MD's cost profile
/// comes from n = 3 computation.
///
/// Note: BKS is famously unbounded at very short separations (the
/// dispersion term wins below ~1 Å).  No inner guard is applied; callers
/// should start from physical configurations, as the examples do.

#include "potentials/force_field.hpp"

namespace scmd {

/// Pair-only BKS silica (types: 0 = Si, 1 = O).
class BksSiO2 final : public ForceField {
 public:
  explicit BksSiO2(double rcut = 5.5);

  std::string name() const override { return "bks-sio2"; }
  int max_n() const override { return 2; }
  int num_types() const override { return 2; }
  double rcut(int n) const override { return n == 2 ? rcut_ : 0.0; }
  double mass(int type) const override;

  double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj, Vec3& fi,
                   Vec3& fj) const override;

  struct PairParams {
    double qq_e2 = 0.0;  // q_i q_j e², eV·Å
    double A = 0.0;      // eV
    double b = 0.0;      // 1/Å
    double C = 0.0;      // eV·Å⁶
    double v_shift = 0.0;
    double f_shift = 0.0;
  };

  /// Pair-term parameter table entry, for the batched kernels
  /// (src/tuples/kernels).
  const PairParams& pair_params(int ti, int tj) const { return pair_(ti, tj); }

 private:
  static void raw(const PairParams& p, double r, double& v, double& dv);

  double rcut_;
  TypePairTable<PairParams> pair_;
};

}  // namespace scmd
