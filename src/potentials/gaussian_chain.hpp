#pragma once

/// \file gaussian_chain.hpp
/// Synthetic n = 5 force field exercising arbitrary-length dynamic tuple
/// computation (the regime ReaxFF chain-rule differentiation creates,
/// paper Sec. 1).
///
///   - soft repulsive pair term (as in ChainDihedral), and
///   - an end-to-end Gaussian on every dynamic 5-chain:
///       V5 = K exp(−|r4−r0|²/w²) · Π_{i=0..3} f(|b_i|)
///       f(r) = (1 − (r/rcut5)²)²
///     smooth (C¹) everywhere, vanishing with every chain step at the
///     cutoff, so dynamic tuple turnover conserves energy.

#include "potentials/force_field.hpp"

namespace scmd {

/// Parameters for the n = 5 Gaussian-chain field.
struct GaussianChainParams {
  double epsilon = 1.0;  ///< pair repulsion strength
  double rcut2 = 1.0;    ///< pair cutoff
  double K = 0.02;       ///< 5-chain strength
  double w = 1.0;        ///< Gaussian width for the end-to-end distance
  double rcut5 = 0.7;    ///< chain-step cutoff for 5-tuples
  double mass = 1.0;
};

/// Pair + end-to-end-Gaussian 5-chain field.
class GaussianChain final : public ForceField {
 public:
  explicit GaussianChain(const GaussianChainParams& p = {});

  std::string name() const override { return "gaussian-chain5"; }
  int max_n() const override { return 5; }
  int num_types() const override { return 1; }
  double rcut(int n) const override;
  double mass(int type) const override;

  double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj, Vec3& fi,
                   Vec3& fj) const override;

  double eval_chain(int n, const int* type, const Vec3* pos,
                    Vec3* force) const override;

 private:
  GaussianChainParams p_;
};

}  // namespace scmd
