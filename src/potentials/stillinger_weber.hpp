#pragma once

/// \file stillinger_weber.hpp
/// Stillinger-Weber potential for silicon (PRB 31, 5262 (1985)).
///
/// A second dynamic pair+triplet workload with a single species and
/// rcut2 == rcut3, exercising the degenerate-cutoff corner of the
/// n-tuple machinery (the paper's silica workload has rcut3 < rcut2).
///
///   V2(r) = A ε [B (σ/r)^p − (σ/r)^q] exp(σ / (r − aσ))     for r < aσ
///   V3    = λ ε (cosθ − cosθ̄)² exp(γσ/(r_ji − aσ)) exp(γσ/(r_jk − aσ))
///
/// with cosθ̄ = −1/3 (tetrahedral).

#include "potentials/bond_bending.hpp"
#include "potentials/force_field.hpp"

namespace scmd {

/// Stillinger-Weber parameters; defaults are the original silicon fit.
struct SwParams {
  double epsilon = 2.1683;       ///< eV
  double sigma = 2.0951;         ///< Å
  double a = 1.80;               ///< cutoff in units of sigma
  double A = 7.049556277;
  double B = 0.6022245584;
  double p = 4.0;
  double q = 0.0;
  double lambda = 21.0;
  double gamma = 1.20;
  double mass = 28.0855;         ///< amu
};

/// Single-species Stillinger-Weber silicon.
class StillingerWeber final : public ForceField {
 public:
  explicit StillingerWeber(const SwParams& p = {});

  std::string name() const override { return "stillinger-weber"; }
  int max_n() const override { return 3; }
  int num_types() const override { return 1; }
  double rcut(int n) const override;
  double mass(int type) const override;

  double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj, Vec3& fi,
                   Vec3& fj) const override;

  double eval_triplet(int ti, int tj, int tk, const Vec3& ri, const Vec3& rj,
                      const Vec3& rk, Vec3& fi, Vec3& fj,
                      Vec3& fk) const override;

  const SwParams& params() const { return p_; }

  /// Pair/triplet cutoff aσ and the bond-bending channel, for the
  /// batched kernels (src/tuples/kernels).
  double rc() const { return rc_; }
  const BondBendingParams& bend() const { return bend_; }

 private:
  SwParams p_;
  double rc_ = 0.0;  // aσ
  BondBendingParams bend_;
};

}  // namespace scmd
