#pragma once

/// \file morse.hpp
/// Morse pair potential: V(r) = De[(1 − e^{−a(r−r0)})² − 1], truncated
/// and shifted at the cutoff.  A softer-core alternative to LJ for
/// metallic-flavored pair workloads.

#include "potentials/force_field.hpp"

namespace scmd {

/// Morse parameters; defaults approximate copper (eV/Å/amu).
struct MorseParams {
  double De = 0.343;   ///< well depth, eV
  double a = 1.359;    ///< stiffness, 1/Å
  double r0 = 2.866;   ///< equilibrium distance, Å
  double rcut = 6.0;   ///< cutoff, Å
  double mass = 63.546;
};

/// Single-species Morse fluid/solid.
class Morse final : public ForceField {
 public:
  explicit Morse(const MorseParams& p = {});

  std::string name() const override { return "morse"; }
  int max_n() const override { return 2; }
  int num_types() const override { return 1; }
  double rcut(int n) const override { return n == 2 ? p_.rcut : 0.0; }
  double mass(int type) const override;

  double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj, Vec3& fi,
                   Vec3& fj) const override;

  const MorseParams& params() const { return p_; }

 private:
  MorseParams p_;
  double shift_ = 0.0;
};

}  // namespace scmd
