#pragma once

/// \file bond_bending.hpp
/// Screened bond-bending three-body term shared by the Vashishta and
/// Stillinger-Weber potentials:
///
///   V3(rc, ra, rb) = B · f(r_ca) · f(r_cb) · G(cosθ)
///   f(r) = exp(γ / (r − r0))   for r < r0, else 0
///   G(Δ) = Δ² / (1 + C·Δ²),    Δ = cosθ − cosθ̄
///
/// where c is the center atom (angle apex), a/b the ends.  The screening
/// f(r) diverges exponentially to 0 as r → r0⁻, so the term and its forces
/// vanish smoothly at the three-body cutoff r0.

#include <cmath>

#include "geom/vec3.hpp"

namespace scmd {

/// Parameters of one bond-bending channel.
struct BondBendingParams {
  double B = 0.0;           ///< strength (energy units)
  double cos_theta0 = 0.0;  ///< cosine of the preferred angle
  double C = 0.0;           ///< angular stiffness saturation (0 = harmonic in cosθ)
  double gamma = 1.0;       ///< screening strength (length units)
  double r0 = 1.0;          ///< three-body cutoff (length units)
};

/// Evaluate the term for center c with ends a, b.  Adds forces, returns
/// the energy.  Returns 0 without touching forces if either leg exceeds r0.
inline double eval_bond_bending(const BondBendingParams& p, const Vec3& rc,
                                const Vec3& ra, const Vec3& rb, Vec3& fc,
                                Vec3& fa, Vec3& fb) {
  if (p.B == 0.0) return 0.0;
  const Vec3 u = ra - rc;
  const Vec3 v = rb - rc;
  const double ru = u.norm();
  const double rv = v.norm();
  if (ru >= p.r0 || rv >= p.r0) return 0.0;

  const double fu = std::exp(p.gamma / (ru - p.r0));
  const double fv = std::exp(p.gamma / (rv - p.r0));
  const double dfu = -p.gamma / ((ru - p.r0) * (ru - p.r0)) * fu;
  const double dfv = -p.gamma / ((rv - p.r0) * (rv - p.r0)) * fv;

  const double inv_rurv = 1.0 / (ru * rv);
  const double cos_t = u.dot(v) * inv_rurv;
  const double delta = cos_t - p.cos_theta0;
  const double denom = 1.0 + p.C * delta * delta;
  const double g = delta * delta / denom;
  const double dg = 2.0 * delta / (denom * denom);  // dG/d(cosθ)

  const double energy = p.B * fu * fv * g;

  // Gradients of cosθ w.r.t. the end positions.
  const Vec3 dcos_da = v * inv_rurv - u * (cos_t / (ru * ru));
  const Vec3 dcos_db = u * inv_rurv - v * (cos_t / (rv * rv));

  // ∇_a V = B [ f'(ru) fv g û + fu fv dg ∇_a cosθ ]
  const Vec3 grad_a = (p.B * dfu * fv * g / ru) * u +
                      (p.B * fu * fv * dg) * dcos_da;
  const Vec3 grad_b = (p.B * fu * dfv * g / rv) * v +
                      (p.B * fu * fv * dg) * dcos_db;

  fa -= grad_a;
  fb -= grad_b;
  fc += grad_a + grad_b;  // momentum conservation: ∇_c V = −(∇_a + ∇_b)V
  return energy;
}

}  // namespace scmd
