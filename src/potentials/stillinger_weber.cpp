#include "potentials/stillinger_weber.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

StillingerWeber::StillingerWeber(const SwParams& p) : p_(p) {
  SCMD_REQUIRE(p.epsilon > 0 && p.sigma > 0 && p.a > 1 && p.mass > 0,
               "bad SW parameters");
  rc_ = p.a * p.sigma;
  bend_ = {p.lambda * p.epsilon, -1.0 / 3.0, 0.0, p.gamma * p.sigma, rc_};
}

double StillingerWeber::rcut(int n) const {
  return (n == 2 || n == 3) ? rc_ : 0.0;
}

double StillingerWeber::mass(int type) const {
  SCMD_REQUIRE(type == 0, "SW is single-species");
  return p_.mass;
}

double StillingerWeber::eval_pair(int, int, const Vec3& ri, const Vec3& rj,
                                  Vec3& fi, Vec3& fj) const {
  const Vec3 d = ri - rj;
  const double r2 = d.norm2();
  if (r2 >= rc_ * rc_) return 0.0;
  const double r = std::sqrt(r2);
  const double sr = p_.sigma / r;
  const double srp = std::pow(sr, p_.p);
  const double srq = p_.q == 0.0 ? 1.0 : std::pow(sr, p_.q);
  const double screen = std::exp(p_.sigma / (r - rc_));
  const double core = p_.B * srp - srq;
  const double energy = p_.A * p_.epsilon * core * screen;
  // dV/dr = Aε screen [ (−pB srp + q srq)/r − core σ/(r−rc)² ]
  const double dvdr =
      p_.A * p_.epsilon * screen *
      ((-p_.p * p_.B * srp + p_.q * srq) / r -
       core * p_.sigma / ((r - rc_) * (r - rc_)));
  const Vec3 f = d * (-dvdr / r);
  fi += f;
  fj -= f;
  return energy;
}

double StillingerWeber::eval_triplet(int, int, int, const Vec3& ri,
                                     const Vec3& rj, const Vec3& rk, Vec3& fi,
                                     Vec3& fj, Vec3& fk) const {
  // Chain (i, j, k): j is the angle center.
  return eval_bond_bending(bend_, rj, ri, rk, fj, fi, fk);
}

}  // namespace scmd
