#pragma once

/// \file vashishta.hpp
/// Vashishta-Kalia-Rino-Ebbsjö interatomic potential for silica (SiO2).
///
/// This is the production workload of the paper's benchmarks (Sec. 5):
/// dynamic pair (n = 2) plus triplet (n = 3) computation with
/// rcut3 / rcut2 ≈ 0.47.
///
/// Two-body (per pair, shifted-force truncated at rcut2):
///   V2(r) = H_ij / r^η_ij                        (steric repulsion)
///         + Z_i Z_j e² / r · exp(−r/λ1)          (screened Coulomb)
///         − D_ij / r⁴ · exp(−r/λ4)               (charge-dipole)
///
/// Three-body (center j, screened bond bending, cutoff r0 = rcut3):
///   V3 = B_jik f(r_ji) f(r_jk) (cosθ − cosθ̄)² / (1 + C(cosθ − cosθ̄)²)
///
/// Parameters follow the SiO2 parameterization of Vashishta et al.,
/// Phys. Rev. B 41, 12197 (1990), as commonly tabulated (e.g. the
/// LAMMPS SiO2.1990.vashishta file).  Units: eV, Å, amu.

#include "potentials/bond_bending.hpp"
#include "potentials/force_field.hpp"

namespace scmd {

/// Species indices for the silica field.
enum SilicaType : int { kSilicon = 0, kOxygen = 1 };

/// SiO2 many-body potential (2- and 3-body terms).
class VashishtaSiO2 final : public ForceField {
 public:
  /// Optional cutoff overrides; defaults are the production values
  /// rcut2 = 5.5 Å, rcut3 = 2.6 Å (ratio 0.47 as quoted in the paper).
  explicit VashishtaSiO2(double rcut2 = 5.5, double rcut3 = 2.6);

  std::string name() const override { return "vashishta-sio2"; }
  int max_n() const override { return 3; }
  int num_types() const override { return 2; }
  double rcut(int n) const override;
  double mass(int type) const override;

  double eval_pair(int ti, int tj, const Vec3& ri, const Vec3& rj, Vec3& fi,
                   Vec3& fj) const override;

  double eval_triplet(int ti, int tj, int tk, const Vec3& ri, const Vec3& rj,
                      const Vec3& rk, Vec3& fi, Vec3& fj,
                      Vec3& fk) const override;

  struct PairParams {
    double eta = 0.0;     // steric exponent
    double H = 0.0;       // steric strength, eV·Å^eta
    double zz_e2 = 0.0;   // Z_i Z_j e², eV·Å
    double D = 0.0;       // charge-dipole strength, eV·Å⁴
    double v_shift = 0.0; // V2(rc)
    double f_shift = 0.0; // V2'(rc)
  };

  /// Screening lengths of the 1990 SiO2 parameterization (Å), public so
  /// the batched kernels (src/tuples/kernels) can reproduce raw_pair
  /// term for term.
  static constexpr double kLambda1 = 4.43;  // Coulomb screening
  static constexpr double kLambda4 = 2.5;   // charge-dipole screening

  /// Pair-term parameter table entry for a type pair.
  const PairParams& pair_params(int ti, int tj) const { return pair_(ti, tj); }

  /// Bond-bending channel for the chain (ti, tj, tk) with center tj, or
  /// nullptr when the triplet carries zero strength — the same selection
  /// eval_triplet applies.
  const BondBendingParams* bend_channel(int ti, int tj, int tk) const {
    if (tj == kSilicon && ti == kOxygen && tk == kOxygen) return &bend_si_;
    if (tj == kOxygen && ti == kSilicon && tk == kSilicon) return &bend_o_;
    return nullptr;
  }

 private:
  /// Raw (untruncated) V2 and its derivative at distance r.
  static void raw_pair(const PairParams& p, double r, double& v, double& dv);

  double rcut2_, rcut3_;
  TypePairTable<PairParams> pair_;
  // Bond-bending channel by center type: Si center bends O-Si-O; O center
  // bends Si-O-Si.  Triplets with mismatched end types carry zero strength.
  BondBendingParams bend_si_;  // O-Si-O
  BondBendingParams bend_o_;   // Si-O-Si
};

}  // namespace scmd
