#pragma once

/// \file tags.hpp
/// The wire-protocol tag registry — every transport tag in one place.
///
/// The SC'13 translation/reduction correctness arguments assume messages
/// on disjoint tag channels never collide; per-(src, dst, tag) FIFO
/// ordering is the only ordering the transport promises
/// (docs/TRANSPORT.md).  Before this registry the namespace partition
/// lived in comments spread over five subsystems, and two ranges had in
/// fact drifted into numeric overlap (halo write-back computed
/// 200 + import-tag = 300 + stage, colliding with the migrate window
/// 300..305 — benign only because the phases were globally ordered).
///
/// Every tag and tag range is declared below, the static_asserts prove
/// the partition disjoint at compile time, and tools/lint/scmd_lint.py
/// enforces that no send()/recv() call site outside this file uses a raw
/// integer tag and that the table in docs/TRANSPORT.md matches these
/// values.  Adding a channel = adding a TagRange entry here; an
/// overlapping choice fails the build, not a 3 AM run.
///
/// Layout (all below the reserved collective window 0x7fffff00):
///
///   100..163  halo import stages          (exchange.cpp, one per stage)
///   200..263  force write-back stages     (reverse of import)
///   300..305  migration, axis*2 + dir     (exchange.cpp)
///   400..463  position-refresh stages     (tuple-cache reuse steps)
///   500..501  balance cost gather / plan  (balance/rebalancer.cpp)
///   800..807  bench scratch channels      (bench/bench_comm.cpp)
///   900       invariant check channel     (parallel/check_channel.hpp)
///   920..924  end-of-run gather           (parallel_engine.cpp)
///   930..932  telemetry + clock sync      (obs, net/clock_sync.cpp)
///   940..941  checkpoint snapshot/restore (ckpt, parallel_engine.cpp)
///   1000..1007  service/daemon control    (src/serve, docs/SERVICE.md)

#include <cstddef>

#include "support/error.hpp"

namespace scmd::tags {

/// Tags at and above this value are reserved for the TCP backend's
/// rank-0-rooted collectives; Transport::send rejects them.
inline constexpr int kCollective = 0x7fffff00;

/// Staged halo exchange: one tag per recorded stage, so refresh/write-
/// back traffic for stage i can never be taken for stage j's.
inline constexpr int kMaxStages = 64;
inline constexpr int kImportBase = 100;
inline constexpr int kWritebackBase = 200;
inline constexpr int kRefreshBase = 400;

/// Migration: axis (x/y/z) times direction (down/up).
inline constexpr int kMigrateBase = 300;
inline constexpr int kMigrateWidth = 6;

/// Load balancing (balance/rebalancer.cpp).
inline constexpr int kBalanceCostGather = 500;
inline constexpr int kBalancePlanBcast = 501;

/// Scratch channels for communication benchmarks (bench/bench_comm.cpp).
inline constexpr int kBenchBase = 800;
inline constexpr int kBenchWidth = 8;

/// Byte-oriented invariant-check channel (parallel/check_channel.hpp).
inline constexpr int kCheck = 900;

/// End-of-run gather at rank 0 (parallel_engine.cpp).  921/922 carried
/// per-step work in earlier revisions and stay reserved inside the
/// range.
inline constexpr int kGatherCounters = 920;
inline constexpr int kGatherState = 923;
inline constexpr int kGatherStats = 924;
inline constexpr int kGatherBase = 920;
inline constexpr int kGatherWidth = 5;

/// Distributed telemetry (obs/telemetry.hpp) and bootstrap clock sync
/// (net/clock_sync.cpp).
inline constexpr int kTelemetry = 930;
inline constexpr int kClockPing = 931;
inline constexpr int kClockPong = 932;

/// Durability collectives (ckpt/checkpoint.hpp protocol).
inline constexpr int kSnapshotAtoms = 940;
inline constexpr int kRestoreBlob = 941;

/// MD-as-a-service pool control (src/serve, docs/SERVICE.md).  The
/// daemon (pool rank 0) and its workers speak only on this window;
/// everything a running job sends uses the ordinary MD windows above,
/// remapped through serve::SubsetTransport.  Unused tail tags stay
/// reserved for protocol growth.
inline constexpr int kSvcBase = 1000;
inline constexpr int kSvcWidth = 8;
inline constexpr int kSvcAssign = 1000;  ///< daemon -> worker: job assignment
inline constexpr int kSvcCtrl = 1001;    ///< daemon -> worker: cancel/finish
inline constexpr int kSvcUp = 1002;      ///< worker -> daemon: chunk/result/done
inline constexpr int kSvcReduce = 1003;  ///< job-subset allreduce leg
inline constexpr int kSvcBcast = 1004;   ///< job-subset broadcast leg

/// One registered tag window: [base, base + width).
struct TagRange {
  const char* name;
  int base;
  int width;
};

/// The registry.  docs/TRANSPORT.md's tag table is lint-checked against
/// this array (scmd_lint.py rule `tag-docs`), so the documentation
/// cannot drift from the code.
inline constexpr TagRange kRegistry[] = {
    {"import", kImportBase, kMaxStages},
    {"writeback", kWritebackBase, kMaxStages},
    {"migrate", kMigrateBase, kMigrateWidth},
    {"refresh", kRefreshBase, kMaxStages},
    {"balance.cost_gather", kBalanceCostGather, 1},
    {"balance.plan_bcast", kBalancePlanBcast, 1},
    {"bench", kBenchBase, kBenchWidth},
    {"check", kCheck, 1},
    {"gather", kGatherBase, kGatherWidth},
    {"telemetry", kTelemetry, 1},
    {"clock.ping", kClockPing, 1},
    {"clock.pong", kClockPong, 1},
    {"ckpt.snapshot_atoms", kSnapshotAtoms, 1},
    {"ckpt.restore_blob", kRestoreBlob, 1},
    {"service", kSvcBase, kSvcWidth},
};

inline constexpr std::size_t kNumRanges =
    sizeof(kRegistry) / sizeof(kRegistry[0]);

/// Every range is non-empty, non-negative, and strictly below the
/// reserved collective window.
constexpr bool all_well_formed(const TagRange* ranges, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const TagRange& r = ranges[i];
    if (r.base < 0 || r.width < 1) return false;
    if (r.base + r.width > kCollective) return false;
  }
  return true;
}

/// Pairwise disjointness of all registered windows.
constexpr bool all_disjoint(const TagRange* ranges, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const TagRange& a = ranges[i];
      const TagRange& b = ranges[j];
      if (a.base < b.base + b.width && b.base < a.base + a.width)
        return false;
    }
  }
  return true;
}

static_assert(all_well_formed(kRegistry, kNumRanges),
              "a tag range is empty, negative, or reaches into the "
              "reserved collective window");
static_assert(all_disjoint(kRegistry, kNumRanges),
              "transport tag ranges overlap — pick a free window "
              "(see the layout comment above)");

// The named singletons really live inside their registered windows.
static_assert(kGatherCounters >= kGatherBase &&
              kGatherStats < kGatherBase + kGatherWidth);
static_assert(kSvcAssign >= kSvcBase && kSvcBcast < kSvcBase + kSvcWidth);

/// Tag for stage `i` of window `base` (import/writeback/refresh use
/// kMaxStages; migrate uses kMigrateWidth).  Out-of-window indices throw
/// at run time and fail the build in constexpr contexts — a decomposition
/// with more halo stages than the registry reserves is a registry bug,
/// not a silent collision with the next window.
constexpr int stage_tag(int base, int width, int i) {
  if (i < 0 || i >= width) throw Error("transport tag stage out of range");
  return base + i;
}

constexpr int import_tag(int stage) {
  return stage_tag(kImportBase, kMaxStages, stage);
}
constexpr int writeback_tag(int stage) {
  return stage_tag(kWritebackBase, kMaxStages, stage);
}
constexpr int refresh_tag(int stage) {
  return stage_tag(kRefreshBase, kMaxStages, stage);
}
constexpr int migrate_tag(int axis, int positive_dir) {
  return stage_tag(kMigrateBase, kMigrateWidth,
                   axis * 2 + (positive_dir != 0 ? 1 : 0));
}
constexpr int bench_tag(int channel) {
  return stage_tag(kBenchBase, kBenchWidth, channel);
}

}  // namespace scmd::tags
