#include "net/status_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "net/tcp.hpp"
#include "support/error.hpp"

namespace scmd {

namespace {

/// A status request larger than this is a confused client, not a
/// request.
constexpr std::uint32_t kMaxRequestBytes = 1 << 16;

bool write_full(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_full(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

StatusServer::StatusServer(int port) {
  const auto [fd, bound] = bind_listener("0.0.0.0", port);
  listen_fd_ = fd;
  port_ = bound;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

StatusServer::~StatusServer() { stop(); }

void StatusServer::publish(std::string json) {
  publish("status", std::move(json));
}

void StatusServer::publish(const std::string& channel, std::string json) {
  const MutexLock lock(snapshot_mu_);
  snapshots_[channel] = std::move(json);
}

void StatusServer::accept_loop() {
  while (running_.load()) {
    // Short poll so stop() is observed promptly even with no clients.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const MutexLock lock(conn_mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve(fd); });
  }
}

void StatusServer::serve(int fd) {
  while (running_.load()) {
    std::uint32_t len = 0;
    if (!read_full(fd, &len, sizeof(len))) break;
    if (len > kMaxRequestBytes) break;
    std::string request(len, '\0');
    if (len > 0 && !read_full(fd, request.data(), len)) break;

    std::string reply = "{}";
    {
      const std::string channel = request.empty() ? "status" : request;
      const MutexLock lock(snapshot_mu_);
      const auto it = snapshots_.find(channel);
      if (it != snapshots_.end()) reply = it->second;
    }
    const auto reply_len = static_cast<std::uint32_t>(reply.size());
    if (!write_full(fd, &reply_len, sizeof(reply_len))) break;
    if (!write_full(fd, reply.data(), reply.size())) break;
  }
  ::close(fd);
}

void StatusServer::stop() {
  if (!running_.exchange(false)) return;
  // Unblock serve() threads stuck in recv by half-closing their sockets;
  // serve() owns the close itself.
  {
    const MutexLock lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // The accept loop (the only other writer) is joined; serve() threads
    // never touch conn_threads_, so joining under the lock cannot
    // deadlock.
    const MutexLock lock(conn_mu_);
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace scmd
