#include "net/clock_sync.hpp"

#include <limits>

#include "net/tags.hpp"
#include "obs/telemetry.hpp"
#include "support/error.hpp"

namespace scmd {

std::vector<ClockEstimate> estimate_clock_offsets(
    Transport& transport, const std::function<double()>& now_us,
    int rounds) {
  SCMD_REQUIRE(rounds >= 1, "clock sync needs at least one round");
  const int P = transport.num_ranks();
  const int rank = transport.rank();

  if (rank != 0) {
    // Serve the exchange: answer each ping with the local clock reading.
    // Reply *immediately* — every instruction between recv and send
    // widens the root's RTT and with it the uncertainty bound.
    for (int round = 0; round < rounds; ++round) {
      transport.recv(0, tags::kClockPing);
      transport.send(0, tags::kClockPong,
                     pack(std::vector<double>{now_us()}));
    }
    transport.barrier();
    return {};
  }

  std::vector<ClockEstimate> estimates(static_cast<std::size_t>(P));
  for (int r = 1; r < P; ++r) {
    double best_rtt = std::numeric_limits<double>::infinity();
    for (int round = 0; round < rounds; ++round) {
      const double t0 = now_us();
      transport.send(r, tags::kClockPing, Bytes{});
      const auto reply = unpack<double>(transport.recv(r, tags::kClockPong));
      const double t1 = now_us();
      SCMD_REQUIRE(reply.size() == 1, "malformed clock-sync pong");
      const double rtt = t1 - t0;
      if (rtt < best_rtt) {
        best_rtt = rtt;
        ClockEstimate& e = estimates[static_cast<std::size_t>(r)];
        e.offset_us = 0.5 * (t0 + t1) - reply[0];
        e.uncertainty_us = 0.5 * rtt;
      }
    }
  }
  transport.barrier();
  return estimates;
}

}  // namespace scmd
