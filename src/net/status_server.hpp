#pragma once

/// \file status_server.hpp
/// Live-status socket for the run monitor.
///
/// A StatusServer listens on a TCP port and answers length-prefixed
/// requests with the most recently publish()ed JSON snapshot — the
/// consumer is tools/scmd_top.py (and anything else that speaks the
/// trivial protocol).  Wire format, both directions:
///
///     u32 length (little-endian) | `length` bytes of UTF-8
///
/// The request body names a snapshot channel ("status" when empty — the
/// historical protocol, which older monitors still speak); every request
/// gets exactly one response, `{}` when the channel has never been
/// published.  A connection serves any number of requests until the
/// client closes it.  The server thread never touches the collector
/// directly: the driver publishes fresh snapshots at its own cadence, so
/// a slow or absent monitor costs the run one string copy per step and
/// nothing more.  The serve daemon publishes its job table on the
/// "jobs" channel (docs/SERVICE.md, tools/scmd_top.py --jobs).

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_safety.hpp"

namespace scmd {

class StatusServer {
 public:
  /// Bind 0.0.0.0:`port` (0 = ephemeral) and start the accept loop.
  /// Throws scmd::Error if the port cannot be bound.
  explicit StatusServer(int port);
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// The bound port (useful with port 0).
  int port() const { return port_; }

  /// Replace the default ("status") channel's snapshot.
  void publish(std::string json);

  /// Replace `channel`'s snapshot (e.g. "jobs" for the serve daemon's
  /// job table).
  void publish(const std::string& channel, std::string json);

  /// Stop accepting, close every connection, join all threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  void accept_loop();
  void serve(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{true};

  Mutex snapshot_mu_;
  std::map<std::string, std::string> snapshots_ SCMD_GUARDED_BY(snapshot_mu_);

  Mutex conn_mu_;
  std::vector<int> conn_fds_ SCMD_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ SCMD_GUARDED_BY(conn_mu_);
  std::thread accept_thread_;
};

}  // namespace scmd
