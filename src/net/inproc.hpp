#pragma once

/// \file inproc.hpp
/// In-process transport backend: ranks are threads of one process.
///
/// Substitute for MPI on the paper's clusters (see DESIGN.md §4): ranks
/// are threads in one process, point-to-point messages are byte payloads
/// moved through per-destination mailboxes, and collectives are built on
/// a generation-counted monitor.  Every communication pattern of the
/// paper — octant 3-stage forwarded import, full-shell 6-stage import,
/// reverse force write-back, staged migration — runs for real on this
/// layer, so parallel correctness is testable without cluster hardware.
///
/// The Cluster owns the shared state; each rank talks to it through its
/// InProcTransport handle (Cluster::transport(rank)), which implements
/// the abstract Transport interface and keeps that rank's statistics:
/// send/receive volume, recv stall time, and the high watermark of its
/// mailbox — the unbounded-mailbox assumption made visible.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "support/thread_safety.hpp"

namespace scmd {

class InProcTransport;

/// Shared communication state for a set of thread-ranks.
class Cluster {
 public:
  explicit Cluster(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Rank r's endpoint (stable for the Cluster's lifetime).
  InProcTransport& transport(int rank);

  /// Deposit a message; never blocks.
  void send(int src, int dst, int tag, Bytes payload);

  /// Blocking receive of the next message from (src, tag).  When
  /// `stall_ns` is non-null it accumulates the time spent waiting.
  Bytes recv(int dst, int src, int tag, std::uint64_t* stall_ns = nullptr);

  /// Generation barrier; all ranks must call.
  void barrier();

  /// Sum reduction over all ranks; all ranks must call, all get the sum.
  double allreduce_sum(double value);

  /// Max reduction over all ranks.
  double allreduce_max(double value);

  /// Cumulative message statistics (for tests/diagnostics).
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

  /// High watermark of messages queued-but-unreceived in rank's mailbox.
  std::uint64_t mailbox_high_water(int rank) const;
  /// Max of mailbox_high_water over all ranks.
  std::uint64_t max_mailbox_depth() const;

 private:
  struct Mailbox {
    mutable Mutex m;
    CondVar cv;
    /// (src, tag) -> pending payloads.
    std::map<std::pair<int, int>, std::deque<Bytes>> queues SCMD_GUARDED_BY(m);
    std::uint64_t depth SCMD_GUARDED_BY(m) = 0;       ///< queued, unreceived
    std::uint64_t high_water SCMD_GUARDED_BY(m) = 0;  ///< max depth observed
  };

  double reduce(double value, bool is_max);

  int num_ranks_;
  std::vector<Mailbox> boxes_;
  std::vector<std::unique_ptr<InProcTransport>> transports_;

  /// Generation-counted monitor for barrier/allreduce.
  Mutex coll_m_;
  CondVar coll_cv_;
  std::uint64_t coll_gen_ SCMD_GUARDED_BY(coll_m_) = 0;
  int coll_count_ SCMD_GUARDED_BY(coll_m_) = 0;
  double coll_acc_ SCMD_GUARDED_BY(coll_m_) = 0.0;
  double coll_result_ SCMD_GUARDED_BY(coll_m_) = 0.0;
  bool coll_started_ SCMD_GUARDED_BY(coll_m_) = false;

  mutable Mutex stats_m_;
  std::uint64_t total_messages_ SCMD_GUARDED_BY(stats_m_) = 0;
  std::uint64_t total_bytes_ SCMD_GUARDED_BY(stats_m_) = 0;
};

/// One rank's Transport endpoint onto a Cluster.
class InProcTransport final : public Transport {
 public:
  InProcTransport(Cluster& cluster, int rank)
      : cluster_(&cluster), rank_(rank) {}

  int rank() const override { return rank_; }
  int num_ranks() const override { return cluster_->num_ranks(); }

  void send(int dst, int tag, Bytes payload) override {
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
    cluster_->send(rank_, dst, tag, std::move(payload));
  }

  Bytes recv(int src, int tag) override {
    std::uint64_t stall = 0;
    Bytes out = cluster_->recv(rank_, src, tag, &stall);
    messages_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(out.size(), std::memory_order_relaxed);
    recv_stall_ns_.fetch_add(stall, std::memory_order_relaxed);
    return out;
  }

  void barrier() override { cluster_->barrier(); }
  double allreduce_sum(double v) override {
    return cluster_->allreduce_sum(v);
  }
  double allreduce_max(double v) override {
    return cluster_->allreduce_max(v);
  }

  TransportStats stats() const override {
    TransportStats s;
    s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.messages_received = messages_received_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    s.recv_stall_ns = recv_stall_ns_.load(std::memory_order_relaxed);
    s.max_mailbox_depth = cluster_->mailbox_high_water(rank_);
    return s;
  }

 private:
  Cluster* cluster_;
  int rank_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> recv_stall_ns_{0};
};

}  // namespace scmd
