#pragma once

/// \file clock_sync.hpp
/// Ping-style clock-offset estimation between rank sessions.
///
/// Each rank of a distributed run timestamps its trace spans against its
/// own TraceSession epoch (a local steady_clock origin), so spans from
/// different processes live in unrelated timebases.  To merge them into
/// one trace, rank 0 estimates per-rank offsets at bootstrap with the
/// classic NTP-style exchange:
///
///   t0 = root now;  ping(r);  remote = pong(r);  t1 = root now
///   offset_r = (t0 + t1)/2 - remote        (assumes symmetric paths)
///
/// Over `rounds` exchanges the estimate from the round with the smallest
/// round-trip is kept — queueing noise only ever inflates the RTT, so
/// min-RTT is the least-contaminated sample — and the reported
/// uncertainty is half that best RTT (the worst-case asymmetry error).
/// Adding offset_r to a rank-r local timestamp lands it in rank 0's
/// session timebase.
///
/// This is a collective: every rank must call it, with `now_us` reading
/// the clock its spans are stamped with (TraceSession::now_us of the
/// rank-local session).

#include <functional>
#include <vector>

#include "net/transport.hpp"

namespace scmd {

struct ClockEstimate {
  double offset_us = 0.0;       ///< add to local ts to get root-session ts
  double uncertainty_us = 0.0;  ///< half the best round-trip
};

/// Collective offset estimation.  Rank 0 returns one estimate per rank
/// (its own is exactly {0, 0}); every other rank serves the exchange and
/// returns an empty vector.  Uses the reserved tags::kClockPing/kClockPong channels.
std::vector<ClockEstimate> estimate_clock_offsets(
    Transport& transport, const std::function<double()>& now_us,
    int rounds = 16);

}  // namespace scmd
