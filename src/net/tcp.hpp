#pragma once

/// \file tcp.hpp
/// Multi-process TCP transport backend.
///
/// One process per rank; messages are length-prefixed frames over a full
/// mesh of TCP connections (one socket per rank pair, so TCP's in-order
/// delivery gives the per-(src, dst, tag) ordering guarantee directly).
///
/// Bootstrap (docs/TRANSPORT.md):
///   1. every rank binds an ephemeral listener for peer connections;
///   2. rank 0 binds the well-known rendezvous address; ranks 1..P-1
///      connect to it (with retry + backoff), announce their rank and
///      listener address, and receive the full address table back;
///   3. rank i dials every rank j > i's listener (identifying itself
///      with a one-frame handshake) and accepts one connection from
///      every rank j < i.
///
/// Runtime: send() enqueues the frame on a per-peer writer queue drained
/// by a dedicated writer thread, so the sender never blocks on a slow
/// peer.  A per-peer reader thread deposits incoming frames into the
/// rank's mailbox, from which recv(src, tag) takes them.  Collectives
/// are rank-0-rooted reduce + broadcast over point-to-point on a
/// reserved tag.
///
/// Failure behavior: recv() waits at most config.recv_timeout_s and then
/// throws scmd::Error; a peer whose connection drops marks the mailbox
/// lane dead and wakes all waiters, so a killed process surfaces as an
/// error on the survivors — never a hang.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "support/thread_safety.hpp"

namespace scmd {

/// TCP backend configuration.
struct TcpConfig {
  int rank = 0;
  int num_ranks = 1;

  /// Rendezvous address: rank 0 listens here, everyone else dials it.
  std::string rendezvous_host = "127.0.0.1";
  int rendezvous_port = 0;

  /// Address other ranks use to reach this rank's peer listener (the
  /// listener itself binds INADDR_ANY).  Keep the default for
  /// single-host runs; set to a routable address for multi-host runs.
  std::string advertise_host = "127.0.0.1";

  /// Give up dialing (rendezvous or a peer) after this long.
  double connect_timeout_s = 30.0;
  /// recv() waits at most this long for a matching message before
  /// throwing; 0 waits forever (collectives use the same bound).
  double recv_timeout_s = 60.0;

  /// Rank 0 only: adopt this already-listening socket as the rendezvous
  /// listener instead of binding rendezvous_host:rendezvous_port.  Lets
  /// in-process tests bind port 0 first and hand out the real port
  /// race-free (see bind_listener()).
  int rendezvous_fd = -1;
};

/// Bind a listening TCP socket on `host:port` (port 0 = ephemeral) and
/// return {fd, bound port}.  Throws scmd::Error on failure.
std::pair<int, int> bind_listener(const std::string& host, int port);

/// One rank of a TCP cluster.  The constructor performs the full
/// bootstrap and blocks until the mesh is connected; the destructor
/// flushes pending sends, then tears the connections down.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(const TcpConfig& config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  int rank() const override { return config_.rank; }
  int num_ranks() const override { return config_.num_ranks; }

  void send(int dst, int tag, Bytes payload) override;
  Bytes recv(int src, int tag) override;

  void barrier() override;
  double allreduce_sum(double value) override;
  double allreduce_max(double value) override;

  TransportStats stats() const override;

  /// Abruptly close every socket without flushing queued sends —
  /// simulates this process crashing, for fault testing.  Peers observe
  /// a dropped connection; local pending recv() calls fail immediately.
  void hard_kill();

 private:
  struct Peer {
    int fd = -1;  ///< set before the threads start, then read-only
    std::thread reader;
    std::thread writer;
    Mutex m;
    CondVar cv;
    /// (tag, payload) frames awaiting the writer thread.
    std::deque<std::pair<int, Bytes>> outbox SCMD_GUARDED_BY(m);
    bool closing SCMD_GUARDED_BY(m) = false;
    std::atomic<bool> dead{false};
  };

  /// Mailbox shared by all reader threads and the owning rank.
  struct Inbox {
    mutable Mutex m;
    CondVar cv;
    /// (src, tag) -> pending payloads.
    std::map<std::pair<int, int>, std::deque<Bytes>> queues SCMD_GUARDED_BY(m);
    std::uint64_t depth SCMD_GUARDED_BY(m) = 0;
    std::uint64_t high_water SCMD_GUARDED_BY(m) = 0;
    std::vector<char> peer_dead SCMD_GUARDED_BY(m);
  };

  void rendezvous(int listen_port, std::vector<std::string>& hosts,
                  std::vector<int>& ports);
  void connect_mesh(int listen_fd, const std::vector<std::string>& hosts,
                    const std::vector<int>& ports);
  void reader_loop(int src);
  void writer_loop(int dst);
  void deposit(int src, int tag, Bytes payload);
  void mark_peer_dead(int src);
  double reduce(double value, bool is_max);
  Bytes recv_internal(int src);

  TcpConfig config_;
  std::vector<std::unique_ptr<Peer>> peers_;  // indexed by rank; self null
  Inbox inbox_;
  std::atomic<bool> killed_{false};

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> recv_stall_ns_{0};
};

}  // namespace scmd
