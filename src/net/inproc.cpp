#include "net/inproc.hpp"

#include <algorithm>
#include <chrono>

#include "support/error.hpp"

namespace scmd {

Cluster::Cluster(int num_ranks) : num_ranks_(num_ranks), boxes_(num_ranks) {
  SCMD_REQUIRE(num_ranks >= 1, "cluster needs at least one rank");
  transports_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r)
    transports_.push_back(std::make_unique<InProcTransport>(*this, r));
}

InProcTransport& Cluster::transport(int rank) {
  SCMD_REQUIRE(rank >= 0 && rank < num_ranks_, "transport for invalid rank");
  return *transports_[static_cast<std::size_t>(rank)];
}

void Cluster::send(int src, int dst, int tag, Bytes payload) {
  SCMD_REQUIRE(dst >= 0 && dst < num_ranks_, "send to invalid rank");
  {
    MutexLock lk(stats_m_);
    ++total_messages_;
    total_bytes_ += payload.size();
  }
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  {
    MutexLock lk(box.m);
    box.queues[{src, tag}].push_back(std::move(payload));
    ++box.depth;
    if (box.depth > box.high_water) box.high_water = box.depth;
  }
  box.cv.notify_all();
}

Bytes Cluster::recv(int dst, int src, int tag, std::uint64_t* stall_ns) {
  SCMD_REQUIRE(dst >= 0 && dst < num_ranks_, "recv on invalid rank");
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  MutexLock lk(box.m);
  auto& q = box.queues[{src, tag}];
  if (q.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    while (q.empty()) box.cv.wait(box.m);
    if (stall_ns != nullptr)
      *stall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
  }
  Bytes out = std::move(q.front());
  q.pop_front();
  --box.depth;
  return out;
}

double Cluster::reduce(double value, bool is_max) {
  MutexLock lk(coll_m_);
  const std::uint64_t my_gen = coll_gen_;
  if (!coll_started_) {
    coll_acc_ = value;
    coll_started_ = true;
  } else {
    coll_acc_ = is_max ? std::max(coll_acc_, value) : coll_acc_ + value;
  }
  if (++coll_count_ == num_ranks_) {
    coll_result_ = coll_acc_;
    coll_count_ = 0;
    coll_started_ = false;
    ++coll_gen_;
    coll_cv_.notify_all();
    return coll_result_;
  }
  while (coll_gen_ == my_gen) coll_cv_.wait(coll_m_);
  return coll_result_;
}

void Cluster::barrier() { reduce(0.0, false); }

double Cluster::allreduce_sum(double value) { return reduce(value, false); }

double Cluster::allreduce_max(double value) { return reduce(value, true); }

std::uint64_t Cluster::total_messages() const {
  MutexLock lk(stats_m_);
  return total_messages_;
}

std::uint64_t Cluster::total_bytes() const {
  MutexLock lk(stats_m_);
  return total_bytes_;
}

std::uint64_t Cluster::mailbox_high_water(int rank) const {
  SCMD_REQUIRE(rank >= 0 && rank < num_ranks_, "watermark for invalid rank");
  const Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  MutexLock lk(box.m);
  return box.high_water;
}

std::uint64_t Cluster::max_mailbox_depth() const {
  std::uint64_t max_depth = 0;
  for (int r = 0; r < num_ranks_; ++r)
    max_depth = std::max(max_depth, mailbox_high_water(r));
  return max_depth;
}

}  // namespace scmd
