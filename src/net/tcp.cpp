#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/tags.hpp"
#include "support/error.hpp"

// Frames are raw little-endian structs; a big-endian build would need a
// byte-swapping layer that nothing in this repo targets.
static_assert(std::endian::native == std::endian::little,
              "TcpTransport assumes a little-endian host");

namespace scmd {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// The rank-0-rooted collective protocol rides on the reserved
/// tags::kCollective channel; user tags must stay below it.
using tags::kCollective;

/// Sanity bound on a single frame — anything larger is a corrupt header.
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 32;

/// Wire header of every mesh frame: u32 tag, u64 payload length.
constexpr std::size_t kHeaderBytes = 12;

std::string errno_str() { return std::strerror(errno); }

std::uint64_t elapsed_ns(SteadyClock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - t0)
          .count());
}

/// Write exactly `size` bytes; returns false on a connection error.
bool write_full(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `size` bytes; returns false on EOF or error.
bool read_full(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void encode_header(char (&buf)[kHeaderBytes], int tag, std::uint64_t len) {
  const auto utag = static_cast<std::uint32_t>(tag);
  std::memcpy(buf, &utag, 4);
  std::memcpy(buf + 4, &len, 8);
}

void decode_header(const char (&buf)[kHeaderBytes], int& tag,
                   std::uint64_t& len) {
  std::uint32_t utag = 0;
  std::memcpy(&utag, buf, 4);
  std::memcpy(&len, buf + 4, 8);
  tag = static_cast<int>(utag);
}

sockaddr_in resolve(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  SCMD_REQUIRE(rc == 0 && res != nullptr,
               "cannot resolve host '" + host + "': " + gai_strerror(rc));
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Dial host:port, retrying with exponential backoff until `deadline`.
int connect_with_retry(const std::string& host, int port,
                       SteadyClock::time_point deadline) {
  const sockaddr_in addr = resolve(host, port);
  auto backoff = std::chrono::milliseconds(20);
  std::string last_error = "timed out before first attempt";
  do {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SCMD_REQUIRE(fd >= 0, "socket(): " + errno_str());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      set_nodelay(fd);
      return fd;
    }
    last_error = errno_str();
    ::close(fd);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
  } while (SteadyClock::now() < deadline);
  SCMD_REQUIRE(false, "connect to " + host + ":" + std::to_string(port) +
                          " failed: " + last_error);
  return -1;
}

/// Accept one connection before `deadline` or throw.
int accept_with_deadline(int listen_fd, SteadyClock::time_point deadline) {
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - SteadyClock::now());
    SCMD_REQUIRE(remaining.count() > 0,
                 "timed out waiting for a peer connection");
    pollfd pfd{listen_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0 && errno == EINTR) continue;
    SCMD_REQUIRE(rc >= 0, "poll(): " + errno_str());
    if (rc == 0) continue;  // re-check the deadline
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && (errno == EINTR || errno == ECONNABORTED)) continue;
    SCMD_REQUIRE(fd >= 0, "accept(): " + errno_str());
    set_nodelay(fd);
    return fd;
  }
}

void write_u32(std::vector<char>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

std::uint32_t read_u32_fd(int fd, const char* what) {
  std::uint32_t v = 0;
  SCMD_REQUIRE(read_full(fd, &v, 4),
               std::string("connection dropped while reading ") + what);
  return v;
}

std::string read_string_fd(int fd, std::size_t len) {
  std::string s(len, '\0');
  SCMD_REQUIRE(len == 0 || read_full(fd, s.data(), len),
               "connection dropped while reading an address string");
  return s;
}

}  // namespace

std::pair<int, int> bind_listener(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SCMD_REQUIRE(fd >= 0, "socket(): " + errno_str());
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = resolve(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 128) != 0) {
    const std::string err = errno_str();
    ::close(fd);
    SCMD_REQUIRE(false, "cannot listen on " + host + ":" +
                            std::to_string(port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  SCMD_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
                   0,
               "getsockname(): " + errno_str());
  return {fd, static_cast<int>(ntohs(bound.sin_port))};
}

TcpTransport::TcpTransport(const TcpConfig& config) : config_(config) {
  SCMD_REQUIRE(config_.num_ranks >= 1, "tcp transport needs >= 1 rank");
  SCMD_REQUIRE(config_.rank >= 0 && config_.rank < config_.num_ranks,
               "tcp rank out of range");
  const int P = config_.num_ranks;
  {
    // Single-threaded here, but the analysis doesn't know that.
    MutexLock lk(inbox_.m);
    inbox_.peer_dead.assign(static_cast<std::size_t>(P), 0);
  }
  peers_.resize(static_cast<std::size_t>(P));
  if (P == 1) return;  // no wire, only the self lane

  SCMD_REQUIRE(config_.rendezvous_port > 0 || config_.rendezvous_fd >= 0,
               "tcp transport needs a rendezvous port");
  const auto [listen_fd, listen_port] = bind_listener("0.0.0.0", 0);
  std::vector<std::string> hosts(static_cast<std::size_t>(P));
  std::vector<int> ports(static_cast<std::size_t>(P), 0);
  try {
    rendezvous(listen_port, hosts, ports);
    connect_mesh(listen_fd, hosts, ports);
  } catch (...) {
    ::close(listen_fd);
    for (auto& p : peers_) {
      if (p && p->fd >= 0) ::close(p->fd);
    }
    throw;
  }
  ::close(listen_fd);

  for (int r = 0; r < P; ++r) {
    if (r == config_.rank) continue;
    Peer& peer = *peers_[static_cast<std::size_t>(r)];
    peer.reader = std::thread([this, r] { reader_loop(r); });
    peer.writer = std::thread([this, r] { writer_loop(r); });
  }
}

void TcpTransport::rendezvous(int listen_port, std::vector<std::string>& hosts,
                              std::vector<int>& ports) {
  const int P = config_.num_ranks;
  const auto deadline =
      SteadyClock::now() +
      std::chrono::milliseconds(
          static_cast<long long>(config_.connect_timeout_s * 1000.0));
  if (config_.rank == 0) {
    int rfd = config_.rendezvous_fd;
    if (rfd < 0)
      rfd = bind_listener(config_.rendezvous_host, config_.rendezvous_port)
                .first;
    hosts[0] = config_.advertise_host;
    ports[0] = listen_port;
    std::vector<int> conns;
    conns.reserve(static_cast<std::size_t>(P - 1));
    try {
      // Collect every rank's announcement: {rank, listener port, host}.
      for (int i = 0; i < P - 1; ++i) {
        const int fd = accept_with_deadline(rfd, deadline);
        conns.push_back(fd);
        const auto r = static_cast<int>(read_u32_fd(fd, "a rendezvous rank"));
        SCMD_REQUIRE(r > 0 && r < P && ports[static_cast<std::size_t>(r)] == 0,
                     "rendezvous: invalid or duplicate rank " +
                         std::to_string(r));
        ports[static_cast<std::size_t>(r)] =
            static_cast<int>(read_u32_fd(fd, "a rendezvous port"));
        hosts[static_cast<std::size_t>(r)] = read_string_fd(
            fd, read_u32_fd(fd, "a rendezvous host length"));
      }
      // Broadcast the completed address table.
      std::vector<char> table;
      for (int r = 0; r < P; ++r) {
        write_u32(table,
                  static_cast<std::uint32_t>(ports[static_cast<std::size_t>(r)]));
        const std::string& h = hosts[static_cast<std::size_t>(r)];
        write_u32(table, static_cast<std::uint32_t>(h.size()));
        table.insert(table.end(), h.begin(), h.end());
      }
      for (const int fd : conns)
        SCMD_REQUIRE(write_full(fd, table.data(), table.size()),
                     "rendezvous: failed to send the address table");
    } catch (...) {
      for (const int fd : conns) ::close(fd);
      ::close(rfd);
      throw;
    }
    for (const int fd : conns) ::close(fd);
    ::close(rfd);
    return;
  }
  // Ranks 1..P-1: announce ourselves, receive the table.
  const int fd = connect_with_retry(config_.rendezvous_host,
                                    config_.rendezvous_port, deadline);
  try {
    std::vector<char> hello;
    write_u32(hello, static_cast<std::uint32_t>(config_.rank));
    write_u32(hello, static_cast<std::uint32_t>(listen_port));
    write_u32(hello, static_cast<std::uint32_t>(config_.advertise_host.size()));
    hello.insert(hello.end(), config_.advertise_host.begin(),
                 config_.advertise_host.end());
    SCMD_REQUIRE(write_full(fd, hello.data(), hello.size()),
                 "rendezvous: failed to announce to rank 0");
    for (int r = 0; r < P; ++r) {
      ports[static_cast<std::size_t>(r)] =
          static_cast<int>(read_u32_fd(fd, "the address table"));
      hosts[static_cast<std::size_t>(r)] =
          read_string_fd(fd, read_u32_fd(fd, "the address table"));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void TcpTransport::connect_mesh(int listen_fd,
                                const std::vector<std::string>& hosts,
                                const std::vector<int>& ports) {
  const auto deadline =
      SteadyClock::now() +
      std::chrono::milliseconds(
          static_cast<long long>(config_.connect_timeout_s * 1000.0));
  // Dial every higher rank's listener (its listener exists since before
  // the rendezvous, so the connection parks in its backlog at worst).
  for (int r = config_.rank + 1; r < config_.num_ranks; ++r) {
    const int fd = connect_with_retry(hosts[static_cast<std::size_t>(r)],
                                      ports[static_cast<std::size_t>(r)],
                                      deadline);
    const auto me = static_cast<std::uint32_t>(config_.rank);
    SCMD_REQUIRE(write_full(fd, &me, 4), "mesh handshake send failed");
    auto peer = std::make_unique<Peer>();
    peer->fd = fd;
    peers_[static_cast<std::size_t>(r)] = std::move(peer);
  }
  // Accept one connection from every lower rank.
  for (int i = 0; i < config_.rank; ++i) {
    const int fd = accept_with_deadline(listen_fd, deadline);
    const auto r = static_cast<int>(read_u32_fd(fd, "a mesh handshake"));
    SCMD_REQUIRE(r >= 0 && r < config_.rank &&
                     peers_[static_cast<std::size_t>(r)] == nullptr,
                 "mesh handshake: invalid or duplicate rank " +
                     std::to_string(r));
    auto peer = std::make_unique<Peer>();
    peer->fd = fd;
    peers_[static_cast<std::size_t>(r)] = std::move(peer);
  }
}

TcpTransport::~TcpTransport() {
  for (std::size_t r = 0; r < peers_.size(); ++r) {
    Peer* peer = peers_[r].get();
    if (peer == nullptr) continue;
    {
      MutexLock lk(peer->m);
      peer->closing = true;
    }
    peer->cv.notify_all();
    if (peer->writer.joinable()) peer->writer.join();  // flushes the outbox
    // FIN after the flushed data; our blocked reader wakes with EOF.
    ::shutdown(peer->fd, SHUT_RDWR);
    if (peer->reader.joinable()) peer->reader.join();
    ::close(peer->fd);
  }
}

void TcpTransport::deposit(int src, int tag, Bytes payload) {
  {
    MutexLock lk(inbox_.m);
    inbox_.queues[{src, tag}].push_back(std::move(payload));
    ++inbox_.depth;
    if (inbox_.depth > inbox_.high_water) inbox_.high_water = inbox_.depth;
  }
  inbox_.cv.notify_all();
}

void TcpTransport::mark_peer_dead(int src) {
  Peer* peer = peers_[static_cast<std::size_t>(src)].get();
  if (peer != nullptr) {
    peer->dead.store(true);
    peer->cv.notify_all();
  }
  {
    MutexLock lk(inbox_.m);
    inbox_.peer_dead[static_cast<std::size_t>(src)] = 1;
  }
  inbox_.cv.notify_all();
}

void TcpTransport::reader_loop(int src) {
  const int fd = peers_[static_cast<std::size_t>(src)]->fd;
  for (;;) {
    char header[kHeaderBytes];
    if (!read_full(fd, header, sizeof(header))) break;
    int tag = 0;
    std::uint64_t len = 0;
    decode_header(header, tag, len);
    if (len > kMaxFrameBytes) break;  // corrupt header; drop the peer
    Bytes payload(len);
    if (len > 0 && !read_full(fd, payload.data(), len)) break;
    deposit(src, tag, std::move(payload));
  }
  mark_peer_dead(src);
}

void TcpTransport::writer_loop(int dst) {
  Peer& peer = *peers_[static_cast<std::size_t>(dst)];
  MutexLock lk(peer.m);
  for (;;) {
    while (peer.outbox.empty() && !peer.closing && !peer.dead.load())
      peer.cv.wait(peer.m);
    if (peer.dead.load()) return;
    if (peer.outbox.empty()) {
      if (peer.closing) return;
      continue;
    }
    auto [tag, payload] = std::move(peer.outbox.front());
    peer.outbox.pop_front();
    lk.unlock();
    char header[kHeaderBytes];
    encode_header(header, tag, payload.size());
    const bool ok = write_full(peer.fd, header, sizeof(header)) &&
                    (payload.empty() ||
                     write_full(peer.fd, payload.data(), payload.size()));
    if (!ok) {
      mark_peer_dead(dst);
      return;
    }
    lk.lock();
  }
}

void TcpTransport::send(int dst, int tag, Bytes payload) {
  SCMD_REQUIRE(dst >= 0 && dst < config_.num_ranks, "send to invalid rank");
  SCMD_REQUIRE(tag >= 0 && tag < kCollective,
               "tag " + std::to_string(tag) + " is reserved");
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
  if (dst == config_.rank) {
    deposit(dst, tag, std::move(payload));
    return;
  }
  Peer& peer = *peers_[static_cast<std::size_t>(dst)];
  SCMD_REQUIRE(!peer.dead.load(), "send to rank " + std::to_string(dst) +
                                      ": connection lost");
  {
    MutexLock lk(peer.m);
    peer.outbox.emplace_back(tag, std::move(payload));
  }
  peer.cv.notify_all();
}

Bytes TcpTransport::recv(int src, int tag) {
  SCMD_REQUIRE(src >= 0 && src < config_.num_ranks, "recv from invalid rank");
  const bool bounded = config_.recv_timeout_s > 0.0;
  const auto deadline =
      SteadyClock::now() +
      std::chrono::milliseconds(
          static_cast<long long>(config_.recv_timeout_s * 1000.0));
  const auto t0 = SteadyClock::now();
  MutexLock lk(inbox_.m);
  auto& q = inbox_.queues[{src, tag}];
  for (;;) {
    if (!q.empty()) {
      Bytes out = std::move(q.front());
      q.pop_front();
      --inbox_.depth;
      messages_received_.fetch_add(1, std::memory_order_relaxed);
      bytes_received_.fetch_add(out.size(), std::memory_order_relaxed);
      recv_stall_ns_.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
      return out;
    }
    // Dead peer with an empty queue: nothing more can ever arrive.
    SCMD_REQUIRE(!inbox_.peer_dead[static_cast<std::size_t>(src)],
                 "recv from rank " + std::to_string(src) +
                     ": connection lost (peer died?)");
    if (bounded) {
      SCMD_REQUIRE(SteadyClock::now() < deadline,
                   "recv from rank " + std::to_string(src) + " tag " +
                       std::to_string(tag) + " timed out after " +
                       std::to_string(config_.recv_timeout_s) + " s");
      inbox_.cv.wait_until(inbox_.m, deadline);
    } else {
      inbox_.cv.wait(inbox_.m);
    }
  }
}

double TcpTransport::reduce(double value, bool is_max) {
  // Rank-0-rooted reduce + broadcast on the reserved tag.  All ranks
  // enter collectives in the same order and per-(src, dst, tag) FIFO
  // holds, so consecutive collectives cannot interleave.
  const int P = config_.num_ranks;
  if (P == 1) return value;
  auto pack1 = [](double v) { return pack(std::vector<double>{v}); };
  auto post = [this](int dst, Bytes b) {
    // Bypass the public-tag check; stats still count the traffic.
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(b.size(), std::memory_order_relaxed);
    Peer& peer = *peers_[static_cast<std::size_t>(dst)];
    SCMD_REQUIRE(!peer.dead.load(), "collective: connection to rank " +
                                        std::to_string(dst) + " lost");
    {
      MutexLock lk(peer.m);
      peer.outbox.emplace_back(kCollective, std::move(b));
    }
    peer.cv.notify_all();
  };
  auto fetch = [this](int src) {
    // recv() validates only the rank, not the tag, so reuse it directly.
    const std::vector<double> v = unpack<double>(recv_internal(src));
    SCMD_REQUIRE(v.size() == 1, "collective: malformed reduction frame");
    return v[0];
  };
  if (config_.rank == 0) {
    double acc = value;
    for (int r = 1; r < P; ++r) {
      const double v = fetch(r);
      acc = is_max ? std::max(acc, v) : acc + v;
    }
    const Bytes result = pack1(acc);
    for (int r = 1; r < P; ++r) post(r, result);
    return acc;
  }
  post(0, pack1(value));
  return fetch(0);
}

Bytes TcpTransport::recv_internal(int src) {
  // recv() only rejects out-of-range ranks, so the reserved tag can ride
  // through it and inherit the timeout/fault behavior.
  return recv(src, kCollective);
}

void TcpTransport::barrier() { reduce(0.0, false); }

double TcpTransport::allreduce_sum(double value) {
  return reduce(value, false);
}

double TcpTransport::allreduce_max(double value) {
  return reduce(value, true);
}

TransportStats TcpTransport::stats() const {
  TransportStats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.messages_received = messages_received_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.recv_stall_ns = recv_stall_ns_.load(std::memory_order_relaxed);
  MutexLock lk(inbox_.m);
  s.max_mailbox_depth = inbox_.high_water;
  return s;
}

void TcpTransport::hard_kill() {
  killed_.store(true);
  for (std::size_t r = 0; r < peers_.size(); ++r) {
    Peer* peer = peers_[r].get();
    if (peer == nullptr) continue;
    peer->dead.store(true);
    ::shutdown(peer->fd, SHUT_RDWR);
    peer->cv.notify_all();
  }
  {
    MutexLock lk(inbox_.m);
    for (auto& dead : inbox_.peer_dead) dead = 1;
  }
  inbox_.cv.notify_all();
}

}  // namespace scmd
