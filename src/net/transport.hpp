#pragma once

/// \file transport.hpp
/// Pluggable communication transport for the SC-MD cluster runtime.
///
/// Every parallel protocol in this repo — octant 3-stage forwarded
/// import, full-shell 6-stage import, reverse force write-back, staged
/// migration, the collective balance/cache decisions — talks to the
/// cluster through the MPI-like semantics defined here:
///
///  - send() is asynchronous and never blocks the sender;
///  - recv() blocks until a message with the given (src, tag) arrives
///    (backends may bound the wait and surface a timeout as an error);
///  - message order is preserved per (src, dst, tag);
///  - collectives (barrier, allreduce) must be entered by every rank,
///    in the same order.
///
/// Backends:
///  - InProcTransport (net/inproc.hpp): ranks are threads of one
///    process, messages move through shared-memory mailboxes.  The
///    testing and single-node workhorse.
///  - TcpTransport (net/tcp.hpp): one process per rank, length-prefixed
///    frames over TCP sockets, rank-0 rendezvous for address exchange.
///    The multi-process / multi-host backend.
///
/// The engine layers never see a backend type: src/parallel adapts a
/// Transport into its per-rank Comm handle, so RankEngine, HaloExchange,
/// Migrator, the balancer protocol, and check::Channel run unchanged on
/// either backend (docs/TRANSPORT.md).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

namespace scmd {

/// Payload type for messages.
using Bytes = std::vector<std::byte>;

/// Pack a trivially copyable array into a byte payload.
template <class T>
Bytes pack(const std::vector<T>& items) {
  static_assert(std::is_trivially_copyable_v<T>);
  Bytes out(items.size() * sizeof(T));
  if (!items.empty()) std::memcpy(out.data(), items.data(), out.size());
  return out;
}

/// Unpack a byte payload produced by pack<T>.  A payload whose size is
/// not a whole number of T records cannot have come from pack<T> —
/// truncating it would silently drop the trailing bytes of a corrupt or
/// mis-tagged message, so it throws instead.
template <class T>
std::vector<T> unpack(const Bytes& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  SCMD_REQUIRE(bytes.size() % sizeof(T) == 0,
               "unpack: payload of " + std::to_string(bytes.size()) +
                   " bytes is not a whole number of " +
                   std::to_string(sizeof(T)) + "-byte records");
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// Cumulative per-rank transport statistics.  Sent counts are recorded
/// when the message is accepted (enqueue), received counts when it is
/// taken off the wire/mailbox; recv_stall_ns is the time this rank spent
/// blocked in recv() waiting for a message that had not arrived yet;
/// max_mailbox_depth is the high watermark of messages queued for this
/// rank but not yet received — the observable for the unbounded-mailbox
/// assumption (docs/TRANSPORT.md).
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t recv_stall_ns = 0;
  std::uint64_t max_mailbox_depth = 0;

  TransportStats& operator+=(const TransportStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    bytes_received += o.bytes_received;
    recv_stall_ns += o.recv_stall_ns;
    if (o.max_mailbox_depth > max_mailbox_depth)
      max_mailbox_depth = o.max_mailbox_depth;
    return *this;
  }
};

/// One rank's endpoint onto the cluster.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int num_ranks() const = 0;

  /// Deposit a message for `dst`; never blocks on the receiver.
  virtual void send(int dst, int tag, Bytes payload) = 0;

  /// Blocking receive of the next message from (src, tag).  Backends
  /// with a receive timeout throw scmd::Error when it expires or when
  /// the peer is known dead — a fault is an error, never a hang.
  virtual Bytes recv(int src, int tag) = 0;

  /// Generation barrier; all ranks must call.
  virtual void barrier() = 0;

  /// Sum reduction over all ranks; all ranks must call, all get the sum.
  virtual double allreduce_sum(double value) = 0;

  /// Max reduction over all ranks.
  virtual double allreduce_max(double value) = 0;

  /// Snapshot of this rank's cumulative statistics.
  virtual TransportStats stats() const = 0;
};

}  // namespace scmd
