#pragma once

/// \file domain.hpp
/// Per-processor cell domain with ghost halo.
///
/// A CellDomain is the Ω of the paper (Sec. 3.1.1/3.1.3) from one rank's
/// point of view: a brick of *owned* cells, surrounded by ghost cells
/// holding imported copies of remote (or periodic-image) atoms.  Ghost atom
/// positions are stored pre-shifted into the domain's unwrapped coordinate
/// frame, so tuple filtering uses plain Euclidean distances — no min-image
/// logic on the hot path.
///
/// Atoms are stored binned by local cell (counting sort): cell c's atoms
/// occupy the contiguous index range [cell_begin(c), cell_end(c)) of the
/// position/type/gid arrays.  The serial engine and every parallel rank
/// share this one layout; only how the halo is filled differs.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cell/grid.hpp"
#include "geom/int3.hpp"
#include "geom/vec3.hpp"
#include "pattern/pattern.hpp"

namespace scmd {

/// One atom record handed to CellDomain::build, already assigned to a
/// local cell coordinate (ghosts included, positions pre-shifted).
struct DomainAtom {
  Vec3 pos;
  int type = 0;
  std::int64_t gid = 0;  ///< global atom id — must be globally consistent,
                         ///< it drives the cross-rank orientation guard
  int local_ref = 0;     ///< rank-local atom index, for force folding
  Int3 local_cell;       ///< local cell coordinate in [0, ext())
  bool start = true;     ///< eligible to begin tuple chains (level 0); the
                         ///< start flags must form a global partition so
                         ///< every tuple is generated exactly once
};

/// Halo margins required to evaluate a pattern: the enumerator reads cells
/// home + v for every coverage offset v, so the local lattice must extend
/// max(0, -min_v) below and max(0, +max_v) above the owned brick per axis.
struct HaloSpec {
  Int3 lo;  ///< ghost layers below the owned brick (componentwise >= 0)
  Int3 hi;  ///< ghost layers above the owned brick

  bool operator==(const HaloSpec&) const = default;
};

/// Halo margins needed by one pattern.
HaloSpec halo_for(const Pattern& psi);

/// Componentwise union of two halo specs (a domain serving several
/// patterns, e.g. pair + triplet, needs the larger margin of each).
HaloSpec merge(const HaloSpec& a, const HaloSpec& b);

/// A rank-local brick of cells plus ghost halo, with binned atom storage.
class CellDomain {
 public:
  CellDomain() = default;

  /// Geometry-only construction; call build() to fill atoms.
  /// `owned_lo` is the global cell coordinate of the brick's lower corner.
  CellDomain(const CellGrid& grid, const Int3& owned_lo,
             const Int3& owned_dims, const HaloSpec& halo);

  const CellGrid& grid() const { return grid_; }
  const Int3& owned_lo() const { return owned_lo_; }
  const Int3& owned_dims() const { return owned_dims_; }
  const HaloSpec& halo() const { return halo_; }

  /// Local lattice extent: halo.lo + owned_dims + halo.hi.
  const Int3& ext() const { return ext_; }
  long long num_local_cells() const { return ext_.volume(); }

  /// Local coordinate of the first owned cell (== halo.lo).
  const Int3& owned_base() const { return halo_.lo; }

  bool is_owned_cell(const Int3& local) const;

  /// Unwrapped global cell coordinate of a local cell.
  Int3 global_coord(const Int3& local) const {
    return owned_lo_ - halo_.lo + local;
  }

  /// Local coordinate for an unwrapped global coordinate (may fall outside
  /// the local lattice; caller checks with in_local()).
  Int3 local_coord(const Int3& global) const {
    return global - owned_lo_ + halo_.lo;
  }

  bool in_local(const Int3& local) const;

  long long cell_index(const Int3& local) const;
  Int3 cell_coord(long long index) const;

  /// --- Atom storage (valid after build()) ----------------------------

  /// Counting-sort the given records into cells.  Records must carry local
  /// cell coordinates inside the local lattice.
  void build(std::span<const DomainAtom> atoms);

  int num_atoms() const { return static_cast<int>(pos_.size()); }
  int num_owned_atoms() const { return num_owned_atoms_; }

  /// Number of chain-start atoms in owned cells.  Equals num_owned_atoms()
  /// when every record was built with start == true (the serial case).
  int num_start_atoms() const { return num_start_atoms_; }

  std::span<const Vec3> positions() const { return pos_; }
  std::span<const int> types() const { return type_; }
  std::span<const std::int64_t> gids() const { return gid_; }
  std::span<const int> local_refs() const { return local_ref_; }

  /// Atom index range [first, last) of a local cell.
  std::pair<int, int> cell_range(long long cell_index) const {
    return {cell_start_[static_cast<std::size_t>(cell_index)],
            cell_start_[static_cast<std::size_t>(cell_index) + 1]};
  }

  /// Chain-start atom index range [first, last) of a local cell.  Start
  /// atoms are binned first within each cell, so this is a prefix of
  /// cell_range().  Level-0 enumeration loops use this range; continuation
  /// levels use the full cell_range().
  std::pair<int, int> cell_start_range(long long cell_index) const {
    return {cell_start_[static_cast<std::size_t>(cell_index)],
            cell_mid_[static_cast<std::size_t>(cell_index)]};
  }

  bool atom_is_start(int atom) const {
    return atom < cell_mid_[static_cast<std::size_t>(cell_of_atom(atom))];
  }

  /// Local cell index of a binned atom.
  long long cell_of_atom(int atom) const {
    return atom_cell_[static_cast<std::size_t>(atom)];
  }

  bool atom_is_owned(int atom) const {
    return is_owned_cell(cell_coord(cell_of_atom(atom)));
  }

 private:
  CellGrid grid_;
  Int3 owned_lo_;
  Int3 owned_dims_{1, 1, 1};
  HaloSpec halo_;
  Int3 ext_{1, 1, 1};

  std::vector<int> cell_start_;       // ext volume + 1
  std::vector<int> cell_mid_;         // ext volume; end of each cell's starts
  std::vector<Vec3> pos_;             // binned order
  std::vector<int> type_;             // binned order
  std::vector<std::int64_t> gid_;     // binned order
  std::vector<int> local_ref_;        // binned order -> rank-local index
  std::vector<long long> atom_cell_;  // binned order -> local cell index
  int num_owned_atoms_ = 0;
  int num_start_atoms_ = 0;
};

/// Atoms pre-binned by global cell; lets brick domains be filled in
/// O(brick + halo) instead of O(N) per rank.
struct GlobalBins {
  CellGrid grid;
  std::vector<std::vector<int>> cells;  ///< atom ids per global cell
};

/// Bin atom ids by global cell coordinate.
GlobalBins bin_globally(const CellGrid& grid, std::span<const Vec3> pos);

/// Build one rank's domain directly from globally binned atoms ("oracle"
/// halo fill): owned cells take atoms verbatim (positions wrapped), ghost
/// cells take periodic/remote images with positions shifted into the
/// domain's unwrapped frame.  gid is the global atom id; local_ref is too
/// (callers running the real message-passing path build domains themselves
/// with rank-local refs).
CellDomain make_brick_domain(const GlobalBins& bins, std::span<const Vec3> pos,
                             std::span<const int> type, const Int3& owned_lo,
                             const Int3& owned_dims, const HaloSpec& halo);

/// Half-open axis-aligned ownership region in wrapped coordinates.  Used by
/// non-uniform decompositions whose cut planes need not coincide with cell
/// boundaries: a brick then covers every cell *intersecting* the region, and
/// chain-start eligibility is decided per atom by region membership.
struct OwnedRegion {
  Vec3 lo;
  Vec3 hi;

  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }
};

/// Like make_brick_domain above, but marks as chain starts only the
/// primary-image atoms of owned cells whose wrapped position falls inside
/// `region`.  Because the regions of all ranks partition the box, every
/// atom is a start on exactly one rank even when bricks overlap at cut
/// planes that straddle cells.
CellDomain make_brick_domain(const GlobalBins& bins, std::span<const Vec3> pos,
                             std::span<const int> type, const Int3& owned_lo,
                             const Int3& owned_dims, const HaloSpec& halo,
                             const OwnedRegion& region);

/// Build a single-rank domain covering the entire grid, with ghost cells
/// filled by periodic images of the owned atoms.  This is the serial-MD
/// view: halo exchange with oneself.  gids are the indices into `pos`.
CellDomain make_serial_domain(const CellGrid& grid, const HaloSpec& halo,
                              std::span<const Vec3> pos,
                              std::span<const int> type);

}  // namespace scmd
