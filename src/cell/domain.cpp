#include "cell/domain.hpp"

#include "pattern/analysis.hpp"
#include "support/error.hpp"

namespace scmd {

HaloSpec halo_for(const Pattern& psi) {
  HaloSpec h;
  for (const Int3& v : cell_coverage(psi)) {
    h.lo = Int3::max(h.lo, -v);
    h.hi = Int3::max(h.hi, v);
  }
  h.lo = Int3::max(h.lo, {0, 0, 0});
  h.hi = Int3::max(h.hi, {0, 0, 0});
  return h;
}

HaloSpec merge(const HaloSpec& a, const HaloSpec& b) {
  return {Int3::max(a.lo, b.lo), Int3::max(a.hi, b.hi)};
}

CellDomain::CellDomain(const CellGrid& grid, const Int3& owned_lo,
                       const Int3& owned_dims, const HaloSpec& halo)
    : grid_(grid), owned_lo_(owned_lo), owned_dims_(owned_dims), halo_(halo) {
  SCMD_REQUIRE(owned_dims.x >= 1 && owned_dims.y >= 1 && owned_dims.z >= 1,
               "owned brick must be non-empty");
  SCMD_REQUIRE(halo.lo.x >= 0 && halo.lo.y >= 0 && halo.lo.z >= 0 &&
                   halo.hi.x >= 0 && halo.hi.y >= 0 && halo.hi.z >= 0,
               "halo margins must be non-negative");
  ext_ = halo.lo + owned_dims + halo.hi;
  cell_start_.assign(static_cast<std::size_t>(ext_.volume()) + 1, 0);
  cell_mid_.assign(static_cast<std::size_t>(ext_.volume()), 0);
}

bool CellDomain::is_owned_cell(const Int3& local) const {
  for (int a = 0; a < 3; ++a) {
    if (local[a] < halo_.lo[a] || local[a] >= halo_.lo[a] + owned_dims_[a])
      return false;
  }
  return true;
}

bool CellDomain::in_local(const Int3& local) const {
  return local.x >= 0 && local.x < ext_.x && local.y >= 0 &&
         local.y < ext_.y && local.z >= 0 && local.z < ext_.z;
}

long long CellDomain::cell_index(const Int3& local) const {
  SCMD_ASSERT(in_local(local));
  return (static_cast<long long>(local.z) * ext_.y + local.y) * ext_.x +
         local.x;
}

Int3 CellDomain::cell_coord(long long index) const {
  const int x = static_cast<int>(index % ext_.x);
  const long long rest = index / ext_.x;
  return {x, static_cast<int>(rest % ext_.y), static_cast<int>(rest / ext_.y)};
}

void CellDomain::build(std::span<const DomainAtom> atoms) {
  const std::size_t ncell = static_cast<std::size_t>(ext_.volume());
  cell_start_.assign(ncell + 1, 0);
  pos_.resize(atoms.size());
  type_.resize(atoms.size());
  gid_.resize(atoms.size());
  local_ref_.resize(atoms.size());
  atom_cell_.resize(atoms.size());

  // Counting sort by local cell, chain starts first within each cell.
  std::vector<int> count(ncell, 0);
  std::vector<int> nstart(ncell, 0);
  std::vector<long long> cell_of(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    SCMD_REQUIRE(in_local(atoms[i].local_cell),
                 "atom assigned outside the local lattice");
    cell_of[i] = cell_index(atoms[i].local_cell);
    ++count[static_cast<std::size_t>(cell_of[i])];
    if (atoms[i].start) ++nstart[static_cast<std::size_t>(cell_of[i])];
  }
  int running = 0;
  for (std::size_t c = 0; c < ncell; ++c) {
    cell_start_[c] = running;
    cell_mid_[c] = running + nstart[c];
    running += count[c];
  }
  cell_start_[ncell] = running;

  // Starts fill from cell_start_, the rest from cell_mid_; insertion order
  // is preserved within each group, so all-start inputs reproduce the
  // legacy layout exactly.
  std::vector<int> fill_start(cell_start_.begin(), cell_start_.end() - 1);
  std::vector<int> fill_rest(cell_mid_);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const std::size_t c = static_cast<std::size_t>(cell_of[i]);
    const std::size_t slot =
        static_cast<std::size_t>(atoms[i].start ? fill_start[c]++
                                                : fill_rest[c]++);
    pos_[slot] = atoms[i].pos;
    type_[slot] = atoms[i].type;
    gid_[slot] = atoms[i].gid;
    local_ref_[slot] = atoms[i].local_ref;
    atom_cell_[slot] = cell_of[i];
  }

  num_owned_atoms_ = 0;
  num_start_atoms_ = 0;
  for (std::size_t c = 0; c < ncell; ++c) {
    if (is_owned_cell(cell_coord(static_cast<long long>(c)))) {
      num_owned_atoms_ += count[c];
      num_start_atoms_ += nstart[c];
    }
  }
}

GlobalBins bin_globally(const CellGrid& grid, std::span<const Vec3> pos) {
  GlobalBins bins;
  bins.grid = grid;
  bins.cells.resize(static_cast<std::size_t>(grid.num_cells()));
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const Int3 q = grid.coord_for_position(pos[i]);
    bins.cells[static_cast<std::size_t>(grid.linear_index(q))].push_back(
        static_cast<int>(i));
  }
  return bins;
}

namespace {

CellDomain brick_domain_impl(const GlobalBins& bins, std::span<const Vec3> pos,
                             std::span<const int> type, const Int3& owned_lo,
                             const Int3& owned_dims, const HaloSpec& halo,
                             const OwnedRegion* region) {
  SCMD_REQUIRE(pos.size() == type.size(), "pos/type size mismatch");
  const CellGrid& grid = bins.grid;
  // Ghosts are built by wrapping local coordinates onto the global grid;
  // a halo wider than the grid would alias more than one image per cell.
  const Int3 dims = grid.dims();
  SCMD_REQUIRE(halo.lo.x <= dims.x && halo.hi.x <= dims.x &&
                   halo.lo.y <= dims.y && halo.hi.y <= dims.y &&
                   halo.lo.z <= dims.z && halo.hi.z <= dims.z,
               "halo exceeds grid dims; enlarge the box or cells");

  CellDomain dom(grid, owned_lo, owned_dims, halo);

  std::vector<DomainAtom> records;
  const Int3 ext = dom.ext();
  for (int lz = 0; lz < ext.z; ++lz) {
    for (int ly = 0; ly < ext.y; ++ly) {
      for (int lx = 0; lx < ext.x; ++lx) {
        const Int3 local{lx, ly, lz};
        const Int3 global = dom.global_coord(local);  // may be out of range
        const Int3 wrapped = grid.wrap_coord(global);
        const Vec3 shift = grid.image_shift(global);
        const bool shifted = (wrapped != global);
        const bool owned_cell = dom.is_owned_cell(local);
        for (int i : bins.cells[static_cast<std::size_t>(
                 grid.linear_index(wrapped))]) {
          DomainAtom a;
          // Primary-image cells take the wrapped position; periodic-image
          // cells get the copy shifted into the unwrapped frame.
          const Vec3 wpos = grid.box().wrap(pos[static_cast<std::size_t>(i)]);
          a.pos = wpos;
          if (shifted) a.pos += shift;
          a.type = type[static_cast<std::size_t>(i)];
          a.gid = i;
          a.local_ref = i;
          a.local_cell = local;
          if (region != nullptr)
            a.start = owned_cell && !shifted && region->contains(wpos);
          records.push_back(a);
        }
      }
    }
  }
  dom.build(records);
  return dom;
}

}  // namespace

CellDomain make_brick_domain(const GlobalBins& bins, std::span<const Vec3> pos,
                             std::span<const int> type, const Int3& owned_lo,
                             const Int3& owned_dims, const HaloSpec& halo) {
  return brick_domain_impl(bins, pos, type, owned_lo, owned_dims, halo,
                           nullptr);
}

CellDomain make_brick_domain(const GlobalBins& bins, std::span<const Vec3> pos,
                             std::span<const int> type, const Int3& owned_lo,
                             const Int3& owned_dims, const HaloSpec& halo,
                             const OwnedRegion& region) {
  return brick_domain_impl(bins, pos, type, owned_lo, owned_dims, halo,
                           &region);
}

CellDomain make_serial_domain(const CellGrid& grid, const HaloSpec& halo,
                              std::span<const Vec3> pos,
                              std::span<const int> type) {
  return make_brick_domain(bin_globally(grid, pos), pos, type, {0, 0, 0},
                           grid.dims(), halo);
}

}  // namespace scmd
