#pragma once

/// \file grid.hpp
/// Global cell lattice over a periodic simulation box.
///
/// Cell-based MD (paper Sec. 3.1.1) divides the box into a lattice of
/// Lx × Ly × Lz cells with side lengths >= the interaction cutoff, so any
/// chain step of a range-limited tuple crosses at most one cell boundary
/// per axis.  CellGrid maps positions to cell coordinates and wraps cell
/// coordinates periodically.

#include "geom/box.hpp"
#include "geom/int3.hpp"

namespace scmd {

/// Immutable description of the global cell lattice.
class CellGrid {
 public:
  CellGrid() = default;

  /// Build the finest lattice whose cell sides are >= min_cell_size.
  /// Each axis gets floor(L_axis / min_cell_size) cells (at least 1).
  CellGrid(const Box& box, double min_cell_size);

  /// Build with explicit cell counts per axis.
  static CellGrid with_dims(const Box& box, const Int3& dims);

  const Box& box() const { return box_; }
  const Int3& dims() const { return dims_; }
  long long num_cells() const { return dims_.volume(); }

  /// Cell side lengths (box length / cell count per axis).
  const Vec3& cell_lengths() const { return cell_len_; }

  /// Smallest cell side — upper bound on usable interaction cutoffs.
  double min_cell_length() const;

  /// Linear index of an in-range cell coordinate (x-fastest ordering).
  long long linear_index(const Int3& q) const;

  /// Inverse of linear_index.
  Int3 coord_of(long long idx) const;

  /// Periodic wrap of an arbitrary cell coordinate into [0, dims).
  Int3 wrap_coord(const Int3& q) const { return wrap(q, dims_); }

  /// Cell coordinate containing a position.  The position is wrapped into
  /// the primary box image first, so any finite position is valid.
  Int3 coord_for_position(const Vec3& r) const;

  /// Cartesian shift that maps the primary image of cell wrap_coord(q)
  /// onto the unwrapped coordinate q: position_of_image = pos + shift.
  /// Used when materializing periodic ghost copies.
  Vec3 image_shift(const Int3& q) const;

  bool operator==(const CellGrid&) const = default;

 private:
  Box box_;
  Int3 dims_{1, 1, 1};
  Vec3 cell_len_{1.0, 1.0, 1.0};
};

}  // namespace scmd
