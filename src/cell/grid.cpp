#include "cell/grid.hpp"

#include <cmath>

#include "support/error.hpp"

namespace scmd {

CellGrid::CellGrid(const Box& box, double min_cell_size) : box_(box) {
  SCMD_REQUIRE(min_cell_size > 0.0, "cell size must be positive");
  for (int a = 0; a < 3; ++a) {
    const int n = static_cast<int>(std::floor(box.length(a) / min_cell_size));
    dims_[a] = n < 1 ? 1 : n;
    cell_len_[a] = box.length(a) / dims_[a];
  }
}

CellGrid CellGrid::with_dims(const Box& box, const Int3& dims) {
  SCMD_REQUIRE(dims.x >= 1 && dims.y >= 1 && dims.z >= 1,
               "cell counts must be positive");
  CellGrid g;
  g.box_ = box;
  g.dims_ = dims;
  for (int a = 0; a < 3; ++a) g.cell_len_[a] = box.length(a) / dims[a];
  return g;
}

double CellGrid::min_cell_length() const {
  return std::min({cell_len_.x, cell_len_.y, cell_len_.z});
}

long long CellGrid::linear_index(const Int3& q) const {
  SCMD_ASSERT(q.x >= 0 && q.x < dims_.x && q.y >= 0 && q.y < dims_.y &&
              q.z >= 0 && q.z < dims_.z);
  return (static_cast<long long>(q.z) * dims_.y + q.y) * dims_.x + q.x;
}

Int3 CellGrid::coord_of(long long idx) const {
  SCMD_ASSERT(idx >= 0 && idx < num_cells());
  const int x = static_cast<int>(idx % dims_.x);
  const long long rest = idx / dims_.x;
  const int y = static_cast<int>(rest % dims_.y);
  const int z = static_cast<int>(rest / dims_.y);
  return {x, y, z};
}

Int3 CellGrid::coord_for_position(const Vec3& r) const {
  const Vec3 w = box_.wrap(r);
  Int3 q;
  for (int a = 0; a < 3; ++a) {
    int c = static_cast<int>(std::floor(w[a] / cell_len_[a]));
    // Guard against w[a]/len rounding up to dims on the top edge.
    if (c >= dims_[a]) c = dims_[a] - 1;
    if (c < 0) c = 0;
    q[a] = c;
  }
  return q;
}

Vec3 CellGrid::image_shift(const Int3& q) const {
  Vec3 s;
  for (int a = 0; a < 3; ++a)
    s[a] = box_.length(a) * floor_div(q[a], dims_[a]);
  return s;
}

}  // namespace scmd
