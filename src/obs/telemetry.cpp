#include "obs/telemetry.hpp"

#include <cstring>
#include <limits>

#include "support/error.hpp"

namespace scmd::obs {

namespace {

constexpr std::uint32_t kMagic = 0x53435446;  // "SCTF"
constexpr std::uint32_t kVersion = 1;

static_assert(std::is_trivially_copyable_v<TelemetryStepRecord>,
              "step records are shipped as raw bytes");

/// Append-only byte writer over a Bytes buffer.
class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_.size();
    out_.resize(at + sizeof(T));
    std::memcpy(out_.data() + at, &v, sizeof(T));
  }

  void put_bytes(const void* data, std::size_t n) {
    const std::size_t at = out_.size();
    out_.resize(at + n);
    if (n != 0) std::memcpy(out_.data() + at, data, n);
  }

 private:
  Bytes& out_;
};

/// Bounds-checked byte reader; every overrun is an Error, never UB.
class Reader {
 public:
  explicit Reader(const Bytes& in) : in_(in) {}

  template <class T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, need(sizeof(T)), sizeof(T));
    return v;
  }

  std::string get_string(std::size_t n) {
    const std::byte* p = need(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  bool done() const { return at_ == in_.size(); }

 private:
  const std::byte* need(std::size_t n) {
    SCMD_REQUIRE(n <= in_.size() - at_,
                 "telemetry frame truncated: need " + std::to_string(n) +
                     " bytes at offset " + std::to_string(at_) + " of " +
                     std::to_string(in_.size()));
    const std::byte* p = in_.data() + at_;
    at_ += n;
    return p;
  }

  const Bytes& in_;
  std::size_t at_ = 0;
};

}  // namespace

Bytes encode_frame(const TelemetryFrame& frame) {
  Bytes out;
  Writer w(out);
  w.put(kMagic);
  w.put(kVersion);
  w.put(static_cast<std::int32_t>(frame.rank));
  w.put(static_cast<std::uint32_t>(frame.steps.size()));
  w.put_bytes(frame.steps.data(),
              frame.steps.size() * sizeof(TelemetryStepRecord));
  w.put(static_cast<std::uint32_t>(frame.events.size()));
  for (const TraceEvent& e : frame.events) {
    SCMD_REQUIRE(e.name.size() <= std::numeric_limits<std::uint16_t>::max(),
                 "telemetry frame: span name too long: " + e.name);
    w.put(static_cast<std::uint16_t>(e.name.size()));
    w.put_bytes(e.name.data(), e.name.size());
    w.put(e.ts_us);
    w.put(e.dur_us);
  }
  return out;
}

TelemetryFrame decode_frame(const Bytes& bytes) {
  Reader r(bytes);
  const auto magic = r.get<std::uint32_t>();
  SCMD_REQUIRE(magic == kMagic, "telemetry frame: bad magic");
  const auto version = r.get<std::uint32_t>();
  SCMD_REQUIRE(version == kVersion,
               "telemetry frame: unsupported version " +
                   std::to_string(version));

  TelemetryFrame frame;
  frame.rank = r.get<std::int32_t>();

  const auto num_steps = r.get<std::uint32_t>();
  frame.steps.resize(num_steps);
  for (std::uint32_t i = 0; i < num_steps; ++i) {
    frame.steps[i] = r.get<TelemetryStepRecord>();
  }

  const auto num_events = r.get<std::uint32_t>();
  frame.events.reserve(num_events);
  for (std::uint32_t i = 0; i < num_events; ++i) {
    TraceEvent e;
    const auto name_len = r.get<std::uint16_t>();
    e.name = r.get_string(name_len);
    e.ts_us = r.get<double>();
    e.dur_us = r.get<double>();
    frame.events.push_back(std::move(e));
  }
  SCMD_REQUIRE(r.done(), "telemetry frame: trailing bytes");
  return frame;
}

}  // namespace scmd::obs
