#include "obs/engine_metrics.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace scmd::obs {

void record_step(MetricsRegistry& reg, const StepSample& sample) {
  SCMD_REQUIRE(sample.max_n >= 2 && sample.max_n <= kMaxTupleLen,
               "StepSample.max_n out of range");
  reg.set("energy.potential", sample.potential_energy);
  reg.set("energy.total", sample.total_energy);
  reg.set("temperature", sample.temperature);

  const EngineCounters& w = sample.work;
  for (int n = 2; n <= sample.max_n; ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    const std::string suffix = ".n" + std::to_string(n);
    reg.set("search.steps" + suffix,
            static_cast<double>(w.tuples[ni].search_steps));
    reg.set("search.visits" + suffix,
            static_cast<double>(w.tuples[ni].cell_visits));
    reg.set("search.accepted" + suffix,
            static_cast<double>(w.tuples[ni].accepted));
    reg.set("evals" + suffix, static_cast<double>(w.evals[ni]));
    reg.set("force_set" + suffix, static_cast<double>(w.force_set[ni]));
  }
  reg.set("list.pairs", static_cast<double>(w.list_pairs));
  reg.set("list.scan_steps", static_cast<double>(w.list_scan_steps));
  reg.set("search.total", static_cast<double>(w.total_search_steps()));
  reg.set("comm.ghosts", static_cast<double>(w.ghost_atoms_imported));
  reg.set("comm.messages", static_cast<double>(w.messages));
  reg.set("comm.bytes_in", static_cast<double>(w.bytes_imported));
  reg.set("comm.bytes_out", static_cast<double>(w.bytes_written_back));
  reg.set("tuple_cache.rebuilds", static_cast<double>(w.cache_rebuilds));
  reg.set("tuple_cache.reuse_steps",
          static_cast<double>(w.cache_reuse_steps));
  reg.set("tuple_cache.replayed", static_cast<double>(w.cache_replayed));
}

void record_rank_imbalance(MetricsRegistry& reg,
                           const std::vector<EngineCounters>& rank_work) {
  if (rank_work.empty()) return;
  std::uint64_t max_search = 0, sum_search = 0;
  std::uint64_t max_bytes = 0, sum_bytes = 0;
  for (const EngineCounters& c : rank_work) {
    const std::uint64_t s = c.total_search_steps();
    max_search = std::max(max_search, s);
    sum_search += s;
    max_bytes = std::max(max_bytes, c.bytes_imported);
    sum_bytes += c.bytes_imported;
  }
  const double P = static_cast<double>(rank_work.size());
  const double avg_search = static_cast<double>(sum_search) / P;
  reg.set("imbalance.search.max", static_cast<double>(max_search));
  reg.set("imbalance.search.avg", avg_search);
  reg.set("imbalance.search.ratio",
          avg_search > 0.0 ? static_cast<double>(max_search) / avg_search
                           : 1.0);
  reg.set("comm.import_bytes.max_rank", static_cast<double>(max_bytes));
  reg.set("comm.import_bytes.avg_rank", static_cast<double>(sum_bytes) / P);
}

void record_balance(MetricsRegistry& reg, double ratio, bool rebalanced,
                    double predicted_ratio, std::uint64_t migrated_atoms) {
  reg.set("balance.ratio", ratio);
  reg.set("balance.rebalanced", rebalanced ? 1.0 : 0.0);
  reg.set("balance.predicted_ratio", predicted_ratio);
  reg.set("balance.migrated_atoms", static_cast<double>(migrated_atoms));
}

}  // namespace scmd::obs
