#pragma once

/// \file telemetry.hpp
/// Telemetry frame wire format for cross-rank metric streaming.
///
/// Each rank of a distributed run batches its per-step observables — the
/// EngineCounters delta, potential-energy contribution, a cumulative
/// TransportStats snapshot — together with the trace spans recorded
/// since the last flush into one compact frame, and streams it to the
/// collector on rank 0 over the ordinary Transport using the reserved
/// tags::kTelemetry channel (net/tags.hpp).  Frames from one rank arrive in step order
/// (per-(src, dst, tag) ordering); ranks interleave arbitrarily.
///
/// Wire format (same-architecture cluster, like pack()/unpack():
/// little-endian x86-64 assumed throughout the transport layer):
///
///   u32  magic    0x53435446 ("SCTF")
///   u32  version  1
///   i32  rank
///   u32  num_step_records
///        num_step_records x TelemetryStepRecord (raw struct bytes)
///   u32  num_events
///        per event: u16 name_len, name bytes,
///                   f64 ts_us, f64 dur_us   (rank-local session time)
///
/// decode_frame() throws scmd::Error on truncation or a bad
/// magic/version — a corrupt frame is an error, never a silent skip.

#include <cstdint>
#include <vector>

#include "engines/counters.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace scmd::obs {

/// One step's observables from one rank.  `step` is the record index:
/// 0 is the priming force pass, s >= 1 the state after MD step s.
/// `transport` is the rank's *cumulative* statistics snapshot at the end
/// of the step — the collector differences consecutive snapshots into
/// per-step deltas.
struct TelemetryStepRecord {
  long long step = 0;
  double potential_energy = 0.0;
  EngineCounters work;       ///< per-step delta
  TransportStats transport;  ///< cumulative snapshot
};

/// One flush from one rank.
struct TelemetryFrame {
  int rank = 0;
  std::vector<TelemetryStepRecord> steps;
  /// Spans recorded since the previous flush, timestamped in the rank's
  /// local TraceSession microseconds (the collector clock-aligns them).
  std::vector<TraceEvent> events;
};

Bytes encode_frame(const TelemetryFrame& frame);
TelemetryFrame decode_frame(const Bytes& bytes);

}  // namespace scmd::obs
