#include "obs/transport_metrics.hpp"

namespace scmd::obs {

void record_transport(MetricsRegistry& reg, const TransportStats& agg) {
  reg.set("comm.transport.messages_sent",
          static_cast<double>(agg.messages_sent));
  reg.set("comm.transport.bytes_sent", static_cast<double>(agg.bytes_sent));
  reg.set("comm.transport.messages_recv",
          static_cast<double>(agg.messages_received));
  reg.set("comm.transport.bytes_recv",
          static_cast<double>(agg.bytes_received));
  reg.set("comm.transport.recv_stall_s",
          static_cast<double>(agg.recv_stall_ns) * 1e-9);
  reg.set("comm.transport.max_mailbox_depth",
          static_cast<double>(agg.max_mailbox_depth));
}

}  // namespace scmd::obs
