#pragma once

/// \file metrics.hpp
/// Named metrics registry with structured per-step export.
///
/// A MetricsRegistry holds three metric kinds under stable dotted names
/// (the schema is append-only across PRs — see docs/OBSERVABILITY.md):
///
///   - counter:   monotonically increasing uint64 (cumulative work)
///   - gauge:     last-set double (per-step deltas, energies, ratios)
///   - histogram: fixed-width buckets over [lo, hi] with explicit
///                underflow/overflow counts
///
/// emit(step) snapshots every metric into each attached sink.  Sinks:
/// JSONL (one self-describing JSON object per step) and CSV (header
/// frozen at the first emitted row for cross-run comparability).  With no
/// sinks attached, emit() returns immediately — the null-sink fast path.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/thread_safety.hpp"

namespace scmd::obs {

/// Escape a string for inclusion inside a JSON string literal.
std::string json_escape(const std::string& s);

/// Fixed-bucket histogram over [lo, hi); out-of-range observations land
/// in the underflow/overflow counts so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_buckets);

  void observe(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  void clear();

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry;

/// Sink interface: receives one snapshot per emit().
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void write_step(long long step, const MetricsRegistry& reg) = 0;
};

/// The registry.  Metric names are registered on first use and keep
/// their registration order in every export.
///
/// Thread safety: every member below takes an internal lock, so rank
/// threads may add()/set()/observe() concurrently.  The one escape hatch
/// is the Histogram& returned by histogram() — observe() through that
/// reference is unsynchronized; concurrent writers must go through
/// MetricsRegistry::observe() instead.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Increment counter `name` (registered on first use).
  void add(const std::string& name, std::uint64_t delta);

  /// Set gauge `name` (registered on first use).
  void set(const std::string& name, double value);

  /// Get-or-create a histogram.  The spec is fixed by the first call;
  /// later calls with a different spec throw.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       int num_buckets);

  /// Record one observation into histogram `name` (get-or-create with
  /// the given spec) under the registry lock — the thread-safe
  /// counterpart of histogram(...).observe(x).
  void observe(const std::string& name, double lo, double hi,
               int num_buckets, double x);

  /// Set a string attribute attached to every emitted record (strategy
  /// name, platform, ...).
  void set_attr(const std::string& key, const std::string& value);

  bool has(const std::string& name) const;
  double value(const std::string& name) const;  ///< throws if unknown

  /// Scalar (counter + gauge) names in registration order.
  std::vector<std::string> scalar_names() const;
  /// Attribute (key, value) pairs, copied under the registry lock.
  std::vector<std::pair<std::string, std::string>> attrs() const;
  /// Histogram names in registration order.
  std::vector<std::string> histogram_names() const;
  const Histogram& histogram_at(const std::string& name) const;

  void add_sink(std::unique_ptr<MetricsSink> sink);
  bool has_sinks() const {
    const RecursiveMutexLock lock(mu_);
    return !sinks_.empty();
  }

  /// Snapshot every metric into each sink.  No sinks: returns
  /// immediately.
  void emit(long long step);

 private:
  struct Scalar {
    std::string name;
    double value = 0.0;
    bool is_counter = false;
  };

  Scalar& scalar(const std::string& name, bool is_counter)
      SCMD_REQUIRES(mu_);
  Histogram& histogram_locked(const std::string& name, double lo, double hi,
                              int num_buckets) SCMD_REQUIRES(mu_);

  /// Recursive: emit() holds the lock while sinks call back into the
  /// const readers (value(), scalar_names(), ...).  That reentrancy
  /// crosses a virtual call, so the intra-procedural analysis checks
  /// each function's own acquisition independently — exactly right.
  mutable RecursiveMutex mu_;
  std::vector<Scalar> scalars_ SCMD_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> scalar_index_ SCMD_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> hists_
      SCMD_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::string>> attrs_
      SCMD_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<MetricsSink>> sinks_ SCMD_GUARDED_BY(mu_);
};

/// One JSON object per emit:
///   {"step":N,"attrs":{...},"metrics":{...},"hist":{...}}
/// ("attrs"/"hist" appear only when non-empty.)
class JsonlSink : public MetricsSink {
 public:
  /// Write to a file; throws scmd::Error if it cannot be opened.
  explicit JsonlSink(const std::string& path);
  /// Write to a caller-owned stream (testing).
  explicit JsonlSink(std::ostream& os);

  void write_step(long long step, const MetricsRegistry& reg) override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

/// CSV with a header frozen at the first emitted row: `step` followed by
/// attribute keys and scalar names.  Metrics registered after the first
/// emit are NOT added to the header (stable columns across a run);
/// register everything before the first emit.
class CsvSink : public MetricsSink {
 public:
  explicit CsvSink(const std::string& path);
  explicit CsvSink(std::ostream& os);

  void write_step(long long step, const MetricsRegistry& reg) override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
  std::vector<std::string> attr_header_;
  std::vector<std::string> scalar_header_;
  bool wrote_header_ = false;
};

}  // namespace scmd::obs
