#pragma once

/// \file engine_metrics.hpp
/// The stable metric-name schema for MD engines.
///
/// Maps one step's EngineCounters delta (plus energies) onto registry
/// gauges under the names documented in docs/OBSERVABILITY.md.  The
/// schema is append-only: names never change meaning across PRs so
/// emitted artifacts stay comparable between benchmark runs.

#include <vector>

#include "engines/counters.hpp"
#include "obs/metrics.hpp"

namespace scmd::obs {

/// One MD step's worth of observables.
struct StepSample {
  double potential_energy = 0.0;
  double total_energy = 0.0;
  double temperature = 0.0;   ///< Kelvin; 0 when not measured
  EngineCounters work;        ///< per-step delta, not cumulative
  int max_n = 3;              ///< highest tuple length to export (>= 2)
};

/// Record `sample` into `reg` as gauges:
///   energy.potential, energy.total, temperature,
///   search.steps.n{2..max_n}, search.visits.n{n}, search.accepted.n{n},
///   evals.n{n}, force_set.n{n},
///   list.pairs, list.scan_steps, search.total,
///   comm.ghosts, comm.messages, comm.bytes_in, comm.bytes_out,
///   tuple_cache.rebuilds, tuple_cache.reuse_steps, tuple_cache.replayed
/// Every name in the fixed range is always set (zero when inactive) so
/// CSV headers are identical for every strategy.
void record_step(MetricsRegistry& reg, const StepSample& sample);

/// Per-rank reduction of one step (parallel driver / cluster sim):
///   imbalance.search.max, imbalance.search.avg, imbalance.search.ratio,
///   comm.import_bytes.max_rank, comm.import_bytes.avg_rank  (Eq. 33)
/// `rank_work` holds each rank's per-step delta.
void record_rank_imbalance(MetricsRegistry& reg,
                           const std::vector<EngineCounters>& rank_work);

/// Load-balance outcome of one step (parallel driver with balancing on):
///   balance.ratio            measured max/mean search-work ratio
///                            (0 until the trigger first measures)
///   balance.rebalanced       1 when this step re-cut the domain, else 0
///   balance.predicted_ratio  solver's predicted ratio for the new cuts
///                            (0 on non-rebalance steps)
///   balance.migrated_atoms   atoms moved cluster-wide while settling
/// Scalar arguments (not a struct) keep obs independent of the parallel
/// layer's types.
void record_balance(MetricsRegistry& reg, double ratio, bool rebalanced,
                    double predicted_ratio, std::uint64_t migrated_atoms);

}  // namespace scmd::obs
