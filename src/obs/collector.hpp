#pragma once

/// \file collector.hpp
/// Rank-0 telemetry collector: turns the per-rank frame stream into the
/// run's observability artifacts *while the run executes*.
///
/// The collector owns three responsibilities:
///
///  1. **Metric reduction.** Frames carry each rank's per-step
///     EngineCounters delta, potential energy, and cumulative
///     TransportStats snapshot.  When every rank's record for step s has
///     arrived the step is *finalized*: cluster totals, the
///     imbalance.* summary, balance.* scalars, and per-step
///     comm.transport.* deltas are recorded into the registry and
///     emitted on the metrics_every cadence — the same records the old
///     end-of-run gather produced, now available live.
///
///  2. **Clock-aligned trace merging.** Frame spans are timestamped in
///     the sender's local TraceSession microseconds.  set_clock() gives
///     the per-rank offset into rank 0's session timebase (estimated by
///     net/clock_sync.hpp); ingest() re-records each span into the
///     merged session shifted by that offset, on lane tid = rank.
///
///  3. **Live status.** status_json() snapshots the run for the status
///     socket: latest finalized step, per-rank progress and step rate,
///     the current imbalance ratio, mailbox watermarks, and slow-step
///     anomalies (a step span slower than 3x the rank's median).
///
/// Thread safety: all public methods lock an internal mutex, so the
/// driver thread can ingest while a StatusServer thread polls
/// status_json().

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "support/thread_safety.hpp"

namespace scmd::obs {

class TelemetryCollector {
 public:
  struct Config {
    int num_ranks = 1;
    int max_n = 3;            ///< highest tuple length in metric names
    bool balancing = false;   ///< emit balance.* scalars per step
    int metrics_every = 1;    ///< emit cadence (final record always emitted)
    long long num_records = 0;  ///< expected records per rank (steps + 1)
    MetricsRegistry* metrics = nullptr;   ///< may be null (trace-only run)
    TraceSession* merged_trace = nullptr; ///< may be null (metrics-only run)

    /// Resumed runs (src/ckpt): records stay 0-based within the attempt,
    /// and the offset maps them back to global step numbers at emit time
    /// (record k emits as step step_offset + k).  `recoveries` is the
    /// supervisor's rank-failure count, surfaced in status_json.
    long long step_offset = 0;
    int recoveries = 0;
  };

  explicit TelemetryCollector(const Config& config);

  /// Clock alignment for `rank`: add `offset_us` to its local span
  /// timestamps to land in rank 0's session timebase.  `uncertainty_us`
  /// is the estimator's error bound (half the best round-trip), kept for
  /// status reporting and tests.  Defaults to 0 for every rank — correct
  /// for the in-process driver, where all ranks share one session.
  void set_clock(int rank, double offset_us, double uncertainty_us);
  double clock_offset_us(int rank) const;
  double clock_uncertainty_us(int rank) const;

  /// Balance outcome of record `step` (rank 0's collectively-agreed
  /// view).  Must be called before the step finalizes; scalar arguments
  /// keep obs independent of the parallel layer's types.
  void set_balance(long long step, double ratio, bool rebalanced,
                   double predicted_ratio, std::uint64_t migrated_atoms);

  /// Ingest one frame: merge its spans (clock-shifted, lane = rank),
  /// feed phase histograms, stage its step records, and finalize every
  /// step whose records are now complete.  Frames from one rank must
  /// arrive in step order (the transport guarantees this per (src,
  /// tag)); ranks may interleave arbitrarily.
  void ingest(const TelemetryFrame& frame);

  /// Feed phase histograms (and slow-step tracking, lane = event tid)
  /// from spans that are *already* in the merged session — the
  /// in-process driver's path, where all ranks record into one session
  /// directly and re-recording them would duplicate the trace.
  void observe_events(const std::vector<TraceEvent>& events);

  /// Emit the final record if the cadence missed it (the old gather
  /// always emitted the last step) and flag any rank that never
  /// delivered all its records.  Idempotent.
  void finish();

  /// finish() for runs stopped before their step budget (cancelled or
  /// walltime-capped service jobs): still requires every *started*
  /// record to be complete across ranks, but accepts fewer than
  /// `num_records` of them.  Idempotent.
  void finish_partial();

  /// Steps finalized so far (all ranks' records arrived).
  long long finalized_steps() const;

  /// One-line JSON snapshot for the status socket.  Schema documented in
  /// docs/OBSERVABILITY.md ("Live run monitor").
  std::string status_json() const;

 private:
  struct StepSlot {
    std::vector<TelemetryStepRecord> by_rank;
    std::vector<bool> present;
    int arrived = 0;
    double balance_ratio = 0.0;
    bool rebalanced = false;
    double balance_predicted = 0.0;
    std::uint64_t balance_migrated = 0;
    bool has_balance = false;
  };

  struct RankStatus {
    long long last_step = -1;          ///< highest record index received
    double last_seen_us = 0.0;         ///< collector clock, for step rate
    double prev_seen_us = 0.0;
    long long prev_step = -1;
    std::uint64_t mailbox_watermark = 0;
    std::vector<double> step_span_ms;  ///< per-rank "step" span durations
  };

  struct Anomaly {
    int rank = 0;
    long long span_index = 0;  ///< ordinal of the slow "step" span
    double dur_ms = 0.0;
    double median_ms = 0.0;
  };

  StepSlot& slot(long long step) SCMD_REQUIRES(mu_);
  void finalize_ready() SCMD_REQUIRES(mu_);
  void finalize(StepSlot& s, long long step) SCMD_REQUIRES(mu_);
  void track_span(int rank, const TraceEvent& e) SCMD_REQUIRES(mu_);
  double mono_us() const;

  Config config_;
  mutable Mutex mu_;

  /// Ring over [next_final_, ...).
  std::vector<StepSlot> slots_ SCMD_GUARDED_BY(mu_);
  long long next_final_ SCMD_GUARDED_BY(mu_) = 0;  ///< first unfinalized
  long long last_emitted_ SCMD_GUARDED_BY(mu_) = -1;
  bool finished_ SCMD_GUARDED_BY(mu_) = false;

  std::vector<double> clock_offset_us_ SCMD_GUARDED_BY(mu_);
  std::vector<double> clock_uncertainty_us_ SCMD_GUARDED_BY(mu_);
  /// Previous cumulative TransportStats snapshot per rank.
  std::vector<TransportStats> prev_stats_ SCMD_GUARDED_BY(mu_);
  std::vector<RankStatus> ranks_ SCMD_GUARDED_BY(mu_);
  std::vector<Anomaly> anomalies_ SCMD_GUARDED_BY(mu_);
  double latest_imbalance_ratio_ SCMD_GUARDED_BY(mu_) = 0.0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scmd::obs
