#include "obs/collector.hpp"

#include <algorithm>
#include <sstream>

#include "obs/transport_metrics.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/phase_hist.hpp"
#include "support/error.hpp"

namespace scmd::obs {

namespace {

/// Longest window of recent slow-step anomalies kept for status polling.
constexpr std::size_t kMaxAnomalies = 32;
/// A "step" span is anomalous past this multiple of the rank's median.
constexpr double kSlowStepFactor = 3.0;
/// Don't flag anomalies until the median rests on this many samples.
constexpr std::size_t kMinSpansForMedian = 8;

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

TelemetryCollector::TelemetryCollector(const Config& config)
    : config_(config),
      clock_offset_us_(static_cast<std::size_t>(config.num_ranks), 0.0),
      clock_uncertainty_us_(static_cast<std::size_t>(config.num_ranks), 0.0),
      prev_stats_(static_cast<std::size_t>(config.num_ranks)),
      ranks_(static_cast<std::size_t>(config.num_ranks)),
      start_(std::chrono::steady_clock::now()) {
  SCMD_REQUIRE(config.num_ranks >= 1, "collector needs at least one rank");
}

double TelemetryCollector::mono_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void TelemetryCollector::set_clock(int rank, double offset_us,
                                   double uncertainty_us) {
  const MutexLock lock(mu_);
  SCMD_REQUIRE(rank >= 0 && rank < config_.num_ranks,
               "set_clock: rank out of range");
  clock_offset_us_[static_cast<std::size_t>(rank)] = offset_us;
  clock_uncertainty_us_[static_cast<std::size_t>(rank)] = uncertainty_us;
}

double TelemetryCollector::clock_offset_us(int rank) const {
  const MutexLock lock(mu_);
  return clock_offset_us_.at(static_cast<std::size_t>(rank));
}

double TelemetryCollector::clock_uncertainty_us(int rank) const {
  const MutexLock lock(mu_);
  return clock_uncertainty_us_.at(static_cast<std::size_t>(rank));
}

TelemetryCollector::StepSlot& TelemetryCollector::slot(long long step) {
  SCMD_REQUIRE(step >= next_final_,
               "telemetry record for already-finalized step " +
                   std::to_string(step));
  const std::size_t at = static_cast<std::size_t>(step - next_final_);
  if (at >= slots_.size()) slots_.resize(at + 1);
  StepSlot& s = slots_[at];
  if (s.by_rank.empty()) {
    s.by_rank.resize(static_cast<std::size_t>(config_.num_ranks));
    s.present.assign(static_cast<std::size_t>(config_.num_ranks), false);
  }
  return s;
}

void TelemetryCollector::set_balance(long long step, double ratio,
                                     bool rebalanced, double predicted_ratio,
                                     std::uint64_t migrated_atoms) {
  const MutexLock lock(mu_);
  StepSlot& s = slot(step);
  s.balance_ratio = ratio;
  s.rebalanced = rebalanced;
  s.balance_predicted = predicted_ratio;
  s.balance_migrated = migrated_atoms;
  s.has_balance = true;
}

void TelemetryCollector::track_span(int rank, const TraceEvent& e) {
  if (config_.metrics != nullptr && phase_tracked(e.name)) {
    observe_phase(*config_.metrics, e.name, e.dur_us * 1e-6);
  }
  if (e.name != "step") return;
  if (rank < 0 || rank >= config_.num_ranks) return;
  RankStatus& rs = ranks_[static_cast<std::size_t>(rank)];
  const double dur_ms = e.dur_us * 1e-3;
  if (rs.step_span_ms.size() >= kMinSpansForMedian) {
    const double med = median_of(rs.step_span_ms);
    if (med > 0.0 && dur_ms > kSlowStepFactor * med) {
      anomalies_.push_back(
          Anomaly{rank, static_cast<long long>(rs.step_span_ms.size()),
                  dur_ms, med});
      if (anomalies_.size() > kMaxAnomalies)
        anomalies_.erase(anomalies_.begin());
    }
  }
  rs.step_span_ms.push_back(dur_ms);
}

void TelemetryCollector::observe_events(
    const std::vector<TraceEvent>& events) {
  const MutexLock lock(mu_);
  for (const TraceEvent& e : events) track_span(e.tid, e);
}

void TelemetryCollector::ingest(const TelemetryFrame& frame) {
  const MutexLock lock(mu_);
  SCMD_REQUIRE(frame.rank >= 0 && frame.rank < config_.num_ranks,
               "telemetry frame from unknown rank " +
                   std::to_string(frame.rank));
  const std::size_t ri = static_cast<std::size_t>(frame.rank);

  const double offset = clock_offset_us_[ri];
  for (const TraceEvent& e : frame.events) {
    if (config_.merged_trace != nullptr) {
      config_.merged_trace->record(e.name.c_str(), frame.rank,
                                   e.ts_us + offset, e.dur_us);
    }
    track_span(frame.rank, e);
  }

  RankStatus& rs = ranks_[ri];
  for (const TelemetryStepRecord& rec : frame.steps) {
    StepSlot& s = slot(rec.step);
    SCMD_REQUIRE(!s.present[ri], "duplicate telemetry record for step " +
                                     std::to_string(rec.step) + " rank " +
                                     std::to_string(frame.rank));
    s.by_rank[ri] = rec;
    s.present[ri] = true;
    ++s.arrived;
    if (rec.step > rs.last_step) {
      rs.prev_step = rs.last_step;
      rs.prev_seen_us = rs.last_seen_us;
      rs.last_step = rec.step;
      rs.last_seen_us = mono_us();
    }
    rs.mailbox_watermark =
        std::max(rs.mailbox_watermark, rec.transport.max_mailbox_depth);
  }
  finalize_ready();
}

void TelemetryCollector::finalize_ready() {
  while (!slots_.empty() && slots_.front().arrived == config_.num_ranks) {
    StepSlot s = std::move(slots_.front());
    slots_.erase(slots_.begin());
    finalize(s, next_final_);
    ++next_final_;
  }
}

void TelemetryCollector::finalize(StepSlot& s, long long step) {
  // Cluster totals and the per-rank imbalance summary — the same
  // reduction the old end-of-run gather performed, one step at a time.
  StepSample sample;
  sample.max_n = config_.max_n;
  std::vector<EngineCounters> rank_work;
  rank_work.reserve(s.by_rank.size());
  TransportStats delta;       // per-step, summed over ranks
  std::uint64_t depth = 0;    // cumulative watermark, max over ranks
  for (std::size_t r = 0; r < s.by_rank.size(); ++r) {
    const TelemetryStepRecord& rec = s.by_rank[r];
    sample.work += rec.work;
    sample.potential_energy += rec.potential_energy;
    rank_work.push_back(rec.work);

    // comm.transport.* per-step deltas from consecutive cumulative
    // snapshots (satellite fix: these were once-per-run constants).
    TransportStats& prev = prev_stats_[r];
    delta.messages_sent += rec.transport.messages_sent - prev.messages_sent;
    delta.bytes_sent += rec.transport.bytes_sent - prev.bytes_sent;
    delta.messages_received +=
        rec.transport.messages_received - prev.messages_received;
    delta.bytes_received += rec.transport.bytes_received - prev.bytes_received;
    delta.recv_stall_ns += rec.transport.recv_stall_ns - prev.recv_stall_ns;
    depth = std::max(depth, rec.transport.max_mailbox_depth);
    prev = rec.transport;
  }
  delta.max_mailbox_depth = depth;

  {
    // Status snapshot state, updated even without a registry.
    std::uint64_t max_search = 0, sum_search = 0;
    for (const EngineCounters& c : rank_work) {
      const std::uint64_t w = c.total_search_steps();
      max_search = std::max(max_search, w);
      sum_search += w;
    }
    const double avg =
        static_cast<double>(sum_search) / static_cast<double>(rank_work.size());
    latest_imbalance_ratio_ =
        avg > 0.0 ? static_cast<double>(max_search) / avg : 1.0;
  }

  if (config_.metrics == nullptr) return;
  MetricsRegistry& reg = *config_.metrics;
  record_step(reg, sample);
  record_rank_imbalance(reg, rank_work);
  record_transport(reg, delta);
  if (config_.balancing) {
    record_balance(reg, s.balance_ratio, s.rebalanced, s.balance_predicted,
                   s.balance_migrated);
  }
  const int every = config_.metrics_every > 0 ? config_.metrics_every : 1;
  if (step % every == 0) {
    reg.emit(step + config_.step_offset);
    last_emitted_ = step;
  }
}

void TelemetryCollector::finish() {
  const MutexLock lock(mu_);
  if (finished_) return;
  finished_ = true;
  SCMD_REQUIRE(slots_.empty(),
               "telemetry collector finished with " +
                   std::to_string(slots_.size()) +
                   " incomplete step(s); first incomplete step " +
                   std::to_string(next_final_));
  if (config_.num_records > 0) {
    SCMD_REQUIRE(next_final_ == config_.num_records,
                 "telemetry collector finalized " +
                     std::to_string(next_final_) + " of " +
                     std::to_string(config_.num_records) + " records");
  }
  // The old gather always emitted the final record; keep that contract
  // when the cadence skipped it.  The registry still holds the last
  // finalized step's values (finalization is in order).
  const long long last = next_final_ - 1;
  if (config_.metrics != nullptr && last >= 0 && last_emitted_ != last) {
    config_.metrics->emit(last + config_.step_offset);
    last_emitted_ = last;
  }
}

void TelemetryCollector::finish_partial() {
  const MutexLock lock(mu_);
  if (finished_) return;
  finished_ = true;
  SCMD_REQUIRE(slots_.empty(),
               "telemetry collector finished with " +
                   std::to_string(slots_.size()) +
                   " incomplete step(s); first incomplete step " +
                   std::to_string(next_final_));
  // The old gather always emitted the final record; keep that contract
  // when the cadence skipped it.  The registry still holds the last
  // finalized step's values (finalization is in order).
  const long long last = next_final_ - 1;
  if (config_.metrics != nullptr && last >= 0 && last_emitted_ != last) {
    config_.metrics->emit(last + config_.step_offset);
    last_emitted_ = last;
  }
}

long long TelemetryCollector::finalized_steps() const {
  const MutexLock lock(mu_);
  return next_final_;
}

std::string TelemetryCollector::status_json() const {
  const MutexLock lock(mu_);
  std::ostringstream os;
  os.precision(15);
  os << "{\"num_ranks\":" << config_.num_ranks
     << ",\"num_records\":" << config_.num_records
     << ",\"finalized_steps\":" << next_final_
     << ",\"latest_step\":" << next_final_ - 1
     << ",\"step_offset\":" << config_.step_offset
     << ",\"recoveries\":" << config_.recoveries
     << ",\"imbalance_ratio\":" << latest_imbalance_ratio_
     << ",\"finished\":" << (finished_ ? "true" : "false") << ",\"ranks\":[";
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankStatus& rs = ranks_[r];
    // Step rate over the last two frame arrivals; 0 until two arrived.
    double rate = 0.0;
    if (rs.prev_step >= 0 && rs.last_seen_us > rs.prev_seen_us) {
      rate = static_cast<double>(rs.last_step - rs.prev_step) /
             ((rs.last_seen_us - rs.prev_seen_us) * 1e-6);
    }
    if (r != 0) os << ",";
    os << "{\"rank\":" << r << ",\"step\":" << rs.last_step
       << ",\"steps_per_sec\":" << rate
       << ",\"mailbox_depth\":" << rs.mailbox_watermark
       << ",\"median_step_ms\":" << median_of(rs.step_span_ms)
       << ",\"clock_offset_us\":" << clock_offset_us_[r]
       << ",\"clock_uncertainty_us\":" << clock_uncertainty_us_[r] << "}";
  }
  os << "],\"anomalies\":[";
  for (std::size_t i = 0; i < anomalies_.size(); ++i) {
    const Anomaly& a = anomalies_[i];
    if (i != 0) os << ",";
    os << "{\"rank\":" << a.rank << ",\"span_index\":" << a.span_index
       << ",\"dur_ms\":" << a.dur_ms << ",\"median_ms\":" << a.median_ms
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace scmd::obs
