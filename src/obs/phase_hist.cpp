#include "obs/phase_hist.hpp"

#include <cmath>

namespace scmd::obs {

namespace {

constexpr const char* kTrackedPhases[] = {
    "step",           "force",           "exchange.import",
    "exchange.write_back", "exchange.migrate", "exchange.refresh",
    "balance",
};

}  // namespace

bool phase_tracked(const std::string& span_name) {
  for (const char* p : kTrackedPhases) {
    if (span_name == p) return true;
  }
  return false;
}

void observe_phase(MetricsRegistry& reg, const std::string& phase,
                   double dur_s) {
  if (dur_s < 1e-12) dur_s = 1e-12;  // log-safe; lands in underflow
  reg.observe("phase_hist." + phase, kPhaseHistLogLo, kPhaseHistLogHi,
              kPhaseHistBuckets, std::log10(dur_s));
}

void observe_phase_events(MetricsRegistry& reg,
                          const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    if (phase_tracked(e.name)) observe_phase(reg, e.name, e.dur_us * 1e-6);
  }
}

}  // namespace scmd::obs
