#pragma once

/// \file phase_hist.hpp
/// Log-bucketed per-phase latency histograms.
///
/// Phase durations in an MD run span six orders of magnitude (a cached
/// replay refresh is microseconds, a rebalance step can be seconds), so
/// fixed-width buckets waste resolution exactly where the interesting
/// tail lives.  The phase_hist.* channel reuses the registry's Histogram
/// machinery but observes log10(seconds): buckets are log-spaced at four
/// per decade over [100 ns, 100 s), with out-of-range durations landing
/// in underflow/overflow as usual.
///
/// Tracked phases are the step-level spans of the trace taxonomy
/// (docs/OBSERVABILITY.md): step, force, exchange.import,
/// exchange.write_back, exchange.migrate, exchange.refresh, balance.
/// Histogram names are "phase_hist." + phase; the value distribution is
/// log10(duration in seconds).

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scmd::obs {

/// log10(seconds) histogram domain: 1e-7 s (100 ns) .. 1e2 s (100 s),
/// four buckets per decade.
inline constexpr double kPhaseHistLogLo = -7.0;
inline constexpr double kPhaseHistLogHi = 2.0;
inline constexpr int kPhaseHistBuckets = 36;

/// Is `span_name` one of the phases with a phase_hist.* channel?
bool phase_tracked(const std::string& span_name);

/// Record one duration into "phase_hist.<phase>" (get-or-create with the
/// canonical log-bucket spec).  `dur_s` is clamped away from zero before
/// the log so degenerate spans land in underflow, not -inf.
void observe_phase(MetricsRegistry& reg, const std::string& phase,
                   double dur_s);

/// Bucket every tracked phase span in `events` (durations are trace
/// microseconds).  The drain-cursor companion of
/// TraceSession::events_since().
void observe_phase_events(MetricsRegistry& reg,
                          const std::vector<TraceEvent>& events);

}  // namespace scmd::obs
