#pragma once

/// \file trace.hpp
/// Hierarchical phase tracing in Chrome trace_event format.
///
/// A TraceSession collects timed spans ("complete" events, ph="X") from
/// any number of threads and serializes them as JSON that loads directly
/// in chrome://tracing or Perfetto.  Spans are opened with the RAII
/// TraceScope, usually through the SCMD_TRACE() macro, which reads a
/// thread-local session pointer so deep call sites (force strategies,
/// halo exchange) need no plumbing: the engine binds the session once per
/// thread and tags it with the rank id.
///
/// Cost model: with SCMD_OBS compiled out the macro is a no-op; with it
/// compiled in but no session bound, a scope is a thread-local load and a
/// null check.  Only bound threads pay for a clock read per span and a
/// short mutex hold at scope exit.

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/thread_safety.hpp"

namespace scmd::obs {

/// One completed span.
struct TraceEvent {
  std::string name;
  int tid = 0;        ///< lane id — the rank for engine spans
  double ts_us = 0;   ///< start, microseconds since session start
  double dur_us = 0;  ///< duration, microseconds
};

/// Thread-safe collector of spans with a common epoch.
class TraceSession {
 public:
  TraceSession();

  /// Microseconds since the session epoch (monotonic clock).
  double now_us() const;

  /// Append a completed span.  Safe to call from any thread.
  void record(const char* name, int tid, double ts_us, double dur_us);

  std::size_t num_events() const;
  std::vector<TraceEvent> events() const;

  /// Events appended since index `from` (a previous num_events() value).
  /// The telemetry pipeline uses this as a drain cursor: each flush ships
  /// only the spans recorded since the last one.
  std::vector<TraceEvent> events_since(std::size_t from) const;

  /// Serialize as Chrome trace_event JSON ({"traceEvents": [...]}).
  void write_chrome_json(std::ostream& os) const;

  /// write_chrome_json() to a file; throws scmd::Error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ SCMD_GUARDED_BY(mu_);
};

/// Bind `session` (may be null to unbind) as the current thread's span
/// sink; `tid` tags every span recorded from this thread (use the rank
/// id).  The binding is thread-local and cheap to change per phase.
void bind_thread(TraceSession* session, int tid);

TraceSession* thread_session();
int thread_tid();

/// RAII binding guard: binds on construction, restores the previous
/// binding on destruction.  Lets the serial engine trace on the caller's
/// thread without leaking the binding.
class ThreadTraceGuard {
 public:
  ThreadTraceGuard(TraceSession* session, int tid);
  ~ThreadTraceGuard();
  ThreadTraceGuard(const ThreadTraceGuard&) = delete;
  ThreadTraceGuard& operator=(const ThreadTraceGuard&) = delete;

 private:
  TraceSession* prev_session_;
  int prev_tid_;
};

/// RAII span: records [construction, destruction) into the session.
/// A null session makes every operation a no-op.
class TraceScope {
 public:
  /// Span on the thread-bound session (see bind_thread()).
  explicit TraceScope(const char* name)
      : TraceScope(thread_session(), name) {}

  TraceScope(TraceSession* session, const char* name)
      : session_(session), name_(name) {
    if (session_ != nullptr) start_us_ = session_->now_us();
  }

  ~TraceScope() {
    if (session_ != nullptr) {
      session_->record(name_, thread_tid(), start_us_,
                       session_->now_us() - start_us_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceSession* session_;
  const char* name_;
  double start_us_ = 0.0;
};

/// Span names for per-n phases ("search.n2" .. "search.n8"); n is
/// clamped into [2, kMaxTupleLen].  Returns a static string.
const char* search_phase_name(int n);

/// Span names for per-n tuple-cache replay phases ("replay.n2" ..
/// "replay.n8"); same clamping.  Replay spans take the place of search
/// spans on cache-reuse steps, so a trace shows replay-vs-search time
/// directly.
const char* replay_phase_name(int n);

}  // namespace scmd::obs

// SCMD_TRACE(name): open a span named `name` (string literal) on the
// thread-bound session for the rest of the enclosing scope.  Compiles to
// nothing when the SCMD_OBS CMake option is OFF.
#if defined(SCMD_OBS_ENABLED)
#define SCMD_OBS_CONCAT_(a, b) a##b
#define SCMD_OBS_CONCAT(a, b) SCMD_OBS_CONCAT_(a, b)
#define SCMD_TRACE(name) \
  ::scmd::obs::TraceScope SCMD_OBS_CONCAT(scmd_trace_scope_, __LINE__)(name)
#else
#define SCMD_TRACE(name) ((void)0)
#endif
