#pragma once

/// \file transport_metrics.hpp
/// Transport statistics → MetricsRegistry schema bridge.
///
/// Extends the append-only observability schema (docs/OBSERVABILITY.md)
/// with per-transport gauges under comm.transport.*.  Parallel drivers
/// aggregate the per-rank TransportStats (sums, except the mailbox
/// watermark which is a max over ranks) and record the run-cumulative
/// values once; every emitted record then carries them.

#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace scmd::obs {

/// Record aggregated transport statistics as gauges:
///   comm.transport.messages_sent, comm.transport.bytes_sent,
///   comm.transport.messages_recv,  comm.transport.bytes_recv,
///   comm.transport.recv_stall_s   (summed over ranks, seconds),
///   comm.transport.max_mailbox_depth (max over ranks)
void record_transport(MetricsRegistry& reg, const TransportStats& agg);

}  // namespace scmd::obs
