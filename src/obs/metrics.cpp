#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "support/error.hpp"

namespace scmd::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Shortest round-trip double formatting; JSON has no NaN/Inf, emit null.
void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    // Try shorter representations for readability.
    for (int prec = 6; prec < 17; ++prec) {
      char s[32];
      std::snprintf(s, sizeof(s), "%.*g", prec, v);
      std::sscanf(s, "%lf", &back);
      if (back == v) {
        os << s;
        return;
      }
    }
  }
  os << buf;
}

}  // namespace

Histogram::Histogram(double lo, double hi, int num_buckets)
    : lo_(lo), hi_(hi) {
  SCMD_REQUIRE(num_buckets >= 1, "histogram needs at least one bucket");
  SCMD_REQUIRE(hi > lo, "histogram needs hi > lo");
  width_ = (hi - lo) / num_buckets;
  buckets_.assign(static_cast<std::size_t>(num_buckets), 0);
}

void Histogram::observe(double x) {
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= buckets_.size()) i = buckets_.size() - 1;  // fp edge
    ++buckets_[i];
  }
}

void Histogram::clear() {
  for (auto& b : buckets_) b = 0;
  underflow_ = overflow_ = count_ = 0;
  sum_ = 0.0;
}

MetricsRegistry::Scalar& MetricsRegistry::scalar(const std::string& name,
                                                 bool is_counter) {
  const auto it = scalar_index_.find(name);
  if (it != scalar_index_.end()) {
    Scalar& s = scalars_[it->second];
    SCMD_REQUIRE(s.is_counter == is_counter,
                 "metric registered with a different kind: " + name);
    return s;
  }
  scalar_index_.emplace(name, scalars_.size());
  scalars_.push_back(Scalar{name, 0.0, is_counter});
  return scalars_.back();
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  const RecursiveMutexLock lock(mu_);
  scalar(name, /*is_counter=*/true).value += static_cast<double>(delta);
}

void MetricsRegistry::set(const std::string& name, double value) {
  const RecursiveMutexLock lock(mu_);
  scalar(name, /*is_counter=*/false).value = value;
}

Histogram& MetricsRegistry::histogram_locked(const std::string& name,
                                             double lo, double hi,
                                             int num_buckets) {
  for (auto& [n, h] : hists_) {
    if (n != name) continue;
    SCMD_REQUIRE(h->lo() == lo && h->hi() == hi &&
                     h->num_buckets() == num_buckets,
                 "histogram re-registered with a different spec: " + name);
    return *h;
  }
  hists_.emplace_back(name, std::make_unique<Histogram>(lo, hi, num_buckets));
  return *hists_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, int num_buckets) {
  const RecursiveMutexLock lock(mu_);
  return histogram_locked(name, lo, hi, num_buckets);
}

void MetricsRegistry::observe(const std::string& name, double lo, double hi,
                              int num_buckets, double x) {
  const RecursiveMutexLock lock(mu_);
  histogram_locked(name, lo, hi, num_buckets).observe(x);
}

void MetricsRegistry::set_attr(const std::string& key,
                               const std::string& value) {
  const RecursiveMutexLock lock(mu_);
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  attrs_.emplace_back(key, value);
}

bool MetricsRegistry::has(const std::string& name) const {
  const RecursiveMutexLock lock(mu_);
  return scalar_index_.count(name) != 0;
}

double MetricsRegistry::value(const std::string& name) const {
  const RecursiveMutexLock lock(mu_);
  const auto it = scalar_index_.find(name);
  SCMD_REQUIRE(it != scalar_index_.end(), "unknown metric: " + name);
  return scalars_[it->second].value;
}

std::vector<std::pair<std::string, std::string>> MetricsRegistry::attrs()
    const {
  const RecursiveMutexLock lock(mu_);
  return attrs_;
}

std::vector<std::string> MetricsRegistry::scalar_names() const {
  const RecursiveMutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(scalars_.size());
  for (const Scalar& s : scalars_) names.push_back(s.name);
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  const RecursiveMutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(hists_.size());
  for (const auto& [n, h] : hists_) names.push_back(n);
  return names;
}

const Histogram& MetricsRegistry::histogram_at(const std::string& name) const {
  const RecursiveMutexLock lock(mu_);
  for (const auto& [n, h] : hists_) {
    if (n == name) return *h;
  }
  SCMD_REQUIRE(false, "unknown histogram: " + name);
  return *hists_.front().second;  // unreachable
}

void MetricsRegistry::add_sink(std::unique_ptr<MetricsSink> sink) {
  const RecursiveMutexLock lock(mu_);
  SCMD_REQUIRE(sink != nullptr, "null metrics sink");
  sinks_.push_back(std::move(sink));
}

void MetricsRegistry::emit(long long step) {
  // Held across the sink writes: sinks read back through the const
  // accessors, which re-enter the recursive lock, and the snapshot a
  // sink writes must not interleave with a concurrent add()/set().
  const RecursiveMutexLock lock(mu_);
  if (sinks_.empty()) return;
  for (auto& sink : sinks_) sink->write_step(step, *this);
}

namespace {

std::unique_ptr<std::ostream> open_sink_file(const std::string& path) {
  auto os = std::make_unique<std::ofstream>(path);
  SCMD_REQUIRE(os->good(), "cannot open metrics output: " + path);
  return os;
}

}  // namespace

JsonlSink::JsonlSink(const std::string& path)
    : owned_(open_sink_file(path)), os_(owned_.get()) {}

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

void JsonlSink::write_step(long long step, const MetricsRegistry& reg) {
  std::ostream& os = *os_;
  const auto attrs = reg.attrs();
  os << "{\"step\":" << step;
  if (!attrs.empty()) {
    os << ",\"attrs\":{";
    bool first = true;
    for (const auto& [k, v] : attrs) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    os << "}";
  }
  os << ",\"metrics\":{";
  bool first = true;
  for (const std::string& name : reg.scalar_names()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":";
    write_json_number(os, reg.value(name));
  }
  os << "}";
  const auto hist_names = reg.histogram_names();
  if (!hist_names.empty()) {
    os << ",\"hist\":{";
    bool hfirst = true;
    for (const std::string& name : hist_names) {
      const Histogram& h = reg.histogram_at(name);
      if (!hfirst) os << ",";
      hfirst = false;
      os << "\"" << json_escape(name) << "\":{\"lo\":";
      write_json_number(os, h.lo());
      os << ",\"hi\":";
      write_json_number(os, h.hi());
      os << ",\"underflow\":" << h.underflow()
         << ",\"overflow\":" << h.overflow() << ",\"count\":" << h.count()
         << ",\"sum\":";
      write_json_number(os, h.sum());
      os << ",\"buckets\":[";
      for (int i = 0; i < h.num_buckets(); ++i) {
        if (i) os << ",";
        os << h.bucket(i);
      }
      os << "]}";
    }
    os << "}";
  }
  os << "}\n";
  os.flush();
  SCMD_REQUIRE(os.good(), "failed writing metrics record");
}

CsvSink::CsvSink(const std::string& path)
    : owned_(open_sink_file(path)), os_(owned_.get()) {}

CsvSink::CsvSink(std::ostream& os) : os_(&os) {}

void CsvSink::write_step(long long step, const MetricsRegistry& reg) {
  std::ostream& os = *os_;
  const auto attrs = reg.attrs();
  if (!wrote_header_) {
    for (const auto& [k, v] : attrs) attr_header_.push_back(k);
    scalar_header_ = reg.scalar_names();
    os << "step";
    for (const std::string& k : attr_header_) os << "," << k;
    for (const std::string& n : scalar_header_) os << "," << n;
    os << "\n";
    wrote_header_ = true;
  }
  os << step;
  for (const std::string& k : attr_header_) {
    std::string v;
    for (const auto& [ak, av] : attrs) {
      if (ak == k) v = av;
    }
    os << "," << v;
  }
  for (const std::string& n : scalar_header_) {
    os << ",";
    // Columns are frozen at the first row; a since-vanished name (not
    // possible today — metrics are never deregistered) would print 0.
    write_json_number(os, reg.has(n) ? reg.value(n) : 0.0);
  }
  os << "\n";
  os.flush();
  SCMD_REQUIRE(os.good(), "failed writing metrics CSV row");
}

}  // namespace scmd::obs
