#include "obs/trace.hpp"

#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace scmd::obs {

namespace {

thread_local TraceSession* t_session = nullptr;
thread_local int t_tid = 0;

}  // namespace

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

double TraceSession::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSession::record(const char* name, int tid, double ts_us,
                          double dur_us) {
  const MutexLock lock(mu_);
  events_.push_back(TraceEvent{name, tid, ts_us, dur_us});
}

std::size_t TraceSession::num_events() const {
  const MutexLock lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSession::events() const {
  const MutexLock lock(mu_);
  return events_;
}

std::vector<TraceEvent> TraceSession::events_since(std::size_t from) const {
  const MutexLock lock(mu_);
  if (from >= events_.size()) return {};
  return {events_.begin() + static_cast<std::ptrdiff_t>(from),
          events_.end()};
}

void TraceSession::write_chrome_json(std::ostream& os) const {
  const MutexLock lock(mu_);
  // Default stream precision (6 significant digits) quantizes ts to
  // ~10 us once a session passes one second, breaking span nesting.
  os.precision(15);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name)
       << "\",\"ph\":\"X\",\"cat\":\"scmd\",\"pid\":0,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceSession::save(const std::string& path) const {
  std::ofstream os(path);
  SCMD_REQUIRE(os.good(), "cannot open trace output: " + path);
  write_chrome_json(os);
  SCMD_REQUIRE(os.good(), "failed writing trace output: " + path);
}

void bind_thread(TraceSession* session, int tid) {
  t_session = session;
  t_tid = tid;
}

TraceSession* thread_session() { return t_session; }

int thread_tid() { return t_tid; }

ThreadTraceGuard::ThreadTraceGuard(TraceSession* session, int tid)
    : prev_session_(t_session), prev_tid_(t_tid) {
  bind_thread(session, tid);
}

ThreadTraceGuard::~ThreadTraceGuard() {
  bind_thread(prev_session_, prev_tid_);
}

const char* search_phase_name(int n) {
  static const char* const names[] = {"search.n2", "search.n3", "search.n4",
                                      "search.n5", "search.n6", "search.n7",
                                      "search.n8"};
  if (n < 2) n = 2;
  if (n > 8) n = 8;
  return names[n - 2];
}

const char* replay_phase_name(int n) {
  static const char* const names[] = {"replay.n2", "replay.n3", "replay.n4",
                                      "replay.n5", "replay.n6", "replay.n7",
                                      "replay.n8"};
  if (n < 2) n = 2;
  if (n > 8) n = 8;
  return names[n - 2];
}

}  // namespace scmd::obs
