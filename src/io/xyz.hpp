#pragma once

/// \file xyz.hpp
/// Extended-XYZ trajectory output for examples and debugging.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "md/system.hpp"

namespace scmd {

/// Streams snapshots in extended-XYZ format (one frame per write_frame).
class XyzWriter {
 public:
  /// `species` maps type ids to element symbols, e.g. {"Si", "O"}.
  XyzWriter(const std::string& path, std::vector<std::string> species);
  ~XyzWriter();

  XyzWriter(const XyzWriter&) = delete;
  XyzWriter& operator=(const XyzWriter&) = delete;

  /// Append one frame with an optional comment (step number, energy, ...).
  void write_frame(const ParticleSystem& sys, const std::string& comment = {});

  int frames_written() const { return frames_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<std::string> species_;
  int frames_ = 0;
};

}  // namespace scmd
