#include "io/xyz.hpp"

#include <fstream>
#include <iomanip>

#include "support/error.hpp"

namespace scmd {

struct XyzWriter::Impl {
  std::ofstream out;
};

XyzWriter::XyzWriter(const std::string& path,
                     std::vector<std::string> species)
    : impl_(std::make_unique<Impl>()), species_(std::move(species)) {
  SCMD_REQUIRE(!species_.empty(), "need at least one species symbol");
  impl_->out.open(path);
  SCMD_REQUIRE(impl_->out.good(), "cannot open " + path + " for writing");
}

XyzWriter::~XyzWriter() = default;

void XyzWriter::write_frame(const ParticleSystem& sys,
                            const std::string& comment) {
  auto& out = impl_->out;
  out << sys.num_atoms() << '\n';
  const Vec3 L = sys.box().lengths();
  out << "Lattice=\"" << L.x << " 0 0 0 " << L.y << " 0 0 0 " << L.z
      << "\" Properties=species:S:1:pos:R:3";
  if (!comment.empty()) out << ' ' << comment;
  out << '\n';
  out << std::setprecision(8);
  const auto pos = sys.positions();
  const auto type = sys.types();
  for (int i = 0; i < sys.num_atoms(); ++i) {
    const int t = type[i];
    SCMD_REQUIRE(t >= 0 && t < static_cast<int>(species_.size()),
                 "atom type without species symbol");
    out << species_[static_cast<std::size_t>(t)] << ' ' << pos[i].x << ' '
        << pos[i].y << ' ' << pos[i].z << '\n';
  }
  ++frames_;
  SCMD_REQUIRE(out.good(), "trajectory write failed");
}

}  // namespace scmd
