#include "io/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "support/error.hpp"

namespace scmd {

namespace {

constexpr std::uint64_t kMagic = 0x53434d445f434b31ULL;  // "SCMD_CK1"
constexpr std::uint32_t kVersion = 1;

void write_bytes(std::ofstream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  SCMD_REQUIRE(out.good(), "checkpoint write failed");
}

void read_bytes(std::ifstream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  SCMD_REQUIRE(in.good(), "checkpoint read failed (truncated file?)");
}

template <class T>
void write_pod(std::ofstream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_bytes(out, &value, sizeof(T));
}

template <class T>
T read_pod(std::ifstream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  read_bytes(in, &value, sizeof(T));
  return value;
}

}  // namespace

void save_checkpoint(const ParticleSystem& sys, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SCMD_REQUIRE(out.good(), "cannot open " + path + " for writing");

  write_pod(out, kMagic);
  write_pod(out, kVersion);
  const Vec3 lengths = sys.box().lengths();
  write_pod(out, lengths);
  write_pod(out, static_cast<std::int32_t>(sys.num_types()));
  for (int t = 0; t < sys.num_types(); ++t)
    write_pod(out, sys.mass_of_type(t));
  write_pod(out, static_cast<std::int64_t>(sys.num_atoms()));
  for (int i = 0; i < sys.num_atoms(); ++i) {
    write_pod(out, sys.positions()[i]);
    write_pod(out, sys.velocities()[i]);
    write_pod(out, sys.forces()[i]);
    write_pod(out, static_cast<std::int32_t>(sys.types()[i]));
  }
  SCMD_REQUIRE(out.good(), "checkpoint write failed");
}

ParticleSystem load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SCMD_REQUIRE(in.good(), "cannot open " + path + " for reading");

  SCMD_REQUIRE(read_pod<std::uint64_t>(in) == kMagic,
               path + " is not an SC-MD checkpoint");
  SCMD_REQUIRE(read_pod<std::uint32_t>(in) == kVersion,
               "unsupported checkpoint version in " + path);
  const Vec3 lengths = read_pod<Vec3>(in);
  const auto num_types = read_pod<std::int32_t>(in);
  SCMD_REQUIRE(num_types > 0 && num_types < 1024,
               "implausible species count in " + path);
  std::vector<double> masses;
  masses.reserve(static_cast<std::size_t>(num_types));
  for (std::int32_t t = 0; t < num_types; ++t)
    masses.push_back(read_pod<double>(in));

  ParticleSystem sys(Box(lengths), std::move(masses));
  const auto num_atoms = read_pod<std::int64_t>(in);
  SCMD_REQUIRE(num_atoms >= 0, "negative atom count in " + path);
  for (std::int64_t i = 0; i < num_atoms; ++i) {
    const Vec3 pos = read_pod<Vec3>(in);
    const Vec3 vel = read_pod<Vec3>(in);
    const Vec3 force = read_pod<Vec3>(in);
    const auto type = read_pod<std::int32_t>(in);
    const int id = sys.add_atom(pos, vel, type);
    sys.forces()[id] = force;
  }
  return sys;
}

}  // namespace scmd
