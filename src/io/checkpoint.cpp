#include "io/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "support/error.hpp"

namespace scmd {

namespace {

// Legacy v1 layout ("SCMD_CK1"): raw little-endian fields, no CRC, no
// sections.  Still read for old files; never written anymore — save goes
// through the v2 section container (src/ckpt), which adds per-section
// CRCs and a crash-safe temp-file + atomic-rename write path.
constexpr std::uint64_t kMagicV1 = 0x53434d445f434b31ULL;  // "SCMD_CK1"

template <class T>
T read_pod(std::ifstream& in, const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  SCMD_REQUIRE(in.good() && in.gcount() == sizeof(T),
               path + ": checkpoint truncated mid-field");
  return value;
}

ParticleSystem load_v1(std::ifstream& in, const std::string& path) {
  SCMD_REQUIRE(read_pod<std::uint32_t>(in, path) == 1,
               "unsupported checkpoint version in " + path);
  const Vec3 lengths = read_pod<Vec3>(in, path);
  const auto num_types = read_pod<std::int32_t>(in, path);
  SCMD_REQUIRE(num_types > 0 && num_types < 1024,
               "implausible species count in " + path);
  std::vector<double> masses;
  masses.reserve(static_cast<std::size_t>(num_types));
  for (std::int32_t t = 0; t < num_types; ++t)
    masses.push_back(read_pod<double>(in, path));

  ParticleSystem sys(Box(lengths), std::move(masses));
  const auto num_atoms = read_pod<std::int64_t>(in, path);
  SCMD_REQUIRE(num_atoms >= 0, "negative atom count in " + path);
  for (std::int64_t i = 0; i < num_atoms; ++i) {
    const Vec3 pos = read_pod<Vec3>(in, path);
    const Vec3 vel = read_pod<Vec3>(in, path);
    const Vec3 force = read_pod<Vec3>(in, path);
    const auto type = read_pod<std::int32_t>(in, path);
    SCMD_REQUIRE(type >= 0 && type < sys.num_types(),
                 "atom type out of range in " + path);
    const int id = sys.add_atom(pos, vel, type);
    sys.forces()[id] = force;
  }
  // A v1 file is exactly header + atoms; trailing bytes mean the file
  // was appended to or corrupted, and silently ignoring them would mask
  // that.
  in.peek();
  SCMD_REQUIRE(in.eof(), path + ": trailing bytes after checkpoint data");
  return sys;
}

}  // namespace

void save_checkpoint(const ParticleSystem& sys, const std::string& path) {
  ckpt::CheckpointData data;
  data.system = sys;
  ckpt::write_checkpoint(data, path);
}

ParticleSystem load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SCMD_REQUIRE(in.good(), "cannot open " + path + " for reading");
  const auto magic = read_pod<std::uint64_t>(in, path);
  if (magic == kMagicV1) return load_v1(in, path);
  in.close();
  SCMD_REQUIRE(magic == ckpt::kContainerMagic,
               path + " is not an SC-MD checkpoint");
  return ckpt::read_checkpoint(path).system;
}

}  // namespace scmd
