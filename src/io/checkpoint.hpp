#pragma once

/// \file checkpoint.hpp
/// Binary checkpoint save/restore for particle systems.
///
/// Long benchmark campaigns (the paper averages over 10,000 steps)
/// restart from equilibrated states instead of re-equilibrating.  Writes
/// go through the v2 section container (src/ckpt: per-section CRC32,
/// temp-file + fsync + atomic rename); reads accept both v2 and the
/// legacy v1 fixed layout.  Exact double round-tripping either way.

#include <string>

#include "md/system.hpp"

namespace scmd {

/// Write the full system state (box, masses, positions, velocities,
/// forces, types) to `path`.  Throws scmd::Error on I/O failure.
void save_checkpoint(const ParticleSystem& sys, const std::string& path);

/// Read a checkpoint written by save_checkpoint.  Throws scmd::Error on
/// I/O failure, bad magic, or version mismatch.
ParticleSystem load_checkpoint(const std::string& path);

}  // namespace scmd
