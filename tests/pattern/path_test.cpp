#include "pattern/path.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

Path random_path(int n, Rng& rng, int span = 2) {
  Path p;
  for (int k = 0; k < n; ++k) {
    p.push_back({static_cast<int>(rng.uniform_index(2 * span + 1)) - span,
                 static_cast<int>(rng.uniform_index(2 * span + 1)) - span,
                 static_cast<int>(rng.uniform_index(2 * span + 1)) - span});
  }
  return p;
}

TEST(PathTest, ConstructionAndAccess) {
  const Path p{{0, 0, 0}, {1, 0, -1}};
  EXPECT_EQ(p.size(), 2);
  EXPECT_EQ(p[0], (Int3{0, 0, 0}));
  EXPECT_EQ(p[1], (Int3{1, 0, -1}));
}

TEST(PathTest, PushPopRoundTrip) {
  Path p;
  p.push_back({1, 2, 3});
  p.push_back({4, 5, 6});
  EXPECT_EQ(p.size(), 2);
  p.pop_back();
  EXPECT_EQ(p.size(), 1);
  EXPECT_EQ(p[0], (Int3{1, 2, 3}));
  p.pop_back();
  EXPECT_THROW(p.pop_back(), Error);
}

TEST(PathTest, InverseReversesOffsets) {
  const Path p{{0, 0, 0}, {1, 1, 1}, {2, 0, 0}};
  const Path inv = p.inverse();
  EXPECT_EQ(inv[0], (Int3{2, 0, 0}));
  EXPECT_EQ(inv[1], (Int3{1, 1, 1}));
  EXPECT_EQ(inv[2], (Int3{0, 0, 0}));
}

TEST(PathTest, InverseIsInvolution) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Path p = random_path(2 + static_cast<int>(rng.uniform_index(4)), rng);
    EXPECT_EQ(p.inverse().inverse(), p);
  }
}

TEST(PathTest, ShiftTranslatesAllOffsets) {
  const Path p{{0, 0, 0}, {1, 0, 0}};
  const Path s = p.shifted({-1, 2, 3});
  EXPECT_EQ(s[0], (Int3{-1, 2, 3}));
  EXPECT_EQ(s[1], (Int3{0, 2, 3}));
}

TEST(PathTest, SigmaIsShiftInvariant) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Path p = random_path(3, rng);
    const Int3 delta{static_cast<int>(rng.uniform_index(7)) - 3,
                     static_cast<int>(rng.uniform_index(7)) - 3,
                     static_cast<int>(rng.uniform_index(7)) - 3};
    EXPECT_EQ(p.sigma(), p.shifted(delta).sigma());
  }
}

TEST(PathTest, SigmaComputesDifferences) {
  const Path p{{0, 0, 0}, {1, 1, 0}, {1, 0, 1}};
  const Path s = p.sigma();
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s[0], (Int3{1, 1, 0}));
  EXPECT_EQ(s[1], (Int3{0, -1, 1}));
}

TEST(PathTest, SelfReflectiveDetection) {
  // Pair path staying in one cell: p == p^{-1}.
  EXPECT_TRUE((Path{{0, 0, 0}, {0, 0, 0}}).self_reflective());
  // Straight pair path is not.
  EXPECT_FALSE((Path{{0, 0, 0}, {1, 0, 0}}).self_reflective());
  // Triplet out-and-back is self-reflective.
  EXPECT_TRUE((Path{{0, 0, 0}, {1, 0, 0}, {0, 0, 0}}).self_reflective());
  EXPECT_FALSE((Path{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}}).self_reflective());
}

TEST(PathTest, SelfReflectiveIsShiftInvariant) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const Path p = random_path(2 + static_cast<int>(rng.uniform_index(3)), rng);
    const Int3 delta{1, -2, 3};
    EXPECT_EQ(p.self_reflective(), p.shifted(delta).self_reflective());
  }
}

TEST(PathTest, CornersBoundAllOffsets) {
  const Path p{{1, -2, 0}, {3, 4, -5}, {0, 0, 0}};
  EXPECT_EQ(p.min_corner(), (Int3{0, -2, -5}));
  EXPECT_EQ(p.max_corner(), (Int3{3, 4, 0}));
}

TEST(PathTest, ReflectionKeyEqualForTwins) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_index(4));
    const Path p = random_path(n, rng);
    // The reflective twin RPT(p) = p^{-1} - v_{n-1} (Lemma 6).
    const Path twin = p.inverse().shifted(-p[n - 1]);
    EXPECT_EQ(p.reflection_key(), twin.reflection_key());
  }
}

TEST(PathTest, ReflectionKeyDiffersForUnrelatedPaths) {
  const Path a{{0, 0, 0}, {1, 0, 0}};
  const Path b{{0, 0, 0}, {0, 1, 0}};
  EXPECT_NE(a.reflection_key(), b.reflection_key());
}

TEST(PathTest, FirstOctantCheck) {
  EXPECT_TRUE((Path{{0, 0, 0}, {1, 2, 3}}).in_first_octant());
  EXPECT_FALSE((Path{{0, 0, 0}, {-1, 0, 0}}).in_first_octant());
}

TEST(PathTest, UnitStepCheck) {
  EXPECT_TRUE((Path{{0, 0, 0}, {1, 1, -1}}).has_unit_steps());
  EXPECT_FALSE((Path{{0, 0, 0}, {2, 0, 0}}).has_unit_steps());
  EXPECT_TRUE((Path{{5, 5, 5}, {4, 4, 4}, {5, 3, 4}}).has_unit_steps());
}

TEST(PathTest, CapacityEnforced) {
  Path p;
  for (int i = 0; i < kMaxTupleLen; ++i) p.push_back({0, 0, 0});
  EXPECT_THROW(p.push_back({0, 0, 0}), Error);
}

TEST(PathTest, OrderingIsLexicographic) {
  const Path a{{0, 0, 0}, {0, 0, 1}};
  const Path b{{0, 0, 0}, {0, 1, 0}};
  EXPECT_LT(a, b);
  const Path shorter{{0, 0, 0}};
  EXPECT_LT(shorter, a);  // size compares first
}

}  // namespace
}  // namespace scmd
