#include "pattern/analysis.hpp"

#include <gtest/gtest.h>

#include "pattern/generate.hpp"
#include "support/error.hpp"

namespace scmd {
namespace {

TEST(CoverageTest, FullShellPairCovers27Cells) {
  EXPECT_EQ(cell_footprint(generate_fs(2)), 27u);
}

TEST(CoverageTest, FullShellTripletCovers125Cells) {
  // FS(3) reaches two nearest-neighbor steps: the 5^3 cube.
  EXPECT_EQ(cell_footprint(generate_fs(3)), 125u);
}

TEST(CoverageTest, ScPairFootprintIsOctant) {
  EXPECT_EQ(cell_footprint(make_sc(2)), 8u);
}

TEST(CoverageTest, ScTripletFootprintWithinOctantCube) {
  const auto cover = cell_coverage(make_sc(3));
  EXPECT_LE(cover.size(), 27u);
  for (const Int3& v : cover) {
    EXPECT_GE(v.chebyshev(), 0);
    EXPECT_TRUE(v.x >= 0 && v.y >= 0 && v.z >= 0);
    EXPECT_TRUE(v.x <= 2 && v.y <= 2 && v.z <= 2);
  }
}

TEST(ImportVolumeTest, EighthShellImports7CellsAtL1) {
  // Paper Sec. 4.3.3 / Eq. 33 with l = 1, n = 2.
  EXPECT_EQ(import_volume(make_es(), {1, 1, 1}), 7);
  EXPECT_EQ(sc_import_volume(1, 2), 7);
}

TEST(ImportVolumeTest, FullShellPairImports26CellsAtL1) {
  EXPECT_EQ(import_volume(generate_fs(2), {1, 1, 1}), 26);
  EXPECT_EQ(fs_import_volume(1, 2), 26);
}

TEST(ImportVolumeTest, ScMatchesClosedFormEq33) {
  for (int n : {2, 3, 4}) {
    for (int l : {1, 2, 3, 5}) {
      EXPECT_EQ(import_volume(make_sc(n), {l, l, l}), sc_import_volume(l, n))
          << "n=" << n << " l=" << l;
    }
  }
}

TEST(ImportVolumeTest, FsMatchesClosedForm) {
  for (int n : {2, 3}) {
    for (int l : {1, 2, 4}) {
      EXPECT_EQ(import_volume(generate_fs(n), {l, l, l}),
                fs_import_volume(l, n))
          << "n=" << n << " l=" << l;
    }
  }
}

TEST(ImportVolumeTest, NonCubicBrick) {
  // (lx + n-1)(ly + n-1)(lz + n-1) - lx*ly*lz for SC.
  const long long v = import_volume(make_sc(3), {2, 3, 4});
  EXPECT_EQ(v, 4LL * 5 * 6 - 2LL * 3 * 4);
}

TEST(ImportNeighborTest, ScNeedsSevenNeighbors) {
  // Octant import touches the 7 upper neighbor ranks when the halo fits
  // within one rank brick (paper Sec. 4.2).
  EXPECT_EQ(import_neighbor_count(make_sc(2), {1, 1, 1}), 7);
  EXPECT_EQ(import_neighbor_count(make_sc(3), {2, 2, 2}), 7);
}

TEST(ImportNeighborTest, FsNeedsTwentySixNeighbors) {
  EXPECT_EQ(import_neighbor_count(generate_fs(2), {1, 1, 1}), 26);
  EXPECT_EQ(import_neighbor_count(generate_fs(3), {2, 2, 2}), 26);
}

TEST(ImportNeighborTest, FineGrainTripletReachesFurtherRanks) {
  // With l = 1 and n = 3 the SC halo is two bricks deep: 26 ranks in the
  // upper octant direction.
  EXPECT_EQ(import_neighbor_count(make_sc(3), {1, 1, 1}), 26);
}

TEST(ClosedFormsTest, PatternSizes) {
  EXPECT_EQ(fs_pattern_size(2), 27);
  EXPECT_EQ(fs_pattern_size(3), 729);
  EXPECT_EQ(fs_pattern_size(4), 19683);
  EXPECT_EQ(sc_pattern_size(2), 14);       // half-shell
  EXPECT_EQ(sc_pattern_size(3), 378);      // (729 + 27) / 2
  EXPECT_EQ(sc_pattern_size(4), 9855);     // (19683 + 27) / 2
  EXPECT_EQ(sc_pattern_size(5), 266085);   // (531441 + 729) / 2
  EXPECT_EQ(non_collapsible_count(2), 1);
  EXPECT_EQ(non_collapsible_count(3), 27);
  EXPECT_EQ(non_collapsible_count(4), 27);
  EXPECT_EQ(non_collapsible_count(5), 729);
  EXPECT_EQ(non_collapsible_count(6), 729);
}

TEST(ClosedFormsTest, SearchCostHalvingForLargeN) {
  // |Ψ_SC| / |Ψ_FS| -> 1/2 (paper Eq. 29).
  for (int n : {4, 5, 6}) {
    const double ratio = static_cast<double>(sc_pattern_size(n)) /
                         static_cast<double>(fs_pattern_size(n));
    EXPECT_NEAR(ratio, 0.5, 0.002) << "n=" << n;
  }
}

TEST(ClosedFormsTest, RejectsBadArguments) {
  EXPECT_THROW(fs_pattern_size(1), Error);
  EXPECT_THROW(sc_import_volume(0, 2), Error);
}

TEST(AnalysisTest, ImportCellsAreOutsideBrick) {
  const Int3 dims{2, 2, 2};
  for (const Int3& c : import_cells(make_sc(3), dims)) {
    EXPECT_TRUE(c.x < 0 || c.x >= dims.x || c.y < 0 || c.y >= dims.y ||
                c.z < 0 || c.z >= dims.z);
  }
}

}  // namespace
}  // namespace scmd
