// Algebraic properties of the pattern operations: idempotence,
// commutation with the force-set semantics, and composition order.

#include <gtest/gtest.h>

#include <set>

#include "pattern/analysis.hpp"
#include "pattern/generate.hpp"

namespace scmd {
namespace {

bool same_paths(const Pattern& a, const Pattern& b) {
  std::multiset<Path> pa(a.begin(), a.end());
  std::multiset<Path> pb(b.begin(), b.end());
  return pa == pb;
}

TEST(PatternOpsTest, OcShiftIsIdempotent) {
  for (int n : {2, 3, 4}) {
    const Pattern once = oc_shift(generate_fs(n));
    const Pattern twice = oc_shift(once);
    EXPECT_TRUE(same_paths(once, twice)) << "n=" << n;
  }
}

TEST(PatternOpsTest, RCollapseIsIdempotent) {
  for (int n : {2, 3, 4}) {
    const Pattern once = r_collapse(generate_fs(n));
    const Pattern twice = r_collapse(once);
    EXPECT_EQ(once.size(), twice.size()) << "n=" << n;
    EXPECT_TRUE(once.equivalent_to(twice)) << "n=" << n;
  }
}

TEST(PatternOpsTest, PhaseOrderDoesNotChangeSizeOrEquivalence) {
  // R-COLLAPSE(OC-SHIFT(FS)) vs OC-SHIFT(R-COLLAPSE(FS)): both collapse
  // exactly one path per reflective class (the equivalence test is
  // shift-invariant), so sizes agree and force sets coincide.
  for (int n : {2, 3}) {
    const Pattern a = r_collapse(oc_shift(generate_fs(n)));
    const Pattern b = oc_shift(r_collapse(generate_fs(n)));
    EXPECT_EQ(a.size(), b.size()) << "n=" << n;
    EXPECT_TRUE(a.equivalent_to(b)) << "n=" << n;
  }
}

TEST(PatternOpsTest, CollapsePreservesEquivalenceClasses) {
  for (int n : {2, 3}) {
    const Pattern fs = generate_fs(n);
    const Pattern rc = r_collapse(fs);
    // Every FS path has an equivalent representative in RC.
    std::set<Path> rc_keys;
    for (const Path& p : rc) rc_keys.insert(p.reflection_key());
    for (const Path& p : fs) {
      EXPECT_TRUE(rc_keys.count(p.reflection_key())) << "n=" << n;
    }
  }
}

TEST(PatternOpsTest, OcShiftPreservesPathCount) {
  for (int n : {2, 3, 4}) {
    const Pattern fs = generate_fs(n);
    EXPECT_EQ(oc_shift(fs).size(), fs.size());
  }
}

TEST(PatternOpsTest, CollapsedFlagPropagates) {
  EXPECT_FALSE(oc_shift(generate_fs(2)).collapsed());
  EXPECT_TRUE(r_collapse(generate_fs(2)).collapsed());
  EXPECT_TRUE(oc_shift(r_collapse(generate_fs(2))).collapsed());
}

TEST(PatternOpsTest, FootprintNeverGrowsUnderCollapse) {
  for (int n : {2, 3, 4}) {
    const Pattern fs = generate_fs(n);
    EXPECT_LE(cell_footprint(r_collapse(fs)), cell_footprint(fs));
    EXPECT_LE(cell_footprint(oc_shift(fs)), cell_footprint(fs));
  }
}

TEST(PatternOpsTest, ImportVolumeOrdering) {
  // SC <= OC-only <= FS, and SC <= RC-only <= FS, for import volumes.
  for (int n : {2, 3}) {
    for (int l : {1, 2, 4}) {
      const Int3 brick{l, l, l};
      const long long fs = import_volume(generate_fs(n), brick);
      const long long oc = import_volume(oc_shift(generate_fs(n)), brick);
      const long long rc = import_volume(r_collapse(generate_fs(n)), brick);
      const long long sc = import_volume(make_sc(n), brick);
      EXPECT_LE(sc, oc);
      EXPECT_LE(oc, fs);
      EXPECT_LE(sc, rc);
      EXPECT_LE(rc, fs);
    }
  }
}

TEST(PatternOpsTest, SubCutoffCommutesWithPhases) {
  // The pipeline applies unchanged at reach = 2.
  const Pattern a = r_collapse(oc_shift(generate_fs(3, 2)));
  const Pattern b = make_sc(3, 2);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_TRUE(a.equivalent_to(b));
}

}  // namespace
}  // namespace scmd
