#include "pattern/generate.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pattern/analysis.hpp"
#include "support/error.hpp"

namespace scmd {
namespace {

TEST(GenerateFsTest, SizeIs27ToTheNMinus1) {
  for (int n = 2; n <= 5; ++n) {
    EXPECT_EQ(static_cast<long long>(generate_fs(n).size()),
              fs_pattern_size(n))
        << "n=" << n;
  }
}

TEST(GenerateFsTest, AllPathsStartAtOriginWithUnitSteps) {
  for (int n : {2, 3, 4}) {
    const Pattern psi = generate_fs(n);
    for (const Path& p : psi) {
      EXPECT_EQ(p[0], (Int3{0, 0, 0}));
      EXPECT_TRUE(p.has_unit_steps());
      EXPECT_EQ(p.size(), n);
    }
  }
}

TEST(GenerateFsTest, PathsAreDistinct) {
  const Pattern psi = generate_fs(3);
  std::set<Path> unique(psi.begin(), psi.end());
  EXPECT_EQ(unique.size(), psi.size());
}

TEST(GenerateFsTest, NotCollapsedFlag) {
  EXPECT_FALSE(generate_fs(2).collapsed());
}

TEST(OcShiftTest, ShiftedPathsLieInFirstOctant) {
  for (int n : {2, 3, 4}) {
    const Pattern psi = oc_shift(generate_fs(n));
    for (const Path& p : psi) EXPECT_TRUE(p.in_first_octant());
  }
}

TEST(OcShiftTest, PreservesSigmaOfEveryPath) {
  const Pattern before = generate_fs(3);
  const Pattern after = oc_shift(before);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i].sigma(), after[i].sigma());
}

TEST(OcShiftTest, CoverageWithinNMinus1Cube) {
  // Paper Sec. 4.2: OC-shifted coverage is within c[0, n-1].
  for (int n : {2, 3, 4}) {
    const Pattern psi = oc_shift(generate_fs(n));
    for (const Int3& v : cell_coverage(psi)) {
      EXPECT_GE(v.x, 0);
      EXPECT_GE(v.y, 0);
      EXPECT_GE(v.z, 0);
      EXPECT_LE(v.x, n - 1);
      EXPECT_LE(v.y, n - 1);
      EXPECT_LE(v.z, n - 1);
    }
  }
}

TEST(RCollapseTest, SizeMatchesEq29) {
  for (int n = 2; n <= 5; ++n) {
    const Pattern sc = make_sc(n);
    EXPECT_EQ(static_cast<long long>(sc.size()), sc_pattern_size(n))
        << "n=" << n;
  }
}

TEST(RCollapseTest, CollapsedPatternHasNoTwinPairs) {
  for (int n : {2, 3, 4}) {
    const Pattern sc = make_sc(n);
    std::set<Path> keys;
    for (const Path& p : sc) {
      const auto [it, inserted] = keys.insert(p.reflection_key());
      EXPECT_TRUE(inserted) << "duplicate reflective class, n=" << n;
    }
  }
}

TEST(RCollapseTest, EquivalentToFullShell) {
  // Same set of reflective classes as FS: no force information lost.
  for (int n : {2, 3}) {
    EXPECT_TRUE(make_sc(n).equivalent_to(generate_fs(n))) << "n=" << n;
  }
}

TEST(RCollapseTest, PairwiseTranscriptionAgreesWithCanonical) {
  // Table 5 verbatim vs canonical-key dedup: equal size, equivalent sets.
  for (int n : {2, 3}) {
    const Pattern base = oc_shift(generate_fs(n));
    const Pattern fast = r_collapse(base);
    const Pattern slow = r_collapse_pairwise(base);
    EXPECT_EQ(fast.size(), slow.size()) << "n=" << n;
    EXPECT_TRUE(fast.equivalent_to(slow)) << "n=" << n;
  }
}

TEST(RCollapseTest, SelfReflectivePathCountMatchesTheory) {
  for (int n = 2; n <= 5; ++n) {
    const Pattern sc = make_sc(n);
    long long self_count = 0;
    for (const Path& p : sc)
      if (p.self_reflective()) ++self_count;
    EXPECT_EQ(self_count, non_collapsible_count(n)) << "n=" << n;
  }
}

TEST(HalfShellTest, Has14Paths) {
  const Pattern hs = make_hs();
  EXPECT_EQ(hs.size(), 14u);
  EXPECT_TRUE(hs.collapsed());
  EXPECT_TRUE(hs.equivalent_to(generate_fs(2)));
}

TEST(EighthShellTest, EqualsScForN2) {
  // ES = OC-SHIFT(HS) generates the same force set as SC(2)
  // (paper Sec. 4.3.3: ES is a special case of SC).
  const Pattern es = make_es();
  const Pattern sc2 = make_sc(2);
  EXPECT_EQ(es.size(), sc2.size());
  EXPECT_TRUE(es.equivalent_to(sc2));
}

TEST(EighthShellTest, CoverageIsFirstOctant) {
  const Pattern es = make_es();
  const auto cover = cell_coverage(es);
  // All eight {0,1}^3 cells are touched and nothing else.
  EXPECT_EQ(cover.size(), 8u);
  for (const Int3& v : cover) {
    EXPECT_GE(v.x, 0);
    EXPECT_LE(v.x, 1);
    EXPECT_GE(v.y, 0);
    EXPECT_LE(v.y, 1);
    EXPECT_GE(v.z, 0);
    EXPECT_LE(v.z, 1);
  }
}

TEST(MakeScTest, CollapsedFlagSet) {
  EXPECT_TRUE(make_sc(3).collapsed());
}

TEST(MakeScTest, RejectsOutOfRangeN) {
  EXPECT_THROW(generate_fs(1), Error);
  EXPECT_THROW(generate_fs(kMaxTupleLen + 1), Error);
}

TEST(GenerateFsTest, OversizedPatternIsRejectedBeforeTheCountOverflows) {
  // n = 8, reach = 4 passes both range checks, but 729^7 overflows the
  // long long path count; the guard must fire mid-accumulation, never
  // after.  Run under UBSan this pins the fix.
  EXPECT_THROW(generate_fs(kMaxTupleLen, 4), Error);
  EXPECT_THROW(generate_fs(kMaxTupleLen, 3), Error);
}

TEST(PatternTest, AddRejectsWrongLength) {
  Pattern psi(3);
  EXPECT_THROW(psi.add(Path{{0, 0, 0}, {1, 0, 0}}), Error);
}

TEST(PatternTest, ContainsAndSort) {
  Pattern psi(2);
  psi.add(Path{{0, 0, 0}, {1, 0, 0}});
  psi.add(Path{{0, 0, 0}, {0, 0, 0}});
  EXPECT_TRUE(psi.contains(Path{{0, 0, 0}, {1, 0, 0}}));
  EXPECT_FALSE(psi.contains(Path{{0, 0, 0}, {0, 1, 0}}));
  psi.sort();
  EXPECT_EQ(psi[0], (Path{{0, 0, 0}, {0, 0, 0}}));
}

}  // namespace
}  // namespace scmd
