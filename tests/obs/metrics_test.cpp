#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace scmd::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry reg;
  reg.add("work.steps", 10);
  reg.add("work.steps", 5);
  EXPECT_EQ(reg.value("work.steps"), 15.0);

  reg.set("energy", -3.5);
  reg.set("energy", -4.0);
  EXPECT_EQ(reg.value("energy"), -4.0);

  EXPECT_TRUE(reg.has("energy"));
  EXPECT_FALSE(reg.has("missing"));
  EXPECT_THROW(reg.value("missing"), std::exception);
  // Re-registering a counter as a gauge is a schema bug.
  EXPECT_THROW(reg.set("work.steps", 1.0), std::exception);
}

TEST(MetricsRegistryTest, ConcurrentCounterIncrementsAreNotLost) {
  // Rank threads hammer one counter, one gauge, and one histogram while
  // another thread emits snapshots; every increment must survive.  Run
  // under TSan this also proves the registry lock covers the hot path.
  MetricsRegistry reg;
  std::ostringstream out;
  reg.add_sink(std::make_unique<JsonlSink>(out));
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIncrements; ++i) {
        reg.add("stress.count", 1);
        reg.set("stress.gauge", static_cast<double>(t));
        reg.observe("stress.hist", 0.0, 1.0, 4, 0.5);
      }
    });
  }
  std::thread emitter([&reg] {
    for (int s = 0; s < 50; ++s) reg.emit(s);
  });
  for (auto& th : threads) th.join();
  emitter.join();
  EXPECT_EQ(reg.value("stress.count"),
            static_cast<double>(kThreads) * kIncrements);
  EXPECT_EQ(reg.histogram_at("stress.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, ScalarNamesKeepRegistrationOrder) {
  MetricsRegistry reg;
  reg.set("b", 1);
  reg.add("a", 2);
  reg.set("c", 3);
  const auto names = reg.scalar_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
  EXPECT_EQ(names[2], "c");
}

TEST(HistogramTest, BucketsUnderflowOverflow) {
  Histogram h(0.0, 10.0, 5);  // buckets of width 2
  h.observe(-1.0);            // underflow
  h.observe(0.0);             // bucket 0
  h.observe(1.9);             // bucket 0
  h.observe(2.0);             // bucket 1
  h.observe(9.99);            // bucket 4
  h.observe(10.0);            // overflow (half-open [lo, hi))
  h.observe(42.0);            // overflow

  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), -1.0 + 0.0 + 1.9 + 2.0 + 9.99 + 10.0 + 42.0, 1e-12);

  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(HistogramTest, RegistryRejectsRespecification) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", 0.0, 1.0, 10);
  h.observe(0.5);
  // Same spec: same object back.
  EXPECT_EQ(&reg.histogram("lat", 0.0, 1.0, 10), &h);
  EXPECT_THROW(reg.histogram("lat", 0.0, 2.0, 10), std::exception);
}

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonlSinkTest, EmitsOneValidObjectPerStep) {
  MetricsRegistry reg;
  std::ostringstream os;
  reg.add_sink(std::make_unique<JsonlSink>(os));
  reg.set_attr("strategy", "SC\"quoted\"");
  reg.set("energy", -1.5);
  reg.add("steps", 7);
  reg.histogram("h", 0.0, 1.0, 2).observe(0.25);
  reg.emit(0);
  reg.set("energy", -2.5);
  reg.emit(1);

  const std::string out = os.str();
  // Exactly two newline-terminated records.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  const std::string line1 = out.substr(0, out.find('\n'));
  EXPECT_NE(line1.find("\"step\":0"), std::string::npos);
  EXPECT_NE(line1.find("\"strategy\":\"SC\\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(line1.find("\"energy\":-1.5"), std::string::npos);
  EXPECT_NE(line1.find("\"steps\":7"), std::string::npos);
  EXPECT_NE(line1.find("\"buckets\":[1,0]"), std::string::npos);
  // Balanced braces/brackets per line — cheap well-formedness proxy.
  for (const std::string& line :
       {line1, out.substr(out.find('\n') + 1,
                          out.rfind('\n') - out.find('\n') - 1)}) {
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'));
    EXPECT_EQ(std::count(line.begin(), line.end(), '['),
              std::count(line.begin(), line.end(), ']'));
  }
  const std::string line2 = out.substr(out.find('\n') + 1);
  EXPECT_NE(line2.find("\"step\":1"), std::string::npos);
  EXPECT_NE(line2.find("\"energy\":-2.5"), std::string::npos);
}

TEST(CsvSinkTest, HeaderFrozenAtFirstEmit) {
  MetricsRegistry reg;
  std::ostringstream os;
  reg.add_sink(std::make_unique<CsvSink>(os));
  reg.set_attr("strategy", "SC");
  reg.set("energy", -1.0);
  reg.add("steps", 3);
  reg.emit(0);
  // A metric registered after the first emit must not change the header.
  reg.set("late.metric", 9.0);
  reg.emit(1);

  std::istringstream in(os.str());
  std::string header, row0, row1, extra;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row0));
  ASSERT_TRUE(std::getline(in, row1));
  EXPECT_FALSE(std::getline(in, extra));  // exactly header + 2 rows

  EXPECT_EQ(header, "step,strategy,energy,steps");
  EXPECT_EQ(row0, "0,SC,-1,3");
  EXPECT_EQ(row1, "1,SC,-1,3");
  EXPECT_EQ(std::count(row1.begin(), row1.end(), ','),
            std::count(header.begin(), header.end(), ','));
}

TEST(MetricsRegistryTest, NullSinkFastPathDoesNotThrow) {
  MetricsRegistry reg;
  reg.set("x", 1.0);
  EXPECT_FALSE(reg.has_sinks());
  reg.emit(0);  // no sinks: immediate return
  EXPECT_EQ(reg.value("x"), 1.0);
}

}  // namespace
}  // namespace scmd::obs
