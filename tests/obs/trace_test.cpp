#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>

namespace scmd::obs {
namespace {

TEST(TraceSessionTest, RecordsNestedSpansWithContainment) {
  TraceSession session;
  {
    TraceScope outer(&session, "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceScope inner(&session, "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto events = session.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner scope closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  // Nesting: the inner span lies inside the outer one on the timeline.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1.0);
  EXPECT_GT(inner.dur_us, 0.0);
  EXPECT_GT(outer.dur_us, inner.dur_us);
}

TEST(TraceSessionTest, NullSessionScopesAreNoOps) {
  {
    TraceScope scope(nullptr, "nothing");
  }
  // Unbound thread: the macro path resolves to a null session.
  EXPECT_EQ(thread_session(), nullptr);
  { SCMD_TRACE("also.nothing"); }
}

TEST(TraceSessionTest, ThreadBindingTagsSpansWithTid) {
  TraceSession session;
  std::thread worker([&] {
    bind_thread(&session, 7);
    TraceScope scope("ranked");
    (void)scope;
  });
  worker.join();
  const auto events = session.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, 7);
  EXPECT_EQ(events[0].name, "ranked");
}

TEST(TraceSessionTest, ThreadTraceGuardRestoresPreviousBinding) {
  TraceSession a, b;
  bind_thread(&a, 1);
  {
    ThreadTraceGuard guard(&b, 2);
    EXPECT_EQ(thread_session(), &b);
    EXPECT_EQ(thread_tid(), 2);
  }
  EXPECT_EQ(thread_session(), &a);
  EXPECT_EQ(thread_tid(), 1);
  bind_thread(nullptr, 0);
}

TEST(TraceSessionTest, ChromeJsonIsWellFormedAndParseable) {
  TraceSession session;
  {
    TraceScope outer(&session, "phase \"x\"");
    TraceScope inner(&session, "sub");
  }
  std::ostringstream os;
  session.write_chrome_json(os);
  const std::string json = os.str();

  // Top-level shape.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Required keys on every event.
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n') >= 2, true);
  for (const char* key : {"\"name\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":",
                          "\"pid\":", "\"tid\":"}) {
    size_t occurrences = 0, at = 0;
    while ((at = json.find(key, at)) != std::string::npos) {
      ++occurrences;
      ++at;
    }
    EXPECT_EQ(occurrences, 2u) << key;
  }
  // Quotes inside span names are escaped.
  EXPECT_NE(json.find("phase \\\"x\\\""), std::string::npos);
  // Balanced braces/brackets — parse-back proxy without a JSON library.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceSessionTest, SearchPhaseNamesClampIntoRange) {
  EXPECT_STREQ(search_phase_name(2), "search.n2");
  EXPECT_STREQ(search_phase_name(3), "search.n3");
  EXPECT_STREQ(search_phase_name(8), "search.n8");
  EXPECT_STREQ(search_phase_name(0), "search.n2");
  EXPECT_STREQ(search_phase_name(99), "search.n8");
}

}  // namespace
}  // namespace scmd::obs
