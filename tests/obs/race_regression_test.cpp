/// \file race_regression_test.cpp
/// Pinning tests for the races the thread-safety annotation pass
/// surfaced (docs/CHECKING.md, "The static layer").  Each test hammers
/// the previously-racy access pattern from multiple threads; they are
/// meaningful primarily under ThreadSanitizer (ctest label `parallel`,
/// selected by the tsan preset), where the pre-fix code reports within
/// a few iterations.
///
/// The fixes under test:
///  - MetricsRegistry::attrs() returned a reference to the attribute
///    vector, read by sinks during emit() while rank threads call
///    set_attr(); it now copies under the registry lock.
///  - check::options() returned a reference to the global Options while
///    set_options() mutated it; both now synchronize on an internal
///    lock and options() returns a snapshot.
///  - TelemetryCollector: status_json() (status-server thread) reads
///    the step slots and anomaly list while ingest()/record merging
///    (driver thread) rewrites them; every mutable member is now
///    guarded by one mutex.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "check/invariant.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace scmd {
namespace {

constexpr int kIters = 300;

TEST(RaceRegressionTest, MetricsAttrsSnapshotVsSetAttr) {
  obs::MetricsRegistry reg;
  reg.set_attr("strategy", "SC");

  std::thread writer([&] {
    for (int i = 0; i < kIters; ++i)
      reg.set_attr("round", std::to_string(i));
  });
  // The sink-side pattern: snapshot attrs and walk them while the
  // writer mutates the underlying vector.
  for (int i = 0; i < kIters; ++i) {
    std::size_t chars = 0;
    for (const auto& [k, v] : reg.attrs()) chars += k.size() + v.size();
    ASSERT_GT(chars, 0u);
  }
  writer.join();
  ASSERT_EQ(reg.attrs().size(), 2u);
}

TEST(RaceRegressionTest, CheckOptionsSnapshotVsSetOptions) {
  const check::Options saved = check::options();
  std::thread writer([&] {
    for (int i = 0; i < kIters; ++i) {
      check::Options o = saved;
      o.enabled = (i % 2) == 0;
      check::set_options(o);
    }
  });
  for (int i = 0; i < kIters; ++i) {
    const check::Options o = check::options();
    // The snapshot is coherent regardless of the writer's progress.
    ASSERT_TRUE(o.action == check::FailureAction::kAbort ||
                o.action == check::FailureAction::kThrow);
  }
  writer.join();
  check::set_options(saved);
}

TEST(RaceRegressionTest, CollectorStatusJsonVsIngest) {
  obs::TelemetryCollector::Config cfg;
  cfg.num_ranks = 2;
  cfg.num_records = kIters;
  obs::TelemetryCollector collector(cfg);

  // Driver thread: rank 1's records arrive while this thread (playing
  // the status server) polls status_json().
  std::thread driver([&] {
    for (int s = 0; s < kIters; ++s) {
      for (int r = 0; r < 2; ++r) {
        obs::TelemetryFrame frame;
        frame.rank = r;
        obs::TelemetryStepRecord rec;
        rec.step = s;
        rec.potential_energy = -1.0 * s;
        frame.steps.push_back(rec);
        collector.ingest(frame);
      }
    }
    collector.finish();
  });
  long long last_seen = 0;
  for (int i = 0; i < kIters; ++i) {
    const std::string json = collector.status_json();
    ASSERT_FALSE(json.empty());
    ASSERT_EQ(json.front(), '{');
    last_seen = collector.finalized_steps();
  }
  driver.join();
  ASSERT_LE(last_seen, collector.finalized_steps());
  ASSERT_EQ(collector.finalized_steps(), kIters);
}

}  // namespace
}  // namespace scmd
