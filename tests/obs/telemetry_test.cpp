// Telemetry wire format + collector unit tests (docs/OBSERVABILITY.md):
// the frame codec must round-trip and reject corruption loudly; the
// collector must difference cumulative transport snapshots into
// per-step deltas, honor the emit cadence (final record always
// emitted), clock-shift merged spans onto per-rank lanes, feed the
// phase histograms, and serve a parseable status snapshot.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace scmd::obs {
namespace {

TelemetryFrame sample_frame() {
  TelemetryFrame f;
  f.rank = 2;
  TelemetryStepRecord r0;
  r0.step = 0;
  r0.potential_energy = -123.5;
  r0.work.evals[2] = 10;
  r0.work.list_scan_steps = 77;
  r0.transport.messages_sent = 4;
  r0.transport.bytes_sent = 4096;
  r0.transport.max_mailbox_depth = 3;
  TelemetryStepRecord r1;
  r1.step = 1;
  r1.potential_energy = -124.0;
  r1.transport.messages_sent = 9;
  r1.transport.bytes_sent = 8192;
  f.steps = {r0, r1};
  TraceEvent e;
  e.name = "force";
  e.tid = 2;
  e.ts_us = 1000.25;
  e.dur_us = 42.5;
  f.events = {e};
  return f;
}

TEST(TelemetryCodecTest, RoundTripsFrames) {
  const TelemetryFrame f = sample_frame();
  const TelemetryFrame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.rank, 2);
  ASSERT_EQ(g.steps.size(), 2u);
  EXPECT_EQ(g.steps[0].step, 0);
  EXPECT_DOUBLE_EQ(g.steps[0].potential_energy, -123.5);
  EXPECT_EQ(g.steps[0].work.evals[2], 10u);
  EXPECT_EQ(g.steps[0].work.list_scan_steps, 77u);
  EXPECT_EQ(g.steps[0].transport.bytes_sent, 4096u);
  EXPECT_EQ(g.steps[0].transport.max_mailbox_depth, 3u);
  EXPECT_EQ(g.steps[1].step, 1);
  EXPECT_EQ(g.steps[1].transport.messages_sent, 9u);
  ASSERT_EQ(g.events.size(), 1u);
  EXPECT_EQ(g.events[0].name, "force");
  EXPECT_DOUBLE_EQ(g.events[0].ts_us, 1000.25);
  EXPECT_DOUBLE_EQ(g.events[0].dur_us, 42.5);
}

TEST(TelemetryCodecTest, RoundTripsEmptyFrame) {
  TelemetryFrame f;
  f.rank = 0;
  const TelemetryFrame g = decode_frame(encode_frame(f));
  EXPECT_TRUE(g.steps.empty());
  EXPECT_TRUE(g.events.empty());
}

TEST(TelemetryCodecTest, RejectsBadMagic) {
  Bytes b = encode_frame(sample_frame());
  b[0] = std::byte{0xff};
  EXPECT_THROW(decode_frame(b), Error);
}

TEST(TelemetryCodecTest, RejectsTruncation) {
  const Bytes b = encode_frame(sample_frame());
  for (const std::size_t keep : {b.size() - 1, b.size() / 2, std::size_t{3}}) {
    Bytes cut(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(decode_frame(cut), Error) << keep;
  }
}

TEST(TelemetryCodecTest, RejectsTrailingBytes) {
  Bytes b = encode_frame(sample_frame());
  b.push_back(std::byte{0});
  EXPECT_THROW(decode_frame(b), Error);
}

/// A one-record frame with a cumulative bytes_sent snapshot.
TelemetryFrame step_frame(int rank, long long step,
                          std::uint64_t cum_bytes_sent,
                          std::uint64_t cum_msgs = 0) {
  TelemetryFrame f;
  f.rank = rank;
  TelemetryStepRecord r;
  r.step = step;
  r.potential_energy = -1.0;
  r.work.evals[2] = 100;
  r.work.list_scan_steps = 50 + static_cast<std::uint64_t>(rank);
  r.transport.bytes_sent = cum_bytes_sent;
  r.transport.messages_sent = cum_msgs;
  f.steps = {r};
  return f;
}

TEST(TelemetryCollectorTest, DifferencesCumulativeSnapshotsIntoDeltas) {
  MetricsRegistry reg;
  TelemetryCollector::Config cfg;
  cfg.num_ranks = 2;
  cfg.num_records = 2;
  cfg.metrics = &reg;
  TelemetryCollector col(cfg);

  // Step 0: rank 0 sent 100 bytes, rank 1 sent 40 (bootstrap included).
  col.ingest(step_frame(0, 0, 100));
  EXPECT_EQ(col.finalized_steps(), 0);  // rank 1 still missing
  col.ingest(step_frame(1, 0, 40));
  EXPECT_EQ(col.finalized_steps(), 1);
  EXPECT_DOUBLE_EQ(reg.value("comm.transport.bytes_sent"), 140.0);

  // Step 1: cumulative 130 / 90 -> per-step delta 30 + 50 = 80, not the
  // cumulative 220 the old once-per-run recording would report.
  col.ingest(step_frame(0, 1, 130));
  col.ingest(step_frame(1, 1, 90));
  EXPECT_EQ(col.finalized_steps(), 2);
  EXPECT_DOUBLE_EQ(reg.value("comm.transport.bytes_sent"), 80.0);
  // The imbalance summary rides along on every finalized step.
  EXPECT_TRUE(reg.has("imbalance.search.ratio"));
  col.finish();
}

TEST(TelemetryCollectorTest, EmitCadenceAlwaysIncludesFinalRecord) {
  std::ostringstream out;
  MetricsRegistry reg;
  reg.add_sink(std::make_unique<JsonlSink>(out));
  TelemetryCollector::Config cfg;
  cfg.num_ranks = 1;
  cfg.num_records = 4;
  cfg.metrics_every = 2;
  cfg.metrics = &reg;
  TelemetryCollector col(cfg);
  for (long long s = 0; s < 4; ++s) col.ingest(step_frame(0, s, 10 * s));
  col.finish();
  col.finish();  // idempotent
  // Cadence hits steps 0 and 2; finish() must add the final step 3.
  std::vector<long long> steps;
  std::string line;
  std::istringstream in(out.str());
  while (std::getline(in, line)) {
    const auto at = line.find("\"step\":");
    ASSERT_NE(at, std::string::npos);
    steps.push_back(std::stoll(line.substr(at + 7)));
  }
  EXPECT_EQ(steps, (std::vector<long long>{0, 2, 3}));
}

TEST(TelemetryCollectorTest, FinishRejectsIncompleteSteps) {
  TelemetryCollector::Config cfg;
  cfg.num_ranks = 2;
  cfg.num_records = 1;
  TelemetryCollector col(cfg);
  col.ingest(step_frame(0, 0, 10));  // rank 1 never reports
  EXPECT_THROW(col.finish(), Error);
}

TEST(TelemetryCollectorTest, RejectsDuplicateStepRecords) {
  TelemetryCollector::Config cfg;
  cfg.num_ranks = 2;
  TelemetryCollector col(cfg);
  col.ingest(step_frame(0, 0, 10));
  EXPECT_THROW(col.ingest(step_frame(0, 0, 10)), Error);
}

TEST(TelemetryCollectorTest, MergesSpansClockShiftedOntoRankLanes) {
  TraceSession merged;
  TelemetryCollector::Config cfg;
  cfg.num_ranks = 2;
  cfg.merged_trace = &merged;
  TelemetryCollector col(cfg);
  col.set_clock(1, 250.0, 5.0);
  EXPECT_DOUBLE_EQ(col.clock_offset_us(1), 250.0);
  EXPECT_DOUBLE_EQ(col.clock_uncertainty_us(1), 5.0);

  TelemetryFrame f;
  f.rank = 1;
  TraceEvent e;
  e.name = "step";
  e.tid = 1;
  e.ts_us = 1000.0;
  e.dur_us = 500.0;
  f.events = {e};
  col.ingest(f);

  const auto events = merged.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "step");
  EXPECT_EQ(events[0].tid, 1);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 1250.0);  // local + offset
  EXPECT_DOUBLE_EQ(events[0].dur_us, 500.0);
}

TEST(TelemetryCollectorTest, FeedsPhaseHistogramsFromSpans) {
  MetricsRegistry reg;
  TelemetryCollector::Config cfg;
  cfg.num_ranks = 1;
  cfg.metrics = &reg;
  TelemetryCollector col(cfg);

  TraceEvent force;
  force.name = "force";
  force.tid = 0;
  force.ts_us = 0.0;
  force.dur_us = 1000.0;  // 1 ms
  TraceEvent other;
  other.name = "search.n2";  // no phase_hist channel
  other.tid = 0;
  other.ts_us = 0.0;
  other.dur_us = 1.0;
  col.observe_events({force, other});

  const auto names = reg.histogram_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "phase_hist.force");
  EXPECT_EQ(reg.histogram_at("phase_hist.force").count(), 1u);
}

TEST(TelemetryCollectorTest, StatusJsonTracksProgress) {
  TelemetryCollector::Config cfg;
  cfg.num_ranks = 2;
  cfg.num_records = 1;
  TelemetryCollector col(cfg);
  col.set_clock(1, 33.0, 2.0);
  col.ingest(step_frame(0, 0, 10));
  col.ingest(step_frame(1, 0, 20));
  std::string s = col.status_json();
  EXPECT_NE(s.find("\"num_ranks\":2"), std::string::npos) << s;
  EXPECT_NE(s.find("\"finalized_steps\":1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"finished\":false"), std::string::npos) << s;
  EXPECT_NE(s.find("\"clock_offset_us\":33"), std::string::npos) << s;
  col.finish();
  s = col.status_json();
  EXPECT_NE(s.find("\"finished\":true"), std::string::npos) << s;
}

}  // namespace
}  // namespace scmd::obs
