// Checkpoint semantics on top of the section codec: full-state
// round-trips, the retention-bounded snapshot directory, corrupt-file
// skipping in load_latest, and byte-stability against the committed
// golden fixture (tests/data/golden_v2.ckpt) — the cross-version
// compatibility contract.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>

#include "ckpt/checkpoint.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd::ckpt {
namespace {

/// Fixed, RNG-free state: the golden fixture is this exact data, so the
/// byte-stability test fails if either the data or the codec drifts.
CheckpointData golden_data() {
  CheckpointData data;
  data.system = ParticleSystem(Box({4.0, 5.0, 6.0}), {1.5, 2.5});
  data.system.add_atom({0.5, 1.0, 1.5}, {0.25, -0.5, 0.75}, 0);
  data.system.add_atom({2.0, 2.5, 3.0}, {-1.0, 0.0, 1.0}, 1);
  data.system.add_atom({3.5, 4.0, 4.5}, {0.125, 0.25, -0.375}, 0);
  data.system.forces()[0] = {1.0, 2.0, 3.0};
  data.system.forces()[1] = {-4.0, 5.0, -6.0};
  data.system.forces()[2] = {7.0, -8.0, 9.0};
  data.clock = {7, 100, 0.5};
  Rng::State rng;
  rng.s[0] = 0x0123456789abcdefULL;
  rng.s[1] = 0xfedcba9876543210ULL;
  rng.s[2] = 42;
  rng.s[3] = 7;
  rng.have_cached = true;
  rng.cached = -0.625;
  data.rng = rng;
  data.thermo = ThermoState{1, 300.0, 0.1};
  DecompState decomp;
  decomp.pgrid_dims = {2, 2, 1};
  decomp.align_dims = {1, 1, 1};
  decomp.fine_res = {4, 4, 2};
  decomp.cuts = {{std::vector<std::int32_t>{0, 2, 4},
                  std::vector<std::int32_t>{0, 2, 4},
                  std::vector<std::int32_t>{0, 2}}};
  data.decomp = decomp;
  data.cache = CacheState{9, 0.3};
  return data;
}

void expect_equal(const CheckpointData& a, const CheckpointData& b) {
  ASSERT_EQ(a.system.num_atoms(), b.system.num_atoms());
  ASSERT_EQ(a.system.num_types(), b.system.num_types());
  EXPECT_EQ(a.system.box(), b.system.box());
  for (int t = 0; t < a.system.num_types(); ++t)
    EXPECT_EQ(a.system.mass_of_type(t), b.system.mass_of_type(t));
  for (int i = 0; i < a.system.num_atoms(); ++i) {
    EXPECT_EQ(a.system.positions()[i], b.system.positions()[i]) << i;
    EXPECT_EQ(a.system.velocities()[i], b.system.velocities()[i]) << i;
    EXPECT_EQ(a.system.forces()[i], b.system.forces()[i]) << i;
    EXPECT_EQ(a.system.types()[i], b.system.types()[i]) << i;
  }
  EXPECT_EQ(a.clock.step, b.clock.step);
  EXPECT_EQ(a.clock.total_steps, b.clock.total_steps);
  EXPECT_EQ(a.clock.dt, b.clock.dt);
  ASSERT_EQ(a.rng.has_value(), b.rng.has_value());
  if (a.rng) {
    for (int i = 0; i < 4; ++i) EXPECT_EQ(a.rng->s[i], b.rng->s[i]);
    EXPECT_EQ(a.rng->have_cached, b.rng->have_cached);
    EXPECT_EQ(a.rng->cached, b.rng->cached);
  }
  ASSERT_EQ(a.thermo.has_value(), b.thermo.has_value());
  if (a.thermo) {
    EXPECT_EQ(a.thermo->kind, b.thermo->kind);
    EXPECT_EQ(a.thermo->target_k, b.thermo->target_k);
    EXPECT_EQ(a.thermo->tau, b.thermo->tau);
  }
  ASSERT_EQ(a.decomp.has_value(), b.decomp.has_value());
  if (a.decomp) {
    EXPECT_EQ(a.decomp->pgrid_dims, b.decomp->pgrid_dims);
    EXPECT_EQ(a.decomp->align_dims, b.decomp->align_dims);
    EXPECT_EQ(a.decomp->fine_res, b.decomp->fine_res);
    for (int axis = 0; axis < 3; ++axis)
      EXPECT_EQ(a.decomp->cuts[static_cast<std::size_t>(axis)],
                b.decomp->cuts[static_cast<std::size_t>(axis)]);
  }
  ASSERT_EQ(a.cache.has_value(), b.cache.has_value());
  if (a.cache) {
    EXPECT_EQ(a.cache->epoch, b.cache->epoch);
    EXPECT_EQ(a.cache->skin, b.cache->skin);
  }
}

TEST(CheckpointCodecTest, FullStateRoundTrips) {
  const CheckpointData data = golden_data();
  expect_equal(decode_checkpoint(encode_checkpoint(data)), data);
}

TEST(CheckpointCodecTest, OptionalSectionsStayAbsent) {
  CheckpointData data;
  data.system = golden_data().system;
  const CheckpointData back = decode_checkpoint(encode_checkpoint(data));
  EXPECT_FALSE(back.rng.has_value());
  EXPECT_FALSE(back.thermo.has_value());
  EXPECT_FALSE(back.decomp.has_value());
  EXPECT_FALSE(back.cache.has_value());
}

TEST(CheckpointCodecTest, FileRoundTripsAndRejectsCorruption) {
  const std::string path = "/tmp/scmd_ckpt_codec_test.sc2";
  const CheckpointData data = golden_data();
  write_checkpoint(data, path);
  expect_equal(read_checkpoint(path), data);

  // Flip a byte mid-file: some section CRC fails.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(60);
    f.put('\x7f');
  }
  EXPECT_THROW(read_checkpoint(path), Error);
  std::remove(path.c_str());
}

class CheckpointDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/scmd_ckpt_dir_test_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static CheckpointData at_step(long long step) {
    CheckpointData data = golden_data();
    data.clock.step = step;
    return data;
  }

  std::string dir_;
};

TEST_F(CheckpointDirTest, RetentionPrunesOldest) {
  CheckpointDir ckpt(dir_, /*retain=*/3);
  for (long long step : {5, 10, 15, 20}) ckpt.write(at_step(step));
  EXPECT_EQ(ckpt.steps(), (std::vector<long long>{10, 15, 20}));

  std::string winner;
  const auto latest = ckpt.load_latest(&winner);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->clock.step, 20);
  EXPECT_EQ(winner, ckpt.path_for_step(20));
}

TEST_F(CheckpointDirTest, LoadLatestSkipsCorruptFiles) {
  CheckpointDir ckpt(dir_, 3);
  for (long long step : {10, 20, 30}) ckpt.write(at_step(step));
  // Corrupt the newest snapshot; recovery must fall back to step 20.
  {
    std::ofstream f(ckpt.path_for_step(30),
                    std::ios::binary | std::ios::trunc);
    f << "torn";
  }
  std::string winner;
  const auto latest = ckpt.load_latest(&winner);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->clock.step, 20);
  EXPECT_EQ(winner, ckpt.path_for_step(20));
}

TEST_F(CheckpointDirTest, EmptyDirLoadsNothing) {
  CheckpointDir ckpt(dir_, 3);
  EXPECT_TRUE(ckpt.steps().empty());
  EXPECT_FALSE(ckpt.load_latest().has_value());
}

TEST_F(CheckpointDirTest, CreatesMissingDirectories) {
  CheckpointDir ckpt(dir_ + "/nested/deeper", 2);
  ckpt.write(at_step(1));
  EXPECT_EQ(ckpt.steps(), (std::vector<long long>{1}));
}

#ifdef SCMD_TEST_DATA_DIR
TEST(CheckpointGoldenTest, CommittedFixtureStaysByteStable) {
  // The fixture was written by this codec at the version that introduced
  // it.  Decoding it must keep working forever (backward compatibility),
  // and re-encoding the same logical state must reproduce it bit for bit
  // — any codec change that breaks this needs a version bump, not a
  // silent format drift.
  const std::string path = std::string(SCMD_TEST_DATA_DIR) +
                           "/golden_v2.ckpt";
  const Bytes golden = read_file(path);
  expect_equal(decode_checkpoint(golden), golden_data());
  EXPECT_EQ(encode_checkpoint(golden_data()), golden);
}
#endif

}  // namespace
}  // namespace scmd::ckpt
