// The on-disk grammar under every checkpoint: byte builders, the CRC'd
// section container, and the crash-safe file write.  Corruption in any
// form — truncation, bit flips, bad magic — must surface as scmd::Error,
// never as silently-partial state.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>

#include "ckpt/codec.hpp"
#include "support/error.hpp"

namespace scmd::ckpt {
namespace {

TEST(ByteCodecTest, PodAndArrayRoundTrip) {
  ByteWriter w;
  w.pod(std::int64_t{-7});
  w.pod(3.5);
  w.array(std::vector<std::int32_t>{1, 2, 3});
  w.array(std::vector<double>{});
  const Bytes bytes = w.bytes();

  ByteReader r(bytes);
  EXPECT_EQ(r.pod<std::int64_t>(), -7);
  EXPECT_EQ(r.pod<double>(), 3.5);
  EXPECT_EQ(r.array<std::int32_t>(), (std::vector<std::int32_t>{1, 2, 3}));
  EXPECT_TRUE(r.array<double>().empty());
  EXPECT_TRUE(r.done());
}

TEST(ByteCodecTest, ShortReadThrows) {
  ByteWriter w;
  w.pod(std::int32_t{5});
  const Bytes bytes = w.bytes();
  ByteReader r(bytes);
  EXPECT_THROW(r.pod<double>(), Error);
}

TEST(ByteCodecTest, OverlongArrayCountThrows) {
  // An array header claiming more elements than the payload holds must
  // be rejected up front, not allocate-and-crash.
  ByteWriter w;
  w.pod(std::uint64_t{1u << 20});
  const Bytes bytes = w.bytes();
  ByteReader r(bytes);
  EXPECT_THROW(r.array<double>(), Error);
}

TEST(ByteCodecTest, TakeConsumesRawBytes) {
  ByteWriter w;
  w.append("abcdef", 6);
  const Bytes bytes = w.bytes();
  ByteReader r(bytes);
  const Bytes head = r.take(4);
  EXPECT_EQ(head.size(), 4u);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_THROW(r.take(3), Error);
}

TEST(SectionIdTest, FourccRoundTrips) {
  EXPECT_EQ(section_tag(section_id("ATOM")), "ATOM");
  EXPECT_EQ(section_tag(section_id("BOXX")), "BOXX");
}

Bytes payload_of(const char* text) {
  Bytes b;
  for (const char* p = text; *p != '\0'; ++p)
    b.push_back(static_cast<std::byte>(*p));
  return b;
}

TEST(SectionFileTest, EncodeDecodeRoundTrips) {
  SectionFile file;
  file.add(section_id("AAAA"), payload_of("first"));
  file.add(section_id("BBBB"), payload_of(""));
  file.add(section_id("CCCC"), payload_of("third section payload"));

  const SectionFile back = SectionFile::decode(file.encode());
  ASSERT_EQ(back.sections().size(), 3u);
  EXPECT_EQ(back.require(section_id("AAAA")), payload_of("first"));
  EXPECT_EQ(back.require(section_id("BBBB")), payload_of(""));
  EXPECT_EQ(back.require(section_id("CCCC")),
            payload_of("third section payload"));
  EXPECT_FALSE(back.has(section_id("DDDD")));
  EXPECT_EQ(back.find(section_id("DDDD")), nullptr);
  EXPECT_THROW(back.require(section_id("DDDD")), Error);
}

TEST(SectionFileTest, UnknownSectionsSurviveDecode) {
  // Append-only schema: a reader built before "ZZZZ" existed still sees
  // and preserves it.
  SectionFile file;
  file.add(section_id("ZZZZ"), payload_of("from the future"));
  const SectionFile back = SectionFile::decode(file.encode());
  EXPECT_TRUE(back.has(section_id("ZZZZ")));
}

TEST(SectionFileTest, BitFlipFailsCrc) {
  SectionFile file;
  file.add(section_id("AAAA"), payload_of("payload under protection"));
  Bytes bytes = file.encode();
  bytes[bytes.size() - 3] ^= std::byte{0x01};  // flip a payload bit
  EXPECT_THROW(SectionFile::decode(bytes), Error);
}

TEST(SectionFileTest, TruncationThrows) {
  SectionFile file;
  file.add(section_id("AAAA"), payload_of("some payload"));
  Bytes bytes = file.encode();
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{10}, std::size_t{0}}) {
    const Bytes head(bytes.begin(),
                     bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(SectionFile::decode(head), Error) << "cut at " << cut;
  }
}

TEST(SectionFileTest, BadMagicAndVersionThrow) {
  SectionFile file;
  Bytes bytes = file.encode();
  Bytes bad_magic = bytes;
  bad_magic[0] ^= std::byte{0xFF};
  EXPECT_THROW(SectionFile::decode(bad_magic), Error);
  Bytes bad_version = bytes;
  bad_version[8] = std::byte{99};
  EXPECT_THROW(SectionFile::decode(bad_version), Error);
}

TEST(AtomicWriteTest, WritesAndReadsBack) {
  const std::string path = "/tmp/scmd_codec_atomic_test.bin";
  const Bytes bytes = payload_of("atomic contents");
  atomic_write_file(path, bytes);
  EXPECT_EQ(read_file(path), bytes);
  // Overwrite in place: readers only ever see old or new, and after the
  // rename the new contents are what is read.
  const Bytes next = payload_of("second generation");
  atomic_write_file(path, next);
  EXPECT_EQ(read_file(path), next);
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(
      atomic_write_file("/nonexistent-dir/foo.bin", payload_of("x")), Error);
}

TEST(AtomicWriteTest, MissingFileThrowsOnRead) {
  EXPECT_THROW(read_file("/tmp/scmd_no_such_codec_file.bin"), Error);
}

}  // namespace
}  // namespace scmd::ckpt
