// Write-ahead log durability semantics: append/scan round-trips, and —
// the point of a WAL — recovery from torn tails.  A crash can truncate
// or corrupt the last frame; reopening must recover exactly the valid
// prefix and resume appending, never crash, never replay garbage.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

#include "ckpt/wal.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace scmd::ckpt {
namespace {

std::string to_string(const Bytes& bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/scmd_wal_test_" + std::to_string(::getpid()) + ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::uint64_t file_size() const {
    struct stat st {};
    EXPECT_EQ(::stat(path_.c_str(), &st), 0);
    return static_cast<std::uint64_t>(st.st_size);
  }

  void truncate_to(std::uint64_t size) const {
    ASSERT_EQ(::truncate(path_.c_str(), static_cast<off_t>(size)), 0);
  }

  void flip_byte_at(std::uint64_t off) const {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(off));
    char b = 0;
    f.get(b);
    f.seekp(static_cast<std::streamoff>(off));
    f.put(static_cast<char>(b ^ 0x01));
  }

  std::string path_;
};

TEST_F(WalTest, AppendScanRoundTrips) {
  {
    WalWriter wal(path_, /*fsync_interval_bytes=*/0);
    wal.append(WalRecordType::kNote, std::string("run started"));
    wal.append(WalRecordType::kMetrics, std::string("{\"step\":1}"));
    wal.append(WalRecordType::kNote, std::string(""));  // empty payload
    EXPECT_EQ(wal.records_written(), 3u);
    EXPECT_EQ(wal.recovered_records(), 0u);
    EXPECT_FALSE(wal.recovered_torn_tail());
  }
  const WalScan scan = scan_wal(path_);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  EXPECT_EQ(scan.valid_bytes, file_size());
  EXPECT_EQ(scan.records[0].type, WalRecordType::kNote);
  EXPECT_EQ(scan.records[1].type, WalRecordType::kMetrics);
  const Bytes& p = scan.records[1].payload;
  EXPECT_EQ(to_string(p), "{\"step\":1}");
  EXPECT_TRUE(scan.records[2].payload.empty());
}

TEST_F(WalTest, TrajFrameRoundTrips) {
  TrajFrame frame;
  frame.step = 42;
  frame.pos = {{1.0, 2.0, 3.0}, {-4.5, 0.0, 9.25}};
  frame.vel = {{0.1, 0.2, 0.3}, {0.0, -0.5, 1.5}};
  {
    WalWriter wal(path_, 0);
    wal.append(WalRecordType::kTrajectory, encode_traj_frame(frame));
  }
  const WalScan scan = scan_wal(path_);
  ASSERT_EQ(scan.records.size(), 1u);
  const TrajFrame back = decode_traj_frame(scan.records[0].payload);
  EXPECT_EQ(back.step, 42);
  ASSERT_EQ(back.pos.size(), 2u);
  EXPECT_EQ(back.pos[1].z, 9.25);
  EXPECT_EQ(back.vel[1].y, -0.5);
}

TEST_F(WalTest, TornTailIsTruncatedOnReopen) {
  std::uint64_t two_records = 0;
  {
    WalWriter wal(path_, 0);
    wal.append(WalRecordType::kNote, std::string("record one"));
    wal.append(WalRecordType::kNote, std::string("record two"));
    two_records = file_size();
    wal.append(WalRecordType::kNote, std::string("record three"));
  }
  // Crash mid-append of record three: only part of its frame hit disk.
  truncate_to(two_records + 5);
  {
    const WalScan scan = scan_wal(path_);
    EXPECT_EQ(scan.records.size(), 2u);
    EXPECT_TRUE(scan.torn_tail);
    EXPECT_EQ(scan.dropped_bytes, 5u);
    EXPECT_EQ(scan.valid_bytes, two_records);
  }
  {
    WalWriter wal(path_, 0);
    EXPECT_EQ(wal.recovered_records(), 2u);
    EXPECT_TRUE(wal.recovered_torn_tail());
    EXPECT_EQ(file_size(), two_records);  // tail gone before appends
    wal.append(WalRecordType::kNote, std::string("after recovery"));
  }
  const WalScan scan = scan_wal(path_);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_FALSE(scan.torn_tail);
  const Bytes& p = scan.records[2].payload;
  EXPECT_EQ(to_string(p), "after recovery");
}

TEST_F(WalTest, CorruptMiddleRecordEndsThePrefixThere) {
  std::uint64_t one_record = 0;
  {
    WalWriter wal(path_, 0);
    wal.append(WalRecordType::kNote, std::string("good record"));
    one_record = file_size();
    wal.append(WalRecordType::kNote, std::string("soon to be corrupt"));
    wal.append(WalRecordType::kNote, std::string("unreachable"));
  }
  // Flip one payload bit in the middle record: its CRC fails, and the
  // scan must not resynchronize past it — everything after is suspect.
  flip_byte_at(one_record + 13);
  const WalScan scan = scan_wal(path_);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, one_record);
  const Bytes& p = scan.records[0].payload;
  EXPECT_EQ(to_string(p), "good record");
}

TEST_F(WalTest, WholeFileOfGarbageIsNotAWal) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this file was never a write-ahead log ......";
  }
  EXPECT_THROW(scan_wal(path_), Error);
  EXPECT_THROW(WalWriter(path_, 0), Error);
}

TEST_F(WalTest, HeaderOnlyFileIsAnEmptyLog) {
  { WalWriter wal(path_, 0); }
  const WalScan scan = scan_wal(path_);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.torn_tail);
  {
    WalWriter wal(path_, 0);
    EXPECT_EQ(wal.recovered_records(), 0u);
    EXPECT_FALSE(wal.recovered_torn_tail());
  }
}

TEST_F(WalTest, BatchedFsyncStillLandsOnSync) {
  WalWriter wal(path_, /*fsync_interval_bytes=*/1u << 20);
  wal.append(WalRecordType::kNote, std::string("buffered"));
  wal.sync();
  // The bytes are on disk regardless of batching; a concurrent scan of
  // the same path sees the record.
  const WalScan scan = scan_wal(path_);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_GT(wal.bytes_written(), 0u);
}

TEST_F(WalTest, MetricsSinkMakesEmittedRecordsDurable) {
  {
    WalWriter wal(path_, 0);
    obs::MetricsRegistry reg;
    reg.add_sink(std::make_unique<WalMetricsSink>(wal));
    reg.set("energy.potential", -12.5);
    reg.add("ckpt.snapshots", 2);
    reg.emit(7);
  }
  const WalScan scan = scan_wal(path_);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kMetrics);
  const std::string line = to_string(scan.records[0].payload);
  EXPECT_NE(line.find("\"energy.potential\""), std::string::npos);
  EXPECT_NE(line.find("\"ckpt.snapshots\""), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line, no newline
}

}  // namespace
}  // namespace scmd::ckpt
