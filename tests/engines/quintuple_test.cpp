// Arbitrary-n end-to-end: the n = 5 Gaussian-chain field through the full
// pattern/enumeration/force pipeline, the regime ReaxFF chain-rule terms
// create (paper Sec. 1).

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "pattern/analysis.hpp"
#include "potentials/gaussian_chain.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(GaussianChainTest, ChainForcesMatchFiniteDifferences) {
  const GaussianChain field;
  Rng rng(200);
  const int types[5] = {0, 0, 0, 0, 0};
  for (int trial = 0; trial < 15; ++trial) {
    // A wiggly chain with all steps inside the 5-chain cutoff.
    Vec3 r[5];
    r[0] = {0, 0, 0};
    for (int k = 1; k < 5; ++k) {
      const Vec3 step{rng.uniform(0.15, 0.35), rng.uniform(-0.25, 0.25),
                      rng.uniform(-0.25, 0.25)};
      r[k] = r[k - 1] + step;
    }
    Vec3 f[5] = {};
    field.eval_chain(5, types, r, f);

    constexpr double h = 1e-6;
    for (int atom = 0; atom < 5; ++atom) {
      for (int axis = 0; axis < 3; ++axis) {
        Vec3 rp[5], rm[5], dump[5];
        for (int k = 0; k < 5; ++k) rp[k] = rm[k] = r[k];
        rp[atom][axis] += h;
        rm[atom][axis] -= h;
        for (Vec3& v : dump) v = {};
        const double ep = field.eval_chain(5, types, rp, dump);
        for (Vec3& v : dump) v = {};
        const double em = field.eval_chain(5, types, rm, dump);
        EXPECT_NEAR(f[atom][axis], -(ep - em) / (2.0 * h), 1e-5)
            << "trial " << trial << " atom " << atom << " axis " << axis;
      }
    }
    // Momentum conservation.
    Vec3 net;
    for (const Vec3& fa : f) net += fa;
    EXPECT_NEAR(net.norm(), 0.0, 1e-12);
  }
}

TEST(GaussianChainTest, VanishesAtChainCutoff) {
  const GaussianChain field;
  const int types[5] = {0, 0, 0, 0, 0};
  Vec3 r[5] = {{0, 0, 0}, {0.3, 0, 0}, {0.6, 0, 0}, {0.9, 0, 0},
               {0.9 + field.rcut(5) + 0.01, 0, 0}};
  Vec3 f[5] = {};
  EXPECT_EQ(field.eval_chain(5, types, r, f), 0.0);
}

TEST(GaussianChainTest, EngineEnumeratesQuintuples) {
  Rng rng(201);
  const GaussianChain field;
  ParticleSystem sys = make_gas(field, 120, 2.0, 0.5, rng);
  SerialEngine engine(sys, field, make_strategy("SC", field));
  EXPECT_GT(engine.counters().tuples[5].chain_candidates, 0u);
  EXPECT_GT(engine.counters().evals[5], 0u);
  EXPECT_EQ(engine.counters().evals[3], 0u);  // no triplet term
}

TEST(GaussianChainTest, FsAndScAgreeAtN5) {
  Rng rng(202);
  const GaussianChain field;
  const ParticleSystem base = make_gas(field, 100, 2.0, 0.5, rng);
  auto run = [&](const std::string& name) {
    ParticleSystem sys = base;
    SerialEngine engine(sys, field, make_strategy(name, field));
    return std::make_pair(engine.potential_energy(),
                          engine.counters().evals[5]);
  };
  const auto [e_sc, evals_sc] = run("SC");
  const auto [e_fs, evals_fs] = run("FS");
  EXPECT_NEAR(e_sc, e_fs, 1e-9 * (1.0 + std::abs(e_sc)));
  EXPECT_EQ(evals_sc, evals_fs);
}

TEST(GaussianChainTest, NveConservesEnergyWithQuintuples) {
  Rng rng(203);
  const GaussianChain field;
  ParticleSystem sys = make_gas(field, 120, 2.0, 0.02, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.002;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 25; ++s) engine.step();
  EXPECT_NEAR(engine.total_energy(), e0, std::abs(e0) * 0.02 + 0.02);
}

TEST(GaussianChainTest, PatternSizesAtN5MatchTheory) {
  EXPECT_EQ(sc_pattern_size(5), 266085);
  EXPECT_EQ(fs_pattern_size(5), 531441);
}

}  // namespace
}  // namespace scmd
