#include "engines/serial_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/dihedral.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(SerialEngineTest, ConstructorPrimesForces) {
  Rng rng(80);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 512, 4.0, 1.0, rng);
  SerialEngine engine(sys, lj, make_strategy("SC", lj));
  double fmax = 0.0;
  for (const Vec3& f : sys.forces()) fmax = std::max(fmax, f.norm());
  EXPECT_GT(fmax, 0.0);
  EXPECT_NE(engine.potential_energy(), 0.0);
}

TEST(SerialEngineTest, CountersAccumulateAcrossSteps) {
  Rng rng(81);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 512, 4.0, 1.0, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.002;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), cfg);
  const auto after_init = engine.counters().tuples[2].accepted;
  engine.step();
  EXPECT_GT(engine.counters().tuples[2].accepted, after_init);
  engine.clear_counters();
  EXPECT_EQ(engine.counters().tuples[2].accepted, 0u);
}

TEST(SerialEngineTest, ForceSetMeasurementOptIn) {
  Rng rng(82);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 512, 4.0, 1.0, rng);
  SerialEngineConfig cfg;
  cfg.measure_force_set = true;
  SerialEngine with(sys, lj, make_strategy("SC", lj, true), cfg);
  EXPECT_GT(with.counters().force_set[2], 0);

  SerialEngine without(sys, lj, make_strategy("SC", lj, false));
  EXPECT_EQ(without.counters().force_set[2], 0);
}

TEST(SerialEngineTest, QuadFieldRunsAndConservesEnergy) {
  // n = 4 machinery end-to-end: chain-dihedral fluid in NVE.
  Rng rng(83);
  const ChainDihedral cd;
  ParticleSystem sys = make_gas(cd, 150, 3.0, 0.02 / units::kBoltzmann / 300.0,
                                rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.002;
  SerialEngine engine(sys, cd, make_strategy("SC", cd), cfg);
  EXPECT_GT(engine.counters().tuples[4].chain_candidates, 0u);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 50; ++s) engine.step();
  EXPECT_NEAR(engine.total_energy(), e0, 0.05 * std::abs(e0) + 0.05);
}

TEST(SerialEngineTest, BoxTooSmallForCutoffRejected) {
  Rng rng(84);
  const VashishtaSiO2 field;  // rcut2 = 5.5 needs a >= 16.5 Å box
  ParticleSystem sys(Box::cubic(12.0), {28.0855, 15.9994});
  sys.add_atom({1, 1, 1}, {}, 0);
  EXPECT_THROW(SerialEngine(sys, field, make_strategy("SC", field)), Error);
}

TEST(SerialEngineTest, TrajectoriesIdenticalAcrossStrategies) {
  // Same initial state stepped under SC and Hybrid: positions must stay
  // bitwise-comparable at tight tolerance for many steps.
  Rng rng(85);
  const VashishtaSiO2 field;
  const ParticleSystem initial = make_silica(450, 2.2, 300.0, rng);

  auto run = [&](const std::string& name) {
    ParticleSystem sys = initial;
    SerialEngineConfig cfg;
    cfg.dt = 0.5 * units::kFemtosecond;
    SerialEngine engine(sys, field, make_strategy(name, field), cfg);
    for (int s = 0; s < 10; ++s) engine.step();
    return std::vector<Vec3>(sys.positions().begin(), sys.positions().end());
  };

  const auto sc = run("SC");
  const auto hy = run("Hybrid");
  ASSERT_EQ(sc.size(), hy.size());
  for (std::size_t i = 0; i < sc.size(); ++i) {
    EXPECT_NEAR(sc[i].x, hy[i].x, 1e-7) << i;
    EXPECT_NEAR(sc[i].y, hy[i].y, 1e-7) << i;
    EXPECT_NEAR(sc[i].z, hy[i].z, 1e-7) << i;
  }
}

}  // namespace
}  // namespace scmd
