// Intra-rank threaded enumeration: multi-thread force computation must
// match single-thread results exactly in counters and to numerical noise
// in forces/energies (per-thread buffers reduce in fixed order).

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

struct Result {
  double energy;
  std::vector<Vec3> forces;
  EngineCounters counters;
};

Result run_silica(int threads, const std::string& strategy) {
  Rng rng(170);
  const VashishtaSiO2 field;
  ParticleSystem sys = make_silica(1536, 2.2, 400.0, rng);
  SerialEngineConfig cfg;
  cfg.num_threads = threads;
  SerialEngine engine(sys, field, make_strategy(strategy, field), cfg);
  return {engine.potential_energy(),
          {sys.forces().begin(), sys.forces().end()}, engine.counters()};
}

class ThreadCountTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountTest, MatchesSingleThreadedSilica) {
  const int threads = GetParam();
  const Result base = run_silica(1, "SC");
  const Result threaded = run_silica(threads, "SC");

  EXPECT_NEAR(threaded.energy, base.energy, 1e-9 * std::abs(base.energy));
  ASSERT_EQ(threaded.forces.size(), base.forces.size());
  for (std::size_t i = 0; i < base.forces.size(); ++i) {
    EXPECT_NEAR(threaded.forces[i].x, base.forces[i].x, 1e-9) << i;
    EXPECT_NEAR(threaded.forces[i].y, base.forces[i].y, 1e-9) << i;
    EXPECT_NEAR(threaded.forces[i].z, base.forces[i].z, 1e-9) << i;
  }
  // Work counters are partition-invariant.
  EXPECT_EQ(threaded.counters.tuples[2].search_steps,
            base.counters.tuples[2].search_steps);
  EXPECT_EQ(threaded.counters.tuples[3].accepted,
            base.counters.tuples[3].accepted);
  EXPECT_EQ(threaded.counters.evals[2], base.counters.evals[2]);
  EXPECT_EQ(threaded.counters.evals[3], base.counters.evals[3]);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ThreadCountTest,
                         ::testing::Values(2, 3, 4, 8));

TEST(ThreadingTest, DeterministicAcrossRuns) {
  const Result a = run_silica(4, "SC");
  const Result b = run_silica(4, "SC");
  EXPECT_EQ(a.energy, b.energy);  // bitwise: fixed reduction order
  for (std::size_t i = 0; i < a.forces.size(); ++i) {
    EXPECT_EQ(a.forces[i], b.forces[i]) << i;
  }
}

TEST(ThreadingTest, WorksWithFullShellAndTrie) {
  for (const std::string name : {"FS", "SC+p", "FS+p"}) {
    const Result base = run_silica(1, name);
    const Result threaded = run_silica(3, name);
    EXPECT_NEAR(threaded.energy, base.energy, 1e-9 * std::abs(base.energy))
        << name;
    EXPECT_EQ(threaded.counters.tuples[3].chain_candidates,
              base.counters.tuples[3].chain_candidates)
        << name;
  }
}

TEST(ThreadingTest, MoreThreadsThanSlabsIsClamped) {
  // A tiny system has fewer z-slabs than requested threads; must still be
  // correct.
  Rng rng(171);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 200, 4.0, 1.0, rng);
  SerialEngineConfig cfg;
  cfg.num_threads = 64;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), cfg);
  EXPECT_GT(engine.counters().tuples[2].accepted, 0u);
}

TEST(ThreadingTest, NveStableWithThreads) {
  Rng rng(172);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 400, 4.0, 0.5, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.005;
  cfg.num_threads = 4;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), cfg);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 40; ++s) engine.step();
  EXPECT_NEAR(engine.total_energy(), e0, std::abs(e0) * 0.01 + 0.05);
}

TEST(ThreadingTest, RejectsNonPositiveThreadCount) {
  Rng rng(173);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 200, 4.0, 1.0, rng);
  SerialEngineConfig cfg;
  cfg.num_threads = 0;
  EXPECT_THROW(SerialEngine(sys, lj, make_strategy("SC", lj), cfg), Error);
}

}  // namespace
}  // namespace scmd
