#include "engines/observables.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/lj.hpp"
#include "potentials/morse.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(PressureTest, DiluteHotGasApproachesIdealGasLaw) {
  // Dilute AND hot (kT ~ 2ε, so the attractive tail is negligible):
  // P ~ N kT / V.
  Rng rng(220);
  const LennardJones lj;  // ε = 1 (energy units of the kB used below)
  const double hot = 2.0 / units::kBoltzmann;
  const ParticleSystem sys = make_gas(lj, 500, 0.2, hot, rng);
  const Pressure pressure = measure_pressure(sys, lj);
  EXPECT_NEAR(pressure.total() / pressure.kinetic, 1.0, 0.10);
}

TEST(PressureTest, CompressedSolidHasPositiveVirial) {
  // LJ atoms packed denser than the r_min spacing push outward.
  Rng rng(221);
  const LennardJones lj;
  // ~1.35 atoms per sigma^3: strongly compressed.
  ParticleSystem sys = make_cubic_lattice(Box::cubic(9.0), 1.0, 1000, 0.02,
                                          rng);
  const Pressure pressure = measure_pressure(sys, lj);
  EXPECT_GT(pressure.virial, 0.0);
  EXPECT_GT(pressure.total(), pressure.kinetic);
}

TEST(PressureTest, StretchedSolidHasNegativeVirial) {
  // A lattice stretched beyond r_min is under tension.
  Rng rng(222);
  const LennardJones lj;
  // 512 atoms on a 10.4^3 box: spacing 1.3 > 2^(1/6).
  ParticleSystem sys = make_cubic_lattice(Box::cubic(10.4), 1.0, 512, 0.02,
                                          rng);
  const Pressure pressure = measure_pressure(sys, lj);
  EXPECT_LT(pressure.virial, 0.0);
}

TEST(PressureTest, StrategyChoiceDoesNotMatter) {
  Rng rng(223);
  const LennardJones lj;
  const ParticleSystem sys = make_gas(lj, 400, 4.0, 100.0, rng);
  const Pressure a = measure_pressure(sys, lj, "SC");
  const Pressure b = measure_pressure(sys, lj, "Hybrid");
  EXPECT_NEAR(a.virial, b.virial, 1e-6 * (1.0 + std::abs(a.virial)));
}

TEST(PressureTest, WorksForManyBodyFields) {
  // Morse solid near equilibrium: |total| pressure small compared to the
  // compressed case.
  Rng rng(224);
  const Morse morse;
  const ParticleSystem sys = make_gas(morse, 300, 4.0, 50.0, rng);
  const Pressure pressure = measure_pressure(sys, morse);
  EXPECT_TRUE(std::isfinite(pressure.total()));
}

TEST(PressureTest, RejectsSillyPerturbation) {
  Rng rng(225);
  const LennardJones lj;
  const ParticleSystem sys = make_gas(lj, 200, 4.0, 10.0, rng);
  EXPECT_THROW(measure_pressure(sys, lj, "SC", 0.5), Error);
  EXPECT_THROW(measure_pressure(sys, lj, "SC", 0.0), Error);
}

TEST(VacfTest, IdentitySnapshotsGiveOne) {
  Rng rng(226);
  const LennardJones lj;
  const ParticleSystem sys = make_gas(lj, 200, 4.0, 20.0, rng);
  EXPECT_DOUBLE_EQ(velocity_autocorrelation(sys, sys), 1.0);
}

TEST(VacfTest, DecorrelatesInAnEquilibratedFluid) {
  Rng rng(227);
  const LennardJones lj;
  const double t_target = 1.0 / units::kBoltzmann;  // kT = ε
  ParticleSystem sys = make_gas(lj, 400, 6.0, t_target, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.004;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), cfg);
  // Equilibrate at fixed temperature first (the jittered lattice releases
  // heat), then measure the autocorrelation under NVE.
  const BerendsenThermostat thermo(t_target, 0.04);
  for (int s = 0; s < 150; ++s) engine.step(thermo);
  const ParticleSystem snapshot = sys;
  for (int s = 0; s < 150; ++s) engine.step();
  const double c = velocity_autocorrelation(snapshot, sys);
  EXPECT_LT(std::abs(c), 0.5);  // a dense fluid forgets its velocities
}

}  // namespace
}  // namespace scmd
