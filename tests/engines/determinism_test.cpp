// Reproducibility contracts: identical seeds give bitwise-identical
// trajectories, and odd-shaped boxes/grids work end to end.

#include <gtest/gtest.h>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/lj.hpp"
#include "potentials/vashishta.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

std::vector<Vec3> trajectory_tail(std::uint64_t seed,
                                  const std::string& strategy) {
  Rng rng(seed);
  const VashishtaSiO2 field;
  ParticleSystem sys = make_silica(648, 2.2, 500.0, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  SerialEngine engine(sys, field, make_strategy(strategy, field), cfg);
  for (int s = 0; s < 20; ++s) engine.step();
  return {sys.positions().begin(), sys.positions().end()};
}

TEST(DeterminismTest, SameSeedSameTrajectoryBitwise) {
  const auto a = trajectory_tail(777, "SC");
  const auto b = trajectory_tail(777, "SC");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const auto a = trajectory_tail(777, "SC");
  const auto b = trajectory_tail(778, "SC");
  int different = 0;
  for (std::size_t i = 0; i < a.size(); ++i) different += !(a[i] == b[i]);
  EXPECT_GT(different, static_cast<int>(a.size()) / 2);
}

TEST(DeterminismTest, HybridAlsoDeterministic) {
  const auto a = trajectory_tail(779, "Hybrid");
  const auto b = trajectory_tail(779, "Hybrid");
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(NonCubicTest, AnisotropicBoxConservesEnergy) {
  Rng rng(780);
  const LennardJones lj;
  // A 2:1:1 box; jittered lattice avoids initial core overlaps.
  ParticleSystem sys =
      make_cubic_lattice(Box({20.0, 10.0, 10.0}), 1.0, 500, 0.3, rng);
  thermalize(sys, 0.5, rng);
  SerialEngineConfig cfg;
  cfg.dt = 0.004;
  SerialEngine engine(sys, lj, make_strategy("SC", lj), cfg);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 50; ++s) engine.step();
  EXPECT_NEAR(engine.total_energy(), e0, std::abs(e0) * 0.02 + 0.1);
}

TEST(NonCubicTest, StrategiesAgreeInAnisotropicBox) {
  Rng rng(781);
  const LennardJones lj;
  ParticleSystem base(Box({24.0, 12.0, 9.0}), {1.0});
  for (int i = 0; i < 600; ++i) {
    base.add_atom({rng.uniform(0, 24), rng.uniform(0, 12),
                   rng.uniform(0, 9)},
                  {}, 0);
  }
  auto energy_of = [&](const std::string& name) {
    ParticleSystem sys = base;
    SerialEngine engine(sys, lj, make_strategy(name, lj));
    return engine.potential_energy();
  };
  const double sc = energy_of("SC");
  EXPECT_NEAR(energy_of("FS"), sc, 1e-9 * std::abs(sc));
  EXPECT_NEAR(energy_of("Hybrid"), sc, 1e-9 * std::abs(sc));
  EXPECT_NEAR(energy_of("OC"), sc, 1e-9 * std::abs(sc));
  EXPECT_NEAR(energy_of("RC"), sc, 1e-9 * std::abs(sc));
}

}  // namespace
}  // namespace scmd
