// Tersoff bond-order reactive workload: scalar ingredients, whole-system
// finite-difference forces through the two-pass strategy, diamond-silicon
// physics, and parallel-vs-serial agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "engines/bond_order.hpp"
#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "parallel/parallel_engine.hpp"
#include "potentials/lj.hpp"
#include "potentials/tersoff.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(TersoffScalarsTest, CutoffTaperSmooth) {
  const TersoffSilicon t;
  const TersoffParams& p = t.params();
  double fc, dfc;
  t.cutoff_fn(p.R - p.D - 0.1, fc, dfc);
  EXPECT_DOUBLE_EQ(fc, 1.0);
  EXPECT_DOUBLE_EQ(dfc, 0.0);
  t.cutoff_fn(p.R + p.D + 0.1, fc, dfc);
  EXPECT_DOUBLE_EQ(fc, 0.0);
  t.cutoff_fn(p.R, fc, dfc);
  EXPECT_NEAR(fc, 0.5, 1e-12);
  // Taper endpoints are continuous.
  t.cutoff_fn(p.R - p.D + 1e-9, fc, dfc);
  EXPECT_NEAR(fc, 1.0, 1e-6);
}

TEST(TersoffScalarsTest, DerivativesMatchFiniteDifferences) {
  const TersoffSilicon t;
  constexpr double h = 1e-7;
  auto fd_check = [&](auto&& fn, double x, double tol) {
    double v0, d0, vp, dp, vm, dm;
    fn(x, v0, d0);
    fn(x + h, vp, dp);
    fn(x - h, vm, dm);
    // Relative tolerance: angular derivatives reach ~1e5 in magnitude.
    EXPECT_NEAR(d0, (vp - vm) / (2 * h), tol * (1.0 + std::abs(d0)))
        << "x=" << x;
  };
  for (double r : {2.2, 2.75, 2.85, 2.95}) {
    fd_check([&](double x, double& v, double& d) { t.cutoff_fn(x, v, d); },
             r, 1e-5);
    fd_check([&](double x, double& v, double& d) { t.repulsive(x, v, d); },
             r, 1e-4);
    fd_check([&](double x, double& v, double& d) { t.attractive(x, v, d); },
             r, 1e-5);
  }
  for (double c : {-0.9, -0.3, 0.2, 0.8}) {
    fd_check([&](double x, double& v, double& d) { t.angular(x, v, d); }, c,
             1e-3);
  }
  for (double z : {0.1, 1.0, 3.0, 10.0}) {
    fd_check([&](double x, double& v, double& d) { t.bond_order(x, v, d); },
             z, 1e-6);
  }
}

TEST(TersoffScalarsTest, BondOrderWeakensWithCoordination) {
  const TersoffSilicon t;
  double b1, db, b4;
  t.bond_order(0.0, b1, db);
  EXPECT_DOUBLE_EQ(b1, 1.0);
  t.bond_order(3.0, b4, db);
  EXPECT_LT(b4, b1);
  EXPECT_GT(b4, 0.0);
}

TEST(TersoffFieldTest, RejectsPerTupleEvaluation) {
  const TersoffSilicon t;
  Vec3 f1, f2;
  EXPECT_THROW(t.eval_pair(0, 0, {0, 0, 0}, {2.3, 0, 0}, f1, f2), Error);
}

/// Build a small jittered diamond-silicon cluster system.
ParticleSystem diamond_si(int cells, double a, double jitter,
                          std::uint64_t seed) {
  Rng rng(seed);
  ParticleSystem sys(Box::cubic(cells * a), {28.0855});
  const Vec3 fcc[4] = {{0, 0, 0}, {0, 0.5, 0.5}, {0.5, 0, 0.5},
                       {0.5, 0.5, 0}};
  for (int cx = 0; cx < cells; ++cx) {
    for (int cy = 0; cy < cells; ++cy) {
      for (int cz = 0; cz < cells; ++cz) {
        for (const Vec3& f : fcc) {
          for (const Vec3& b : {Vec3{0, 0, 0}, Vec3{0.25, 0.25, 0.25}}) {
            Vec3 r = (Vec3{static_cast<double>(cx), static_cast<double>(cy),
                           static_cast<double>(cz)} +
                      f + b) *
                     a;
            r += Vec3{rng.uniform(-jitter, jitter),
                      rng.uniform(-jitter, jitter),
                      rng.uniform(-jitter, jitter)};
            sys.add_atom(r, {}, 0);
          }
        }
      }
    }
  }
  return sys;
}

TEST(BondOrderStrategyTest, ForcesMatchFiniteDifferenceOfEnergy) {
  const TersoffSilicon field;
  ParticleSystem sys = diamond_si(2, 5.432, 0.08, 210);

  auto energy_of = [&](ParticleSystem& s) {
    SerialEngine engine(s, field, make_strategy("BondOrder", field));
    return engine.potential_energy();
  };

  SerialEngine engine(sys, field, make_strategy("BondOrder", field));
  const std::vector<Vec3> analytic(sys.forces().begin(),
                                   sys.forces().end());

  constexpr double h = 2e-6;
  Rng rng(211);
  for (int probe = 0; probe < 6; ++probe) {
    const int atom = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(sys.num_atoms())));
    const int axis = static_cast<int>(rng.uniform_index(3));
    ParticleSystem plus = sys, minus = sys;
    plus.positions()[atom][axis] += h;
    minus.positions()[atom][axis] -= h;
    const double fd = -(energy_of(plus) - energy_of(minus)) / (2 * h);
    EXPECT_NEAR(analytic[static_cast<std::size_t>(atom)][axis], fd, 2e-4)
        << "atom " << atom << " axis " << axis;
  }

  // Newton's third law across the whole system.
  Vec3 net;
  for (const Vec3& f : analytic) net += f;
  EXPECT_NEAR(net.norm(), 0.0, 1e-9);
}

TEST(BondOrderStrategyTest, DiamondCohesiveEnergyNearLiterature) {
  // Tersoff-Si gives E_coh ≈ −4.63 eV/atom at the equilibrium lattice
  // constant 5.432 Å.
  const TersoffSilicon field;
  ParticleSystem sys = diamond_si(2, 5.432, 0.0, 212);
  SerialEngine engine(sys, field, make_strategy("BondOrder", field));
  const double per_atom = engine.potential_energy() / sys.num_atoms();
  EXPECT_NEAR(per_atom, -4.63, 0.15);
  // Perfect lattice: zero forces by symmetry.
  double fmax = 0.0;
  for (const Vec3& f : sys.forces()) fmax = std::max(fmax, f.norm());
  EXPECT_NEAR(fmax, 0.0, 1e-9);
}

TEST(BondOrderStrategyTest, NveConservesEnergy) {
  const TersoffSilicon field;
  ParticleSystem sys = diamond_si(2, 5.432, 0.05, 213);
  Rng rng(214);
  thermalize(sys, 300.0, rng);
  SerialEngineConfig cfg;
  cfg.dt = 1.0 * units::kFemtosecond;
  SerialEngine engine(sys, field, make_strategy("BondOrder", field), cfg);
  const double e0 = engine.total_energy();
  for (int s = 0; s < 60; ++s) engine.step();
  EXPECT_NEAR(engine.total_energy(), e0,
              0.005 * sys.num_atoms() * units::kBoltzmann * 300.0 +
                  1e-4 * std::abs(e0));
}

TEST(BondOrderStrategyTest, ParallelMatchesSerial) {
  const TersoffSilicon field;
  // 3 cells/axis so each of the 2x2x2 ranks owns >= rcut per axis.
  const ParticleSystem initial = diamond_si(3, 5.432, 0.08, 215);

  ParticleSystem serial_sys = initial;
  SerialEngineConfig scfg;
  scfg.dt = 1.0 * units::kFemtosecond;
  SerialEngine serial(serial_sys, field, make_strategy("BondOrder", field),
                      scfg);
  for (int s = 0; s < 3; ++s) serial.step();

  ParticleSystem par_sys = initial;
  ParallelRunConfig cfg;
  cfg.dt = 1.0 * units::kFemtosecond;
  cfg.num_steps = 3;
  const ParallelRunResult res =
      run_parallel_md(par_sys, field, "BondOrder", ProcessGrid({2, 2, 2}),
                      cfg);
  EXPECT_NEAR(res.potential_energy, serial.potential_energy(),
              1e-8 * std::abs(serial.potential_energy()));
  for (int i = 0; i < par_sys.num_atoms(); ++i) {
    EXPECT_NEAR(par_sys.positions()[i].x, serial_sys.positions()[i].x, 1e-8)
        << i;
    EXPECT_NEAR(par_sys.positions()[i].y, serial_sys.positions()[i].y, 1e-8)
        << i;
  }
}

TEST(BondOrderStrategyTest, FactoryRequiresTersoffField) {
  Rng rng(216);
  const LennardJones lj;
  EXPECT_THROW(make_strategy("BondOrder", lj), Error);
}

}  // namespace
}  // namespace scmd
