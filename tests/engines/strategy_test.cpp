// Cross-strategy equivalence: SC-MD, FS-MD, and Hybrid-MD must produce
// identical physics (forces, energies, accepted tuples) while exhibiting
// the predicted differences in search work.

#include <gtest/gtest.h>

#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/dihedral.hpp"
#include "potentials/lj.hpp"
#include "potentials/stillinger_weber.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

struct Snapshot {
  double energy;
  std::vector<Vec3> forces;
};

Snapshot forces_with(const std::string& strategy, ParticleSystem sys,
                     const ForceField& field, EngineCounters* counters_out =
                         nullptr) {
  SerialEngine engine(sys, field, make_strategy(strategy, field));
  Snapshot s;
  s.energy = engine.potential_energy();
  s.forces.assign(sys.forces().begin(), sys.forces().end());
  if (counters_out) *counters_out = engine.counters();
  return s;
}

void expect_same(const Snapshot& a, const Snapshot& b, double tol) {
  EXPECT_NEAR(a.energy, b.energy, tol * (1.0 + std::abs(a.energy)));
  ASSERT_EQ(a.forces.size(), b.forces.size());
  for (std::size_t i = 0; i < a.forces.size(); ++i) {
    EXPECT_NEAR(a.forces[i].x, b.forces[i].x, tol) << i;
    EXPECT_NEAR(a.forces[i].y, b.forces[i].y, tol) << i;
    EXPECT_NEAR(a.forces[i].z, b.forces[i].z, tol) << i;
  }
}

class SilicaStrategyTest : public ::testing::Test {
 protected:
  SilicaStrategyTest() : rng_(70), sys_(make_silica(450, 2.2, 600.0, rng_)) {}
  Rng rng_;
  ParticleSystem sys_;
  VashishtaSiO2 field_;
};

TEST_F(SilicaStrategyTest, FsMatchesSc) {
  expect_same(forces_with("SC", sys_, field_), forces_with("FS", sys_, field_),
              1e-9);
}

TEST_F(SilicaStrategyTest, HybridMatchesSc) {
  expect_same(forces_with("SC", sys_, field_),
              forces_with("Hybrid", sys_, field_), 1e-9);
}

TEST_F(SilicaStrategyTest, AcceptedTuplesEqualAcrossPatterns) {
  EngineCounters sc, fs;
  forces_with("SC", sys_, field_, &sc);
  forces_with("FS", sys_, field_, &fs);
  EXPECT_EQ(sc.tuples[2].accepted, fs.tuples[2].accepted);
  EXPECT_EQ(sc.tuples[3].accepted, fs.tuples[3].accepted);
  EXPECT_EQ(sc.evals[2], fs.evals[2]);
  EXPECT_EQ(sc.evals[3], fs.evals[3]);
}

TEST_F(SilicaStrategyTest, FsSearchesRoughlyTwiceSc) {
  EngineCounters sc, fs;
  forces_with("SC", sys_, field_, &sc);
  forces_with("FS", sys_, field_, &fs);
  const double ratio = static_cast<double>(fs.tuples[3].chain_candidates) /
                       static_cast<double>(sc.tuples[3].chain_candidates);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST_F(SilicaStrategyTest, HybridTripletSearchCheaperThanSc) {
  // The paper's large-grain effect: Hybrid prunes triplets from the pair
  // list and does far less triplet search than cell-based SC.
  EngineCounters sc, hy;
  forces_with("SC", sys_, field_, &sc);
  forces_with("Hybrid", sys_, field_, &hy);
  EXPECT_EQ(hy.tuples[3].search_steps, 0u);  // no triplet cells at all
  EXPECT_GT(sc.tuples[3].search_steps, hy.list_scan_steps / 2);
  EXPECT_EQ(hy.evals[3], sc.evals[3]);
}

TEST_F(SilicaStrategyTest, NewtonThirdLawHolds) {
  const Snapshot s = forces_with("SC", sys_, field_);
  Vec3 net;
  for (const Vec3& f : s.forces) net += f;
  EXPECT_NEAR(net.norm(), 0.0, 1e-8);
}

TEST(LjStrategyTest, AllStrategiesAgreeOnPairOnlyField) {
  Rng rng(71);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 300, 5.0, 1.0, rng);
  const Snapshot sc = forces_with("SC", sys, lj);
  expect_same(sc, forces_with("FS", sys, lj), 1e-10);
  expect_same(sc, forces_with("Hybrid", sys, lj), 1e-10);
}

TEST(SwStrategyTest, EqualCutoffsAgreeAcrossStrategies) {
  // SW has rcut2 == rcut3 — the degenerate corner for Hybrid pruning.
  Rng rng(72);
  const StillingerWeber sw;
  ParticleSystem sys = make_gas(sw, 216, 4.0, 100.0, rng);
  const Snapshot sc = forces_with("SC", sys, sw);
  expect_same(sc, forces_with("FS", sys, sw), 1e-9);
  expect_same(sc, forces_with("Hybrid", sys, sw), 1e-9);
}

TEST(StrategyFactoryTest, RejectsUnknownName) {
  const LennardJones lj;
  EXPECT_THROW(make_strategy("bogus", lj), Error);
}

TEST(StrategyFactoryTest, NamesRoundTrip) {
  const VashishtaSiO2 field;
  EXPECT_EQ(make_strategy("SC", field)->name(), "SC");
  EXPECT_EQ(make_strategy("FS", field)->name(), "FS");
  EXPECT_EQ(make_strategy("Hybrid", field)->name(), "Hybrid");
}

TEST(HybridStrategyTest, RejectsQuadFields) {
  const ChainDihedral cd;
  EXPECT_THROW(make_hybrid_strategy(cd, false), Error);
}

}  // namespace
}  // namespace scmd
