// Persistent tuple lists end to end in the serial engine
// (docs/TUPLECACHE.md): a cached run must be physically indistinguishable
// from an uncached one across multiple rebuild events — same energies,
// same forces, same evaluated tuple sets.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "md/units.hpp"
#include "potentials/vashishta.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

ParticleSystem silica_system() {
  Rng rng(310);
  return make_silica(648, 2.2, 400.0, rng);
}

class TupleCacheTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TupleCacheTest, CachedRunMatchesUncachedAcrossRebuilds) {
  const std::string strategy = GetParam();
  const VashishtaSiO2 field;
  const ParticleSystem initial = silica_system();
  const double dt = 0.5 * units::kFemtosecond;
  const int steps = 50;

  ParticleSystem plain_sys = initial;
  SerialEngineConfig plain_cfg;
  plain_cfg.dt = dt;
  SerialEngine plain(plain_sys, field, make_strategy(strategy, field),
                     plain_cfg);

  ParticleSystem cached_sys = initial;
  SerialEngineConfig cached_cfg;
  cached_cfg.dt = dt;
  cached_cfg.tuple_cache.enabled = true;
  // Narrow skin so the 50-step window spans several rebuilds while still
  // replaying most steps.
  cached_cfg.tuple_cache.skin = 0.12;
  SerialEngine cached(cached_sys, field, make_strategy(strategy, field),
                      cached_cfg);

  for (int s = 0; s < steps; ++s) {
    plain.step();
    cached.step();
    ASSERT_NEAR(cached.potential_energy(), plain.potential_energy(),
                1e-8 * std::abs(plain.potential_energy()) + 1e-8)
        << strategy << " step " << s;
  }

  // The window must have exercised the full life cycle: the priming
  // build, >= 2 displacement-triggered rebuilds, and plenty of replays.
  const EngineCounters& c = cached.counters();
  EXPECT_GE(c.cache_rebuilds, 3u);
  EXPECT_GE(c.cache_reuse_steps, 10u);
  EXPECT_GT(c.cache_replayed, 0u);
  EXPECT_EQ(plain.counters().cache_rebuilds, 0u);

  // Same physics: replay filtering must evaluate the same tuples the
  // uncached enumeration finds.  Trajectory noise lets a tuple sitting
  // numerically on the cutoff flip, hence the hair of slack.
  for (int n = 2; n <= field.max_n(); ++n) {
    const std::size_t ni = static_cast<std::size_t>(n);
    const double expected = static_cast<double>(plain.counters().evals[ni]);
    EXPECT_NEAR(static_cast<double>(c.evals[ni]), expected,
                1e-6 * expected + 2.0)
        << "n=" << n;
  }

  for (int i = 0; i < cached_sys.num_atoms(); ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    EXPECT_NEAR(cached_sys.positions()[i].x, plain_sys.positions()[i].x,
                1e-8)
        << i;
    EXPECT_NEAR(cached_sys.positions()[i].y, plain_sys.positions()[i].y,
                1e-8)
        << i;
    EXPECT_NEAR(cached_sys.positions()[i].z, plain_sys.positions()[i].z,
                1e-8)
        << i;
    EXPECT_NEAR(cached_sys.forces()[ii].x, plain_sys.forces()[ii].x, 1e-7)
        << i;
    EXPECT_NEAR(cached_sys.forces()[ii].y, plain_sys.forces()[ii].y, 1e-7)
        << i;
    EXPECT_NEAR(cached_sys.forces()[ii].z, plain_sys.forces()[ii].z, 1e-7)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, TupleCacheTest,
                         ::testing::Values("SC", "FS"),
                         [](const ::testing::TestParamInfo<std::string>& p) {
                           return p.param;
                         });

TEST(TupleCacheDegenerateTest, ZeroSkinRebuildsEveryStep) {
  const VashishtaSiO2 field;
  ParticleSystem sys = silica_system();
  SerialEngineConfig cfg;
  cfg.dt = 0.5 * units::kFemtosecond;
  cfg.tuple_cache.enabled = true;
  cfg.tuple_cache.skin = 0.0;
  SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
  for (int s = 0; s < 5; ++s) engine.step();
  // Priming build + one rebuild per step; nothing ever replayed.
  EXPECT_EQ(engine.counters().cache_rebuilds, 6u);
  EXPECT_EQ(engine.counters().cache_reuse_steps, 0u);
  EXPECT_EQ(engine.counters().cache_replayed, 0u);
}

TEST(TupleCacheDegenerateTest, CacheThreadsMatchSingleThread) {
  // Replay threading must not change physics: same run, 1 vs 4 threads.
  const VashishtaSiO2 field;
  const ParticleSystem initial = silica_system();
  auto run = [&](int threads) {
    ParticleSystem sys = initial;
    SerialEngineConfig cfg;
    cfg.dt = 0.5 * units::kFemtosecond;
    cfg.num_threads = threads;
    cfg.tuple_cache.enabled = true;
    cfg.tuple_cache.skin = 0.3;
    SerialEngine engine(sys, field, make_strategy("SC", field), cfg);
    for (int s = 0; s < 10; ++s) engine.step();
    return engine.potential_energy();
  };
  const double e1 = run(1);
  const double e4 = run(4);
  EXPECT_NEAR(e4, e1, 1e-9 * std::abs(e1) + 1e-9);
}

TEST(TupleCacheDegenerateTest, HybridStrategyRejected) {
  const VashishtaSiO2 field;
  ParticleSystem sys = silica_system();
  SerialEngineConfig cfg;
  cfg.tuple_cache.enabled = true;
  cfg.tuple_cache.skin = 0.3;
  EXPECT_THROW(SerialEngine(sys, field, make_strategy("Hybrid", field), cfg),
               Error);
}

TEST(TupleCacheDegenerateTest, NegativeSkinRejected) {
  const VashishtaSiO2 field;
  ParticleSystem sys = silica_system();
  SerialEngineConfig cfg;
  cfg.tuple_cache.enabled = true;
  cfg.tuple_cache.skin = -0.1;
  EXPECT_THROW(SerialEngine(sys, field, make_strategy("SC", field), cfg),
               Error);
}

}  // namespace
}  // namespace scmd
