#include "engines/minimize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "engines/serial_engine.hpp"
#include "md/builders.hpp"
#include "potentials/lj.hpp"
#include "potentials/morse.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace scmd {
namespace {

TEST(MinimizeTest, RelaxesJitteredLjCrystal) {
  // A jittered LJ crystal near its equilibrium density relaxes to the
  // lattice: forces drop below tolerance and the energy decreases.
  Rng rng(240);
  // 512 atoms, spacing ~1.12 (2^{1/6} σ): box 8 * 1.12.
  ParticleSystem sys =
      make_cubic_lattice(Box::cubic(8.0 * 1.122462), 1.0, 512, 0.08, rng);
  const LennardJones lj;

  double e_before;
  {
    ParticleSystem probe = sys;
    SerialEngine engine(probe, lj, make_strategy("SC", lj));
    e_before = engine.potential_energy();
  }

  MinimizeOptions opt;
  opt.max_steps = 5000;  // strong jitter is glassy; allow deep relaxation
  const MinimizeResult result = minimize(sys, lj, opt);
  EXPECT_TRUE(result.converged) << "max force " << result.max_force;
  EXPECT_LT(result.final_energy, e_before);
  EXPECT_LT(result.max_force, 1e-4);
  // Velocities consumed.
  for (const Vec3& v : sys.velocities()) EXPECT_EQ(v, Vec3{});
}

TEST(MinimizeTest, AlreadyMinimalConvergesImmediately) {
  Rng rng(241);
  ParticleSystem sys =
      make_cubic_lattice(Box::cubic(8.0 * 1.122462), 1.0, 512, 0.0, rng);
  const LennardJones lj;
  // Perfect SC lattice is a stationary point (by symmetry every force
  // vanishes) even if not the global minimum.
  const MinimizeResult result = minimize(sys, lj);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.steps, 2);
}

TEST(MinimizeTest, WorksWithMorseAndHybridStrategy) {
  Rng rng(242);
  const Morse morse;
  ParticleSystem sys = make_gas(morse, 200, 3.0, 50.0, rng);

  double f0 = 0.0, e0 = 0.0;
  {
    ParticleSystem probe = sys;
    SerialEngine engine(probe, morse, make_strategy("Hybrid", morse));
    e0 = engine.potential_energy();
    for (const Vec3& f : probe.forces()) f0 = std::max(f0, f.norm());
  }

  MinimizeOptions opt;
  opt.strategy = "Hybrid";
  opt.max_steps = 1200;
  opt.force_tolerance = 5e-3;
  opt.dt_initial = 0.02;
  opt.dt_max = 0.2;
  const MinimizeResult result = minimize(sys, morse, opt);
  // A clustering gas relaxes slowly and its max force is not monotone
  // (condensation creates stiffer local bonds than the dilute start), so
  // require energy descent, the minimizer's actual invariant.
  (void)f0;
  EXPECT_LT(result.final_energy, e0);
  EXPECT_GT(result.steps, 0);
}

TEST(MinimizeTest, EnergyMonotonicallyUsefulOverRestarts) {
  // Even without convergence (few steps), the minimizer must not raise
  // the energy.
  Rng rng(243);
  const LennardJones lj;
  ParticleSystem sys =
      make_cubic_lattice(Box::cubic(8.0 * 1.122462), 1.0, 512, 0.15, rng);
  double prev;
  {
    ParticleSystem probe = sys;
    SerialEngine engine(probe, lj, make_strategy("SC", lj));
    prev = engine.potential_energy();
  }
  MinimizeOptions opt;
  opt.max_steps = 30;
  for (int round = 0; round < 3; ++round) {
    const MinimizeResult r = minimize(sys, lj, opt);
    EXPECT_LE(r.final_energy, prev + 1e-6) << "round " << round;
    prev = r.final_energy;
  }
}

TEST(MinimizeTest, RejectsBadOptions) {
  Rng rng(244);
  const LennardJones lj;
  ParticleSystem sys = make_gas(lj, 100, 4.0, 1.0, rng);
  MinimizeOptions opt;
  opt.max_steps = 0;
  EXPECT_THROW(minimize(sys, lj, opt), Error);
}

}  // namespace
}  // namespace scmd
